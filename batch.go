package fsaicomm

// Batched (multi-RHS) facade entry points. A batched solve runs one
// distributed CG loop over k right-hand sides at once: every halo update
// sends one coalesced message per neighbour (k× fewer messages than k
// scalar solves, the same bytes) and every reduction point is one k-wide
// collective (k× fewer collective calls). Per column the arithmetic is
// bit-identical to the scalar solve of that column alone — the batch buys
// throughput, never answers.

import (
	"context"
	"fmt"
	"time"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/mprun"
	"fsaicomm/internal/vecops"
)

// ErrBatchVariant is wrapped by the error batched solves return when the
// selected CG variant has no batched loop (only CGClassic and CGFused do;
// the overlap and pipelined schedules exist to hide latency the batch
// already amortizes).
var ErrBatchVariant = krylov.ErrBatchVariant

// ColResult is one column's outcome of a batched solve.
type ColResult struct {
	// X is the column's solution vector (original row order).
	X []float64
	// Iterations, Converged and RelResidual report the column's own CG
	// recurrence: a column freezes the moment it converges, so columns
	// generally stop at different iteration counts.
	Iterations  int
	Converged   bool
	RelResidual float64
	// Broken reports a per-column breakdown (indefinite system, NaN): the
	// column froze without converging while its batch mates continued.
	Broken bool
}

// BatchResult reports a batched multi-RHS solve.
type BatchResult struct {
	// Cols holds the per-column outcomes, in the caller's RHS order.
	Cols []ColResult
	// Iterations is the batch loop's iteration count — the maximum over
	// columns, which is what the communication schedule paid for.
	Iterations int
	// Refinements counts the FP64 iterative-refinement steps of a
	// mixed-precision (Options.Precision FP32) batched solve; zero for FP64.
	Refinements int
	// Ranks is the number of processes used.
	Ranks int
	// PctNNZIncrease and ImbalanceIndex are the build metrics (see Result).
	PctNNZIncrease float64
	ImbalanceIndex float64
	// CommBytes, CommMessages, CollectiveCalls and CollectiveBytes are the
	// aggregate solve-phase communication totals over all ranks. Divide by
	// len(Cols) for the per-RHS amortized cost the batch exists to shrink.
	CommBytes       int64
	CommMessages    int64
	CollectiveCalls int64
	CollectiveBytes int64
	// IntraNodeBytes/IntraNodeMessages and InterNodeBytes/InterNodeMessages
	// split the point-to-point totals by the two-level topology (see
	// Result); zero under the flat default except InterNode* == Comm*.
	IntraNodeBytes    int64
	IntraNodeMessages int64
	InterNodeBytes    int64
	InterNodeMessages int64
	// SetupTime and SolveTime are wall-clock phase durations (SetupTime is
	// 0 for Prepared.SolveBatch, whose setup was paid in Prepare).
	SetupTime, SolveTime time.Duration
}

// AllConverged reports whether every column converged.
func (r *BatchResult) AllConverged() bool {
	for i := range r.Cols {
		if !r.Cols[i].Converged {
			return false
		}
	}
	return true
}

// checkBatchRHS validates the RHS block shape shared by the batched entry
// points.
func checkBatchRHS(rhs [][]float64, n int) error {
	if len(rhs) < 1 {
		return fmt.Errorf("fsaicomm: batch needs at least 1 right-hand side")
	}
	for c := range rhs {
		if len(rhs[c]) != n {
			return fmt.Errorf("fsaicomm: rhs column %d length %d, want %d", c, len(rhs[c]), n)
		}
		if err := checkFiniteRHS(rhs[c]); err != nil {
			return fmt.Errorf("rhs column %d: %w", c, err)
		}
	}
	return nil
}

func checkBatchVariant(v CGVariant) error {
	switch v {
	case CGClassic, CGFused:
		return nil
	default:
		return fmt.Errorf("%w: variant %d (batched solves support classic and fused)", ErrBatchVariant, int(v))
	}
}

// packPermuted interleaves the RHS columns row-major in partition order:
// pb[p*k+c] = rhs[c][old row of permuted row p].
func packPermuted(rhs [][]float64, oldToNew []int, n int) []float64 {
	k := len(rhs)
	pb := make([]float64, n*k)
	for c := range rhs {
		col := distmat.PermuteVec(rhs[c], oldToNew)
		vecops.PackColumn(pb, col, k, c)
	}
	return pb
}

// SolveBatch runs one distributed CG solve for A·x_c = b_c over all columns
// of rhs at once, with full setup (partition + preconditioner build). See
// Prepared.SolveBatch for the cached-setup path and the batching semantics.
func SolveBatch(a *Matrix, rhs [][]float64, opt Options) (*BatchResult, error) {
	return SolveBatchContext(context.Background(), a, rhs, opt)
}

// SolveBatchContext is SolveBatch with cancellation: every rank checks ctx
// once per batch iteration through a collective verdict, so all ranks stop
// at the same iteration boundary and the partial per-column results come
// back with an ErrCanceled-wrapped error.
func SolveBatchContext(ctx context.Context, a *Matrix, rhs [][]float64, opt Options) (*BatchResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkBatchVariant(opt.CGVariant); err != nil {
		return nil, err
	}
	if opt.Solver == SolverGMRES {
		return nil, fmt.Errorf("%w: batched solves support the CG family only (GMRES solves one right-hand side at a time)", ErrInvalidOptions)
	}
	if len(rhs) < 1 {
		return nil, checkBatchRHS(rhs, a.Rows)
	}
	if err := checkInput(a, rhs[0], opt.Solver); err != nil {
		return nil, err
	}
	if err := checkBatchRHS(rhs, a.Rows); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(a.Rows)
	ranks := AutoRanks(a, opt.Ranks)
	if ranks < 1 {
		return nil, fmt.Errorf("fsaicomm: ranks %d < 1", ranks)
	}
	topo, err := resolveTopology(ranks, opt.Nodes, opt.RanksPerNode)
	if err != nil {
		return nil, err
	}
	part, err := partitionRows(a, opt, ranks)
	if err != nil {
		return nil, err
	}
	pa, layout, oldToNew := distmat.ApplyPartition(a, part, ranks)
	k := len(rhs)
	spec := &mprun.SolveBatchSpec{
		N:       a.Rows,
		Ranks:   ranks,
		Offsets: layout.Offsets,
		PA:      pa,
		K:       k,
		PB:      packPermuted(rhs, oldToNew, a.Rows),
		Cfg: core.Config{
			Method:       opt.Method,
			Filter:       opt.Filter,
			Strategy:     opt.Strategy,
			LineBytes:    opt.LineBytes,
			PatternLevel: opt.PatternLevel,
			Threshold:    opt.Threshold,
			Workers:      opt.Workers,
			CGVariant:    opt.CGVariant,
			Precision:    opt.Precision,
		},
		Tol:               opt.Tol,
		MaxIter:           opt.MaxIter,
		Variant:           opt.CGVariant,
		Arch:              opt.Arch,
		Nodes:             topo.Nodes,
		RanksPerNode:      topo.RanksPerNode,
		NoNodeAggregation: opt.NoNodeAggregation,
	}
	outs, err := runRanks(ctx, opt.Transport, ranks, topo, func(int) *mprun.JobSpec {
		return &mprun.JobSpec{SolveBatch: spec}
	})
	if err != nil {
		return nil, err
	}
	return assembleBatchResult(a.Rows, ranks, k, oldToNew, outs, 0, 0)
}

// SolveBatch runs one batched distributed CG solve over all columns of rhs
// on the prepared system, paying the halo and collective schedule once for
// the whole batch instead of once per column. Per column the result is
// bit-identical to Prepared.Solve on that column alone. Only the classic
// and fused CG variants have batched loops (ErrBatchVariant otherwise).
// Safe for concurrent use like Solve. Cancellation stops all columns at
// the same batch iteration and returns the partial per-column results with
// an ErrCanceled-wrapped error.
func (p *Prepared) SolveBatch(ctx context.Context, rhs [][]float64, so SolveOptions) (*BatchResult, error) {
	if err := so.Validate(); err != nil {
		return nil, err
	}
	if err := checkBatchVariant(so.CGVariant); err != nil {
		return nil, err
	}
	if p.setupOpt.Solver == SolverGMRES {
		return nil, fmt.Errorf("%w: batched solves support the CG family only (this system was prepared for SPAI+GMRES)", ErrInvalidOptions)
	}
	if err := checkBatchRHS(rhs, p.n); err != nil {
		return nil, err
	}
	if so.Tol == 0 {
		so.Tol = 1e-8
	}
	if so.MaxIter == 0 {
		so.MaxIter = 10 * p.n
		if so.MaxIter < 100 {
			so.MaxIter = 100
		}
	}
	if so.Arch != "" {
		if _, err := archmodel.ByName(so.Arch); err != nil {
			return nil, fmt.Errorf("fsaicomm: %w", err)
		}
	}

	topo, err := resolveTopology(p.ranks, so.Nodes, so.RanksPerNode)
	if err != nil {
		return nil, err
	}

	k := len(rhs)
	pb := packPermuted(rhs, p.oldToNew, p.n)
	specs := make([]*mprun.PreparedBatchSpec, p.ranks)
	for r := range specs {
		pr := &p.parts[r]
		specs[r] = &mprun.PreparedBatchSpec{
			Prepared: &mprun.PreparedRankSpec{
				N: p.n, Ranks: p.ranks, Offsets: p.layout.Offsets,
				Lo: pr.lo, Hi: pr.hi,
				ALZ: pr.aLZ, GLZ: pr.gLZ, GTLZ: pr.gtLZ,
				ASend: pr.aPlan.SendPeers, ARecv: pr.aPlan.RecvPeers,
				GSend: pr.gPlan.SendPeers, GRecv: pr.gPlan.RecvPeers,
				GTSend: pr.gtPlan.SendPeers, GTRecv: pr.gtPlan.RecvPeers,
				ACounts: pr.aPlan.NeedCounts(), GCounts: pr.gPlan.NeedCounts(),
				GTCounts:          pr.gtPlan.NeedCounts(),
				Pct:               p.pct,
				Imbalance:         p.imbalance,
				Tol:               so.Tol,
				MaxIter:           so.MaxIter,
				Variant:           so.CGVariant,
				Arch:              so.Arch,
				Precision:         p.setupOpt.Precision,
				Nodes:             topo.Nodes,
				RanksPerNode:      topo.RanksPerNode,
				NoNodeAggregation: so.NoNodeAggregation,
			},
			K:      k,
			BLocal: pb[pr.lo*k : pr.hi*k],
		}
	}
	outs, err := runRanks(ctx, so.Transport, p.ranks, topo, func(rank int) *mprun.JobSpec {
		return &mprun.JobSpec{PreparedBatch: specs[rank]}
	})
	if err != nil {
		return nil, err
	}
	return assembleBatchResult(p.n, p.ranks, k, p.oldToNew, outs, p.pct, p.imbalance)
}

// assembleBatchResult folds the per-rank batched outcomes into the
// caller-facing BatchResult, un-permuting each column of the interleaved
// solution blocks.
func assembleBatchResult(n, ranks, k int, oldToNew []int, outs []*mprun.RankOutcome, pct, imb float64) (*BatchResult, error) {
	root := outs[0]
	if root == nil || root.Batch == nil {
		return nil, fmt.Errorf("fsaicomm: rank 0 reported no batch outcome")
	}
	res := &BatchResult{
		Cols:           make([]ColResult, k),
		Iterations:     root.Iterations,
		Refinements:    root.Refinements,
		Ranks:          ranks,
		PctNNZIncrease: root.Pct,
		ImbalanceIndex: root.Imbalance,
		SetupTime:      time.Duration(root.SetupNanos),
		SolveTime:      time.Duration(root.SolveNanos),
	}
	if pct != 0 {
		res.PctNNZIncrease = pct
	}
	if imb != 0 {
		res.ImbalanceIndex = imb
	}
	px := make([]float64, n*k)
	for r, out := range outs {
		if out == nil || out.Batch == nil {
			return nil, fmt.Errorf("fsaicomm: rank %d reported no batch outcome", r)
		}
		copy(px[out.Lo*k:out.Hi*k], out.XLocal)
		res.CommBytes += out.SolveComm.P2PBytes
		res.CommMessages += out.SolveComm.P2PMessages
		res.IntraNodeBytes += out.SolveComm.IntraP2PBytes
		res.IntraNodeMessages += out.SolveComm.IntraP2PMessages
		res.InterNodeBytes += out.SolveComm.InterP2PBytes
		res.InterNodeMessages += out.SolveComm.InterP2PMessages
		res.CollectiveCalls += out.SolveComm.CollectiveCalls
		res.CollectiveBytes += out.SolveComm.CollectiveBytes
	}
	bo := root.Batch
	for c := 0; c < k; c++ {
		col := &res.Cols[c]
		col.X = make([]float64, n)
		for i := range col.X {
			col.X[i] = px[oldToNew[i]*k+c]
		}
		col.Iterations = bo.Iterations[c]
		col.Converged = bo.Converged[c]
		col.RelResidual = bo.RelResidual[c]
		col.Broken = bo.Broken[c]
	}
	if root.Canceled {
		return res, fmt.Errorf("fsaicomm: %w at iteration %d", krylov.ErrCanceled, res.Iterations)
	}
	return res, nil
}

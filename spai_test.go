package fsaicomm

import (
	"context"
	"errors"
	"testing"

	"fsaicomm/internal/testsets"
)

// TestSPAIGMRESTransportDifferential is the nonsymmetric-axis version of the
// cross-backend differential: the same SPAI+GMRES solve through goroutine
// ranks and through one OS process per rank must agree bit for bit —
// solution vector, iteration count, and the metered communication structure.
func TestSPAIGMRESTransportDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for _, name := range []string{"convdiff-sim", "nonsym-circuit-sim"} {
		t.Run(name, func(t *testing.T) {
			sp, err := testsets.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			a := sp.Generate()
			b := GenerateRHS(a, 7)
			opt := Options{Method: SPAI, Solver: SolverGMRES, SPAISteps: 2, Ranks: 4}

			sim, err := SolveDistributed(a, b, opt)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			if !sim.Converged {
				t.Fatalf("sim did not converge in %d iterations", sim.Iterations)
			}
			opt.Transport = "tcp"
			tcp, err := SolveDistributed(a, b, opt)
			if err != nil {
				t.Fatalf("tcp: %v", err)
			}

			if tcp.Iterations != sim.Iterations || tcp.Converged != sim.Converged ||
				tcp.RelResidual != sim.RelResidual {
				t.Errorf("stats diverge: tcp (%d, %v, %g) vs sim (%d, %v, %g)",
					tcp.Iterations, tcp.Converged, tcp.RelResidual,
					sim.Iterations, sim.Converged, sim.RelResidual)
			}
			for i := range sim.X {
				if tcp.X[i] != sim.X[i] {
					t.Fatalf("x[%d] diverges: tcp %v vs sim %v", i, tcp.X[i], sim.X[i])
				}
			}
			if tcp.CommBytes != sim.CommBytes ||
				tcp.CollectiveCalls != sim.CollectiveCalls ||
				tcp.CollectiveBytes != sim.CollectiveBytes {
				t.Errorf("meter structure diverges: tcp (p2p %d, coll %d calls / %d bytes) vs sim (p2p %d, coll %d calls / %d bytes)",
					tcp.CommBytes, tcp.CollectiveCalls, tcp.CollectiveBytes,
					sim.CommBytes, sim.CollectiveCalls, sim.CollectiveBytes)
			}
			if tcp.PctNNZIncrease != sim.PctNNZIncrease {
				t.Errorf("pattern growth diverges: tcp %g vs sim %g", tcp.PctNNZIncrease, sim.PctNNZIncrease)
			}
		})
	}
}

// TestSPAIGMRESPreparedTransportDifferential ships a prepared SPAI system to
// worker processes and demands the same bit-identity a fresh solve gets,
// including a per-solve restart override.
func TestSPAIGMRESPreparedTransportDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	a := GenerateConvectionDiffusion2D(20, 20, 5)
	b := GenerateRHS(a, 5)
	p, err := Prepare(a, Options{Method: SPAI, Solver: SolverGMRES, SPAISteps: 1, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, restart := range []int{0, 15} {
		sim, err := p.Solve(context.Background(), b, SolveOptions{Restart: restart})
		if err != nil {
			t.Fatalf("restart %d sim: %v", restart, err)
		}
		if !sim.Converged {
			t.Fatalf("restart %d sim did not converge in %d iterations", restart, sim.Iterations)
		}
		tcp, err := p.Solve(context.Background(), b, SolveOptions{Restart: restart, Transport: "tcp"})
		if err != nil {
			t.Fatalf("restart %d tcp: %v", restart, err)
		}
		if tcp.Iterations != sim.Iterations || tcp.RelResidual != sim.RelResidual ||
			tcp.CommBytes != sim.CommBytes || tcp.CollectiveCalls != sim.CollectiveCalls {
			t.Errorf("restart %d diverges: tcp (%d iters, %g, p2p %d, coll %d) vs sim (%d iters, %g, p2p %d, coll %d)",
				restart, tcp.Iterations, tcp.RelResidual, tcp.CommBytes, tcp.CollectiveCalls,
				sim.Iterations, sim.RelResidual, sim.CommBytes, sim.CollectiveCalls)
		}
		for i := range sim.X {
			if tcp.X[i] != sim.X[i] {
				t.Fatalf("restart %d: x[%d] diverges: tcp %v vs sim %v", restart, i, tcp.X[i], sim.X[i])
			}
		}
	}
}

// TestSPAIGMRESConvergesWhereCGRejects pins the axis split: every CG-family
// entry point refuses a nonsymmetric matrix with an error satisfying both
// ErrNotSPD and ErrInvalidOptions, while the same matrix solves through
// SPAI+GMRES to the requested tolerance.
func TestSPAIGMRESConvergesWhereCGRejects(t *testing.T) {
	a := GenerateConvectionDiffusion2D(16, 16, 10)
	b := GenerateRHS(a, 3)

	rejects := map[string]func() error{
		"Solve": func() error {
			_, err := Solve(a, b, Options{Method: FSAI, Ranks: 1})
			return err
		},
		"SolveDistributed": func() error {
			_, err := SolveDistributed(a, b, Options{Method: FSAI, Ranks: 2})
			return err
		},
		"Prepare": func() error {
			_, err := Prepare(a, Options{Method: FSAI, Ranks: 2})
			return err
		},
		"BuildPreconditioner": func() error {
			_, err := BuildPreconditioner(a, Options{Method: FSAI})
			return err
		},
		"SolveBatch": func() error {
			_, err := SolveBatch(a, [][]float64{b}, Options{Method: FSAI, Ranks: 2})
			return err
		},
	}
	for name, call := range rejects {
		err := call()
		if err == nil {
			t.Fatalf("%s accepted a nonsymmetric matrix", name)
		}
		if !errors.Is(err, ErrNotSPD) {
			t.Errorf("%s: error does not wrap ErrNotSPD: %v", name, err)
		}
		if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: error does not wrap ErrInvalidOptions: %v", name, err)
		}
	}

	res, err := Solve(a, b, Options{Method: SPAI, Solver: SolverGMRES, SPAISteps: 2, Ranks: 1})
	if err != nil {
		t.Fatalf("spai+gmres: %v", err)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("spai+gmres: converged=%v rel residual %g in %d iterations",
			res.Converged, res.RelResidual, res.Iterations)
	}
}

// TestSPAIGMRESOptionCoupling pins the Validate-level axis coupling and the
// GMRES feature restrictions.
func TestSPAIGMRESOptionCoupling(t *testing.T) {
	a := GenerateConvectionDiffusion2D(10, 10, 5)
	b := GenerateRHS(a, 1)
	bad := []Options{
		{Method: SPAI},                                          // SPAI without GMRES
		{Method: FSAI, Solver: SolverGMRES},                     // GMRES without SPAI
		{Method: SPAI, Solver: SolverGMRES, CGVariant: CGFused}, // GMRES has no fused schedule
		{Method: SPAI, Solver: SolverGMRES, Precision: FP32},    // GMRES is FP64-only
		{Method: SPAI, Solver: SolverGMRES, Restart: -1},        // negative restart
		{Method: SPAI, Solver: SolverGMRES, SPAISteps: -1},      // negative enrichment
		{Method: SPAI, Solver: SolverGMRES, SPAIEpsilon: -0.5},  // negative target
	}
	for i, opt := range bad {
		if _, err := Solve(a, b, opt); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("bad[%d] %+v: want ErrInvalidOptions, got %v", i, opt, err)
		}
	}
	// Batched solves are CG-only.
	_, err := SolveBatch(a, [][]float64{b}, Options{Method: SPAI, Solver: SolverGMRES, Ranks: 2})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("batched GMRES: want ErrInvalidOptions, got %v", err)
	}
}

// Command fsairank is the multi-process rank worker. It is normally not run
// by hand: the mprun launcher re-executes whatever binary called it with the
// worker environment set, and MaybeWorker takes over. Running fsairank
// directly gives the self-check mode used by `make mp`:
//
//	fsairank -selfcheck [-ranks 4] [-matrix Dubcova2-sim]
//
// which solves the named catalog matrix once with in-process goroutine ranks
// and once with one OS process per rank over the TCP mesh, then diffs the two
// runs bit for bit — solution vector, iteration count, and per-rank metered
// traffic in both phases.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"fsaicomm/internal/core"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/mprun"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/testsets"
)

func main() {
	mprun.MaybeWorker()

	selfcheck := flag.Bool("selfcheck", false, "run the sim-vs-multiprocess differential and exit")
	ranks := flag.Int("ranks", 4, "world size for -selfcheck")
	matrix := flag.String("matrix", "Dubcova2-sim", "catalog matrix for -selfcheck")
	flag.Parse()

	if !*selfcheck {
		fmt.Fprintln(os.Stderr, "fsairank: worker environment not set and -selfcheck not given")
		fmt.Fprintln(os.Stderr, "(this binary is normally spawned by the mprun launcher; see -h)")
		os.Exit(2)
	}
	if err := runSelfcheck(*ranks, *matrix); err != nil {
		fmt.Fprintln(os.Stderr, "FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("PASS")
}

func runSelfcheck(ranks int, matrix string) error {
	sp, err := testsets.ByName(matrix)
	if err != nil {
		return err
	}
	a := sp.Generate()
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)/7
	}
	offsets := make([]int, ranks+1)
	for r := 0; r <= ranks; r++ {
		offsets[r] = r * a.Rows / ranks
	}
	spec := &mprun.SolveSpec{
		N: a.Rows, Ranks: ranks, Offsets: offsets, PA: a, PB: b,
		Cfg: core.Config{Method: core.FSAIEComm, Filter: 0.01, LineBytes: 64},
		Tol: 1e-8, MaxIter: 2000, Variant: krylov.CGClassic,
	}
	fmt.Printf("matrix %s: n=%d nnz=%d ranks=%d\n", matrix, a.Rows, a.NNZ(), ranks)

	simOuts := make([]*mprun.RankOutcome, ranks)
	t0 := time.Now()
	if _, err := simmpi.Run(ranks, 60*time.Second, func(c *simmpi.Comm) error {
		out, err := mprun.RunSolveRank(context.Background(), c, spec)
		if err != nil {
			return err
		}
		simOuts[c.Rank()] = out
		return nil
	}); err != nil {
		return fmt.Errorf("sim backend: %w", err)
	}
	fmt.Printf("sim backend:  %d iterations in %v\n", simOuts[0].Iterations, time.Since(t0).Round(time.Millisecond))

	job := &mprun.JobSpec{Solve: spec}
	t1 := time.Now()
	tcpOuts, err := mprun.Launch(context.Background(), ranks, 120*time.Second,
		func(rank int) *mprun.JobSpec { return job })
	if err != nil {
		return fmt.Errorf("tcp backend: %w", err)
	}
	fmt.Printf("tcp backend:  %d iterations in %v (%d worker processes)\n",
		tcpOuts[0].Iterations, time.Since(t1).Round(time.Millisecond), ranks)

	for r := 0; r < ranks; r++ {
		s, p := simOuts[r], tcpOuts[r]
		if p == nil {
			return fmt.Errorf("rank %d: no outcome from worker", r)
		}
		if s.Iterations != p.Iterations || s.Converged != p.Converged || s.RelResidual != p.RelResidual {
			return fmt.Errorf("rank %d: stats diverge: sim (%d, %v, %g) vs tcp (%d, %v, %g)",
				r, s.Iterations, s.Converged, s.RelResidual, p.Iterations, p.Converged, p.RelResidual)
		}
		if len(s.XLocal) != len(p.XLocal) {
			return fmt.Errorf("rank %d: solution length diverges: %d vs %d", r, len(s.XLocal), len(p.XLocal))
		}
		for i := range s.XLocal {
			if s.XLocal[i] != p.XLocal[i] {
				return fmt.Errorf("rank %d: x[%d] diverges: %v vs %v", r, s.Lo+i, s.XLocal[i], p.XLocal[i])
			}
		}
		if s.SetupComm != p.SetupComm || s.SolveComm != p.SolveComm {
			return fmt.Errorf("rank %d: metered traffic diverges:\nsim setup %+v solve %+v\ntcp setup %+v solve %+v",
				r, s.SetupComm, s.SolveComm, p.SetupComm, p.SolveComm)
		}
	}
	if !simOuts[0].Converged {
		return fmt.Errorf("solve did not converge (%d iterations)", simOuts[0].Iterations)
	}
	fmt.Printf("diff: x, iterations, and per-rank comm meters bit-identical across backends\n")
	return nil
}

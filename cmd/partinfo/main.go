// Command partinfo partitions a matrix and reports the distribution
// quality metrics the FSAIE-Comm machinery depends on: edge cut, per-rank
// weights, halo sizes, neighbour counts and the entry imbalance index.
//
// Usage:
//
//	partinfo -matrix A.mtx -ranks 8 [-partitioner multilevel|block|strip]
//	partinfo -name ecology2-sim -ranks 8
package main

import (
	"flag"
	"fmt"
	"os"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/partition"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

func main() {
	var (
		matrixPath  = flag.String("matrix", "", "Matrix Market file")
		name        = flag.String("name", "", "catalog matrix name (alternative to -matrix)")
		ranks       = flag.Int("ranks", 4, "number of parts")
		partitioner = flag.String("partitioner", "multilevel", "multilevel, block or strip")
		seed        = flag.Int64("seed", 0, "multilevel partitioner seed")
	)
	flag.Parse()
	if err := run(*matrixPath, *name, *ranks, *partitioner, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "partinfo:", err)
		os.Exit(1)
	}
}

func run(matrixPath, name string, ranks int, partitioner string, seed int64) error {
	var a *sparse.CSR
	switch {
	case matrixPath != "":
		f, err := os.Open(matrixPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if a, err = sparse.ReadMatrixMarket(f); err != nil {
			return err
		}
	case name != "":
		s, err := testsets.ByName(name)
		if err != nil {
			return err
		}
		a = s.Generate()
	default:
		return fmt.Errorf("pass -matrix or -name")
	}

	g := partition.GraphFromMatrix(a)
	var part []int
	var err error
	switch partitioner {
	case "multilevel":
		part, err = partition.Multilevel(g, ranks, partition.Options{Seed: seed})
		if err != nil {
			return err
		}
	case "block":
		part = partition.Block(a.Rows, ranks)
	case "strip":
		part = partition.Strip(a.Rows, ranks)
	default:
		return fmt.Errorf("unknown partitioner %q", partitioner)
	}

	fmt.Printf("matrix: %d rows, %d entries; %s partition into %d parts\n",
		a.Rows, a.NNZ(), partitioner, ranks)
	fmt.Printf("edge cut: %d   comm volume: %d   vertex-weight imbalance (max/avg): %.3f\n",
		partition.EdgeCut(g, part), partition.CommVolume(g, part, ranks),
		partition.ImbalanceRatio(g, part, ranks))

	pa, layout, _ := distmat.ApplyPartition(a, part, ranks)
	var totalHalo int
	var maxNNZ, sumNNZ int64
	fmt.Println("rank  rows   nnz     halo  neighbours")
	for r := 0; r < ranks; r++ {
		lo, hi := layout.Range(r)
		rows := distmat.ExtractLocalRows(pa, lo, hi)
		lz := distmat.Localize(lo, hi, rows)
		owners := map[int]bool{}
		for _, gcol := range lz.Halo {
			owners[layout.Owner(gcol)] = true
		}
		fmt.Printf("%4d  %5d  %6d  %4d  %d\n", r, hi-lo, rows.NNZ(), len(lz.Halo), len(owners))
		totalHalo += len(lz.Halo)
		if int64(rows.NNZ()) > maxNNZ {
			maxNNZ = int64(rows.NNZ())
		}
		sumNNZ += int64(rows.NNZ())
	}
	fmt.Printf("total halo unknowns: %d (%.2f%% of rows)\n",
		totalHalo, 100*float64(totalHalo)/float64(a.Rows))
	fmt.Printf("entry imbalance index (avg/max): %.3f\n",
		float64(sumNNZ)/float64(ranks)/float64(maxNNZ))
	return nil
}

package main

import "testing"

func TestRunByName(t *testing.T) {
	for _, p := range []string{"multilevel", "block", "strip"} {
		if err := run("", "qa8fm-sim", 4, p, 1); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 4, "multilevel", 0); err == nil {
		t.Fatal("no input accepted")
	}
	if err := run("", "qa8fm-sim", 4, "bogus", 0); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
	if err := run("/nonexistent.mtx", "", 4, "block", 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

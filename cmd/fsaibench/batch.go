package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"fsaicomm"
	"fsaicomm/internal/testsets"
)

// batchRecord is one row of the BENCH_batch.json artifact emitted by
// `make bench`: the same k right-hand sides solved twice through one
// prepared system — k looped Prepared.Solve calls versus one
// Prepared.SolveBatch — so the pair isolates what batching buys. The
// batched solve runs one k-wide halo message and one k-wide reduction
// where the loop pays k narrow ones, so comm_messages_per_rhs and
// collective_calls_per_rhs drop by ~k (exactly k when every column takes
// the same iteration count; slightly less when the batch loop runs to the
// slowest column). Each batched column is bit-identical to its looped
// solve, so the rows differ only in wall time and communication.
type batchRecord struct {
	Matrix  string `json:"matrix"`
	Rows    int    `json:"rows"`
	NNZ     int    `json:"nnz"`
	Variant string `json:"variant"`
	Ranks   int    `json:"ranks"`
	Backend string `json:"backend"` // sim | tcp
	K       int    `json:"k"`       // right-hand sides per batch

	Iterations int  `json:"iterations"` // batch loop = max over columns
	Converged  bool `json:"converged"`  // every column

	NsPerRHSBatched int64   `json:"ns_per_rhs_batched"`
	NsPerRHSLooped  int64   `json:"ns_per_rhs_looped"`
	SpeedupPerRHS   float64 `json:"speedup_per_rhs"` // looped / batched

	MsgsPerRHSBatched  float64 `json:"comm_messages_per_rhs_batched"`
	MsgsPerRHSLooped   float64 `json:"comm_messages_per_rhs_looped"`
	CollsPerRHSBatched float64 `json:"collective_calls_per_rhs_batched"`
	CollsPerRHSLooped  float64 `json:"collective_calls_per_rhs_looped"`
	MessageDropX       float64 `json:"message_drop_x"`    // looped / batched, ≈ k
	CollectiveDropX    float64 `json:"collective_drop_x"` // looped / batched, ≈ k

	BatchedCommBytes int64 `json:"batched_comm_bytes"` // ≈ looped: k-wide payloads
	LoopedCommBytes  int64 `json:"looped_comm_bytes"`
}

// measureBatchCell times one (matrix, variant, backend, k) cell: k looped
// prepared solves of distinct right-hand sides, then the same k columns as
// one batched solve.
func measureBatchCell(name string, a *fsaicomm.Matrix, p *fsaicomm.Prepared, v fsaicomm.CGVariant, backend string, k int) (batchRecord, error) {
	so := fsaicomm.SolveOptions{CGVariant: v, Transport: backend}
	rhs := make([][]float64, k)
	for c := range rhs {
		rhs[c] = fsaicomm.GenerateRHS(a, int64(11+c))
	}
	ctx := context.Background()

	var loopNs time.Duration
	var loopMsgs, loopColls, loopBytes int64
	start := time.Now()
	for c := range rhs {
		res, err := p.Solve(ctx, rhs[c], so)
		if err != nil {
			return batchRecord{}, fmt.Errorf("%s %s/%v k=%d looped col %d: %w", name, backend, v, k, c, err)
		}
		loopMsgs += res.CommMessages
		loopColls += res.CollectiveCalls
		loopBytes += res.CommBytes
	}
	loopNs = time.Since(start)

	start = time.Now()
	br, err := p.SolveBatch(ctx, rhs, so)
	batchNs := time.Since(start)
	if err != nil {
		return batchRecord{}, fmt.Errorf("%s %s/%v k=%d batched: %w", name, backend, v, k, err)
	}

	fk := float64(k)
	return batchRecord{
		Matrix: name, Rows: a.Rows, NNZ: a.NNZ(),
		Variant: v.String(), Ranks: p.Ranks(), Backend: backend, K: k,
		Iterations: br.Iterations, Converged: br.AllConverged(),

		NsPerRHSBatched: batchNs.Nanoseconds() / int64(k),
		NsPerRHSLooped:  loopNs.Nanoseconds() / int64(k),
		SpeedupPerRHS:   float64(loopNs) / float64(batchNs),

		MsgsPerRHSBatched:  float64(br.CommMessages) / fk,
		MsgsPerRHSLooped:   float64(loopMsgs) / fk,
		CollsPerRHSBatched: float64(br.CollectiveCalls) / fk,
		CollsPerRHSLooped:  float64(loopColls) / fk,
		MessageDropX:       float64(loopMsgs) / float64(br.CommMessages),
		CollectiveDropX:    float64(loopColls) / float64(br.CollectiveCalls),

		BatchedCommBytes: br.CommBytes,
		LoopedCommBytes:  loopBytes,
	}, nil
}

// writeBatchJSON runs the batched-throughput sweep and emits the rows as
// indented JSON (and, when csvPath is set, the same rows as CSV):
//
//   - Dubcova2-sim at 4 ranks, classic and fused, k ∈ {1, 4, 16} on the
//     in-process backend — the per-RHS communication drop versus k;
//   - a ~50k-row Poisson 3D instance at 4 ranks, classic, k = 16 on every
//     requested backend — on "tcp" the looped baseline pays k process
//     spawns, rendezvous and factor ships where the batch pays one, which
//     is the acceptance number for server-side coalescing.
//
// Setup is paid once per instance via Prepare, outside all timings. The
// tcp k=16 row must come out faster per RHS than the loop — the sweep
// fails loudly if batching ever loses on it.
func writeBatchJSON(w io.Writer, csvPath string, backends []string, prec fsaicomm.Precision) error {
	var recs []batchRecord

	spec, err := testsets.ByName("Dubcova2-sim")
	if err != nil {
		return err
	}
	a := spec.Generate()
	p, err := fsaicomm.Prepare(a, fsaicomm.Options{Method: fsaicomm.FSAIEComm, Filter: 0.01, Ranks: 4, Precision: prec})
	if err != nil {
		return fmt.Errorf("prepare %s: %w", spec.Name, err)
	}
	for _, v := range []fsaicomm.CGVariant{fsaicomm.CGClassic, fsaicomm.CGFused} {
		for _, k := range []int{1, 4, 16} {
			rec, err := measureBatchCell(spec.Name, a, p, v, "sim", k)
			if err != nil {
				return err
			}
			recs = append(recs, rec)
		}
	}

	big := fsaicomm.GeneratePoisson3D(37, 37, 37) // 50653 rows
	pb, err := fsaicomm.Prepare(big, fsaicomm.Options{
		Method: fsaicomm.FSAI, Ranks: 4, Partitioner: "block", Precision: prec,
	})
	if err != nil {
		return fmt.Errorf("prepare poisson3d-50k: %w", err)
	}
	for _, backend := range backends {
		rec, err := measureBatchCell("poisson3d-50k", big, pb, fsaicomm.CGClassic, backend, 16)
		if err != nil {
			return err
		}
		recs = append(recs, rec)
		if backend == "tcp" && rec.NsPerRHSBatched >= rec.NsPerRHSLooped {
			return fmt.Errorf("tcp k=16 on poisson3d-50k: batched %d ns/RHS did not beat looped %d ns/RHS",
				rec.NsPerRHSBatched, rec.NsPerRHSLooped)
		}
	}

	if csvPath != "" {
		if err := writeBatchCSV(csvPath, recs); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// writeBatchCSV writes the sweep rows as a flat CSV next to the JSON
// artifact, one column per record field.
func writeBatchCSV(path string, recs []batchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(f)
	header := []string{
		"matrix", "rows", "nnz", "variant", "ranks", "backend", "k",
		"iterations", "converged",
		"ns_per_rhs_batched", "ns_per_rhs_looped", "speedup_per_rhs",
		"comm_messages_per_rhs_batched", "comm_messages_per_rhs_looped",
		"collective_calls_per_rhs_batched", "collective_calls_per_rhs_looped",
		"message_drop_x", "collective_drop_x",
		"batched_comm_bytes", "looped_comm_bytes",
	}
	if err := cw.Write(header); err != nil {
		f.Close()
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range recs {
		row := []string{
			r.Matrix, strconv.Itoa(r.Rows), strconv.Itoa(r.NNZ), r.Variant,
			strconv.Itoa(r.Ranks), r.Backend, strconv.Itoa(r.K),
			strconv.Itoa(r.Iterations), strconv.FormatBool(r.Converged),
			strconv.FormatInt(r.NsPerRHSBatched, 10), strconv.FormatInt(r.NsPerRHSLooped, 10), g(r.SpeedupPerRHS),
			g(r.MsgsPerRHSBatched), g(r.MsgsPerRHSLooped),
			g(r.CollsPerRHSBatched), g(r.CollsPerRHSLooped),
			g(r.MessageDropX), g(r.CollectiveDropX),
			strconv.FormatInt(r.BatchedCommBytes, 10), strconv.FormatInt(r.LoopedCommBytes, 10),
		}
		if err := cw.Write(row); err != nil {
			f.Close()
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

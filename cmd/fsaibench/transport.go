package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"fsaicomm"
	"fsaicomm/internal/testsets"
)

// transportRecord is one row of the BENCH_transport.json artifact emitted by
// `make bench`: the same prepared solve timed through both rank backends —
// "sim" (goroutine ranks over in-process channels) and "tcp" (one OS process
// per rank over a socket mesh). The solves are bit-identical across backends
// (the conformance suite enforces it), so the rows differ only in wall time:
// the tcp ns_per_op includes process spawn, the coordinator rendezvous and
// the full-mesh handshake, which is the honest cost of picking that backend.
type transportRecord struct {
	Matrix  string `json:"matrix"`
	Rows    int    `json:"rows"`
	NNZ     int    `json:"nnz"`
	Variant string `json:"variant"`
	Ranks   int    `json:"ranks"`
	Backend string `json:"backend"` // sim | tcp

	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`

	NsPerOp         int64 `json:"ns_per_op"` // wall time of one prepared solve
	CommBytes       int64 `json:"comm_bytes"`
	CollectiveCalls int64 `json:"collective_calls"`
	CollectiveBytes int64 `json:"collective_bytes"`
}

// transportBackends expands the -transport flag for the transportjson
// experiment: empty or "both" measures the two backends side by side.
func transportBackends(flag string) ([]string, error) {
	switch flag {
	case "", "both":
		return []string{"sim", "tcp"}, nil
	case "sim", "tcp":
		return []string{flag}, nil
	default:
		return nil, fmt.Errorf("unknown transport %q (want sim, tcp or both)", flag)
	}
}

// writeTransportJSON times classic, fused and pipelined prepared solves at 4
// and 8 ranks on each requested backend and emits the rows as indented JSON.
// Setup is paid once per rank count via Prepare — the factors are transport-
// independent — so ns_per_op isolates what the backend adds to a solve.
// prec selects the solve precision (-precision fp32 measures the refined
// mixed-precision path instead of the FP64 default).
func writeTransportJSON(w io.Writer, backends []string, prec fsaicomm.Precision) error {
	spec, err := testsets.ByName("Dubcova2-sim")
	if err != nil {
		return err
	}
	a := spec.Generate()
	b := fsaicomm.GenerateRHS(a, 11)
	variants := []fsaicomm.CGVariant{fsaicomm.CGClassic, fsaicomm.CGFused, fsaicomm.CGPipelined}

	var recs []transportRecord
	for _, ranks := range []int{4, 8} {
		p, err := fsaicomm.Prepare(a, fsaicomm.Options{
			Method: fsaicomm.FSAIEComm, Filter: 0.01, Ranks: ranks, Precision: prec,
		})
		if err != nil {
			return fmt.Errorf("prepare at %d ranks: %w", ranks, err)
		}
		for _, v := range variants {
			for _, backend := range backends {
				so := fsaicomm.SolveOptions{CGVariant: v, Transport: backend}
				start := time.Now()
				res, err := p.Solve(context.Background(), b, so)
				elapsed := time.Since(start)
				if err != nil {
					return fmt.Errorf("%s %v at %d ranks: %w", backend, v, ranks, err)
				}
				recs = append(recs, transportRecord{
					Matrix: spec.Name, Rows: a.Rows, NNZ: a.NNZ(),
					Variant: v.String(), Ranks: ranks, Backend: backend,
					Iterations: res.Iterations, Converged: res.Converged,
					NsPerOp:         elapsed.Nanoseconds(),
					CommBytes:       res.CommBytes,
					CollectiveCalls: res.CollectiveCalls,
					CollectiveBytes: res.CollectiveBytes,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"fsaicomm"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/testsets"
)

// spaiRecord is one row of the BENCH_spai.json artifact emitted by
// `make bench`: restarted GMRES on the Péclet-skewed convection–diffusion
// instance, unpreconditioned versus the adaptive SPAI right inverse. The
// writer asserts, and the Makefile bench gate therefore enforces, that the
// SPAI-preconditioned solve converges and needs strictly fewer iterations
// than the unpreconditioned baseline on every measured rank count and
// backend.
type spaiRecord struct {
	Matrix  string `json:"matrix"`
	Rows    int    `json:"rows"`
	NNZ     int    `json:"nnz"`
	Precond string `json:"precond"` // none | spai
	Ranks   int    `json:"ranks"`   // 1 = serial
	Backend string `json:"backend"` // serial | sim | tcp
	Restart int    `json:"restart"`

	Iterations  int     `json:"iterations"`
	Converged   bool    `json:"converged"`
	RelResidual float64 `json:"rel_residual"`
	PctNNZ      float64 `json:"pct_nnz_increase,omitempty"` // nnz(M) vs nnz(A), SPAI rows

	NsPerOp         int64 `json:"ns_per_op"` // wall time of one solve
	CommBytes       int64 `json:"comm_bytes,omitempty"`
	CollectiveCalls int64 `json:"collective_calls,omitempty"`
	CollectiveBytes int64 `json:"collective_bytes,omitempty"`
}

// writeSPAIJSON benchmarks the nonsymmetric solver axis on the catalog's
// solver-stressing instance (upwind convection–diffusion at Péclet 50). The
// baseline is plain restarted GMRES(30) with no preconditioner, run through
// the serial Krylov loop directly — the facade deliberately couples Method
// SPAI with Solver GMRES, so an identity-preconditioned facade solve does
// not exist. The SPAI rows run through the public API: one serial solve,
// then prepared solves at 4 and 8 ranks on each requested backend, so the
// artifact also pins the distributed GMRES collective cost per iteration.
func writeSPAIJSON(w io.Writer, backends []string) error {
	const restart = 30
	spec, err := testsets.ByName("convdiff-skew-sim")
	if err != nil {
		return err
	}
	a := spec.Generate()
	b := fsaicomm.GenerateRHS(a, 13)

	// Unpreconditioned baseline: serial GMRES(30), identity preconditioner.
	x := make([]float64, a.Rows)
	start := time.Now()
	st, err := krylov.GMRES(a, b, x, krylov.Identity{}, krylov.Options{Tol: 1e-8, Restart: restart}, nil)
	baseNs := time.Since(start).Nanoseconds()
	if err != nil {
		return fmt.Errorf("unpreconditioned GMRES baseline: %w", err)
	}
	base := spaiRecord{
		Matrix: spec.Name, Rows: a.Rows, NNZ: a.NNZ(),
		Precond: "none", Ranks: 1, Backend: "serial", Restart: restart,
		Iterations: st.Iterations, Converged: st.Converged, RelResidual: st.RelResidual,
		NsPerOp: baseNs,
	}
	recs := []spaiRecord{base}

	opt := fsaicomm.Options{
		Method: fsaicomm.SPAI, Solver: fsaicomm.SolverGMRES,
		Restart: restart, SPAISteps: 2, Tol: 1e-8,
	}
	gate := func(r spaiRecord) error {
		if !r.Converged {
			return fmt.Errorf("spai ranks=%d backend=%s: did not converge (rel residual %g after %d iterations)",
				r.Ranks, r.Backend, r.RelResidual, r.Iterations)
		}
		if r.Iterations >= base.Iterations {
			return fmt.Errorf("spai ranks=%d backend=%s: %d iterations do not beat the unpreconditioned %d",
				r.Ranks, r.Backend, r.Iterations, base.Iterations)
		}
		return nil
	}

	// Serial SPAI through the facade.
	sOpt := opt
	sOpt.Ranks = 1
	start = time.Now()
	res, err := fsaicomm.Solve(a, b, sOpt)
	elapsed := time.Since(start)
	if err != nil {
		return fmt.Errorf("serial spai+gmres: %w", err)
	}
	rec := spaiRecord{
		Matrix: spec.Name, Rows: a.Rows, NNZ: a.NNZ(),
		Precond: "spai", Ranks: 1, Backend: "serial", Restart: restart,
		Iterations: res.Iterations, Converged: res.Converged, RelResidual: res.RelResidual,
		PctNNZ: res.PctNNZIncrease, NsPerOp: elapsed.Nanoseconds(),
	}
	if err := gate(rec); err != nil {
		return err
	}
	recs = append(recs, rec)

	// Distributed SPAI: prepared once per rank count, solved per backend.
	for _, ranks := range []int{4, 8} {
		dOpt := opt
		dOpt.Ranks = ranks
		p, err := fsaicomm.Prepare(a, dOpt)
		if err != nil {
			return fmt.Errorf("prepare spai at %d ranks: %w", ranks, err)
		}
		for _, backend := range backends {
			start := time.Now()
			res, err := p.Solve(context.Background(), b, fsaicomm.SolveOptions{Transport: backend})
			elapsed := time.Since(start)
			if err != nil {
				return fmt.Errorf("spai ranks=%d backend=%s: %w", ranks, backend, err)
			}
			rec := spaiRecord{
				Matrix: spec.Name, Rows: a.Rows, NNZ: a.NNZ(),
				Precond: "spai", Ranks: ranks, Backend: backend, Restart: restart,
				Iterations: res.Iterations, Converged: res.Converged, RelResidual: res.RelResidual,
				PctNNZ:          res.PctNNZIncrease,
				NsPerOp:         elapsed.Nanoseconds(),
				CommBytes:       res.CommBytes,
				CollectiveCalls: res.CollectiveCalls,
				CollectiveBytes: res.CollectiveBytes,
			}
			if err := gate(rec); err != nil {
				return err
			}
			recs = append(recs, rec)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"fsaicomm"
	"fsaicomm/internal/experiments"
)

// mixedRecord is one row of the BENCH_mixed.json artifact emitted by
// `make bench`: the same prepared solve run once with FP64 factors and once
// with float32 factors wrapped in the FP64 iterative-refinement outer loop,
// on each requested rank backend. The halo traffic of the inner solves
// narrows to 4 bytes per value under fp32, so comm_bytes — all metered
// point-to-point traffic, including the FP64 residual exchanges of the
// refinement loop — must land well under the fp64 row's. The writer asserts,
// and the Makefile bench gate therefore enforces, that fp32 halo bytes stay
// below 0.55x of fp64 and that the refined solve still reaches the FP64
// tolerance.
type mixedRecord struct {
	Matrix    string `json:"matrix"`
	Rows      int    `json:"rows"`
	NNZ       int    `json:"nnz"`
	Variant   string `json:"variant"`
	Ranks     int    `json:"ranks"`
	Backend   string `json:"backend"`   // sim | tcp
	Precision string `json:"precision"` // fp64 | fp32

	Iterations  int     `json:"iterations"`
	Refinements int     `json:"refinements,omitempty"` // FP64 outer corrections (fp32 only)
	Converged   bool    `json:"converged"`
	RelResidual float64 `json:"rel_residual"`

	NsPerOp         int64 `json:"ns_per_op"` // wall time of one prepared solve
	CommBytes       int64 `json:"comm_bytes"`
	CollectiveCalls int64 `json:"collective_calls"`
	CollectiveBytes int64 `json:"collective_bytes"`
}

// mixedHaloGate is the regression bound enforced on the byte-gated
// (variant, backend) pairs: fp32 point-to-point bytes must stay below this
// fraction of fp64's. The theoretical floor is 0.5 (4-byte halo values); the
// slack above it pays for the FP64 residual halo exchange of each refinement
// step and the few extra inner iterations the narrowed operator costs.
const mixedHaloGate = 0.55

// writeMixedJSON benchmarks fp32 factors + FP64 iterative refinement against
// the pure FP64 baseline at 8 ranks on each requested backend, on the 50k-row
// bench instance (the refinement loop's fixed outer cost — one FP64 residual
// exchange per step — amortizes over the iteration count, so the gate
// measures a solve long enough to be representative). Precision is a
// setup-level option — the factors are narrowed once per Prepare — so each
// precision pays its own setup and the rows isolate the per-solve cost and
// traffic of the precision choice.
//
// The byte gate applies to classic and fused CG, whose FP64 iteration-vector
// recurrences stay accurate enough for the inner fp32 solve to reach the
// refinement target in one deep pass. Pipelined CG is measured and emitted
// but not byte-gated: its deeply drifted recurrence needs periodic residual
// replacement under fp32, and each replacement refreshes the whole recurrence
// family — about three iterations' worth of halo traffic — which pins it near
// 0.6x rather than 0.5x. Its rows still assert convergence to the FP64
// tolerance.
func writeMixedJSON(w io.Writer, backends []string) error {
	const ranks = 8
	spec := experiments.BenchSpec()
	a := spec.Generate()
	b := fsaicomm.GenerateRHS(a, 11)
	variants := []struct {
		v        fsaicomm.CGVariant
		byteGate bool
	}{
		{fsaicomm.CGClassic, true},
		{fsaicomm.CGFused, true},
		{fsaicomm.CGPipelined, false},
	}

	prepared := map[fsaicomm.Precision]*fsaicomm.Prepared{}
	for _, prec := range []fsaicomm.Precision{fsaicomm.FP64, fsaicomm.FP32} {
		p, err := fsaicomm.Prepare(a, fsaicomm.Options{
			Method: fsaicomm.FSAI, Ranks: ranks, Precision: prec,
		})
		if err != nil {
			return fmt.Errorf("prepare %v at %d ranks: %w", prec, ranks, err)
		}
		prepared[prec] = p
	}

	var recs []mixedRecord
	for _, vt := range variants {
		v := vt.v
		for _, backend := range backends {
			var pair [2]mixedRecord
			for i, prec := range []fsaicomm.Precision{fsaicomm.FP64, fsaicomm.FP32} {
				so := fsaicomm.SolveOptions{CGVariant: v, Transport: backend}
				start := time.Now()
				res, err := prepared[prec].Solve(context.Background(), b, so)
				elapsed := time.Since(start)
				if err != nil {
					return fmt.Errorf("%s %v %v: %w", backend, v, prec, err)
				}
				pair[i] = mixedRecord{
					Matrix: spec.Name, Rows: a.Rows, NNZ: a.NNZ(),
					Variant: v.String(), Ranks: ranks,
					Backend: backend, Precision: prec.String(),
					Iterations: res.Iterations, Refinements: res.Refinements,
					Converged: res.Converged, RelResidual: res.RelResidual,
					NsPerOp:         elapsed.Nanoseconds(),
					CommBytes:       res.CommBytes,
					CollectiveCalls: res.CollectiveCalls,
					CollectiveBytes: res.CollectiveBytes,
				}
			}
			f64, f32 := pair[0], pair[1]
			// Accuracy gate: refinement must recover the FP64 tolerance, not
			// merely finish.
			if !f64.Converged {
				return fmt.Errorf("%s %v: fp64 baseline did not converge", backend, v)
			}
			if !f32.Converged {
				return fmt.Errorf("%s %v: fp32 refined solve did not converge (rel residual %g after %d refinements)",
					backend, v, f32.RelResidual, f32.Refinements)
			}
			// Traffic gate: the inner iterations dominate, so narrowing the
			// halo to float32 must cut point-to-point bytes near in half.
			if limit := int64(mixedHaloGate * float64(f64.CommBytes)); vt.byteGate && f32.CommBytes > limit {
				return fmt.Errorf("%s %v: fp32 halo bytes %d exceed %.2fx of fp64's %d (limit %d)",
					backend, v, f32.CommBytes, mixedHaloGate, f64.CommBytes, limit)
			}
			recs = append(recs, f64, f32)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"imbalance", "fig3a"} {
		var buf bytes.Buffer
		if err := run(exp, "quick", "", 0, &buf); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(buf.String(), "completed") {
			t.Fatalf("%s: output incomplete", exp)
		}
	}
}

func TestRunArchOverride(t *testing.T) {
	var buf bytes.Buffer
	if err := run("fig3a", "quick", "a64fx", 2, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a64fx") {
		t.Fatal("arch override ignored")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run("nope", "quick", "", 0, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("table1", "huge", "", 0, &buf); err == nil {
		t.Fatal("unknown set accepted")
	}
}

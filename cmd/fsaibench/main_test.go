package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"imbalance", "fig3a"} {
		var buf bytes.Buffer
		if err := run(exp, "quick", "", 0, "classic", "", &buf); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(buf.String(), "completed") {
			t.Fatalf("%s: output incomplete", exp)
		}
	}
}

func TestRunArchOverride(t *testing.T) {
	var buf bytes.Buffer
	if err := run("fig3a", "quick", "a64fx", 2, "classic", "", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a64fx") {
		t.Fatal("arch override ignored")
	}
}

func TestRunCommHidingVariants(t *testing.T) {
	for _, cg := range []string{"fused", "pipelined"} {
		var buf bytes.Buffer
		if err := run("imbalance", "quick", "", 0, cg, "", &buf); err != nil {
			t.Fatalf("-cg %s: %v", cg, err)
		}
		if !strings.Contains(buf.String(), "completed") {
			t.Fatalf("-cg %s: output incomplete", cg)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run("nope", "quick", "", 0, "classic", "", &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("table1", "huge", "", 0, "classic", "", &buf); err == nil {
		t.Fatal("unknown set accepted")
	}
	if err := run("table1", "quick", "", 0, "bogus", "", &buf); err == nil {
		t.Fatal("unknown CG variant accepted")
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"imbalance", "fig3a"} {
		var buf bytes.Buffer
		if err := run(exp, "quick", "", 0, "classic", "", "both", "", "", &buf); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(buf.String(), "completed") {
			t.Fatalf("%s: output incomplete", exp)
		}
	}
}

func TestRunArchOverride(t *testing.T) {
	var buf bytes.Buffer
	if err := run("fig3a", "quick", "a64fx", 2, "classic", "", "both", "", "", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a64fx") {
		t.Fatal("arch override ignored")
	}
}

func TestRunCommHidingVariants(t *testing.T) {
	for _, cg := range []string{"fused", "pipelined"} {
		var buf bytes.Buffer
		if err := run("imbalance", "quick", "", 0, cg, "", "both", "", "", &buf); err != nil {
			t.Fatalf("-cg %s: %v", cg, err)
		}
		if !strings.Contains(buf.String(), "completed") {
			t.Fatalf("-cg %s: output incomplete", cg)
		}
	}
}

// The transport bench rows must carry a sane measurement per (variant,
// ranks, backend) cell; sim-only keeps this free of process spawns — the
// tcp rows go through the identical code path (see transport_test.go at
// the repo root for the cross-backend identity).
func TestRunTransportJSONSim(t *testing.T) {
	var buf bytes.Buffer
	if err := run("transportjson", "quick", "", 0, "classic", "", "sim", "", "", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"backend": "sim"`, `"variant": "pipelined"`, `"ranks": 8`, `"ns_per_op"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("transportjson output missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"backend": "tcp"`) {
		t.Fatal("-transport sim produced tcp rows")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run("nope", "quick", "", 0, "classic", "", "both", "", "", &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("table1", "huge", "", 0, "classic", "", "both", "", "", &buf); err == nil {
		t.Fatal("unknown set accepted")
	}
	if err := run("table1", "quick", "", 0, "bogus", "", "both", "", "", &buf); err == nil {
		t.Fatal("unknown CG variant accepted")
	}
	if err := run("transportjson", "quick", "", 0, "classic", "", "carrier-pigeon", "", "", &buf); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

// Command fsaibench regenerates the tables and figures of the paper's
// evaluation section on the synthetic catalogs.
//
// Usage:
//
//	fsaibench -exp table1 [-set quick|full] [-arch skylake|a64fx|zen2]
//	fsaibench -exp all -set quick
//
// Experiments: table1 table2 table3 table4 table5 table6 table7
// fig2 fig3a fig3b fig4 fig5a fig5b fig6 fig7 fig8 imbalance all,
// plus interaction (filter × CG-variant × ranks study), phases (the
// per-window exposed/hidden breakdown of the modeled solve time per CG
// variant and rank count), benchjson (the BENCH_pipelined.json artifact
// of `make bench`; -out selects the file, default stdout), transportjson
// (the BENCH_transport.json artifact: measured ns/solve for the classic,
// fused and pipelined variants at 4 and 8 ranks on the in-process and the
// multi-process TCP backends; -transport narrows the backends measured)
// batchjson (the BENCH_batch.json artifact: batched multi-RHS
// Prepared.SolveBatch versus k looped solves — ns/RHS, and the ~k× drop in
// per-RHS halo messages and collective calls; -csv additionally emits the
// rows as CSV), nodeawarejson (the BENCH_nodeaware.json artifact:
// node-aware halo aggregation under a 2-node × 4-rank topology versus the
// flat per-rank schedule, asserting bit-identical solutions and the
// inter-node message-count reduction) and mixedjson (the BENCH_mixed.json
// artifact: float32 factors + FP64 iterative refinement versus the pure
// FP64 baseline per backend, gated so fp32 halo bytes stay below 0.55× of
// fp64 and the refined solve still reaches the FP64 tolerance) and
// spaijson (the BENCH_spai.json artifact: adaptive SPAI + restarted GMRES
// on the Péclet-skewed convection–diffusion instance versus unpreconditioned
// GMRES, gated so the preconditioned solve converges in strictly fewer
// iterations on every measured rank count and backend).
// -precision fp32 reruns transportjson/batchjson with float32 factors;
// mixedjson always measures both precisions side by side.
// The quick set (default) is a 7-matrix class-representative subset of
// Table 1; -set full runs the whole 39-matrix catalog (minutes, not
// seconds).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"fsaicomm"
	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/experiments"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/mprun"
	"fsaicomm/internal/testsets"
)

func main() {
	// The transportjson experiment spawns one process per rank by
	// re-executing this binary; those copies divert into worker mode here.
	mprun.MaybeWorker()
	exp := flag.String("exp", "all", "experiment id (table1..table7, fig2..fig8, imbalance, ablation, scaling, convergence, csv, all)")
	set := flag.String("set", "quick", "matrix set: quick (7 matrices) or full (39)")
	arch := flag.String("arch", "", "override architecture (skylake, a64fx, zen2); default per experiment")
	workers := flag.Int("workers", 0, "setup worker threads per simulated rank (0 = 1 per rank)")
	cg := flag.String("cg", "classic", "distributed CG loop: classic, classic-overlap, fused or pipelined")
	outPath := flag.String("out", "", "output file for -exp benchjson/transportjson/batchjson (default stdout)")
	transport := flag.String("transport", "both", "backends for -exp transportjson/batchjson: sim, tcp or both")
	csvPath := flag.String("csv", "", "also write -exp batchjson rows as CSV to this file")
	precision := flag.String("precision", "", "solve precision for -exp transportjson/batchjson: fp64 (default) or fp32 (float32 factors + FP64 refinement)")
	flag.Parse()

	if err := run(*exp, *set, *arch, *workers, *cg, *outPath, *transport, *csvPath, *precision, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fsaibench:", err)
		os.Exit(1)
	}
}

func run(exp, set, archOverride string, workers int, cg, outPath, transport, csvPath, precision string, out io.Writer) error {
	variant, err := krylov.ParseCGVariant(cg)
	if err != nil {
		return err
	}
	prec, err := fsaicomm.ParsePrecision(precision)
	if err != nil {
		return err
	}
	t1set := testsets.QuickSet()
	if set == "full" {
		t1set = testsets.Table1()
	} else if set != "quick" {
		return fmt.Errorf("unknown set %q", set)
	}
	t2set := testsets.Table2()
	if set == "quick" {
		t2set = t2set[:3]
	}

	// Runners are shared per architecture so experiments reuse each other's
	// memoized builds and solves (fig2 reuses table1/table3's Skylake work,
	// fig4/fig5 reuse table5's A64FX work, and so on).
	cache := map[string]*experiments.Runner{}
	runner := func(arch archmodel.Profile) *experiments.Runner {
		if archOverride != "" {
			p, err := archmodel.ByName(archOverride)
			if err == nil {
				arch = p
			}
		}
		if r, ok := cache[arch.Name]; ok {
			return r
		}
		r := experiments.NewRunner(arch)
		r.Workers = workers
		r.Variant = variant
		cache[arch.Name] = r
		return r
	}
	largeRunner := func(arch archmodel.Profile) *experiments.Runner {
		key := arch.Name + "-large"
		if archOverride != "" {
			if p, err := archmodel.ByName(archOverride); err == nil {
				arch = p
			}
		}
		if r, ok := cache[key]; ok {
			return r
		}
		r := experiments.NewRunner(arch)
		r.RanksOf = testsets.LargeRanks
		r.Workers = workers
		r.Variant = variant
		cache[key] = r
		return r
	}

	start := time.Now()
	dispatch := map[string]func() error{
		"table1": func() error {
			return experiments.Table1(out, runner(archmodel.Skylake), t1set, 0.01)
		},
		"table2": func() error {
			return experiments.Table1(out, largeRunner(archmodel.Zen2), t2set, 0.01)
		},
		"table3": func() error {
			return experiments.Table3(out, runner(archmodel.Skylake), t1set)
		},
		"table4": func() error {
			// Fixed per-core workload: the process count scales inversely
			// with cores per process, as in the paper's hybrid sweep. These
			// runners change both the profile and the rank rule, so they do
			// not share the per-architecture cache.
			mk := func(cores int) *experiments.Runner {
				r := experiments.NewRunner(archmodel.Skylake.WithCoresPerProcess(cores))
				r.RanksOf = func(nnz int) int {
					return testsets.RanksFor(nnz, 2048*cores, 1, 16)
				}
				r.Workers = workers
				r.Variant = variant
				return r
			}
			return experiments.WriteHybrid(out, mk, t1set, []int{1, 2, 4, 8, 48})
		},
		"table5": func() error {
			r := runner(archmodel.A64FX)
			return experiments.WriteFilterGrid(out, r, t1set, core.FSAIEComm, core.DynamicFilter, experiments.PaperFilters)
		},
		"table6": func() error {
			r := runner(archmodel.Zen2)
			return experiments.WriteFilterGrid(out, r, t1set, core.FSAIEComm, core.DynamicFilter, experiments.PaperFilters)
		},
		"table7": func() error {
			r := largeRunner(archmodel.Zen2)
			return experiments.WriteFilterGrid(out, r, t2set, core.FSAIEComm, core.DynamicFilter, experiments.PaperFilters)
		},
		"fig2": func() error {
			return experiments.WritePerMatrixFigure(out, runner(archmodel.Skylake), t1set, 0.01)
		},
		"fig3a": func() error {
			return experiments.WriteHistogram(out, runner(archmodel.Skylake), t1set, "misses",
				"Figure 3a: L1 DCM on x in GᵀGx per G nnz")
		},
		"fig3b": func() error {
			return experiments.WriteHistogram(out, runner(archmodel.Skylake), t1set, "gflops",
				"Figure 3b: GFLOP/s per process in GᵀGx")
		},
		"fig4": func() error {
			return experiments.WritePerMatrixFigure(out, runner(archmodel.A64FX), t1set, 0.05)
		},
		"fig5a": func() error {
			return experiments.WriteHistogram(out, runner(archmodel.A64FX), t1set, "misses",
				"Figure 5a: L1 DCM on x in GᵀGx per G nnz")
		},
		"fig5b": func() error {
			return experiments.WriteHistogram(out, runner(archmodel.A64FX), t1set, "gflops",
				"Figure 5b: GFLOP/s per process in GᵀGx")
		},
		"fig6": func() error {
			return experiments.WritePerMatrixFigure(out, runner(archmodel.Zen2), t1set, 0.05)
		},
		"fig7": func() error {
			return experiments.WriteHistogram(out, runner(archmodel.Zen2), t1set, "gflops",
				"Figure 7: GFLOP/s per process in GᵀGx")
		},
		"fig8": func() error {
			return experiments.WritePerMatrixFigure(out, largeRunner(archmodel.Zen2), t2set, 0.01)
		},
		"baselines": func() error {
			return experiments.WriteBaselines(out, runner(archmodel.Skylake), t1set)
		},
		"setupcost": func() error {
			return experiments.WriteSetupCost(out, t1set, 64)
		},
		"csv": func() error {
			return experiments.WriteResultsCSV(out, runner(archmodel.Skylake), t1set, experiments.PaperFilters)
		},
		"convergence": func() error {
			spec, err := testsets.ByName("thermal2-sim")
			if err != nil {
				return err
			}
			return experiments.WriteConvergence(out, runner(archmodel.Skylake), spec, 0.01)
		},
		"scaling": func() error {
			spec, err := testsets.ByName("Queen_4147-sim")
			if err != nil {
				return err
			}
			// Fresh runners: the sweep overrides the rank rule per point.
			mk := func() *experiments.Runner {
				r := experiments.NewRunner(archmodel.Zen2)
				r.Workers = workers
				return r
			}
			return experiments.WriteScaling(out, mk, spec, []int{2, 4, 8, 16, 32})
		},
		"ablation": func() error {
			return experiments.WriteAblation(out, runner(archmodel.Skylake), t1set)
		},
		"imbalance": func() error {
			spec, err := testsets.ByName("consph-sim")
			if err != nil {
				return err
			}
			return experiments.WriteImbalanceStudy(out, runner(archmodel.Skylake), spec, 0.01)
		},
		"interaction": func() error {
			// thermal2-sim has the largest pattern-side saving of the quick
			// set, so the composition question is sharpest there.
			spec, err := testsets.ByName("thermal2-sim")
			if err != nil {
				return err
			}
			// Fresh runners: the study overrides the rank rule per point.
			mk := func() *experiments.Runner {
				r := experiments.NewRunner(archmodel.Zen2)
				if archOverride != "" {
					if p, err := archmodel.ByName(archOverride); err == nil {
						r.Arch = p
					}
				}
				r.Workers = workers
				return r
			}
			return experiments.WriteInteraction(out, mk, spec, []int{2, 4, 8}, []float64{0.05, 0.1})
		},
		"phases": func() error {
			// Same instance and runners as the interaction study, so the
			// Total column of the phases table matches its modeled times.
			spec, err := testsets.ByName("thermal2-sim")
			if err != nil {
				return err
			}
			mk := func() *experiments.Runner {
				r := experiments.NewRunner(archmodel.Zen2)
				if archOverride != "" {
					if p, err := archmodel.ByName(archOverride); err == nil {
						r.Arch = p
					}
				}
				r.Workers = workers
				return r
			}
			return experiments.WritePhases(out, mk, spec, []int{4, 8}, 0.05)
		},
		"benchjson": func() error {
			arch := archmodel.Skylake
			if archOverride != "" {
				p, err := archmodel.ByName(archOverride)
				if err != nil {
					return err
				}
				arch = p
			}
			w := out
			if outPath != "" {
				f, err := os.Create(outPath)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			if err := experiments.WriteBenchJSON(w, arch, 8); err != nil {
				return err
			}
			if outPath != "" {
				fmt.Fprintf(out, "wrote bench artifact to %s\n", outPath)
			}
			return nil
		},
		"transportjson": func() error {
			backends, err := transportBackends(transport)
			if err != nil {
				return err
			}
			w := out
			if outPath != "" {
				f, err := os.Create(outPath)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			if err := writeTransportJSON(w, backends, prec); err != nil {
				return err
			}
			if outPath != "" {
				fmt.Fprintf(out, "wrote transport bench artifact to %s\n", outPath)
			}
			return nil
		},
		"nodeawarejson": func() error {
			w := out
			if outPath != "" {
				f, err := os.Create(outPath)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			if err := writeNodeAwareJSON(w); err != nil {
				return err
			}
			if outPath != "" {
				fmt.Fprintf(out, "wrote node-aware bench artifact to %s\n", outPath)
			}
			return nil
		},
		"spaijson": func() error {
			backends, err := transportBackends(transport)
			if err != nil {
				return err
			}
			w := out
			if outPath != "" {
				f, err := os.Create(outPath)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			if err := writeSPAIJSON(w, backends); err != nil {
				return err
			}
			if outPath != "" {
				fmt.Fprintf(out, "wrote SPAI bench artifact to %s\n", outPath)
			}
			return nil
		},
		"mixedjson": func() error {
			backends, err := transportBackends(transport)
			if err != nil {
				return err
			}
			w := out
			if outPath != "" {
				f, err := os.Create(outPath)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			if err := writeMixedJSON(w, backends); err != nil {
				return err
			}
			if outPath != "" {
				fmt.Fprintf(out, "wrote mixed-precision bench artifact to %s\n", outPath)
			}
			return nil
		},
		"batchjson": func() error {
			backends, err := transportBackends(transport)
			if err != nil {
				return err
			}
			w := out
			if outPath != "" {
				f, err := os.Create(outPath)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			if err := writeBatchJSON(w, csvPath, backends, prec); err != nil {
				return err
			}
			if outPath != "" {
				fmt.Fprintf(out, "wrote batch bench artifact to %s\n", outPath)
			}
			if csvPath != "" {
				fmt.Fprintf(out, "wrote batch bench CSV to %s\n", csvPath)
			}
			return nil
		},
	}

	order := []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig2", "fig3a", "fig3b", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8",
		"imbalance", "ablation", "scaling", "interaction", "phases", "convergence", "setupcost", "baselines"}
	if exp == "all" {
		for _, id := range order {
			fmt.Fprintf(out, "================ %s ================\n", id)
			if err := dispatch[id](); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
	} else {
		fn, ok := dispatch[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		if err := fn(); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "\n[fsaibench] completed %q on set %q in %v\n", exp, set, time.Since(start).Round(time.Millisecond))
	return nil
}

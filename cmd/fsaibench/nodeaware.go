package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"fsaicomm"
	"fsaicomm/internal/experiments"
)

// nodeAwareRecord is one row of the BENCH_nodeaware.json artifact emitted by
// `make bench`: the same prepared solve under the same declared two-level
// topology, once with the flat per-rank halo schedule ("flat" mode, the
// NoNodeAggregation baseline) and once with node-aware aggregation
// ("node-aware" mode: cross-node values combined into one message per node
// pair through per-node leader ranks). The writer asserts — and the Makefile
// bench gate therefore enforces — that per variant the two modes produce
// bit-identical solutions, move identical inter-node byte volumes, and that
// aggregation strictly reduces the inter-node message count without ever
// increasing the modeled solve time.
type nodeAwareRecord struct {
	Matrix       string `json:"matrix"`
	Rows         int    `json:"rows"`
	NNZ          int    `json:"nnz"`
	Variant      string `json:"variant"`
	Ranks        int    `json:"ranks"`
	Nodes        int    `json:"nodes"`
	RanksPerNode int    `json:"ranks_per_node"`
	Mode         string `json:"mode"` // flat | node-aware

	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`

	NsPerOp         int64   `json:"ns_per_op"`        // wall time of one prepared solve
	ModeledSolveSec float64 `json:"modeled_solve_s"`  // hierarchical α–β model time
	CommBytes       int64   `json:"comm_bytes"`       // all point-to-point traffic
	IntraNodeMsgs   int64   `json:"intra_node_msgs"`  // same-node point-to-point
	IntraNodeBytes  int64   `json:"intra_node_bytes"` //
	InterNodeMsgs   int64   `json:"inter_node_msgs"`  // node-crossing point-to-point
	InterNodeBytes  int64   `json:"inter_node_bytes"` //
}

// writeNodeAwareJSON benchmarks node-aware halo aggregation against the flat
// per-rank schedule on the 50k-row bench instance at 8 ranks grouped as
// 2 nodes x 4 ranks, for the classic and pipelined CG variants. Setup is paid
// once via Prepare; each mode is a per-solve topology on the cached system.
// It returns an error (failing `make bench`) if any structural win is absent.
func writeNodeAwareJSON(w io.Writer) error {
	const (
		ranks        = 8
		nodes        = 2
		ranksPerNode = 4
	)
	spec := experiments.BenchSpec()
	a := spec.Generate()
	b := fsaicomm.GenerateRHS(a, 11)
	variants := []fsaicomm.CGVariant{fsaicomm.CGClassic, fsaicomm.CGPipelined}

	p, err := fsaicomm.Prepare(a, fsaicomm.Options{
		Method: fsaicomm.FSAI, Ranks: ranks,
	})
	if err != nil {
		return fmt.Errorf("prepare at %d ranks: %w", ranks, err)
	}

	var recs []nodeAwareRecord
	for _, v := range variants {
		var xs [2][]float64
		var pair [2]nodeAwareRecord
		for i, mode := range []string{"flat", "node-aware"} {
			so := fsaicomm.SolveOptions{
				CGVariant:         v,
				Nodes:             nodes,
				RanksPerNode:      ranksPerNode,
				NoNodeAggregation: mode == "flat",
			}
			start := time.Now()
			res, err := p.Solve(context.Background(), b, so)
			elapsed := time.Since(start)
			if err != nil {
				return fmt.Errorf("%s %v: %w", mode, v, err)
			}
			xs[i] = res.X
			pair[i] = nodeAwareRecord{
				Matrix: spec.Name, Rows: a.Rows, NNZ: a.NNZ(),
				Variant: v.String(), Ranks: ranks,
				Nodes: nodes, RanksPerNode: ranksPerNode, Mode: mode,
				Iterations: res.Iterations, Converged: res.Converged,
				NsPerOp:         elapsed.Nanoseconds(),
				ModeledSolveSec: res.ModeledSolveTime,
				CommBytes:       res.CommBytes,
				IntraNodeMsgs:   res.IntraNodeMessages,
				IntraNodeBytes:  res.IntraNodeBytes,
				InterNodeMsgs:   res.InterNodeMessages,
				InterNodeBytes:  res.InterNodeBytes,
			}
		}
		flat, nap := pair[0], pair[1]
		// Structural proof, enforced: aggregation must not change the math,
		// must not move extra bytes across nodes, and must strictly shrink
		// the inter-node message count and the modeled time.
		if len(xs[0]) != len(xs[1]) {
			return fmt.Errorf("%v: solution lengths differ (%d vs %d)", v, len(xs[0]), len(xs[1]))
		}
		for j := range xs[0] {
			if xs[0][j] != xs[1][j] {
				return fmt.Errorf("%v: node-aware solution diverges from flat at component %d (%g vs %g)",
					v, j, xs[0][j], xs[1][j])
			}
		}
		if flat.Iterations != nap.Iterations {
			return fmt.Errorf("%v: iteration counts differ (flat %d, node-aware %d)",
				v, flat.Iterations, nap.Iterations)
		}
		if nap.InterNodeBytes != flat.InterNodeBytes {
			return fmt.Errorf("%v: inter-node bytes changed under aggregation (flat %d, node-aware %d)",
				v, flat.InterNodeBytes, nap.InterNodeBytes)
		}
		if nap.InterNodeMsgs >= flat.InterNodeMsgs {
			return fmt.Errorf("%v: node-aware did not reduce inter-node messages (flat %d, node-aware %d)",
				v, flat.InterNodeMsgs, nap.InterNodeMsgs)
		}
		// The modeled time must never lose; it ties (rather than wins) when
		// the variant's overlap schedule already hides the whole halo window,
		// as the pipelined loop does.
		if nap.ModeledSolveSec > flat.ModeledSolveSec {
			return fmt.Errorf("%v: node-aware increased the modeled solve time (flat %g s, node-aware %g s)",
				v, flat.ModeledSolveSec, nap.ModeledSolveSec)
		}
		recs = append(recs, flat, nap)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

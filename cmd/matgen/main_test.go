package main

import (
	"os"
	"path/filepath"
	"testing"

	"fsaicomm/internal/sparse"
)

func TestListAndGenerate(t *testing.T) {
	if err := run(true, "", "", false, ""); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "m.mtx")
	if err := run(false, "qa8fm-sim", out, false, ""); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := sparse.ReadMatrixMarket(f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 1600 {
		t.Fatalf("rows = %d", a.Rows)
	}
}

func TestErrors(t *testing.T) {
	if err := run(false, "", "", false, ""); err == nil {
		t.Fatal("no mode accepted")
	}
	if err := run(false, "nope", "", false, ""); err == nil {
		t.Fatal("unknown matrix accepted")
	}
}

// Command matgen writes the synthetic evaluation matrices (the SPD Table 1
// and Table 2 catalogs plus the nonsymmetric SPAI+GMRES set) to Matrix
// Market files, so they can be inspected or fed to other solvers.
//
// Usage:
//
//	matgen -list                        # show the catalogs
//	matgen -name ecology2-sim -o m.mtx  # write one catalog matrix
//	matgen -all -dir out/               # write the whole Table 1 catalog
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

func main() {
	var (
		list = flag.Bool("list", false, "list the catalog entries")
		name = flag.String("name", "", "catalog matrix name to generate")
		out  = flag.String("o", "", "output file (default <name>.mtx)")
		all  = flag.Bool("all", false, "write the whole Table 1 catalog")
		dir  = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()
	if err := run(*list, *name, *out, *all, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "matgen:", err)
		os.Exit(1)
	}
}

func run(list bool, name, out string, all bool, dir string) error {
	switch {
	case list:
		fmt.Println("Table 1 catalog:")
		for _, s := range testsets.Table1() {
			fmt.Printf("  %2d  %-22s %s\n", s.ID, s.Name, s.Class)
		}
		fmt.Println("Table 2 catalog (large):")
		for _, s := range testsets.Table2() {
			fmt.Printf("  %2d  %-22s %s\n", s.ID, s.Name, s.Class)
		}
		fmt.Println("Nonsymmetric catalog (SPAI+GMRES):")
		for _, s := range testsets.Nonsym() {
			fmt.Printf("  %2d  %-22s %s\n", s.ID, s.Name, s.Class)
		}
		return nil
	case all:
		for _, s := range testsets.Table1() {
			path := filepath.Join(dir, s.Name+".mtx")
			if err := writeMatrix(s, path); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
		return nil
	case name != "":
		s, err := testsets.ByName(name)
		if err != nil {
			return err
		}
		if out == "" {
			out = name + ".mtx"
		}
		if err := writeMatrix(s, out); err != nil {
			return err
		}
		fmt.Println("wrote", out)
		return nil
	default:
		return fmt.Errorf("pass -list, -name or -all (see -h)")
	}
}

func writeMatrix(s testsets.Spec, path string) error {
	a := s.Generate()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// The symmetric codec stores only the lower triangle and mirrors it on
	// read — writing a nonsymmetric catalog entry through it would silently
	// symmetrize the operator.
	if a.IsSymmetric(1e-12) {
		return sparse.WriteMatrixMarketSymmetric(f, a)
	}
	return sparse.WriteMatrixMarket(f, a)
}

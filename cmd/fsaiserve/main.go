// fsaiserve is the solver-as-a-service daemon: an HTTP server that ingests
// sparse SPD matrices, caches prepared FSAI preconditioners by content
// fingerprint, and runs distributed CG solve jobs with admission control
// and per-job deadlines (see internal/serve and README "Running the
// server").
//
// Usage:
//
//	fsaiserve [-addr :8097] [-max-inflight 4] [-max-queue 8]
//	          [-cache-mb 256] [-matrix-cache-mb 256]
//	          [-job-timeout 2m] [-drain-timeout 30s] [-transport sim]
//	          [-batch-max 8] [-batch-window 0] [-v]
//	fsaiserve -probe http://localhost:8097/healthz
//	fsaiserve -batch-probe http://localhost:8097
//
// The daemon runs until SIGINT/SIGTERM, then drains: the health check
// flips to 503, new solves are refused, running jobs finish (up to
// -drain-timeout), and the process exits. -probe turns the binary into its
// own health-check client (for Makefiles and container probes; no curl
// needed): it GETs the URL and exits 0 on HTTP 200.
//
// Setting -batch-window > 0 enables job coalescing: /solve requests that
// share a prepared system and solver options and arrive within the window
// are merged — up to -batch-max — into one batched multi-RHS solve under a
// single admission slot; each client still gets its own column's solution,
// bit-identical to a solo solve. -batch-probe exercises it end to end
// against a running server: it uploads a catalog matrix, fires three
// concurrent same-system solves, and exits 0 only if they coalesced into
// one batch (checked via /metrics).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"fsaicomm/internal/mprun"
	"fsaicomm/internal/serve"
)

func main() {
	// Jobs solved over the "tcp" transport spawn one process per rank by
	// re-executing this binary; those copies divert into worker mode here.
	mprun.MaybeWorker()
	var (
		addr          = flag.String("addr", ":8097", "listen address")
		maxInFlight   = flag.Int("max-inflight", 4, "maximum concurrently running solve jobs")
		maxQueue      = flag.Int("max-queue", 8, "maximum queued solve jobs (beyond it: 429); negative disables queueing")
		cacheMB       = flag.Int64("cache-mb", 256, "prepared-system cache budget in MiB")
		matrixCacheMB = flag.Int64("matrix-cache-mb", 256, "uploaded-matrix cache budget in MiB")
		jobTimeout    = flag.Duration("job-timeout", 2*time.Minute, "per-job deadline (setup + solve)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs")
		verbose       = flag.Bool("v", false, "log each job")
		transport     = flag.String("transport", "sim", "rank backend for requests that do not pick one: sim (goroutine ranks) or tcp (one OS process per rank)")
		probe         = flag.String("probe", "", "probe the given URL (expect HTTP 200) and exit; no server is started")
		batchMax      = flag.Int("batch-max", 8, "maximum solve jobs coalesced into one batched solve (needs -batch-window > 0)")
		batchWindow   = flag.Duration("batch-window", 0, "how long the first job of a batch waits for same-system followers; 0 disables coalescing")
		batchProbe    = flag.String("batch-probe", "", "run the coalescing smoke client against the given server base URL and exit; no server is started")
	)
	flag.Parse()

	if *probe != "" {
		os.Exit(runProbe(*probe))
	}
	if *batchProbe != "" {
		os.Exit(runBatchProbe(*batchProbe))
	}
	if *transport != "sim" && *transport != "tcp" {
		fmt.Fprintf(os.Stderr, "fsaiserve: unknown transport %q (want sim or tcp)\n", *transport)
		os.Exit(2)
	}

	cfg := serve.Config{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		CacheBytes:       *cacheMB << 20,
		MatrixCacheBytes: *matrixCacheMB << 20,
		JobTimeout:       *jobTimeout,
		DefaultTransport: *transport,
		BatchMax:         *batchMax,
		BatchWindow:      *batchWindow,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, cfg, *drainTimeout, nil); err != nil {
		log.Fatal(err)
	}
}

func runProbe(url string) int {
	client := &http.Client{Timeout: 3 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "probe %s: %v\n", url, err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "probe %s: HTTP %d\n", url, resp.StatusCode)
		return 1
	}
	fmt.Printf("probe %s: ok\n", url)
	return 0
}

// runBatchProbe is the coalescing smoke client: upload a catalog matrix,
// fire three concurrent same-system solves (distinct right-hand sides),
// and verify via the responses and /metrics that they merged into one
// batched solve. Exits nonzero on any divergence, so a Makefile target can
// gate on it.
func runBatchProbe(base string) int {
	client := &http.Client{Timeout: 2 * time.Minute}
	failf := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "batch-probe: "+format+"\n", args...)
		return 1
	}
	resp, err := client.Post(base+"/matrix?gen=Dubcova2-sim", "application/json", nil)
	if err != nil {
		return failf("upload: %v", err)
	}
	var up struct {
		Matrix string `json:"matrix"`
	}
	err = json.NewDecoder(resp.Body).Decode(&up)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || up.Matrix == "" {
		return failf("upload: HTTP %d (%v)", resp.StatusCode, err)
	}

	const n = 3
	type colResp struct {
		Converged bool `json:"converged"`
		Batched   int  `json:"batched"`
		Coalesced bool `json:"coalesced"`
	}
	results := make([]colResp, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"matrix":%q,"ranks":3,"filter":0.01,"rhs_seed":%d}`, up.Matrix, i+1)
			resp, err := client.Post(base+"/solve", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				out, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("HTTP %d: %s", resp.StatusCode, out)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}()
	}
	wg.Wait()
	coalesced := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return failf("solve %d: %v", i, errs[i])
		}
		if !results[i].Converged {
			return failf("solve %d did not converge", i)
		}
		if results[i].Batched != n {
			return failf("solve %d: batched=%d, want %d (is the server running with -batch-window > 0?)",
				i, results[i].Batched, n)
		}
		if results[i].Coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		return failf("%d coalesced responses, want %d", coalesced, n-1)
	}
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return failf("metrics: %v", err)
	}
	var m struct {
		Batch struct {
			BatchesTotal  int64 `json:"batches_total"`
			CoalescedJobs int64 `json:"coalesced_jobs"`
		} `json:"batch"`
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		return failf("metrics: %v", err)
	}
	if m.Batch.BatchesTotal != 1 || m.Batch.CoalescedJobs != int64(n-1) {
		return failf("metrics: batches_total=%d coalesced_jobs=%d, want 1/%d",
			m.Batch.BatchesTotal, m.Batch.CoalescedJobs, n-1)
	}
	fmt.Printf("batch-probe: ok (%d jobs coalesced into 1 batched solve)\n", n)
	return 0
}

// run serves until ctx is canceled, then drains and shuts the listener
// down. If ready is non-nil it receives the bound address once the server
// is listening (the e2e test listens on :0 and needs the resolved port).
func run(ctx context.Context, addr string, cfg serve.Config, drainTimeout time.Duration, ready chan<- string) error {
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("fsaiserve: listening on %s (max %d in flight, %d queued, %s/job)",
		ln.Addr(), cfg.MaxInFlight, cfg.MaxQueue, cfg.JobTimeout)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	select {
	case err := <-errc:
		return fmt.Errorf("fsaiserve: %w", err)
	case <-ctx.Done():
	}
	log.Printf("fsaiserve: draining (up to %s)", drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Refuse new work and wait for running jobs, then close the listener
	// and idle connections.
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("fsaiserve: %v", err)
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("fsaiserve: shutdown: %w", err)
	}
	log.Printf("fsaiserve: stopped")
	return nil
}

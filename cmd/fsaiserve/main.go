// fsaiserve is the solver-as-a-service daemon: an HTTP server that ingests
// sparse SPD matrices, caches prepared FSAI preconditioners by content
// fingerprint, and runs distributed CG solve jobs with admission control
// and per-job deadlines (see internal/serve and README "Running the
// server").
//
// Usage:
//
//	fsaiserve [-addr :8097] [-max-inflight 4] [-max-queue 8]
//	          [-cache-mb 256] [-matrix-cache-mb 256]
//	          [-job-timeout 2m] [-drain-timeout 30s] [-transport sim] [-v]
//	fsaiserve -probe http://localhost:8097/healthz
//
// The daemon runs until SIGINT/SIGTERM, then drains: the health check
// flips to 503, new solves are refused, running jobs finish (up to
// -drain-timeout), and the process exits. -probe turns the binary into its
// own health-check client (for Makefiles and container probes; no curl
// needed): it GETs the URL and exits 0 on HTTP 200.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fsaicomm/internal/mprun"
	"fsaicomm/internal/serve"
)

func main() {
	// Jobs solved over the "tcp" transport spawn one process per rank by
	// re-executing this binary; those copies divert into worker mode here.
	mprun.MaybeWorker()
	var (
		addr          = flag.String("addr", ":8097", "listen address")
		maxInFlight   = flag.Int("max-inflight", 4, "maximum concurrently running solve jobs")
		maxQueue      = flag.Int("max-queue", 8, "maximum queued solve jobs (beyond it: 429); negative disables queueing")
		cacheMB       = flag.Int64("cache-mb", 256, "prepared-system cache budget in MiB")
		matrixCacheMB = flag.Int64("matrix-cache-mb", 256, "uploaded-matrix cache budget in MiB")
		jobTimeout    = flag.Duration("job-timeout", 2*time.Minute, "per-job deadline (setup + solve)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs")
		verbose       = flag.Bool("v", false, "log each job")
		transport     = flag.String("transport", "sim", "rank backend for requests that do not pick one: sim (goroutine ranks) or tcp (one OS process per rank)")
		probe         = flag.String("probe", "", "probe the given URL (expect HTTP 200) and exit; no server is started")
	)
	flag.Parse()

	if *probe != "" {
		os.Exit(runProbe(*probe))
	}
	if *transport != "sim" && *transport != "tcp" {
		fmt.Fprintf(os.Stderr, "fsaiserve: unknown transport %q (want sim or tcp)\n", *transport)
		os.Exit(2)
	}

	cfg := serve.Config{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		CacheBytes:       *cacheMB << 20,
		MatrixCacheBytes: *matrixCacheMB << 20,
		JobTimeout:       *jobTimeout,
		DefaultTransport: *transport,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, cfg, *drainTimeout, nil); err != nil {
		log.Fatal(err)
	}
}

func runProbe(url string) int {
	client := &http.Client{Timeout: 3 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "probe %s: %v\n", url, err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "probe %s: HTTP %d\n", url, resp.StatusCode)
		return 1
	}
	fmt.Printf("probe %s: ok\n", url)
	return 0
}

// run serves until ctx is canceled, then drains and shuts the listener
// down. If ready is non-nil it receives the bound address once the server
// is listening (the e2e test listens on :0 and needs the resolved port).
func run(ctx context.Context, addr string, cfg serve.Config, drainTimeout time.Duration, ready chan<- string) error {
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("fsaiserve: listening on %s (max %d in flight, %d queued, %s/job)",
		ln.Addr(), cfg.MaxInFlight, cfg.MaxQueue, cfg.JobTimeout)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	select {
	case err := <-errc:
		return fmt.Errorf("fsaiserve: %w", err)
	case <-ctx.Done():
	}
	log.Printf("fsaiserve: draining (up to %s)", drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Refuse new work and wait for running jobs, then close the listener
	// and idle connections.
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("fsaiserve: %v", err)
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("fsaiserve: shutdown: %w", err)
	}
	log.Printf("fsaiserve: stopped")
	return nil
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"fsaicomm"
	"fsaicomm/internal/serve"
)

// startDaemon boots the full daemon on a random port and returns its base
// URL, the cancel func that triggers graceful shutdown, and a channel
// yielding run's final error.
func startDaemon(t *testing.T, cfg serve.Config) (base string, shutdown context.CancelFunc, done <-chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, "127.0.0.1:0", cfg, 10*time.Second, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, errc
	case err := <-errc:
		cancel()
		t.Fatalf("server failed to start: %v", err)
		return "", nil, nil
	}
}

func post(t *testing.T, url, contentType string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

type solveReply struct {
	CacheHit   bool      `json:"cache_hit"`
	Iterations int       `json:"iterations"`
	Converged  bool      `json:"converged"`
	SetupMs    float64   `json:"setup_ms"`
	X          []float64 `json:"x"`
}

// The full client walkthrough against the real daemon: upload a
// MatrixMarket body, solve, re-solve from the cache (zero setup,
// bit-identical solution), hit the admission limit, then shut down
// gracefully and watch the drain.
func TestDaemonEndToEnd(t *testing.T) {
	base, shutdown, done := startDaemon(t, serve.Config{
		MaxInFlight: 1,
		MaxQueue:    -1, // no queue: the overload step below wants a deterministic 429
		JobTimeout:  time.Minute,
	})
	defer shutdown()

	// Upload: a real MatrixMarket body, as a client would POST it.
	a := fsaicomm.GeneratePoisson2D(40, 40)
	var mm bytes.Buffer
	if err := fsaicomm.WriteMatrixMarket(&mm, a); err != nil {
		t.Fatal(err)
	}
	code, body := post(t, base+"/matrix", "text/plain", mm.Bytes())
	if code != http.StatusOK {
		t.Fatalf("upload: %d %s", code, body)
	}
	var up struct {
		Matrix string `json:"matrix"`
		Rows   int    `json:"rows"`
	}
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Rows != a.Rows || up.Matrix == "" {
		t.Fatalf("upload response: %s", body)
	}

	// First solve: pays the setup.
	req, _ := json.Marshal(map[string]any{
		"matrix": up.Matrix, "ranks": 2, "cg": "fused", "filter": 0.01,
	})
	code, body = post(t, base+"/solve", "application/json", req)
	if code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, body)
	}
	var first solveReply
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if !first.Converged || first.CacheHit || first.SetupMs <= 0 {
		t.Fatalf("first solve: %+v", first)
	}

	// Re-solve: cache hit, no setup, bit-identical x through JSON.
	code, body = post(t, base+"/solve", "application/json", req)
	if code != http.StatusOK {
		t.Fatalf("re-solve: %d %s", code, body)
	}
	var second solveReply
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.SetupMs != 0 {
		t.Fatalf("re-solve skipped the cache: %+v", second)
	}
	for i := range first.X {
		if first.X[i] != second.X[i] {
			t.Fatalf("x[%d] differs between cached solves", i)
		}
	}

	// Overload: occupy the single slot with an unreachable-tolerance job,
	// then watch the next request bounce with 429.
	longReq, _ := json.Marshal(map[string]any{
		"matrix": up.Matrix, "ranks": 2, "tol": 1e-300, "max_iter": 2_000_000,
	})
	ctx, cancelLong := context.WithCancel(context.Background())
	hr, err := http.NewRequestWithContext(ctx, "POST", base+"/solve", bytes.NewReader(longReq))
	if err != nil {
		t.Fatal(err)
	}
	longDone := make(chan struct{})
	go func() {
		defer close(longDone)
		if resp, err := http.DefaultClient.Do(hr); err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m struct {
			Jobs struct {
				InFlight int64 `json:"in_flight"`
			} `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if m.Jobs.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, body = post(t, base+"/solve", "application/json", req)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overloaded solve: %d %s", code, body)
	}
	cancelLong()
	<-longDone

	// Graceful shutdown: the daemon drains and run() returns nil.
	shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	// The listener is really gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("healthz still reachable after shutdown")
	}
}

// Catalog generation shortcut: POST /matrix?gen=<name> with an empty body
// ingests a named matrix from the paper's Table 1/2 catalog.
func TestDaemonCatalogGen(t *testing.T) {
	base, shutdown, done := startDaemon(t, serve.Config{})
	defer shutdown()
	code, body := post(t, base+"/matrix?gen=qa8fm-sim", "text/plain", nil)
	if code != http.StatusOK {
		t.Fatalf("gen: %d %s", code, body)
	}
	var up struct {
		Matrix string `json:"matrix"`
		NNZ    int    `json:"nnz"`
	}
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.NNZ == 0 {
		t.Fatalf("gen response: %s", body)
	}
	req, _ := json.Marshal(map[string]any{"matrix": up.Matrix, "rhs_seed": 3})
	code, body = post(t, base+"/solve", "application/json", req)
	if code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, body)
	}
	var rep solveReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("solve: %s", body)
	}
	shutdown()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// The -probe mode used by `make serve` and container health checks.
func TestProbe(t *testing.T) {
	base, shutdown, done := startDaemon(t, serve.Config{})
	defer shutdown()
	if code := runProbe(base + "/healthz"); code != 0 {
		t.Fatalf("probe of a healthy server exited %d", code)
	}
	if code := runProbe("http://127.0.0.1:1/healthz"); code == 0 {
		t.Fatal("probe of a dead address exited 0")
	}
	shutdown()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if code := runProbe(base + "/healthz"); code == 0 {
		t.Fatal("probe of a stopped server exited 0")
	}
}

// Command mmsolve solves a linear system read from a Matrix Market file
// with the FSAI family of preconditioners (CG, symmetric positive definite
// systems) or the adaptive SPAI preconditioner (restarted GMRES, general
// systems) — the downstream-user entry point of the library.
//
// Usage:
//
//	mmsolve -matrix A.mtx [-rhs b.txt] [-method fsai|fsaie|fsaie-comm|spai]
//	        [-solver cg|gmres] [-restart 30] [-spai-steps 0] [-spai-add 0] [-spai-eps 0]
//	        [-filter 0.01] [-dynamic] [-line 64] [-ranks 4] [-workers 0]
//	        [-cg classic|classic-overlap|fused|pipelined] [-tol 1e-8] [-out x.txt]
//	        [-trace trace.json] [-rr 0] [-precision fp64|fp32]
//
// Without -rhs a deterministic random right-hand side normalized to the
// matrix max norm is used (the paper's setup). With -ranks 1 the solve is
// serial; otherwise the matrix is partitioned over simulated
// message-passing ranks and solved with the distributed Krylov loop.
// "-solver gmres" implies "-method spai" when -method is left at its
// default (the FSAI family has no GMRES pairing).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fsaicomm"
)

func main() {
	var (
		matrixPath = flag.String("matrix", "", "Matrix Market file with the system matrix (required; SPD for -solver cg, any square matrix for -solver gmres)")
		rhsPath    = flag.String("rhs", "", "optional right-hand side: one value per line")
		method     = flag.String("method", "fsaie-comm", "preconditioner: fsai, fsaie, fsaie-comm or spai (spai pairs with -solver gmres)")
		solver     = flag.String("solver", "cg", "Krylov solver: cg (FSAI family, SPD systems) or gmres (SPAI, general systems)")
		restart    = flag.Int("restart", 0, "GMRES restart length (0 = 30)")
		spaiSteps  = flag.Int("spai-steps", 0, "SPAI adaptive enrichment rounds (0 = static pattern)")
		spaiAdd    = flag.Int("spai-add", 0, "SPAI entries added per column per round (0 = 5)")
		spaiEps    = flag.Float64("spai-eps", 0, "SPAI per-column residual target stopping enrichment (0 = 0.4)")
		filter     = flag.Float64("filter", 0.01, "Filter value for extension filtering")
		dynamic    = flag.Bool("dynamic", false, "use the dynamic (load-balancing) filter strategy")
		line       = flag.Int("line", 64, "cache line size in bytes steering the extension")
		ranks      = flag.Int("ranks", 0, "simulated process count (0 = auto, 1 = serial)")
		workers    = flag.Int("workers", 0, "setup worker threads (0 = all cores serial solve, 1 per rank distributed)")
		cg         = flag.String("cg", "classic", "distributed CG loop: classic, classic-overlap, fused or pipelined (the last two use one Allreduce per iteration)")
		tol        = flag.Float64("tol", 1e-8, "relative residual tolerance")
		maxIter    = flag.Int("maxiter", 0, "iteration cap (0 = 10n)")
		outPath    = flag.String("out", "", "write the solution vector to this file (one value per line)")
		tracePath  = flag.String("trace", "", "write per-iteration solver telemetry (residual, alpha/beta, comm deltas) to this JSON file")
		rr         = flag.Int("rr", 0, "pipelined CG: recompute the true residual every N iterations (0 = off)")
		nodes      = flag.Int("nodes", 0, "two-level topology: number of nodes (0 = flat; ranks must divide evenly)")
		rpn        = flag.Int("ranks-per-node", 0, "two-level topology: ranks per node (0 = flat; pairs with -nodes, either may be derived)")
		precision  = flag.String("precision", "", "solve precision: fp64 (default) or fp32 (float32 factors + FP64 iterative refinement; halves halo traffic)")
	)
	flag.Parse()
	methodSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "method" {
			methodSet = true
		}
	})
	if *solver == "gmres" && !methodSet {
		// GMRES implies SPAI; only an explicit -method should override (and
		// then Validate rejects the FSAI family with a descriptive error).
		*method = "spai"
	}
	sp := spaiFlags{solver: *solver, restart: *restart, steps: *spaiSteps, add: *spaiAdd, eps: *spaiEps}
	if err := run(*matrixPath, *rhsPath, *method, *filter, *dynamic, *line, *ranks, *workers, *cg, *tol, *maxIter, *outPath, *tracePath, *rr, *nodes, *rpn, *precision, sp); err != nil {
		fmt.Fprintln(os.Stderr, "mmsolve:", err)
		os.Exit(1)
	}
}

// spaiFlags groups the nonsymmetric-axis knobs so run's signature stays
// readable.
type spaiFlags struct {
	solver  string
	restart int
	steps   int
	add     int
	eps     float64
}

func run(matrixPath, rhsPath, method string, filter float64, dynamic bool, line, ranks, workers int, cg string, tol float64, maxIter int, outPath, tracePath string, rr, nodes, rpn int, precision string, sp spaiFlags) error {
	if matrixPath == "" {
		return fmt.Errorf("-matrix is required")
	}
	f, err := os.Open(matrixPath)
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := fsaicomm.ReadMatrixMarket(f)
	if err != nil {
		return err
	}
	fmt.Printf("matrix: %d x %d, %d stored entries\n", a.Rows, a.Cols, a.NNZ())

	var b []float64
	if rhsPath != "" {
		if b, err = readVector(rhsPath); err != nil {
			return err
		}
		if len(b) != a.Rows {
			return fmt.Errorf("rhs has %d entries, matrix has %d rows", len(b), a.Rows)
		}
	} else {
		b = fsaicomm.GenerateRHS(a, 1)
		fmt.Println("rhs: random, normalized to matrix max norm")
	}

	opt := fsaicomm.Options{
		Filter:               filter,
		LineBytes:            line,
		Tol:                  tol,
		MaxIter:              maxIter,
		Ranks:                ranks,
		Workers:              workers,
		Trace:                tracePath != "",
		ResidualReplaceEvery: rr,
		Nodes:                nodes,
		RanksPerNode:         rpn,
	}
	if (nodes != 0 || rpn != 0) && ranks == 1 {
		return fmt.Errorf("-nodes/-ranks-per-node need a distributed solve (-ranks > 1)")
	}
	m, err := fsaicomm.ParseMethod(method)
	if err != nil {
		return err
	}
	opt.Method = m
	sv, err := fsaicomm.ParseSolver(sp.solver)
	if err != nil {
		return err
	}
	opt.Solver = sv
	opt.Restart = sp.restart
	opt.SPAISteps = sp.steps
	opt.SPAIAdd = sp.add
	opt.SPAIEpsilon = sp.eps
	if dynamic {
		opt.Strategy = fsaicomm.DynamicFilter
	}
	variant, err := fsaicomm.ParseCGVariant(cg)
	if err != nil {
		return err
	}
	opt.CGVariant = variant
	prec, err := fsaicomm.ParsePrecision(precision)
	if err != nil {
		return err
	}
	opt.Precision = prec

	var res *fsaicomm.Result
	if ranks == 1 {
		res, err = fsaicomm.Solve(a, b, opt)
	} else {
		res, err = fsaicomm.SolveDistributed(a, b, opt)
	}
	if err != nil {
		return err
	}
	if sv == fsaicomm.SolverGMRES {
		rs := sp.restart
		if rs == 0 {
			rs = 30
		}
		fmt.Printf("method: %v (level %d, %d enrichment steps, add %d, eps %g) with GMRES(%d)\n",
			opt.Method, max(opt.PatternLevel, 1), sp.steps, sp.add, sp.eps, rs)
	} else {
		fmt.Printf("method: %v (filter %g, %v strategy, %dB lines, %v CG)\n", opt.Method, filter, opt.Strategy, line, opt.CGVariant)
	}
	fmt.Printf("ranks: %d  pattern growth: %+.2f%%  imbalance index: %.3f\n",
		res.Ranks, res.PctNNZIncrease, res.ImbalanceIndex)
	fmt.Printf("converged: %v in %d iterations (rel residual %.3e)\n",
		res.Converged, res.Iterations, res.RelResidual)
	if prec == fsaicomm.FP32 {
		fmt.Printf("precision: fp32 factors with %d FP64 refinement steps\n", res.Refinements)
	}
	fmt.Printf("setup %v, solve %v", res.SetupTime.Round(0), res.SolveTime.Round(0))
	if res.CommBytes > 0 {
		fmt.Printf(", %d bytes exchanged (%.1f per iteration)", res.CommBytes, res.CommBytesPerIteration)
	}
	fmt.Println()
	if nodes != 0 || rpn != 0 {
		dn, dr := nodes, rpn
		if dn == 0 {
			dn = res.Ranks / dr
		}
		if dr == 0 {
			dr = res.Ranks / dn
		}
		fmt.Printf("topology: %d nodes x %d ranks/node; intra-node %d msgs / %d bytes, inter-node %d msgs / %d bytes\n",
			dn, dr, res.IntraNodeMessages, res.IntraNodeBytes, res.InterNodeMessages, res.InterNodeBytes)
	}
	for _, win := range res.Phases.Windows {
		fmt.Printf("modeled %s window: %.3e s raw, %.3e s hidden, %.3e s exposed\n",
			win.Name, win.RawSec, win.HiddenSec, win.ExposedSec)
	}

	if tracePath != "" {
		if err := writeTrace(tracePath, matrixPath, cg, res); err != nil {
			return err
		}
		fmt.Printf("per-iteration trace written to %s\n", tracePath)
	}
	if outPath != "" {
		if err := writeVector(outPath, res.X); err != nil {
			return err
		}
		fmt.Printf("solution written to %s\n", outPath)
	}
	return nil
}

// traceArtifact is the JSON shape of the -trace output: run identification
// plus the per-iteration telemetry and the per-window modeled-time split.
type traceArtifact struct {
	Matrix     string                 `json:"matrix"`
	CGVariant  string                 `json:"cg_variant"`
	Ranks      int                    `json:"ranks"`
	Iterations int                    `json:"iterations"`
	Converged  bool                   `json:"converged"`
	Phases     fsaicomm.OverlapReport `json:"phases"`
	Trace      *fsaicomm.IterTrace    `json:"trace"`
}

func writeTrace(path, matrixPath, cg string, res *fsaicomm.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(traceArtifact{
		Matrix:     matrixPath,
		CGVariant:  cg,
		Ranks:      res.Ranks,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Phases:     res.Phases,
		Trace:      res.Trace,
	})
}

func readVector(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		t := strings.TrimSpace(sc.Text())
		if t == "" || strings.HasPrefix(t, "%") || strings.HasPrefix(t, "#") {
			continue
		}
		v, err := strconv.ParseFloat(t, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func writeVector(path string, x []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, v := range x {
		if _, err := fmt.Fprintf(w, "%.17g\n", v); err != nil {
			return err
		}
	}
	return w.Flush()
}

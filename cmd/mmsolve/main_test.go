package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fsaicomm"
)

// cgFlags is the zero nonsymmetric-axis bundle: solver "" parses to the CG
// default, so existing CG-path tests pass it unchanged.
var cgFlags = spaiFlags{}

func writeTestMatrix(t *testing.T) string {
	t.Helper()
	a := fsaicomm.GeneratePoisson2D(8, 8)
	path := filepath.Join(t.TempDir(), "a.mtx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fsaicomm.WriteMatrixMarket(f, a); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSolvesAndWritesSolution(t *testing.T) {
	mtx := writeTestMatrix(t)
	out := filepath.Join(t.TempDir(), "x.txt")
	if err := run(mtx, "", "fsaie-comm", 0.01, true, 64, 2, 2, "classic", 1e-8, 0, out, "", 0, 0, 0, "", cgFlags); err != nil {
		t.Fatal(err)
	}
	x, err := readVector(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 64 {
		t.Fatalf("solution length %d", len(x))
	}
}

func TestRunCommHidingCGMatchesClassic(t *testing.T) {
	mtx := writeTestMatrix(t)
	dir := t.TempDir()
	outs := map[string]string{}
	for _, cg := range []string{"classic", "fused", "pipelined"} {
		out := filepath.Join(dir, "x-"+cg+".txt")
		if err := run(mtx, "", "fsaie-comm", 0.01, false, 64, 4, 0, cg, 1e-8, 0, out, "", 0, 0, 0, "", cgFlags); err != nil {
			t.Fatalf("-cg %s: %v", cg, err)
		}
		outs[cg] = out
	}
	xc, err := readVector(outs["classic"])
	if err != nil {
		t.Fatal(err)
	}
	for _, cg := range []string{"fused", "pipelined"} {
		xf, err := readVector(outs[cg])
		if err != nil {
			t.Fatal(err)
		}
		for i := range xc {
			if d := xc[i] - xf[i]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("x[%d]: classic %v vs %s %v", i, xc[i], cg, xf[i])
			}
		}
	}
}

func TestRunWritesTraceArtifact(t *testing.T) {
	mtx := writeTestMatrix(t)
	trace := filepath.Join(t.TempDir(), "trace.json")
	if err := run(mtx, "", "fsai", 0, false, 64, 4, 0, "pipelined", 1e-8, 0, "", trace, 10, 0, 0, "", cgFlags); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var art traceArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("trace artifact not valid JSON: %v", err)
	}
	if art.Trace == nil || len(art.Trace.Iters) != art.Iterations {
		t.Fatalf("trace has %v records, want %d iterations", art.Trace, art.Iterations)
	}
	if len(art.Phases.Windows) == 0 || art.Phases.TotalSec <= 0 {
		t.Fatalf("phases section missing: %+v", art.Phases)
	}
}

func TestRunSerialWithRHS(t *testing.T) {
	mtx := writeTestMatrix(t)
	rhs := filepath.Join(t.TempDir(), "b.txt")
	f, _ := os.Create(rhs)
	for i := 0; i < 64; i++ {
		f.WriteString("1.0\n")
	}
	f.Close()
	if err := run(mtx, rhs, "fsai", 0, false, 64, 1, 0, "classic", 1e-8, 0, "", "", 0, 0, 0, "", cgFlags); err != nil {
		t.Fatal(err)
	}
}

func TestRunTopologySolvesIdenticallyToFlat(t *testing.T) {
	mtx := writeTestMatrix(t)
	dir := t.TempDir()
	flat := filepath.Join(dir, "x-flat.txt")
	if err := run(mtx, "", "fsaie-comm", 0.01, false, 64, 4, 0, "classic", 1e-8, 0, flat, "", 0, 0, 0, "", cgFlags); err != nil {
		t.Fatal(err)
	}
	napped := filepath.Join(dir, "x-nap.txt")
	if err := run(mtx, "", "fsaie-comm", 0.01, false, 64, 4, 0, "classic", 1e-8, 0, napped, "", 0, 2, 2, "", cgFlags); err != nil {
		t.Fatalf("-nodes 2 -ranks-per-node 2: %v", err)
	}
	xf, err := readVector(flat)
	if err != nil {
		t.Fatal(err)
	}
	xn, err := readVector(napped)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xf {
		if xf[i] != xn[i] {
			t.Fatalf("x[%d]: flat %v vs node-aware %v", i, xf[i], xn[i])
		}
	}
}

func TestRunTopologyErrors(t *testing.T) {
	mtx := writeTestMatrix(t)
	// 4 ranks are not divisible into 3-rank nodes.
	if err := run(mtx, "", "fsai", 0, false, 64, 4, 0, "classic", 1e-8, 0, "", "", 0, 0, 3, "", cgFlags); err == nil {
		t.Fatal("indivisible ranks-per-node accepted")
	} else if !strings.Contains(err.Error(), "not divisible") {
		t.Fatalf("divisibility error not descriptive: %v", err)
	}
	// 3 nodes cannot partition 4 ranks either.
	if err := run(mtx, "", "fsai", 0, false, 64, 4, 0, "classic", 1e-8, 0, "", "", 0, 3, 0, "", cgFlags); err == nil {
		t.Fatal("indivisible node count accepted")
	}
	// Topology flags are meaningless on a serial solve.
	if err := run(mtx, "", "fsai", 0, false, 64, 1, 0, "classic", 1e-8, 0, "", "", 0, 2, 0, "", cgFlags); err == nil {
		t.Fatal("topology on serial solve accepted")
	}
}

func writeNonsymMatrix(t *testing.T) string {
	t.Helper()
	a := fsaicomm.GenerateConvectionDiffusion2D(8, 8, 5)
	path := filepath.Join(t.TempDir(), "cd.mtx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fsaicomm.WriteMatrixMarket(f, a); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGMRESSolvesNonsymmetric(t *testing.T) {
	mtx := writeNonsymMatrix(t)
	dir := t.TempDir()
	gm := spaiFlags{solver: "gmres", restart: 20, steps: 2}
	serial := filepath.Join(dir, "x-serial.txt")
	if err := run(mtx, "", "spai", 0, false, 64, 1, 0, "classic", 1e-8, 0, serial, "", 0, 0, 0, "", gm); err != nil {
		t.Fatalf("serial spai+gmres: %v", err)
	}
	dist := filepath.Join(dir, "x-dist.txt")
	if err := run(mtx, "", "spai", 0, false, 64, 4, 0, "classic", 1e-8, 0, dist, "", 0, 2, 2, "", gm); err != nil {
		t.Fatalf("distributed spai+gmres: %v", err)
	}
	xs, err := readVector(serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 64 {
		t.Fatalf("solution length %d", len(xs))
	}
	if _, err := readVector(dist); err != nil {
		t.Fatal(err)
	}
	// A CG solve on the same matrix must be rejected, not silently wrong.
	if err := run(mtx, "", "fsai", 0, false, 64, 1, 0, "classic", 1e-8, 0, "", "", 0, 0, 0, "", cgFlags); err == nil {
		t.Fatal("CG accepted a nonsymmetric matrix")
	}
}

func TestRunErrors(t *testing.T) {
	mtx := writeTestMatrix(t)
	if err := run("", "", "fsai", 0, false, 64, 1, 0, "classic", 0, 0, "", "", 0, 0, 0, "", cgFlags); err == nil {
		t.Fatal("missing matrix accepted")
	}
	if err := run(mtx, "", "bogus", 0, false, 64, 1, 0, "classic", 0, 0, "", "", 0, 0, 0, "", cgFlags); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := run(mtx, "", "fsai", 0, false, 64, 1, 0, "bogus", 0, 0, "", "", 0, 0, 0, "", cgFlags); err == nil {
		t.Fatal("unknown CG variant accepted")
	}
	short := filepath.Join(t.TempDir(), "short.txt")
	os.WriteFile(short, []byte("1.0\n"), 0o644)
	if err := run(mtx, short, "fsai", 0, false, 64, 1, 0, "classic", 0, 0, "", "", 0, 0, 0, "", cgFlags); err == nil {
		t.Fatal("short rhs accepted")
	}
}

package fsaicomm

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		want string // substring of the error; "" means valid
	}{
		{"zero value", Options{}, ""},
		{"typical", Options{Method: FSAIEComm, Filter: 0.05, Tol: 1e-9, Ranks: 4, CGVariant: CGFused}, ""},
		{"negative tol", Options{Tol: -1}, "Tol"},
		{"nan tol", Options{Tol: math.NaN()}, "Tol"},
		{"negative maxiter", Options{MaxIter: -5}, "MaxIter"},
		{"negative ranks", Options{Ranks: -2}, "Ranks"},
		{"negative filter", Options{Filter: -0.1}, "Filter"},
		{"negative linebytes", Options{LineBytes: -64}, "LineBytes"},
		{"negative pattern level", Options{PatternLevel: -1}, "PatternLevel"},
		{"negative threshold", Options{Threshold: -1e-3}, "Threshold"},
		{"negative replace every", Options{ResidualReplaceEvery: -1}, "ResidualReplaceEvery"},
		{"unknown method", Options{Method: Method(42)}, "method"},
		{"unknown strategy", Options{Strategy: FilterStrategy(9)}, "strategy"},
		{"unknown partitioner", Options{Partitioner: "metis"}, "partitioner"},
		{"unknown cg variant", Options{CGVariant: CGVariant(7)}, "CG variant"},
		{"unknown arch", Options{Arch: "m1"}, "arch"},
	}
	for _, tc := range cases {
		err := tc.opt.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: error %v is not ErrInvalidOptions", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// The validator is shared by every entry point: bad options must be
// rejected before any work happens, with ErrInvalidOptions classifiable.
func TestEntryPointsValidateOptions(t *testing.T) {
	a := GeneratePoisson2D(8, 8)
	b := GenerateRHS(a, 1)
	bad := Options{MaxIter: -1}
	if _, err := Solve(a, b, bad); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Solve: %v", err)
	}
	if _, err := SolveDistributed(a, b, bad); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("SolveDistributed: %v", err)
	}
	if _, err := BuildPreconditioner(a, bad); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("BuildPreconditioner: %v", err)
	}
	if _, err := Prepare(a, bad); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Prepare: %v", err)
	}
	p, err := Prepare(a, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(context.Background(), b, SolveOptions{Tol: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Prepared.Solve: %v", err)
	}
}

func TestParseMethod(t *testing.T) {
	for in, want := range map[string]Method{
		"": FSAIEComm, "fsai": FSAI, "FSAIE": FSAIE,
		"fsaie-comm": FSAIEComm, "fsaiecomm": FSAIEComm,
	} {
		got, err := ParseMethod(in)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMethod("ilu"); err == nil {
		t.Error("ParseMethod accepted an unknown method")
	}
}

// A prepared system must reproduce SolveDistributed bit for bit: the same
// partition, factors and solver loop, only the setup phase is skipped.
func TestPreparedMatchesSolveDistributed(t *testing.T) {
	a := GenerateElasticity2D(9, 9, 3)
	b := GenerateRHS(a, 4)
	opt := Options{Method: FSAIEComm, Filter: 0.01, Ranks: 3}
	for _, v := range []CGVariant{CGClassic, CGFused, CGPipelined} {
		opt.CGVariant = v
		ref, err := SolveDistributed(a, b, opt)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		p, err := Prepare(a, opt)
		if err != nil {
			t.Fatalf("%v: Prepare: %v", v, err)
		}
		got, err := p.Solve(context.Background(), b, SolveOptions{CGVariant: v})
		if err != nil {
			t.Fatalf("%v: Prepared.Solve: %v", v, err)
		}
		if got.Iterations != ref.Iterations || got.Converged != ref.Converged {
			t.Fatalf("%v: iterations %d/%v, reference %d/%v",
				v, got.Iterations, got.Converged, ref.Iterations, ref.Converged)
		}
		for i := range ref.X {
			if got.X[i] != ref.X[i] {
				t.Fatalf("%v: x[%d] differs: %g != %g", v, i, got.X[i], ref.X[i])
			}
		}
		if got.SetupTime != 0 {
			t.Fatalf("%v: prepared solve reports setup time %v", v, got.SetupTime)
		}
		if got.CommBytes != ref.CommBytes {
			t.Fatalf("%v: comm bytes %d, reference %d (setup traffic leaked into the solve?)",
				v, got.CommBytes, ref.CommBytes)
		}
		// Solve-phase attribution is exact on both paths: the per-rank
		// snapshot delta is taken at the setup/solve boundary, so the Krylov
		// loops' collectives match one for one.
		if got.CollectiveCalls != ref.CollectiveCalls {
			t.Fatalf("%v: collective calls %d, reference %d", v, got.CollectiveCalls, ref.CollectiveCalls)
		}
	}
}

// Concurrent solves on one Prepared must not interfere: every goroutine
// gets the bit-identical solution the sequential solve produces.
func TestPreparedConcurrentSolves(t *testing.T) {
	a := GeneratePoisson2D(20, 20)
	b := GenerateRHS(a, 8)
	p, err := Prepare(a, Options{Method: FSAIEComm, Filter: 0.01, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.Solve(context.Background(), b, SolveOptions{CGVariant: CGFused})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w], errs[w] = p.Solve(context.Background(), b, SolveOptions{CGVariant: CGFused})
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w].Iterations != ref.Iterations {
			t.Fatalf("worker %d: %d iterations, reference %d", w, results[w].Iterations, ref.Iterations)
		}
		for i := range ref.X {
			if results[w].X[i] != ref.X[i] {
				t.Fatalf("worker %d: x[%d] differs", w, i)
			}
		}
	}
}

// Cancellation through the facade: a canceled context yields ErrCanceled
// with the partial result, both in SolveContext and on a Prepared system.
func TestFacadeCancellation(t *testing.T) {
	a := GeneratePoisson2D(16, 16)
	b := GenerateRHS(a, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveContext(ctx, a, b, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveContext: got %v, want ErrCanceled", err)
	}
	if res == nil || res.Iterations != 0 || res.Converged {
		t.Fatalf("SolveContext: partial result %+v", res)
	}
	res, err = SolveDistributedContext(ctx, a, b, Options{Ranks: 2})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveDistributedContext: got %v, want ErrCanceled", err)
	}
	if res == nil || res.Converged {
		t.Fatal("SolveDistributedContext: no partial result")
	}
	p, err := Prepare(a, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err = p.Solve(ctx, b, SolveOptions{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Prepared.Solve: got %v, want ErrCanceled", err)
	}
	if res == nil || res.Converged {
		t.Fatal("Prepared.Solve: no partial result")
	}
}

func TestPreparedAccessors(t *testing.T) {
	a := GeneratePoisson2D(12, 12)
	p, err := Prepare(a, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Ranks() != 3 || p.Rows() != a.Rows {
		t.Fatalf("ranks %d rows %d", p.Ranks(), p.Rows())
	}
	if p.SetupTime() <= 0 {
		t.Fatal("setup time not recorded")
	}
	if p.SizeBytes() <= 0 {
		t.Fatal("size estimate not positive")
	}
	if got := p.Options().Ranks; got != 3 {
		t.Fatalf("canonicalized ranks %d", got)
	}
	if p.Options().Tol != 1e-8 {
		t.Fatalf("canonicalized tol %g", p.Options().Tol)
	}
}

func TestAutoRanks(t *testing.T) {
	a := GeneratePoisson2D(10, 10)
	if got := AutoRanks(a, 5); got != 5 {
		t.Fatalf("explicit request: %d", got)
	}
	if got := AutoRanks(a, 0); got != 2 {
		t.Fatalf("small matrix: %d, want clamp to 2", got)
	}
	big := GeneratePoisson2D(300, 300)
	got := AutoRanks(big, 0)
	if got < 2 || got > 12 {
		t.Fatalf("auto ranks %d outside [2,12]", got)
	}
}

package simmpi

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// IallreduceSum must agree with AllreduceSum and be metered identically.
func TestIallreduceSumMatchesBlocking(t *testing.T) {
	const nranks = 4
	w, err := Run(nranks, testTimeout, func(c *Comm) error {
		req := c.IallreduceSum(float64(c.Rank()), 1)
		got, err := req.Wait()
		if err != nil {
			return err
		}
		if got[0] != 6 || got[1] != float64(nranks) {
			return fmt.Errorf("rank %d: got %v, want [6 %d]", c.Rank(), got, nranks)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nranks; r++ {
		if calls := w.Meter().CollectiveCalls(r); calls != 1 {
			t.Fatalf("rank %d: %d collective calls, want 1", r, calls)
		}
		if b := w.Meter().CollectiveBytes(r); b != 16 {
			t.Fatalf("rank %d: %d collective bytes, want 16", r, b)
		}
	}
}

// The overlap idiom: post the reduction, do unrelated point-to-point work
// while it is in flight, then wait. The collective must complete even
// though every rank is busy with p2p traffic between post and wait.
func TestIallreduceOverlapsP2P(t *testing.T) {
	_, err := Run(4, testTimeout, func(c *Comm) error {
		req := c.IallreduceSum(1)
		next, prev := (c.Rank()+1)%4, (c.Rank()+3)%4
		c.SendFloats(next, 5, []float64{float64(c.Rank())})
		got := c.RecvFloats(prev, 5)
		if got[0] != float64(prev) {
			return fmt.Errorf("p2p payload %v, want %d", got, prev)
		}
		sum, err := req.Wait()
		if err != nil {
			return err
		}
		if sum[0] != 4 {
			return fmt.Errorf("reduction %v, want 4", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Waiting a handle twice must error (wrapping ErrWaited), not deadlock.
func TestRequestDoubleWaitErrors(t *testing.T) {
	_, err := Run(2, testTimeout, func(c *Comm) error {
		req := c.IallreduceSum(1)
		if _, err := req.Wait(); err != nil {
			return err
		}
		if _, err := req.Wait(); !errors.Is(err, ErrWaited) {
			return fmt.Errorf("second Wait: got %v, want ErrWaited", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Isend/Irecv round trip with metering identical to the blocking twins.
func TestIsendIrecvFloats(t *testing.T) {
	w, err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			req := c.IsendFloats(1, 9, buf)
			buf[0] = 99 // payload must have been copied at post time
			_, err := req.Wait()
			return err
		}
		req := c.IrecvFloats(0, 9)
		got, err := req.Wait()
		if err != nil {
			return err
		}
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if b := w.Meter().PairBytes(0, 1); b != 24 {
		t.Fatalf("metered %d bytes, want 24", b)
	}
}

// The post-recv-then-send idiom must not deadlock: both ranks post their
// receives first, then their sends, then wait — the pattern a nonblocking
// halo exchange uses.
func TestIrecvBeforeIsendNoDeadlock(t *testing.T) {
	_, err := Run(2, testTimeout, func(c *Comm) error {
		peer := 1 - c.Rank()
		recv := c.IrecvFloats(peer, 3)
		send := c.IsendFloats(peer, 3, []float64{float64(c.Rank())})
		got, err := recv.Wait()
		if err != nil {
			return err
		}
		if got[0] != float64(peer) {
			return fmt.Errorf("got %v, want %d", got, peer)
		}
		_, err = send.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Stress: many outstanding IallreduceSum and Isend/Irecv handles at once,
// waited out of post order, on every rank, with results checked per
// operation. Run under -race in tier2, this is the race gate for the
// chain bookkeeping.
func TestManyOutstandingRequestsOutOfOrderWaits(t *testing.T) {
	const (
		nranks = 4
		nops   = 64
	)
	_, err := Run(nranks, testTimeout, func(c *Comm) error {
		next, prev := (c.Rank()+1)%nranks, (c.Rank()+nranks-1)%nranks
		colls := make([]*Request, nops)
		sends := make([]*Request, nops)
		recvs := make([]*Request, nops)
		for i := 0; i < nops; i++ {
			colls[i] = c.IallreduceSum(float64(i), 1)
			recvs[i] = c.IrecvFloats(prev, 40)
			sends[i] = c.IsendFloats(next, 40, []float64{float64(c.Rank()*nops + i)})
		}
		// Wait in a rank-dependent shuffled order: out-of-order waits must
		// neither deadlock nor cross results between handles.
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 7))
		order := rng.Perm(nops)
		for _, i := range order {
			g, err := colls[i].Wait()
			if err != nil {
				return err
			}
			if g[0] != float64(i*nranks) || g[1] != nranks {
				return fmt.Errorf("collective %d: got %v", i, g)
			}
			v, err := recvs[i].Wait()
			if err != nil {
				return err
			}
			if v[0] != float64(prev*nops+i) {
				return fmt.Errorf("recv %d: got %v, want %d", i, v, prev*nops+i)
			}
			if _, err := sends[i].Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Blocking collectives issued while nonblocking ones are outstanding must
// wait for them, preserving one per-rank collective order.
func TestBlockingCollectiveDrainsOutstanding(t *testing.T) {
	_, err := Run(3, testTimeout, func(c *Comm) error {
		r1 := c.IallreduceSum(1)
		r2 := c.IallreduceSum(2)
		max := c.AllreduceMax(float64(c.Rank()))
		if max[0] != 2 {
			return fmt.Errorf("max %v, want 2", max)
		}
		if !r1.Done() || !r2.Done() {
			return fmt.Errorf("outstanding reductions not drained before blocking collective")
		}
		s1, err := r1.Wait()
		if err != nil {
			return err
		}
		s2, err := r2.Wait()
		if err != nil {
			return err
		}
		if s1[0] != 3 || s2[0] != 6 {
			return fmt.Errorf("sums %v %v, want 3 6", s1, s2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A mix of blocking and nonblocking sends to the same peer must preserve
// per-sender FIFO order.
func TestMixedSendOrderPreserved(t *testing.T) {
	_, err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			c.IsendFloats(1, 11, []float64{1})
			c.SendFloats(1, 11, []float64{2}) // must drain the Isend first
			c.IsendFloats(1, 11, []float64{3})
			c.Barrier()
			return nil
		}
		for want := 1.0; want <= 3; want++ {
			got := c.RecvFloats(0, 11)
			if got[0] != want {
				return fmt.Errorf("got %v, want %v", got, want)
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A deadlocked nonblocking collective (only one rank posts it) must turn
// into a timeout panic surfaced through Wait, recovered by Run.
func TestAsyncDeadlockSurfacesThroughWait(t *testing.T) {
	_, err := Run(2, 50*time.Millisecond, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.IallreduceSum(1) // rank 1 never joins
			_, err := req.Wait()      // re-raises the timeout panic
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("want timeout error, got nil")
	}
}

package simmpi_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/tcpmpi"
)

func TestResolveTopology(t *testing.T) {
	cases := []struct {
		size, nodes, rpn int
		want             simmpi.Topology
	}{
		{4, 0, 0, simmpi.Topology{Nodes: 4, RanksPerNode: 1}}, // both zero: flat
		{4, 2, 0, simmpi.Topology{Nodes: 2, RanksPerNode: 2}}, // derive ranks/node
		{4, 0, 2, simmpi.Topology{Nodes: 2, RanksPerNode: 2}}, // derive nodes
		{8, 2, 4, simmpi.Topology{Nodes: 2, RanksPerNode: 4}}, // both given
		{6, 6, 1, simmpi.Topology{Nodes: 6, RanksPerNode: 1}}, // explicit flat
	}
	for _, c := range cases {
		got, err := simmpi.ResolveTopology(c.size, c.nodes, c.rpn)
		if err != nil {
			t.Fatalf("ResolveTopology(%d,%d,%d): %v", c.size, c.nodes, c.rpn, err)
		}
		if got != c.want {
			t.Fatalf("ResolveTopology(%d,%d,%d) = %+v, want %+v", c.size, c.nodes, c.rpn, got, c.want)
		}
	}
}

func TestResolveTopologyErrors(t *testing.T) {
	cases := []struct {
		size, nodes, rpn int
		wantSub          string
	}{
		{4, 0, 3, "not divisible"}, // 4 ranks into 3-rank nodes
		{4, 3, 0, "not divisible"}, // 4 ranks across 3 nodes
		{4, 3, 2, "world has"},     // 3×2 covers 6, world has 4
		{0, 2, 0, "world size"},    // no ranks at all
		{4, -1, 0, "negative"},     // negative request
		{4, 0, -2, "negative"},     //
	}
	for _, c := range cases {
		_, err := simmpi.ResolveTopology(c.size, c.nodes, c.rpn)
		if err == nil {
			t.Fatalf("ResolveTopology(%d,%d,%d) accepted", c.size, c.nodes, c.rpn)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("ResolveTopology(%d,%d,%d) error %q does not mention %q",
				c.size, c.nodes, c.rpn, err, c.wantSub)
		}
	}
}

func TestTopologyHelpers(t *testing.T) {
	topo := simmpi.Topology{Nodes: 2, RanksPerNode: 3}
	if topo.Flat() {
		t.Fatal("2x3 topology reported flat")
	}
	for r, wantNode := range []int{0, 0, 0, 1, 1, 1} {
		if got := topo.NodeOf(r); got != wantNode {
			t.Fatalf("NodeOf(%d) = %d, want %d", r, got, wantNode)
		}
	}
	if !topo.SameNode(0, 2) || topo.SameNode(2, 3) {
		t.Fatal("SameNode wrong across the node boundary")
	}
	if topo.Leader(0) != 0 || topo.Leader(1) != 3 {
		t.Fatalf("leaders = %d, %d, want 0, 3", topo.Leader(0), topo.Leader(1))
	}
	if err := topo.Validate(6); err != nil {
		t.Fatalf("Validate(6): %v", err)
	}
	if err := topo.Validate(8); err == nil {
		t.Fatal("Validate(8) accepted a 6-rank topology")
	}

	// The zero topology and FlatTopology both behave one-rank-per-node.
	var zero simmpi.Topology
	if !zero.Flat() || !simmpi.FlatTopology(5).Flat() {
		t.Fatal("flat topologies not reported flat")
	}
	if zero.NodeOf(3) != 3 || zero.Leader(3) != 3 || zero.SameNode(1, 2) {
		t.Fatal("zero topology must treat every rank as its own node")
	}
	if err := zero.Validate(17); err != nil {
		t.Fatalf("zero topology Validate: %v", err)
	}
}

func TestMeterMergeTopologyMismatchPanics(t *testing.T) {
	a := simmpi.NewMeterTopo(4, simmpi.Topology{Nodes: 2, RanksPerNode: 2})
	b := simmpi.NewMeter(4)
	defer func() {
		if recover() == nil {
			t.Fatal("merging meters with different topologies did not panic")
		}
	}()
	a.Merge(b)
}

// allToAll has every rank send its 2-float payload to every other rank and
// receive the 3 payloads it is owed — the hand-built exchange whose exact
// intra/inter meter attribution the tests below pin on both transports.
func allToAll(c *simmpi.Comm) error {
	const tag = 7
	payload := []float64{float64(c.Rank()), float64(c.Rank())}
	for dst := 0; dst < c.Size(); dst++ {
		if dst != c.Rank() {
			c.SendFloats(dst, tag, payload)
		}
	}
	for src := 0; src < c.Size(); src++ {
		if src == c.Rank() {
			continue
		}
		vals := c.RecvFloats(src, tag)
		if len(vals) != 2 || vals[0] != float64(src) {
			return fmt.Errorf("rank %d: bad payload from %d: %v", c.Rank(), src, vals)
		}
	}
	return nil
}

// checkAllToAllAttribution pins the exact split of the 4-rank all-to-all on a
// 2-node × 2-rank topology. Each rank sends three 16-byte messages: one to
// its node sibling (intra) and two across the node boundary (inter), so the
// world totals must be intra 4 msgs / 64 B and inter 8 msgs / 128 B, with
// the historical totals equal to their sum.
func checkAllToAllAttribution(t *testing.T, m *simmpi.Meter) {
	t.Helper()
	s := m.Snapshot()
	if s.P2PMessages != 12 || s.P2PBytes != 192 {
		t.Fatalf("totals: %d msgs / %d bytes, want 12 / 192", s.P2PMessages, s.P2PBytes)
	}
	if s.IntraP2PMessages != 4 || s.IntraP2PBytes != 64 {
		t.Fatalf("intra: %d msgs / %d bytes, want 4 / 64", s.IntraP2PMessages, s.IntraP2PBytes)
	}
	if s.InterP2PMessages != 8 || s.InterP2PBytes != 128 {
		t.Fatalf("inter: %d msgs / %d bytes, want 8 / 128", s.InterP2PMessages, s.InterP2PBytes)
	}
	if s.IntraP2PBytes+s.InterP2PBytes != s.P2PBytes ||
		s.IntraP2PMessages+s.InterP2PMessages != s.P2PMessages {
		t.Fatalf("split does not sum to the totals: %+v", s)
	}
	for r := 0; r < 4; r++ {
		rs := m.RankSnapshot(r)
		if rs.IntraP2PMessages != 1 || rs.IntraP2PBytes != 16 ||
			rs.InterP2PMessages != 2 || rs.InterP2PBytes != 32 {
			t.Fatalf("rank %d split: %+v, want intra 1/16 inter 2/32", r, rs)
		}
	}
}

func TestMeterAttributionSim(t *testing.T) {
	topo := simmpi.Topology{Nodes: 2, RanksPerNode: 2}
	w, err := simmpi.RunTopo(4, 10*time.Second, topo, allToAll)
	if err != nil {
		t.Fatal(err)
	}
	checkAllToAllAttribution(t, w.Meter())
}

func TestMeterAttributionTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket transport in -short mode")
	}
	topo := simmpi.Topology{Nodes: 2, RanksPerNode: 2}
	m, err := tcpmpi.RunLocalTopo(4, tcpmpi.Config{Timeout: 10 * time.Second}, topo, allToAll)
	if err != nil {
		t.Fatal(err)
	}
	checkAllToAllAttribution(t, m)
}

// Under a flat (zero) topology nothing can be intra-node: the new split
// fields must read all traffic as inter while the historical totals are
// untouched — the backward-compatibility contract every pre-topology caller
// relies on.
func TestMeterFlatTopologyAllInter(t *testing.T) {
	w, err := simmpi.Run(4, 10*time.Second, allToAll)
	if err != nil {
		t.Fatal(err)
	}
	s := w.Meter().Snapshot()
	if s.P2PMessages != 12 || s.P2PBytes != 192 {
		t.Fatalf("totals: %d msgs / %d bytes, want 12 / 192", s.P2PMessages, s.P2PBytes)
	}
	if s.IntraP2PMessages != 0 || s.IntraP2PBytes != 0 {
		t.Fatalf("flat world recorded intra-node traffic: %+v", s)
	}
	if s.InterP2PMessages != 12 || s.InterP2PBytes != 192 {
		t.Fatalf("flat world inter != totals: %+v", s)
	}
}

func TestRunTopoRejectsInvalidTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunTopo accepted a topology not covering the world")
		}
	}()
	simmpi.RunTopo(4, time.Second, simmpi.Topology{Nodes: 3, RanksPerNode: 2}, func(c *simmpi.Comm) error { return nil })
}

package simmpi

import (
	"errors"
	"fmt"
)

// Transport is the wire layer beneath a Comm: one rank's connection to its
// world. Everything a Comm does — tagged point-to-point messages, the
// collective rendezvous, and (built on top of these) the nonblocking
// operation chains — funnels through this interface, so a solver written
// against Comm runs unmodified over any backend.
//
// Two backends exist: the in-process channel simulator in this package
// (goroutine ranks, the test oracle) and the TCP/Unix-socket backend in
// internal/tcpmpi (OS-process ranks over real sockets). The conformance
// suite in internal/commtest pins the semantics both must share:
//
//   - Per-sender FIFO: messages from one rank to another arrive in send
//     order. Messages from different senders order independently.
//   - Payload ownership passes to the transport on Send; the caller-facing
//     copy semantics (Comm copies before handing over, except self-sends)
//     live above this interface.
//   - Collective calls are a whole-world rendezvous reduced in rank order
//     (rank 0 is the root), so floating-point reductions are bitwise
//     identical across backends.
//   - Failures surface as errors, never hangs: a blocking call on a dead or
//     absent peer must return within the backend's configured timeout.
//
// Self-sends never reach the transport: Comm short-circuits rank→rank
// messages through an in-process loopback queue, so implementations may
// assume dst != Rank() and src != Rank().
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size()).
	Rank() int
	// Size returns the world size.
	Size() int
	// Send delivers a tagged payload to dst. The payload's backing arrays
	// belong to the transport after the call.
	Send(dst int, p Payload) error
	// Recv blocks for the next payload from src (per-sender FIFO; tags do
	// not match-make — Comm checks the tag of whatever arrives next).
	Recv(src int) (Payload, error)
	// Collective performs one whole-world rendezvous. Every rank must call
	// it with the same Op in the same per-rank operation order; the reduced
	// result is returned on every rank. Op mismatches are errors.
	Collective(contrib CollPayload) (CollPayload, error)
	// Close releases the endpoint. Blocking calls on peers of a closed
	// endpoint fail with ErrRankLost-wrapped errors.
	Close() error
}

// Payload is one tagged point-to-point message as carried by a Transport.
// Exactly one of F64, F32 and Ints is meaningful; a zero-length payload of
// any type is valid. F32 carries the half-width halo traffic of
// mixed-precision solves — 4 bytes per value on the wire and on the meter.
type Payload struct {
	Src, Tag int
	F64      []float64
	F32      []float32
	Ints     []int
}

// CollPayload is one rank's contribution to — or the reduced result of — a
// collective operation. Op names the operation (see Reduce); the vector
// fields carry whichever payload type the operation reduces.
type CollPayload struct {
	Op   string
	F64  []float64
	I64  []int64
	Ints []int
}

// ErrRankLost is wrapped by transport errors that mean a peer rank died or
// became unreachable (its process exited, its connection closed, or it
// stopped answering within the configured deadline). Backends must surface
// it instead of hanging; the runtime's per-rank recovery turns it into a
// clean error from Run.
var ErrRankLost = errors.New("simmpi: rank lost")

// Reduce combines per-rank collective contributions in rank order. parts
// must be indexed by rank (parts[0] is rank 0's contribution); iterating in
// ascending rank order makes floating-point reductions bitwise reproducible
// and identical across backends. It is exported so every Transport
// implementation shares one reduction semantics.
func Reduce(op string, parts []CollPayload) (CollPayload, error) {
	out := CollPayload{Op: op}
	switch op {
	case "barrier":
	case "allreduce-sum":
		out.F64 = make([]float64, len(parts[0].F64))
		for _, p := range parts {
			for i, v := range p.F64 {
				out.F64[i] += v
			}
		}
	case "allreduce-max":
		out.F64 = append([]float64(nil), parts[0].F64...)
		for _, p := range parts[1:] {
			for i, v := range p.F64 {
				if v > out.F64[i] {
					out.F64[i] = v
				}
			}
		}
	case "allreduce-min":
		out.F64 = append([]float64(nil), parts[0].F64...)
		for _, p := range parts[1:] {
			for i, v := range p.F64 {
				if v < out.F64[i] {
					out.F64[i] = v
				}
			}
		}
	case "allreduce-sum-i64":
		out.I64 = make([]int64, len(parts[0].I64))
		for _, p := range parts {
			for i, v := range p.I64 {
				out.I64[i] += v
			}
		}
	case "allreduce-max-i64":
		out.I64 = append([]int64(nil), parts[0].I64...)
		for _, p := range parts[1:] {
			for i, v := range p.I64 {
				if v > out.I64[i] {
					out.I64[i] = v
				}
			}
		}
	case "allgather-i64":
		for _, p := range parts {
			out.I64 = append(out.I64, p.I64...)
		}
	case "allgather-f64":
		for _, p := range parts {
			out.F64 = append(out.F64, p.F64...)
		}
	case "allgather-int":
		for _, p := range parts {
			out.Ints = append(out.Ints, p.Ints...)
		}
	case "bcast":
		out = parts[0]
		out.Op = op
	default:
		return CollPayload{}, fmt.Errorf("simmpi: unknown collective op %q", op)
	}
	return out, nil
}

package simmpi

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

const testTimeout = 5 * time.Second

func TestRunBasicSendRecv(t *testing.T) {
	w, err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendFloats(1, 7, []float64{1, 2, 3})
			return nil
		}
		got := c.RecvFloats(0, 7)
		if len(got) != 3 || got[2] != 3 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if b := w.Meter().PairBytes(0, 1); b != 24 {
		t.Fatalf("metered %d bytes, want 24", b)
	}
	if n := w.Meter().TotalP2PMessages(); n != 1 {
		t.Fatalf("metered %d messages, want 1", n)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	_, err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1, 2}
			c.SendFloats(1, 0, buf)
			buf[0] = 99 // must not affect the received value
			c.Barrier()
			return nil
		}
		c.Barrier()
		got := c.RecvFloats(0, 0)
		if got[0] != 1 {
			return fmt.Errorf("payload aliased sender buffer: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvInts(t *testing.T) {
	_, err := Run(3, testTimeout, func(c *Comm) error {
		next := (c.Rank() + 1) % 3
		prev := (c.Rank() + 2) % 3
		c.SendInts(next, 1, []int{c.Rank() * 10})
		got := c.RecvInts(prev, 1)
		if got[0] != prev*10 {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderPerSender(t *testing.T) {
	_, err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 50; i++ {
				c.SendFloats(1, i, []float64{float64(i)})
			}
			return nil
		}
		for i := 0; i < 50; i++ {
			got := c.RecvFloats(0, i)
			if got[0] != float64(i) {
				return fmt.Errorf("message %d out of order: %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	_, err := Run(4, testTimeout, func(c *Comm) error {
		got := c.AllreduceSum(float64(c.Rank()), 1)
		if got[0] != 6 || got[1] != 4 {
			return fmt.Errorf("rank %d: %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	_, err := Run(5, testTimeout, func(c *Comm) error {
		mx := c.AllreduceMax(float64(c.Rank()))
		mn := c.AllreduceMin(float64(c.Rank()))
		if mx[0] != 4 || mn[0] != 0 {
			return fmt.Errorf("max=%v min=%v", mx, mn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceInt64(t *testing.T) {
	_, err := Run(3, testTimeout, func(c *Comm) error {
		s := c.AllreduceSumInt64(int64(c.Rank() + 1))
		m := c.AllreduceMaxInt64(int64(c.Rank() + 1))
		if s[0] != 6 || m[0] != 3 {
			return fmt.Errorf("sum=%v max=%v", s, m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	_, err := Run(3, testTimeout, func(c *Comm) error {
		g := c.AllgatherInt64([]int64{int64(c.Rank()), int64(c.Rank() * 2)})
		want := []int64{0, 0, 1, 2, 2, 4}
		if len(g) != len(want) {
			return fmt.Errorf("len %d", len(g))
		}
		for i := range want {
			if g[i] != want[i] {
				return fmt.Errorf("g=%v", g)
			}
		}
		gi := c.AllgatherInt([]int{c.Rank()})
		if len(gi) != 3 || gi[2] != 2 {
			return fmt.Errorf("gi=%v", gi)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(4, testTimeout, func(c *Comm) error {
		var in []float64
		if c.Rank() == 0 {
			in = []float64{math.Pi}
		}
		got := c.BcastFloats(0, in)
		if got[0] != math.Pi {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, all pre-barrier sends must be visible.
	_, err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendInts(1, 0, []int{42})
		}
		c.Barrier()
		if c.Rank() == 1 {
			got := c.RecvInts(0, 0)
			if got[0] != 42 {
				return fmt.Errorf("got %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetectedByTimeout(t *testing.T) {
	_, err := Run(2, 50*time.Millisecond, func(c *Comm) error {
		if c.Rank() == 1 {
			c.RecvFloats(0, 0) // rank 0 never sends
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("deadlock not detected: %v", err)
	}
}

func TestCollectiveMismatchPanics(t *testing.T) {
	// Short timeout: after rank 0 detects the mismatch and panics, rank 1 is
	// left waiting for the broadcast and must time out.
	_, err := Run(2, 100*time.Millisecond, func(c *Comm) error {
		if c.Rank() == 0 {
			c.AllreduceSum(1)
		} else {
			c.AllreduceMax(1)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("collective mismatch not detected: %v", err)
	}
}

func TestTagMismatchPanics(t *testing.T) {
	_, err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendFloats(1, 5, []float64{1})
			return nil
		}
		c.RecvFloats(0, 6)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "tag") {
		t.Fatalf("tag mismatch not detected: %v", err)
	}
}

func TestPayloadTypeMismatchPanics(t *testing.T) {
	_, err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendInts(1, 0, []int{1})
			return nil
		}
		c.RecvFloats(0, 0)
		return nil
	})
	if err == nil {
		t.Fatal("payload type mismatch not detected")
	}
}

func TestSelfSendLoopback(t *testing.T) {
	w, err := Run(1, testTimeout, func(c *Comm) error {
		sent := []float64{1, 2, 3}
		c.SendFloats(0, 7, sent)
		got := c.RecvFloats(0, 7)
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			return fmt.Errorf("loopback payload = %v", got)
		}
		// Self-delivery is defined as no-copy: the receiver shares the
		// sender's backing array.
		if &got[0] != &sent[0] {
			return fmt.Errorf("loopback copied the payload")
		}
		c.SendInts(0, 8, []int{4, 5})
		if ints := c.RecvInts(0, 8); len(ints) != 2 || ints[1] != 5 {
			return fmt.Errorf("loopback ints = %v", ints)
		}
		// Posted self-sends join the same loopback queue in chain order.
		r := c.IsendFloats(0, 9, []float64{6})
		if got := c.RecvFloats(0, 9); len(got) != 1 || got[0] != 6 {
			return fmt.Errorf("posted loopback payload = %v", got)
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Loopback traffic crosses no rank boundary and is not metered.
	if n := w.Meter().TotalP2PMessages(); n != 0 {
		t.Fatalf("self-sends metered: %d messages", n)
	}
}

func TestSelfRecvWithoutSendTimesOut(t *testing.T) {
	_, err := Run(1, 50*time.Millisecond, func(c *Comm) error {
		c.RecvFloats(0, 0)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("bare self-receive not detected: %v", err)
	}
}

func TestInvalidPeerPanics(t *testing.T) {
	_, err := Run(1, testTimeout, func(c *Comm) error {
		c.SendFloats(3, 0, []float64{1})
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "invalid peer") {
		t.Fatalf("invalid peer not detected: %v", err)
	}
}

func TestMeterNeighborSetsAndReset(t *testing.T) {
	w, err := Run(3, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendFloats(1, 0, []float64{1})
			c.SendFloats(2, 0, []float64{1, 2})
		}
		c.Barrier()
		if c.Rank() != 0 {
			c.RecvFloats(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ns := w.Meter().NeighborSets()
	if len(ns[0]) != 2 || ns[0][0] != 1 || ns[0][1] != 2 || len(ns[1]) != 0 {
		t.Fatalf("neighbor sets = %v", ns)
	}
	if got := w.Meter().MaxRankP2PBytes(); got != 24 {
		t.Fatalf("MaxRankP2PBytes = %d, want 24", got)
	}
	w.Meter().Reset()
	if w.Meter().TotalP2PBytes() != 0 || w.Meter().TotalP2PMessages() != 0 {
		t.Fatal("Reset did not zero meter")
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size 0 accepted")
		}
	}()
	NewWorld(0, 0)
}

func TestManyRanksStress(t *testing.T) {
	// Ring exchange over 32 ranks with collectives mixed in.
	_, err := Run(32, testTimeout, func(c *Comm) error {
		n := c.Size()
		next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
		for iter := 0; iter < 10; iter++ {
			c.SendFloats(next, iter, []float64{float64(c.Rank())})
			got := c.RecvFloats(prev, iter)
			if got[0] != float64(prev) {
				return fmt.Errorf("iter %d: got %v", iter, got)
			}
			sum := c.AllreduceSum(1)
			if sum[0] != float64(n) {
				return fmt.Errorf("allreduce = %v", sum)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherFloats(t *testing.T) {
	_, err := Run(3, testTimeout, func(c *Comm) error {
		g := c.AllgatherFloats([]float64{float64(c.Rank()) + 0.5})
		want := []float64{0.5, 1.5, 2.5}
		if len(g) != 3 {
			return fmt.Errorf("len %d", len(g))
		}
		for i := range want {
			if g[i] != want[i] {
				return fmt.Errorf("g=%v", g)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeterCollectiveCallsAndBytes(t *testing.T) {
	const ranks = 3
	w, err := Run(ranks, testTimeout, func(c *Comm) error {
		c.AllreduceSum(1, 2, 3) // 24 bytes, 1 call per rank
		c.AllreduceSum(1)       // 8 bytes, 1 call per rank
		c.Barrier()             // 0 bytes, 1 call per rank
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := w.Meter()
	for r := 0; r < ranks; r++ {
		if got := m.CollectiveCalls(r); got != 3 {
			t.Fatalf("rank %d collective calls = %d, want 3", r, got)
		}
		if got := m.CollectiveBytes(r); got != 32 {
			t.Fatalf("rank %d collective bytes = %d, want 32", r, got)
		}
	}
	if got := m.TotalCollectiveCalls(); got != 3*ranks {
		t.Fatalf("total collective calls = %d, want %d", got, 3*ranks)
	}
	if got := m.TotalCollectiveBytes(); got != 32*ranks {
		t.Fatalf("total collective bytes = %d, want %d", got, 32*ranks)
	}
}

func TestMeterBcastChargesEveryRankOneCall(t *testing.T) {
	const ranks = 4
	w, err := Run(ranks, testTimeout, func(c *Comm) error {
		c.BcastFloats(0, []float64{1, 2})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := w.Meter()
	for r := 0; r < ranks; r++ {
		if got := m.CollectiveCalls(r); got != 1 {
			t.Fatalf("rank %d bcast calls = %d, want 1", r, got)
		}
	}
	// Payload is charged to the root only.
	if m.CollectiveBytes(0) != 16 || m.CollectiveBytes(1) != 0 {
		t.Fatalf("bcast bytes = %d/%d, want 16/0", m.CollectiveBytes(0), m.CollectiveBytes(1))
	}
}

func TestMeterSnapshotSub(t *testing.T) {
	w, err := Run(2, testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendFloats(1, 7, []float64{1, 2, 3})
		} else {
			c.RecvFloats(0, 7)
		}
		c.AllreduceSum(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := w.Meter().Snapshot()
	if s1.P2PBytes != 24 || s1.P2PMessages != 1 || s1.CollectiveCalls != 2 || s1.CollectiveBytes != 16 {
		t.Fatalf("snapshot = %+v", s1)
	}
	// A second phase on the same world; Sub isolates it.
	w2 := w // reuse the world's meter: record directly
	w2.Meter().record(0, 1, 8)
	s2 := w.Meter().Snapshot()
	d := s2.Sub(s1)
	if d.P2PBytes != 8 || d.P2PMessages != 1 || d.CollectiveCalls != 0 || d.CollectiveBytes != 0 {
		t.Fatalf("snapshot diff = %+v", d)
	}
	w.Meter().Reset()
	if s := w.Meter().Snapshot(); s != (Snapshot{}) {
		t.Fatalf("post-reset snapshot = %+v", s)
	}
}

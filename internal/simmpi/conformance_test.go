package simmpi_test

import (
	"testing"
	"time"

	"fsaicomm/internal/commtest"
	"fsaicomm/internal/simmpi"
)

// The channel backend is the conformance oracle: the corpus codifies its
// semantics, and this run guards the corpus against drifting away from them.
func TestConformanceSim(t *testing.T) {
	commtest.RunConformance(t, commtest.Harness{
		Name: "sim",
		Run: func(size int, timeout time.Duration, fn func(c *simmpi.Comm) error) (*simmpi.Meter, error) {
			w, err := simmpi.Run(size, timeout, fn)
			return w.Meter(), err
		},
	})
}

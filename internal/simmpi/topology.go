package simmpi

import "fmt"

// Topology describes the two-level machine layout a world of ranks runs on:
// Nodes compute nodes with RanksPerNode ranks each, ranks packed into nodes
// in contiguous blocks (ranks 0..RanksPerNode-1 on node 0, the next block on
// node 1, and so on — the layout mpirun's default block mapping produces).
// Messages between ranks on the same node cross shared memory; messages
// between nodes cross the network. The Meter classifies every point-to-point
// message against this split, and the node-aware halo plans in
// internal/distmat use it to aggregate all rank-to-rank traffic between a
// pair of nodes into one combined message (Bienz–Gropp–Olson NAP-SpMV).
//
// The zero Topology means "no node structure declared": every rank is its
// own node, so all traffic is inter-node and existing flat-world counters
// keep their historical meaning.
type Topology struct {
	Nodes        int
	RanksPerNode int
}

// FlatTopology returns the degenerate one-rank-per-node topology for a world
// of the given size: no intra-node traffic is possible and all counters
// behave exactly as before topologies existed.
func FlatTopology(size int) Topology {
	return Topology{Nodes: size, RanksPerNode: 1}
}

// Flat reports whether the topology has no multi-rank nodes (including the
// zero value), i.e. node-aware aggregation would be a no-op.
func (t Topology) Flat() bool { return t.RanksPerNode <= 1 }

// NodeOf returns the node housing rank r.
func (t Topology) NodeOf(r int) int {
	if t.RanksPerNode <= 1 {
		return r
	}
	return r / t.RanksPerNode
}

// SameNode reports whether ranks a and b share a node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// Leader returns the designated leader rank of a node — its lowest rank —
// the rank that sends and receives the node's combined inter-node messages.
func (t Topology) Leader(node int) int {
	if t.RanksPerNode <= 1 {
		return node
	}
	return node * t.RanksPerNode
}

// Validate checks the topology against a world size: both fields positive
// and Nodes×RanksPerNode == size. The zero topology is valid for any size.
func (t Topology) Validate(size int) error {
	if t == (Topology{}) {
		return nil
	}
	if t.Nodes < 1 || t.RanksPerNode < 1 {
		return fmt.Errorf("simmpi: topology %d nodes × %d ranks/node: both must be ≥ 1", t.Nodes, t.RanksPerNode)
	}
	if t.Nodes*t.RanksPerNode != size {
		return fmt.Errorf("simmpi: topology %d nodes × %d ranks/node covers %d ranks, world has %d",
			t.Nodes, t.RanksPerNode, t.Nodes*t.RanksPerNode, size)
	}
	return nil
}

// ResolveTopology normalizes a user-specified (nodes, ranksPerNode) pair —
// either of which may be zero, meaning "derive it" — into a validated
// Topology for a world of the given size. Both zero yields the flat
// topology. A size not divisible into the requested shape is an error, never
// a silent fallback: a wrong topology would silently misattribute the
// intra/inter meter split.
func ResolveTopology(size, nodes, ranksPerNode int) (Topology, error) {
	if size < 1 {
		return Topology{}, fmt.Errorf("simmpi: resolving topology for world size %d < 1", size)
	}
	if nodes < 0 || ranksPerNode < 0 {
		return Topology{}, fmt.Errorf("simmpi: negative topology request (%d nodes, %d ranks/node)", nodes, ranksPerNode)
	}
	switch {
	case nodes == 0 && ranksPerNode == 0:
		return FlatTopology(size), nil
	case nodes == 0:
		if size%ranksPerNode != 0 {
			return Topology{}, fmt.Errorf("simmpi: %d ranks not divisible by %d ranks/node", size, ranksPerNode)
		}
		nodes = size / ranksPerNode
	case ranksPerNode == 0:
		if size%nodes != 0 {
			return Topology{}, fmt.Errorf("simmpi: %d ranks not divisible across %d nodes", size, nodes)
		}
		ranksPerNode = size / nodes
	default:
		if nodes*ranksPerNode != size {
			return Topology{}, fmt.Errorf("simmpi: %d nodes × %d ranks/node covers %d ranks, world has %d",
				nodes, ranksPerNode, nodes*ranksPerNode, size)
		}
	}
	t := Topology{Nodes: nodes, RanksPerNode: ranksPerNode}
	if err := t.Validate(size); err != nil {
		return Topology{}, err
	}
	return t, nil
}

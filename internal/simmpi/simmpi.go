// Package simmpi is an in-process message-passing runtime that stands in for
// MPI in the FSAIE-Comm reproduction. Ranks run as goroutines inside one OS
// process and exchange messages over Go channels.
//
// The runtime provides the subset of MPI the paper's solver needs —
// point-to-point sends/receives with tags, and the collectives Barrier,
// Allreduce, Allgather and Bcast — and, crucially, it meters every byte that
// crosses rank boundaries. The paper's central communication claim (the
// FSAIE-Comm pattern extension leaves the halo-exchange neighbour sets and
// volumes untouched) is verified against this meter rather than against
// wall-clock timings.
package simmpi

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// message is a tagged point-to-point payload. Exactly one of f64 and ints is
// non-nil.
type message struct {
	src, tag int
	f64      []float64
	ints     []int
}

// World is a communication universe of Size ranks. Create one with NewWorld
// and derive per-rank communicators with Comm.
type World struct {
	size    int
	timeout time.Duration
	meter   *Meter
	// p2p[dst][src] carries messages from src to dst; per-pair channels keep
	// message order deterministic per sender as MPI guarantees.
	p2p [][]chan message
	// Collective rendezvous: every rank sends its contribution to the root
	// goroutine slot and receives the result back.
	collUp   []chan collMsg
	collDown []chan collMsg
	// async holds each rank's nonblocking-operation chains (see Request).
	// Entry r is touched only by rank r's goroutine, so no lock is needed.
	async []asyncState
}

// asyncState tracks the tails of a rank's nonblocking-operation chains.
// Collectives, sends and receives each order independently: chaining sends
// behind receives (or vice versa) would deadlock the post-recv-then-send
// idiom that makes nonblocking halo exchanges useful in the first place.
type asyncState struct {
	collTail *Request
	sendTail *Request
	recvTail *Request
}

type collMsg struct {
	op   string
	f64  []float64
	i64  []int64
	ints []int
}

// NewWorld creates a world with the given number of ranks. timeout bounds
// every blocking receive and collective; zero means block forever. A small
// timeout turns would-be deadlocks into explicit panics in tests.
func NewWorld(size int, timeout time.Duration) *World {
	if size < 1 {
		panic(fmt.Sprintf("simmpi: world size %d < 1", size))
	}
	w := &World{
		size:     size,
		timeout:  timeout,
		meter:    NewMeter(size),
		p2p:      make([][]chan message, size),
		collUp:   make([]chan collMsg, size),
		collDown: make([]chan collMsg, size),
		async:    make([]asyncState, size),
	}
	for d := 0; d < size; d++ {
		w.p2p[d] = make([]chan message, size)
		for s := 0; s < size; s++ {
			// Each protocol phase posts at most a few messages per pair
			// before draining; a small buffer keeps worlds cheap (they are
			// created per solve in the experiment sweeps).
			w.p2p[d][s] = make(chan message, 64)
		}
		w.collUp[d] = make(chan collMsg, 1)
		w.collDown[d] = make(chan collMsg, 1)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Meter returns the world's traffic meter.
func (w *World) Meter() *Meter { return w.meter }

// Comm returns the communicator for the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("simmpi: rank %d outside [0,%d)", rank, w.size))
	}
	return &Comm{w: w, rank: rank}
}

// Run spawns fn on every rank of a fresh world and waits for all of them.
// Panics inside a rank are recovered and returned as errors; the first
// non-nil error wins. The world is returned so callers can inspect the
// traffic meter afterwards.
func Run(size int, timeout time.Duration, fn func(c *Comm) error) (*World, error) {
	w := NewWorld(size, timeout)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("simmpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return w, err
		}
	}
	return w, nil
}

// Comm is one rank's handle on a World. A Comm is confined to its rank's
// goroutine; distinct Comms may be used concurrently.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Meter returns the world's shared traffic meter.
func (c *Comm) Meter() *Meter { return c.w.meter }

func (c *Comm) checkPeer(peer int) {
	if peer < 0 || peer >= c.w.size {
		panic(fmt.Sprintf("simmpi: rank %d addressed invalid peer %d", c.rank, peer))
	}
	if peer == c.rank {
		panic(fmt.Sprintf("simmpi: rank %d attempted self-send", c.rank))
	}
}

// SendFloats sends a copy of data to dst with the given tag.
func (c *Comm) SendFloats(dst, tag int, data []float64) {
	c.checkPeer(dst)
	c.drain(&c.w.async[c.rank].sendTail)
	payload := append([]float64(nil), data...)
	c.w.meter.record(c.rank, dst, 8*len(data))
	c.w.p2p[dst][c.rank] <- message{src: c.rank, tag: tag, f64: payload}
}

// SendInts sends a copy of data to dst with the given tag.
func (c *Comm) SendInts(dst, tag int, data []int) {
	c.checkPeer(dst)
	c.drain(&c.w.async[c.rank].sendTail)
	payload := append([]int(nil), data...)
	c.w.meter.record(c.rank, dst, 8*len(data))
	c.w.p2p[dst][c.rank] <- message{src: c.rank, tag: tag, ints: payload}
}

func (c *Comm) recv(src, tag int) message {
	c.checkPeer(src)
	ch := c.w.p2p[c.rank][src]
	var m message
	if c.w.timeout > 0 {
		select {
		case m = <-ch:
		case <-time.After(c.w.timeout):
			panic(fmt.Sprintf("simmpi: rank %d timed out receiving tag %d from %d (deadlock?)", c.rank, tag, src))
		}
	} else {
		m = <-ch
	}
	if m.tag != tag {
		panic(fmt.Sprintf("simmpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, m.tag))
	}
	return m
}

// RecvFloats receives a float payload from src with the given tag. Messages
// from one sender arrive in send order; mismatched tags panic (the solver
// uses strictly ordered phases, so a mismatch is a protocol bug).
func (c *Comm) RecvFloats(src, tag int) []float64 {
	c.drain(&c.w.async[c.rank].recvTail)
	m := c.recv(src, tag)
	if m.f64 == nil && m.ints != nil {
		panic(fmt.Sprintf("simmpi: rank %d expected floats from %d tag %d, got ints", c.rank, src, tag))
	}
	return m.f64
}

// RecvInts receives an int payload from src with the given tag.
func (c *Comm) RecvInts(src, tag int) []int {
	c.drain(&c.w.async[c.rank].recvTail)
	m := c.recv(src, tag)
	if m.ints == nil && m.f64 != nil {
		panic(fmt.Sprintf("simmpi: rank %d expected ints from %d tag %d, got floats", c.rank, src, tag))
	}
	return m.ints
}

// collective performs a gather-to-root / broadcast rendezvous. All ranks
// must call the same op in the same order; op mismatches panic.
func (c *Comm) collective(op string, contrib collMsg) collMsg {
	contrib.op = op
	w := c.w
	if c.rank == 0 {
		parts := make([]collMsg, w.size)
		parts[0] = contrib
		for r := 1; r < w.size; r++ {
			parts[r] = c.collRecv(w.collUp[r], op, r)
		}
		result := reduceColl(op, parts)
		for r := 1; r < w.size; r++ {
			w.collDown[r] <- result
		}
		return result
	}
	w.collUp[c.rank] <- contrib
	return c.collRecv(w.collDown[c.rank], op, 0)
}

func (c *Comm) collRecv(ch chan collMsg, op string, from int) collMsg {
	var m collMsg
	if c.w.timeout > 0 {
		select {
		case m = <-ch:
		case <-time.After(c.w.timeout):
			panic(fmt.Sprintf("simmpi: rank %d timed out in collective %q waiting for rank %d", c.rank, op, from))
		}
	} else {
		m = <-ch
	}
	if m.op != op {
		panic(fmt.Sprintf("simmpi: rank %d collective mismatch: in %q, rank %d sent %q", c.rank, op, from, m.op))
	}
	return m
}

func reduceColl(op string, parts []collMsg) collMsg {
	out := collMsg{op: op}
	switch op {
	case "barrier":
	case "allreduce-sum":
		out.f64 = make([]float64, len(parts[0].f64))
		for _, p := range parts {
			for i, v := range p.f64 {
				out.f64[i] += v
			}
		}
	case "allreduce-max":
		out.f64 = append([]float64(nil), parts[0].f64...)
		for _, p := range parts[1:] {
			for i, v := range p.f64 {
				if v > out.f64[i] {
					out.f64[i] = v
				}
			}
		}
	case "allreduce-min":
		out.f64 = append([]float64(nil), parts[0].f64...)
		for _, p := range parts[1:] {
			for i, v := range p.f64 {
				if v < out.f64[i] {
					out.f64[i] = v
				}
			}
		}
	case "allreduce-sum-i64":
		out.i64 = make([]int64, len(parts[0].i64))
		for _, p := range parts {
			for i, v := range p.i64 {
				out.i64[i] += v
			}
		}
	case "allreduce-max-i64":
		out.i64 = append([]int64(nil), parts[0].i64...)
		for _, p := range parts[1:] {
			for i, v := range p.i64 {
				if v > out.i64[i] {
					out.i64[i] = v
				}
			}
		}
	case "allgather-i64":
		for _, p := range parts {
			out.i64 = append(out.i64, p.i64...)
		}
	case "allgather-f64":
		for _, p := range parts {
			out.f64 = append(out.f64, p.f64...)
		}
	case "allgather-int":
		for _, p := range parts {
			out.ints = append(out.ints, p.ints...)
		}
	case "bcast":
		out = parts[0]
		out.op = op
	default:
		panic("simmpi: unknown collective op " + op)
	}
	return out
}

// Barrier blocks until every rank has entered it. It is metered as a
// zero-byte collective call.
func (c *Comm) Barrier() {
	c.meterCollective(0)
	c.syncCollective("barrier", collMsg{})
}

// AllreduceSum returns the element-wise sum of vals over all ranks.
// The result slice is shared between ranks; callers must not mutate it.
func (c *Comm) AllreduceSum(vals ...float64) []float64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allreduce-sum", collMsg{f64: vals}).f64
}

// AllreduceMax returns the element-wise max of vals over all ranks.
func (c *Comm) AllreduceMax(vals ...float64) []float64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allreduce-max", collMsg{f64: vals}).f64
}

// AllreduceMin returns the element-wise min of vals over all ranks.
func (c *Comm) AllreduceMin(vals ...float64) []float64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allreduce-min", collMsg{f64: vals}).f64
}

// AllreduceSumInt64 returns the element-wise sum of vals over all ranks.
func (c *Comm) AllreduceSumInt64(vals ...int64) []int64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allreduce-sum-i64", collMsg{i64: vals}).i64
}

// AllreduceMaxInt64 returns the element-wise max of vals over all ranks.
func (c *Comm) AllreduceMaxInt64(vals ...int64) []int64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allreduce-max-i64", collMsg{i64: vals}).i64
}

// AllgatherInt64 concatenates every rank's vals in rank order.
func (c *Comm) AllgatherInt64(vals []int64) []int64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allgather-i64", collMsg{i64: vals}).i64
}

// AllgatherFloats concatenates every rank's vals in rank order.
func (c *Comm) AllgatherFloats(vals []float64) []float64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allgather-f64", collMsg{f64: vals}).f64
}

// AllgatherInt concatenates every rank's vals in rank order.
func (c *Comm) AllgatherInt(vals []int) []int {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allgather-int", collMsg{ints: vals}).ints
}

// BcastFloats distributes root's vals to every rank. Non-root callers pass
// their (ignored) local slice; the broadcast value is returned everywhere.
func (c *Comm) BcastFloats(root int, vals []float64) []float64 {
	if root != 0 {
		// The rendezvous always reduces at rank 0; rotate via a send.
		panic("simmpi: BcastFloats currently supports root 0 only")
	}
	bytes := 0
	if c.rank == root {
		// Only the root contributes payload; every rank still enters the
		// collective, so every rank is charged a call.
		bytes = 8 * len(vals)
	}
	c.meterCollective(bytes)
	return c.syncCollective("bcast", collMsg{f64: vals}).f64
}

// meterCollective charges a collective's payload as size-1 point-to-point
// messages from this rank (a flat cost model; the experiments only compare
// collective counts between methods, which are identical by construction).
func (c *Comm) meterCollective(bytes int) {
	c.w.meter.recordCollective(c.rank, bytes)
}

// syncCollective is the blocking-collective entry point: it first waits out
// this rank's outstanding nonblocking collectives so blocking and
// nonblocking operations keep a single per-rank order (as MPI requires of
// mixed collective streams), then performs the rendezvous.
func (c *Comm) syncCollective(op string, contrib collMsg) collMsg {
	c.drain(&c.w.async[c.rank].collTail)
	return c.collective(op, contrib)
}

// ---- Nonblocking operations ----
//
// IallreduceSum, IsendFloats and IrecvFloats return immediately with a
// Request handle; the operation itself runs on a background goroutine.
// Each rank keeps three FIFO chains — collectives, sends, receives — so
// outstanding operations of one kind complete in post order (matching the
// per-sender ordering the blocking twins guarantee), while the three kinds
// stay independent: posting a receive before the matching send, the whole
// point of nonblocking halo exchanges, cannot self-deadlock. Metering is
// charged at post time, identically to the blocking twins, so metered
// structural claims hold regardless of which flavor a solver uses.

// ErrWaited is wrapped by Request.Wait when a handle is waited twice.
var ErrWaited = fmt.Errorf("simmpi: request already waited")

// Request is the wait handle of a nonblocking operation. A Request is
// confined to the rank goroutine that posted it; the background goroutine
// publishes its result (or recovered panic) before closing done, so Wait
// observes it race-free.
type Request struct {
	kind     string
	done     chan struct{}
	f64      []float64
	panicVal any
	waited   bool
}

// Wait blocks until the operation completes and returns its float payload
// (the reduced vector for IallreduceSum, the received values for
// IrecvFloats, nil for IsendFloats). Waiting a handle twice returns an
// error wrapping ErrWaited instead of deadlocking. A panic inside the
// operation (timeout, protocol mismatch) is re-raised in the waiting
// goroutine, where the runtime's per-rank recovery can observe it.
func (r *Request) Wait() ([]float64, error) {
	if r.waited {
		return nil, fmt.Errorf("%w: %s", ErrWaited, r.kind)
	}
	r.waited = true
	<-r.done
	if r.panicVal != nil {
		panic(r.panicVal)
	}
	return r.f64, nil
}

// Done reports whether the operation has completed (Wait would not block).
func (r *Request) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// drain waits for the tail of a chain without consuming its handle (the
// poster may still Wait it). Called only from the owning rank's goroutine.
func (c *Comm) drain(tail **Request) {
	if t := *tail; t != nil {
		<-t.done
	}
}

// post enqueues fn on the chain whose tail is *tail and returns its
// Request. fn runs on a background goroutine after the previous chain
// entry completes; its panics are captured into the handle.
func (c *Comm) post(kind string, tail **Request, fn func(r *Request)) *Request {
	prev := *tail
	r := &Request{kind: kind, done: make(chan struct{})}
	*tail = r
	go func() {
		defer close(r.done)
		defer func() {
			if p := recover(); p != nil {
				r.panicVal = p
			}
		}()
		if prev != nil {
			<-prev.done
			// A failed predecessor poisons the chain: executing after it
			// would desynchronize this rank's operation order against its
			// peers, so surface the same failure here.
			if prev.panicVal != nil {
				panic(prev.panicVal)
			}
		}
		fn(r)
	}()
	return r
}

// IallreduceSum posts the element-wise sum reduction of vals over all ranks
// and returns immediately; Wait yields the reduced vector. Metered at post
// time exactly like AllreduceSum. All ranks must post (or call) matching
// collectives in the same order; blocking collectives issued while
// nonblocking ones are outstanding wait for them first.
func (c *Comm) IallreduceSum(vals ...float64) *Request {
	c.meterCollective(8 * len(vals))
	payload := append([]float64(nil), vals...)
	return c.post("iallreduce-sum", &c.w.async[c.rank].collTail, func(r *Request) {
		r.f64 = c.collective("allreduce-sum", collMsg{f64: payload}).f64
	})
}

// IsendFloats posts a copy of data to dst with the given tag and returns
// immediately; Wait yields (nil, nil) once the payload is handed to the
// transport. Metered at post time exactly like SendFloats, so the per-pair
// byte and message counts are independent of which flavor is used.
func (c *Comm) IsendFloats(dst, tag int, data []float64) *Request {
	c.checkPeer(dst)
	payload := append([]float64(nil), data...)
	c.w.meter.record(c.rank, dst, 8*len(data))
	return c.post("isend", &c.w.async[c.rank].sendTail, func(r *Request) {
		c.w.p2p[dst][c.rank] <- message{src: c.rank, tag: tag, f64: payload}
	})
}

// IrecvFloats posts a receive for a float payload from src with the given
// tag; Wait yields the values. Outstanding receives complete in post order,
// so the per-sender FIFO delivery of the blocking twin is preserved.
func (c *Comm) IrecvFloats(src, tag int) *Request {
	c.checkPeer(src)
	return c.post("irecv", &c.w.async[c.rank].recvTail, func(r *Request) {
		m := c.recv(src, tag)
		if m.f64 == nil && m.ints != nil {
			panic(fmt.Sprintf("simmpi: rank %d expected floats from %d tag %d, got ints", c.rank, src, tag))
		}
		r.f64 = m.f64
	})
}

// Meter accumulates communication statistics. Safe for concurrent use.
type Meter struct {
	mu        sync.Mutex
	size      int
	pairBytes [][]int64
	pairMsgs  [][]int64
	collBytes []int64
	collOps   []int64
}

// NewMeter returns a meter for the given world size.
func NewMeter(size int) *Meter {
	m := &Meter{
		size:      size,
		pairBytes: make([][]int64, size),
		pairMsgs:  make([][]int64, size),
		collBytes: make([]int64, size),
		collOps:   make([]int64, size),
	}
	for i := 0; i < size; i++ {
		m.pairBytes[i] = make([]int64, size)
		m.pairMsgs[i] = make([]int64, size)
	}
	return m
}

func (m *Meter) record(src, dst, bytes int) {
	m.mu.Lock()
	m.pairBytes[src][dst] += int64(bytes)
	m.pairMsgs[src][dst]++
	m.mu.Unlock()
}

func (m *Meter) recordCollective(rank, bytes int) {
	m.mu.Lock()
	m.collBytes[rank] += int64(bytes)
	m.collOps[rank]++
	m.mu.Unlock()
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < m.size; i++ {
		for j := 0; j < m.size; j++ {
			m.pairBytes[i][j] = 0
			m.pairMsgs[i][j] = 0
		}
		m.collBytes[i] = 0
		m.collOps[i] = 0
	}
}

// TotalP2PBytes returns the total point-to-point bytes sent.
func (m *Meter) TotalP2PBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s int64
	for i := range m.pairBytes {
		for _, b := range m.pairBytes[i] {
			s += b
		}
	}
	return s
}

// TotalP2PMessages returns the total point-to-point message count.
func (m *Meter) TotalP2PMessages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s int64
	for i := range m.pairMsgs {
		for _, n := range m.pairMsgs[i] {
			s += n
		}
	}
	return s
}

// PairBytes returns the bytes sent from src to dst.
func (m *Meter) PairBytes(src, dst int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pairBytes[src][dst]
}

// CollectiveBytes returns the collective payload bytes charged to rank.
func (m *Meter) CollectiveBytes(rank int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.collBytes[rank]
}

// CollectiveCalls returns the number of collective operations rank has
// entered (each Allreduce/Allgather/Barrier/Bcast counts once per
// participating rank). The fused-reduction CG claim — one Allreduce per
// iteration instead of three — is asserted against this counter.
func (m *Meter) CollectiveCalls(rank int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.collOps[rank]
}

// TotalCollectiveCalls returns collective-call counts summed over ranks
// (each logical collective contributes once per participating rank).
func (m *Meter) TotalCollectiveCalls() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s int64
	for _, n := range m.collOps {
		s += n
	}
	return s
}

// TotalCollectiveBytes returns collective payload bytes summed over ranks.
func (m *Meter) TotalCollectiveBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s int64
	for _, b := range m.collBytes {
		s += b
	}
	return s
}

// Snapshot is a point-in-time copy of the meter's aggregate counters.
// Diffing two snapshots (Sub) isolates the traffic of a program phase —
// e.g. collectives per CG iteration — without resetting the meter.
type Snapshot struct {
	P2PBytes, P2PMessages            int64
	CollectiveCalls, CollectiveBytes int64
}

// Snapshot returns the current aggregate counters.
func (m *Meter) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Snapshot
	for i := 0; i < m.size; i++ {
		for j := 0; j < m.size; j++ {
			s.P2PBytes += m.pairBytes[i][j]
			s.P2PMessages += m.pairMsgs[i][j]
		}
		s.CollectiveCalls += m.collOps[i]
		s.CollectiveBytes += m.collBytes[i]
	}
	return s
}

// RankSnapshot returns the counters attributable to one rank: the
// point-to-point traffic it sent and the collectives it entered. All
// metering happens synchronously on the originating rank's goroutine (sends
// and collective posts are charged at post time), so a rank snapshotting
// itself between program phases sees exactly its own traffic, and the sum of
// all rank snapshots equals the aggregate Snapshot. Allocation-free, so
// solvers can call it every iteration.
func (m *Meter) RankSnapshot(rank int) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Snapshot
	for _, b := range m.pairBytes[rank] {
		s.P2PBytes += b
	}
	for _, n := range m.pairMsgs[rank] {
		s.P2PMessages += n
	}
	s.CollectiveCalls = m.collOps[rank]
	s.CollectiveBytes = m.collBytes[rank]
	return s
}

// Sub returns the counter-wise difference s − o.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		P2PBytes:        s.P2PBytes - o.P2PBytes,
		P2PMessages:     s.P2PMessages - o.P2PMessages,
		CollectiveCalls: s.CollectiveCalls - o.CollectiveCalls,
		CollectiveBytes: s.CollectiveBytes - o.CollectiveBytes,
	}
}

// NeighborSets returns, for every rank, the sorted set of peers it sent at
// least one point-to-point message to. This is the communication scheme the
// paper requires FSAIE-Comm to leave unchanged.
func (m *Meter) NeighborSets() [][]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]int, m.size)
	for s := 0; s < m.size; s++ {
		for d := 0; d < m.size; d++ {
			if m.pairMsgs[s][d] > 0 {
				out[s] = append(out[s], d)
			}
		}
		sort.Ints(out[s])
	}
	return out
}

// MaxRankP2PBytes returns the largest per-rank outgoing byte count, the
// quantity the cost model's max-over-ranks communication term uses.
func (m *Meter) MaxRankP2PBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max int64
	for s := 0; s < m.size; s++ {
		var b int64
		for d := 0; d < m.size; d++ {
			b += m.pairBytes[s][d]
		}
		if b > max {
			max = b
		}
	}
	return max
}

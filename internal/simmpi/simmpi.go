// Package simmpi is a message-passing runtime that stands in for MPI in the
// FSAIE-Comm reproduction. A Comm is one rank's handle on a world of ranks;
// beneath it sits a pluggable Transport (see transport.go). The default
// backend in this package runs ranks as goroutines inside one OS process and
// exchanges messages over Go channels; internal/tcpmpi provides a real
// TCP/Unix-socket backend where each rank is an OS process.
//
// The runtime provides the subset of MPI the paper's solver needs —
// point-to-point sends/receives with tags, the collectives Barrier,
// Allreduce, Allgather and Bcast, and nonblocking twins — and, crucially, it
// meters every byte that crosses rank boundaries. The paper's central
// communication claim (the FSAIE-Comm pattern extension leaves the
// halo-exchange neighbour sets and volumes untouched) is verified against
// this meter rather than against wall-clock timings. Metering happens in
// Comm, above the Transport, so the counters are identical across backends
// by construction.
package simmpi

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// World is an in-process communication universe of Size ranks: the channel
// backend, and the semantic oracle the TCP backend is conformance-tested
// against. Create one with NewWorld and derive per-rank communicators with
// Comm.
type World struct {
	size    int
	timeout time.Duration
	meter   *Meter
	// p2p[dst][src] carries messages from src to dst; per-pair channels keep
	// message order deterministic per sender as MPI guarantees.
	p2p [][]chan Payload
	// Collective rendezvous: every rank sends its contribution to the root
	// goroutine slot and receives the result back.
	collUp   []chan CollPayload
	collDown []chan CollPayload
	// states holds each rank's Comm-level state (nonblocking chains and the
	// self-send loopback queue). Entry r is touched only by rank r's
	// goroutine, so no lock is needed.
	states []rankState
}

// rankState is the per-rank state a Comm needs above the transport: the
// tails of the nonblocking-operation chains and the self-send loopback
// queue. Collectives, sends and receives each order independently: chaining
// sends behind receives (or vice versa) would deadlock the
// post-recv-then-send idiom that makes nonblocking halo exchanges useful in
// the first place.
type rankState struct {
	collTail *Request
	sendTail *Request
	recvTail *Request
	// self carries rank→rank loopback messages (see Comm.SendFloats): a
	// bounded FIFO so a runaway self-send loop fails loudly instead of
	// consuming unbounded memory.
	self chan Payload
}

// selfQueueCap bounds the number of outstanding self-sends per rank. The
// solver protocols post at most a handful before draining.
const selfQueueCap = 256

func newRankState() rankState {
	return rankState{self: make(chan Payload, selfQueueCap)}
}

// NewWorld creates a world with the given number of ranks. timeout bounds
// every blocking receive and collective; zero means block forever. A small
// timeout turns would-be deadlocks into explicit panics in tests.
func NewWorld(size int, timeout time.Duration) *World {
	return NewWorldTopo(size, timeout, Topology{})
}

// NewWorldTopo creates a world whose meter classifies traffic against the
// given two-level topology (see Topology). The zero topology gives NewWorld's
// historical flat behavior. An invalid topology panics: a world silently
// misattributing intra vs inter traffic would corrupt every metered claim
// built on it.
func NewWorldTopo(size int, timeout time.Duration, topo Topology) *World {
	if size < 1 {
		panic(fmt.Sprintf("simmpi: world size %d < 1", size))
	}
	if err := topo.Validate(size); err != nil {
		panic(err.Error())
	}
	w := &World{
		size:     size,
		timeout:  timeout,
		meter:    NewMeterTopo(size, topo),
		p2p:      make([][]chan Payload, size),
		collUp:   make([]chan CollPayload, size),
		collDown: make([]chan CollPayload, size),
		states:   make([]rankState, size),
	}
	for d := 0; d < size; d++ {
		w.p2p[d] = make([]chan Payload, size)
		for s := 0; s < size; s++ {
			// Each protocol phase posts at most a few messages per pair
			// before draining; a small buffer keeps worlds cheap (they are
			// created per solve in the experiment sweeps).
			w.p2p[d][s] = make(chan Payload, 64)
		}
		w.collUp[d] = make(chan CollPayload, 1)
		w.collDown[d] = make(chan CollPayload, 1)
		w.states[d] = newRankState()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Meter returns the world's traffic meter.
func (w *World) Meter() *Meter { return w.meter }

// Comm returns the communicator for the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("simmpi: rank %d outside [0,%d)", rank, w.size))
	}
	return &Comm{
		t:       &simTransport{w: w, rank: rank},
		meter:   w.meter,
		timeout: w.timeout,
		st:      &w.states[rank],
	}
}

// Run spawns fn on every rank of a fresh world and waits for all of them.
// Panics inside a rank are recovered and returned as errors; the first
// non-nil error wins. The world is returned so callers can inspect the
// traffic meter afterwards.
func Run(size int, timeout time.Duration, fn func(c *Comm) error) (*World, error) {
	return RunTopo(size, timeout, Topology{}, fn)
}

// RunTopo is Run on a world with the given topology attached (see
// NewWorldTopo).
func RunTopo(size int, timeout time.Duration, topo Topology, fn func(c *Comm) error) (*World, error) {
	w := NewWorldTopo(size, timeout, topo)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("simmpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return w, err
		}
	}
	return w, nil
}

// simTransport is the channel backend: one rank's view of a World.
type simTransport struct {
	w    *World
	rank int
}

func (t *simTransport) Rank() int { return t.rank }
func (t *simTransport) Size() int { return t.w.size }

func (t *simTransport) Send(dst int, p Payload) error {
	t.w.p2p[dst][t.rank] <- p
	return nil
}

func (t *simTransport) Recv(src int) (Payload, error) {
	ch := t.w.p2p[t.rank][src]
	if t.w.timeout > 0 {
		select {
		case m := <-ch:
			return m, nil
		case <-time.After(t.w.timeout):
			return Payload{}, fmt.Errorf("timed out receiving from %d (deadlock?)", src)
		}
	}
	return <-ch, nil
}

// Collective performs a gather-to-root / broadcast rendezvous. All ranks
// must call the same op in the same order; op mismatches are errors.
func (t *simTransport) Collective(contrib CollPayload) (CollPayload, error) {
	w := t.w
	op := contrib.Op
	if t.rank == 0 {
		parts := make([]CollPayload, w.size)
		parts[0] = contrib
		for r := 1; r < w.size; r++ {
			m, err := t.collRecv(w.collUp[r], op, r)
			if err != nil {
				return CollPayload{}, err
			}
			parts[r] = m
		}
		result, err := Reduce(op, parts)
		if err != nil {
			return CollPayload{}, err
		}
		for r := 1; r < w.size; r++ {
			w.collDown[r] <- result
		}
		return result, nil
	}
	w.collUp[t.rank] <- contrib
	return t.collRecv(w.collDown[t.rank], op, 0)
}

func (t *simTransport) collRecv(ch chan CollPayload, op string, from int) (CollPayload, error) {
	var m CollPayload
	if t.w.timeout > 0 {
		select {
		case m = <-ch:
		case <-time.After(t.w.timeout):
			return CollPayload{}, fmt.Errorf("timed out in collective %q waiting for rank %d", op, from)
		}
	} else {
		m = <-ch
	}
	if m.Op != op {
		return CollPayload{}, fmt.Errorf("collective mismatch: in %q, rank %d sent %q", op, from, m.Op)
	}
	return m, nil
}

func (t *simTransport) Close() error { return nil }

// Comm is one rank's handle on a world. A Comm is confined to its rank's
// goroutine; distinct Comms may be used concurrently. All metering happens
// here, above the Transport, so the meters of the channel and socket
// backends agree by construction.
type Comm struct {
	t       Transport
	meter   *Meter
	timeout time.Duration
	st      *rankState
}

// NewComm wraps a Transport endpoint in a communicator. meter must have the
// world's size (it is this rank's view; in multi-process worlds each process
// meters only its own rank's traffic). timeout bounds self-send loopback
// receives; peer-facing timeouts are the transport's business. Used by
// out-of-package backends; in-process worlds use World.Comm.
func NewComm(t Transport, meter *Meter, timeout time.Duration) *Comm {
	st := newRankState()
	return &Comm{t: t, meter: meter, timeout: timeout, st: &st}
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.t.Rank() }

// Size returns the world size.
func (c *Comm) Size() int { return c.t.Size() }

// Meter returns the traffic meter (shared by all ranks of an in-process
// world; per-process in multi-process worlds).
func (c *Comm) Meter() *Meter { return c.meter }

// Topology returns the two-level topology this communicator's meter
// classifies traffic against; the zero Topology when none was declared. The
// meter is the single source of truth so the node-aware halo plans and the
// intra/inter counters can never disagree about who shares a node.
func (c *Comm) Topology() Topology { return c.meter.Topology() }

func (c *Comm) checkPeer(peer int) {
	if peer < 0 || peer >= c.Size() {
		panic(fmt.Sprintf("simmpi: rank %d addressed invalid peer %d", c.Rank(), peer))
	}
}

// selfPush enqueues a rank→rank loopback message. The payload is NOT
// copied: self-delivery is defined as handing the receiver the sender's
// backing array (both live in the same goroutine's address space, and the
// solver protocols never mutate a sent buffer before its matching receive).
func (c *Comm) selfPush(p Payload) {
	select {
	case c.st.self <- p:
	default:
		panic(fmt.Sprintf("simmpi: rank %d exceeded %d outstanding self-sends", c.Rank(), selfQueueCap))
	}
}

// selfPop dequeues the next loopback message, bounded by the timeout: a
// self-receive with nothing enqueued (and no nonblocking self-send pending)
// can never be satisfied, so it fails like any other would-be deadlock.
func (c *Comm) selfPop() (Payload, error) {
	if c.timeout > 0 {
		select {
		case m := <-c.st.self:
			return m, nil
		case <-time.After(c.timeout):
			return Payload{}, fmt.Errorf("timed out on self-receive (nothing self-sent?)")
		}
	}
	return <-c.st.self, nil
}

// SendFloats sends a copy of data to dst with the given tag. A send to the
// rank itself is a defined no-copy loopback: the receiver gets data's
// backing array directly, no bytes are metered (nothing crosses a rank
// boundary), and no transport is involved — so halo plans and collectives
// built on top need no self special-casing on any backend.
func (c *Comm) SendFloats(dst, tag int, data []float64) {
	c.checkPeer(dst)
	c.drain(&c.st.sendTail)
	if dst == c.Rank() {
		c.selfPush(Payload{Src: dst, Tag: tag, F64: data})
		return
	}
	payload := append([]float64(nil), data...)
	c.meter.record(c.Rank(), dst, 8*len(data))
	if err := c.t.Send(dst, Payload{Src: c.Rank(), Tag: tag, F64: payload}); err != nil {
		panic(fmt.Sprintf("simmpi: rank %d sending tag %d to %d: %v", c.Rank(), tag, dst, err))
	}
}

// SendFloats32 sends a copy of data to dst with the given tag, metered at
// 4 bytes per value — the half-width point-to-point primitive behind the
// mixed-precision halo exchange. Self-sends are a no-copy loopback, as for
// SendFloats.
func (c *Comm) SendFloats32(dst, tag int, data []float32) {
	c.checkPeer(dst)
	c.drain(&c.st.sendTail)
	if dst == c.Rank() {
		c.selfPush(Payload{Src: dst, Tag: tag, F32: data})
		return
	}
	payload := append([]float32(nil), data...)
	c.meter.record(c.Rank(), dst, 4*len(data))
	if err := c.t.Send(dst, Payload{Src: c.Rank(), Tag: tag, F32: payload}); err != nil {
		panic(fmt.Sprintf("simmpi: rank %d sending tag %d to %d: %v", c.Rank(), tag, dst, err))
	}
}

// SendInts sends a copy of data to dst with the given tag. Self-sends are a
// no-copy loopback, as for SendFloats.
func (c *Comm) SendInts(dst, tag int, data []int) {
	c.checkPeer(dst)
	c.drain(&c.st.sendTail)
	if dst == c.Rank() {
		c.selfPush(Payload{Src: dst, Tag: tag, Ints: data})
		return
	}
	payload := append([]int(nil), data...)
	c.meter.record(c.Rank(), dst, 8*len(data))
	if err := c.t.Send(dst, Payload{Src: c.Rank(), Tag: tag, Ints: payload}); err != nil {
		panic(fmt.Sprintf("simmpi: rank %d sending tag %d to %d: %v", c.Rank(), tag, dst, err))
	}
}

func (c *Comm) recv(src, tag int) Payload {
	c.checkPeer(src)
	var m Payload
	var err error
	if src == c.Rank() {
		m, err = c.selfPop()
	} else {
		m, err = c.t.Recv(src)
	}
	if err != nil {
		panic(fmt.Sprintf("simmpi: rank %d receiving tag %d from %d: %v", c.Rank(), tag, src, err))
	}
	if m.Tag != tag {
		panic(fmt.Sprintf("simmpi: rank %d expected tag %d from %d, got %d", c.Rank(), tag, src, m.Tag))
	}
	return m
}

// RecvFloats receives a float payload from src with the given tag. Messages
// from one sender arrive in send order; mismatched tags panic (the solver
// uses strictly ordered phases, so a mismatch is a protocol bug).
func (c *Comm) RecvFloats(src, tag int) []float64 {
	c.drain(&c.st.recvTail)
	m := c.recv(src, tag)
	if m.F64 == nil && (m.Ints != nil || m.F32 != nil) {
		panic(fmt.Sprintf("simmpi: rank %d expected floats from %d tag %d, got %s", c.Rank(), src, tag, payloadKind(m)))
	}
	return m.F64
}

// RecvFloats32 receives a float32 payload from src with the given tag.
func (c *Comm) RecvFloats32(src, tag int) []float32 {
	c.drain(&c.st.recvTail)
	m := c.recv(src, tag)
	if m.F32 == nil && (m.F64 != nil || m.Ints != nil) {
		panic(fmt.Sprintf("simmpi: rank %d expected float32s from %d tag %d, got %s", c.Rank(), src, tag, payloadKind(m)))
	}
	return m.F32
}

// RecvInts receives an int payload from src with the given tag.
func (c *Comm) RecvInts(src, tag int) []int {
	c.drain(&c.st.recvTail)
	m := c.recv(src, tag)
	if m.Ints == nil && (m.F64 != nil || m.F32 != nil) {
		panic(fmt.Sprintf("simmpi: rank %d expected ints from %d tag %d, got %s", c.Rank(), src, tag, payloadKind(m)))
	}
	return m.Ints
}

// payloadKind names the populated slice of a payload for mismatch panics.
func payloadKind(m Payload) string {
	switch {
	case m.F64 != nil:
		return "floats"
	case m.F32 != nil:
		return "float32s"
	case m.Ints != nil:
		return "ints"
	default:
		return "empty payload"
	}
}

// Barrier blocks until every rank has entered it. It is metered as a
// zero-byte collective call.
func (c *Comm) Barrier() {
	c.meterCollective(0)
	c.syncCollective("barrier", CollPayload{})
}

// AllreduceSum returns the element-wise sum of vals over all ranks.
// The result slice is shared between ranks; callers must not mutate it.
func (c *Comm) AllreduceSum(vals ...float64) []float64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allreduce-sum", CollPayload{F64: vals}).F64
}

// AllreduceMax returns the element-wise max of vals over all ranks.
func (c *Comm) AllreduceMax(vals ...float64) []float64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allreduce-max", CollPayload{F64: vals}).F64
}

// AllreduceMin returns the element-wise min of vals over all ranks.
func (c *Comm) AllreduceMin(vals ...float64) []float64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allreduce-min", CollPayload{F64: vals}).F64
}

// AllreduceSumInt64 returns the element-wise sum of vals over all ranks.
func (c *Comm) AllreduceSumInt64(vals ...int64) []int64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allreduce-sum-i64", CollPayload{I64: vals}).I64
}

// AllreduceMaxInt64 returns the element-wise max of vals over all ranks.
func (c *Comm) AllreduceMaxInt64(vals ...int64) []int64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allreduce-max-i64", CollPayload{I64: vals}).I64
}

// AllgatherInt64 concatenates every rank's vals in rank order.
func (c *Comm) AllgatherInt64(vals []int64) []int64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allgather-i64", CollPayload{I64: vals}).I64
}

// AllgatherFloats concatenates every rank's vals in rank order.
func (c *Comm) AllgatherFloats(vals []float64) []float64 {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allgather-f64", CollPayload{F64: vals}).F64
}

// AllgatherInt concatenates every rank's vals in rank order.
func (c *Comm) AllgatherInt(vals []int) []int {
	c.meterCollective(8 * len(vals))
	return c.syncCollective("allgather-int", CollPayload{Ints: vals}).Ints
}

// BcastFloats distributes root's vals to every rank. Non-root callers pass
// their (ignored) local slice; the broadcast value is returned everywhere.
func (c *Comm) BcastFloats(root int, vals []float64) []float64 {
	if root != 0 {
		// The rendezvous always reduces at rank 0; rotate via a send.
		panic("simmpi: BcastFloats currently supports root 0 only")
	}
	bytes := 0
	if c.Rank() == root {
		// Only the root contributes payload; every rank still enters the
		// collective, so every rank is charged a call.
		bytes = 8 * len(vals)
	}
	c.meterCollective(bytes)
	return c.syncCollective("bcast", CollPayload{F64: vals}).F64
}

// meterCollective charges a collective's payload as size-1 point-to-point
// messages from this rank (a flat cost model; the experiments only compare
// collective counts between methods, which are identical by construction).
func (c *Comm) meterCollective(bytes int) {
	c.meter.recordCollective(c.Rank(), bytes)
}

// syncCollective is the blocking-collective entry point: it first waits out
// this rank's outstanding nonblocking collectives so blocking and
// nonblocking operations keep a single per-rank order (as MPI requires of
// mixed collective streams), then performs the rendezvous.
func (c *Comm) syncCollective(op string, contrib CollPayload) CollPayload {
	c.drain(&c.st.collTail)
	return c.collective(op, contrib)
}

func (c *Comm) collective(op string, contrib CollPayload) CollPayload {
	contrib.Op = op
	out, err := c.t.Collective(contrib)
	if err != nil {
		panic(fmt.Sprintf("simmpi: rank %d in collective %q: %v", c.Rank(), op, err))
	}
	return out
}

// ---- Nonblocking operations ----
//
// IallreduceSum, IsendFloats and IrecvFloats return immediately with a
// Request handle; the operation itself runs on a background goroutine.
// Each rank keeps three FIFO chains — collectives, sends, receives — so
// outstanding operations of one kind complete in post order (matching the
// per-sender ordering the blocking twins guarantee), while the three kinds
// stay independent: posting a receive before the matching send, the whole
// point of nonblocking halo exchanges, cannot self-deadlock. Metering is
// charged at post time, identically to the blocking twins, so metered
// structural claims hold regardless of which flavor a solver uses.

// ErrWaited is wrapped by Request.Wait when a handle is waited twice.
var ErrWaited = fmt.Errorf("simmpi: request already waited")

// Request is the wait handle of a nonblocking operation. A Request is
// confined to the rank goroutine that posted it; the background goroutine
// publishes its result (or recovered panic) before closing done, so Wait
// observes it race-free.
type Request struct {
	kind     string
	done     chan struct{}
	f64      []float64
	f32      []float32
	panicVal any
	waited   bool
}

// Wait blocks until the operation completes and returns its float payload
// (the reduced vector for IallreduceSum, the received values for
// IrecvFloats, nil for IsendFloats). Waiting a handle twice returns an
// error wrapping ErrWaited instead of deadlocking. A panic inside the
// operation (timeout, protocol mismatch) is re-raised in the waiting
// goroutine, where the runtime's per-rank recovery can observe it.
func (r *Request) Wait() ([]float64, error) {
	if r.waited {
		return nil, fmt.Errorf("%w: %s", ErrWaited, r.kind)
	}
	r.waited = true
	<-r.done
	if r.panicVal != nil {
		panic(r.panicVal)
	}
	return r.f64, nil
}

// Wait32 is Wait for operations whose payload is float32 (IrecvFloats32):
// it blocks until completion and returns the received values. The waited-
// twice and panic-propagation semantics match Wait exactly.
func (r *Request) Wait32() ([]float32, error) {
	if r.waited {
		return nil, fmt.Errorf("%w: %s", ErrWaited, r.kind)
	}
	r.waited = true
	<-r.done
	if r.panicVal != nil {
		panic(r.panicVal)
	}
	return r.f32, nil
}

// Done reports whether the operation has completed (Wait would not block).
func (r *Request) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// drain waits for the tail of a chain without consuming its handle (the
// poster may still Wait it). Called only from the owning rank's goroutine.
func (c *Comm) drain(tail **Request) {
	if t := *tail; t != nil {
		<-t.done
	}
}

// Quiesce waits for every outstanding nonblocking chain on this rank —
// sends, receives and collectives — to finish executing. An in-process
// world never needs it (chain goroutines outlive the rank closures), but a
// rank that owns its transport's lifetime must quiesce before tearing it
// down: the solver's final iteration may have posted an async halo send a
// peer is still waiting on, and exiting the process (or closing the
// endpoint) first would turn that peer's receive into a spurious rank-lost
// failure. Chain entries that panicked are already captured into their
// handles; Quiesce only waits, it never re-raises.
func (c *Comm) Quiesce() {
	c.drain(&c.st.sendTail)
	c.drain(&c.st.recvTail)
	c.drain(&c.st.collTail)
}

// post enqueues fn on the chain whose tail is *tail and returns its
// Request. fn runs on a background goroutine after the previous chain
// entry completes; its panics are captured into the handle.
func (c *Comm) post(kind string, tail **Request, fn func(r *Request)) *Request {
	prev := *tail
	r := &Request{kind: kind, done: make(chan struct{})}
	*tail = r
	go func() {
		defer close(r.done)
		defer func() {
			if p := recover(); p != nil {
				r.panicVal = p
			}
		}()
		if prev != nil {
			<-prev.done
			// A failed predecessor poisons the chain: executing after it
			// would desynchronize this rank's operation order against its
			// peers, so surface the same failure here.
			if prev.panicVal != nil {
				panic(prev.panicVal)
			}
		}
		fn(r)
	}()
	return r
}

// IallreduceSum posts the element-wise sum reduction of vals over all ranks
// and returns immediately; Wait yields the reduced vector. Metered at post
// time exactly like AllreduceSum. All ranks must post (or call) matching
// collectives in the same order; blocking collectives issued while
// nonblocking ones are outstanding wait for them first.
func (c *Comm) IallreduceSum(vals ...float64) *Request {
	c.meterCollective(8 * len(vals))
	payload := append([]float64(nil), vals...)
	return c.post("iallreduce-sum", &c.st.collTail, func(r *Request) {
		r.f64 = c.collective("allreduce-sum", CollPayload{F64: payload}).F64
	})
}

// IsendFloats posts a copy of data to dst with the given tag and returns
// immediately; Wait yields (nil, nil) once the payload is handed to the
// transport. Metered at post time exactly like SendFloats, so the per-pair
// byte and message counts are independent of which flavor is used. Posted
// self-sends enter the loopback queue in chain order, without copying.
func (c *Comm) IsendFloats(dst, tag int, data []float64) *Request {
	c.checkPeer(dst)
	if dst == c.Rank() {
		return c.post("isend", &c.st.sendTail, func(r *Request) {
			c.selfPush(Payload{Src: dst, Tag: tag, F64: data})
		})
	}
	payload := append([]float64(nil), data...)
	c.meter.record(c.Rank(), dst, 8*len(data))
	return c.post("isend", &c.st.sendTail, func(r *Request) {
		if err := c.t.Send(dst, Payload{Src: c.Rank(), Tag: tag, F64: payload}); err != nil {
			panic(fmt.Sprintf("simmpi: rank %d sending tag %d to %d: %v", c.Rank(), tag, dst, err))
		}
	})
}

// IrecvFloats posts a receive for a float payload from src with the given
// tag; Wait yields the values. Outstanding receives complete in post order,
// so the per-sender FIFO delivery of the blocking twin is preserved.
func (c *Comm) IrecvFloats(src, tag int) *Request {
	c.checkPeer(src)
	return c.post("irecv", &c.st.recvTail, func(r *Request) {
		m := c.recv(src, tag)
		if m.F64 == nil && (m.Ints != nil || m.F32 != nil) {
			panic(fmt.Sprintf("simmpi: rank %d expected floats from %d tag %d, got %s", c.Rank(), src, tag, payloadKind(m)))
		}
		r.f64 = m.F64
	})
}

// IsendFloats32 posts a copy of data to dst with the given tag, metered at
// 4 bytes per value like SendFloats32; Wait yields (nil, nil) once the
// payload is handed to the transport. Posted self-sends enter the loopback
// queue in chain order, without copying.
func (c *Comm) IsendFloats32(dst, tag int, data []float32) *Request {
	c.checkPeer(dst)
	if dst == c.Rank() {
		return c.post("isend32", &c.st.sendTail, func(r *Request) {
			c.selfPush(Payload{Src: dst, Tag: tag, F32: data})
		})
	}
	payload := append([]float32(nil), data...)
	c.meter.record(c.Rank(), dst, 4*len(data))
	return c.post("isend32", &c.st.sendTail, func(r *Request) {
		if err := c.t.Send(dst, Payload{Src: c.Rank(), Tag: tag, F32: payload}); err != nil {
			panic(fmt.Sprintf("simmpi: rank %d sending tag %d to %d: %v", c.Rank(), tag, dst, err))
		}
	})
}

// IrecvFloats32 posts a receive for a float32 payload from src with the
// given tag; Wait32 yields the values.
func (c *Comm) IrecvFloats32(src, tag int) *Request {
	c.checkPeer(src)
	return c.post("irecv32", &c.st.recvTail, func(r *Request) {
		m := c.recv(src, tag)
		if m.F32 == nil && (m.F64 != nil || m.Ints != nil) {
			panic(fmt.Sprintf("simmpi: rank %d expected float32s from %d tag %d, got %s", c.Rank(), src, tag, payloadKind(m)))
		}
		r.f32 = m.F32
	})
}

// Meter accumulates communication statistics. Safe for concurrent use.
// Every point-to-point message is additionally classified against the
// meter's Topology as intra-node (sender and receiver share a node) or
// inter-node; under a flat topology nothing can be intra-node, so the
// historical counters keep their exact meaning and every pre-topology caller
// reads its traffic as "all network".
type Meter struct {
	mu        sync.Mutex
	topo      Topology
	size      int
	pairBytes [][]int64
	pairMsgs  [][]int64
	collBytes []int64
	collOps   []int64
	// Per-source-rank intra/inter splits. Full pair matrices already exist
	// above; these are the cheap per-level rollups the cost model and the
	// /metrics endpoint read.
	intraBytes []int64
	intraMsgs  []int64
	interBytes []int64
	interMsgs  []int64
}

// NewMeter returns a meter for the given world size with no node structure
// (all point-to-point traffic counts as inter-node).
func NewMeter(size int) *Meter {
	return NewMeterTopo(size, Topology{})
}

// NewMeterTopo returns a meter for the given world size that classifies
// point-to-point traffic against topo. An invalid topology panics.
func NewMeterTopo(size int, topo Topology) *Meter {
	if err := topo.Validate(size); err != nil {
		panic(err.Error())
	}
	m := &Meter{
		topo:       topo,
		size:       size,
		pairBytes:  make([][]int64, size),
		pairMsgs:   make([][]int64, size),
		collBytes:  make([]int64, size),
		collOps:    make([]int64, size),
		intraBytes: make([]int64, size),
		intraMsgs:  make([]int64, size),
		interBytes: make([]int64, size),
		interMsgs:  make([]int64, size),
	}
	for i := 0; i < size; i++ {
		m.pairBytes[i] = make([]int64, size)
		m.pairMsgs[i] = make([]int64, size)
	}
	return m
}

// Topology returns the topology the meter classifies traffic against.
func (m *Meter) Topology() Topology {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.topo
}

func (m *Meter) record(src, dst, bytes int) {
	m.mu.Lock()
	m.pairBytes[src][dst] += int64(bytes)
	m.pairMsgs[src][dst]++
	if m.topo.SameNode(src, dst) {
		m.intraBytes[src] += int64(bytes)
		m.intraMsgs[src]++
	} else {
		m.interBytes[src] += int64(bytes)
		m.interMsgs[src]++
	}
	m.mu.Unlock()
}

func (m *Meter) recordCollective(rank, bytes int) {
	m.mu.Lock()
	m.collBytes[rank] += int64(bytes)
	m.collOps[rank]++
	m.mu.Unlock()
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < m.size; i++ {
		for j := 0; j < m.size; j++ {
			m.pairBytes[i][j] = 0
			m.pairMsgs[i][j] = 0
		}
		m.collBytes[i] = 0
		m.collOps[i] = 0
		m.intraBytes[i] = 0
		m.intraMsgs[i] = 0
		m.interBytes[i] = 0
		m.interMsgs[i] = 0
	}
}

// Merge adds o's counters into m. The multi-process launcher uses it to
// fold per-worker meters (each holding one rank's row) into a world view.
func (m *Meter) Merge(o *Meter) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if o.size != m.size {
		panic(fmt.Sprintf("simmpi: merging meter of size %d into %d", o.size, m.size))
	}
	if o.topo != m.topo {
		panic(fmt.Sprintf("simmpi: merging meter with topology %+v into %+v", o.topo, m.topo))
	}
	for i := 0; i < m.size; i++ {
		for j := 0; j < m.size; j++ {
			m.pairBytes[i][j] += o.pairBytes[i][j]
			m.pairMsgs[i][j] += o.pairMsgs[i][j]
		}
		m.collBytes[i] += o.collBytes[i]
		m.collOps[i] += o.collOps[i]
		m.intraBytes[i] += o.intraBytes[i]
		m.intraMsgs[i] += o.intraMsgs[i]
		m.interBytes[i] += o.interBytes[i]
		m.interMsgs[i] += o.interMsgs[i]
	}
}

// TotalP2PBytes returns the total point-to-point bytes sent.
func (m *Meter) TotalP2PBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s int64
	for i := range m.pairBytes {
		for _, b := range m.pairBytes[i] {
			s += b
		}
	}
	return s
}

// TotalP2PMessages returns the total point-to-point message count.
func (m *Meter) TotalP2PMessages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s int64
	for i := range m.pairMsgs {
		for _, n := range m.pairMsgs[i] {
			s += n
		}
	}
	return s
}

// PairBytes returns the bytes sent from src to dst.
func (m *Meter) PairBytes(src, dst int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pairBytes[src][dst]
}

// PairRow returns a copy of rank's outgoing per-destination byte counts.
// The transport differential tests compare these rows across backends.
func (m *Meter) PairRow(rank int) []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int64(nil), m.pairBytes[rank]...)
}

// CollectiveBytes returns the collective payload bytes charged to rank.
func (m *Meter) CollectiveBytes(rank int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.collBytes[rank]
}

// CollectiveCalls returns the number of collective operations rank has
// entered (each Allreduce/Allgather/Barrier/Bcast counts once per
// participating rank). The fused-reduction CG claim — one Allreduce per
// iteration instead of three — is asserted against this counter.
func (m *Meter) CollectiveCalls(rank int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.collOps[rank]
}

// TotalCollectiveCalls returns collective-call counts summed over ranks
// (each logical collective contributes once per participating rank).
func (m *Meter) TotalCollectiveCalls() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s int64
	for _, n := range m.collOps {
		s += n
	}
	return s
}

// TotalCollectiveBytes returns collective payload bytes summed over ranks.
func (m *Meter) TotalCollectiveBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s int64
	for _, b := range m.collBytes {
		s += b
	}
	return s
}

// Snapshot is a point-in-time copy of the meter's aggregate counters.
// Diffing two snapshots (Sub) isolates the traffic of a program phase —
// e.g. collectives per CG iteration — without resetting the meter.
type Snapshot struct {
	P2PBytes, P2PMessages            int64
	CollectiveCalls, CollectiveBytes int64
	// The topology split of the point-to-point totals above:
	// P2PBytes = IntraP2PBytes + InterP2PBytes and likewise for messages.
	// Under a flat topology the intra pair is always zero.
	IntraP2PBytes, IntraP2PMessages int64
	InterP2PBytes, InterP2PMessages int64
}

// Snapshot returns the current aggregate counters.
func (m *Meter) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Snapshot
	for i := 0; i < m.size; i++ {
		for j := 0; j < m.size; j++ {
			s.P2PBytes += m.pairBytes[i][j]
			s.P2PMessages += m.pairMsgs[i][j]
		}
		s.CollectiveCalls += m.collOps[i]
		s.CollectiveBytes += m.collBytes[i]
		s.IntraP2PBytes += m.intraBytes[i]
		s.IntraP2PMessages += m.intraMsgs[i]
		s.InterP2PBytes += m.interBytes[i]
		s.InterP2PMessages += m.interMsgs[i]
	}
	return s
}

// RankSnapshot returns the counters attributable to one rank: the
// point-to-point traffic it sent and the collectives it entered. All
// metering happens synchronously on the originating rank's goroutine (sends
// and collective posts are charged at post time), so a rank snapshotting
// itself between program phases sees exactly its own traffic, and the sum of
// all rank snapshots equals the aggregate Snapshot. Allocation-free, so
// solvers can call it every iteration.
func (m *Meter) RankSnapshot(rank int) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Snapshot
	for _, b := range m.pairBytes[rank] {
		s.P2PBytes += b
	}
	for _, n := range m.pairMsgs[rank] {
		s.P2PMessages += n
	}
	s.CollectiveCalls = m.collOps[rank]
	s.CollectiveBytes = m.collBytes[rank]
	s.IntraP2PBytes = m.intraBytes[rank]
	s.IntraP2PMessages = m.intraMsgs[rank]
	s.InterP2PBytes = m.interBytes[rank]
	s.InterP2PMessages = m.interMsgs[rank]
	return s
}

// Sub returns the counter-wise difference s − o.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		P2PBytes:         s.P2PBytes - o.P2PBytes,
		P2PMessages:      s.P2PMessages - o.P2PMessages,
		CollectiveCalls:  s.CollectiveCalls - o.CollectiveCalls,
		CollectiveBytes:  s.CollectiveBytes - o.CollectiveBytes,
		IntraP2PBytes:    s.IntraP2PBytes - o.IntraP2PBytes,
		IntraP2PMessages: s.IntraP2PMessages - o.IntraP2PMessages,
		InterP2PBytes:    s.InterP2PBytes - o.InterP2PBytes,
		InterP2PMessages: s.InterP2PMessages - o.InterP2PMessages,
	}
}

// NeighborSets returns, for every rank, the sorted set of peers it sent at
// least one point-to-point message to. This is the communication scheme the
// paper requires FSAIE-Comm to leave unchanged.
func (m *Meter) NeighborSets() [][]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]int, m.size)
	for s := 0; s < m.size; s++ {
		for d := 0; d < m.size; d++ {
			if m.pairMsgs[s][d] > 0 {
				out[s] = append(out[s], d)
			}
		}
		sort.Ints(out[s])
	}
	return out
}

// MaxRankP2PBytes returns the largest per-rank outgoing byte count, the
// quantity the cost model's max-over-ranks communication term uses.
func (m *Meter) MaxRankP2PBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max int64
	for s := 0; s < m.size; s++ {
		var b int64
		for d := 0; d < m.size; d++ {
			b += m.pairBytes[s][d]
		}
		if b > max {
			max = b
		}
	}
	return max
}

// Package spai implements the column-oriented Grote–Huckle SParse
// Approximate Inverse preconditioner (SIAM J. Sci. Comput. 1997) for
// general nonsymmetric matrices — the right approximate inverse M ≈ A⁻¹
// minimizing ‖A·M − I‖_F column by column. Each column j solves the small
// dense least-squares problem
//
//	min ‖A(:,J)·m̂ − e_j‖₂ over the pattern J,
//
// restricted to the shadow rows I = {i : A(i,J) ≠ 0}, by Householder QR
// (internal/dense). The initial pattern is the level-p power pattern of Aᵀ
// (columns of A^p); optional adaptive enrichment then augments J with the
// most profitable candidates by the Grote–Huckle criterion — the entries k
// maximizing (rᵀA·e_k)²/‖A·e_k‖² for the column's residual r — and
// re-solves, until the residual drops below Epsilon or Steps rounds have
// run. Columns are independent, so the build is column-parallel via
// internal/parallel and bit-identical for every worker count.
//
// The distributed build mirrors the FSAI one: each rank owns a block of
// rows of A and builds the matching block of columns of M (rows of Mᵀ),
// gathering remote rows of Aᵀ (for shadow assembly) and of A (for
// enrichment candidates) from their owners with the same setup-phase
// collectives. Every rank runs the same number of gather rounds whether or
// not it has active columns, so the collective schedule is rank-uniform,
// and the per-column dense subproblems are assembled in the same order as
// the serial build — the result is bitwise identical to Build.
package spai

import (
	"fmt"
	"math"
	"sort"

	"fsaicomm/internal/dense"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/parallel"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

// Options controls a SPAI build.
type Options struct {
	// Level is the power-pattern level of the initial pattern: column j
	// starts from the sparsity of column j of (structure(A)+I)^Level.
	// 0 means 1 (the pattern of A itself).
	Level int
	// Steps is the number of adaptive enrichment rounds per column; 0
	// disables adaptivity (static-pattern SPAI).
	Steps int
	// Add is the maximum number of pattern entries added per column per
	// enrichment round. 0 means 5.
	Add int
	// Epsilon is the per-column residual target ‖A(:,J)m̂ − e_j‖₂ at which
	// enrichment stops early. 0 means 0.4.
	Epsilon float64
	// Workers is the column-solve worker count (<= 0 selects GOMAXPROCS).
	// Results are bit-identical for every worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Level <= 0 {
		o.Level = 1
	}
	if o.Add <= 0 {
		o.Add = 5
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.4
	}
	if o.Steps < 0 {
		o.Steps = 0
	}
	return o
}

// rowFn returns the sorted global column indices and values of row k of
// some matrix — Aᵀ for shadow/pattern work, A for candidate discovery. The
// serial build reads the matrices directly; the distributed build reads
// gathered row maps.
type rowFn func(k int) ([]int, []float64)

// column is the per-column solve state.
type column struct {
	j       int       // global column index of M
	J       []int     // sorted pattern (row indices of column j of M)
	I       []int     // sorted shadow rows {i : A(i,J) ≠ 0} ∪ {j}
	mhat    []float64 // least-squares solution over J
	r       []float64 // residual A(:,J)m̂ − e_j over I
	rnorm   float64
	done    bool // residual below epsilon
	stalled bool // no profitable candidates left
}

// buildShadow computes the sorted shadow-row set I = ∪_{k∈J} supp(A·e_k)
// ∪ {j}; row k of Aᵀ lists exactly the rows of A with a nonzero in column
// k.
func buildShadow(j int, J []int, atRow rowFn) []int {
	seen := map[int]bool{j: true}
	out := []int{j}
	for _, k := range J {
		cols, _ := atRow(k)
		for _, i := range cols {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// solve assembles the |I|×|J| restriction Â = A(I,J) column-wise from rows
// of Aᵀ, solves the least-squares problem, and stores the solution and its
// residual. buf supplies reusable scratch.
func (col *column) solve(atRow rowFn, buf *scratch) error {
	nI, nJ := len(col.I), len(col.J)
	ipos := buf.ipos
	for k := range ipos {
		delete(ipos, k)
	}
	for p, i := range col.I {
		ipos[i] = p
	}
	ahat := growF(&buf.ahat, nI*nJ)
	for k := range ahat {
		ahat[k] = 0
	}
	for jj, k := range col.J {
		cols, vals := atRow(k)
		for t, gi := range cols {
			ahat[ipos[gi]*nJ+jj] = vals[t]
		}
	}
	// QR overwrites its inputs; keep Â and ê for the residual.
	qa := growF(&buf.qa, nI*nJ)
	copy(qa, ahat)
	qb := growF(&buf.qb, nI)
	for k := range qb {
		qb[k] = 0
	}
	jp := ipos[col.j]
	qb[jp] = 1
	col.mhat = growF(&col.mhat, nJ)
	if err := dense.QRLeastSquares(qa, nI, nJ, qb, col.mhat); err != nil {
		return fmt.Errorf("spai: column %d (|I|=%d, |J|=%d): %w", col.j, nI, nJ, err)
	}
	col.r = growF(&col.r, nI)
	ssq := 0.0
	for i := 0; i < nI; i++ {
		s := 0.0
		row := ahat[i*nJ : (i+1)*nJ]
		for jj := range row {
			s += row[jj] * col.mhat[jj]
		}
		if i == jp {
			s -= 1
		}
		col.r[i] = s
		ssq += s * s
	}
	col.rnorm = math.Sqrt(ssq)
	if nonfinite(col.rnorm) {
		return fmt.Errorf("spai: column %d residual not finite (%g)", col.j, col.rnorm)
	}
	return nil
}

// candidateSet enumerates the structural enrichment candidates of the
// column: every k ∉ J appearing in a row A(i,·) with i ∈ I and r_i ≠ 0,
// sorted ascending. The distributed build gathers the Aᵀ rows of this set
// before scoring.
func (col *column) candidateSet(aRow rowFn, buf *scratch) []int {
	inJ := buf.ipos // reuse the map slot; rebuilt next solve anyway
	for k := range inJ {
		delete(inJ, k)
	}
	for _, k := range col.J {
		inJ[k] = 1
	}
	seen := map[int]bool{}
	var cand []int
	for p, i := range col.I {
		if col.r[p] == 0 {
			continue
		}
		cols, _ := aRow(i)
		for _, k := range cols {
			if _, ok := inJ[k]; !ok && !seen[k] {
				seen[k] = true
				cand = append(cand, k)
			}
		}
	}
	sort.Ints(cand)
	return cand
}

// scoreCandidates ranks the candidates by the Grote–Huckle profitability
// ρ_k = (rᵀA·e_k)²/‖A·e_k‖² and returns the top add of them, sorted
// ascending. Ties break toward the smaller index, so the selection is
// deterministic.
func (col *column) scoreCandidates(cand []int, atRow rowFn, colNorm2 []float64, add int) []int {
	if len(cand) == 0 {
		return nil
	}
	ipos := map[int]int{}
	for p, i := range col.I {
		ipos[i] = p
	}
	type scored struct {
		k   int
		rho float64
	}
	var sc []scored
	for _, k := range cand {
		if colNorm2[k] == 0 {
			continue
		}
		cols, vals := atRow(k)
		numer := 0.0
		for t, i := range cols {
			if p, ok := ipos[i]; ok {
				numer += col.r[p] * vals[t]
			}
		}
		if numer == 0 || nonfinite(numer) {
			continue
		}
		sc = append(sc, scored{k: k, rho: numer * numer / colNorm2[k]})
	}
	if len(sc) == 0 {
		return nil
	}
	sort.Slice(sc, func(a, b int) bool {
		if sc[a].rho != sc[b].rho {
			return sc[a].rho > sc[b].rho
		}
		return sc[a].k < sc[b].k
	})
	if len(sc) > add {
		sc = sc[:add]
	}
	out := make([]int, len(sc))
	for t, s := range sc {
		out[t] = s.k
	}
	sort.Ints(out)
	return out
}

// mergeSorted merges the sorted new entries into the sorted pattern.
func mergeSorted(j, add []int) []int {
	out := make([]int, 0, len(j)+len(add))
	a, b := 0, 0
	for a < len(j) || b < len(add) {
		switch {
		case b == len(add) || (a < len(j) && j[a] < add[b]):
			out = append(out, j[a])
			a++
		case a == len(j) || add[b] < j[a]:
			out = append(out, add[b])
			b++
		default:
			out = append(out, j[a])
			a++
			b++
		}
	}
	return out
}

// scratch is per-worker reusable storage for the dense subproblems.
type scratch struct {
	ahat, qa, qb []float64
	ipos         map[int]int
}

func newScratch() *scratch { return &scratch{ipos: map[int]int{}} }

func growF(v *[]float64, n int) []float64 {
	if cap(*v) < n {
		*v = make([]float64, n)
	}
	*v = (*v)[:n]
	return *v
}

func nonfinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// enrich runs the per-column adaptive loop: while the residual is above
// epsilon and candidates remain, add the most profitable entries and
// re-solve. Used by the serial build; the distributed build runs the same
// logic round-by-round across columns to keep its gathers collective.
func (col *column) enrich(aRow, atRow rowFn, colNorm2 []float64, opt Options, buf *scratch) error {
	for step := 0; step < opt.Steps; step++ {
		col.done = col.rnorm <= opt.Epsilon
		if col.done || col.stalled {
			return nil
		}
		ks := col.scoreCandidates(col.candidateSet(aRow, buf), atRow, colNorm2, opt.Add)
		if len(ks) == 0 {
			col.stalled = true
			return nil
		}
		col.J = mergeSorted(col.J, ks)
		col.I = buildShadow(col.j, col.J, atRow)
		if err := col.solve(atRow, buf); err != nil {
			return err
		}
	}
	col.done = col.rnorm <= opt.Epsilon
	return nil
}

// Build computes the SPAI right approximate inverse M ≈ A⁻¹ of the square
// matrix a. The result has one column per adaptive per-column pattern;
// A·M ≈ I in the Frobenius sense. Bit-identical for every worker count.
func Build(a *sparse.CSR, opt Options) (*sparse.CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spai: matrix %dx%d not square", a.Rows, a.Cols)
	}
	opt = opt.withDefaults()
	n := a.Rows
	at := a.Transpose()
	atRow := func(k int) ([]int, []float64) { return at.Row(k) }
	aRow := func(i int) ([]int, []float64) { return a.Row(i) }
	// ‖A·e_k‖² for the profitability denominators, summed in ascending row
	// order (the distributed build reproduces this order exactly through
	// the rank-ordered allreduce).
	colNorm2 := make([]float64, n)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for t, k := range cols {
			colNorm2[k] += vals[t] * vals[t]
		}
	}
	// Initial pattern: rows of (structure(Aᵀ)+I)^Level = columns of
	// (structure(A)+I)^Level.
	pat := sparse.PatternPowerWorkers(at, opt.Level, opt.Workers)

	cols := make([]*column, n)
	err := parallel.For(opt.Workers, n, func(lo, hi int) error {
		buf := newScratch()
		for j := lo; j < hi; j++ {
			col := &column{j: j, J: append([]int(nil), pat.Row(j)...)}
			col.I = buildShadow(j, col.J, atRow)
			if err := col.solve(atRow, buf); err != nil {
				return err
			}
			if err := col.enrich(aRow, atRow, colNorm2, opt, buf); err != nil {
				return err
			}
			cols[j] = col
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return assembleTranspose(cols, n, n).Transpose(), nil
}

// assembleTranspose packs per-column states into the CSR whose row t is
// column cols[t] of M — i.e. the local rows of Mᵀ.
func assembleTranspose(cols []*column, rows, n int) *sparse.CSR {
	mt := &sparse.CSR{Rows: rows, Cols: n, RowPtr: make([]int, rows+1)}
	nnz := 0
	for _, col := range cols {
		nnz += len(col.J)
	}
	mt.ColIdx = make([]int, 0, nnz)
	mt.Val = make([]float64, 0, nnz)
	for t, col := range cols {
		mt.ColIdx = append(mt.ColIdx, col.J...)
		mt.Val = append(mt.Val, col.mhat...)
		mt.RowPtr[t+1] = len(mt.ColIdx)
	}
	return mt
}

// BuildDist computes this rank's rows of the SPAI approximate inverse M on
// the row layout l: the rank owning rows [lo,hi) of A builds columns
// [lo,hi) of M and receives rows [lo,hi) of M through a distributed
// transpose. Collective; the gather/transpose schedule is rank-uniform
// (every rank participates in the same collectives, with empty requests
// when it has no active columns), and the result is bitwise identical to
// the serial Build restricted to these rows.
func BuildDist(c *simmpi.Comm, l *distmat.Layout, lo, hi int, aRows *sparse.CSR, opt Options) (*sparse.CSR, error) {
	opt = opt.withDefaults()
	n := l.N
	atRows := distmat.TransposeDist(c, l, lo, hi, aRows)

	// Global profitability denominators ‖A·e_k‖², reduced in rank order so
	// the sum order matches the serial ascending-row sweep bitwise.
	partial := make([]float64, n)
	for li := 0; li < aRows.Rows; li++ {
		cols, vals := aRows.Row(li)
		for t, k := range cols {
			partial[k] += vals[t] * vals[t]
		}
	}
	colNorm2 := c.AllreduceSum(partial...)

	// atCache maps global k to row k of Aᵀ; aCache maps global i to row i
	// of A. Local rows seed the caches; gathers fill the rest on demand.
	atCache := map[int]distmat.RowData{}
	for li := 0; li < atRows.Rows; li++ {
		rc, rv := atRows.Row(li)
		atCache[lo+li] = distmat.RowData{Cols: rc, Vals: rv}
	}
	aCache := map[int]distmat.RowData{}
	atRow := func(k int) ([]int, []float64) {
		rd, ok := atCache[k]
		if !ok {
			panic(fmt.Sprintf("spai: missing gathered row %d of At", k))
		}
		return rd.Cols, rd.Vals
	}
	aRow := func(i int) ([]int, []float64) {
		rd, ok := aCache[i]
		if !ok {
			panic(fmt.Sprintf("spai: missing gathered row %d of A", i))
		}
		return rd.Cols, rd.Vals
	}
	gatherAt := func(want []int) {
		for k, rd := range distmat.GatherRemoteRows(c, l, lo, hi, atRows, want) {
			atCache[k] = rd
		}
	}
	gatherA := func(want []int) {
		for i, rd := range distmat.GatherRemoteRows(c, l, lo, hi, aRows, want) {
			aCache[i] = rd
		}
	}
	missingAt := func(ks []int, seen map[int]bool) []int {
		var out []int
		for _, k := range ks {
			if _, ok := atCache[k]; !ok && !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
		return out
	}

	// Initial pattern: rows [lo,hi) of (structure(Aᵀ)+I)^Level, expanded by
	// the same recursion as sparse.PatternPowerWorkers — each extra level
	// unions base rows (with diagonal) of the previous level's entries.
	// Level-1 rows are local; deeper levels gather the needed base rows,
	// one collective gather per extra level on every rank.
	nl := hi - lo
	pats := make([][]int, nl)
	for li := 0; li < nl; li++ {
		rc, _ := atRows.Row(li)
		pats[li] = withEntry(rc, lo+li)
	}
	for lvl := 1; lvl < opt.Level; lvl++ {
		seen := map[int]bool{}
		var want []int
		for _, J := range pats {
			want = append(want, missingAt(J, seen)...)
		}
		gatherAt(want)
		for li := range pats {
			pats[li] = expandPattern(pats[li], atRow)
		}
	}
	// Shadow assembly needs row k of Aᵀ for every pattern entry k.
	{
		seen := map[int]bool{}
		var want []int
		for _, J := range pats {
			want = append(want, missingAt(J, seen)...)
		}
		gatherAt(want)
	}

	cols := make([]*column, nl)
	err := parallel.For(opt.Workers, nl, func(clo, chi int) error {
		buf := newScratch()
		for li := clo; li < chi; li++ {
			col := &column{j: lo + li, J: pats[li]}
			col.I = buildShadow(col.j, col.J, atRow)
			if err := col.solve(atRow, buf); err != nil {
				return err
			}
			cols[li] = col
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Adaptive rounds: every rank runs exactly opt.Steps rounds of the two
	// collective gathers — candidate rows of A, then new pattern rows of
	// Aᵀ — whether or not it still has active columns, keeping the
	// collective schedule rank-uniform. The per-column logic is the same
	// enrichment step the serial build runs.
	sbuf := newScratch()
	for step := 0; step < opt.Steps; step++ {
		var active []*column
		for _, col := range cols {
			col.done = col.rnorm <= opt.Epsilon
			if !col.done && !col.stalled {
				active = append(active, col)
			}
		}
		// Gather 1: rows of A for shadow rows with nonzero residual.
		seenA := map[int]bool{}
		var wantA []int
		for _, col := range active {
			for p, i := range col.I {
				if col.r[p] != 0 {
					if _, ok := aCache[i]; !ok && !seenA[i] {
						seenA[i] = true
						wantA = append(wantA, i)
					}
				}
			}
		}
		gatherA(wantA)
		// Enumerate candidates, then gather 2: rows of Aᵀ for every
		// candidate (scoring reads A·e_k, and the winners join the pattern).
		cands := make([][]int, len(active))
		seenAt := map[int]bool{}
		var wantAt []int
		for t, col := range active {
			cands[t] = col.candidateSet(aRow, sbuf)
			wantAt = append(wantAt, missingAt(cands[t], seenAt)...)
		}
		gatherAt(wantAt)
		type pick struct {
			col *column
			ks  []int
		}
		var picks []pick
		for t, col := range active {
			ks := col.scoreCandidates(cands[t], atRow, colNorm2, opt.Add)
			if len(ks) == 0 {
				col.stalled = true
				continue
			}
			picks = append(picks, pick{col, ks})
		}
		for _, p := range picks {
			p.col.J = mergeSorted(p.col.J, p.ks)
		}
		err := parallel.For(opt.Workers, len(picks), func(clo, chi int) error {
			buf := newScratch()
			for t := clo; t < chi; t++ {
				col := picks[t].col
				col.I = buildShadow(col.j, col.J, atRow)
				if err := col.solve(atRow, buf); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	mtRows := assembleTranspose(cols, nl, n)
	return distmat.TransposeDist(c, l, lo, hi, mtRows), nil
}

// withEntry returns sorted cols ∪ {j}.
func withEntry(cols []int, j int) []int {
	idx := sort.SearchInts(cols, j)
	if idx < len(cols) && cols[idx] == j {
		return append([]int(nil), cols...)
	}
	out := make([]int, 0, len(cols)+1)
	out = append(out, cols[:idx]...)
	out = append(out, j)
	out = append(out, cols[idx:]...)
	return out
}

// expandPattern unions the diagonal-augmented base rows of every entry —
// one symbolic-power level.
func expandPattern(J []int, atRow rowFn) []int {
	seen := map[int]bool{}
	var out []int
	for _, k := range J {
		cols, _ := atRow(k)
		for _, j := range withEntry(cols, k) {
			if !seen[j] {
				seen[j] = true
				out = append(out, j)
			}
		}
	}
	sort.Ints(out)
	return out
}

package spai

import (
	"math"
	"testing"
	"time"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

const testTimeout = 20 * time.Second

// frobeniusAMinusI returns ‖A·M − I‖_F.
func frobeniusAMinusI(a, m *sparse.CSR) float64 {
	n := a.Rows
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	ssq := 0.0
	for j := 0; j < n; j++ {
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
		m.MulVec(x, y)
		a.MulVec(y, z)
		z[j] -= 1
		for _, v := range z {
			ssq += v * v
		}
	}
	return math.Sqrt(ssq)
}

func TestBuildApproximatesInverse(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(8, 8, 6)
	m, err := Build(a, Options{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != a.Rows || m.Cols != a.Cols {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// ‖A·M − I‖_F must beat the trivial M = I baseline by a wide margin.
	id := sparse.NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		id.Add(i, i, 1)
	}
	base := frobeniusAMinusI(a, id.ToCSR())
	got := frobeniusAMinusI(a, m)
	if got > 0.5*base {
		t.Fatalf("‖AM−I‖_F = %g, identity baseline %g", got, base)
	}
}

func TestEnrichmentImprovesResidual(t *testing.T) {
	a := matgen.NonsymCircuit(150, 4, 11)
	m0, err := Build(a, Options{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(a, Options{Level: 1, Steps: 3, Add: 4, Epsilon: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	f0 := frobeniusAMinusI(a, m0)
	f2 := frobeniusAMinusI(a, m2)
	if f2 >= f0 {
		t.Fatalf("enrichment did not improve: %g vs %g", f2, f0)
	}
	if m2.NNZ() <= m0.NNZ() {
		t.Fatalf("enrichment did not grow the pattern: %d vs %d", m2.NNZ(), m0.NNZ())
	}
}

func TestBuildWorkerBitIdentity(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(10, 9, 12)
	opt := Options{Level: 2, Steps: 2, Add: 3, Epsilon: 1e-2}
	ref, err := Build(a, optWithWorkers(opt, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7} {
		got, err := Build(a, optWithWorkers(opt, w))
		if err != nil {
			t.Fatal(err)
		}
		assertSameCSR(t, ref, got)
	}
}

func optWithWorkers(o Options, w int) Options {
	o.Workers = w
	return o
}

func assertSameCSR(t *testing.T, want, got *sparse.CSR) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols || want.NNZ() != got.NNZ() {
		t.Fatalf("structure differs: %dx%d/%d vs %dx%d/%d",
			want.Rows, want.Cols, want.NNZ(), got.Rows, got.Cols, got.NNZ())
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("RowPtr[%d] differs: %d vs %d", i, want.RowPtr[i], got.RowPtr[i])
		}
	}
	for k := range want.ColIdx {
		if want.ColIdx[k] != got.ColIdx[k] {
			t.Fatalf("ColIdx[%d] differs: %d vs %d", k, want.ColIdx[k], got.ColIdx[k])
		}
		if want.Val[k] != got.Val[k] {
			t.Fatalf("Val[%d] differs: %g vs %g", k, want.Val[k], got.Val[k])
		}
	}
}

func TestBuildRejectsNonSquare(t *testing.T) {
	c := sparse.NewCOO(2, 3)
	c.Add(0, 0, 1)
	if _, err := Build(c.ToCSR(), Options{}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

// TestBuildDistMatchesSerialBitwise is the distributed-correctness anchor:
// the per-rank blocks of the distributed build concatenate to exactly the
// serial result — same structure, same bits — for both the static and the
// adaptive configurations, at several rank counts.
func TestBuildDistMatchesSerialBitwise(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    *sparse.CSR
		opt  Options
	}{
		{"convdiff-static", matgen.ConvectionDiffusion2D(9, 10, 8), Options{Level: 1}},
		{"convdiff-level2", matgen.ConvectionDiffusion2D(8, 8, 15), Options{Level: 2}},
		{"convdiff-adaptive", matgen.ConvectionDiffusion2D(9, 9, 8), Options{Level: 1, Steps: 2, Add: 3, Epsilon: 1e-2}},
		{"circuit-adaptive", matgen.NonsymCircuit(120, 4, 5), Options{Level: 1, Steps: 3, Add: 2, Epsilon: 1e-3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := Build(tc.a, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			n := tc.a.Rows
			for _, nranks := range []int{2, 4} {
				l := distmat.NewUniformLayout(n, nranks)
				parts := make([]*sparse.CSR, nranks)
				_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
					lo, hi := l.Range(c.Rank())
					m, err := BuildDist(c, l, lo, hi, distmat.ExtractLocalRows(tc.a, lo, hi), tc.opt)
					if err != nil {
						return err
					}
					parts[c.Rank()] = m
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				got := concatRows(parts, n)
				assertSameCSR(t, ref, got)
			}
		})
	}
}

func concatRows(parts []*sparse.CSR, n int) *sparse.CSR {
	out := &sparse.CSR{Rows: 0, Cols: n, RowPtr: []int{0}}
	for _, p := range parts {
		for i := 0; i < p.Rows; i++ {
			cols, vals := p.Row(i)
			out.ColIdx = append(out.ColIdx, cols...)
			out.Val = append(out.Val, vals...)
			out.RowPtr = append(out.RowPtr, len(out.ColIdx))
			out.Rows++
		}
	}
	return out
}

package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096, 100001} {
		for _, w := range []int{1, 2, 7, 16} {
			hits := make([]int32, n)
			err := For(w, n, func(lo, hi int) error {
				if lo < 0 || hi > n || lo >= hi {
					return fmt.Errorf("bad range [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, w, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestForDisjointWritesAreDeterministic(t *testing.T) {
	// The pool's contract: writes to disjoint output ranges give the same
	// result for every worker count.
	n := 50000
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(i*i%97) / 3
	}
	for _, w := range []int{1, 2, 3, 8, 33} {
		out := make([]float64, n)
		if err := For(w, n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				out[i] = float64(i*i%97) / 3
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("w=%d: out[%d] = %v, want %v", w, i, out[i], ref[i])
			}
		}
	}
}

func TestForReturnsLowestIndexedError(t *testing.T) {
	// Every chunk but the first fails: the error of the lowest failing
	// range must win, matching what a serial scan would report first.
	n := 10000
	for _, w := range []int{2, 4, 8} {
		var mu sync.Mutex
		var failedLos []int
		err := For(w, n, func(lo, hi int) error {
			if lo == 0 {
				return nil
			}
			mu.Lock()
			failedLos = append(failedLos, lo)
			mu.Unlock()
			return fmt.Errorf("chunk@%d", lo)
		})
		if err == nil {
			t.Fatalf("w=%d: expected error", w)
		}
		min := failedLos[0]
		for _, lo := range failedLos[1:] {
			if lo < min {
				min = lo
			}
		}
		if got, want := err.Error(), fmt.Sprintf("chunk@%d", min); got != want {
			t.Fatalf("w=%d: got %q, want %q (lowest failing chunk)", w, got, want)
		}
	}
}

func TestForStopsEarlyAfterError(t *testing.T) {
	n := 1 << 20
	var calls atomic.Int64
	boom := errors.New("boom")
	err := For(4, n, func(lo, hi int) error {
		calls.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// All chunks would be n/minChunk >> workers; early abort must have
	// skipped nearly all of them (at most one in-flight chunk per worker).
	if c := calls.Load(); c > 16 {
		t.Fatalf("%d chunks ran after first error", c)
	}
}

func TestForPropagatesPanicToCaller(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic swallowed by pool")
		}
		if s, ok := p.(string); !ok || s != "row exploded" {
			t.Fatalf("panic value %v", p)
		}
	}()
	_ = For(4, 100000, func(lo, hi int) error {
		if lo >= 4096 {
			panic("row exploded")
		}
		return nil
	})
}

func TestForSerialFallbackSmallN(t *testing.T) {
	// Tiny loops run inline in the caller's goroutine: one body call.
	var calls int
	if err := For(8, 10, func(lo, hi int) error {
		calls++
		if lo != 0 || hi != 10 {
			return fmt.Errorf("range [%d,%d)", lo, hi)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestRunAllTasksExecute(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		var ran [20]atomic.Bool
		tasks := make([]func() error, len(ran))
		for i := range tasks {
			i := i
			tasks[i] = func() error { ran[i].Store(true); return nil }
		}
		if err := Run(w, tasks...); err != nil {
			t.Fatal(err)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Fatalf("w=%d: task %d never ran", w, i)
			}
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := Run(4,
		func() error { return nil },
		func() error { return errA },
		func() error { return errB },
	)
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want first failing task's error", err)
	}
}

func TestRunRecoversTaskPanic(t *testing.T) {
	err := Run(2, func() error { panic("kaboom") })
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(4); err != nil {
		t.Fatal(err)
	}
}

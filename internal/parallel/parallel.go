// Package parallel provides the bounded worker pool used to parallelize the
// row-independent loops of the FSAI pipeline (per-row factor solves, symbolic
// pattern powering, row-partitioned SpMV).
//
// The design constraint, inherited from the paper's embarrassingly parallel
// setup phase, is bit-identical results: callers split work into index ranges
// whose outputs land in disjoint slices, so the only thing parallelism may
// change is wall-clock time — never a single bit of the result. No atomics
// touch values; scheduling only decides which goroutine computes which chunk.
//
// This layer is orthogonal to internal/simmpi: simmpi ranks simulate the
// paper's MPI processes (distributed memory, metered messages), while this
// pool is the shared-memory threading *inside* one process (the paper's
// OpenMP level). A distributed build may therefore use both at once.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: n > 0 means exactly n workers,
// anything else (the zero value of a config field) means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// minChunk is the smallest index range handed to a worker. Tiny chunks would
// spend more time on the scheduling counter than on row work.
const minChunk = 64

// chunkSize picks the dynamic-scheduling grain for n items over w workers:
// several chunks per worker for load balance (FSAI row costs vary with row
// degree), but never below minChunk.
func chunkSize(n, w int) int {
	c := n / (8 * w)
	if c < minChunk {
		c = minChunk
	}
	return c
}

// For runs body over the index range [0, n) split into contiguous chunks,
// using the given number of workers (<= 0 selects GOMAXPROCS). body receives
// half-open sub-ranges [lo, hi) and is called from multiple goroutines;
// distinct calls never overlap, and every index is visited exactly once
// unless an error aborts the loop early.
//
// Error handling is deterministic: if any body call returns a non-nil error,
// For stops handing out further chunks, waits for in-flight chunks, and
// returns the error from the lowest-indexed failing chunk — the same error a
// serial left-to-right loop would have hit first among those observed.
func For(workers, n int, body func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w == 1 || n <= minChunk {
		return body(0, n)
	}
	chunk := chunkSize(n, w)
	nchunks := (n + chunk - 1) / chunk
	if w > nchunks {
		w = nchunks
	}

	var (
		next     atomic.Int64 // next chunk index to claim
		failed   atomic.Bool  // set once any chunk errors; stops new claims
		mu       sync.Mutex
		errLo    int // chunk start of the lowest-indexed error
		first    error
		panicked any
		wg       sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				err, pv := runChunk(body, lo, hi)
				if err != nil || pv != nil {
					mu.Lock()
					if (first == nil && panicked == nil) || lo < errLo {
						first, panicked, errLo = err, pv, lo
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		// Re-panic in the caller's goroutine so enclosing recovers (e.g.
		// simmpi's per-rank recovery) see the panic exactly as in the serial
		// loop.
		panic(panicked)
	}
	return first
}

// runChunk invokes body on one chunk, converting a panic into a value the
// pool can rethrow from the calling goroutine.
func runChunk(body func(lo, hi int) error, lo, hi int) (err error, panicked any) {
	defer func() {
		if p := recover(); p != nil {
			panicked = p
		}
	}()
	return body(lo, hi), nil
}

// Run executes the given tasks concurrently on at most workers goroutines
// (<= 0 selects GOMAXPROCS) and returns the error of the lowest-indexed
// failing task. Unlike For it does not abort early: every task runs, so
// callers can treat Run as a structured fork-join.
func Run(workers int, tasks ...func() error) error {
	if len(tasks) == 0 {
		return nil
	}
	w := Workers(workers)
	if w == 1 {
		for _, t := range tasks {
			if err := t(); err != nil {
				return err
			}
		}
		return nil
	}
	if w > len(tasks) {
		w = len(tasks)
	}
	errs := make([]error, len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				errs[i] = guard(tasks[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// guard converts a task panic into an error so one bad task cannot kill the
// whole process from a pool goroutine (mirroring simmpi.Run's rank recovery).
func guard(task func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("parallel: task panicked: %v", p)
		}
	}()
	return task()
}

package krylov

import (
	"errors"
	"fmt"
	"testing"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

func TestParseCGVariant(t *testing.T) {
	cases := []struct {
		in   string
		want CGVariant
		ok   bool
	}{
		{"", CGClassic, true},
		{"classic", CGClassic, true},
		{"classic-overlap", CGClassicOverlap, true},
		{"overlap", CGClassicOverlap, true},
		{"fused", CGFused, true},
		{"pipelined", CGPipelined, true},
		{"chaotic", CGClassic, false},
	}
	for _, tc := range cases {
		got, err := ParseCGVariant(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseCGVariant(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, v := range []CGVariant{CGClassic, CGClassicOverlap, CGFused, CGPipelined} {
		back, err := ParseCGVariant(v.String())
		if err != nil || back != v {
			t.Fatalf("round trip %v -> %q -> %v, %v", v, v.String(), back, err)
		}
	}
}

// distSolve runs DistCG on nranks ranks with the given variant and returns
// the assembled solution and rank-0 stats.
func distSolve(t *testing.T, a *sparse.CSR, b []float64, nranks int, m func(lo, hi int) DistPreconditioner, opt Options) ([]float64, Stats) {
	t.Helper()
	n := a.Rows
	l := distmat.NewUniformLayout(n, nranks)
	x := make([]float64, n)
	var st Stats
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		var pre DistPreconditioner
		if m != nil {
			pre = m(lo, hi)
		}
		xl := make([]float64, hi-lo)
		s, err := DistCG(c, op, b[lo:hi], xl, pre, opt, nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			st = s
		}
		copy(x[lo:hi], xl)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return x, st
}

// The fused recurrence spans the same Krylov space as classic PCG: on a
// matrix suite with and without preconditioning, iteration counts agree to
// ±1 and both meet the tolerance.
func TestDistCGFusedMatchesClassic(t *testing.T) {
	mats := []struct {
		name string
		a    *sparse.CSR
	}{
		{"poisson2d", matgen.Poisson2D(12, 12)},
		{"poisson3d", matgen.Poisson3D(7, 7, 7)},
		{"cfd", matgen.CFDDiffusion(10, 10, 100, 3)},
		{"aniso", matgen.ThermalAniso(12, 12, 1, 100)},
	}
	for _, tc := range mats {
		a := tc.a
		b := matgen.RandomRHS(a.Rows, 21, a.MaxNorm())
		j, err := NewJacobi(a)
		if err != nil {
			t.Fatal(err)
		}
		precs := map[string]func(lo, hi int) DistPreconditioner{
			"noprec": nil,
			"jacobi": func(lo, hi int) DistPreconditioner { return &distJacobi{inv: j.InvDiag[lo:hi]} },
		}
		for pname, pre := range precs {
			opt := Options{Tol: 1e-8}
			xc, stc := distSolve(t, a, b, 4, pre, opt)
			opt.Variant = CGFused
			xf, stf := distSolve(t, a, b, 4, pre, opt)
			if !stc.Converged || !stf.Converged {
				t.Fatalf("%s/%s: converged classic=%v fused=%v", tc.name, pname, stc.Converged, stf.Converged)
			}
			if d := stf.Iterations - stc.Iterations; d < -1 || d > 1 {
				t.Fatalf("%s/%s: fused %d iters vs classic %d (want ±1)", tc.name, pname, stf.Iterations, stc.Iterations)
			}
			if stc.RelResidual > opt.Tol || stf.RelResidual > opt.Tol {
				t.Fatalf("%s/%s: residuals above Tol: classic %g fused %g", tc.name, pname, stc.RelResidual, stf.RelResidual)
			}
			bn := vecops.Norm2(b, nil)
			if rc, rf := residual(a, xc, b), residual(a, xf, b); rc > 1e-6*(1+bn) || rf > 1e-6*(1+bn) {
				t.Fatalf("%s/%s: true residuals classic %g fused %g", tc.name, pname, rc, rf)
			}
		}
	}
}

// classic-overlap reorders communication but not arithmetic: the solution
// must be bit-identical to classic, iteration for iteration.
func TestDistCGClassicOverlapBitIdentical(t *testing.T) {
	a := matgen.Poisson3D(8, 8, 8)
	b := matgen.RandomRHS(a.Rows, 23, a.MaxNorm())
	xc, stc := distSolve(t, a, b, 4, nil, Options{Tol: 1e-8})
	xo, sto := distSolve(t, a, b, 4, nil, Options{Tol: 1e-8, Variant: CGClassicOverlap})
	if stc.Iterations != sto.Iterations {
		t.Fatalf("overlap changed iterations: %d vs %d", sto.Iterations, stc.Iterations)
	}
	if stc.RelResidual != sto.RelResidual {
		t.Fatalf("overlap changed residual: %v vs %v", sto.RelResidual, stc.RelResidual)
	}
	for i := range xc {
		if xc[i] != xo[i] {
			t.Fatalf("x[%d]: overlap %v != classic %v (must be bit-identical)", i, xo[i], xc[i])
		}
	}
}

// The acceptance proof of the PR: on a 4-rank partitioned Poisson problem,
// forcing Δ extra iterations costs the classic loop 3Δ collective calls per
// rank and the fused loop Δ, with equal collective-byte growth (24 B/iter
// either way), byte-identical halo traffic growth on every rank pair, and
// identical neighbour sets.
func TestFusedOneCollectivePerIteration(t *testing.T) {
	a := matgen.Poisson3D(12, 12, 12)
	n := a.Rows
	b := matgen.RandomRHS(n, 29, a.MaxNorm())
	const nranks = 4
	l := distmat.NewUniformLayout(n, nranks)

	runForced := func(variant CGVariant, iters int) *simmpi.Meter {
		t.Helper()
		w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
			x := make([]float64, hi-lo)
			// Tol below attainable accuracy forces exactly MaxIter iterations.
			_, err := DistCG(c, op, b[lo:hi], x, nil, Options{Tol: 1e-300, MaxIter: iters, Variant: variant}, nil)
			if !errors.Is(err, ErrNoConvergence) {
				return fmt.Errorf("want forced non-convergence, got %v", err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Meter()
	}

	const k, delta = 6, 5
	mc1, mc2 := runForced(CGClassic, k), runForced(CGClassic, k+delta)
	mf1, mf2 := runForced(CGFused, k), runForced(CGFused, k+delta)

	for r := 0; r < nranks; r++ {
		// Collective calls per extra iteration: classic 3, fused 1.
		if got := mc2.CollectiveCalls(r) - mc1.CollectiveCalls(r); got != 3*delta {
			t.Errorf("rank %d: classic grew %d collective calls over %d iterations, want %d", r, got, delta, 3*delta)
		}
		if got := mf2.CollectiveCalls(r) - mf1.CollectiveCalls(r); got != int64(delta) {
			t.Errorf("rank %d: fused grew %d collective calls over %d iterations, want %d", r, got, delta, delta)
		}
		// Reduced payload per iteration is identical: 3×8 B vs 1×24 B.
		cb := mc2.CollectiveBytes(r) - mc1.CollectiveBytes(r)
		fb := mf2.CollectiveBytes(r) - mf1.CollectiveBytes(r)
		if cb != fb || cb != 24*delta {
			t.Errorf("rank %d: collective byte growth classic %d vs fused %d, want both %d", r, cb, fb, 24*delta)
		}
		// Halo traffic per iteration is byte-identical on every pair.
		for dst := 0; dst < nranks; dst++ {
			ch := mc2.PairBytes(r, dst) - mc1.PairBytes(r, dst)
			fh := mf2.PairBytes(r, dst) - mf1.PairBytes(r, dst)
			if ch != fh {
				t.Errorf("pair %d->%d: halo byte growth classic %d vs fused %d", r, dst, ch, fh)
			}
		}
	}
	// The fused variant talks to exactly the same neighbours.
	nc, nf := mc2.NeighborSets(), mf2.NeighborSets()
	for r := range nc {
		if len(nc[r]) != len(nf[r]) {
			t.Fatalf("rank %d: neighbour sets differ: classic %v fused %v", r, nc[r], nf[r])
		}
		for k := range nc[r] {
			if nc[r][k] != nf[r][k] {
				t.Fatalf("rank %d: neighbour sets differ: classic %v fused %v", r, nc[r], nf[r])
			}
		}
	}
}

// The fused loop under the distributed split preconditioner (the FSAI
// application path, with overlap-built G and Gᵀ ops) still matches classic.
func TestDistCGFusedWithSplitPrecond(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	n := a.Rows
	id := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		id.Add(i, i, 1)
	}
	g := id.ToCSR()
	b := matgen.RandomRHS(n, 31, a.MaxNorm())
	const nranks = 4
	l := distmat.NewUniformLayout(n, nranks)
	var plain, split Stats
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		x1 := make([]float64, hi-lo)
		st1, err := DistCG(c, op, b[lo:hi], x1, nil, Options{Variant: CGFused}, nil)
		if err != nil {
			return err
		}
		gOp := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(g, lo, hi), distmat.WithOverlap())
		gtOp := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(g, lo, hi), distmat.WithOverlap())
		x2 := make([]float64, hi-lo)
		st2, err := DistCG(c, op, b[lo:hi], x2, NewDistSplit(gOp, gtOp), Options{Variant: CGFused}, nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			plain, split = st1, st2
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != split.Iterations {
		t.Fatalf("identity split changed fused iterations: %d vs %d", split.Iterations, plain.Iterations)
	}
}

func TestDistCGFusedZeroRHS(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	n := a.Rows
	l := distmat.NewUniformLayout(n, 2)
	_, err := simmpi.Run(2, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		x := make([]float64, hi-lo)
		st, err := DistCG(c, op, make([]float64, hi-lo), x, nil, Options{Variant: CGFused}, nil)
		if err != nil || !st.Converged || st.Iterations != 0 {
			return fmt.Errorf("zero RHS: st=%+v err=%v", st, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistCGFusedBreakdownOnIndefinite(t *testing.T) {
	c := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 1)
	}
	c.Add(3, 3, -2) // make the last diagonal −1
	a := c.ToCSR()
	b := []float64{1, 1, 1, 1}
	l := distmat.NewUniformLayout(4, 2)
	_, err := simmpi.Run(2, testTimeout, func(cm *simmpi.Comm) error {
		lo, hi := l.Range(cm.Rank())
		op := distmat.NewOp(cm, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		x := make([]float64, hi-lo)
		_, err := DistCG(cm, op, b[lo:hi], x, nil, Options{Variant: CGFused}, nil)
		if err == nil {
			return fmt.Errorf("indefinite matrix accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Satellite 2: with a caller-held Workspace and a prebuilt preconditioner,
// repeated serial solves allocate nothing in steady state.
func TestCGWorkspaceZeroAllocs(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	n := a.Rows
	b := matgen.RandomRHS(n, 37, a.MaxNorm())
	j, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	ws := &Workspace{}
	opt := Options{Tol: 1e-8, Work: ws}
	// Warm-up solve grows the workspace.
	if _, err := CG(a, b, x, j, opt, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		vecops.Fill(x, 0)
		if _, err := CG(a, b, x, j, opt, nil); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state CG allocates %v times per solve, want 0", allocs)
	}
}

// A workspace reused across different systems (different sizes) still
// produces correct solutions.
func TestWorkspaceReuseAcrossSolves(t *testing.T) {
	ws := &Workspace{}
	for _, dim := range []int{12, 8, 15} {
		a := matgen.Poisson2D(dim, dim)
		b := matgen.RandomRHS(a.Rows, int64(41+dim), a.MaxNorm())
		x := make([]float64, a.Rows)
		st, err := CG(a, b, x, nil, Options{Tol: 1e-9, Work: ws}, nil)
		if err != nil || !st.Converged {
			t.Fatalf("dim %d: st=%+v err=%v", dim, st, err)
		}
		if res := residual(a, x, b); res > 1e-6*(1+vecops.Norm2(b, nil)) {
			t.Fatalf("dim %d: residual %g", dim, res)
		}
	}
}

// Per-rank workspaces survive across repeated distributed solves.
func TestDistWorkspaceReuse(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	n := a.Rows
	b := matgen.RandomRHS(n, 43, a.MaxNorm())
	const nranks = 3
	l := distmat.NewUniformLayout(n, nranks)
	works := make([]*Workspace, nranks)
	for i := range works {
		works[i] = &Workspace{}
	}
	var iters [2]int
	for round := 0; round < 2; round++ {
		rr := round
		_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
			x := make([]float64, hi-lo)
			st, err := DistCG(c, op, b[lo:hi], x, nil, Options{Variant: CGFused, Work: works[c.Rank()]}, nil)
			if c.Rank() == 0 {
				iters[rr] = st.Iterations
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if iters[0] != iters[1] || iters[0] == 0 {
		t.Fatalf("workspace reuse changed iterations: %v", iters)
	}
}

// Guard the ±1 claim quantitatively: fused convergence histories track the
// classic ones to the end (final residual within 10× on the same iteration
// budget).
func TestFusedResidualHistoryTracksClassic(t *testing.T) {
	a := matgen.CFDDiffusion(8, 8, 50, 2)
	b := matgen.RandomRHS(a.Rows, 47, a.MaxNorm())
	_, stc := distSolve(t, a, b, 4, nil, Options{Tol: 1e-10, RecordResiduals: true})
	_, stf := distSolve(t, a, b, 4, nil, Options{Tol: 1e-10, RecordResiduals: true, Variant: CGFused})
	m := len(stc.Residuals)
	if len(stf.Residuals) < m {
		m = len(stf.Residuals)
	}
	if m == 0 {
		t.Fatal("no residual history recorded")
	}
	for i := 0; i < m; i++ {
		rc, rf := stc.Residuals[i], stf.Residuals[i]
		if rf > 10*rc+1e-14 && rf > 1e-10 {
			t.Fatalf("iteration %d: fused residual %g drifts from classic %g", i+1, rf, rc)
		}
	}
}

package krylov

import (
	"errors"
	"math"
	"testing"

	"fsaicomm/internal/matgen"
	"fsaicomm/internal/sparse"
)

// eye builds the n×n identity — the weakest split preconditioner, which
// still exercises the Split32 narrowing path.
func eye(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
	}
	return c.ToCSR()
}

func TestInnerTol(t *testing.T) {
	// First solve (relres 1) aims a safety factor under the target.
	if got := innerTol(1e-8, 1); got != refineSafety*1e-8 {
		t.Fatalf("innerTol(1e-8, 1) = %g", got)
	}
	// A correction solve only closes the remaining gap.
	if got := innerTol(1e-8, 1e-6); got != refineSafety*1e-2 {
		t.Fatalf("innerTol(1e-8, 1e-6) = %g", got)
	}
	// A near-converged outer residual never asks for a looser-than-safety
	// reduction: the cap keeps every refinement at least halving.
	if got := innerTol(1e-8, 2e-9); got != refineSafety {
		t.Fatalf("innerTol(1e-8, 2e-9) = %g, want the %g cap", got, refineSafety)
	}
}

// TestSolveRefinedReachesFP64Tolerance: the serial mixed-precision solve
// must reach the same tolerance plain FP64 CG does, verified against an
// independently recomputed FP64 residual, with the refinement loop engaged
// and traced.
func TestSolveRefinedReachesFP64Tolerance(t *testing.T) {
	a := matgen.Poisson2D(20, 20)
	b := matgen.RandomRHS(a.Rows, 3, a.MaxNorm())
	g := eye(a.Rows)
	x := make([]float64, a.Rows)
	st, err := SolveRefined(a, b, x, NewSplit32(g, g.Transpose()), Options{Tol: 1e-10, Trace: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Refinements < 1 {
		t.Fatalf("converged=%v refinements=%d", st.Converged, st.Refinements)
	}
	r := make([]float64, a.Rows)
	a.MulVec(x, r)
	var rr, bb float64
	for i := range r {
		d := b[i] - r[i]
		rr += d * d
		bb += b[i] * b[i]
	}
	if rel := math.Sqrt(rr / bb); rel > 1e-10 {
		t.Fatalf("true residual %g exceeds tolerance", rel)
	}
	if st.Trace == nil || len(st.Trace.Refines) != st.Refinements {
		t.Fatalf("trace records %v refinement steps, stats say %d", st.Trace, st.Refinements)
	}
}

func TestSolveRefinedZeroRHS(t *testing.T) {
	a := matgen.Poisson2D(5, 5)
	g := eye(a.Rows)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = 7 // must be overwritten with the zero solution
	}
	st, err := SolveRefined(a, make([]float64, a.Rows), x, NewSplit32(g, g.Transpose()), Options{}, nil)
	if err != nil || !st.Converged || st.Iterations != 0 {
		t.Fatalf("zero RHS: st=%+v err=%v", st, err)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}

// TestSolveRefinedBreakdownOnIndefinite: when the inner solve breaks down
// without the FP64 recomputation showing progress, the refined solve must
// surface ErrBreakdown instead of looping on a diverging correction.
func TestSolveRefinedBreakdownOnIndefinite(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1)
	a := c.ToCSR()
	x := make([]float64, 2)
	_, err := SolveRefined(a, []float64{1, 1}, x, nil, Options{}, nil)
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
}

// TestSolveRefinedNaNRHS: a non-finite right-hand side must come back as a
// breakdown, never a hang or a silent "converged".
func TestSolveRefinedNaNRHS(t *testing.T) {
	a := matgen.Poisson2D(4, 4)
	b := make([]float64, a.Rows)
	b[3] = math.NaN()
	x := make([]float64, a.Rows)
	st, err := SolveRefined(a, b, x, nil, Options{}, nil)
	if !errors.Is(err, ErrBreakdown) || st.Converged {
		t.Fatalf("NaN rhs: st=%+v err=%v", st, err)
	}
}

// TestSolveRefinedBudgetExhaustion: the outer loop shares MaxIter with the
// inner solves as one total budget and reports ErrNoConvergence when it
// runs out.
func TestSolveRefinedBudgetExhaustion(t *testing.T) {
	a := matgen.ThermalAniso(20, 20, 1, 10000)
	b := matgen.RandomRHS(a.Rows, 2, a.MaxNorm())
	x := make([]float64, a.Rows)
	st, err := SolveRefined(a, b, x, nil, Options{Tol: 1e-14, MaxIter: 5}, nil)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if st.Iterations > 5 {
		t.Fatalf("budget 5 overrun: %d inner iterations", st.Iterations)
	}
}

package krylov

import (
	"math"
	"testing"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

func TestIC0ExactOnTridiagonal(t *testing.T) {
	// For a tridiagonal SPD matrix the lower-triangular pattern holds the
	// full Cholesky factor, so IC(0) is exact: PCG converges in one or two
	// iterations.
	n := 50
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4)
		if i > 0 {
			c.AddSym(i, i-1, -1)
		}
	}
	a := c.ToCSR()
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := matgen.RandomRHS(n, 1, a.MaxNorm())
	x := make([]float64, n)
	st, err := CG(a, b, x, ic, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 2 {
		t.Fatalf("exact factorization took %d iterations", st.Iterations)
	}
}

func TestIC0FactorIsExactCholeskyOnFullPattern(t *testing.T) {
	// Verify L·Lᵀ reproduces a tridiagonal A exactly.
	n := 10
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 3)
		if i > 0 {
			c.AddSym(i, i-1, -1)
		}
	}
	a := c.ToCSR()
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	l := ic.L.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += l[i][k] * l[j][k]
			}
			if math.Abs(s-a.At(i, j)) > 1e-12 {
				t.Fatalf("LLᵀ(%d,%d) = %v, want %v", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestIC0ReducesIterations(t *testing.T) {
	a := matgen.Poisson2D(20, 20)
	b := matgen.RandomRHS(a.Rows, 2, a.MaxNorm())
	x1 := make([]float64, a.Rows)
	plain, err := CG(a, b, x1, nil, Options{MaxIter: 100000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, a.Rows)
	pre, err := CG(a, b, x2, ic, Options{MaxIter: 100000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Iterations >= plain.Iterations/2 {
		t.Fatalf("IC(0) %d iterations vs plain %d: too weak", pre.Iterations, plain.Iterations)
	}
}

func TestIC0RejectsRectangular(t *testing.T) {
	if _, err := NewIC0(sparse.NewCSR(2, 3, 0)); err == nil {
		t.Fatal("rectangular accepted")
	}
}

func TestIC0ShiftRecovery(t *testing.T) {
	// A matrix where plain IC(0) breaks down but a shifted retry succeeds:
	// strongly nonsymmetric-dominance SPD matrix built as BᵀB with wide
	// off-diagonal mass. Construct a small SPD matrix with weak diagonal.
	n := 30
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1.0)
		if i > 0 {
			c.AddSym(i, i-1, -0.6)
		}
		if i > 4 {
			c.AddSym(i, i-5, -0.55)
		}
	}
	a := c.ToCSR()
	// This matrix may or may not be SPD; only require that NewIC0 either
	// fails cleanly or produces a usable preconditioner.
	ic, err := NewIC0(a)
	if err != nil {
		t.Skipf("matrix rejected cleanly: %v", err)
	}
	z := make([]float64, n)
	r := make([]float64, n)
	for i := range r {
		r[i] = 1
	}
	ic.Apply(r, z, nil)
	for _, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("Apply produced non-finite values")
		}
	}
}

func TestBlockJacobiICDistributed(t *testing.T) {
	a := matgen.Poisson2D(16, 16)
	n := a.Rows
	b := matgen.RandomRHS(n, 3, a.MaxNorm())
	plainIters := 0
	{
		x := make([]float64, n)
		st, err := CG(a, b, x, nil, Options{MaxIter: 100000}, nil)
		if err != nil {
			t.Fatal(err)
		}
		plainIters = st.Iterations
	}
	for _, nranks := range []int{2, 4} {
		l := distmat.NewUniformLayout(n, nranks)
		iters := 0
		_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(a, lo, hi)
			bj, err := NewBlockJacobiIC(aRows, lo, hi)
			if err != nil {
				return err
			}
			op := distmat.NewOp(c, l, lo, hi, aRows)
			x := make([]float64, hi-lo)
			st, err := DistCG(c, op, b[lo:hi], x, bj, Options{MaxIter: 100000}, nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				iters = st.Iterations
			}
			return nil
		})
		if err != nil {
			t.Fatalf("nranks=%d: %v", nranks, err)
		}
		if iters >= plainIters {
			t.Fatalf("nranks=%d: block-Jacobi %d iterations not below plain %d", nranks, iters, plainIters)
		}
	}
}

func TestBlockJacobiDegradesWithRanks(t *testing.T) {
	// The classical weakness: more blocks = weaker preconditioner. This is
	// the contrast with FSAI-family methods whose quality is rank-invariant.
	a := matgen.Poisson2D(20, 20)
	n := a.Rows
	b := matgen.RandomRHS(n, 4, a.MaxNorm())
	itersAt := func(nranks int) int {
		l := distmat.NewUniformLayout(n, nranks)
		iters := 0
		_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(a, lo, hi)
			bj, err := NewBlockJacobiIC(aRows, lo, hi)
			if err != nil {
				return err
			}
			op := distmat.NewOp(c, l, lo, hi, aRows)
			x := make([]float64, hi-lo)
			st, err := DistCG(c, op, b[lo:hi], x, bj, Options{MaxIter: 100000}, nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				iters = st.Iterations
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return iters
	}
	if i2, i8 := itersAt(2), itersAt(8); i8 <= i2 {
		t.Fatalf("block-Jacobi did not degrade: %d iters at 2 ranks vs %d at 8", i2, i8)
	}
}

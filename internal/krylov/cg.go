// Package krylov implements the Conjugate Gradient solver of the paper —
// serial and distributed-memory variants — together with the preconditioner
// application interfaces the FSAI family plugs into. The distributed solver
// mirrors the paper's MPI parallelization: the matrix and vectors are
// distributed by rows, SpMV performs a halo update, and dot products reduce
// globally.
package krylov

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

// ErrNoConvergence is wrapped by solver errors when the iteration limit is
// reached before the residual tolerance.
var ErrNoConvergence = errors.New("krylov: no convergence within iteration limit")

// ErrCanceled is wrapped by solver errors when Options.Ctx is canceled (or
// its deadline passes) before the solve finishes. The partial Stats
// accumulated so far — iterations, residual, flops, trace — are still
// returned alongside the error.
var ErrCanceled = errors.New("krylov: solve canceled")

// ErrBreakdown is wrapped by solver errors when the CG recurrence breaks
// down: dᵀAd (or a recurrence denominator) is non-positive — the matrix or
// preconditioner is not SPD — or a residual/reduction scalar turns NaN/Inf.
// Every loop detects both conditions and stops immediately with the partial
// Stats accumulated so far, instead of iterating to MaxIter on poisoned
// arithmetic. In distributed solves the detection needs no extra collective:
// the scalars are Allreduce results, bitwise identical on every rank, so all
// ranks reach the same verdict at the same iteration.
var ErrBreakdown = errors.New("krylov: CG breakdown")

// badCurv reports a broken-down curvature dᵀAd: non-positive, NaN or Inf.
// (!(v > 0) is false for NaN, which is exactly the trap we want.)
func badCurv(v float64) bool { return !(v > 0) || math.IsInf(v, 1) }

// nonfinite reports NaN or ±Inf.
func nonfinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// canceled is the once-per-iteration cancellation check. Serial solves
// (c == nil) just poll the context. Distributed solves must exit their
// collectives in lockstep, so the decision is itself collective: each rank
// contributes its local context state to an AllreduceMax and every rank
// sees the same verdict — one rank observing cancellation stops all of
// them at the same iteration boundary. Passing a nil Ctx keeps the solve
// loops collective-free and byte-for-byte identical to their metered
// baselines; when a context is supplied, every rank of the solve must
// supply one.
func canceled(c *simmpi.Comm, ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	if c == nil {
		return ctx.Err() != nil
	}
	var flag int64
	if ctx.Err() != nil {
		flag = 1
	}
	return c.AllreduceMaxInt64(flag)[0] != 0
}

// Options controls a CG solve.
type Options struct {
	// Tol is the relative residual reduction target; the paper uses 1e-8
	// ("reduction of the initial residual by eight orders of magnitude").
	Tol float64
	// MaxIter caps iterations. Default 10·n.
	MaxIter int
	// RecordResiduals makes Stats.Residuals hold the relative residual
	// after every iteration (costs one float per iteration).
	RecordResiduals bool
	// Variant selects the communication structure of the distributed loop
	// (classic, classic-overlap, fused or pipelined). The zero value is
	// CGClassic. Ignored by the serial solver.
	Variant CGVariant
	// Work, when non-nil, supplies the iteration vectors so repeated solves
	// allocate nothing in steady state. In distributed runs each rank must
	// pass its own Workspace.
	Work *Workspace
	// Trace records per-iteration telemetry (relative residual, α/β and the
	// rank's communication deltas) into Stats.Trace. Off by default; when
	// off the solve paths do no telemetry work and allocate nothing extra.
	Trace bool
	// Ctx, when non-nil, cancels the solve: every loop checks it once per
	// iteration and returns an ErrCanceled-wrapped error with the partial
	// Stats accumulated so far. In distributed solves the check is a
	// collective (an extra AllreduceMax per iteration), so all ranks of a
	// solve must either pass a context or none — and the communication
	// metering of a context-free solve is unchanged.
	Ctx context.Context
	// Restart is the GMRES restart length m — the Krylov basis is rebuilt
	// from the true residual every m inner iterations. Zero means 30.
	// Ignored by the CG solvers.
	Restart int
	// ResidualReplaceEvery > 0 makes the pipelined loop recompute r = b − A·x
	// (and the dependent recurrence vectors) every that-many iterations,
	// arresting the rounding drift of the deeply rearranged recurrence on
	// ill-conditioned instances at the price of extra halo traffic — no
	// extra collectives. Zero (the default) disables replacement. Ignored by
	// the other variants, whose recurrences track the true residual closely.
	ResidualReplaceEvery int
}

func (o Options) withDefaults(n int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	return o
}

// Stats reports the outcome of a solve.
type Stats struct {
	Iterations  int
	Converged   bool
	RelResidual float64 // final ‖r‖/‖r₀‖
	Flops       int64   // this rank's flops (global flops in serial runs)
	// Refinements is the number of FP64 iterative-refinement steps a
	// mixed-precision solve performed; 0 for plain FP64 solves. Iterations
	// then counts the total inner iterations across all steps.
	Refinements int
	// Residuals holds the per-iteration relative residuals when
	// Options.RecordResiduals is set.
	Residuals []float64
	// Trace is the rank's per-iteration telemetry when Options.Trace is set,
	// nil otherwise.
	Trace *IterTrace
}

// Preconditioner applies z ← M·r in the serial solver. Implementations must
// tolerate aliasing-free distinct r and z slices of equal length.
type Preconditioner interface {
	Apply(r, z []float64, fc *vecops.FlopCounter)
}

// Identity is the "no preconditioner" preconditioner.
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(r, z []float64, fc *vecops.FlopCounter) { copy(z, r) }

// Jacobi is diagonal scaling, the cheapest classical baseline.
type Jacobi struct{ InvDiag []float64 }

// NewJacobi builds a Jacobi preconditioner from the matrix diagonal.
func NewJacobi(a *sparse.CSR) (*Jacobi, error) {
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("krylov: Jacobi: zero diagonal at %d", i)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{InvDiag: inv}, nil
}

// Apply computes z = D⁻¹ r.
func (j *Jacobi) Apply(r, z []float64, fc *vecops.FlopCounter) {
	for i := range r {
		z[i] = r[i] * j.InvDiag[i]
	}
	fc.Add(int64(len(r)))
}

// Split applies the factorized approximate inverse z = Gᵀ(G·r), the
// preconditioning operation of FSAI/FSAIE/FSAIE-Comm in the serial solver.
type Split struct {
	G, GT *sparse.CSR
	w     []float64
}

// NewSplit builds the split preconditioner from the FSAI factor G (lower
// triangular) and its transpose.
func NewSplit(g, gt *sparse.CSR) *Split {
	return &Split{G: g, GT: gt, w: make([]float64, g.Rows)}
}

// Apply computes z = Gᵀ(G·r).
func (s *Split) Apply(r, z []float64, fc *vecops.FlopCounter) {
	s.G.MulVec(r, s.w)
	s.GT.MulVec(s.w, z)
	fc.Add(2 * int64(s.G.NNZ()+s.GT.NNZ()))
}

// matVec is the serial operator the CG loop needs: a matrix-vector product
// and an entry count for flop accounting. Both sparse.CSR and sparse.CSR32
// satisfy it, which is how the mixed-precision inner solves reuse the exact
// same loop.
type matVec interface {
	MulVec(x, y []float64)
	NNZ() int
}

// CG solves A x = b with preconditioned conjugate gradients, starting from
// the zero initial guess (as the paper's experiments do). x is overwritten
// with the solution; pass a zeroed slice.
func CG(a *sparse.CSR, b, x []float64, m Preconditioner, opt Options, fc *vecops.FlopCounter) (Stats, error) {
	return cgSerial(a, a.Rows, b, x, m, opt, fc)
}

// cgSerial is the serial classic-CG loop over any matVec operator.
func cgSerial(a matVec, n int, b, x []float64, m Preconditioner, opt Options, fc *vecops.FlopCounter) (Stats, error) {
	opt = opt.withDefaults(n)
	if m == nil {
		m = Identity{}
	}
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	r, z, d, q := ws.take4(n)
	copy(r, b) // r = b - A·0 = b
	tr := newTracer(opt.Trace, nil)

	norm0 := vecops.Norm2(r, fc)
	if norm0 == 0 {
		vecops.Fill(x, 0)
		return finish(Stats{Iterations: 0, Converged: true, RelResidual: 0}, fc, tr), nil
	}
	m.Apply(r, z, fc)
	copy(d, z)
	rho := vecops.Dot(r, z, fc)
	tr.setup()

	st := Stats{}
	beta := 0.0 // the β that built this iteration's direction d
	for iter := 1; iter <= opt.MaxIter; iter++ {
		if canceled(nil, opt.Ctx) {
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d: %v", ErrCanceled, iter, opt.Ctx.Err())
		}
		a.MulVec(d, q)
		fc.Add(2 * int64(a.NNZ()))
		dq := vecops.Dot(d, q, fc)
		if badCurv(dq) {
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (dᵀAd = %g); matrix not SPD?", ErrBreakdown, iter, dq)
		}
		alpha := rho / dq
		vecops.Axpy(alpha, d, x, fc)
		vecops.Axpy(-alpha, q, r, fc)
		rnorm := vecops.Norm2(r, fc)
		if nonfinite(rnorm) {
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (‖r‖ = %g)", ErrBreakdown, iter, rnorm)
		}
		st.Iterations = iter
		st.RelResidual = rnorm / norm0
		if opt.RecordResiduals {
			st.Residuals = append(st.Residuals, st.RelResidual)
		}
		if st.RelResidual <= opt.Tol {
			st.Converged = true
			tr.record(iter, st.RelResidual, alpha, beta)
			return finish(st, fc, tr), nil
		}
		m.Apply(r, z, fc)
		rhoNew := vecops.Dot(r, z, fc)
		if nonfinite(rhoNew) {
			tr.record(iter, st.RelResidual, alpha, beta)
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (rᵀMr = %g); preconditioner not finite?", ErrBreakdown, iter, rhoNew)
		}
		tr.record(iter, st.RelResidual, alpha, beta)
		beta = rhoNew / rho
		rho = rhoNew
		vecops.Xpay(z, beta, d, fc)
	}
	st = finish(st, fc, tr)
	return st, fmt.Errorf("%w: %d iterations, rel residual %.3e", ErrNoConvergence, st.Iterations, st.RelResidual)
}

// DistPreconditioner applies z ← M·r on a rank's local slice, communicating
// as needed. Implementations are collective: every rank must call Apply the
// same number of times.
type DistPreconditioner interface {
	Apply(c *simmpi.Comm, r, z []float64, fc *vecops.FlopCounter)
}

// DistIdentity is the distributed no-op preconditioner.
type DistIdentity struct{}

// Apply copies r into z (no communication).
func (DistIdentity) Apply(c *simmpi.Comm, r, z []float64, fc *vecops.FlopCounter) { copy(z, r) }

// DistSplit applies z = Gᵀ(G·r) with distributed G and Gᵀ, each with its own
// halo plan — the two preconditioning SpMVs of the paper.
type DistSplit struct {
	G, GT  *distmat.Op
	wG     *distmat.DistVec
	wGT    *distmat.DistVec
	interm []float64
}

// NewDistSplit builds the distributed split preconditioner from the local
// operators for G and Gᵀ.
func NewDistSplit(g, gt *distmat.Op) *DistSplit {
	return &DistSplit{
		G:      g,
		GT:     gt,
		wG:     distmat.NewDistVec(g.LZ),
		wGT:    distmat.NewDistVec(gt.LZ),
		interm: make([]float64, g.LZ.NLocal()),
	}
}

// Apply computes the local slice of z = Gᵀ(G·r). When the operators were
// built with the overlap view (distmat.WithOverlap), the two SpMVs run in
// the send-then-compute schedule; the result is bit-identical either way.
func (s *DistSplit) Apply(c *simmpi.Comm, r, z []float64, fc *vecops.FlopCounter) {
	mulDist(c, s.G, r, s.interm, s.wG, fc)
	mulDist(c, s.GT, s.interm, z, s.wGT, fc)
}

// mulDist runs one distributed SpMV, using the overlap schedule when the
// operator carries it.
func mulDist(c *simmpi.Comm, op *distmat.Op, x, y []float64, scratch *distmat.DistVec, fc *vecops.FlopCounter) {
	if ov := op.Overlap(); ov != nil {
		ov.MulVecOverlap(c, x, y, scratch, fc)
		return
	}
	op.MulVec(c, x, y, scratch, fc)
}

// DistCG solves A x = b in the distributed setting. Every rank passes its
// local slices of b and x (x zeroed); all ranks receive identical Stats.
// The operator op must be built over the same layout as b/x.
// Options.Variant selects the loop: CGClassic and CGClassicOverlap run the
// textbook recurrence (three reductions per iteration) with the blocking or
// overlapped SpMV schedule respectively; CGFused dispatches to DistCGFused
// and CGPipelined to DistCGPipelined.
func DistCG(c *simmpi.Comm, op *distmat.Op, b, x []float64, m DistPreconditioner, opt Options, fc *vecops.FlopCounter) (Stats, error) {
	switch opt.Variant {
	case CGFused:
		return DistCGFused(c, op, b, x, m, opt, fc)
	case CGPipelined:
		return DistCGPipelined(c, op, b, x, m, opt, fc)
	}
	tr := newTracer(opt.Trace, c)
	nl := op.LZ.NLocal()
	nGlobal := int(c.AllreduceSumInt64(int64(nl))[0])
	opt = opt.withDefaults(nGlobal)
	if m == nil {
		m = DistIdentity{}
	}
	if len(b) != nl || len(x) != nl {
		panic(fmt.Sprintf("krylov: DistCG local length %d/%d, want %d", len(b), len(x), nl))
	}
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	r, z, d, q := ws.take4(nl)
	copy(r, b)
	scratch := ws.distScratch(op.LZ)
	var ov *distmat.OverlapOp
	if opt.Variant == CGClassicOverlap {
		ov = op.EnsureOverlap()
	}

	norm0 := distmat.Norm2(c, r, fc)
	if norm0 == 0 {
		vecops.Fill(x, 0)
		return finish(Stats{Converged: true}, fc, tr), nil
	}
	m.Apply(c, r, z, fc)
	copy(d, z)
	rho := distmat.Dot(c, r, z, fc)
	tr.setup()

	st := Stats{}
	beta := 0.0 // the β that built this iteration's direction d
	for iter := 1; iter <= opt.MaxIter; iter++ {
		if canceled(c, opt.Ctx) {
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d", ErrCanceled, iter)
		}
		if ov != nil {
			ov.MulVecOverlap(c, d, q, scratch, fc)
		} else {
			op.MulVec(c, d, q, scratch, fc)
		}
		dq := distmat.Dot(c, d, q, fc)
		if badCurv(dq) {
			// dq is an Allreduce result — identical on every rank — so this
			// return is itself the collective verdict: all ranks stop here.
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (dᵀAd = %g); matrix not SPD?", ErrBreakdown, iter, dq)
		}
		alpha := rho / dq
		vecops.Axpy(alpha, d, x, fc)
		vecops.Axpy(-alpha, q, r, fc)
		rnorm := distmat.Norm2(c, r, fc)
		if nonfinite(rnorm) {
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (‖r‖ = %g)", ErrBreakdown, iter, rnorm)
		}
		st.Iterations = iter
		st.RelResidual = rnorm / norm0
		if opt.RecordResiduals {
			st.Residuals = append(st.Residuals, st.RelResidual)
		}
		if st.RelResidual <= opt.Tol {
			st.Converged = true
			tr.record(iter, st.RelResidual, alpha, beta)
			return finish(st, fc, tr), nil
		}
		m.Apply(c, r, z, fc)
		rhoNew := distmat.Dot(c, r, z, fc)
		if nonfinite(rhoNew) {
			tr.record(iter, st.RelResidual, alpha, beta)
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (rᵀMr = %g); preconditioner not finite?", ErrBreakdown, iter, rhoNew)
		}
		tr.record(iter, st.RelResidual, alpha, beta)
		beta = rhoNew / rho
		rho = rhoNew
		vecops.Xpay(z, beta, d, fc)
	}
	st = finish(st, fc, tr)
	return st, fmt.Errorf("%w: %d iterations, rel residual %.3e", ErrNoConvergence, st.Iterations, st.RelResidual)
}

package krylov

// The fused-reduction (Chronopoulos–Gear) Conjugate Gradient variant. The
// classic PCG loop performs three global reductions per iteration — dᵀq,
// ‖r‖² and rᵀz — each a separate latency-bound Allreduce. Rearranging the
// recurrence lets all three scalars of an iteration be computed back to
// back and reduced in a single variadic AllreduceSum, cutting the
// collective count per iteration from 3 to 1 while leaving the Krylov
// space — and therefore the iteration count, up to floating-point rounding
// — unchanged. The SpMV is driven through the interior/boundary overlap
// schedule so halo sends are in flight while interior rows are computed,
// and the vector updates run as fused one-pass kernels (vecops.Dot2,
// vecops.FusedCGUpdate) so each iteration streams every vector once.

import (
	"fmt"
	"math"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/vecops"
)

// CGVariant selects the communication structure of the distributed CG loop.
type CGVariant int

const (
	// CGClassic is the textbook PCG loop: blocking SpMV and three global
	// reductions per iteration. The default, and the reference the other
	// variants are cross-checked against.
	CGClassic CGVariant = iota
	// CGClassicOverlap keeps the classic recurrence but drives the SpMV
	// through the interior/boundary overlap schedule (halo sends posted
	// before interior rows are computed). Bit-identical results to
	// CGClassic; only the communication schedule differs.
	CGClassicOverlap
	// CGFused is the Chronopoulos–Gear fused-reduction recurrence: one
	// Allreduce of three scalars per iteration, overlapped SpMV and fused
	// one-pass vector kernels. Same Krylov space as CGClassic; iteration
	// counts may differ by ±1 from rounding (see DESIGN.md).
	CGFused
	// CGPipelined is the Ghysels–Vanroose pipelined recurrence: the single
	// reduction of the fused loop becomes a nonblocking IallreduceSum whose
	// flight time is covered by the next preconditioner apply and SpMV, so
	// no rank ever idles in a collective. Same Krylov space as CGClassic;
	// iteration counts may differ by ±2 from the deeper scalar recurrence
	// rearrangement (see DESIGN.md §4d).
	CGPipelined
)

// String returns the flag spelling of the variant.
func (v CGVariant) String() string {
	switch v {
	case CGClassic:
		return "classic"
	case CGClassicOverlap:
		return "classic-overlap"
	case CGFused:
		return "fused"
	case CGPipelined:
		return "pipelined"
	default:
		return fmt.Sprintf("CGVariant(%d)", int(v))
	}
}

// ParseCGVariant parses the -cg flag spellings: "classic",
// "classic-overlap", "fused", "pipelined". The empty string is CGClassic.
func ParseCGVariant(s string) (CGVariant, error) {
	switch s {
	case "", "classic":
		return CGClassic, nil
	case "classic-overlap", "overlap":
		return CGClassicOverlap, nil
	case "fused":
		return CGFused, nil
	case "pipelined":
		return CGPipelined, nil
	default:
		return CGClassic, fmt.Errorf("krylov: unknown CG variant %q (want classic, classic-overlap, fused or pipelined)", s)
	}
}

// Workspace holds a solver's iteration vectors so repeated solves reuse
// them instead of reallocating: the experiment sweeps call the solver once
// per matrix × pattern × ablation cell, and with a shared Workspace the
// steady state allocates nothing per solve. The zero value is ready to
// use; buffers grow on demand and are reused when sizes match. A Workspace
// serves one solve at a time — in distributed runs each rank needs its own
// (pass it via Options.Work when constructing per-rank Options).
type Workspace struct {
	r, z, d, q, s []float64
	// pz, pq, pm, pn are the four extra recurrence vectors of the pipelined
	// variant (z, q, m, n in Ghysels–Vanroose notation).
	pz, pq, pm, pn []float64
	// gv is the GMRES Krylov basis (Restart+1 vectors of local length);
	// gh/gc/gs/gg/gy are the small Hessenberg, Givens and solution buffers
	// of the restarted loop.
	gv                 [][]float64
	gh, gc, gs, gg, gy []float64
	scratch            *distmat.DistVec
}

func grow(v *[]float64, n int) []float64 {
	if cap(*v) < n {
		*v = make([]float64, n)
	}
	*v = (*v)[:n]
	return *v
}

// take4 returns the four classic-CG vectors (r, z, d, q) of length n.
func (ws *Workspace) take4(n int) (r, z, d, q []float64) {
	return grow(&ws.r, n), grow(&ws.z, n), grow(&ws.d, n), grow(&ws.q, n)
}

// take5 returns the five fused-CG vectors (r, u, w, p, s) of length n; u,
// w, p alias the classic z, q, d slots so the two variants share storage.
func (ws *Workspace) take5(n int) (r, u, w, p, s []float64) {
	return grow(&ws.r, n), grow(&ws.z, n), grow(&ws.q, n), grow(&ws.d, n), grow(&ws.s, n)
}

// take9 returns the nine pipelined-CG vectors (r, u, w, p, s, z, q, m, n);
// the first five alias the fused-CG slots, the last four are the pipelined
// recurrence's own.
func (ws *Workspace) take9(nl int) (r, u, w, p, s, z, q, m, n []float64) {
	r, u, w, p, s = ws.take5(nl)
	return r, u, w, p, s,
		grow(&ws.pz, nl), grow(&ws.pq, nl), grow(&ws.pm, nl), grow(&ws.pn, nl)
}

// takeGMRES returns the restarted-GMRES buffers for local length nl and
// restart m: the residual/precondition/work vectors, the m+1 basis vectors,
// and the small (m+1)×m Hessenberg (row-major flat), Givens cosine/sine,
// rotated-RHS and solution buffers.
func (ws *Workspace) takeGMRES(nl, m int) (r, z, w []float64, v [][]float64, h, cs, sn, g, y []float64) {
	r, z, w = grow(&ws.r, nl), grow(&ws.z, nl), grow(&ws.q, nl)
	if cap(ws.gv) < m+1 {
		ws.gv = append(ws.gv[:cap(ws.gv)], make([][]float64, m+1-cap(ws.gv))...)
	}
	ws.gv = ws.gv[:m+1]
	for i := range ws.gv {
		ws.gv[i] = growSlice(ws.gv[i], nl)
	}
	return r, z, w, ws.gv,
		grow(&ws.gh, (m+1)*m), grow(&ws.gc, m), grow(&ws.gs, m),
		grow(&ws.gg, m+1), grow(&ws.gy, m)
}

func growSlice(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// distScratch returns a halo-extended vector compatible with lz, reusing
// the previous one when the layout matches.
func (ws *Workspace) distScratch(lz *distmat.Localized) *distmat.DistVec {
	need := lz.NLocal() + len(lz.HaloSet())
	if ws.scratch == nil || ws.scratch.NLocal != lz.NLocal() || len(ws.scratch.Ext) != need {
		ws.scratch = distmat.NewDistVec(lz)
	}
	return ws.scratch
}

// DistCGFused solves A x = b with the fused-reduction (Chronopoulos–Gear)
// preconditioned CG recurrence. Per iteration it performs exactly one
// collective — AllreduceSum(rᵀu, wᵀu, ‖r‖²) — against the classic loop's
// three, with byte-identical halo traffic and unchanged neighbour sets
// (asserted by the metered tests). The SpMV uses the overlap schedule. In
// exact arithmetic the iterates equal classic PCG's; in floating point the
// rearranged scalar recurrences
//
//	β_i = γ_i/γ_{i−1},  α_i = γ_i/(δ_i − β_i·γ_i/α_{i−1})
//
// round differently, so iteration counts may shift by ±1.
func DistCGFused(c *simmpi.Comm, op *distmat.Op, b, x []float64, m DistPreconditioner, opt Options, fc *vecops.FlopCounter) (Stats, error) {
	tr := newTracer(opt.Trace, c)
	nl := op.LZ.NLocal()
	nGlobal := int(c.AllreduceSumInt64(int64(nl))[0])
	opt = opt.withDefaults(nGlobal)
	if m == nil {
		m = DistIdentity{}
	}
	if len(b) != nl || len(x) != nl {
		panic(fmt.Sprintf("krylov: DistCGFused local length %d/%d, want %d", len(b), len(x), nl))
	}
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	r, u, w, p, s := ws.take5(nl)
	scratch := ws.distScratch(op.LZ)
	ov := op.EnsureOverlap()

	copy(r, b)
	vecops.Fill(p, 0)
	vecops.Fill(s, 0)
	m.Apply(c, r, u, fc)
	ov.MulVecOverlap(c, u, w, scratch, fc)
	ruL, wuL := vecops.Dot2(r, u, w, fc)
	rrL := vecops.Dot(r, r, fc)
	g := c.AllreduceSum(ruL, wuL, rrL)
	gamma, delta, rr := g[0], g[1], g[2]
	if rr == 0 {
		vecops.Fill(x, 0)
		return finish(Stats{Converged: true}, fc, tr), nil
	}
	norm0 := math.Sqrt(rr)
	if badCurv(gamma) || badCurv(delta) {
		return finish(Stats{}, fc, tr), fmt.Errorf("%w at DistCGFused setup (rᵀMr = %g, uᵀAu = %g); matrix or preconditioner not SPD?", ErrBreakdown, gamma, delta)
	}
	alpha := gamma / delta
	beta := 0.0
	tr.setup()

	st := Stats{}
	for iter := 1; iter <= opt.MaxIter; iter++ {
		if canceled(c, opt.Ctx) {
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d", ErrCanceled, iter)
		}
		// p ← u + βp, s ← w + βs, x ← x + αp, r ← r − αs, and the local
		// ‖r‖² contribution, all in one sweep.
		rrL := vecops.FusedCGUpdate(alpha, beta, u, w, p, s, x, r, fc)
		m.Apply(c, r, u, fc)
		ov.MulVecOverlap(c, u, w, scratch, fc)
		ruL, wuL := vecops.Dot2(r, u, w, fc)
		// The single collective of the iteration.
		g := c.AllreduceSum(ruL, wuL, rrL)
		gammaNew, delta, rr := g[0], g[1], g[2]
		if nonfinite(rr) || nonfinite(gammaNew) {
			// Allreduce results are rank-identical: collective verdict.
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (‖r‖² = %g, rᵀMr = %g)", ErrBreakdown, iter, rr, gammaNew)
		}
		st.Iterations = iter
		st.RelResidual = math.Sqrt(rr) / norm0
		if opt.RecordResiduals {
			st.Residuals = append(st.Residuals, st.RelResidual)
		}
		if st.RelResidual <= opt.Tol {
			st.Converged = true
			tr.record(iter, st.RelResidual, alpha, beta)
			return finish(st, fc, tr), nil
		}
		// Record before α/β advance: the pass's traffic (apply, SpMV,
		// Allreduce) is complete here, and α/β are still the scalars of the
		// update that produced this iteration's residual.
		tr.record(iter, st.RelResidual, alpha, beta)
		beta = gammaNew / gamma
		denom := delta - beta*gammaNew/alpha
		if badCurv(denom) {
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (recurrence denominator %g); matrix not SPD?", ErrBreakdown, iter, denom)
		}
		alpha = gammaNew / denom
		gamma = gammaNew
	}
	st = finish(st, fc, tr)
	return st, fmt.Errorf("%w: %d iterations, rel residual %.3e", ErrNoConvergence, st.Iterations, st.RelResidual)
}

package krylov

import (
	"testing"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

// tracedSolve runs DistCG on nranks ranks and returns the assembled
// solution, every rank's Stats (with traces when opt.Trace is set) and
// every rank's metered traffic across the DistCG call — snapshotted on the
// rank's own goroutine right before and after the solve (sends are charged
// at post time on the sender, so a rank's own row is consistent there).
// That delta is what the traces must conserve.
func tracedSolve(t *testing.T, a *sparse.CSR, b []float64, nranks int, opt Options) ([]float64, []Stats, []CommDelta) {
	t.Helper()
	n := a.Rows
	l := distmat.NewUniformLayout(n, nranks)
	x := make([]float64, n)
	sts := make([]Stats, nranks)
	totals := make([]CommDelta, nranks)
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		xl := make([]float64, hi-lo)
		pre := c.Meter().RankSnapshot(c.Rank())
		st, err := DistCG(c, op, b[lo:hi], xl, nil, opt, nil)
		if err != nil {
			return err
		}
		d := c.Meter().RankSnapshot(c.Rank()).Sub(pre)
		totals[c.Rank()] = CommDelta{
			CollectiveCalls: d.CollectiveCalls,
			CollectiveBytes: d.CollectiveBytes,
			P2PBytes:        d.P2PBytes,
			P2PMessages:     d.P2PMessages,
		}
		sts[c.Rank()] = st
		copy(x[lo:hi], xl)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return x, sts, totals
}

// The tentpole conservation property: with tracing on, every rank's Setup
// delta plus its per-iteration deltas sum exactly to the rank's metered
// totals — both of the traced run and of an untraced run of the same solve
// — and tracing perturbs nothing: the solution is bit-identical and the
// iteration count unchanged. Checked for all four distributed variants,
// plus the pipelined loop with residual replacement (whose extra halo
// exchanges must land in the iteration deltas too).
func TestTraceMeterConservation(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	b := matgen.RandomRHS(a.Rows, 21, a.MaxNorm())
	const nranks = 4
	cases := []struct {
		name string
		opt  Options
	}{
		{"classic", Options{}},
		{"classic-overlap", Options{Variant: CGClassicOverlap}},
		{"fused", Options{Variant: CGFused}},
		{"pipelined", Options{Variant: CGPipelined}},
		{"pipelined-rr", Options{Variant: CGPipelined, ResidualReplaceEvery: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			xu, stu, totu := tracedSolve(t, a, b, nranks, tc.opt)
			opt := tc.opt
			opt.Trace = true
			xt, stt, tott := tracedSolve(t, a, b, nranks, opt)
			if stu[0].Trace != nil {
				t.Fatal("untraced run carries a trace")
			}
			for i := range xu {
				if xu[i] != xt[i] {
					t.Fatalf("tracing changed x[%d]: %v vs %v", i, xu[i], xt[i])
				}
			}
			for r := 0; r < nranks; r++ {
				if stt[r].Iterations != stu[r].Iterations {
					t.Fatalf("rank %d: tracing changed iterations %d -> %d", r, stu[r].Iterations, stt[r].Iterations)
				}
				tr := stt[r].Trace
				if tr == nil || tr.Rank != r {
					t.Fatalf("rank %d: missing or misattributed trace: %+v", r, tr)
				}
				if len(tr.Iters) != stt[r].Iterations {
					t.Fatalf("rank %d: %d trace records for %d iterations", r, len(tr.Iters), stt[r].Iterations)
				}
				if got := tr.Total(); got != tott[r] {
					t.Fatalf("rank %d: trace total %+v != traced-run meter %+v", r, got, tott[r])
				}
				if got := tr.Total(); got != totu[r] {
					t.Fatalf("rank %d: trace total %+v != untraced-run meter %+v", r, got, totu[r])
				}
			}
			// The records carry the solve's numerics, not just traffic: the
			// final record's residual is the converged one and every α > 0
			// (SPD system), with β = 0 only allowed on the first record.
			tr := stt[0].Trace
			last := tr.Iters[len(tr.Iters)-1]
			if last.RelResidual != stt[0].RelResidual || last.Iter != stt[0].Iterations {
				t.Fatalf("last record %+v does not match Stats %+v", last, stt[0])
			}
			for i, rec := range tr.Iters {
				if rec.Alpha <= 0 {
					t.Fatalf("record %d: alpha %g not positive", i, rec.Alpha)
				}
				if i > 1 && rec.Beta <= 0 {
					t.Fatalf("record %d: beta %g not positive", i, rec.Beta)
				}
			}
		})
	}
}

// The serial solver records the same trace shape with all-zero comm deltas.
func TestTraceSerialCG(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	b := matgen.RandomRHS(a.Rows, 5, a.MaxNorm())
	x := make([]float64, a.Rows)
	st, err := CG(a, b, x, nil, Options{Trace: true}, nil)
	if err != nil || !st.Converged {
		t.Fatalf("serial CG: %+v, %v", st, err)
	}
	if st.Trace == nil || st.Trace.Rank != 0 || len(st.Trace.Iters) != st.Iterations {
		t.Fatalf("serial trace wrong: %+v", st.Trace)
	}
	if tot := st.Trace.Total(); tot != (CommDelta{}) {
		t.Fatalf("serial solve reported communication: %+v", tot)
	}
	x2 := make([]float64, a.Rows)
	st2, err := CG(a, b, x2, nil, Options{}, nil)
	if err != nil || st2.Trace != nil {
		t.Fatalf("untraced serial solve carries trace: %+v, %v", st2.Trace, err)
	}
}

// Every early-exit path of every variant must report the same Stats shape
// as normal convergence: the flop count accumulated so far and the attached
// trace. This is the table over the shared finalize helper.
func TestStatsFinalizeEarlyExits(t *testing.T) {
	// diag(1, 1, 1, -4): indefinite, so classic breaks at its first dᵀAd
	// and fused/pipelined at the setup uᵀAu.
	co := sparse.NewCOO(4, 4)
	for i := 0; i < 3; i++ {
		co.Add(i, i, 1)
	}
	co.Add(3, 3, -4)
	indef := co.ToCSR()
	ones := []float64{1, 1, 1, 1}

	variants := []CGVariant{CGClassic, CGClassicOverlap, CGFused, CGPipelined}
	cases := []struct {
		name     string
		a        *sparse.CSR
		b        []float64
		wantErr  bool
		wantConv bool
	}{
		{"zero-rhs", matgen.Poisson2D(4, 4), make([]float64, 16), false, true},
		{"breakdown", indef, ones, true, false},
	}
	for _, tc := range cases {
		for _, v := range variants {
			t.Run(tc.name+"/"+v.String(), func(t *testing.T) {
				n := tc.a.Rows
				l := distmat.NewUniformLayout(n, 2)
				sts := make([]Stats, 2)
				errs := make([]error, 2)
				_, err := simmpi.Run(2, testTimeout, func(c *simmpi.Comm) error {
					lo, hi := l.Range(c.Rank())
					op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(tc.a, lo, hi))
					x := make([]float64, hi-lo)
					fc := &vecops.FlopCounter{}
					st, serr := DistCG(c, op, tc.b[lo:hi], x, nil, Options{Variant: v, Trace: true}, fc)
					sts[c.Rank()], errs[c.Rank()] = st, serr
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for r, st := range sts {
					if (errs[r] != nil) != tc.wantErr {
						t.Fatalf("rank %d: err = %v, want error %v", r, errs[r], tc.wantErr)
					}
					if st.Converged != tc.wantConv || (tc.wantConv && st.Iterations != 0) {
						t.Fatalf("rank %d: stats %+v", r, st)
					}
					// The finalize helper must stamp Flops and Trace on every
					// path — the original bug dropped Flops on the pipelined
					// early exits.
					if st.Flops <= 0 {
						t.Fatalf("rank %d: early exit dropped Flops: %+v", r, st)
					}
					if st.Trace == nil {
						t.Fatalf("rank %d: early exit dropped Trace", r)
					}
				}
			})
		}
		// Serial CG shares the helper through the same return discipline.
		t.Run(tc.name+"/serial", func(t *testing.T) {
			x := make([]float64, tc.a.Rows)
			fc := &vecops.FlopCounter{}
			st, err := CG(tc.a, tc.b, x, nil, Options{Trace: true}, fc)
			if (err != nil) != tc.wantErr || st.Converged != tc.wantConv {
				t.Fatalf("serial: %+v, %v", st, err)
			}
			if st.Flops <= 0 || st.Trace == nil {
				t.Fatalf("serial early exit dropped Flops/Trace: %+v", st)
			}
		})
	}
}

package krylov

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/spai"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

func TestParseSolver(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Solver
		ok   bool
	}{
		{"", SolverCG, true},
		{"cg", SolverCG, true},
		{"gmres", SolverGMRES, true},
		{"minres", SolverCG, false},
	} {
		got, err := ParseSolver(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSolver(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SolverGMRES.String() != "gmres" || SolverCG.String() != "cg" {
		t.Error("Solver.String mismatch")
	}
}

func TestGMRESConvDiffConverges(t *testing.T) {
	// A Péclet-skewed convection–diffusion instance — the nonsymmetric
	// workload CG cannot handle — solved to a tight tolerance and verified
	// against the true residual.
	a := matgen.ConvectionDiffusion2D(16, 16, 8)
	b := matgen.UnitRHS(a.Rows, 1)
	x := make([]float64, a.Rows)
	st, err := GMRES(a, b, x, nil, Options{Tol: 1e-10, Restart: 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("not converged")
	}
	bnorm := vecops.Norm2(b, nil)
	if res := residual(a, x, b) / bnorm; res > 1e-9 {
		t.Fatalf("true rel residual %g", res)
	}
	if math.Abs(st.RelResidual-residual(a, x, b)/bnorm) > 1e-8 {
		t.Fatalf("estimate %g vs true %g drifted", st.RelResidual, residual(a, x, b)/bnorm)
	}
}

// TestGMRESConvergesWhereCGFSAIFails is the acceptance pin of the
// nonsymmetric axis at the solver level (the facade rejects the matrix
// before CG ever runs — this drives the raw loops): CG with FSAI factors
// built from the nonsymmetric operator must break down or stall, while
// SPAI+GMRES solves the same system to tolerance.
func TestGMRESConvergesWhereCGFSAIFails(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(16, 16, 10)
	b := matgen.UnitRHS(a.Rows, 2)

	// CG + FSAI on the nonsymmetric operator: the factorization may already
	// fail; if it produces factors, the solve must not reach the tolerance.
	cgFailed := false
	g, err := fsai.Build(a, fsai.LowerPattern(a))
	if err != nil {
		cgFailed = true
	} else {
		x := make([]float64, a.Rows)
		st, err := CG(a, b, x, NewSplit(g, g.Transpose()), Options{Tol: 1e-8, MaxIter: 10 * a.Rows}, nil)
		switch {
		case errors.Is(err, ErrBreakdown), errors.Is(err, ErrNoConvergence):
			cgFailed = true
		case err != nil:
			cgFailed = true
		default:
			// Converged by its own estimate: the drifted recurrence on a
			// nonsymmetric operator must still miss the true residual.
			cgFailed = !st.Converged ||
				residual(a, x, b)/vecops.Norm2(b, nil) > 1e-6
		}
	}
	if !cgFailed {
		t.Fatal("CG+FSAI solved the nonsymmetric system; the axis split is pointless")
	}

	m, err := spai.Build(a, spai.Options{Level: 1, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	st, err := GMRES(a, b, x, &MatPrecond{M: m}, Options{Tol: 1e-8, Restart: 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("spai+gmres did not converge in %d iterations", st.Iterations)
	}
	if res := residual(a, x, b) / vecops.Norm2(b, nil); res > 1e-7 {
		t.Fatalf("spai+gmres true rel residual %g", res)
	}
}

func TestGMRESIdentityOneIteration(t *testing.T) {
	n := 50
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
	}
	a := c.ToCSR()
	b := matgen.UnitRHS(n, 2)
	x := make([]float64, n)
	st, err := GMRES(a, b, x, nil, Options{}, nil)
	if err != nil || !st.Converged || st.Iterations != 1 {
		t.Fatalf("identity solve: st=%+v err=%v", st, err)
	}
	for i := range x {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(5, 5, 3)
	b := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	st, err := GMRES(a, b, x, nil, Options{}, nil)
	if err != nil || !st.Converged || st.Iterations != 0 {
		t.Fatalf("zero RHS: st=%+v err=%v", st, err)
	}
}

func TestGMRESNoConvergence(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(20, 20, 50)
	b := matgen.UnitRHS(a.Rows, 3)
	x := make([]float64, a.Rows)
	st, err := GMRES(a, b, x, nil, Options{Tol: 1e-300, MaxIter: 7, Restart: 3}, nil)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if st.Iterations != 7 {
		t.Fatalf("iterations %d, want exactly MaxIter", st.Iterations)
	}
}

func TestGMRESBreakdownOnSingular(t *testing.T) {
	// A has a zero row: the Krylov space dies with a nonzero residual.
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, 0)
	a := c.ToCSR()
	b := []float64{0, 1}
	x := make([]float64, 2)
	_, err := GMRES(a, b, x, nil, Options{}, nil)
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
}

func TestGMRESCancellation(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(10, 10, 5)
	b := matgen.UnitRHS(a.Rows, 4)
	x := make([]float64, a.Rows)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GMRES(a, b, x, nil, Options{Ctx: ctx}, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestGMRESRecordResiduals(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(8, 8, 4)
	b := matgen.UnitRHS(a.Rows, 5)
	x := make([]float64, a.Rows)
	st, err := GMRES(a, b, x, nil, Options{RecordResiduals: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Residuals) != st.Iterations {
		t.Fatalf("%d residuals for %d iterations", len(st.Residuals), st.Iterations)
	}
	for i := 1; i < len(st.Residuals); i++ {
		if st.Residuals[i] > st.Residuals[i-1]+1e-12 {
			t.Fatalf("GMRES residual estimate increased at %d: %g -> %g", i, st.Residuals[i-1], st.Residuals[i])
		}
	}
}

// TestGMRESWorkspaceReuse checks repeated solves through one Workspace give
// bitwise-identical results to fresh allocations.
func TestGMRESWorkspaceReuse(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(12, 12, 6)
	b := matgen.UnitRHS(a.Rows, 6)
	x1 := make([]float64, a.Rows)
	st1, err1 := GMRES(a, b, x1, nil, Options{Restart: 10}, nil)
	ws := &Workspace{}
	for trial := 0; trial < 3; trial++ {
		x2 := make([]float64, a.Rows)
		st2, err2 := GMRES(a, b, x2, nil, Options{Restart: 10, Work: ws}, nil)
		if (err1 == nil) != (err2 == nil) || st1.Iterations != st2.Iterations {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, st1, st2)
		}
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("trial %d: x[%d] differs: %g vs %g", trial, i, x1[i], x2[i])
			}
		}
	}
}

// TestGMRESMatPrecondCutsIterations drives the SPAI application path: an
// explicit approximate inverse (here the exact inverse of the diagonal part)
// through MatPrecond must cut iterations on a badly scaled instance.
func TestGMRESMatPrecondCutsIterations(t *testing.T) {
	// Badly row-scaled convection–diffusion.
	base := matgen.ConvectionDiffusion2D(14, 14, 6)
	n := base.Rows
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		s := math.Pow(10, float64(i%5)-2)
		cols, vals := base.Row(i)
		for k, j := range cols {
			c.Add(i, j, s*vals[k])
		}
	}
	a := c.ToCSR()
	b := matgen.UnitRHS(n, 7)

	x0 := make([]float64, n)
	st0, err0 := GMRES(a, b, x0, nil, Options{Tol: 1e-8, Restart: 25}, nil)

	inv := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j == i {
				inv.Add(i, i, 1/vals[k])
			}
		}
	}
	m := &MatPrecond{M: inv.ToCSR()}
	x1 := make([]float64, n)
	st1, err1 := GMRES(a, b, x1, m, Options{Tol: 1e-8, Restart: 25}, nil)
	if err1 != nil {
		t.Fatal(err1)
	}
	if err0 == nil && st1.Iterations >= st0.Iterations {
		t.Fatalf("diagonal inverse did not help: %d vs %d iterations", st1.Iterations, st0.Iterations)
	}
	bnorm := vecops.Norm2(b, nil)
	if res := residual(a, x1, b) / bnorm; res > 1e-6 {
		t.Fatalf("preconditioned true rel residual %g", res)
	}
}

// TestDistGMRESMatchesSerial is the ±1 restart-cycle property test: the
// distributed loop evaluates the same recurrence with reductions summed in
// rank order instead of index order, so iteration counts may differ by at
// most one restart cycle and both solutions must satisfy the tolerance.
func TestDistGMRESMatchesSerial(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(20, 19, 10)
	n := a.Rows
	b := matgen.UnitRHS(n, 8)
	const restart = 15
	x := make([]float64, n)
	stSerial, err := GMRES(a, b, x, nil, Options{Tol: 1e-9, Restart: restart}, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, nranks := range []int{2, 4} {
		l := distmat.NewUniformLayout(n, nranks)
		got := make([]float64, n)
		stats := make([]Stats, nranks)
		_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
			xl := make([]float64, hi-lo)
			st, err := DistGMRES(c, op, b[lo:hi], xl, nil, Options{Tol: 1e-9, Restart: restart}, nil)
			if err != nil {
				return err
			}
			copy(got[lo:hi], xl)
			stats[c.Rank()] = st
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r < nranks; r++ {
			if stats[r].Iterations != stats[0].Iterations ||
				stats[r].Converged != stats[0].Converged ||
				stats[r].RelResidual != stats[0].RelResidual {
				t.Fatalf("%d ranks: stats differ across ranks: %+v vs %+v", nranks, stats[r], stats[0])
			}
		}
		if d := stats[0].Iterations - stSerial.Iterations; d > restart || d < -restart {
			t.Fatalf("%d ranks: %d iterations vs serial %d — more than one restart cycle apart", nranks, stats[0].Iterations, stSerial.Iterations)
		}
		bnorm := vecops.Norm2(b, nil)
		if res := residual(a, got, b) / bnorm; res > 1e-8 {
			t.Fatalf("%d ranks: true rel residual %g", nranks, res)
		}
	}
}

// TestDistGMRESCollectiveSchedule pins the distributed loop's collective
// count per iteration: Setup carries the size reduction plus the first
// cycle-top norm (2 calls); inner iteration j (0-based within its cycle)
// performs j+1 Gram–Schmidt dots plus one norm (j+2 calls); the first
// record of every later cycle additionally carries that cycle's top norm;
// and the final record absorbs the terminating restart check. A supplied
// context adds exactly one AllreduceMax per iteration.
func TestDistGMRESCollectiveSchedule(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(12, 12, 20)
	n := a.Rows
	b := matgen.UnitRHS(n, 9)
	const nranks = 4
	const restart = 4
	const maxIter = 6
	l := distmat.NewUniformLayout(n, nranks)

	run := func(ctx context.Context) []*IterTrace {
		t.Helper()
		traces := make([]*IterTrace, nranks)
		_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
			x := make([]float64, hi-lo)
			// Tol below attainable accuracy forces exactly MaxIter iterations.
			st, err := DistGMRES(c, op, b[lo:hi], x, nil,
				Options{Tol: 1e-300, MaxIter: maxIter, Restart: restart, Trace: true, Ctx: ctx}, nil)
			if !errors.Is(err, ErrNoConvergence) {
				return fmt.Errorf("want forced non-convergence, got %v", err)
			}
			traces[c.Rank()] = st.Trace
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return traces
	}

	// restart=4, maxIter=6: cycle 0 runs j=0..3, cycle 1 runs j=0..1.
	// Per-record collective calls (nil ctx): j+2 within the cycle, +1 on the
	// first record of cycle 1 (its top norm), +1 on the last record (the
	// terminating restart check folded in by the tail flush).
	want := []int64{2, 3, 4, 5, 2 + 1, 3 + 1}
	for _, withCtx := range []bool{false, true} {
		var ctx context.Context
		extra := int64(0)
		if withCtx {
			ctx = context.Background()
			extra = 1 // one AllreduceMax cancellation poll per iteration
		}
		traces := run(ctx)
		for r, tr := range traces {
			if tr == nil {
				t.Fatalf("rank %d: no trace", r)
			}
			if got := tr.Setup.CollectiveCalls; got != 2 {
				t.Errorf("ctx=%v rank %d: setup collectives %d, want 2", withCtx, r, got)
			}
			if len(tr.Iters) != maxIter {
				t.Fatalf("ctx=%v rank %d: %d records, want %d", withCtx, r, len(tr.Iters), maxIter)
			}
			for i, rec := range tr.Iters {
				if got := rec.Comm.CollectiveCalls; got != want[i]+extra {
					t.Errorf("ctx=%v rank %d iter %d: %d collective calls, want %d", withCtx, r, i+1, got, want[i]+extra)
				}
			}
		}
	}
}

// TestDistGMRESZeroRHS checks the collective-free zero-RHS early exit.
func TestDistGMRESZeroRHS(t *testing.T) {
	a := matgen.ConvectionDiffusion2D(8, 8, 5)
	n := a.Rows
	const nranks = 3
	l := distmat.NewUniformLayout(n, nranks)
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		b := make([]float64, hi-lo)
		x := make([]float64, hi-lo)
		st, err := DistGMRES(c, op, b, x, nil, Options{}, nil)
		if err != nil || !st.Converged || st.Iterations != 0 {
			return fmt.Errorf("zero RHS: st=%+v err=%v", st, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package krylov

// Batched (block multi-RHS) Conjugate Gradient. The batch solves the k
// systems A·x_c = b_c with k INDEPENDENT per-column recurrences — each
// column keeps its own α/β/ρ scalars — driven through the block kernels:
// one SpMM per iteration instead of k SpMVs, one k-wide halo update per
// neighbour instead of k, and one k-wide AllreduceSum per reduction point
// instead of k scalar ones. Because simmpi's collectives reduce
// element-wise in deterministic rank order and every block kernel
// accumulates each column in its scalar counterpart's index order, column
// c of a batched solve is bit-identical to a scalar solve of column c —
// regardless of what the other columns are doing. That property (pinned by
// the differential tests) is why this is a throughput optimization and not
// a different numerical method: it is exactly k scalar CG solves sharing
// their memory traffic and message envelopes.
//
// Columns that converge are frozen: they leave the active mask, stop
// costing flops in every kernel, and their x column is never touched
// again. Collectives stay k wide (frozen columns contribute exact zeros)
// and halo payloads stay k wide, so the communication *schedule* — message
// count and collective call count per iteration — never depends on the
// convergence state. A column whose dᵀAd turns non-positive (the scalar
// loop's SPD breakdown) is frozen as broken instead of failing the whole
// batch. Options.Trace and Options.RecordResiduals are ignored (per-column
// traces would multiply telemetry k-fold; use a scalar solve to trace).

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

// ErrBatchVariant is returned when a batched solve is asked for a CG
// variant other than classic or fused. The overlap and pipelined schedules
// hide latency that the batch already amortizes across columns; supporting
// them would complicate the masked recurrences for no modeled gain.
var ErrBatchVariant = errors.New("krylov: batched solve supports the classic and fused variants only")

// BatchPreconditioner applies z_c ← M·r_c on the active columns of
// interleaved n×k blocks in the serial batched solver. Masked columns of z
// must be left untouched.
type BatchPreconditioner interface {
	ApplyBatch(r, z []float64, k int, cols []int, fc *vecops.FlopCounter)
}

// DistBatchPreconditioner is the distributed counterpart, applied to a
// rank's local interleaved block. Collective: every rank calls it the same
// number of times with the same mask.
type DistBatchPreconditioner interface {
	ApplyBatch(c *simmpi.Comm, r, z []float64, k int, cols []int, fc *vecops.FlopCounter)
}

// IdentityBatch is the no-op batched preconditioner.
type IdentityBatch struct{}

// ApplyBatch copies the active columns of r into z.
func (IdentityBatch) ApplyBatch(r, z []float64, k int, cols []int, fc *vecops.FlopCounter) {
	if cols == nil {
		copy(z, r)
		return
	}
	for i := 0; i < len(r)/k; i++ {
		for _, c := range cols {
			z[i*k+c] = r[i*k+c]
		}
	}
}

// DistSplitBatch applies z = Gᵀ(G·r) to interleaved blocks with
// distributed G and Gᵀ — the batched counterpart of DistSplit. Each of the
// two SpMMs performs one k-wide halo update (one message per neighbour).
type DistSplitBatch struct {
	G, GT   *distmat.Op
	wG, wGT *distmat.BatchDistVec
	interm  []float64
	k       int
}

// NewDistSplitBatch builds the batched distributed split preconditioner
// from the local operators for G and Gᵀ, for batches of size k.
func NewDistSplitBatch(g, gt *distmat.Op, k int) *DistSplitBatch {
	return &DistSplitBatch{
		G:      g,
		GT:     gt,
		wG:     distmat.NewBatchDistVec(g.LZ, k),
		wGT:    distmat.NewBatchDistVec(gt.LZ, k),
		interm: make([]float64, g.LZ.NLocal()*k),
		k:      k,
	}
}

// ApplyBatch computes the local block of z = Gᵀ(G·r) on the active columns.
func (s *DistSplitBatch) ApplyBatch(c *simmpi.Comm, r, z []float64, k int, cols []int, fc *vecops.FlopCounter) {
	if k != s.k {
		panic(fmt.Sprintf("krylov: DistSplitBatch batch size %d, prepared for %d", k, s.k))
	}
	s.G.MulMat(c, r, s.interm, k, cols, s.wG, fc)
	s.GT.MulMat(c, s.interm, z, k, cols, s.wGT, fc)
}

// BatchStats reports the outcome of a batched solve: one Stats per column
// (Iterations, Converged, RelResidual — exactly what the scalar solve of
// that column would report) plus batch-level aggregates. Per-column Flops
// are not split out; the caller's FlopCounter holds the batch total.
type BatchStats struct {
	K    int
	Cols []Stats
	// Iterations is the number of iterations the batch loop ran — the
	// maximum over columns, which is what the batch's communication bill
	// scales with.
	Iterations int
	// Broken marks columns frozen by an SPD-breakdown (dᵀAd ≤ 0 or a
	// non-finite recurrence scalar); their Stats hold the last completed
	// iteration and Converged is false.
	Broken []bool
	// Refinements is the number of FP64 iterative-refinement steps a
	// mixed-precision batched solve performed; 0 for plain FP64 solves.
	Refinements int
}

// allConverged reports whether every column converged.
func (bs *BatchStats) allConverged() bool {
	for i := range bs.Cols {
		if !bs.Cols[i].Converged {
			return false
		}
	}
	return true
}

// batchCtl tracks the active-column mask and per-column freezing shared by
// the batched loops.
type batchCtl struct {
	k      int
	active []int
}

func newBatchCtl(k int) *batchCtl {
	ctl := &batchCtl{k: k, active: make([]int, k)}
	for c := range ctl.active {
		ctl.active[c] = c
	}
	return ctl
}

// mask returns the kernel mask: nil (the fast path) while every column is
// active, the ascending active list otherwise.
func (ctl *batchCtl) mask() []int {
	if len(ctl.active) == ctl.k {
		return nil
	}
	return ctl.active
}

// freeze removes a column from the active set, preserving ascending order.
func (ctl *batchCtl) freeze(col int) {
	for i, c := range ctl.active {
		if c == col {
			ctl.active = append(ctl.active[:i], ctl.active[i+1:]...)
			return
		}
	}
}

func (ctl *batchCtl) done() bool { return len(ctl.active) == 0 }

// batchResult assembles the final (stats, error) pair of a batched loop.
func batchResult(bs BatchStats, canceledAt int, ctx context.Context) (BatchStats, error) {
	if canceledAt > 0 {
		var cause error
		if ctx != nil {
			cause = ctx.Err()
		}
		return bs, fmt.Errorf("%w at iteration %d: %v", ErrCanceled, canceledAt, cause)
	}
	if bs.allConverged() {
		return bs, nil
	}
	unconverged, broken := 0, 0
	for c := range bs.Cols {
		if !bs.Cols[c].Converged {
			unconverged++
		}
		if bs.Broken[c] {
			broken++
		}
	}
	if broken > 0 {
		// Both sentinels match: the batch failed to converge, and at least
		// one column did so by breaking down rather than running out of
		// iterations.
		return bs, fmt.Errorf("%w: %w: %d of %d columns unconverged (%d broken down) after %d iterations",
			ErrNoConvergence, ErrBreakdown, unconverged, bs.K, broken, bs.Iterations)
	}
	return bs, fmt.Errorf("%w: %d of %d columns unconverged (%d broken down) after %d iterations",
		ErrNoConvergence, unconverged, bs.K, broken, bs.Iterations)
}

// checkBatchOptions validates the variant and batch size shared by the
// batched entry points.
func checkBatchOptions(k int, opt Options) error {
	if k < 1 {
		return fmt.Errorf("krylov: batch size %d < 1", k)
	}
	switch opt.Variant {
	case CGClassic, CGFused:
		return nil
	default:
		return fmt.Errorf("%w (got %s)", ErrBatchVariant, opt.Variant)
	}
}

// CGBatch solves the k systems A·x_c = b_c serially with the batched
// classic PCG recurrence, from zero initial guesses. b and x are n×k
// row-major interleaved blocks; x is overwritten. Column c of the result
// is bit-identical to CG on (b column c). The fused variant is accepted
// but runs the classic recurrence serially (the fused rearrangement only
// changes communication, which a serial solve has none of).
func CGBatch(a *sparse.CSR, b, x []float64, m BatchPreconditioner, k int, opt Options, fc *vecops.FlopCounter) (BatchStats, error) {
	n := a.Rows
	if err := checkBatchOptions(k, opt); err != nil {
		return BatchStats{}, err
	}
	opt = opt.withDefaults(n)
	if m == nil {
		m = IdentityBatch{}
	}
	if len(b) != n*k || len(x) != n*k {
		panic(fmt.Sprintf("krylov: CGBatch block length %d/%d, want %d (k=%d)", len(b), len(x), n*k, k))
	}
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	r, z, d, q := ws.take4(n * k)
	copy(r, b)

	bs := BatchStats{K: k, Cols: make([]Stats, k), Broken: make([]bool, k)}
	ctl := newBatchCtl(k)
	norm0 := make([]float64, k)
	rho := make([]float64, k)
	alpha := make([]float64, k)
	negAlpha := make([]float64, k)
	beta := make([]float64, k)
	tmp := make([]float64, k)

	vecops.DotBatch(r, r, k, nil, tmp, fc)
	for c := 0; c < k; c++ {
		norm0[c] = math.Sqrt(tmp[c])
		if norm0[c] == 0 {
			for i := 0; i < n; i++ {
				x[i*k+c] = 0
			}
			bs.Cols[c].Converged = true
			ctl.freeze(c)
		}
	}
	if ctl.done() {
		return batchResult(bs, 0, nil)
	}
	m.ApplyBatch(r, z, k, ctl.mask(), fc)
	copy(d, z)
	vecops.DotBatch(r, z, k, ctl.mask(), rho, fc)

	for iter := 1; iter <= opt.MaxIter; iter++ {
		if canceled(nil, opt.Ctx) {
			return batchResult(bs, iter, opt.Ctx)
		}
		a.MulMatCols(d, q, k, ctl.mask())
		fc.Add(2 * int64(a.NNZ()) * int64(len(ctl.active)))
		vecops.DotBatch(d, q, k, ctl.mask(), tmp, fc)
		for _, c := range append([]int(nil), ctl.active...) {
			if badCurv(tmp[c]) {
				bs.Broken[c] = true
				ctl.freeze(c)
				continue
			}
			alpha[c] = rho[c] / tmp[c]
			negAlpha[c] = -alpha[c]
		}
		if ctl.done() {
			break
		}
		vecops.AxpyBatch(alpha, d, x, k, ctl.mask(), fc)
		vecops.AxpyBatch(negAlpha, q, r, k, ctl.mask(), fc)
		vecops.DotBatch(r, r, k, ctl.mask(), tmp, fc)
		bs.Iterations = iter
		for _, c := range append([]int(nil), ctl.active...) {
			st := &bs.Cols[c]
			st.Iterations = iter
			st.RelResidual = math.Sqrt(tmp[c]) / norm0[c]
			if nonfinite(tmp[c]) {
				bs.Broken[c] = true
				ctl.freeze(c)
				continue
			}
			if st.RelResidual <= opt.Tol {
				st.Converged = true
				ctl.freeze(c)
			}
		}
		if ctl.done() {
			break
		}
		m.ApplyBatch(r, z, k, ctl.mask(), fc)
		vecops.DotBatch(r, z, k, ctl.mask(), tmp, fc)
		for _, c := range append([]int(nil), ctl.active...) {
			if nonfinite(tmp[c]) {
				bs.Broken[c] = true
				ctl.freeze(c)
				continue
			}
			beta[c] = tmp[c] / rho[c]
			rho[c] = tmp[c]
		}
		vecops.XpayBatch(z, beta, d, k, ctl.mask(), fc)
	}
	return batchResult(bs, 0, nil)
}

// DistCGBatch solves the k distributed systems A·x_c = b_c with the
// batched CG recurrence. Every rank passes its local interleaved blocks of
// b and x (x zeroed); all ranks receive identical BatchStats. Per
// iteration the classic variant performs one batched SpMM (one k-wide halo
// message per neighbour) and three k-wide AllreduceSums — the same
// collective CALL count as one scalar solve, serving all k columns; the
// fused variant performs one AllreduceSum of 3k values. Column c of the
// result is bit-identical to DistCG on column c alone, which also means
// the batch's communication bill equals one scalar solve's in messages and
// collective calls, and k× in halo bytes (the metered tests pin all
// three). Variants other than classic and fused return ErrBatchVariant.
func DistCGBatch(c *simmpi.Comm, op *distmat.Op, b, x []float64, m DistBatchPreconditioner, k int, opt Options, fc *vecops.FlopCounter) (BatchStats, error) {
	if err := checkBatchOptions(k, opt); err != nil {
		return BatchStats{}, err
	}
	if opt.Variant == CGFused {
		return distCGFusedBatch(c, op, b, x, m, k, opt, fc)
	}
	nl := op.LZ.NLocal()
	nGlobal := int(c.AllreduceSumInt64(int64(nl))[0])
	opt = opt.withDefaults(nGlobal)
	if len(b) != nl*k || len(x) != nl*k {
		panic(fmt.Sprintf("krylov: DistCGBatch local block length %d/%d, want %d (k=%d)", len(b), len(x), nl*k, k))
	}
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	r, z, d, q := ws.take4(nl * k)
	copy(r, b)
	scratch := distmat.NewBatchDistVec(op.LZ, k)

	bs := BatchStats{K: k, Cols: make([]Stats, k), Broken: make([]bool, k)}
	ctl := newBatchCtl(k)
	norm0 := make([]float64, k)
	rho := make([]float64, k)
	alpha := make([]float64, k)
	negAlpha := make([]float64, k)
	beta := make([]float64, k)
	tmp := make([]float64, k)

	distmat.DotBatchDist(c, r, r, k, nil, tmp, fc)
	for col := 0; col < k; col++ {
		norm0[col] = math.Sqrt(tmp[col])
		if norm0[col] == 0 {
			for i := 0; i < nl; i++ {
				x[i*k+col] = 0
			}
			bs.Cols[col].Converged = true
			ctl.freeze(col)
		}
	}
	if ctl.done() {
		return batchResult(bs, 0, nil)
	}
	m.ApplyBatch(c, r, z, k, ctl.mask(), fc)
	copy(d, z)
	distmat.DotBatchDist(c, r, z, k, ctl.mask(), rho, fc)

	for iter := 1; iter <= opt.MaxIter; iter++ {
		if canceled(c, opt.Ctx) {
			return batchResult(bs, iter, opt.Ctx)
		}
		op.MulMat(c, d, q, k, ctl.mask(), scratch, fc)
		distmat.DotBatchDist(c, d, q, k, ctl.mask(), tmp, fc)
		for _, col := range append([]int(nil), ctl.active...) {
			// tmp holds Allreduce results, identical on every rank, so the
			// per-column freeze decisions are collective by construction.
			if badCurv(tmp[col]) {
				bs.Broken[col] = true
				ctl.freeze(col)
				continue
			}
			alpha[col] = rho[col] / tmp[col]
			negAlpha[col] = -alpha[col]
		}
		if ctl.done() {
			break
		}
		vecops.AxpyBatch(alpha, d, x, k, ctl.mask(), fc)
		vecops.AxpyBatch(negAlpha, q, r, k, ctl.mask(), fc)
		distmat.DotBatchDist(c, r, r, k, ctl.mask(), tmp, fc)
		bs.Iterations = iter
		for _, col := range append([]int(nil), ctl.active...) {
			st := &bs.Cols[col]
			st.Iterations = iter
			st.RelResidual = math.Sqrt(tmp[col]) / norm0[col]
			if nonfinite(tmp[col]) {
				bs.Broken[col] = true
				ctl.freeze(col)
				continue
			}
			if st.RelResidual <= opt.Tol {
				st.Converged = true
				ctl.freeze(col)
			}
		}
		if ctl.done() {
			break
		}
		m.ApplyBatch(c, r, z, k, ctl.mask(), fc)
		distmat.DotBatchDist(c, r, z, k, ctl.mask(), tmp, fc)
		for _, col := range append([]int(nil), ctl.active...) {
			if nonfinite(tmp[col]) {
				bs.Broken[col] = true
				ctl.freeze(col)
				continue
			}
			beta[col] = tmp[col] / rho[col]
			rho[col] = tmp[col]
		}
		vecops.XpayBatch(z, beta, d, k, ctl.mask(), fc)
	}
	return batchResult(bs, 0, nil)
}

// distCGFusedBatch is the batched fused-reduction (Chronopoulos–Gear)
// loop: one AllreduceSum of 3k values per iteration — the collective call
// count of one scalar fused solve, serving all k columns. Each column runs
// its own α/β/γ recurrence; column c is bit-identical to DistCGFused on
// column c alone. The SpMM uses the blocking schedule (its metered traffic
// is identical to the overlap schedule the scalar loop uses, byte for
// byte and message for message).
func distCGFusedBatch(c *simmpi.Comm, op *distmat.Op, b, x []float64, m DistBatchPreconditioner, k int, opt Options, fc *vecops.FlopCounter) (BatchStats, error) {
	nl := op.LZ.NLocal()
	nGlobal := int(c.AllreduceSumInt64(int64(nl))[0])
	opt = opt.withDefaults(nGlobal)
	if len(b) != nl*k || len(x) != nl*k {
		panic(fmt.Sprintf("krylov: distCGFusedBatch local block length %d/%d, want %d (k=%d)", len(b), len(x), nl*k, k))
	}
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	r, u, w, p, s := ws.take5(nl * k)
	scratch := distmat.NewBatchDistVec(op.LZ, k)
	copy(r, b)
	vecops.Fill(p, 0)
	vecops.Fill(s, 0)

	bs := BatchStats{K: k, Cols: make([]Stats, k), Broken: make([]bool, k)}
	ctl := newBatchCtl(k)
	norm0 := make([]float64, k)
	gamma := make([]float64, k)
	alpha := make([]float64, k)
	beta := make([]float64, k)
	gammaL := make([]float64, k)
	deltaL := make([]float64, k)
	rrL := make([]float64, k)
	g := make([]float64, 3*k)

	// Setup pass over every column, like the scalar loop: the zero-RHS and
	// non-SPD checks come out of the first collective.
	m.ApplyBatch(c, r, u, k, nil, fc)
	op.MulMat(c, u, w, k, nil, scratch, fc)
	vecops.Dot2Batch(r, u, w, k, nil, gammaL, deltaL, fc)
	vecops.DotBatch(r, r, k, nil, rrL, fc)
	copy(g[:k], gammaL)
	copy(g[k:2*k], deltaL)
	copy(g[2*k:], rrL)
	gr := c.AllreduceSum(g...)
	for col := 0; col < k; col++ {
		ga, de, rr := gr[col], gr[k+col], gr[2*k+col]
		if rr == 0 {
			for i := 0; i < nl; i++ {
				x[i*k+col] = 0
			}
			bs.Cols[col].Converged = true
			ctl.freeze(col)
			continue
		}
		norm0[col] = math.Sqrt(rr)
		if badCurv(ga) || badCurv(de) {
			bs.Broken[col] = true
			ctl.freeze(col)
			continue
		}
		gamma[col] = ga
		alpha[col] = ga / de
		beta[col] = 0
	}

	for iter := 1; iter <= opt.MaxIter && !ctl.done(); iter++ {
		if canceled(c, opt.Ctx) {
			return batchResult(bs, iter, opt.Ctx)
		}
		vecops.FusedCGUpdateBatch(alpha, beta, u, w, p, s, x, r, k, ctl.mask(), rrL, fc)
		m.ApplyBatch(c, r, u, k, ctl.mask(), fc)
		op.MulMat(c, u, w, k, ctl.mask(), scratch, fc)
		vecops.Dot2Batch(r, u, w, k, ctl.mask(), gammaL, deltaL, fc)
		// Frozen columns contribute exact zeros so the collective stays a
		// fixed 3k values per iteration.
		for i := range g {
			g[i] = 0
		}
		for _, col := range ctl.active {
			g[col] = gammaL[col]
			g[k+col] = deltaL[col]
			g[2*k+col] = rrL[col]
		}
		gr := c.AllreduceSum(g...)
		bs.Iterations = iter
		for _, col := range append([]int(nil), ctl.active...) {
			gammaNew, de, rr := gr[col], gr[k+col], gr[2*k+col]
			st := &bs.Cols[col]
			st.Iterations = iter
			st.RelResidual = math.Sqrt(rr) / norm0[col]
			if nonfinite(rr) || nonfinite(gammaNew) {
				bs.Broken[col] = true
				ctl.freeze(col)
				continue
			}
			if st.RelResidual <= opt.Tol {
				st.Converged = true
				ctl.freeze(col)
				continue
			}
			betaNew := gammaNew / gamma[col]
			denom := de - betaNew*gammaNew/alpha[col]
			if badCurv(denom) {
				bs.Broken[col] = true
				ctl.freeze(col)
				continue
			}
			beta[col] = betaNew
			alpha[col] = gammaNew / denom
			gamma[col] = gammaNew
		}
	}
	return batchResult(bs, 0, nil)
}

package krylov

import (
	"errors"
	"fmt"
	"testing"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

// Satellite 2, part 1: the pipelined recurrence spans the same Krylov space
// as classic PCG. Across the four problem classes and both cheap
// preconditioners, iteration counts agree to ±2 and both meet the
// tolerance.
//
// The CFD instance here is milder than the fused test's (jump 10 instead of
// 100): the pipelined recursions for u ≈ M·r and w ≈ A·u accumulate rounding
// amplified by the condition number, and on near-degenerate unpreconditioned
// instances (iteration count ≈ n) the drift exceeds ±2 — the regime the
// pipelined-CG rounding analyses flag, and exactly where one would use a
// preconditioner (Jacobi restores ±0 drift even on the jump-100 instance;
// see DESIGN.md §4d).
func TestDistCGPipelinedMatchesClassic(t *testing.T) {
	mats := []struct {
		name string
		a    *sparse.CSR
	}{
		{"poisson2d", matgen.Poisson2D(12, 12)},
		{"poisson3d", matgen.Poisson3D(7, 7, 7)},
		{"cfd", matgen.CFDDiffusion(10, 10, 10, 2)},
		{"aniso", matgen.ThermalAniso(12, 12, 1, 100)},
	}
	for _, tc := range mats {
		a := tc.a
		b := matgen.RandomRHS(a.Rows, 21, a.MaxNorm())
		j, err := NewJacobi(a)
		if err != nil {
			t.Fatal(err)
		}
		precs := map[string]func(lo, hi int) DistPreconditioner{
			"noprec": nil,
			"jacobi": func(lo, hi int) DistPreconditioner { return &distJacobi{inv: j.InvDiag[lo:hi]} },
		}
		for pname, pre := range precs {
			opt := Options{Tol: 1e-8}
			xc, stc := distSolve(t, a, b, 4, pre, opt)
			opt.Variant = CGPipelined
			xp, stp := distSolve(t, a, b, 4, pre, opt)
			if !stc.Converged || !stp.Converged {
				t.Fatalf("%s/%s: converged classic=%v pipelined=%v", tc.name, pname, stc.Converged, stp.Converged)
			}
			if d := stp.Iterations - stc.Iterations; d < -2 || d > 2 {
				t.Fatalf("%s/%s: pipelined %d iters vs classic %d (want ±2)", tc.name, pname, stp.Iterations, stc.Iterations)
			}
			if stc.RelResidual > opt.Tol || stp.RelResidual > opt.Tol {
				t.Fatalf("%s/%s: residuals above Tol: classic %g pipelined %g", tc.name, pname, stc.RelResidual, stp.RelResidual)
			}
			bn := vecops.Norm2(b, nil)
			if rc, rp := residual(a, xc, b), residual(a, xp, b); rc > 1e-6*(1+bn) || rp > 1e-6*(1+bn) {
				t.Fatalf("%s/%s: true residuals classic %g pipelined %g", tc.name, pname, rc, rp)
			}
		}
	}
}

// Backs the comment above: on the near-degenerate jump-100 CFD instance the
// unpreconditioned drift exceeds ±2, but Jacobi — the cheapest possible
// preconditioner — already brings pipelined back within the bound.
func TestDistCGPipelinedHardCFDWithJacobi(t *testing.T) {
	a := matgen.CFDDiffusion(10, 10, 100, 3)
	b := matgen.RandomRHS(a.Rows, 21, a.MaxNorm())
	j, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	pre := func(lo, hi int) DistPreconditioner { return &distJacobi{inv: j.InvDiag[lo:hi]} }
	_, stc := distSolve(t, a, b, 4, pre, Options{Tol: 1e-8})
	_, stp := distSolve(t, a, b, 4, pre, Options{Tol: 1e-8, Variant: CGPipelined})
	if !stc.Converged || !stp.Converged {
		t.Fatalf("converged classic=%v pipelined=%v", stc.Converged, stp.Converged)
	}
	if d := stp.Iterations - stc.Iterations; d < -2 || d > 2 {
		t.Fatalf("hard CFD + jacobi: pipelined %d iters vs classic %d (want ±2)", stp.Iterations, stc.Iterations)
	}
}

// Satellite 2, part 1 continued: the pipelined loop under the distributed
// split preconditioner (the FSAI application path, overlap-built G and Gᵀ)
// matches the unpreconditioned run when G is the identity.
func TestDistCGPipelinedWithSplitPrecond(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	n := a.Rows
	id := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		id.Add(i, i, 1)
	}
	g := id.ToCSR()
	b := matgen.RandomRHS(n, 31, a.MaxNorm())
	const nranks = 4
	l := distmat.NewUniformLayout(n, nranks)
	var plain, split Stats
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		x1 := make([]float64, hi-lo)
		st1, err := DistCG(c, op, b[lo:hi], x1, nil, Options{Variant: CGPipelined}, nil)
		if err != nil {
			return err
		}
		gOp := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(g, lo, hi), distmat.WithOverlap())
		gtOp := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(g, lo, hi), distmat.WithOverlap())
		x2 := make([]float64, hi-lo)
		st2, err := DistCG(c, op, b[lo:hi], x2, NewDistSplit(gOp, gtOp), Options{Variant: CGPipelined}, nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			plain, split = st1, st2
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != split.Iterations {
		t.Fatalf("identity split changed pipelined iterations: %d vs %d", split.Iterations, plain.Iterations)
	}
}

// Satellite 2, part 2 — the metered acceptance proof: on a 4-rank
// partitioned Poisson problem, forcing Δ extra iterations costs the
// pipelined loop exactly Δ collective calls per rank (fused's 1/iteration,
// against classic's 3), with the same 24 B/iteration reduced payload,
// byte-identical halo traffic growth on every rank pair, and identical
// neighbour sets — the nonblocking schedule moves no extra bytes.
func TestPipelinedOneCollectivePerIteration(t *testing.T) {
	a := matgen.Poisson3D(12, 12, 12)
	n := a.Rows
	b := matgen.RandomRHS(n, 29, a.MaxNorm())
	const nranks = 4
	l := distmat.NewUniformLayout(n, nranks)

	runForced := func(variant CGVariant, iters int) *simmpi.Meter {
		t.Helper()
		w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
			x := make([]float64, hi-lo)
			_, err := DistCG(c, op, b[lo:hi], x, nil, Options{Tol: 1e-300, MaxIter: iters, Variant: variant}, nil)
			if !errors.Is(err, ErrNoConvergence) {
				return fmt.Errorf("want forced non-convergence, got %v", err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Meter()
	}

	const k, delta = 6, 5
	mc1, mc2 := runForced(CGClassic, k), runForced(CGClassic, k+delta)
	mp1, mp2 := runForced(CGPipelined, k), runForced(CGPipelined, k+delta)

	for r := 0; r < nranks; r++ {
		if got := mp2.CollectiveCalls(r) - mp1.CollectiveCalls(r); got != int64(delta) {
			t.Errorf("rank %d: pipelined grew %d collective calls over %d iterations, want %d", r, got, delta, delta)
		}
		cb := mc2.CollectiveBytes(r) - mc1.CollectiveBytes(r)
		pb := mp2.CollectiveBytes(r) - mp1.CollectiveBytes(r)
		if cb != pb || pb != 24*delta {
			t.Errorf("rank %d: collective byte growth classic %d vs pipelined %d, want both %d", r, cb, pb, 24*delta)
		}
		for dst := 0; dst < nranks; dst++ {
			ch := mc2.PairBytes(r, dst) - mc1.PairBytes(r, dst)
			ph := mp2.PairBytes(r, dst) - mp1.PairBytes(r, dst)
			if ch != ph {
				t.Errorf("pair %d->%d: halo byte growth classic %d vs pipelined %d", r, dst, ch, ph)
			}
		}
	}
	nc, np := mc2.NeighborSets(), mp2.NeighborSets()
	for r := range nc {
		if len(nc[r]) != len(np[r]) {
			t.Fatalf("rank %d: neighbour sets differ: classic %v pipelined %v", r, nc[r], np[r])
		}
		for k := range nc[r] {
			if nc[r][k] != np[r][k] {
				t.Fatalf("rank %d: neighbour sets differ: classic %v pipelined %v", r, nc[r], np[r])
			}
		}
	}
}

// The pipelined residual recurrence is known to round worse than fused's
// (hence the ±2 iteration claim instead of ±1); the history must still
// track classic within a modest constant factor all the way down.
func TestPipelinedResidualHistoryTracksClassic(t *testing.T) {
	a := matgen.CFDDiffusion(8, 8, 50, 2)
	b := matgen.RandomRHS(a.Rows, 47, a.MaxNorm())
	_, stc := distSolve(t, a, b, 4, nil, Options{Tol: 1e-10, RecordResiduals: true})
	_, stp := distSolve(t, a, b, 4, nil, Options{Tol: 1e-10, RecordResiduals: true, Variant: CGPipelined})
	m := len(stc.Residuals)
	if len(stp.Residuals) < m {
		m = len(stp.Residuals)
	}
	if m == 0 {
		t.Fatal("no residual history recorded")
	}
	for i := 0; i < m; i++ {
		rc, rp := stc.Residuals[i], stp.Residuals[i]
		if rp > 50*rc+1e-14 && rp > 1e-10 {
			t.Fatalf("iteration %d: pipelined residual %g drifts from classic %g", i+1, rp, rc)
		}
	}
}

func TestDistCGPipelinedZeroRHS(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	n := a.Rows
	l := distmat.NewUniformLayout(n, 2)
	_, err := simmpi.Run(2, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		x := make([]float64, hi-lo)
		st, err := DistCG(c, op, make([]float64, hi-lo), x, nil, Options{Variant: CGPipelined}, nil)
		if err != nil || !st.Converged || st.Iterations != 0 {
			return fmt.Errorf("zero RHS: st=%+v err=%v", st, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistCGPipelinedBreakdownOnIndefinite(t *testing.T) {
	c := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 1)
	}
	c.Add(3, 3, -2)
	a := c.ToCSR()
	b := []float64{1, 1, 1, 1}
	l := distmat.NewUniformLayout(4, 2)
	_, err := simmpi.Run(2, testTimeout, func(cm *simmpi.Comm) error {
		lo, hi := l.Range(cm.Rank())
		op := distmat.NewOp(cm, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		x := make([]float64, hi-lo)
		_, err := DistCG(cm, op, b[lo:hi], x, nil, Options{Variant: CGPipelined}, nil)
		if err == nil {
			return fmt.Errorf("indefinite matrix accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Per-rank workspaces reused across repeated pipelined solves keep the
// iteration count stable (no stale recurrence vectors leak between solves).
func TestDistCGPipelinedWorkspaceReuse(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	n := a.Rows
	b := matgen.RandomRHS(n, 43, a.MaxNorm())
	const nranks = 3
	l := distmat.NewUniformLayout(n, nranks)
	works := make([]*Workspace, nranks)
	for i := range works {
		works[i] = &Workspace{}
	}
	var iters [2]int
	for round := 0; round < 2; round++ {
		rr := round
		_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
			x := make([]float64, hi-lo)
			st, err := DistCG(c, op, b[lo:hi], x, nil, Options{Variant: CGPipelined, Work: works[c.Rank()]}, nil)
			if c.Rank() == 0 {
				iters[rr] = st.Iterations
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if iters[0] != iters[1] || iters[0] == 0 {
		t.Fatalf("workspace reuse changed iterations: %v", iters)
	}
}

// Satellite: Options.ResidualReplaceEvery. On the near-degenerate
// unpreconditioned CFD instance the pipelined recurrence residual detaches
// from the true one: convergence drifts far past classic's and the true
// residual stagnates an order of magnitude above classic's attainable
// level. Periodic replacement (r = b − A·x every k iterations) tightens the
// iteration-drift band and restores classic-level attainable accuracy. (It
// cannot restore the ±2 band on its own — preconditioning does that, see
// TestDistCGPipelinedHardCFDWithJacobi; replacement is the fallback when no
// preconditioner is in play.)
func TestPipelinedResidualReplacementArrestsDrift(t *testing.T) {
	a := matgen.CFDDiffusion(10, 10, 1e5, 3)
	b := matgen.RandomRHS(a.Rows, 21, a.MaxNorm())
	_, stc := distSolve(t, a, b, 4, nil, Options{Tol: 1e-8})
	xp, stp := distSolve(t, a, b, 4, nil, Options{Tol: 1e-8, Variant: CGPipelined})
	xr, str := distSolve(t, a, b, 4, nil, Options{Tol: 1e-8, Variant: CGPipelined, ResidualReplaceEvery: 5})
	if !stc.Converged || !stp.Converged || !str.Converged {
		t.Fatalf("converged classic=%v plain=%v rr=%v", stc.Converged, stp.Converged, str.Converged)
	}
	plainDrift := stp.Iterations - stc.Iterations
	rrDrift := str.Iterations - stc.Iterations
	if plainDrift <= 2 {
		t.Fatalf("instance too mild: plain pipelined drift only %d", plainDrift)
	}
	if rrDrift >= plainDrift {
		t.Fatalf("replacement did not tighten the drift band: %d vs plain %d", rrDrift, plainDrift)
	}
	// Attainable accuracy: the replaced run's true residual must sit well
	// below the plain run's stagnation level (5x is conservative; measured
	// ~14x, back at classic's level).
	rp, rr := residual(a, xp, b), residual(a, xr, b)
	if rr > rp/5 {
		t.Fatalf("replacement did not restore attainable accuracy: true residual %g vs plain %g", rr, rp)
	}
}

// Replacement's metered price: zero extra collectives, and per rank pair
// exactly 4 extra halo exchanges per replacement event (A·x, A·u, A·p, A·q)
// — floor(MaxIter/k) events in a forced run.
func TestPipelinedResidualReplacementMeter(t *testing.T) {
	a := matgen.Poisson2D(16, 16)
	n := a.Rows
	b := matgen.RandomRHS(n, 29, a.MaxNorm())
	const nranks = 4
	l := distmat.NewUniformLayout(n, nranks)
	runForced := func(iters, rr int) *simmpi.Meter {
		t.Helper()
		w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
			x := make([]float64, hi-lo)
			_, err := DistCG(c, op, b[lo:hi], x, nil,
				Options{Tol: 1e-300, MaxIter: iters, Variant: CGPipelined, ResidualReplaceEvery: rr}, nil)
			if !errors.Is(err, ErrNoConvergence) {
				return fmt.Errorf("want forced non-convergence, got %v", err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Meter()
	}

	const m1, m2, k = 6, 12, 5
	plain1, plain2 := runForced(m1, 0), runForced(m2, 0)
	repl := runForced(m2, k)
	events := int64(m2 / k)
	for r := 0; r < nranks; r++ {
		if pc, rc := plain2.CollectiveCalls(r), repl.CollectiveCalls(r); pc != rc {
			t.Errorf("rank %d: replacement changed collective calls %d -> %d", r, pc, rc)
		}
		if pb, rb := plain2.CollectiveBytes(r), repl.CollectiveBytes(r); pb != rb {
			t.Errorf("rank %d: replacement changed collective bytes %d -> %d", r, pb, rb)
		}
		for dst := 0; dst < nranks; dst++ {
			// One halo exchange per pass: the per-iteration pair growth of
			// two plain runs is one exchange's bytes for this pair.
			perExchange := (plain2.PairBytes(r, dst) - plain1.PairBytes(r, dst)) / int64(m2-m1)
			got := repl.PairBytes(r, dst) - plain2.PairBytes(r, dst)
			if want := events * 4 * perExchange; got != want {
				t.Errorf("pair %d->%d: replacement halo growth %d bytes, want %d (%d events x 4 exchanges x %d B)",
					r, dst, got, want, events, perExchange)
			}
		}
	}
}

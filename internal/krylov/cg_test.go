package krylov

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"fsaicomm/internal/dense"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

const testTimeout = 20 * time.Second

// directSolve solves A x = b densely for verification.
func directSolve(t *testing.T, a *sparse.CSR, b []float64) []float64 {
	t.Helper()
	n := a.Rows
	flat := make([]float64, n*n)
	d := a.Dense()
	for i := 0; i < n; i++ {
		copy(flat[i*n:(i+1)*n], d[i])
	}
	x := append([]float64(nil), b...)
	if err := dense.SolveSPD(flat, n, x); err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	return x
}

func residual(a *sparse.CSR, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(x, r)
	s := 0.0
	for i := range r {
		diff := b[i] - r[i]
		s += diff * diff
	}
	return math.Sqrt(s)
}

func TestCGPoissonMatchesDirect(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	b := matgen.RandomRHS(a.Rows, 1, a.MaxNorm())
	x := make([]float64, a.Rows)
	st, err := CG(a, b, x, nil, Options{Tol: 1e-10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("not converged")
	}
	want := directSolve(t, a, b)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := matgen.Poisson2D(5, 5)
	b := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	st, err := CG(a, b, x, nil, Options{}, nil)
	if err != nil || !st.Converged || st.Iterations != 0 {
		t.Fatalf("zero RHS: st=%+v err=%v", st, err)
	}
}

func TestCGNoConvergence(t *testing.T) {
	a := matgen.ThermalAniso(20, 20, 1, 10000)
	b := matgen.RandomRHS(a.Rows, 2, a.MaxNorm())
	x := make([]float64, a.Rows)
	_, err := CG(a, b, x, nil, Options{Tol: 1e-14, MaxIter: 3}, nil)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1)
	a := c.ToCSR()
	b := []float64{1, 1}
	x := make([]float64, 2)
	_, err := CG(a, b, x, nil, Options{}, nil)
	if err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestJacobiPreconditionerReducesIterations(t *testing.T) {
	// A badly scaled SPD diagonal-dominant matrix: Jacobi fixes scaling.
	// A = D^{1/2} T D^{1/2} with T = tridiag(-1, 4, -1): SPD by congruence,
	// condition number inflated by the diagonal scaling D.
	n := 200
	rng := rand.New(rand.NewSource(4))
	s := make([]float64, n) // sqrt of scale
	for i := range s {
		s[i] = math.Pow(10, (float64(rng.Intn(6))-3)/2)
	}
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4*s[i]*s[i])
		if i > 0 {
			c.AddSym(i, i-1, -s[i]*s[i-1])
		}
	}
	a := c.ToCSR()
	b := matgen.RandomRHS(n, 3, a.MaxNorm())

	x1 := make([]float64, n)
	st1, err := CG(a, b, x1, nil, Options{MaxIter: 100000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	st2, err := CG(a, b, x2, j, Options{MaxIter: 100000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Iterations >= st1.Iterations {
		t.Fatalf("Jacobi %d iters not below plain %d", st2.Iterations, st1.Iterations)
	}
}

func TestNewJacobiZeroDiagonal(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 0, 1) // row 1 has no diagonal
	if _, err := NewJacobi(c.ToCSR()); err == nil {
		t.Fatal("zero diagonal accepted")
	}
}

func TestSplitPreconditionerIdentityFactors(t *testing.T) {
	// G = I must reproduce plain CG exactly.
	a := matgen.Poisson2D(8, 8)
	n := a.Rows
	id := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		id.Add(i, i, 1)
	}
	g := id.ToCSR()
	b := matgen.RandomRHS(n, 5, a.MaxNorm())
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	st1, err1 := CG(a, b, x1, nil, Options{}, nil)
	st2, err2 := CG(a, b, x2, NewSplit(g, g.Transpose()), Options{}, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if st1.Iterations != st2.Iterations {
		t.Fatalf("identity split changed iterations: %d vs %d", st1.Iterations, st2.Iterations)
	}
}

func TestCGFlopAccounting(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	b := matgen.RandomRHS(a.Rows, 7, a.MaxNorm())
	x := make([]float64, a.Rows)
	var fc vecops.FlopCounter
	st, err := CG(a, b, x, nil, Options{}, &fc)
	if err != nil {
		t.Fatal(err)
	}
	// At minimum: iterations × (2·nnz SpMV + several vector ops).
	min := int64(st.Iterations) * 2 * int64(a.NNZ())
	if st.Flops < min {
		t.Fatalf("flops %d below SpMV-only floor %d", st.Flops, min)
	}
}

func TestDistCGMatchesSerial(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	n := a.Rows
	b := matgen.RandomRHS(n, 9, a.MaxNorm())
	xs := make([]float64, n)
	stSerial, err := CG(a, b, xs, nil, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, nranks := range []int{1, 2, 4, 7} {
		l := distmat.NewUniformLayout(n, nranks)
		xd := make([]float64, n)
		iters := make([]int, nranks)
		_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
			xl := make([]float64, hi-lo)
			st, err := DistCG(c, op, b[lo:hi], xl, nil, Options{}, nil)
			if err != nil {
				return err
			}
			iters[c.Rank()] = st.Iterations
			copy(xd[lo:hi], xl)
			return nil
		})
		if err != nil {
			t.Fatalf("nranks=%d: %v", nranks, err)
		}
		for r := 1; r < nranks; r++ {
			if iters[r] != iters[0] {
				t.Fatalf("nranks=%d: rank %d iters %d != %d", nranks, r, iters[r], iters[0])
			}
		}
		// Same iteration count as serial (identical arithmetic order for
		// dot products is not guaranteed, allow ±2).
		if diff := iters[0] - stSerial.Iterations; diff < -2 || diff > 2 {
			t.Fatalf("nranks=%d: %d iters vs serial %d", nranks, iters[0], stSerial.Iterations)
		}
		if res := residual(a, xd, b); res > 1e-6*(1+vecops.Norm2(b, nil)) {
			t.Fatalf("nranks=%d: residual %g too large", nranks, res)
		}
	}
}

func TestDistCGWithJacobiEquivalent(t *testing.T) {
	// Distributed Jacobi (pure local scaling) via DistPreconditioner adapter.
	a := matgen.CFDDiffusion(10, 10, 100, 3)
	n := a.Rows
	b := matgen.RandomRHS(n, 11, a.MaxNorm())
	j, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, n)
	stS, err := CG(a, b, xs, j, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nranks := 3
	l := distmat.NewUniformLayout(n, nranks)
	itersDist := -1
	_, err = simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		local := &distJacobi{inv: j.InvDiag[lo:hi]}
		xl := make([]float64, hi-lo)
		st, err := DistCG(c, op, b[lo:hi], xl, local, Options{}, nil)
		if c.Rank() == 0 {
			itersDist = st.Iterations
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := itersDist - stS.Iterations; diff < -2 || diff > 2 {
		t.Fatalf("distributed Jacobi iters %d vs serial %d", itersDist, stS.Iterations)
	}
}

type distJacobi struct{ inv []float64 }

func (d *distJacobi) Apply(c *simmpi.Comm, r, z []float64, fc *vecops.FlopCounter) {
	for i := range r {
		z[i] = r[i] * d.inv[i]
	}
	fc.Add(int64(len(r)))
}

// Property: CG solves random small SPD systems to the requested tolerance.
func TestQuickCGSolvesSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		c := sparse.NewCOO(n, n)
		for i := 0; i < n; i++ {
			c.Add(i, i, float64(n))
		}
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				c.AddSym(i, j, rng.NormFloat64()*0.3)
			}
		}
		a := c.ToCSR()
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		st, err := CG(a, b, x, nil, Options{Tol: 1e-9}, nil)
		if err != nil || !st.Converged {
			return false
		}
		bn := vecops.Norm2(b, nil)
		return residual(a, x, b) <= 1e-7*(1+bn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistSplitIdentityFactors(t *testing.T) {
	// Distributed split preconditioner with G = I must match plain DistCG.
	a := matgen.Poisson2D(10, 10)
	n := a.Rows
	id := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		id.Add(i, i, 1)
	}
	g := id.ToCSR()
	b := matgen.RandomRHS(n, 15, a.MaxNorm())
	nranks := 3
	l := distmat.NewUniformLayout(n, nranks)
	var plainIters, splitIters int
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		x := make([]float64, hi-lo)
		st, err := DistCG(c, op, b[lo:hi], x, nil, Options{}, nil)
		if err != nil {
			return err
		}
		gOp := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(g, lo, hi))
		gtOp := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(g, lo, hi))
		x2 := make([]float64, hi-lo)
		st2, err := DistCG(c, op, b[lo:hi], x2, NewDistSplit(gOp, gtOp), Options{}, nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			plainIters, splitIters = st.Iterations, st2.Iterations
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if plainIters != splitIters {
		t.Fatalf("identity split changed iterations: %d vs %d", plainIters, splitIters)
	}
}

func TestDistCGLengthValidation(t *testing.T) {
	a := matgen.Poisson2D(4, 4)
	l := distmat.NewUniformLayout(a.Rows, 2)
	_, err := simmpi.Run(2, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		x := make([]float64, hi-lo)
		// Short rhs must panic inside DistCG; simmpi recovers rank panics
		// into errors, which Run propagates.
		DistCG(c, op, make([]float64, 1), x, nil, Options{}, nil)
		return fmt.Errorf("no panic for short rhs")
	})
	if err == nil || !strings.Contains(err.Error(), "local length") {
		t.Fatalf("length mismatch not detected: %v", err)
	}
}

func TestRecordResiduals(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	b := matgen.RandomRHS(a.Rows, 17, a.MaxNorm())
	x := make([]float64, a.Rows)
	st, err := CG(a, b, x, nil, Options{RecordResiduals: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Residuals) != st.Iterations {
		t.Fatalf("recorded %d residuals for %d iterations", len(st.Residuals), st.Iterations)
	}
	if last := st.Residuals[len(st.Residuals)-1]; last != st.RelResidual {
		t.Fatalf("last residual %v != final %v", last, st.RelResidual)
	}
	// CG residuals are not monotone, but the trend must be downward: the
	// final residual is far below the first.
	if st.Residuals[0] < st.RelResidual*10 {
		t.Fatalf("no residual reduction recorded: %v -> %v", st.Residuals[0], st.RelResidual)
	}
}

package krylov

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

// countingCtx is a deterministic cancellation source: Err reports Canceled
// once it has been polled more than limit times (across all ranks). The
// solvers poll exactly once per rank per iteration, and the collective
// cancellation verdict synchronizes ranks at iteration boundaries, so the
// solve stops after a bounded, repeatable number of iterations.
type countingCtx struct {
	polls *atomic.Int64
	limit int64
}

func (c countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c countingCtx) Done() <-chan struct{}       { return nil }
func (c countingCtx) Value(any) any               { return nil }
func (c countingCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func TestCGCancellation(t *testing.T) {
	const ranks = 3
	a := matgen.Poisson2D(24, 24)
	b := matgen.RandomRHS(a.Rows, 3, a.MaxNorm())

	variants := []CGVariant{CGClassic, CGClassicOverlap, CGFused, CGPipelined}
	for _, v := range variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			// Reference run: converges, giving the iteration budget the
			// canceled runs must stay under.
			_, full := distSolve(t, a, b, ranks, nil, Options{Tol: 1e-10, Variant: v})
			if !full.Converged {
				t.Fatalf("%v reference run did not converge", v)
			}

			cases := []struct {
				name  string
				limit int64 // countingCtx poll budget; 0 = canceled on entry
			}{
				{"pre-canceled", 0},
				{"mid-solve", int64(ranks * (full.Iterations / 2))},
			}
			for _, tc := range cases {
				ctx := countingCtx{polls: new(atomic.Int64), limit: tc.limit}
				st, err := distSolveErr(t, a, b, ranks, Options{Tol: 1e-10, Variant: v, Ctx: ctx, Trace: true})
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("%s: got error %v, want ErrCanceled", tc.name, err)
				}
				if st.Converged {
					t.Fatalf("%s: canceled solve reported convergence", tc.name)
				}
				if st.Iterations >= full.Iterations {
					t.Fatalf("%s: canceled at iteration %d, reference needed only %d",
						tc.name, st.Iterations, full.Iterations)
				}
				if tc.limit == 0 && st.Iterations != 0 {
					t.Fatalf("%s: pre-canceled solve ran %d iterations", tc.name, st.Iterations)
				}
				if tc.limit > 0 && st.Iterations == 0 {
					t.Fatalf("%s: mid-solve cancellation reported no progress", tc.name)
				}
				// Partial stats flow through the shared finish helper: the
				// trace is attached and consistent with the iteration count.
				if st.Trace == nil {
					t.Fatalf("%s: canceled solve dropped the trace", tc.name)
				}
				if got := len(st.Trace.Iters); got > st.Iterations+1 {
					t.Fatalf("%s: trace has %d records for %d iterations", tc.name, got, st.Iterations)
				}
			}
		})
	}
}

// distSolveErr runs a distributed solve like distSolve but returns the
// solver error (identical on all ranks under collective cancellation)
// instead of failing the test on it.
func distSolveErr(t *testing.T, a *sparse.CSR, b []float64, nranks int, opt Options) (Stats, error) {
	t.Helper()
	l := distmat.NewUniformLayout(a.Rows, nranks)
	var st Stats
	var solveErr error
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		xl := make([]float64, hi-lo)
		s, err := DistCG(c, op, b[lo:hi], xl, nil, opt, nil)
		if c.Rank() == 0 {
			st = s
			solveErr = err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, solveErr
}

func TestSerialCGCancellation(t *testing.T) {
	a := matgen.Poisson2D(20, 20)
	b := matgen.RandomRHS(a.Rows, 5, a.MaxNorm())
	x := make([]float64, a.Rows)
	full, err := CG(a, b, x, nil, Options{Tol: 1e-10}, nil)
	if err != nil || !full.Converged {
		t.Fatalf("reference solve failed: %v", err)
	}

	for _, tc := range []struct {
		name  string
		limit int64
	}{
		{"pre-canceled", 0},
		{"mid-solve", int64(full.Iterations / 2)},
	} {
		ctx := countingCtx{polls: new(atomic.Int64), limit: tc.limit}
		y := make([]float64, a.Rows)
		st, err := CG(a, b, y, nil, Options{Tol: 1e-10, Ctx: ctx}, nil)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: got error %v, want ErrCanceled", tc.name, err)
		}
		if tc.limit == 0 && st.Iterations != 0 {
			t.Fatalf("%s: pre-canceled solve ran %d iterations", tc.name, st.Iterations)
		}
		if tc.limit > 0 && (st.Iterations == 0 || st.Iterations >= full.Iterations) {
			t.Fatalf("%s: canceled at iteration %d of %d", tc.name, st.Iterations, full.Iterations)
		}
	}
}

// A context that never cancels must not change results: the solve with a
// background context converges exactly like the context-free one.
func TestCGContextNoCancelIdentical(t *testing.T) {
	a := matgen.Poisson2D(16, 16)
	b := matgen.RandomRHS(a.Rows, 9, a.MaxNorm())
	for _, v := range []CGVariant{CGClassic, CGFused, CGPipelined} {
		xPlain, stPlain := distSolve(t, a, b, 2, nil, Options{Tol: 1e-9, Variant: v})
		xCtx, stCtx := distSolve(t, a, b, 2, nil, Options{Tol: 1e-9, Variant: v, Ctx: context.Background()})
		if stPlain.Iterations != stCtx.Iterations {
			t.Fatalf("%v: context changed iteration count %d -> %d", v, stPlain.Iterations, stCtx.Iterations)
		}
		for i := range xPlain {
			if xPlain[i] != xCtx[i] {
				t.Fatalf("%v: context changed solution at %d", v, i)
			}
		}
	}
}

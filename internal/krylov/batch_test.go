package krylov

import (
	"context"
	"errors"
	"testing"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

// jacobiBatch is the batched counterpart of the Jacobi preconditioner,
// defined here so the serial differential test exercises a non-trivial
// BatchPreconditioner.
type jacobiBatch struct{ inv []float64 }

func (j *jacobiBatch) ApplyBatch(r, z []float64, k int, cols []int, fc *vecops.FlopCounter) {
	n := len(r) / k
	idx := cols
	if idx == nil {
		idx = make([]int, k)
		for c := range idx {
			idx[c] = c
		}
	}
	for i := 0; i < n; i++ {
		for _, c := range idx {
			z[i*k+c] = r[i*k+c] * j.inv[i]
		}
	}
	fc.Add(int64(n) * int64(len(idx)))
}

// distJacobiBatch is the distributed analog over a rank's local block.
type distJacobiBatch struct{ inv []float64 }

func (j *distJacobiBatch) ApplyBatch(c *simmpi.Comm, r, z []float64, k int, cols []int, fc *vecops.FlopCounter) {
	(&jacobiBatch{inv: j.inv}).ApplyBatch(r, z, k, cols, fc)
}

func packRHS(rhs [][]float64, k int) []float64 {
	n := len(rhs[0])
	b := make([]float64, n*k)
	for c, v := range rhs {
		vecops.PackColumn(b, v, k, c)
	}
	return b
}

// The serial batched solve is bit-identical to k scalar solves, per
// column, with matching Stats — including when the columns converge at
// different iterations and the mask freezes them one by one.
func TestCGBatchMatchesScalarBitwise(t *testing.T) {
	a := matgen.Poisson2D(12, 11)
	n := a.Rows
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	rhs := make([][]float64, k)
	for c := range rhs {
		rhs[c] = matgen.RandomRHS(n, int64(c+1), a.MaxNorm())
	}
	opt := Options{Tol: 1e-9}

	want := make([][]float64, k)
	wantSt := make([]Stats, k)
	for c := range rhs {
		want[c] = make([]float64, n)
		st, err := CG(a, rhs[c], want[c], jac, opt, nil)
		if err != nil {
			t.Fatalf("scalar col %d: %v", c, err)
		}
		wantSt[c] = st
	}

	b := packRHS(rhs, k)
	x := make([]float64, n*k)
	bs, err := CGBatch(a, b, x, &jacobiBatch{inv: jac.InvDiag}, k, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	iterSpread := false
	for c := 0; c < k; c++ {
		got := make([]float64, n)
		vecops.UnpackColumn(got, x, k, c)
		for i := range got {
			if got[i] != want[c][i] {
				t.Fatalf("col %d row %d: batch %v != scalar %v", c, i, got[i], want[c][i])
			}
		}
		cs := bs.Cols[c]
		if cs.Iterations != wantSt[c].Iterations || cs.Converged != wantSt[c].Converged ||
			cs.RelResidual != wantSt[c].RelResidual {
			t.Fatalf("col %d stats: batch %+v != scalar %+v", c, cs, wantSt[c])
		}
		if c > 0 && cs.Iterations != bs.Cols[0].Iterations {
			iterSpread = true
		}
	}
	if !iterSpread {
		t.Log("note: all columns converged at the same iteration; mask freezing untested here")
	}
	if bs.Iterations == 0 || len(bs.Cols) != k {
		t.Fatalf("batch stats: %+v", bs)
	}
}

// A zero column converges immediately with a zero solution while the rest
// of the batch solves normally.
func TestCGBatchZeroColumn(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	n := a.Rows
	const k = 2
	rhs := [][]float64{make([]float64, n), matgen.RandomRHS(n, 7, a.MaxNorm())}
	b := packRHS(rhs, k)
	x := make([]float64, n*k)
	bs, err := CGBatch(a, b, x, nil, k, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Cols[0].Converged || bs.Cols[0].Iterations != 0 {
		t.Fatalf("zero column stats: %+v", bs.Cols[0])
	}
	for i := 0; i < n; i++ {
		if x[i*k] != 0 {
			t.Fatalf("zero column x[%d] = %v", i, x[i*k])
		}
	}
	if !bs.Cols[1].Converged || bs.Cols[1].Iterations == 0 {
		t.Fatalf("nonzero column stats: %+v", bs.Cols[1])
	}
}

// A column whose system is indefinite breaks down and freezes without
// poisoning its batch mates: the SPD column still matches its scalar solve
// bit for bit.
func TestCGBatchBreakdownIsolatesColumn(t *testing.T) {
	// Indefinite diagonal system: CG breaks down at the first dᵀAd.
	coo := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		v := 1.0
		if i == 2 {
			v = -1
		}
		coo.Add(i, i, v)
	}
	a := coo.ToCSR()
	const k = 2
	bad := []float64{0, 0, 1, 0}
	good := []float64{1, 2, 0, 3} // zero where the bad diagonal sits
	want := make([]float64, 4)
	wantSt, err := CG(a, good, want, nil, Options{}, nil)
	if err != nil {
		t.Fatalf("scalar good column: %v", err)
	}

	b := packRHS([][]float64{bad, good}, k)
	x := make([]float64, 4*k)
	bs, err := CGBatch(a, b, x, nil, k, Options{MaxIter: 50}, nil)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if !bs.Broken[0] || bs.Cols[0].Converged {
		t.Fatalf("bad column not marked broken: broken=%v stats=%+v", bs.Broken[0], bs.Cols[0])
	}
	if !bs.Cols[1].Converged || bs.Cols[1].Iterations != wantSt.Iterations {
		t.Fatalf("good column stats: %+v, want %+v", bs.Cols[1], wantSt)
	}
	got := make([]float64, 4)
	vecops.UnpackColumn(got, x, k, 1)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("good column row %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestBatchVariantRejected(t *testing.T) {
	a := matgen.Poisson2D(4, 4)
	b := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	for _, v := range []CGVariant{CGClassicOverlap, CGPipelined} {
		_, err := CGBatch(a, b, x, nil, 1, Options{Variant: v}, nil)
		if !errors.Is(err, ErrBatchVariant) {
			t.Fatalf("variant %s: err = %v, want ErrBatchVariant", v, err)
		}
	}
	if _, err := CGBatch(a, b, x, nil, 0, Options{}, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestCGBatchCancellation(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	n := a.Rows
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := packRHS([][]float64{matgen.RandomRHS(n, 1, a.MaxNorm())}, 1)
	x := make([]float64, n)
	bs, err := CGBatch(a, b, x, nil, 1, Options{Ctx: ctx}, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if bs.Cols[0].Converged {
		t.Fatalf("canceled column marked converged: %+v", bs.Cols[0])
	}
}

// distBatchSolve runs DistCGBatch on nranks ranks and returns the
// assembled interleaved solution, the stats, and the run's meter.
func distBatchSolve(t *testing.T, a *sparse.CSR, b []float64, k, nranks int, opt Options) ([]float64, BatchStats, *simmpi.Meter) {
	t.Helper()
	n := a.Rows
	l := distmat.NewUniformLayout(n, nranks)
	x := make([]float64, n*k)
	var bst BatchStats
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
		// Meter only the solve phase: reset after the collective setup.
		c.Barrier()
		if c.Rank() == 0 {
			c.Meter().Reset()
		}
		c.Barrier()
		xl := make([]float64, (hi-lo)*k)
		bs, err := DistCGBatch(c, op, b[lo*k:hi*k], xl, &distJacobiBatch{inv: jac.InvDiag[lo:hi]}, k, opt, nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			bst = bs
		}
		copy(x[lo*k:hi*k], xl)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return x, bst, w.Meter()
}

// The distributed batch is bit-identical per column to scalar DistCG for
// both supported variants, and — with duplicated right-hand sides — its
// communication bill equals ONE scalar solve in messages and collective
// calls and exactly k scalar solves in halo bytes. That is the structural
// claim of the batched path, pinned on the meter.
func TestDistCGBatchMeteredAndBitwise(t *testing.T) {
	a := matgen.Poisson2D(14, 13)
	n := a.Rows
	const nranks, k = 3, 4
	l := distmat.NewUniformLayout(n, nranks)
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	rhs := matgen.RandomRHS(n, 3, a.MaxNorm())

	for _, variant := range []CGVariant{CGClassic, CGFused} {
		opt := Options{Tol: 1e-9, Variant: variant}

		// Scalar reference solve of the one RHS, metered.
		want := make([]float64, n)
		var wantSt Stats
		w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
			c.Barrier()
			if c.Rank() == 0 {
				c.Meter().Reset()
			}
			c.Barrier()
			xl := make([]float64, hi-lo)
			st, err := DistCG(c, op, rhs[lo:hi], xl, &distJacobi{inv: jac.InvDiag[lo:hi]}, opt, nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				wantSt = st
			}
			copy(want[lo:hi], xl)
			return nil
		})
		if err != nil {
			t.Fatalf("%s scalar: %v", variant, err)
		}
		solo := w.Meter().Snapshot()

		// Batched solve of the same RHS duplicated k times.
		dup := make([][]float64, k)
		for c := range dup {
			dup[c] = rhs
		}
		x, bst, meter := distBatchSolve(t, a, packRHS(dup, k), k, nranks, opt)
		batch := meter.Snapshot()

		for c := 0; c < k; c++ {
			got := make([]float64, n)
			vecops.UnpackColumn(got, x, k, c)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s col %d row %d: batch %v != scalar %v", variant, c, i, got[i], want[i])
				}
			}
			cs := bst.Cols[c]
			if cs.Iterations != wantSt.Iterations || cs.RelResidual != wantSt.RelResidual || !cs.Converged {
				t.Fatalf("%s col %d stats: %+v, want %+v", variant, c, cs, wantSt)
			}
		}
		if batch.CollectiveCalls != solo.CollectiveCalls {
			t.Fatalf("%s collective calls: batch %d != solo %d (should be equal — k-wide reductions)",
				variant, batch.CollectiveCalls, solo.CollectiveCalls)
		}
		if batch.P2PMessages != solo.P2PMessages {
			t.Fatalf("%s halo messages: batch %d != solo %d (should be equal — one k-wide message per neighbour)",
				variant, batch.P2PMessages, solo.P2PMessages)
		}
		if batch.P2PBytes != int64(k)*solo.P2PBytes {
			t.Fatalf("%s halo bytes: batch %d != %d×solo (%d)", variant, batch.P2PBytes, k, solo.P2PBytes)
		}
		if solo.P2PMessages == 0 {
			t.Fatalf("%s: degenerate partition, no halo traffic metered", variant)
		}
	}
}

// Distinct right-hand sides: each column of the distributed batch matches
// its own scalar solve bitwise, for both variants, even though the columns
// freeze at different iterations.
func TestDistCGBatchDistinctRHSBitwise(t *testing.T) {
	a := matgen.ThermalAniso(12, 12, 1, 100)
	n := a.Rows
	const nranks, k = 2, 3
	l := distmat.NewUniformLayout(n, nranks)
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([][]float64, k)
	for c := range rhs {
		rhs[c] = matgen.RandomRHS(n, int64(10+c), a.MaxNorm())
	}

	for _, variant := range []CGVariant{CGClassic, CGFused} {
		opt := Options{Tol: 1e-8, Variant: variant}
		want := make([][]float64, k)
		wantSt := make([]Stats, k)
		for ci := range rhs {
			want[ci] = make([]float64, n)
			_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
				lo, hi := l.Range(c.Rank())
				op := distmat.NewOp(c, l, lo, hi, distmat.ExtractLocalRows(a, lo, hi))
				xl := make([]float64, hi-lo)
				st, err := DistCG(c, op, rhs[ci][lo:hi], xl, &distJacobi{inv: jac.InvDiag[lo:hi]}, opt, nil)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					wantSt[ci] = st
				}
				copy(want[ci][lo:hi], xl)
				return nil
			})
			if err != nil {
				t.Fatalf("%s scalar col %d: %v", variant, ci, err)
			}
		}

		x, bst, _ := distBatchSolve(t, a, packRHS(rhs, k), k, nranks, opt)
		for c := 0; c < k; c++ {
			got := make([]float64, n)
			vecops.UnpackColumn(got, x, k, c)
			for i := range got {
				if got[i] != want[c][i] {
					t.Fatalf("%s col %d row %d: batch %v != scalar %v", variant, c, i, got[i], want[c][i])
				}
			}
			if bst.Cols[c].Iterations != wantSt[c].Iterations {
				t.Fatalf("%s col %d iterations: %d != %d", variant, c, bst.Cols[c].Iterations, wantSt[c].Iterations)
			}
		}
	}
}

package krylov

// Restarted GMRES — the nonsymmetric companion to the CG loops. The solver
// is right-preconditioned (it iterates on A·M with x recovered through one
// extra preconditioner apply per restart cycle), which keeps the residual
// the solver monitors equal to the true residual of A·x = b and lets the
// SPAI approximate inverse plug in as an explicit sparse matrix product.
// The distributed loop has a fixed, rank-uniform collective schedule that
// the telemetry tests pin: one Norm2 at every restart-cycle top, and for
// inner iteration j (0-based within its cycle) j+1 modified-Gram–Schmidt
// dot products plus one Norm2 — all through the metered AllreduceSum — with
// one extra AllreduceMax per iteration when a cancellation context is
// supplied, exactly as in the CG variants.

import (
	"fmt"
	"math"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

// Solver selects the Krylov iteration of a solve: CG for SPD systems
// (the FSAI family), GMRES for general nonsymmetric ones (SPAI).
type Solver int

const (
	// SolverCG is preconditioned conjugate gradients — the default, valid
	// only for SPD matrices.
	SolverCG Solver = iota
	// SolverGMRES is restarted GMRES with modified Gram–Schmidt, valid for
	// general (nonsymmetric) matrices.
	SolverGMRES
)

// String returns the flag spelling of the solver.
func (s Solver) String() string {
	switch s {
	case SolverCG:
		return "cg"
	case SolverGMRES:
		return "gmres"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// ParseSolver parses the -solver flag spellings: "cg", "gmres". The empty
// string is SolverCG.
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "", "cg":
		return SolverCG, nil
	case "gmres":
		return SolverGMRES, nil
	default:
		return SolverCG, fmt.Errorf("krylov: unknown solver %q (want cg or gmres)", s)
	}
}

// MatPrecond applies z ← M·r where M is an explicit sparse approximate
// inverse (the serial SPAI preconditioner).
type MatPrecond struct{ M *sparse.CSR }

// Apply computes z = M·r.
func (p *MatPrecond) Apply(r, z []float64, fc *vecops.FlopCounter) {
	p.M.MulVec(r, z)
	fc.Add(2 * int64(p.M.NNZ()))
}

// DistMatPrecond applies z ← M·r with a distributed explicit approximate
// inverse — one halo-exchanged SpMV, no collectives.
type DistMatPrecond struct {
	M *distmat.Op
	w *distmat.DistVec
}

// NewDistMatPrecond builds the distributed SPAI preconditioner from the
// local operator for M.
func NewDistMatPrecond(m *distmat.Op) *DistMatPrecond {
	return &DistMatPrecond{M: m, w: distmat.NewDistVec(m.LZ)}
}

// Apply computes the local slice of z = M·r.
func (p *DistMatPrecond) Apply(c *simmpi.Comm, r, z []float64, fc *vecops.FlopCounter) {
	mulDist(c, p.M, r, z, p.w, fc)
}

// restartLen resolves the restart length against the problem size.
func restartLen(opt Options, n int) int {
	m := opt.Restart
	if m <= 0 {
		m = 30
	}
	if m > n {
		m = n
	}
	if m < 1 {
		m = 1
	}
	return m
}

// flushTail folds the rank's traffic since the last cut into the most
// recent iteration record. The restarted loop's cycle-end update and the
// terminal restart check run after that iteration's record was cut, so
// every GMRES return path flushes to keep Setup + records summing exactly
// to the metered totals.
func (t *tracer) flushTail() {
	if t == nil || len(t.tr.Iters) == 0 {
		return
	}
	t.tr.Iters[len(t.tr.Iters)-1].Comm.add(t.delta())
}

// GMRES solves A x = b with right-preconditioned restarted GMRES, starting
// from the zero initial guess. x is overwritten with the solution; pass a
// zeroed slice. Options.Restart sets the cycle length (default 30);
// Options.Variant must be CGClassic (the zero value) — GMRES has no
// communication-rearranged variants.
func GMRES(a *sparse.CSR, b, x []float64, m Preconditioner, opt Options, fc *vecops.FlopCounter) (Stats, error) {
	return gmresSerial(a, a.Rows, b, x, m, opt, fc)
}

// gmresSerial is the serial restarted-GMRES loop over any matVec operator.
func gmresSerial(a matVec, n int, b, x []float64, prec Preconditioner, opt Options, fc *vecops.FlopCounter) (Stats, error) {
	opt = opt.withDefaults(n)
	if prec == nil {
		prec = Identity{}
	}
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	mr := restartLen(opt, n)
	r, z, w, v, h, cs, sn, g, y := ws.takeGMRES(n, mr)
	tr := newTracer(opt.Trace, nil)

	st := Stats{}
	norm0 := 0.0
	first := true
	for {
		// Cycle top: true residual r = b − A·x and its norm.
		if first {
			copy(r, b) // x = 0
		} else {
			a.MulVec(x, r)
			fc.Add(2 * int64(a.NNZ()))
			for i := range r {
				r[i] = b[i] - r[i]
			}
			fc.Add(int64(n))
		}
		beta := vecops.Norm2(r, fc)
		if first {
			norm0 = beta
			if norm0 == 0 {
				vecops.Fill(x, 0)
				return finish(Stats{Converged: true}, fc, tr), nil
			}
			tr.setup()
			first = false
		} else {
			st.RelResidual = beta / norm0
		}
		if nonfinite(beta) {
			tr.flushTail()
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (‖r‖ = %g)", ErrBreakdown, st.Iterations, beta)
		}
		if beta/norm0 <= opt.Tol {
			st.Converged = true
			st.RelResidual = beta / norm0
			tr.flushTail()
			return finish(st, fc, tr), nil
		}
		if st.Iterations >= opt.MaxIter {
			tr.flushTail()
			st = finish(st, fc, tr)
			return st, fmt.Errorf("%w: %d iterations, rel residual %.3e", ErrNoConvergence, st.Iterations, st.RelResidual)
		}

		// Build the cycle's Krylov basis.
		inv := 1 / beta
		for i := range r {
			v[0][i] = r[i] * inv
		}
		fc.Add(int64(n))
		g[0] = beta
		for i := 1; i <= mr; i++ {
			g[i] = 0
		}
		k := 0 // basis dimension built this cycle
		cycleDone := false
		for j := 0; j < mr && !cycleDone; j++ {
			if canceled(nil, opt.Ctx) {
				tr.flushTail()
				return finish(st, fc, tr), fmt.Errorf("%w at iteration %d: %v", ErrCanceled, st.Iterations+1, opt.Ctx.Err())
			}
			prec.Apply(v[j], z, fc)
			a.MulVec(z, w)
			fc.Add(2 * int64(a.NNZ()))
			// Modified Gram–Schmidt against the basis built so far.
			for i := 0; i <= j; i++ {
				hij := vecops.Dot(v[i], w, fc)
				h[i*mr+j] = hij
				vecops.Axpy(-hij, v[i], w, fc)
			}
			hnext := vecops.Norm2(w, fc)
			if nonfinite(hnext) {
				tr.flushTail()
				return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (‖w‖ = %g)", ErrBreakdown, st.Iterations+1, hnext)
			}
			est, err := givensStep(h, cs, sn, g, mr, j, hnext, norm0)
			st.Iterations++
			k = j + 1
			if err != nil {
				tr.flushTail()
				return finish(st, fc, tr), fmt.Errorf("%w at iteration %d: %v", ErrBreakdown, st.Iterations, err)
			}
			st.RelResidual = est
			if opt.RecordResiduals {
				st.Residuals = append(st.Residuals, est)
			}
			tr.record(st.Iterations, est, 0, 0)
			switch {
			case hnext == 0:
				// Happy breakdown: the Krylov space is invariant, so the
				// cycle's solution is exact up to rounding.
				if est > opt.Tol {
					tr.flushTail()
					return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (happy breakdown with rel residual %.3e > tol)", ErrBreakdown, st.Iterations, est)
				}
				st.Converged = true
				cycleDone = true
			case est <= opt.Tol || st.Iterations >= opt.MaxIter:
				st.Converged = est <= opt.Tol
				cycleDone = true
			default:
				inv := 1 / hnext
				for i := range w {
					v[j+1][i] = w[i] * inv
				}
				fc.Add(int64(n))
			}
		}

		// Cycle end: solve the k×k triangular system and fold the correction
		// x ← x + M·(V·y) — one preconditioner apply per cycle.
		if err := hessSolve(h, g, y, mr, k); err != nil {
			tr.flushTail()
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d: %v", ErrBreakdown, st.Iterations, err)
		}
		vecops.Fill(w, 0)
		for i := 0; i < k; i++ {
			vecops.Axpy(y[i], v[i], w, fc)
		}
		prec.Apply(w, z, fc)
		vecops.Axpy(1, z, x, fc)
		if st.Converged {
			tr.flushTail()
			return finish(st, fc, tr), nil
		}
	}
}

// givensStep folds column j of the Hessenberg into the QR factorization
// maintained by Givens rotations: applies rotations 0..j−1 to the new
// column, forms rotation j to annihilate the subdiagonal hnext, updates the
// rotated RHS g, and returns the new relative-residual estimate
// |g[j+1]|/norm0. h is (m+1)×m row-major flat with only rows 0..j in use.
func givensStep(h, cs, sn, g []float64, m, j int, hnext, norm0 float64) (float64, error) {
	for i := 0; i < j; i++ {
		t := cs[i]*h[i*m+j] + sn[i]*h[(i+1)*m+j]
		h[(i+1)*m+j] = -sn[i]*h[i*m+j] + cs[i]*h[(i+1)*m+j]
		h[i*m+j] = t
	}
	denom := math.Hypot(h[j*m+j], hnext)
	if denom == 0 || nonfinite(denom) {
		return 0, fmt.Errorf("Hessenberg column %d is zero below the rotated diagonal (denom = %g)", j, denom)
	}
	cs[j] = h[j*m+j] / denom
	sn[j] = hnext / denom
	h[j*m+j] = denom
	g[j+1] = -sn[j] * g[j]
	g[j] = cs[j] * g[j]
	est := math.Abs(g[j+1]) / norm0
	if nonfinite(est) {
		return 0, fmt.Errorf("residual estimate not finite (%g)", est)
	}
	return est, nil
}

// hessSolve back-substitutes the rotated k×k upper-triangular system
// R·y = g left by the Givens steps.
func hessSolve(h, g, y []float64, m, k int) error {
	for i := k - 1; i >= 0; i-- {
		s := g[i]
		for l := i + 1; l < k; l++ {
			s -= h[i*m+l] * y[l]
		}
		if h[i*m+i] == 0 || nonfinite(h[i*m+i]) {
			return fmt.Errorf("triangular solve pivot %d = %g", i, h[i*m+i])
		}
		y[i] = s / h[i*m+i]
		if nonfinite(y[i]) {
			return fmt.Errorf("triangular solve entry %d not finite", i)
		}
	}
	return nil
}

// DistGMRES solves A x = b with right-preconditioned restarted GMRES in the
// distributed setting. Every rank passes its local slices of b and x (x
// zeroed); all ranks receive identical Stats — every termination decision
// is taken on AllreduceSum results, bitwise identical on every rank. The
// modified-Gram–Schmidt projections are sequential metered collectives
// (j+1 dots plus one norm for inner iteration j), giving GMRES the
// latency-bound reduction profile the archmodel cost entries account for.
func DistGMRES(c *simmpi.Comm, op *distmat.Op, b, x []float64, prec DistPreconditioner, opt Options, fc *vecops.FlopCounter) (Stats, error) {
	tr := newTracer(opt.Trace, c)
	nl := op.LZ.NLocal()
	nGlobal := int(c.AllreduceSumInt64(int64(nl))[0])
	opt = opt.withDefaults(nGlobal)
	if prec == nil {
		prec = DistIdentity{}
	}
	if len(b) != nl || len(x) != nl {
		panic(fmt.Sprintf("krylov: DistGMRES local length %d/%d, want %d", len(b), len(x), nl))
	}
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	mr := restartLen(opt, nGlobal)
	r, z, w, v, h, cs, sn, g, y := ws.takeGMRES(nl, mr)
	scratch := ws.distScratch(op.LZ)

	st := Stats{}
	norm0 := 0.0
	first := true
	for {
		if first {
			copy(r, b) // x = 0
		} else {
			mulDist(c, op, x, r, scratch, fc)
			for i := range r {
				r[i] = b[i] - r[i]
			}
			fc.Add(int64(nl))
		}
		beta := distmat.Norm2(c, r, fc)
		if first {
			norm0 = beta
			if norm0 == 0 {
				vecops.Fill(x, 0)
				return finish(Stats{Converged: true}, fc, tr), nil
			}
			tr.setup()
			first = false
		} else {
			st.RelResidual = beta / norm0
		}
		if nonfinite(beta) {
			tr.flushTail()
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (‖r‖ = %g)", ErrBreakdown, st.Iterations, beta)
		}
		if beta/norm0 <= opt.Tol {
			st.Converged = true
			st.RelResidual = beta / norm0
			tr.flushTail()
			return finish(st, fc, tr), nil
		}
		if st.Iterations >= opt.MaxIter {
			tr.flushTail()
			st = finish(st, fc, tr)
			return st, fmt.Errorf("%w: %d iterations, rel residual %.3e", ErrNoConvergence, st.Iterations, st.RelResidual)
		}

		inv := 1 / beta
		for i := range r {
			v[0][i] = r[i] * inv
		}
		fc.Add(int64(nl))
		g[0] = beta
		for i := 1; i <= mr; i++ {
			g[i] = 0
		}
		k := 0
		cycleDone := false
		for j := 0; j < mr && !cycleDone; j++ {
			if canceled(c, opt.Ctx) {
				tr.flushTail()
				return finish(st, fc, tr), fmt.Errorf("%w at iteration %d", ErrCanceled, st.Iterations+1)
			}
			prec.Apply(c, v[j], z, fc)
			mulDist(c, op, z, w, scratch, fc)
			for i := 0; i <= j; i++ {
				hij := distmat.Dot(c, v[i], w, fc)
				h[i*mr+j] = hij
				vecops.Axpy(-hij, v[i], w, fc)
			}
			hnext := distmat.Norm2(c, w, fc)
			if nonfinite(hnext) {
				// Allreduce result — identical on every rank — so this return
				// is itself the collective verdict, as in the CG loops.
				tr.flushTail()
				return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (‖w‖ = %g)", ErrBreakdown, st.Iterations+1, hnext)
			}
			est, err := givensStep(h, cs, sn, g, mr, j, hnext, norm0)
			st.Iterations++
			k = j + 1
			if err != nil {
				tr.flushTail()
				return finish(st, fc, tr), fmt.Errorf("%w at iteration %d: %v", ErrBreakdown, st.Iterations, err)
			}
			st.RelResidual = est
			if opt.RecordResiduals {
				st.Residuals = append(st.Residuals, est)
			}
			tr.record(st.Iterations, est, 0, 0)
			switch {
			case hnext == 0:
				if est > opt.Tol {
					tr.flushTail()
					return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (happy breakdown with rel residual %.3e > tol)", ErrBreakdown, st.Iterations, est)
				}
				st.Converged = true
				cycleDone = true
			case est <= opt.Tol || st.Iterations >= opt.MaxIter:
				st.Converged = est <= opt.Tol
				cycleDone = true
			default:
				inv := 1 / hnext
				for i := range w {
					v[j+1][i] = w[i] * inv
				}
				fc.Add(int64(nl))
			}
		}

		if err := hessSolve(h, g, y, mr, k); err != nil {
			tr.flushTail()
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d: %v", ErrBreakdown, st.Iterations, err)
		}
		vecops.Fill(w, 0)
		for i := 0; i < k; i++ {
			vecops.Axpy(y[i], v[i], w, fc)
		}
		prec.Apply(c, w, z, fc)
		vecops.Axpy(1, z, x, fc)
		if st.Converged {
			tr.flushTail()
			return finish(st, fc, tr), nil
		}
	}
}

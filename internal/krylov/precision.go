package krylov

import "fmt"

// Precision selects the value-storage width of the FSAI factors and the
// operator inside a solve. It is a SETUP-level knob: the narrowed factors
// are part of the prepared state (and of the prepared-system cache key), not
// a per-solve toggle.
type Precision int

const (
	// FP64 is full double precision throughout — the default and the
	// reference every mixed-precision claim is checked against.
	FP64 Precision = iota
	// FP32 stores factor (and operator) values in float32 and runs the CG
	// loop as the inner solve of an FP64 iterative-refinement outer loop
	// (SolveRefined / DistCGRefined): halo traffic halves, products
	// accumulate in float64, and the refinement recovers FP64 accuracy.
	FP32
)

// String returns the flag spelling of the precision.
func (p Precision) String() string {
	switch p {
	case FP64:
		return "fp64"
	case FP32:
		return "fp32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision parses the -precision flag spellings: "fp64" and "fp32".
// The empty string is FP64.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "fp64":
		return FP64, nil
	case "fp32":
		return FP32, nil
	default:
		return FP64, fmt.Errorf("krylov: unknown precision %q (want fp64 or fp32)", s)
	}
}

package krylov

// Mixed-precision solves with FP64 iterative refinement. The inner CG loop
// runs against float32-valued operators — the FSAI factors (and the system
// matrix) store float32 values, products accumulate in float64, and halo
// exchanges travel at 4 bytes per value; an FP64 outer loop then recomputes
// the true residual r = b − A·x with the full-precision operator, solves the
// correction system A·d = r in mixed precision again, and updates x ← x + d.
// The iteration vectors are float64 throughout, so the inner loop's own
// recurrence residual keeps descending to the caller's tolerance even though
// the TRUE residual floors near the float32 representation limit. The inner
// tolerance is therefore adaptive: the first inner solve aims directly at the
// target, and each refinement afterwards only closes the gap the FP64
// recomputation still shows — typically one full-depth solve plus one short
// correction, so the total inner iteration count stays close to a pure FP64
// solve's. That, plus the outer loop's few full-width exchanges being a
// vanishing fraction of the hundreds of half-width inner iterations, is what
// the metered halo-byte-ratio tests pin (~0.5× of a pure FP64 solve).
//
// Every loop-control scalar of the outer loop (inner iteration counts,
// residual norms) is an Allreduce result, bitwise identical on all ranks,
// so the distributed variants stay collectively consistent with no extra
// communication beyond the residual recomputation itself.

import (
	"errors"
	"fmt"
	"math"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

// pipelinedInnerReplaceEvery is the residual-replacement period forced on
// inner pipelined solves. The pipelined recurrences drift far faster under
// the float32 operator than the classic ones: past roughly five decades the
// recurrence residual decouples from the true one, and further iterations
// degrade the iterate until the drifted curvature breaks down. Periodically
// recomputing the residual against the (float32) operator keeps the
// recurrence honest, so one inner solve can aim as deep as the classic loop
// instead of restarting refinements against a drifting estimate.
const pipelinedInnerReplaceEvery = 25

// refineSafety is the margin each inner solve aims below its nominal
// requirement: the true FP64 residual exceeds the inner loop's recurrence
// residual by the float32 operator drift, so demanding an extra factor of
// two keeps the recomputed residual under the line the recurrence crossed.
// It is also the shallowest reduction a correction solve may target — every
// refinement must at least halve the residual or the stall guard fires.
const refineSafety = 0.5

// maxRefinements bounds the outer loop; with at least ~2 orders of magnitude
// per step any solve that needs this many refinements is stalled at the
// representation floor, not converging.
const maxRefinements = 20

// refineStallFactor: a refinement that shrinks the residual by less than
// this factor has hit the float32 floor — further refinements would re-run
// full inner solves for no progress.
const refineStallFactor = 0.5

// innerOptions derives the inner solve's options: the adaptive tolerance for
// the current outer residual, the remaining iteration budget, telemetry off
// (the outer tracer records at refinement granularity).
func innerOptions(opt Options, budget int, relres float64) Options {
	in := opt
	in.Trace = false
	in.RecordResiduals = false
	in.Tol = innerTol(opt.Tol, relres)
	if in.Variant == CGPipelined && in.ResidualReplaceEvery == 0 {
		in.ResidualReplaceEvery = pipelinedInnerReplaceEvery
	}
	in.MaxIter = budget
	return in
}

// innerTol targets the remaining gap: with the outer residual at relres and
// the target at tol, the correction solve needs a relative reduction of
// tol/relres on its own right-hand side, deepened by refineSafety to absorb
// the float32 drift between the inner recurrence residual and the true one.
// The first solve (relres = 1) thus aims just under tol itself — when the
// drift floor is far below tol it converges in a single refinement — and a
// near-miss refinement runs only the handful of iterations its small gap
// needs, instead of a fixed deep restart.
func innerTol(tol, relres float64) float64 {
	t := refineSafety * tol / relres
	if t > refineSafety {
		t = refineSafety
	}
	return t
}

// Split32 applies z = Gᵀ(G·r) with float32-valued factors and float64
// accumulation — the mixed-precision serial counterpart of Split.
type Split32 struct {
	G, GT *sparse.CSR32
	w     []float64
}

// NewSplit32 narrows the FP64 factors G and Gᵀ into the mixed-precision
// split preconditioner.
func NewSplit32(g, gt *sparse.CSR) *Split32 {
	return &Split32{G: sparse.NewCSR32(g), GT: sparse.NewCSR32(gt), w: make([]float64, g.Rows)}
}

// Apply computes z = Gᵀ(G·r).
func (s *Split32) Apply(r, z []float64, fc *vecops.FlopCounter) {
	s.G.MulVec(r, s.w)
	s.GT.MulVec(s.w, z)
	fc.Add(2 * int64(s.G.NNZ()+s.GT.NNZ()))
}

// SolveRefined solves A x = b in mixed precision with FP64 iterative
// refinement: inner CG solves run over the float32 narrowing of A with the
// given (typically float32-valued, e.g. Split32) preconditioner, the outer
// loop computes FP64 residuals with the full-precision A. x is overwritten;
// Stats.Refinements counts outer steps and Stats.Iterations the total inner
// iterations. Options.Tol/MaxIter apply to the outer residual and the total
// inner iteration budget respectively.
func SolveRefined(a *sparse.CSR, b, x []float64, m Preconditioner, opt Options, fc *vecops.FlopCounter) (Stats, error) {
	n := a.Rows
	opt = opt.withDefaults(n)
	if m == nil {
		m = Identity{}
	}
	tr := newTracer(opt.Trace, nil)
	a32 := sparse.NewCSR32(a)
	r := make([]float64, n)
	d := make([]float64, n)
	copy(r, b)
	norm0 := vecops.Norm2(r, fc)
	if norm0 == 0 {
		vecops.Fill(x, 0)
		return finish(Stats{Converged: true}, fc, tr), nil
	}
	vecops.Fill(x, 0)
	tr.setup()

	st := Stats{RelResidual: 1}
	for st.Refinements < maxRefinements {
		if canceled(nil, opt.Ctx) {
			return finish(st, fc, tr), fmt.Errorf("%w during refinement %d: %v", ErrCanceled, st.Refinements+1, opt.Ctx.Err())
		}
		budget := opt.MaxIter - st.Iterations
		if budget <= 0 {
			break
		}
		vecops.Fill(d, 0)
		ist, ierr := cgSerial(a32, n, r, d, m, innerOptions(opt, budget, st.RelResidual), fc)
		st.Iterations += ist.Iterations
		st.Refinements++
		// An inner breakdown is expected near the float32 floor (the drifted
		// recurrences go indefinite before the recurrence residual reaches a
		// target below the floor): the correction accumulated so far is still
		// valid progress, so fold it in and let the FP64 residual decide. Only
		// a breakdown that produced no progress propagates as one (below).
		innerBroke := errors.Is(ierr, ErrBreakdown)
		if ierr != nil && !errors.Is(ierr, ErrNoConvergence) && !innerBroke {
			tr.refine(st.Refinements, ist.Iterations, st.RelResidual)
			return finish(st, fc, tr), fmt.Errorf("refinement %d inner solve: %w", st.Refinements, ierr)
		}
		vecops.Axpy(1, d, x, fc)
		// FP64 true residual: r = b − A·x with the full-precision operator.
		a.MulVec(x, r)
		fc.Add(2 * int64(a.NNZ()))
		for i := range r {
			r[i] = b[i] - r[i]
		}
		fc.Add(int64(n))
		prev := st.RelResidual
		rnorm := vecops.Norm2(r, fc)
		st.RelResidual = rnorm / norm0
		tr.refine(st.Refinements, ist.Iterations, st.RelResidual)
		if nonfinite(rnorm) {
			return finish(st, fc, tr), fmt.Errorf("%w at refinement %d (‖r‖ = %g)", ErrBreakdown, st.Refinements, rnorm)
		}
		if st.RelResidual <= opt.Tol {
			st.Converged = true
			return finish(st, fc, tr), nil
		}
		if st.RelResidual >= prev*refineStallFactor {
			if innerBroke {
				return finish(st, fc, tr), fmt.Errorf("%w at refinement %d (inner solve broke down, rel residual %.3e)",
					ErrBreakdown, st.Refinements, st.RelResidual)
			}
			break // float32 floor: no further refinement can reach Tol
		}
	}
	st = finish(st, fc, tr)
	return st, fmt.Errorf("%w: %d refinements, %d inner iterations, rel residual %.3e",
		ErrNoConvergence, st.Refinements, st.Iterations, st.RelResidual)
}

// DistCGRefined solves A x = b distributed in mixed precision with FP64
// iterative refinement. aOuter is the full-precision operator used for the
// outer residual recomputation; aInner is the mixed-precision operator (same
// Localized view with the f32 kernel and half-width halo plan) the inner
// DistCG solves run against, under the variant chosen in opt. The
// preconditioner m should likewise be built over f32 operators. Every rank
// passes its local slices; all ranks receive identical Stats.
func DistCGRefined(c *simmpi.Comm, aOuter, aInner *distmat.Op, b, x []float64, m DistPreconditioner, opt Options, fc *vecops.FlopCounter) (Stats, error) {
	tr := newTracer(opt.Trace, c)
	nl := aOuter.LZ.NLocal()
	nGlobal := int(c.AllreduceSumInt64(int64(nl))[0])
	opt = opt.withDefaults(nGlobal)
	if m == nil {
		m = DistIdentity{}
	}
	if len(b) != nl || len(x) != nl {
		panic(fmt.Sprintf("krylov: DistCGRefined local length %d/%d, want %d", len(b), len(x), nl))
	}
	r := make([]float64, nl)
	d := make([]float64, nl)
	scratch := distmat.NewDistVec(aOuter.LZ)
	copy(r, b)
	norm0 := distmat.Norm2(c, r, fc)
	if norm0 == 0 {
		vecops.Fill(x, 0)
		return finish(Stats{Converged: true}, fc, tr), nil
	}
	vecops.Fill(x, 0)
	tr.setup()

	st := Stats{RelResidual: 1}
	for st.Refinements < maxRefinements {
		if canceled(c, opt.Ctx) {
			return finish(st, fc, tr), fmt.Errorf("%w during refinement %d", ErrCanceled, st.Refinements+1)
		}
		// budget and every residual below derive from Allreduce results, so
		// all ranks take the same branch at every step.
		budget := opt.MaxIter - st.Iterations
		if budget <= 0 {
			break
		}
		vecops.Fill(d, 0)
		ist, ierr := DistCG(c, aInner, r, d, m, innerOptions(opt, budget, st.RelResidual), fc)
		st.Iterations += ist.Iterations
		st.Refinements++
		// Inner breakdown near the float32 floor is survivable: the partial
		// correction is folded in and the FP64 recomputation decides whether
		// to refine again. The breakdown verdict is itself an Allreduce-
		// derived scalar, so every rank takes this branch identically.
		innerBroke := errors.Is(ierr, ErrBreakdown)
		if ierr != nil && !errors.Is(ierr, ErrNoConvergence) && !innerBroke {
			tr.refine(st.Refinements, ist.Iterations, st.RelResidual)
			return finish(st, fc, tr), fmt.Errorf("refinement %d inner solve: %w", st.Refinements, ierr)
		}
		vecops.Axpy(1, d, x, fc)
		aOuter.MulVec(c, x, r, scratch, fc)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		fc.Add(int64(nl))
		prev := st.RelResidual
		rnorm := distmat.Norm2(c, r, fc)
		st.RelResidual = rnorm / norm0
		tr.refine(st.Refinements, ist.Iterations, st.RelResidual)
		if nonfinite(rnorm) {
			return finish(st, fc, tr), fmt.Errorf("%w at refinement %d (‖r‖ = %g)", ErrBreakdown, st.Refinements, rnorm)
		}
		if st.RelResidual <= opt.Tol {
			st.Converged = true
			return finish(st, fc, tr), nil
		}
		if st.RelResidual >= prev*refineStallFactor {
			if innerBroke {
				return finish(st, fc, tr), fmt.Errorf("%w at refinement %d (inner solve broke down, rel residual %.3e)",
					ErrBreakdown, st.Refinements, st.RelResidual)
			}
			break // float32 floor: no further refinement can reach Tol
		}
	}
	st = finish(st, fc, tr)
	return st, fmt.Errorf("%w: %d refinements, %d inner iterations, rel residual %.3e",
		ErrNoConvergence, st.Refinements, st.Iterations, st.RelResidual)
}

// DistCGBatchRefined is the batched counterpart of DistCGRefined: k systems
// refined together, with the per-column freeze semantics of DistCGBatch.
// Columns whose FP64 residual reaches Tol (or breaks down, or stalls at the
// float32 floor) stop being refined — their residual columns are zeroed so
// subsequent inner solves freeze them immediately. BatchStats.Refinements
// counts outer steps; per-column Iterations accumulate inner iterations.
func DistCGBatchRefined(c *simmpi.Comm, aOuter, aInner *distmat.Op, b, x []float64, m DistBatchPreconditioner, k int, opt Options, fc *vecops.FlopCounter) (BatchStats, error) {
	if err := checkBatchOptions(k, opt); err != nil {
		return BatchStats{}, err
	}
	nl := aOuter.LZ.NLocal()
	nGlobal := int(c.AllreduceSumInt64(int64(nl))[0])
	opt = opt.withDefaults(nGlobal)
	if len(b) != nl*k || len(x) != nl*k {
		panic(fmt.Sprintf("krylov: DistCGBatchRefined local block length %d/%d, want %d (k=%d)", len(b), len(x), nl*k, k))
	}
	r := make([]float64, nl*k)
	d := make([]float64, nl*k)
	scratch := distmat.NewBatchDistVec(aOuter.LZ, k)
	copy(r, b)
	vecops.Fill(x, 0)

	bs := BatchStats{K: k, Cols: make([]Stats, k), Broken: make([]bool, k)}
	norm0 := make([]float64, k)
	tmp := make([]float64, k)
	done := make([]bool, k) // no further refinement for this column
	distmat.DotBatchDist(c, r, r, k, nil, tmp, fc)
	allDone := true
	for col := 0; col < k; col++ {
		norm0[col] = math.Sqrt(tmp[col])
		if norm0[col] == 0 {
			bs.Cols[col].Converged = true
			done[col] = true
		} else {
			bs.Cols[col].RelResidual = 1
			allDone = false
		}
	}
	if allDone {
		return batchResult(bs, 0, nil)
	}

	for bs.Refinements < maxRefinements {
		if canceled(c, opt.Ctx) {
			return batchResult(bs, bs.Iterations, opt.Ctx)
		}
		budget := opt.MaxIter - bs.Iterations
		if budget <= 0 {
			break
		}
		// Zero finished columns' residuals: the inner solve then freezes
		// them at setup (zero RHS) and their corrections stay zero.
		for col := 0; col < k; col++ {
			if done[col] {
				for i := 0; i < nl; i++ {
					r[i*k+col] = 0
				}
			}
		}
		// The shared inner tolerance must serve the column farthest from the
		// target: tol/relres is tightest for the largest relres, so the max
		// over the active columns gives the deepest requirement.
		maxRel := 0.0
		for col := 0; col < k; col++ {
			if !done[col] && bs.Cols[col].RelResidual > maxRel {
				maxRel = bs.Cols[col].RelResidual
			}
		}
		vecops.Fill(d, 0)
		ibs, ierr := DistCGBatch(c, aInner, r, d, m, k, innerOptions(opt, budget, maxRel), fc)
		bs.Iterations += ibs.Iterations
		bs.Refinements++
		// A column whose inner solve broke down near the float32 floor keeps
		// its partial correction and stays live: the FP64 recomputation below
		// decides whether it converged, refines again, or — if the breakdown
		// produced no progress — marks it Broken for good.
		innerBroke := make([]bool, k)
		for col := 0; col < k; col++ {
			if !done[col] {
				bs.Cols[col].Iterations += ibs.Cols[col].Iterations
				innerBroke[col] = ibs.Broken[col]
			}
		}
		if ierr != nil && errors.Is(ierr, ErrCanceled) {
			return bs, fmt.Errorf("refinement %d inner solve: %w", bs.Refinements, ierr)
		}
		vecops.Axpy(1, d, x, fc)
		aOuter.MulMat(c, x, r, k, nil, scratch, fc)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		fc.Add(int64(nl * k))
		distmat.DotBatchDist(c, r, r, k, nil, tmp, fc)
		allDone = true
		for col := 0; col < k; col++ {
			if done[col] {
				continue
			}
			st := &bs.Cols[col]
			prev := st.RelResidual
			st.RelResidual = math.Sqrt(tmp[col]) / norm0[col]
			if nonfinite(tmp[col]) {
				bs.Broken[col] = true
				done[col] = true
				continue
			}
			if st.RelResidual <= opt.Tol {
				st.Converged = true
				done[col] = true
				continue
			}
			if st.RelResidual >= prev*refineStallFactor {
				if innerBroke[col] {
					bs.Broken[col] = true
				}
				done[col] = true // float32 floor for this column
				continue
			}
			allDone = false
		}
		if allDone {
			break
		}
	}
	return batchResult(bs, 0, nil)
}

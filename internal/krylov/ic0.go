package krylov

import (
	"errors"
	"fmt"
	"math"

	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

// Classical baseline preconditioners beyond FSAI: zero-fill incomplete
// Cholesky (IC(0)) and its distributed block-Jacobi form, where each rank
// factors only its local diagonal block. Unlike FSAI, applying IC(0)
// requires triangular solves, which do not parallelize across unknowns —
// the reason the paper's line of work prefers approximate inverses. The
// block-Jacobi variant is embarrassingly parallel but degrades with rank
// count, which the ablation benches demonstrate.

// ErrBreakdownIC is wrapped when IC(0) hits a non-positive pivot.
var ErrBreakdownIC = errors.New("krylov: IC(0) breakdown (non-positive pivot)")

// IC0 is a zero-fill incomplete Cholesky preconditioner: L has exactly the
// lower-triangular pattern of A, and Apply performs z = L⁻ᵀ L⁻¹ r.
type IC0 struct {
	L *sparse.CSR // lower triangular with diagonal, row-sorted
	// LT is Lᵀ stored by rows for the backward solve.
	LT *sparse.CSR
}

// NewIC0 computes the IC(0) factorization of an SPD matrix. A small
// diagonal shift is retried automatically when the factorization breaks
// down (standard practice for matrices that are not H-matrices).
func NewIC0(a *sparse.CSR) (*IC0, error) {
	for _, shift := range []float64{0, 1e-8, 1e-4, 1e-2, 1e-1} {
		m := a
		if shift > 0 {
			m = a.Clone()
			for i := 0; i < m.Rows; i++ {
				cols, vals := m.Row(i)
				for k, c := range cols {
					if c == i {
						vals[k] *= 1 + shift
					}
				}
			}
		}
		l, err := ic0Factor(m)
		if err == nil {
			return &IC0{L: l, LT: l.Transpose()}, nil
		}
		if !errors.Is(err, ErrBreakdownIC) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w even with diagonal shifts", ErrBreakdownIC)
}

// ic0Factor computes L on the lower-triangular pattern of a.
func ic0Factor(a *sparse.CSR) (*sparse.CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("krylov: IC(0) on non-square matrix")
	}
	l := a.LowerTriangle()
	n := l.Rows
	// Row-oriented up-looking IC(0): for each row i, for each k < i in the
	// row pattern, L[i][k] = (A[i][k] - sum_j L[i][j]*L[k][j]) / L[k][k],
	// then the diagonal pivot.
	for i := 0; i < n; i++ {
		cols, vals := l.Row(i)
		for kk, k := range cols {
			if k == i {
				// Diagonal: L[i][i] = sqrt(A[i][i] - sum L[i][j]^2).
				s := vals[kk]
				for jj := 0; jj < kk; jj++ {
					s -= vals[jj] * vals[jj]
				}
				if s <= 0 || math.IsNaN(s) {
					return nil, fmt.Errorf("%w at row %d (pivot %g)", ErrBreakdownIC, i, s)
				}
				vals[kk] = math.Sqrt(s)
				continue
			}
			// Off-diagonal within pattern.
			s := vals[kk]
			kcols, kvals := l.Row(k)
			// Merge the strictly-lower parts of rows i and k.
			a1, a2 := 0, 0
			for a1 < kk && a2 < len(kcols) && kcols[a2] < k {
				switch {
				case cols[a1] < kcols[a2]:
					a1++
				case cols[a1] > kcols[a2]:
					a2++
				default:
					s -= vals[a1] * kvals[a2]
					a1++
					a2++
				}
			}
			// Divide by L[k][k] (last entry of row k's lower part at column k).
			dkk := 0.0
			for a2 = len(kcols) - 1; a2 >= 0; a2-- {
				if kcols[a2] == k {
					dkk = kvals[a2]
					break
				}
			}
			if dkk == 0 {
				return nil, fmt.Errorf("%w: zero pivot at row %d", ErrBreakdownIC, k)
			}
			vals[kk] = s / dkk
		}
	}
	return l, nil
}

// Apply computes z = (L·Lᵀ)⁻¹ r via forward and backward substitution.
func (p *IC0) Apply(r, z []float64, fc *vecops.FlopCounter) {
	n := p.L.Rows
	copy(z, r)
	// Forward solve L y = r.
	for i := 0; i < n; i++ {
		cols, vals := p.L.Row(i)
		s := z[i]
		diag := 1.0
		for k, c := range cols {
			if c == i {
				diag = vals[k]
				break
			}
			s -= vals[k] * z[c]
		}
		z[i] = s / diag
	}
	// Backward solve Lᵀ x = y; LT rows are the columns of L.
	for i := n - 1; i >= 0; i-- {
		cols, vals := p.LT.Row(i)
		s := z[i]
		diag := 1.0
		for k := len(cols) - 1; k >= 0; k-- {
			c := cols[k]
			if c == i {
				diag = vals[k]
				break
			}
			s -= vals[k] * z[c]
		}
		z[i] = s / diag
	}
	fc.Add(4 * int64(p.L.NNZ()))
}

// BlockJacobiIC is the distributed block-Jacobi preconditioner: each rank
// holds the IC(0) factorization of its local diagonal block of A and
// applies it with no communication at all. The classical fully-parallel
// baseline the paper contrasts with ("Block-Jacobi" in §1).
type BlockJacobiIC struct {
	local *IC0
}

// NewBlockJacobiIC factors the local diagonal block A(lo:hi, lo:hi) of a
// rank's rows (global columns).
func NewBlockJacobiIC(aRows *sparse.CSR, lo, hi int) (*BlockJacobiIC, error) {
	nl := hi - lo
	block := sparse.NewCSR(nl, nl, aRows.NNZ())
	for li := 0; li < nl; li++ {
		cols, vals := aRows.Row(li)
		for k, c := range cols {
			if c >= lo && c < hi {
				block.ColIdx = append(block.ColIdx, c-lo)
				block.Val = append(block.Val, vals[k])
			}
		}
		block.RowPtr[li+1] = len(block.ColIdx)
	}
	ic, err := NewIC0(block)
	if err != nil {
		return nil, fmt.Errorf("krylov: block-Jacobi local factor: %w", err)
	}
	return &BlockJacobiIC{local: ic}, nil
}

// Apply solves the local block system; purely local, no communication.
func (b *BlockJacobiIC) Apply(c *simmpi.Comm, r, z []float64, fc *vecops.FlopCounter) {
	b.local.Apply(r, z, fc)
}

package krylov

// Per-iteration solver telemetry. Every CG loop in this package can record,
// behind the opt-in Options.Trace flag, one IterRecord per iteration: the
// relative residual, the α/β recurrence scalars of the update that produced
// it, and the rank's communication delta since the previous record, taken
// from cheap simmpi.Meter.RankSnapshot diffs. Records are cut at loop-pass
// boundaries, so Setup plus the record deltas always sum exactly to the
// rank's metered totals for the solve — the conservation property the
// telemetry tests assert. When Trace is off no tracer is built and the
// solve paths allocate nothing extra (the AllocsPerRun=0 guarantee of the
// workspace-backed steady state is unchanged).

import (
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/vecops"
)

// CommDelta is one rank's communication traffic between two trace points:
// point-to-point (halo) bytes/messages it sent and collectives it entered.
type CommDelta struct {
	CollectiveCalls int64 `json:"collective_calls"`
	CollectiveBytes int64 `json:"collective_bytes"`
	P2PBytes        int64 `json:"p2p_bytes"`
	P2PMessages     int64 `json:"p2p_messages"`
}

// add accumulates another delta (used by the conservation tests' helpers
// via the exported Total method on IterTrace).
func (d *CommDelta) add(o CommDelta) {
	d.CollectiveCalls += o.CollectiveCalls
	d.CollectiveBytes += o.CollectiveBytes
	d.P2PBytes += o.P2PBytes
	d.P2PMessages += o.P2PMessages
}

// IterRecord is the telemetry of one CG iteration on one rank.
type IterRecord struct {
	// Iter is the iteration number, matching Stats.Iterations counting.
	Iter int `json:"iter"`
	// RelResidual is ‖r‖/‖r₀‖ after this iteration's update.
	RelResidual float64 `json:"rel_residual"`
	// Alpha and Beta are the recurrence scalars of the update that produced
	// this iteration's residual (Beta is 0 on the first iteration).
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	// Comm is the rank's traffic since the previous record (or since Setup
	// for the first record). Communication-hiding loops post traffic for
	// iteration k+1 during pass k, so deltas are loop-pass attribution: they
	// sum exactly to the solve totals but individual rows can lead the
	// iteration by one operator application.
	Comm CommDelta `json:"comm"`
}

// RefineRecord is the telemetry of one iterative-refinement step of a
// mixed-precision solve: the inner solve's iteration count, the FP64
// relative residual after the correction, and the rank's traffic for the
// whole step (inner solve plus outer residual recomputation).
type RefineRecord struct {
	// Step is the refinement number, starting at 1.
	Step int `json:"step"`
	// InnerIterations is the number of inner mixed-precision CG iterations
	// this step ran.
	InnerIterations int `json:"inner_iterations"`
	// RelResidual is the FP64 ‖b − A·x‖/‖b‖ after this step's correction.
	RelResidual float64 `json:"rel_residual"`
	// Comm is the rank's traffic since the previous record.
	Comm CommDelta `json:"comm"`
}

// IterTrace is one rank's per-iteration telemetry for a solve, recorded
// when Options.Trace is set.
type IterTrace struct {
	// Rank is the recording rank (0 in serial solves).
	Rank int `json:"rank"`
	// Setup is the traffic between solver entry and the first iteration
	// (initial residual/preconditioner work, setup reductions).
	Setup CommDelta `json:"setup"`
	// Iters has one record per iteration.
	Iters []IterRecord `json:"iters"`
	// Refines has one record per iterative-refinement step of a
	// mixed-precision solve (SolveRefined and the Dist variants); empty for
	// plain FP64 solves. Refined solves record at refinement granularity —
	// each record's delta spans its whole inner solve — so Setup + Iters +
	// Refines still sums exactly to the metered totals.
	Refines []RefineRecord `json:"refines,omitempty"`
}

// Total returns Setup plus every record's delta — by construction exactly
// the rank's metered traffic between solver entry and exit.
func (t *IterTrace) Total() CommDelta {
	sum := t.Setup
	for i := range t.Iters {
		sum.add(t.Iters[i].Comm)
	}
	for i := range t.Refines {
		sum.add(t.Refines[i].Comm)
	}
	return sum
}

// tracer cuts CommDeltas at loop-pass boundaries. A nil *tracer is valid
// and records nothing, so the solve loops call its methods unconditionally
// without branching on Options.Trace at every site.
type tracer struct {
	c    *simmpi.Comm // nil in serial solves
	tr   IterTrace
	last simmpi.Snapshot
}

// newTracer returns nil when tracing is off — the loops then skip all
// telemetry work and allocate nothing.
func newTracer(on bool, c *simmpi.Comm) *tracer {
	if !on {
		return nil
	}
	t := &tracer{c: c}
	if c != nil {
		t.tr.Rank = c.Rank()
		t.last = c.Meter().RankSnapshot(c.Rank())
	}
	return t
}

// delta returns the rank's traffic since the previous cut and advances the
// cut point.
func (t *tracer) delta() CommDelta {
	if t.c == nil {
		return CommDelta{}
	}
	now := t.c.Meter().RankSnapshot(t.c.Rank())
	d := now.Sub(t.last)
	t.last = now
	return CommDelta{
		CollectiveCalls: d.CollectiveCalls,
		CollectiveBytes: d.CollectiveBytes,
		P2PBytes:        d.P2PBytes,
		P2PMessages:     d.P2PMessages,
	}
}

// setup closes the pre-loop phase. Call once, right before the first
// iteration's work.
func (t *tracer) setup() {
	if t == nil {
		return
	}
	t.tr.Setup = t.delta()
}

// record closes one loop pass.
func (t *tracer) record(iter int, relres, alpha, beta float64) {
	if t == nil {
		return
	}
	t.tr.Iters = append(t.tr.Iters, IterRecord{
		Iter: iter, RelResidual: relres, Alpha: alpha, Beta: beta, Comm: t.delta(),
	})
}

// refine closes one iterative-refinement step (inner solve + FP64 residual
// recomputation and correction).
func (t *tracer) refine(step, innerIters int, relres float64) {
	if t == nil {
		return
	}
	t.tr.Refines = append(t.tr.Refines, RefineRecord{
		Step: step, InnerIterations: innerIters, RelResidual: relres, Comm: t.delta(),
	})
}

// trace returns the accumulated trace, or nil when tracing was off.
func (t *tracer) trace() *IterTrace {
	if t == nil {
		return nil
	}
	return &t.tr
}

// finish stamps the fields every return path of the CG variants must agree
// on — the cumulative flop count and the attached trace — so early exits
// (zero RHS, breakdown, iteration-cap) report the same Stats shape as
// normal convergence.
func finish(st Stats, fc *vecops.FlopCounter, t *tracer) Stats {
	st.Flops = fc.Count()
	st.Trace = t.trace()
	return st
}

package krylov

// The pipelined (Ghysels–Vanroose) Conjugate Gradient variant. The fused
// recurrence of DistCGFused already pays only one collective per iteration,
// but that collective is still blocking: every rank stalls in the Allreduce
// between the SpMV and the vector updates. Pipelining rearranges the
// recurrence once more so the reduction's operands are available one
// operator application early: the three scalars are posted as a nonblocking
// IallreduceSum, the next preconditioner apply m = M·w and SpMV n = A·m run
// while the reduction is in flight, and the wait happens only when α and β
// are actually needed. The latency of the collective hides behind the
// heaviest compute of the iteration. The price is two extra recurrence
// vectors on top of fused's (z ≈ A·M·s and q ≈ M·s, kept current by the
// 8-way update kernel) and one wasted preconditioner+SpMV application after
// the final iteration.
//
// The in-process simulated runtime serializes goroutines, so the overlap
// cannot show up in wall-clock time here; internal/archmodel's
// overlap-credit term converts the metered traffic into the modeled time a
// real network would see (DESIGN.md §4d).

import (
	"fmt"
	"math"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/vecops"
)

// DistCGPipelined solves A x = b with the pipelined preconditioned CG
// recurrence of Ghysels & Vanroose. Per iteration it performs exactly one
// collective — a nonblocking IallreduceSum(rᵀu, wᵀu, ‖r‖²) overlapped with
// the preconditioner apply and SpMV — with halo traffic byte-identical to
// the classic loop (asserted by the metered tests). The SpMV and halo
// exchanges run through the nonblocking Isend/Irecv schedule. In exact
// arithmetic the iterates equal classic PCG's; the deeper rearrangement
// rounds differently, so iteration counts may shift by ±2.
func DistCGPipelined(c *simmpi.Comm, op *distmat.Op, b, x []float64, m DistPreconditioner, opt Options, fc *vecops.FlopCounter) (Stats, error) {
	tr := newTracer(opt.Trace, c)
	nl := op.LZ.NLocal()
	nGlobal := int(c.AllreduceSumInt64(int64(nl))[0])
	opt = opt.withDefaults(nGlobal)
	if m == nil {
		m = DistIdentity{}
	}
	if len(b) != nl || len(x) != nl {
		panic(fmt.Sprintf("krylov: DistCGPipelined local length %d/%d, want %d", len(b), len(x), nl))
	}
	ws := opt.Work
	if ws == nil {
		ws = &Workspace{}
	}
	r, u, w, p, s, z, q, mv, nv := ws.take9(nl)
	scratch := ws.distScratch(op.LZ)
	ov := op.EnsureOverlap()

	copy(r, b)
	vecops.Fill(p, 0)
	vecops.Fill(s, 0)
	vecops.Fill(z, 0)
	vecops.Fill(q, 0)
	m.Apply(c, r, u, fc)
	ov.MulVecOverlapAsync(c, u, w, scratch, fc)
	tr.setup()

	var norm0, gamma, alpha, beta float64
	st := Stats{}
	for it := 0; ; it++ {
		if canceled(c, opt.Ctx) {
			return finish(st, fc, tr), fmt.Errorf("%w at iteration %d", ErrCanceled, it)
		}
		ruL, wuL, rrL := vecops.Dot3(r, u, w, fc)
		// The single collective of the iteration, posted nonblocking.
		req := c.IallreduceSum(ruL, wuL, rrL)
		// Overlap window: the preconditioner apply and the SpMV execute
		// while the reduction is in flight. They only read w and write the
		// scratch vectors m and n, so they commute with the wait.
		m.Apply(c, w, mv, fc)
		ov.MulVecOverlapAsync(c, mv, nv, scratch, fc)
		g, err := req.Wait()
		if err != nil {
			return finish(st, fc, tr), err
		}
		gammaNew, delta, rr := g[0], g[1], g[2]
		// upAlpha/upBeta are the scalars of the update that produced this
		// pass's residual (computed in the previous pass), reported in the
		// iteration's trace record.
		upAlpha, upBeta := alpha, beta
		if it == 0 {
			if rr == 0 {
				vecops.Fill(x, 0)
				return finish(Stats{Converged: true}, fc, tr), nil
			}
			norm0 = math.Sqrt(rr)
			if badCurv(gammaNew) || badCurv(delta) {
				return finish(Stats{}, fc, tr), fmt.Errorf("%w at DistCGPipelined setup (rᵀMr = %g, uᵀAu = %g); matrix or preconditioner not SPD?", ErrBreakdown, gammaNew, delta)
			}
			alpha = gammaNew / delta
			beta = 0
		} else {
			if nonfinite(rr) || nonfinite(gammaNew) {
				// Allreduce results are rank-identical: collective verdict.
				return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (‖r‖² = %g, rᵀMr = %g)", ErrBreakdown, it, rr, gammaNew)
			}
			// rr is ‖r‖² after `it` updates — the same quantity the classic
			// loop checks after its it-th update, so counts are comparable.
			st.Iterations = it
			st.RelResidual = math.Sqrt(rr) / norm0
			if opt.RecordResiduals {
				st.Residuals = append(st.Residuals, st.RelResidual)
			}
			if st.RelResidual <= opt.Tol {
				st.Converged = true
				tr.record(it, st.RelResidual, upAlpha, upBeta)
				return finish(st, fc, tr), nil
			}
			if it >= opt.MaxIter {
				tr.record(it, st.RelResidual, upAlpha, upBeta)
				break
			}
			beta = gammaNew / gamma
			denom := delta - beta*gammaNew/alpha
			if badCurv(denom) {
				return finish(st, fc, tr), fmt.Errorf("%w at iteration %d (recurrence denominator %g); matrix not SPD?", ErrBreakdown, it, denom)
			}
			alpha = gammaNew / denom
		}
		gamma = gammaNew
		vecops.PipelinedCGUpdate(alpha, beta, nv, mv, w, u, z, q, s, p, x, r, fc)
		if k := opt.ResidualReplaceEvery; k > 0 && (it+1)%k == 0 {
			// Periodic residual replacement: recompute the true residual
			// r = b − A·x and rebuild the recurrence vectors that depend on
			// it (u = M·r, w = A·u) plus the search-direction pair
			// (s = A·p, q = M·s, z = A·q), which the recursive update has
			// been approximating. Four extra halo exchanges and two
			// preconditioner applications, zero extra collectives; `it` is
			// globally synchronized, so every rank replaces on the same
			// iterations and the solve stays deterministic. mv/nv are free
			// here — the next pass overwrites both.
			ov.MulVecOverlapAsync(c, x, nv, scratch, fc)
			copy(r, b)
			vecops.Axpy(-1, nv, r, fc)
			m.Apply(c, r, u, fc)
			ov.MulVecOverlapAsync(c, u, w, scratch, fc)
			ov.MulVecOverlapAsync(c, p, s, scratch, fc)
			m.Apply(c, s, q, fc)
			ov.MulVecOverlapAsync(c, q, z, scratch, fc)
		}
		if it > 0 {
			// Close the pass: the record's comm delta spans this pass's
			// reduction post, overlap-window SpMV and any replacement
			// traffic, so per-iteration deltas sum exactly to run totals.
			tr.record(it, st.RelResidual, upAlpha, upBeta)
		}
	}
	st = finish(st, fc, tr)
	return st, fmt.Errorf("%w: %d iterations, rel residual %.3e", ErrNoConvergence, st.Iterations, st.RelResidual)
}

package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRetryAfterScalesWithBacklog pins the Retry-After derivation: the
// header must reflect the backlog a rejected client would actually wait
// behind — queue depth times recent mean latency — not a hardcoded "1"
// that synchronizes every rejected client into a stampede.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	s := New(Config{MaxInFlight: 2, BatchWindow: 2 * time.Second})

	// No latency data, no backlog: the 1-second floor.
	if got := s.retryAfterSeconds(false); got != 1 {
		t.Fatalf("empty server: %d, want 1", got)
	}

	// Mean solve latency 4s, nothing queued: one slot-turnaround.
	s.met.latency.count.Store(1)
	s.met.latency.sumUs.Store(4_000_000)
	if got := s.retryAfterSeconds(false); got != 4 {
		t.Fatalf("idle with 4s mean: %d, want 4", got)
	}

	// Backlog of 5 over 2 slots: ceil over (5/2+1) = 3 latency turns.
	s.met.queued.Store(3)
	s.met.inFlight.Store(2)
	if got := s.retryAfterSeconds(false); got != 12 {
		t.Fatalf("backlog 5: %d, want 12", got)
	}

	// A batch-path rejection adds the enrollment window the leader holds.
	if got := s.retryAfterSeconds(true); got != 14 {
		t.Fatalf("batched backlog: %d, want 14", got)
	}

	// Pathological backlog clamps at the 60-second ceiling.
	s.met.queued.Store(1000)
	if got := s.retryAfterSeconds(false); got != 60 {
		t.Fatalf("huge backlog: %d, want the 60 clamp", got)
	}
}

// TestSolvePrecision covers the precision knob through the serve layer:
// fp32 solves report their refinement steps, fp64 and fp32 setups never
// share a prepared-cache entry (the factors differ), and an unknown
// precision is rejected up front.
func TestSolvePrecision(t *testing.T) {
	_, ts := testServer(t, Config{})
	mr := uploadGen(t, ts.URL, "Dubcova2-sim")

	solve := func(precision string) solveResponse {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/solve", solveRequest{Matrix: mr.Matrix, Ranks: 2, Precision: precision})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("precision %q: %d %s", precision, resp.StatusCode, body)
		}
		var sr solveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	f64 := solve("fp64")
	if f64.CacheHit || f64.Refinements != 0 || !f64.Converged {
		t.Fatalf("fp64: %+v", f64)
	}
	// Same matrix, same options except precision: must MISS the prepared
	// cache — float32 factors are different prepared state.
	f32 := solve("fp32")
	if f32.CacheHit {
		t.Fatal("fp32 solve hit the fp64 prepared-cache entry")
	}
	if f32.Refinements < 1 || !f32.Converged {
		t.Fatalf("fp32: %+v", f32)
	}
	// Re-solving at fp32 hits its own entry.
	if again := solve("fp32"); !again.CacheHit {
		t.Fatal("repeated fp32 solve missed the cache")
	}

	resp, body := postJSON(t, ts.URL+"/solve", solveRequest{Matrix: mr.Matrix, Precision: "fp16"})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "precision") {
		t.Fatalf("fp16: %d %s", resp.StatusCode, body)
	}
}

// TestSolveRejectsNonFiniteRHS: an explicit right-hand side with NaN or Inf
// must be refused before any solve starts.
func TestSolveRejectsNonFiniteRHS(t *testing.T) {
	_, ts := testServer(t, Config{})
	mr := uploadGen(t, ts.URL, "Dubcova2-sim")
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		rhs := make([]float64, mr.Rows)
		rhs[7] = bad
		// NaN/Inf are not valid JSON numbers, so the request ships them the
		// way a buggy client would: as a quoted string the decoder rejects,
		// or — for the parseable case — via raw body construction below.
		resp, body := postJSON(t, ts.URL+"/solve", map[string]any{
			"matrix": mr.Matrix, "rhs": jsonSafe(rhs),
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("rhs with %v: %d %s", bad, resp.StatusCode, body)
		}
	}
}

// jsonSafe encodes non-finite values the way lenient clients do (strings),
// which the strict decoder must reject — or, when the slice is finite,
// passes it through unchanged.
func jsonSafe(rhs []float64) []any {
	out := make([]any, len(rhs))
	for i, v := range rhs {
		if math.IsNaN(v) {
			out[i] = "NaN"
		} else if math.IsInf(v, 1) {
			out[i] = "Inf"
		} else if math.IsInf(v, -1) {
			out[i] = "-Inf"
		} else {
			out[i] = v
		}
	}
	return out
}

// TestMatrixUploadRejectsNonFinite: a Matrix Market body with a NaN entry
// must be refused with 400 before the matrix reaches the cache — a cached
// NaN matrix would poison every later solve against its fingerprint.
func TestMatrixUploadRejectsNonFinite(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := "%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 4\n2 1 nan\n2 2 4\n"
	resp, err := http.Post(ts.URL+"/matrix", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN matrix accepted: %d", resp.StatusCode)
	}
	if m := getMetrics(t, ts.URL); m.Cache.Matrices.Entries != 0 {
		t.Fatalf("rejected matrix was cached: %d entries", m.Cache.Matrices.Entries)
	}
}

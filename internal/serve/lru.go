package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lru is a byte-budget LRU cache with build deduplication (singleflight):
// concurrent GetOrBuild calls for the same absent key run the build once
// and share its result. It backs both server caches — built Prepared
// systems and uploaded matrices.
//
// Entries are immutable once inserted (the cached values are read-only by
// construction), so eviction never waits for readers: a solve holding an
// evicted *fsaicomm.Prepared finishes on it while the cache forgets it.
type lru struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*flight

	hits, misses, evictions *atomic.Int64
}

type lruEntry struct {
	key   string
	val   any
	bytes int64
}

// flight is one in-progress build; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// newLRU wires a cache to the metrics counters it reports into. budget ≤ 0
// means unbounded.
func newLRU(budget int64, hits, misses, evictions *atomic.Int64) *lru {
	return &lru{
		budget:  budget,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
		hits:    hits, misses: misses, evictions: evictions,
	}
}

func (c *lru) Budget() int64 { return c.budget }

func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *lru) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Get returns the cached value and marks it most recently used.
func (c *lru) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruEntry).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// Add inserts (or refreshes) a value and evicts from the cold end until the
// budget holds again. The newest entry is never evicted, so a single value
// larger than the whole budget is still cached and served.
func (c *lru) Add(key string, val any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(key, val, bytes)
}

func (c *lru) add(key string, val any, bytes int64) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*lruEntry)
		c.used += bytes - ent.bytes
		ent.val, ent.bytes = val, bytes
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val, bytes: bytes})
		c.used += bytes
	}
	if c.budget <= 0 {
		return
	}
	for c.used > c.budget && c.ll.Len() > 1 {
		el := c.ll.Back()
		ent := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.used -= ent.bytes
		c.evictions.Add(1)
	}
}

// GetOrBuild returns the cached value for key, building it at most once
// across concurrent callers. hit reports whether this caller avoided the
// build: true for cache hits and for callers that joined another caller's
// in-progress build (they paid no setup either — that is what the hit/miss
// split measures). Build errors are not cached; every waiter of the failed
// flight sees the error and the next call retries.
func (c *lru) GetOrBuild(key string, build func() (any, int64, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		v := el.Value.(*lruEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.hits.Add(1)
		return f.val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses.Add(1)
	c.mu.Unlock()

	v, bytes, err := build()
	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.add(key, v, bytes)
	}
	c.mu.Unlock()
	f.val, f.err = v, err
	close(f.done)
	if err != nil {
		return nil, false, err
	}
	return v, false, nil
}

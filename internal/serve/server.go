// Package serve implements the solver-as-a-service layer: an HTTP handler
// that accepts matrix uploads, fingerprints them, and runs distributed FSAI
// + CG solve jobs against a content-addressed cache of prepared systems
// (partition + halo plans + factors). Repeated solves of the same matrix
// under the same setup options skip the whole setup phase and pay only the
// Krylov loop. The package is stdlib-only and wraps the public fsaicomm
// facade; cmd/fsaiserve turns it into a daemon.
//
// Production concerns handled here rather than in the solver:
//
//   - Admission control: at most MaxInFlight concurrent solves, at most
//     MaxQueue waiting; beyond that requests get 429 immediately, so an
//     overloaded server degrades by refusing, not by thrashing.
//   - Deadlines and cancellation: every job runs under a context combining
//     the client connection and JobTimeout; cancellation propagates into
//     the distributed CG loop, which stops collectively at an iteration
//     boundary.
//   - Caching: two byte-budget LRUs (uploaded matrices by content
//     fingerprint, prepared systems by fingerprint + canonical setup
//     options) with singleflight build deduplication.
//   - Observability: /healthz for liveness and /metrics for counters,
//     cache occupancy, aggregate communication totals from the simulated
//     runtime, and a solve-latency histogram.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fsaicomm"
	"fsaicomm/internal/testsets"
)

// Config sizes the server. The zero value serves with sensible defaults.
type Config struct {
	// MaxInFlight caps concurrently running solve jobs. Default 4.
	MaxInFlight int
	// MaxQueue caps jobs waiting for a slot; beyond it requests are
	// rejected with 429. Default 2·MaxInFlight; negative means no queue
	// (reject as soon as every slot is busy).
	MaxQueue int
	// CacheBytes budgets the prepared-system cache. Default 256 MiB.
	CacheBytes int64
	// MatrixCacheBytes budgets the uploaded-matrix cache. Default 256 MiB.
	MatrixCacheBytes int64
	// JobTimeout bounds one solve job (setup + Krylov loop). Default 120s.
	JobTimeout time.Duration
	// MaxBodyBytes bounds request bodies (matrix uploads dominate).
	// Default 64 MiB.
	MaxBodyBytes int64
	// Logf, when set, receives one line per notable event (job done,
	// rejection, shutdown). Silent by default.
	Logf func(format string, args ...any)
	// DefaultTransport is the rank backend for requests that do not pick
	// one: "sim" (goroutine ranks, the default) or "tcp" (one OS process
	// per rank; the serving binary's main must call mprun.MaybeWorker).
	// Both produce bit-identical results, so the prepared cache is shared
	// across transports.
	DefaultTransport string
	// BatchMax and BatchWindow enable job coalescing (see batch.go): /solve
	// requests sharing a prepared system and solver options that arrive
	// within BatchWindow of the first are merged — up to BatchMax of them —
	// into one batched multi-RHS solve holding a single admission slot.
	// Coalescing is off unless BatchMax > 1 AND BatchWindow > 0 (the
	// defaults). The merged batch delays its leader by up to BatchWindow,
	// so keep the window well under typical solve time.
	BatchMax    int
	BatchWindow time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MatrixCacheBytes == 0 {
		c.MatrixCacheBytes = 256 << 20
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// Server is the HTTP solver service. Create with New, mount anywhere (it
// implements http.Handler), stop with Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	met      *metrics
	matrices *lru // fingerprint -> *fsaicomm.Matrix
	prepared *lru // fingerprint + setup options -> *fsaicomm.Prepared
	sem      chan struct{}

	// batMu guards open, the enrolling coalescing batches by batch key.
	batMu sync.Mutex
	open  map[string]*openBatch

	mu       sync.Mutex
	draining bool
	jobs     sync.WaitGroup
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	met := newMetrics()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		met:      met,
		matrices: newLRU(cfg.MatrixCacheBytes, &met.matrixHits, &met.matrixMisses, &met.matrixEvictions),
		prepared: newLRU(cfg.CacheBytes, &met.preparedHits, &met.preparedMisses, &met.preparedEvictions),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		open:     make(map[string]*openBatch),
	}
	s.mux.HandleFunc("POST /matrix", s.handleMatrix)
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Shutdown drains the server: new solve jobs are refused with 503 and the
// call blocks until every accepted job has finished or ctx expires. It does
// not close listeners — pair it with http.Server.Shutdown, which stops
// accepting connections while this stops accepting work.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("serve: drained")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// beginJob admits one solve job, returning false when the server is
// draining. The caller must call the returned release exactly once.
func (s *Server) beginJob() (release func(), ok bool) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false
	}
	s.jobs.Add(1)
	s.mu.Unlock()
	return func() { s.jobs.Done() }, true
}

// retryAfterSeconds estimates how long a rejected client should wait before
// retrying, instead of the classic hardcoded "1" that synchronizes every
// rejected client into a retry stampede one second later. The estimate is
// the backlog the client would sit behind — queued plus in-flight jobs,
// spread over the MaxInFlight slots — times the recent mean solve latency
// from the histogram (one second before any data exists), plus the batch
// enrollment window when the rejection came off the coalescing path (a
// retry cannot possibly be served sooner than the window the batch holds
// its leader for). Clamped to [1, 60] seconds.
func (s *Server) retryAfterSeconds(batched bool) int {
	mean := time.Second
	if n := s.met.latency.count.Load(); n > 0 {
		mean = time.Duration(s.met.latency.sumUs.Load()/n) * time.Microsecond
	}
	backlog := s.met.queued.Load() + s.met.inFlight.Load()
	wait := mean * time.Duration(backlog/int64(s.cfg.MaxInFlight)+1)
	if batched {
		wait += s.cfg.BatchWindow
	}
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// setRetryAfter stamps the Retry-After header on a 429 response — the single
// place the header is produced.
func (s *Server) setRetryAfter(w http.ResponseWriter, batched bool) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(batched)))
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func fail(code int, format string, args ...any) *httpError {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	var he *httpError
	if !errors.As(err, &he) {
		he = fail(http.StatusInternalServerError, "%v", err)
	}
	writeJSON(w, he.code, map[string]string{"error": he.msg})
}

// matrixResponse answers POST /matrix.
type matrixResponse struct {
	Matrix string `json:"matrix"` // content fingerprint; the /solve handle
	Rows   int    `json:"rows"`
	NNZ    int    `json:"nnz"`
	Cached bool   `json:"cached"` // body was already known under this fingerprint
}

// handleMatrix ingests a matrix — a MatrixMarket body, or a named catalog
// matrix via ?gen=<name> with an empty body — fingerprints it and stores it
// in the matrix cache. Re-uploading identical content is idempotent: same
// fingerprint, refreshed LRU position.
func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var a *fsaicomm.Matrix
	if gen := r.URL.Query().Get("gen"); gen != "" {
		spec, err := testsets.ByName(gen)
		if err != nil {
			writeErr(w, fail(http.StatusBadRequest, "unknown catalog matrix %q", gen))
			return
		}
		a = spec.Generate()
	} else {
		var err error
		a, err = fsaicomm.ReadMatrixMarket(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			writeErr(w, fail(http.StatusBadRequest, "parsing MatrixMarket body: %v", err))
			return
		}
	}
	if a.Rows != a.Cols {
		writeErr(w, fail(http.StatusBadRequest, "matrix is %dx%d, want square", a.Rows, a.Cols))
		return
	}
	if err := a.Validate(); err != nil {
		writeErr(w, fail(http.StatusBadRequest, "invalid matrix: %v", err))
		return
	}
	// Reject non-finite values before the matrix reaches the cache: a NaN
	// poisons every dot product, so a cached NaN matrix would fail every
	// later solve against its fingerprint with no hint at upload time.
	if !a.IsFinite() {
		writeErr(w, fail(http.StatusBadRequest, "matrix contains NaN or Inf values"))
		return
	}
	fp := a.Fingerprint()
	_, known := s.matrices.Get(fp)
	if !known {
		s.matrices.Add(fp, a, matrixBytes(a))
	}
	s.logf("serve: matrix %s ingested (%dx%d, %d nnz, cached=%v)", fp, a.Rows, a.Cols, a.NNZ(), known)
	writeJSON(w, http.StatusOK, matrixResponse{Matrix: fp, Rows: a.Rows, NNZ: a.NNZ(), Cached: known})
}

func matrixBytes(a *fsaicomm.Matrix) int64 {
	return 8 * int64(len(a.RowPtr)+len(a.ColIdx)+len(a.Val))
}

// solveRequest is the POST /solve body. Zero values mean defaults, exactly
// as in fsaicomm.Options; field validation is shared with the library
// (Options.Validate), so the API cannot accept what the library would
// reject.
type solveRequest struct {
	Matrix string `json:"matrix"` // fingerprint from POST /matrix

	// Right-hand side: explicit values, or a deterministic seed (the
	// paper's normalized random RHS). Omitting both means seed 1.
	RHS     []float64 `json:"rhs,omitempty"`
	RHSSeed int64     `json:"rhs_seed,omitempty"`

	// Setup options (cache-key relevant).
	Method        string  `json:"method,omitempty"` // fsai | fsaie | fsaie-comm | spai
	Filter        float64 `json:"filter,omitempty"`
	Dynamic       bool    `json:"dynamic,omitempty"`
	LineBytes     int     `json:"line_bytes,omitempty"`
	PatternLevel  int     `json:"pattern_level,omitempty"`
	Threshold     float64 `json:"threshold,omitempty"`
	Ranks         int     `json:"ranks,omitempty"`
	Partitioner   string  `json:"partitioner,omitempty"`
	PartitionSeed int64   `json:"partition_seed,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	// Solver selects "cg" (default; the FSAI family) or "gmres" (restarted
	// GMRES; requires method "spai"). Setup-level: the solver decides which
	// preconditioner kind the prepared cache holds. The SPAI knobs shape the
	// adaptive inverse (method "spai" only; see fsaicomm.Options).
	Solver      string  `json:"solver,omitempty"`
	SPAISteps   int     `json:"spai_steps,omitempty"`
	SPAIAdd     int     `json:"spai_add,omitempty"`
	SPAIEpsilon float64 `json:"spai_epsilon,omitempty"`
	// Precision selects fp64 (default) or fp32 — float32 factors with FP64
	// iterative refinement. Setup-level: part of the prepared-cache key.
	Precision string `json:"precision,omitempty"`

	// Per-solve options.
	Tol                  float64 `json:"tol,omitempty"`
	MaxIter              int     `json:"max_iter,omitempty"`
	Restart              int     `json:"restart,omitempty"` // GMRES restart length (0 = 30)
	CG                   string  `json:"cg,omitempty"`      // classic | classic-overlap | fused | pipelined
	Arch                 string  `json:"arch,omitempty"`
	Trace                bool    `json:"trace,omitempty"`
	ResidualReplaceEvery int     `json:"residual_replace_every,omitempty"`
	Transport            string  `json:"transport,omitempty"` // sim | tcp (rank backend; empty = server default)
	// Nodes/RanksPerNode declare a per-solve two-level topology; the halo
	// exchange aggregates cross-node traffic per node pair unless
	// NoNodeAggregation keeps the flat schedule (see fsaicomm.Options.Nodes).
	// Deliberately NOT part of the prepared-cache key: one cached system
	// serves any node grouping, the relay schedule is derived locally.
	Nodes             int  `json:"nodes,omitempty"`
	RanksPerNode      int  `json:"ranks_per_node,omitempty"`
	NoNodeAggregation bool `json:"no_node_aggregation,omitempty"`
}

// options maps the request onto the facade's option types.
func (q *solveRequest) options() (fsaicomm.Options, fsaicomm.SolveOptions, error) {
	method, err := fsaicomm.ParseMethod(q.Method)
	if err != nil {
		return fsaicomm.Options{}, fsaicomm.SolveOptions{}, fail(http.StatusBadRequest, "%v", err)
	}
	solver, err := fsaicomm.ParseSolver(q.Solver)
	if err != nil {
		return fsaicomm.Options{}, fsaicomm.SolveOptions{}, fail(http.StatusBadRequest, "%v", err)
	}
	if solver == fsaicomm.SolverGMRES && q.Method == "" {
		// GMRES implies SPAI; an unspecified method follows the solver
		// instead of the FSAIEComm default (which Validate would reject).
		method = fsaicomm.SPAI
	}
	var variant fsaicomm.CGVariant
	if q.CG != "" {
		if variant, err = fsaicomm.ParseCGVariant(q.CG); err != nil {
			return fsaicomm.Options{}, fsaicomm.SolveOptions{}, fail(http.StatusBadRequest, "%v", err)
		}
	}
	prec, err := fsaicomm.ParsePrecision(q.Precision)
	if err != nil {
		return fsaicomm.Options{}, fsaicomm.SolveOptions{}, fail(http.StatusBadRequest, "%v", err)
	}
	strategy := fsaicomm.StaticFilter
	if q.Dynamic {
		strategy = fsaicomm.DynamicFilter
	}
	opt := fsaicomm.Options{
		Method:        method,
		Solver:        solver,
		Filter:        q.Filter,
		Strategy:      strategy,
		LineBytes:     q.LineBytes,
		PatternLevel:  q.PatternLevel,
		Threshold:     q.Threshold,
		Ranks:         q.Ranks,
		Partitioner:   q.Partitioner,
		PartitionSeed: q.PartitionSeed,
		Workers:       q.Workers,
		Precision:     prec,
		SPAISteps:     q.SPAISteps,
		SPAIAdd:       q.SPAIAdd,
		SPAIEpsilon:   q.SPAIEpsilon,

		Tol:                  q.Tol,
		MaxIter:              q.MaxIter,
		Restart:              q.Restart,
		CGVariant:            variant,
		Arch:                 q.Arch,
		Trace:                q.Trace,
		ResidualReplaceEvery: q.ResidualReplaceEvery,
		Transport:            q.Transport,
		Nodes:                q.Nodes,
		RanksPerNode:         q.RanksPerNode,
		NoNodeAggregation:    q.NoNodeAggregation,
	}
	if err := opt.Validate(); err != nil {
		return fsaicomm.Options{}, fsaicomm.SolveOptions{}, fail(http.StatusBadRequest, "%v", err)
	}
	so := fsaicomm.SolveOptions{
		Tol:                  q.Tol,
		MaxIter:              q.MaxIter,
		Restart:              q.Restart,
		CGVariant:            variant,
		Arch:                 q.Arch,
		Trace:                q.Trace,
		ResidualReplaceEvery: q.ResidualReplaceEvery,
		Transport:            q.Transport,
		Nodes:                q.Nodes,
		RanksPerNode:         q.RanksPerNode,
		NoNodeAggregation:    q.NoNodeAggregation,
	}
	return opt, so, nil
}

// setupKey is the prepared-cache key: content fingerprint plus every option
// that shapes the partition or the factors, canonicalized so spellings of
// the same setup share an entry ("" and "multilevel", 0 and 64-byte lines,
// automatic and explicit equal rank counts). Workers is deliberately
// excluded: it parallelizes the build without changing its result. So is
// Transport: setup always runs in-process, and the two solve backends are
// bit-identical, so a prepared system serves requests on either.
func setupKey(fp string, o fsaicomm.Options, ranks int) string {
	lb := o.LineBytes
	if lb == 0 {
		lb = 64
	}
	pl := o.PatternLevel
	if pl < 1 {
		pl = 1
	}
	part := o.Partitioner
	if part == "" {
		part = "multilevel"
	}
	key := fmt.Sprintf("%s|m%d|f%g|s%d|lb%d|pl%d|th%g|r%d|%s|seed%d|%s",
		fp, o.Method, o.Filter, o.Strategy, lb, pl, o.Threshold, ranks, part, o.PartitionSeed,
		o.Precision)
	if o.Method == fsaicomm.SPAI {
		// The adaptive SPAI knobs shape the cached inverse; the solver is
		// implied by the method (SPAI ⇔ GMRES) so it needs no own field.
		key += fmt.Sprintf("|sp%d.%d.%g", o.SPAISteps, o.SPAIAdd, o.SPAIEpsilon)
	}
	return key
}

// solveResponse answers POST /solve. X round-trips float64s bit-exactly
// through JSON (encoding/json emits shortest-form decimals), so two cached
// solves of the same job compare bit-identical on the client side too.
type solveResponse struct {
	Matrix      string    `json:"matrix"`
	CacheHit    bool      `json:"cache_hit"` // setup came from the prepared cache
	Ranks       int       `json:"ranks"`
	Iterations  int       `json:"iterations"`
	Converged   bool      `json:"converged"`
	RelResidual float64   `json:"rel_residual"`
	Refinements int       `json:"refinements,omitempty"` // FP64 refinement steps (fp32 solves)
	SetupMs     float64   `json:"setup_ms"`              // 0 on cache hits
	SolveMs     float64   `json:"solve_ms"`
	ModeledSec  float64   `json:"modeled_solve_sec"`
	CommBytes   int64     `json:"comm_bytes"`
	Collectives int64     `json:"collective_calls"`
	PctNNZ      float64   `json:"pct_nnz_increase"`
	X           []float64 `json:"x"`

	// Batched reports how many jobs the serving batch solved together (0
	// when the job ran alone on the scalar path); Coalesced marks a job
	// that rode another job's batch instead of opening its own. For
	// batched jobs CommBytes and Collectives are the per-RHS amortized
	// shares of the batch totals, and ModeledSec is not computed.
	Batched   int  `json:"batched,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`

	Trace *fsaicomm.IterTrace `json:"trace,omitempty"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	release, ok := s.beginJob()
	if !ok {
		writeErr(w, fail(http.StatusServiceUnavailable, "server is draining"))
		return
	}
	defer release()

	var q solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		writeErr(w, fail(http.StatusBadRequest, "decoding request: %v", err))
		return
	}
	opt, so, err := q.options()
	if err != nil {
		writeErr(w, err)
		return
	}
	if so.Transport == "" {
		so.Transport = s.cfg.DefaultTransport
	}
	if q.Matrix == "" {
		writeErr(w, fail(http.StatusBadRequest, "missing \"matrix\" (fingerprint from POST /matrix)"))
		return
	}
	mv, ok := s.matrices.Get(q.Matrix)
	if !ok {
		writeErr(w, fail(http.StatusNotFound, "unknown matrix %q (upload it via POST /matrix)", q.Matrix))
		return
	}
	a := mv.(*fsaicomm.Matrix)
	rhs := q.RHS
	if rhs == nil {
		seed := q.RHSSeed
		if seed == 0 {
			seed = 1
		}
		rhs = fsaicomm.GenerateRHS(a, seed)
	} else if len(rhs) != a.Rows {
		writeErr(w, fail(http.StatusBadRequest, "rhs length %d, want %d", len(rhs), a.Rows))
		return
	} else {
		for i, v := range rhs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				writeErr(w, fail(http.StatusBadRequest, "rhs[%d] is not finite", i))
				return
			}
		}
	}

	// Coalescing: an eligible request routes through the batching path,
	// which merges it with concurrent same-system jobs into one batched
	// solve under a single admission slot.
	if s.batchEligible(opt.Solver, so) {
		s.solveBatched(w, r, &q, a, rhs, opt, so)
		return
	}

	// Admission: take a free slot immediately if one exists; otherwise
	// join the bounded queue or fail fast with 429 when it is full. A
	// queued client that disconnects frees its queue place.
	select {
	case s.sem <- struct{}{}:
	default:
		if int(s.met.queued.Load()) >= s.cfg.MaxQueue {
			s.met.jobsRejected.Add(1)
			s.setRetryAfter(w, false)
			writeErr(w, fail(http.StatusTooManyRequests,
				"server at capacity (%d running, %d queued)", s.cfg.MaxInFlight, s.cfg.MaxQueue))
			return
		}
		s.met.queued.Add(1)
		select {
		case s.sem <- struct{}{}:
			s.met.queued.Add(-1)
		case <-r.Context().Done():
			s.met.queued.Add(-1)
			s.met.jobsCanceled.Add(1)
			return // client is gone; nothing to write
		}
	}
	defer func() { <-s.sem }()
	s.met.jobsAccepted.Add(1)
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel()

	ranks := fsaicomm.AutoRanks(a, opt.Ranks)
	key := setupKey(q.Matrix, opt, ranks)
	t0 := time.Now()
	pv, hit, err := s.prepared.GetOrBuild(key, func() (any, int64, error) {
		p, err := fsaicomm.Prepare(a, opt)
		if err != nil {
			return nil, 0, err
		}
		return p, p.SizeBytes(), nil
	})
	if err != nil {
		s.met.jobsFailed.Add(1)
		writeErr(w, fail(http.StatusUnprocessableEntity, "preparing system: %v", err))
		return
	}
	setup := time.Duration(0)
	if !hit {
		setup = time.Since(t0)
	}
	p := pv.(*fsaicomm.Prepared)

	res, err := p.Solve(ctx, rhs, so)
	s.met.latency.observe(time.Since(t0))
	if err != nil && !errors.Is(err, fsaicomm.ErrCanceled) {
		s.met.jobsFailed.Add(1)
		writeErr(w, fail(http.StatusUnprocessableEntity, "solve: %v", err))
		return
	}
	s.met.iterations.Add(int64(res.Iterations))
	s.met.commBytes.Add(res.CommBytes)
	s.met.intraNodeBytes.Add(res.IntraNodeBytes)
	s.met.intraNodeMessages.Add(res.IntraNodeMessages)
	s.met.interNodeBytes.Add(res.InterNodeBytes)
	s.met.interNodeMessages.Add(res.InterNodeMessages)
	s.met.collectiveCalls.Add(res.CollectiveCalls)
	s.met.collectiveBytes.Add(res.CollectiveBytes)
	if err != nil { // canceled: deadline or client disconnect
		s.met.jobsCanceled.Add(1)
		if r.Context().Err() != nil {
			return // client is gone
		}
		writeErr(w, fail(http.StatusGatewayTimeout,
			"job exceeded its %v deadline after %d iterations", s.cfg.JobTimeout, res.Iterations))
		return
	}
	s.met.jobsCompleted.Add(1)
	s.logf("serve: solve %s ranks=%d iters=%d converged=%v hit=%v setup=%v solve=%v",
		q.Matrix, res.Ranks, res.Iterations, res.Converged, hit, setup, res.SolveTime)
	writeJSON(w, http.StatusOK, solveResponse{
		Matrix:      q.Matrix,
		CacheHit:    hit,
		Ranks:       res.Ranks,
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		RelResidual: res.RelResidual,
		Refinements: res.Refinements,
		SetupMs:     float64(setup) / float64(time.Millisecond),
		SolveMs:     float64(res.SolveTime) / float64(time.Millisecond),
		ModeledSec:  res.ModeledSolveTime,
		CommBytes:   res.CommBytes,
		Collectives: res.CollectiveCalls,
		PctNNZ:      res.PctNNZIncrease,
		X:           res.X,
		Trace:       res.Trace,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b, err := s.met.snapshot(s.prepared, s.matrices)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

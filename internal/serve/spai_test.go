package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestSolveGMRES drives the nonsymmetric axis over HTTP: "solver": "gmres"
// implies the SPAI method, the prepared system is cached under its SPAI
// setup knobs, and the per-solve restart override reuses the cached state.
func TestSolveGMRES(t *testing.T) {
	_, ts := testServer(t, Config{})
	mr := uploadGen(t, ts.URL, "convdiff-sim")

	solve := func(q solveRequest) solveResponse {
		t.Helper()
		q.Matrix = mr.Matrix
		resp, body := postJSON(t, ts.URL+"/solve", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %+v: %d %s", q, resp.StatusCode, body)
		}
		var sr solveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	first := solve(solveRequest{Solver: "gmres", SPAISteps: 2, Ranks: 4})
	if first.CacheHit || !first.Converged {
		t.Fatalf("first gmres solve: %+v", first)
	}
	// Same setup knobs: the prepared SPAI system must be reused, even with
	// a different per-solve restart length.
	again := solve(solveRequest{Solver: "gmres", SPAISteps: 2, Ranks: 4, Restart: 15})
	if !again.CacheHit || !again.Converged {
		t.Fatalf("restart-override solve missed the cache: %+v", again)
	}
	// Different SPAI setup knobs: different prepared state.
	other := solve(solveRequest{Solver: "gmres", SPAISteps: 1, Ranks: 4})
	if other.CacheHit {
		t.Fatal("solve with different spai_steps hit the cache")
	}

	// The CG family must refuse the nonsymmetric matrix outright.
	resp, body := postJSON(t, ts.URL+"/solve", solveRequest{Matrix: mr.Matrix, Ranks: 4})
	if resp.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(string(body), "nonsymmetric") {
		t.Fatalf("CG on nonsymmetric matrix: %d %s", resp.StatusCode, body)
	}
	// An explicit FSAI method cannot ride GMRES.
	resp, body = postJSON(t, ts.URL+"/solve", solveRequest{Matrix: mr.Matrix, Solver: "gmres", Method: "fsai"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fsai+gmres: %d %s", resp.StatusCode, body)
	}
	// Unknown solver names are a 400, not a silent CG.
	resp, body = postJSON(t, ts.URL+"/solve", solveRequest{Matrix: mr.Matrix, Solver: "minres"})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "solver") {
		t.Fatalf("unknown solver: %d %s", resp.StatusCode, body)
	}
}

package serve

// Job coalescing: /solve requests that share a prepared system and solver
// options (differing only in right-hand side) arriving within a short
// window are merged into one batched solve. The batch pays the halo and
// collective schedule once for all merged jobs — the per-RHS communication
// drops by the batch size — and each client still receives its own
// column's solution, bit-identical to a solo solve.
//
// Admission interaction: the whole batch holds exactly ONE in-flight slot
// (the leader's). A job that coalesces into an open batch never takes a
// slot or a queue place of its own, so coalescing strictly reduces
// admission pressure; it can never cause a 429 that the uncoalesced
// requests would not have hit.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fsaicomm"
)

// openBatch is one coalescing batch: the leader's job plus every follower
// that joined during the enrollment window. rhs is append-only under the
// server's batch lock while the batch is enrolled in Server.open; once the
// leader (or the filling follower) removes it from the map, membership is
// frozen. done is closed by the leader when the outcome fields (res, herr,
// hit, setup) are final.
type openBatch struct {
	rhs  [][]float64
	full chan struct{} // closed when the batch reaches BatchMax
	done chan struct{} // closed when the outcome is ready

	res   *fsaicomm.BatchResult
	herr  *httpError // non-nil: the whole batch failed with this status
	hit   bool
	setup time.Duration
}

// batchEligible reports whether a request may be coalesced: batching is
// configured, the solver is the CG family (only it has a batched loop), the
// CG variant has a batched loop, and the request wants no per-iteration
// trace (a trace is a single-solve artifact).
func (s *Server) batchEligible(solver fsaicomm.Solver, so fsaicomm.SolveOptions) bool {
	if s.cfg.BatchMax <= 1 || s.cfg.BatchWindow <= 0 || so.Trace {
		return false
	}
	if solver != fsaicomm.SolverCG {
		return false
	}
	return so.CGVariant == fsaicomm.CGClassic || so.CGVariant == fsaicomm.CGFused
}

// batchKey extends the prepared-cache key with every per-solve option, so
// only jobs whose batched solves are interchangeable ever merge. Restart
// rides along even though batched solves are CG-only today: the key must
// separate any two requests whose solves could differ.
func batchKey(skey string, so fsaicomm.SolveOptions) string {
	return fmt.Sprintf("%s|tol%g|mi%d|cg%d|re%d|arch%s|rre%d|tr%s|n%d|rpn%d|nna%v",
		skey, so.Tol, so.MaxIter, so.CGVariant, so.Restart, so.Arch, so.ResidualReplaceEvery, so.Transport,
		so.Nodes, so.RanksPerNode, so.NoNodeAggregation)
}

// solveBatched runs the coalescing /solve path. The caller has already
// resolved the matrix, the right-hand side and the options.
func (s *Server) solveBatched(w http.ResponseWriter, r *http.Request, q *solveRequest, a *fsaicomm.Matrix, rhs []float64, opt fsaicomm.Options, so fsaicomm.SolveOptions) {
	ranks := fsaicomm.AutoRanks(a, opt.Ranks)
	skey := setupKey(q.Matrix, opt, ranks)
	bkey := batchKey(skey, so)

	s.batMu.Lock()
	if ob := s.open[bkey]; ob != nil {
		// Join the open batch: no admission slot, no queue place — the
		// leader's slot covers the whole batch.
		idx := len(ob.rhs)
		ob.rhs = append(ob.rhs, rhs)
		if len(ob.rhs) >= s.cfg.BatchMax {
			delete(s.open, bkey) // full: freeze membership, wake the leader
			close(ob.full)
		}
		s.batMu.Unlock()
		s.met.jobsAccepted.Add(1)
		s.met.coalescedJobs.Add(1)
		select {
		case <-ob.done:
		case <-r.Context().Done():
			// The client is gone; the batch still solves this column and
			// discards it.
			s.met.jobsCanceled.Add(1)
			return
		}
		s.writeBatchColumn(w, q, ob, idx, true)
		return
	}
	ob := &openBatch{
		rhs:  [][]float64{rhs},
		full: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.open[bkey] = ob
	s.batMu.Unlock()

	// Leader: acquire one slot for the whole batch, queueing like any
	// scalar job. Followers keep joining while we wait — a job that was
	// about to queue instead rides this slot (never double-counted).
	acquired := false
	select {
	case s.sem <- struct{}{}:
		acquired = true
	default:
		if int(s.met.queued.Load()) < s.cfg.MaxQueue {
			s.met.queued.Add(1)
			select {
			case s.sem <- struct{}{}:
				s.met.queued.Add(-1)
				acquired = true
			case <-r.Context().Done():
				s.met.queued.Add(-1)
			}
		}
	}
	if !acquired {
		// Rejected (queue full) or the leader's client vanished while
		// queued: fail the whole batch — followers get the same answer
		// their own admission attempt would have produced.
		if r.Context().Err() != nil {
			s.met.jobsCanceled.Add(1)
			s.failBatch(bkey, ob, nil)
			return
		}
		s.met.jobsRejected.Add(1)
		herr := fail(http.StatusTooManyRequests,
			"server at capacity (%d running, %d queued)", s.cfg.MaxInFlight, s.cfg.MaxQueue)
		s.failBatch(bkey, ob, herr)
		s.setRetryAfter(w, true)
		writeErr(w, herr)
		return
	}
	defer func() { <-s.sem }()
	s.met.jobsAccepted.Add(1)
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	// Enrollment window: wait for followers until the batch fills or the
	// window elapses.
	timer := time.NewTimer(s.cfg.BatchWindow)
	select {
	case <-ob.full:
	case <-timer.C:
	}
	timer.Stop()
	s.batMu.Lock()
	if s.open[bkey] == ob {
		delete(s.open, bkey)
	}
	k := len(ob.rhs)
	s.batMu.Unlock()

	// The batch runs detached from the leader's connection: a follower's
	// job must not die because the leader's client hung up. JobTimeout
	// still bounds it.
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancel()
	t0 := time.Now()
	pv, hit, err := s.prepared.GetOrBuild(skey, func() (any, int64, error) {
		p, err := fsaicomm.Prepare(a, opt)
		if err != nil {
			return nil, 0, err
		}
		return p, p.SizeBytes(), nil
	})
	if err != nil {
		s.met.jobsFailed.Add(int64(k))
		herr := fail(http.StatusUnprocessableEntity, "preparing system: %v", err)
		s.finishBatch(ob, nil, herr, false, 0)
		writeErr(w, herr)
		return
	}
	setup := time.Duration(0)
	if !hit {
		setup = time.Since(t0)
	}
	p := pv.(*fsaicomm.Prepared)

	br, err := p.SolveBatch(ctx, ob.rhs, so)
	s.met.latency.observe(time.Since(t0))
	s.met.batchesTotal.Add(1)
	s.met.occupancy.observe(k)
	if err != nil && !errors.Is(err, fsaicomm.ErrCanceled) {
		s.met.jobsFailed.Add(int64(k))
		herr := fail(http.StatusUnprocessableEntity, "solve: %v", err)
		s.finishBatch(ob, nil, herr, hit, setup)
		writeErr(w, herr)
		return
	}
	if br != nil {
		s.met.iterations.Add(int64(br.Iterations))
		s.met.commBytes.Add(br.CommBytes)
		s.met.intraNodeBytes.Add(br.IntraNodeBytes)
		s.met.intraNodeMessages.Add(br.IntraNodeMessages)
		s.met.interNodeBytes.Add(br.InterNodeBytes)
		s.met.interNodeMessages.Add(br.InterNodeMessages)
		s.met.collectiveCalls.Add(br.CollectiveCalls)
		s.met.collectiveBytes.Add(br.CollectiveBytes)
	}
	if err != nil { // JobTimeout: the batch was cut off collectively
		s.met.jobsCanceled.Add(int64(k))
		herr := fail(http.StatusGatewayTimeout,
			"batch exceeded its %v deadline after %d iterations", s.cfg.JobTimeout, br.Iterations)
		s.finishBatch(ob, nil, herr, hit, setup)
		writeErr(w, herr)
		return
	}
	s.met.jobsCompleted.Add(int64(k))
	s.finishBatch(ob, br, nil, hit, setup)
	s.logf("serve: batch %s ranks=%d k=%d iters=%d hit=%v setup=%v solve=%v",
		q.Matrix, br.Ranks, k, br.Iterations, hit, setup, br.SolveTime)
	s.writeBatchColumn(w, q, ob, 0, false)
}

// failBatch aborts a batch before it solved: enrollment closes, and every
// member (the leader's writer runs separately) observes herr — or, when
// herr is nil, a 503 placeholder for a leader that vanished while queued.
func (s *Server) failBatch(bkey string, ob *openBatch, herr *httpError) {
	if herr == nil {
		herr = fail(http.StatusServiceUnavailable, "batch leader disconnected before the solve started")
	}
	s.batMu.Lock()
	if s.open[bkey] == ob {
		delete(s.open, bkey)
	}
	s.batMu.Unlock()
	s.finishBatch(ob, nil, herr, false, 0)
}

// finishBatch publishes the batch outcome and wakes every waiter. Must be
// called exactly once, after membership is frozen.
func (s *Server) finishBatch(ob *openBatch, res *fsaicomm.BatchResult, herr *httpError, hit bool, setup time.Duration) {
	ob.res = res
	ob.herr = herr
	ob.hit = hit
	ob.setup = setup
	close(ob.done)
}

// writeBatchColumn renders one member's view of a finished batch: its own
// solution column and per-column stats, plus the batch-level occupancy and
// the per-RHS amortized communication (the batch totals divided by the
// batch size — the number the coalescing exists to shrink).
func (s *Server) writeBatchColumn(w http.ResponseWriter, q *solveRequest, ob *openBatch, idx int, coalesced bool) {
	if ob.herr != nil {
		if ob.herr.code == http.StatusTooManyRequests {
			s.setRetryAfter(w, true)
		}
		writeErr(w, ob.herr)
		return
	}
	res := ob.res
	col := &res.Cols[idx]
	k := int64(len(res.Cols))
	writeJSON(w, http.StatusOK, solveResponse{
		Matrix:      q.Matrix,
		CacheHit:    ob.hit,
		Ranks:       res.Ranks,
		Iterations:  col.Iterations,
		Converged:   col.Converged,
		RelResidual: col.RelResidual,
		Refinements: res.Refinements,
		SetupMs:     float64(ob.setup) / float64(time.Millisecond),
		SolveMs:     float64(res.SolveTime) / float64(time.Millisecond),
		CommBytes:   res.CommBytes / k,
		Collectives: res.CollectiveCalls / k,
		PctNNZ:      res.PctNNZIncrease,
		X:           col.X,
		Batched:     int(k),
		Coalesced:   coalesced,
	})
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// Three concurrent solves of the same system coalesce into one batched
// solve: one batch in the metrics, two coalesced jobs, and each client's
// solution bit-identical to a solo solve of its own right-hand side.
func TestSolveCoalescing(t *testing.T) {
	_, ts := testServer(t, Config{
		MaxInFlight: 1,
		BatchMax:    3,
		BatchWindow: 800 * time.Millisecond,
	})
	mr := uploadGen(t, ts.URL, "Dubcova2-sim")

	// Prime the prepared cache (a batch of one) so the merged batch below
	// is not skewed by the setup build.
	prime := solveRequest{Matrix: mr.Matrix, Ranks: 3, Filter: 0.01, RHSSeed: 99}
	resp, body := postJSON(t, ts.URL+"/solve", prime)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: %d %s", resp.StatusCode, body)
	}
	var primeRes solveResponse
	if err := json.Unmarshal(body, &primeRes); err != nil {
		t.Fatal(err)
	}
	if primeRes.Batched != 1 || primeRes.Coalesced {
		t.Fatalf("prime batch shape: batched=%d coalesced=%v", primeRes.Batched, primeRes.Coalesced)
	}

	const n = 3
	results := make([]solveResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := solveRequest{Matrix: mr.Matrix, Ranks: 3, Filter: 0.01, RHSSeed: int64(i + 1)}
			b, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				out, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, out)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}()
	}
	wg.Wait()
	nCoalesced := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !results[i].Converged || !results[i].CacheHit {
			t.Fatalf("client %d: converged=%v hit=%v", i, results[i].Converged, results[i].CacheHit)
		}
		if results[i].Batched != n {
			t.Fatalf("client %d: batched=%d, want %d", i, results[i].Batched, n)
		}
		if results[i].Coalesced {
			nCoalesced++
		}
	}
	if nCoalesced != n-1 {
		t.Fatalf("%d coalesced responses, want %d (all but the leader)", nCoalesced, n-1)
	}

	// Each column must equal the solo solve of the same seed bit for bit.
	for i := 0; i < n; i++ {
		solo := solveRequest{Matrix: mr.Matrix, Ranks: 3, Filter: 0.01, RHSSeed: int64(i + 1)}
		resp, body := postJSON(t, ts.URL+"/solve", solo)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solo %d: %d %s", i, resp.StatusCode, body)
		}
		var sr solveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Iterations != results[i].Iterations {
			t.Fatalf("client %d: batched %d iterations, solo %d", i, results[i].Iterations, sr.Iterations)
		}
		for j := range sr.X {
			if results[i].X[j] != sr.X[j] {
				t.Fatalf("client %d: x[%d] differs between batched and solo solve", i, j)
			}
		}
	}

	m := getMetrics(t, ts.URL)
	// prime + merged + 3 solo checks = 5 batches, of which the merged one
	// carried 3 jobs (2 coalesced).
	if m.Batch.BatchesTotal != 5 {
		t.Fatalf("batches_total = %d, want 5", m.Batch.BatchesTotal)
	}
	if m.Batch.CoalescedJobs != 2 {
		t.Fatalf("coalesced_jobs = %d, want 2", m.Batch.CoalescedJobs)
	}
	if m.Batch.Occupancy.Count != 5 || m.Batch.Occupancy.SumJobs != 7 {
		t.Fatalf("occupancy count=%d sum=%d, want 5 batches / 7 jobs",
			m.Batch.Occupancy.Count, m.Batch.Occupancy.SumJobs)
	}
	if m.Jobs.Completed != 7 || m.Jobs.Rejected != 0 {
		t.Fatalf("completed=%d rejected=%d", m.Jobs.Completed, m.Jobs.Rejected)
	}
}

// The 429 interaction: a batch holds exactly one admission slot. With the
// only slot busy and a queue of one, three same-system jobs all get
// through — the first queues as batch leader, the other two coalesce onto
// it without consuming queue places — where three independent jobs would
// have seen two 429s.
func TestSolveCoalescingSingleSlot(t *testing.T) {
	_, ts := testServer(t, Config{
		MaxInFlight: 1,
		MaxQueue:    1,
		BatchMax:    4,
		BatchWindow: 300 * time.Millisecond,
		JobTimeout:  time.Minute,
	})
	mr := uploadGen(t, ts.URL, "ecology2-sim")

	// Occupy the slot with a long ineligible (pipelined) job.
	long := solveRequest{Matrix: mr.Matrix, Ranks: 2, CG: "pipelined", Tol: 1e-300, MaxIter: 2_000_000}
	b, _ := json.Marshal(long)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reqLong, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/solve", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	longDone := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(reqLong)
		if err == nil {
			resp.Body.Close()
		}
		close(longDone)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for getMetrics(t, ts.URL).Jobs.InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Three eligible same-system jobs: leader queues, followers coalesce.
	const n = 3
	results := make([]solveResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := solveRequest{Matrix: mr.Matrix, Ranks: 2, Filter: 0.01, RHSSeed: int64(i + 1)}
			b, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				out, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, out)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}()
	}

	// Wait until the batch has formed behind the busy slot (leader queued,
	// two coalesced), then release the slot.
	deadline = time.Now().Add(10 * time.Second)
	for {
		m := getMetrics(t, ts.URL)
		if m.Batch.CoalescedJobs >= n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never formed: coalesced=%d queued=%d", m.Batch.CoalescedJobs, m.Jobs.Queued)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-longDone
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if results[i].Batched != n || !results[i].Converged {
			t.Fatalf("client %d: batched=%d converged=%v", i, results[i].Batched, results[i].Converged)
		}
	}
	m := getMetrics(t, ts.URL)
	if m.Jobs.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0: coalesced jobs consumed admission slots", m.Jobs.Rejected)
	}
	if m.Batch.BatchesTotal != 1 || m.Batch.CoalescedJobs != n-1 {
		t.Fatalf("batches=%d coalesced=%d, want 1/%d", m.Batch.BatchesTotal, m.Batch.CoalescedJobs, n-1)
	}
}

// Ineligible requests (variants without a batched loop, traced solves)
// bypass coalescing entirely even when batching is configured.
func TestSolveCoalescingEligibility(t *testing.T) {
	_, ts := testServer(t, Config{BatchMax: 4, BatchWindow: 200 * time.Millisecond})
	mr := uploadGen(t, ts.URL, "Dubcova2-sim")
	for _, req := range []solveRequest{
		{Matrix: mr.Matrix, Ranks: 2, CG: "pipelined"},
		{Matrix: mr.Matrix, Ranks: 2, CG: "classic-overlap"},
		{Matrix: mr.Matrix, Ranks: 2, Trace: true},
	} {
		resp, body := postJSON(t, ts.URL+"/solve", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve: %d %s", resp.StatusCode, body)
		}
		var sr solveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Batched != 0 || sr.Coalesced {
			t.Fatalf("ineligible request was batched: %+v", sr)
		}
	}
	if m := getMetrics(t, ts.URL); m.Batch.BatchesTotal != 0 {
		t.Fatalf("batches_total = %d, want 0", m.Batch.BatchesTotal)
	}
}

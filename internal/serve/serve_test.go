package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fsaicomm"
	"fsaicomm/internal/mprun"
)

// TestMain lets this test binary self-host the rank worker processes that
// solves with "transport": "tcp" spawn via re-execution.
func TestMain(m *testing.M) {
	mprun.MaybeWorker()
	os.Exit(m.Run())
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func uploadGen(t *testing.T, base, name string) matrixResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/matrix?gen="+name, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload %s: %d %s", name, resp.StatusCode, body)
	}
	var mr matrixResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	return mr
}

func getMetrics(t *testing.T, base string) metricsSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatrixUploadBody(t *testing.T) {
	_, ts := testServer(t, Config{})
	a := fsaicomm.GeneratePoisson2D(12, 12)
	var buf bytes.Buffer
	if err := fsaicomm.WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/matrix", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	var mr matrixResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Rows != a.Rows || mr.NNZ != a.NNZ() || mr.Cached {
		t.Fatalf("response %+v", mr)
	}
	if mr.Matrix != a.Fingerprint() {
		t.Fatalf("fingerprint %s, want %s", mr.Matrix, a.Fingerprint())
	}
	// Idempotent re-upload: same handle, flagged as already cached.
	var buf2 bytes.Buffer
	if err := fsaicomm.WriteMatrixMarket(&buf2, a); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+"/matrix", "text/plain", &buf2)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var mr2 matrixResponse
	if err := json.Unmarshal(body2, &mr2); err != nil {
		t.Fatal(err)
	}
	if mr2.Matrix != mr.Matrix || !mr2.Cached {
		t.Fatalf("re-upload %+v", mr2)
	}
}

func TestSolveAndCacheHit(t *testing.T) {
	_, ts := testServer(t, Config{})
	mr := uploadGen(t, ts.URL, "ecology2-sim")

	req := solveRequest{Matrix: mr.Matrix, Ranks: 3, CG: "fused", Filter: 0.01}
	resp, body := postJSON(t, ts.URL+"/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	var first solveResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if !first.Converged || first.CacheHit || first.SetupMs <= 0 {
		t.Fatalf("first solve: converged=%v hit=%v setup=%gms", first.Converged, first.CacheHit, first.SetupMs)
	}
	if first.Ranks != 3 || first.CommBytes <= 0 || first.Collectives <= 0 {
		t.Fatalf("first solve stats: %+v", first)
	}

	resp, body = postJSON(t, ts.URL+"/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-solve: %d %s", resp.StatusCode, body)
	}
	var second solveResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.SetupMs != 0 {
		t.Fatalf("re-solve not served from cache: hit=%v setup=%gms", second.CacheHit, second.SetupMs)
	}
	if second.Iterations != first.Iterations {
		t.Fatalf("iterations changed: %d -> %d", first.Iterations, second.Iterations)
	}
	// Bit-identical solutions: JSON float64 round-trips are exact.
	if len(first.X) != len(second.X) {
		t.Fatal("solution length changed")
	}
	for i := range first.X {
		if first.X[i] != second.X[i] {
			t.Fatalf("x[%d] differs between cached solves: %g != %g", i, first.X[i], second.X[i])
		}
	}

	m := getMetrics(t, ts.URL)
	if m.Cache.Prepared.Misses != 1 || m.Cache.Prepared.Hits != 1 {
		t.Fatalf("prepared cache hits=%d misses=%d", m.Cache.Prepared.Hits, m.Cache.Prepared.Misses)
	}
	if m.Jobs.Completed != 2 || m.LatencyMs.Count != 2 {
		t.Fatalf("jobs completed=%d latency count=%d", m.Jobs.Completed, m.LatencyMs.Count)
	}
	if m.Solve.CollectiveCalls <= 0 || m.Solve.CommBytes <= 0 {
		t.Fatalf("aggregate comm totals missing: %+v", m.Solve)
	}
}

// A request may pick its rank backend per solve: "transport": "tcp" routes
// the same prepared system through one OS process per rank and must return
// the bit-identical solution a sim solve does — served from the same cache
// entry, because the factors are transport-independent.
func TestSolveTransportTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	_, ts := testServer(t, Config{})
	mr := uploadGen(t, ts.URL, "Dubcova2-sim")

	req := solveRequest{Matrix: mr.Matrix, Ranks: 4, Filter: 0.01}
	resp, body := postJSON(t, ts.URL+"/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim solve: %d %s", resp.StatusCode, body)
	}
	var sim solveResponse
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatal(err)
	}

	req.Transport = "tcp"
	resp, body = postJSON(t, ts.URL+"/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tcp solve: %d %s", resp.StatusCode, body)
	}
	var tcp solveResponse
	if err := json.Unmarshal(body, &tcp); err != nil {
		t.Fatal(err)
	}
	if !tcp.CacheHit {
		t.Fatal("tcp solve missed the prepared cache: transport leaked into the setup key")
	}
	if tcp.Iterations != sim.Iterations || tcp.Converged != sim.Converged {
		t.Fatalf("stats diverge: tcp (%d, %v) vs sim (%d, %v)",
			tcp.Iterations, tcp.Converged, sim.Iterations, sim.Converged)
	}
	if tcp.CommBytes != sim.CommBytes || tcp.Collectives != sim.Collectives {
		t.Fatalf("meters diverge: tcp (%d, %d) vs sim (%d, %d)",
			tcp.CommBytes, tcp.Collectives, sim.CommBytes, sim.Collectives)
	}
	for i := range sim.X {
		if tcp.X[i] != sim.X[i] {
			t.Fatalf("x[%d] diverges: tcp %v vs sim %v", i, tcp.X[i], sim.X[i])
		}
	}

	resp, body = postJSON(t, ts.URL+"/solve", solveRequest{Matrix: mr.Matrix, Ranks: 4, Filter: 0.01, Transport: "carrier-pigeon"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown transport: %d %s", resp.StatusCode, body)
	}
}

// The concurrency satellite: N clients solving the same cached system in
// parallel get bit-identical solutions, and the cache counts exactly one
// miss (the priming build) plus one hit per concurrent request.
func TestSolveConcurrentCached(t *testing.T) {
	_, ts := testServer(t, Config{MaxInFlight: 4, MaxQueue: 64})
	mr := uploadGen(t, ts.URL, "Dubcova2-sim")
	req := solveRequest{Matrix: mr.Matrix, Ranks: 3, CG: "pipelined", Filter: 0.01}

	resp, body := postJSON(t, ts.URL+"/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming solve: %d %s", resp.StatusCode, body)
	}
	var ref solveResponse
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}

	const n = 8
	results := make([]solveResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				out, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, out)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !results[i].CacheHit || results[i].SetupMs != 0 {
			t.Fatalf("client %d missed the cache: %+v", i, results[i])
		}
		if results[i].Iterations != ref.Iterations {
			t.Fatalf("client %d: %d iterations, reference %d", i, results[i].Iterations, ref.Iterations)
		}
		for j := range ref.X {
			if results[i].X[j] != ref.X[j] {
				t.Fatalf("client %d: x[%d] differs", i, j)
			}
		}
	}
	m := getMetrics(t, ts.URL)
	if m.Cache.Prepared.Misses != 1 {
		t.Fatalf("prepared misses = %d, want exactly 1", m.Cache.Prepared.Misses)
	}
	if m.Cache.Prepared.Hits != n+0 {
		t.Fatalf("prepared hits = %d, want %d", m.Cache.Prepared.Hits, n)
	}
	if m.Jobs.Completed != n+1 {
		t.Fatalf("jobs completed = %d, want %d", m.Jobs.Completed, n+1)
	}
}

func TestSolveValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	mr := uploadGen(t, ts.URL, "Dubcova2-sim")
	cases := []struct {
		name string
		req  any
		code int
		want string
	}{
		{"negative tol", solveRequest{Matrix: mr.Matrix, Tol: -1}, 400, "Tol"},
		{"negative max_iter", solveRequest{Matrix: mr.Matrix, MaxIter: -1}, 400, "MaxIter"},
		{"bad method", solveRequest{Matrix: mr.Matrix, Method: "ilu"}, 400, "method"},
		{"bad cg", solveRequest{Matrix: mr.Matrix, CG: "gmres"}, 400, "variant"},
		{"bad partitioner", solveRequest{Matrix: mr.Matrix, Partitioner: "metis"}, 400, "partitioner"},
		{"missing matrix", solveRequest{}, 400, "matrix"},
		{"unknown matrix", solveRequest{Matrix: strings.Repeat("0", 32)}, 404, "unknown matrix"},
		{"wrong rhs length", solveRequest{Matrix: mr.Matrix, RHS: []float64{1, 2, 3}}, 400, "rhs length"},
		{"unknown field", map[string]any{"matrix": mr.Matrix, "tolerance": 1e-8}, 400, "unknown field"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/solve", tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, body)
			continue
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %q does not mention %q", tc.name, body, tc.want)
		}
	}
	if resp, body := postJSON(t, ts.URL+"/matrix?gen=notreal", nil); resp.StatusCode != 400 {
		t.Errorf("bad catalog name: %d %s", resp.StatusCode, body)
	}
	m := getMetrics(t, ts.URL)
	if m.Jobs.Completed != 0 {
		t.Fatalf("validation requests completed jobs: %d", m.Jobs.Completed)
	}
}

// Overload: with one slot and no queue, a second solve arriving while the
// first runs is refused with 429 and counted as rejected.
func TestSolveOverload(t *testing.T) {
	_, ts := testServer(t, Config{MaxInFlight: 1, MaxQueue: -1, JobTimeout: time.Minute})
	// The large ecology2 instance keeps the unreachable-tolerance job busy
	// far longer than the test needs the slot occupied (a small matrix
	// reaches CG breakdown before the cancellation below lands).
	mr := uploadGen(t, ts.URL, "ecology2-sim")

	// A long job: unreachable tolerance with a big iteration budget.
	long := solveRequest{Matrix: mr.Matrix, Ranks: 2, Tol: 1e-300, MaxIter: 2_000_000}
	b, _ := json.Marshal(long)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reqLong, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/solve", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	longDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(reqLong)
		if err == nil {
			resp.Body.Close()
		}
		longDone <- err
	}()

	// Wait until the long job actually occupies the slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := getMetrics(t, ts.URL); m.Jobs.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	quick := solveRequest{Matrix: mr.Matrix, Ranks: 2}
	resp, body := postJSON(t, ts.URL+"/solve", quick)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded solve: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Cancel the long job; its slot frees and the same request succeeds.
	cancel()
	if err := <-longDone; err == nil {
		t.Fatal("canceled long request reported success")
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, body = postJSON(t, ts.URL+"/solve", quick)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %d %s", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	m := getMetrics(t, ts.URL)
	if m.Jobs.Rejected < 1 {
		t.Fatalf("rejected = %d, want ≥ 1", m.Jobs.Rejected)
	}
	if m.Jobs.Canceled < 1 {
		t.Fatalf("canceled = %d, want ≥ 1 (the abandoned long job)", m.Jobs.Canceled)
	}
}

// A solve that cannot finish inside JobTimeout is cut off collectively and
// reported as 504 with the progress it made.
func TestSolveDeadline(t *testing.T) {
	_, ts := testServer(t, Config{JobTimeout: 100 * time.Millisecond})
	mr := uploadGen(t, ts.URL, "ecology2-sim")
	req := solveRequest{Matrix: mr.Matrix, Ranks: 2, Tol: 1e-300, MaxIter: 5_000_000}
	resp, body := postJSON(t, ts.URL+"/solve", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline solve: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("504 body: %s", body)
	}
	if m := getMetrics(t, ts.URL); m.Jobs.Canceled != 1 {
		t.Fatalf("canceled = %d", m.Jobs.Canceled)
	}
}

func TestShutdownDrains(t *testing.T) {
	s, ts := testServer(t, Config{})
	mr := uploadGen(t, ts.URL, "Dubcova2-sim")

	// Prime so the in-drain request below would be fast if admitted.
	if resp, body := postJSON(t, ts.URL+"/solve", solveRequest{Matrix: mr.Matrix, Ranks: 2}); resp.StatusCode != 200 {
		t.Fatalf("prime: %d %s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	respS, body := postJSON(t, ts.URL+"/solve", solveRequest{Matrix: mr.Matrix, Ranks: 2})
	if respS.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining: %d %s", respS.StatusCode, body)
	}
	if !strings.Contains(string(body), "draining") {
		t.Fatalf("drain body: %s", body)
	}
}

func TestLRUEviction(t *testing.T) {
	var hits, misses, evictions atomic.Int64
	c := newLRU(100, &hits, &misses, &evictions)
	c.Add("a", 1, 40)
	c.Add("b", 2, 40)
	c.Add("c", 3, 40) // over budget: "a" (coldest) must go
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived eviction")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b evicted prematurely")
	}
	if evictions.Load() != 1 {
		t.Fatalf("evictions = %d", evictions.Load())
	}
	// Recency matters: touch "b", add "d"; "c" is now coldest.
	c.Add("d", 4, 40)
	if _, ok := c.Get("c"); ok {
		t.Fatal("c survived although b was fresher")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("recently used b evicted")
	}
	// A single oversized entry still caches (newest is never evicted).
	c.Add("huge", 5, 1000)
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("oversized entry not cached")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d after oversized insert", c.Len())
	}
}

func TestLRUSingleflight(t *testing.T) {
	var hits, misses, evictions atomic.Int64
	c := newLRU(0, &hits, &misses, &evictions)
	var builds atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	vals := make([]any, n)
	hitFlags := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.GetOrBuild("k", func() (any, int64, error) {
				builds.Add(1)
				<-gate // hold every concurrent caller in the same flight
				return "built", 8, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], hitFlags[i] = v, hit
		}()
	}
	time.Sleep(50 * time.Millisecond) // let all callers reach the flight
	close(gate)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times", builds.Load())
	}
	nHits := 0
	for i := 0; i < n; i++ {
		if vals[i] != "built" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		if hitFlags[i] {
			nHits++
		}
	}
	if nHits != n-1 {
		t.Fatalf("%d callers reported hits, want %d (all but the builder)", nHits, n-1)
	}
	if hits.Load() != int64(n-1) || misses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d", hits.Load(), misses.Load())
	}
}

func TestLRUBuildErrorNotCached(t *testing.T) {
	var hits, misses, evictions atomic.Int64
	c := newLRU(0, &hits, &misses, &evictions)
	wantErr := fmt.Errorf("boom")
	if _, _, err := c.GetOrBuild("k", func() (any, int64, error) { return nil, 0, wantErr }); err != wantErr {
		t.Fatalf("err = %v", err)
	}
	v, _, err := c.GetOrBuild("k", func() (any, int64, error) { return "ok", 1, nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after failed build: %v, %v", v, err)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// latencyBucketsMs are the fixed upper bounds (milliseconds) of the solve
// latency histogram, Prometheus-style: a request of d ms increments every
// bucket with bound ≥ d plus the implicit +Inf bucket.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket cumulative latency histogram with atomic
// counters (no locking on the observe path).
type histogram struct {
	counts []atomic.Int64 // len(latencyBucketsMs)+1; last is +Inf
	count  atomic.Int64
	sumUs  atomic.Int64 // sum in microseconds, reported as fractional ms
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBucketsMs)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(int64(d / time.Microsecond))
}

func (h *histogram) snapshot() histogramSnapshot {
	s := histogramSnapshot{
		Count:   h.count.Load(),
		SumMs:   float64(h.sumUs.Load()) / 1000,
		Buckets: make(map[string]int64, len(h.counts)),
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		label := "+Inf"
		if i < len(latencyBucketsMs) {
			label = fmt.Sprintf("%g", latencyBucketsMs[i])
		}
		s.Buckets[label] = cum
	}
	return s
}

type histogramSnapshot struct {
	Count   int64            `json:"count"`
	SumMs   float64          `json:"sum_ms"`
	Buckets map[string]int64 `json:"le_ms"`
}

// occupancyBuckets are the upper bounds of the batch-occupancy histogram:
// how many jobs each coalescing batch actually merged.
var occupancyBuckets = []int{1, 2, 4, 8, 16, 32}

// occupancyHist counts batch sizes, cumulative Prometheus-style.
type occupancyHist struct {
	counts []atomic.Int64 // len(occupancyBuckets)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // total jobs over all batches
}

func newOccupancyHist() *occupancyHist {
	return &occupancyHist{counts: make([]atomic.Int64, len(occupancyBuckets)+1)}
}

func (h *occupancyHist) observe(k int) {
	i := 0
	for i < len(occupancyBuckets) && k > occupancyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(k))
}

func (h *occupancyHist) snapshot() occupancySnapshot {
	s := occupancySnapshot{
		Count:   h.count.Load(),
		SumJobs: h.sum.Load(),
		Buckets: make(map[string]int64, len(h.counts)),
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		label := "+Inf"
		if i < len(occupancyBuckets) {
			label = fmt.Sprintf("%d", occupancyBuckets[i])
		}
		s.Buckets[label] = cum
	}
	return s
}

type occupancySnapshot struct {
	Count   int64            `json:"count"`    // batches observed
	SumJobs int64            `json:"sum_jobs"` // jobs over all batches
	Buckets map[string]int64 `json:"le"`
}

// metrics is the server's counter set. Everything is atomic so handlers
// never serialize on telemetry; /metrics reads a consistent-enough snapshot.
type metrics struct {
	start time.Time

	jobsAccepted  atomic.Int64
	jobsRejected  atomic.Int64 // admission-control 429s
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64 // deadline or client disconnect
	inFlight      atomic.Int64
	queued        atomic.Int64

	preparedHits, preparedMisses, preparedEvictions atomic.Int64
	matrixHits, matrixMisses, matrixEvictions       atomic.Int64

	iterations      atomic.Int64
	commBytes       atomic.Int64
	collectiveCalls atomic.Int64
	collectiveBytes atomic.Int64

	// Two-level topology split of the point-to-point totals: traffic between
	// ranks on the same node vs different nodes (flat solves count everything
	// inter-node, so intra stays 0 and inter == commBytes).
	intraNodeBytes    atomic.Int64
	intraNodeMessages atomic.Int64
	interNodeBytes    atomic.Int64
	interNodeMessages atomic.Int64

	batchesTotal  atomic.Int64 // batched solves executed (any occupancy)
	coalescedJobs atomic.Int64 // jobs that rode another job's batch

	latency   *histogram
	occupancy *occupancyHist
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), latency: newHistogram(), occupancy: newOccupancyHist()}
}

type cacheSnapshot struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
}

type metricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Jobs          struct {
		Accepted  int64 `json:"accepted"`
		Rejected  int64 `json:"rejected"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Canceled  int64 `json:"canceled"`
		InFlight  int64 `json:"in_flight"`
		Queued    int64 `json:"queued"`
	} `json:"jobs"`
	Cache struct {
		Prepared cacheSnapshot `json:"prepared"`
		Matrices cacheSnapshot `json:"matrices"`
	} `json:"cache"`
	Solve struct {
		Iterations        int64 `json:"iterations_total"`
		CommBytes         int64 `json:"comm_bytes_total"`
		IntraNodeBytes    int64 `json:"intra_node_bytes_total"`
		IntraNodeMessages int64 `json:"intra_node_messages_total"`
		InterNodeBytes    int64 `json:"inter_node_bytes_total"`
		InterNodeMessages int64 `json:"inter_node_messages_total"`
		CollectiveCalls   int64 `json:"collective_calls_total"`
		CollectiveBytes   int64 `json:"collective_bytes_total"`
	} `json:"solve"`
	Batch struct {
		BatchesTotal  int64             `json:"batches_total"`
		CoalescedJobs int64             `json:"coalesced_jobs"`
		Occupancy     occupancySnapshot `json:"occupancy"`
	} `json:"batch"`
	LatencyMs histogramSnapshot `json:"solve_latency_ms"`
}

// snapshot renders the counters plus the two caches' occupancy as JSON.
func (m *metrics) snapshot(prepared, matrices *lru) ([]byte, error) {
	var s metricsSnapshot
	s.UptimeSeconds = time.Since(m.start).Seconds()
	s.Jobs.Accepted = m.jobsAccepted.Load()
	s.Jobs.Rejected = m.jobsRejected.Load()
	s.Jobs.Completed = m.jobsCompleted.Load()
	s.Jobs.Failed = m.jobsFailed.Load()
	s.Jobs.Canceled = m.jobsCanceled.Load()
	s.Jobs.InFlight = m.inFlight.Load()
	s.Jobs.Queued = m.queued.Load()
	s.Cache.Prepared = cacheSnapshot{
		Hits: m.preparedHits.Load(), Misses: m.preparedMisses.Load(),
		Evictions: m.preparedEvictions.Load(),
		Entries:   prepared.Len(), Bytes: prepared.UsedBytes(), BudgetBytes: prepared.Budget(),
	}
	s.Cache.Matrices = cacheSnapshot{
		Hits: m.matrixHits.Load(), Misses: m.matrixMisses.Load(),
		Evictions: m.matrixEvictions.Load(),
		Entries:   matrices.Len(), Bytes: matrices.UsedBytes(), BudgetBytes: matrices.Budget(),
	}
	s.Solve.Iterations = m.iterations.Load()
	s.Solve.CommBytes = m.commBytes.Load()
	s.Solve.IntraNodeBytes = m.intraNodeBytes.Load()
	s.Solve.IntraNodeMessages = m.intraNodeMessages.Load()
	s.Solve.InterNodeBytes = m.interNodeBytes.Load()
	s.Solve.InterNodeMessages = m.interNodeMessages.Load()
	s.Solve.CollectiveCalls = m.collectiveCalls.Load()
	s.Solve.CollectiveBytes = m.collectiveBytes.Load()
	s.Batch.BatchesTotal = m.batchesTotal.Load()
	s.Batch.CoalescedJobs = m.coalescedJobs.Load()
	s.Batch.Occupancy = m.occupancy.snapshot()
	s.LatencyMs = m.latency.snapshot()
	return json.MarshalIndent(&s, "", "  ")
}

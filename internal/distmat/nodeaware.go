package distmat

// Node-aware halo aggregation (Bienz–Gropp–Olson "Node Aware Sparse
// Matrix-Vector Multiplication", NAP-SpMV). With ranks grouped into nodes,
// the flat halo exchange sends one message per boundary-sharing RANK pair;
// most of those messages cross the same pair of NODES and pay the expensive
// inter-node latency each. The node-aware exchange reroutes all cross-node
// traffic through per-node leader ranks in three phases:
//
//	up     each rank concatenates everything it owes ranks on other nodes
//	       into one message to its node leader (cheap, intra-node);
//	inter  each leader combines its members' segments and sends ONE message
//	       per peer node to that node's leader (the only traffic that
//	       crosses the network);
//	down   the leader re-segments the received per-node messages and hands
//	       each member one message with everything it is owed (intra-node).
//
// Same-node halo traffic keeps the flat direct schedule (tagHaloData).
// Received values are bit-identical to the flat exchange — the same float64
// payloads land in the same halo slots, only the envelope changes — so the
// solvers' iterates are unchanged to the last bit. Inter-node bytes are also
// exactly the flat plan's (values are concatenated, never deduplicated);
// the win this file buys is the message-count collapse from rank pairs to
// node pairs, priced by archmodel's hierarchical α–β profiles.
//
// The entire relay schedule is derived locally from the plan's need-count
// matrix (captured for free during BuildHaloPlan's allgather), so enabling
// or disabling node awareness — or re-attaching a different topology to a
// deserialized prepared plan — costs zero additional communication.
//
// Phase ordering is pinned by the runtime's per-sender FIFO + tag-match
// discipline: a member sends its up before its intra directs, and the leader
// receives ups (relay) before draining directs; the leader sends directs
// (PostSends) before downs, and members receive directs before their down.
// Leader self-ups and self-downs ride the unmetered loopback queue in the
// same order.

import (
	"fmt"

	"fsaicomm/internal/simmpi"
)

// napSeg is one contiguous run of values copied during relay assembly:
// n values (per column) starting at value offset off of source buffer buf
// (an index into the member-up or inter-in buffer lists).
type napSeg struct{ buf, off, n int }

// napSched is the derived node-aware schedule for one rank. It is pure
// immutable data once built (clones share it); all mutable exchange state
// (buffers) lives on the HaloPlan.
type napSched struct {
	myNode, leaderRank int
	isLeader           bool
	intraSendIDs       []int // same-node direct destinations, ascending
	intraRecvIDs       []int // same-node direct sources, ascending
	crossSendIDs       []int // other-node destinations (served via up), ascending
	crossRecvIDs       []int // other-node sources (served via down), ascending
	upCount            int   // values per column in this rank's up message
	downCount          int   // values per column in this rank's down message
	relay              *napRelay
}

// napRelay is the leader-only relay schedule: how to re-segment member up
// buffers into per-node inter messages, and received inter messages into
// per-member down messages.
type napRelay struct {
	upMembers []int // member ranks with cross sends (incl. the leader), ascending
	upCounts  []int // per upMember: values per column in its up message

	outNodes  []int      // peer nodes this node sends to, ascending
	outCounts []int      // per outNode: values per column in the combined message
	outSegs   [][]napSeg // per outNode: segments into up buffers (buf = upMembers index)

	inNodes  []int // peer nodes this node receives from, ascending
	inCounts []int // per inNode: values per column

	downMembers []int      // member ranks owed cross values, ascending
	downCounts  []int      // per downMember: values per column
	downSegs    [][]napSeg // per downMember: segments into inter buffers (buf = inNodes index)
}

// napActive reports whether this plan routes exchanges through the
// node-aware protocol: node awareness enabled, a real multi-rank-per-node
// topology attached, and the need-count matrix available to derive the
// relay schedule from.
func (p *HaloPlan) napActive() bool {
	return p.nodeAware && !p.topo.Flat() && p.needCounts != nil
}

// napInit lazily derives the node-aware schedule. Confined to the owning
// rank's goroutine, like every other plan mutation.
func (p *HaloPlan) napInit() *napSched {
	if p.nap == nil {
		p.nap = buildNapSched(p)
	}
	return p.nap
}

func buildNapSched(p *HaloPlan) *napSched {
	topo := p.topo
	size := len(p.SendPeers)
	rank := p.rank
	need := func(d, src int) int { return int(p.needCounts[d*size+src]) }

	s := &napSched{
		myNode:     topo.NodeOf(rank),
		leaderRank: topo.Leader(topo.NodeOf(rank)),
	}
	s.isLeader = rank == s.leaderRank
	for _, d := range p.sendPeerIDs {
		if topo.SameNode(rank, d) {
			s.intraSendIDs = append(s.intraSendIDs, d)
		} else {
			s.crossSendIDs = append(s.crossSendIDs, d)
			s.upCount += len(p.SendPeers[d])
		}
	}
	for _, src := range p.recvPeerIDs {
		if topo.SameNode(rank, src) {
			s.intraRecvIDs = append(s.intraRecvIDs, src)
		} else {
			s.crossRecvIDs = append(s.crossRecvIDs, src)
			s.downCount += len(p.RecvPeers[src])
		}
	}
	if !s.isLeader {
		return s
	}

	// Leader relay schedule, derived entirely from the need-count matrix.
	// Nodes are contiguous rank blocks, so every rank's up buffer — cross
	// destinations ascending — is automatically grouped by destination node,
	// and each (member, peer-node) slice of it is one contiguous segment.
	r := &napRelay{}
	rpn := topo.RanksPerNode
	base := s.myNode * rpn
	for m := base; m < base+rpn; m++ {
		up, down := 0, 0
		for q := 0; q < size; q++ {
			if topo.NodeOf(q) == s.myNode {
				continue
			}
			up += need(q, m)   // member m owes rank q this many values
			down += need(m, q) // member m is owed this many values by rank q
		}
		if up > 0 {
			r.upMembers = append(r.upMembers, m)
			r.upCounts = append(r.upCounts, up)
		}
		if down > 0 {
			r.downMembers = append(r.downMembers, m)
			r.downCounts = append(r.downCounts, down)
		}
	}
	for b := 0; b < topo.Nodes; b++ {
		if b == s.myNode {
			continue
		}
		// Outbound: concat, member ascending, of each member's node-b segment.
		var segs []napSeg
		total := 0
		for mi, m := range r.upMembers {
			off, n := 0, 0
			for q := 0; q < size; q++ {
				if topo.NodeOf(q) == s.myNode {
					continue
				}
				if topo.NodeOf(q) < b {
					off += need(q, m)
				} else if topo.NodeOf(q) == b {
					n += need(q, m)
				}
			}
			if n > 0 {
				segs = append(segs, napSeg{buf: mi, off: off, n: n})
				total += n
			}
		}
		if total > 0 {
			r.outNodes = append(r.outNodes, b)
			r.outCounts = append(r.outCounts, total)
			r.outSegs = append(r.outSegs, segs)
		}
		// Inbound: node b's combined message is ordered source rank
		// ascending, then destination member ascending.
		in := 0
		for src := b * rpn; src < (b+1)*rpn; src++ {
			for m := base; m < base+rpn; m++ {
				in += need(m, src)
			}
		}
		if in > 0 {
			r.inNodes = append(r.inNodes, b)
			r.inCounts = append(r.inCounts, in)
		}
	}
	// Down messages: per owed member, concat over all cross sources
	// ascending (= inbound nodes ascending, sources within each ascending)
	// of that source's values for the member, located inside the inter
	// buffers by walking the same src-then-member layout.
	r.downSegs = make([][]napSeg, len(r.downMembers))
	for di, m := range r.downMembers {
		for bi, b := range r.inNodes {
			off := 0
			for src := b * rpn; src < (b+1)*rpn; src++ {
				for d := base; d < base+rpn; d++ {
					n := need(d, src)
					if d == m && n > 0 {
						r.downSegs[di] = append(r.downSegs[di], napSeg{buf: bi, off: off, n: n})
					}
					off += n
				}
			}
		}
	}
	s.relay = r
	return s
}

// napBuf resizes *store to n float64s, reusing capacity across exchanges.
func napBuf(store *[]float64, n int) []float64 {
	if cap(*store) < n {
		*store = make([]float64, n)
	}
	*store = (*store)[:n]
	return *store
}

// napPostSends is the send half of a k-wide node-aware exchange: the up
// message to the node leader, then the unchanged direct intra-node sends.
// async selects the nonblocking send primitive (metering is identical
// either way — charged at post time).
func (p *HaloPlan) napPostSends(c *simmpi.Comm, xExt []float64, k int, async bool) {
	s := p.napInit()
	send := c.SendFloats
	if async {
		send = func(dst, tag int, data []float64) { c.IsendFloats(dst, tag, data) }
	}
	if s.upCount > 0 {
		buf := napBuf(&p.napUpBuf, s.upCount*k)
		o := 0
		for _, d := range s.crossSendIDs {
			for _, li := range p.SendPeers[d] {
				copy(buf[o:o+k], xExt[li*k:li*k+k])
				o += k
			}
		}
		send(s.leaderRank, tagNAPUp, buf)
	}
	if p.sendBuf == nil {
		p.sendBuf = make([][]float64, len(p.SendPeers))
	}
	for _, d := range s.intraSendIDs {
		list := p.SendPeers[d]
		buf := napBuf(&p.sendBuf[d], len(list)*k)
		o := 0
		for _, li := range list {
			copy(buf[o:o+k], xExt[li*k:li*k+k])
			o += k
		}
		send(d, tagHaloData, buf)
	}
}

// napCompleteRecvs is the receive half: the leader first discharges its
// relay duty (collect ups, exchange one combined message per peer node,
// hand out downs), then every rank drains its direct intra receives and
// finally scatters its down message.
func (p *HaloPlan) napCompleteRecvs(c *simmpi.Comm, xExt []float64, nLocal, k int) {
	s := p.napInit()
	if s.isLeader && s.relay != nil {
		p.napRelay(c, k)
	}
	for _, peer := range s.intraRecvIDs {
		slots := p.RecvPeers[peer]
		vals := c.RecvFloats(peer, tagHaloData)
		if len(vals) != len(slots)*k {
			panic(fmt.Sprintf("distmat: rank %d node-aware direct update from %d: got %d values, want %d",
				c.Rank(), peer, len(vals), len(slots)*k))
		}
		for m, slot := range slots {
			copy(xExt[(nLocal+slot)*k:(nLocal+slot)*k+k], vals[m*k:(m+1)*k])
		}
	}
	if s.downCount > 0 {
		vals := c.RecvFloats(s.leaderRank, tagNAPDown)
		if len(vals) != s.downCount*k {
			panic(fmt.Sprintf("distmat: rank %d node-aware down update: got %d values, want %d",
				c.Rank(), len(vals), s.downCount*k))
		}
		o := 0
		for _, src := range s.crossRecvIDs {
			for _, slot := range p.RecvPeers[src] {
				copy(xExt[(nLocal+slot)*k:(nLocal+slot)*k+k], vals[o:o+k])
				o += k
			}
		}
	}
}

// napRelay runs the leader's middle phase of one k-wide exchange.
func (p *HaloPlan) napRelay(c *simmpi.Comm, k int) {
	s := p.nap
	r := s.relay
	if p.napUpVals == nil {
		p.napUpVals = make([][]float64, len(r.upMembers))
		p.napInVals = make([][]float64, len(r.inNodes))
		p.napOutBufs = make([][]float64, len(r.outNodes))
		p.napDownBufs = make([][]float64, len(r.downMembers))
	}
	for i, m := range r.upMembers {
		vals := c.RecvFloats(m, tagNAPUp)
		if len(vals) != r.upCounts[i]*k {
			panic(fmt.Sprintf("distmat: leader %d up from %d: got %d values, want %d",
				c.Rank(), m, len(vals), r.upCounts[i]*k))
		}
		p.napUpVals[i] = vals
	}
	for bi, b := range r.outNodes {
		buf := napBuf(&p.napOutBufs[bi], r.outCounts[bi]*k)
		o := 0
		for _, sg := range r.outSegs[bi] {
			copy(buf[o:o+sg.n*k], p.napUpVals[sg.buf][sg.off*k:(sg.off+sg.n)*k])
			o += sg.n * k
		}
		c.SendFloats(p.topo.Leader(b), tagNAPInter, buf)
	}
	for bi, b := range r.inNodes {
		vals := c.RecvFloats(p.topo.Leader(b), tagNAPInter)
		if len(vals) != r.inCounts[bi]*k {
			panic(fmt.Sprintf("distmat: leader %d inter from node %d: got %d values, want %d",
				c.Rank(), b, len(vals), r.inCounts[bi]*k))
		}
		p.napInVals[bi] = vals
	}
	for di, m := range r.downMembers {
		buf := napBuf(&p.napDownBufs[di], r.downCounts[di]*k)
		o := 0
		for _, sg := range r.downSegs[di] {
			copy(buf[o:o+sg.n*k], p.napInVals[sg.buf][sg.off*k:(sg.off+sg.n)*k])
			o += sg.n * k
		}
		c.SendFloats(m, tagNAPDown, buf)
	}
}

// ExchangeCounts returns the per-level message and byte counts ONE k-wide
// halo exchange charges to this rank's meter, under the plan's current
// routing (flat or node-aware). This is the structural quantity the
// hierarchical α–β cost model prices and the metered tests pin: under a
// flat topology everything is inter-node and the totals reproduce the
// historical per-peer schedule exactly; under node-aware routing inter
// messages collapse to one per peer node (leaders only) while inter bytes
// stay exactly the flat plan's.
func (p *HaloPlan) ExchangeCounts(k int) (intraMsgs, intraBytes, interMsgs, interBytes int64) {
	kk := int64(k)
	bpv := int64(8) // bytes per value on the wire
	if p.f32 {
		bpv = 4
	}
	if !p.napActive() {
		for _, d := range p.sendPeerIDs {
			b := bpv * int64(len(p.SendPeers[d])) * kk
			if !p.topo.Flat() && p.topo.SameNode(p.rank, d) {
				intraMsgs++
				intraBytes += b
			} else {
				interMsgs++
				interBytes += b
			}
		}
		return
	}
	s := p.napInit()
	for _, d := range s.intraSendIDs {
		intraMsgs++
		intraBytes += bpv * int64(len(p.SendPeers[d])) * kk
	}
	if s.upCount > 0 && p.rank != s.leaderRank {
		intraMsgs++
		intraBytes += bpv * int64(s.upCount) * kk
	}
	if s.isLeader && s.relay != nil {
		for di, m := range s.relay.downMembers {
			if m == p.rank {
				continue // self-down rides the unmetered loopback
			}
			intraMsgs++
			intraBytes += bpv * int64(s.relay.downCounts[di]) * kk
		}
		for bi := range s.relay.outNodes {
			interMsgs++
			interBytes += bpv * int64(s.relay.outCounts[bi]) * kk
		}
	}
	return
}

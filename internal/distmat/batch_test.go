package distmat

import (
	"testing"

	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/vecops"
)

// The batched distributed SpMM is bit-identical per column to the scalar
// distributed SpMV, and its halo update costs exactly the scalar message
// count (one message per neighbour, k× the bytes).
func TestOpMulMatMatchesMulVecMetered(t *testing.T) {
	a := grid2d(9, 8)
	n := a.Rows
	const nranks, k = 3, 4
	l := NewUniformLayout(n, nranks)

	xcols := make([][]float64, k)
	for c := range xcols {
		xcols[c] = make([]float64, n)
		for i := range xcols[c] {
			xcols[c][i] = float64(i%7) - 2.5*float64(c)
		}
	}

	// Scalar pass: k MulVecs, metered.
	want := make([][]float64, k)
	for c := range want {
		want[c] = make([]float64, n)
	}
	w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi))
		c.Barrier()
		if c.Rank() == 0 {
			c.Meter().Reset()
		}
		c.Barrier()
		scratch := NewDistVec(op.LZ)
		for col := 0; col < k; col++ {
			y := make([]float64, hi-lo)
			op.MulVec(c, xcols[col][lo:hi], y, scratch, nil)
			copy(want[col][lo:hi], y)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	solo := w.Meter().Snapshot()

	// Batched pass: one MulMat, metered.
	got := make([]float64, n*k)
	x := make([]float64, n*k)
	for c := range xcols {
		vecops.PackColumn(x, xcols[c], k, c)
	}
	w2, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi))
		c.Barrier()
		if c.Rank() == 0 {
			c.Meter().Reset()
		}
		c.Barrier()
		scratch := NewBatchDistVec(op.LZ, k)
		y := make([]float64, (hi-lo)*k)
		var fc vecops.FlopCounter
		op.MulMat(c, x[lo*k:hi*k], y, k, nil, scratch, &fc)
		if fc.Count() != 2*int64(op.LZ.M.NNZ())*k {
			t.Errorf("rank %d flops = %d, want %d", c.Rank(), fc.Count(), 2*op.LZ.M.NNZ()*k)
		}
		copy(got[lo*k:hi*k], y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := w2.Meter().Snapshot()

	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			if got[i*k+c] != want[c][i] {
				t.Fatalf("col %d row %d: MulMat %v != MulVec %v", c, i, got[i*k+c], want[c][i])
			}
		}
	}
	if solo.P2PMessages == 0 {
		t.Fatal("degenerate partition: no halo traffic metered")
	}
	// The k scalar SpMVs send k messages per neighbour; the batch sends 1.
	if batch.P2PMessages*int64(k) != solo.P2PMessages {
		t.Fatalf("halo messages: batch %d, solo %d, want exactly 1/k", batch.P2PMessages, solo.P2PMessages)
	}
	if batch.P2PBytes != solo.P2PBytes {
		t.Fatalf("halo bytes: batch %d != solo %d (same values, coalesced)", batch.P2PBytes, solo.P2PBytes)
	}
}

// Masked columns are not computed but the halo message schedule is
// unchanged — the mask saves flops, never messages.
func TestOpMulMatMaskKeepsSchedule(t *testing.T) {
	a := grid2d(7, 7)
	n := a.Rows
	const nranks, k = 2, 3
	l := NewUniformLayout(n, nranks)
	x := make([]float64, n*k)
	for i := range x {
		x[i] = float64(i % 5)
	}
	var msgFull, msgMasked int64
	for _, cols := range [][]int{nil, {1}} {
		w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi))
			c.Barrier()
			if c.Rank() == 0 {
				c.Meter().Reset()
			}
			c.Barrier()
			scratch := NewBatchDistVec(op.LZ, k)
			y := make([]float64, (hi-lo)*k)
			op.MulMat(c, x[lo*k:hi*k], y, k, cols, scratch, nil)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if cols == nil {
			msgFull = w.Meter().Snapshot().P2PMessages
		} else {
			msgMasked = w.Meter().Snapshot().P2PMessages
		}
	}
	if msgFull == 0 || msgFull != msgMasked {
		t.Fatalf("message schedule depends on mask: full %d, masked %d", msgFull, msgMasked)
	}
}

// DotBatchDist reduces all k columns in one collective call.
func TestDotBatchDistOneCollective(t *testing.T) {
	const nranks, k, nl = 3, 5, 10
	w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		x := make([]float64, nl*k)
		for i := range x {
			x[i] = float64(c.Rank()*len(x)+i) / 17
		}
		out := make([]float64, k)
		DotBatchDist(c, x, x, k, nil, out, nil)
		// Cross-check column 2 against the scalar path.
		col := make([]float64, nl)
		vecops.UnpackColumn(col, x, k, 2)
		want := Dot(c, col, col, nil)
		if out[2] != want {
			t.Errorf("rank %d: DotBatchDist col 2 = %v, scalar Dot = %v", c.Rank(), out[2], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// One batched call + one scalar cross-check call per reduction point.
	if got := w.Meter().Snapshot().CollectiveCalls; got != 2*nranks {
		t.Fatalf("collective calls = %d, want %d", got, 2*nranks)
	}
}

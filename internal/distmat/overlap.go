package distmat

import (
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/vecops"
)

// Communication/computation overlap. Hybrid MPI codes split each rank's
// rows into an interior set (touching only local columns) and a boundary
// set (touching halo columns): the halo update is posted, the interior
// product is computed while the values are in flight, and the boundary
// rows are finished after the receive. The simulated runtime cannot
// actually overlap in wall-clock terms, but the split changes the cost
// model (the communication term hides behind the interior compute) and the
// structure is what a real MPI port of this library would execute.

// OverlapOp wraps an Op with the interior/boundary row split.
type OverlapOp struct {
	*Op
	// Interior and Boundary are the local row indices of each class.
	Interior, Boundary []int
}

// NewOverlapOp builds the overlap view of an operator.
func NewOverlapOp(op *Op) *OverlapOp {
	nl := op.LZ.NLocal()
	o := &OverlapOp{Op: op}
	for li := 0; li < op.LZ.M.Rows; li++ {
		cols, _ := op.LZ.M.Row(li)
		boundary := false
		for _, c := range cols {
			if c >= nl {
				boundary = true
				break
			}
		}
		if boundary {
			o.Boundary = append(o.Boundary, li)
		} else {
			o.Interior = append(o.Interior, li)
		}
	}
	return o
}

// mulRows computes the selected rows of y = M·xExt. The mixed-precision
// operator reads the float32 value array instead, accumulating in float64
// like sparse.CSR32.
func (o *OverlapOp) mulRows(rows []int, xExt, y []float64) {
	if o.f32 {
		m := o.LZ.M32()
		for _, li := range rows {
			sum := 0.0
			for k := m.RowPtr[li]; k < m.RowPtr[li+1]; k++ {
				sum += float64(m.Val[k]) * xExt[m.ColIdx[k]]
			}
			y[li] = sum
		}
		return
	}
	m := o.LZ.M
	for _, li := range rows {
		sum := 0.0
		for k := m.RowPtr[li]; k < m.RowPtr[li+1]; k++ {
			sum += m.Val[k] * xExt[m.ColIdx[k]]
		}
		y[li] = sum
	}
}

// MulVecOverlap computes y = A x in overlap order: sends are posted first,
// interior rows are computed, then receives complete and boundary rows
// finish. Results are identical to Op.MulVec; only the schedule differs.
func (o *OverlapOp) MulVecOverlap(c *simmpi.Comm, x, y []float64, scratch *DistVec, fc *vecops.FlopCounter) {
	nl := o.LZ.NLocal()
	copy(scratch.Ext[:nl], x)
	// Post sends (the halo values leave now).
	o.Plan.PostSends(c, scratch.Ext)
	// Interior rows: no halo dependence.
	o.mulRows(o.Interior, scratch.Ext, y)
	// Complete receives.
	o.Plan.CompleteRecvs(c, scratch.Ext, nl)
	// Boundary rows.
	o.mulRows(o.Boundary, scratch.Ext, y)
	fc.Add(2 * int64(o.LZ.M.NNZ()))
}

// MulVecOverlapAsync computes y = A x like MulVecOverlap but drives the
// halo update through the nonblocking primitives (Irecv posted before
// Isend, completion deferred until boundary rows need the values). Results
// and metered traffic are identical to MulVecOverlap; only the posting
// mechanism differs — this is the schedule the pipelined solver uses, and
// the one a real-MPI port would execute verbatim.
func (o *OverlapOp) MulVecOverlapAsync(c *simmpi.Comm, x, y []float64, scratch *DistVec, fc *vecops.FlopCounter) {
	nl := o.LZ.NLocal()
	copy(scratch.Ext[:nl], x)
	h := o.Plan.StartExchange(c, scratch.Ext)
	o.mulRows(o.Interior, scratch.Ext, y)
	h.Complete(c, scratch.Ext, nl)
	o.mulRows(o.Boundary, scratch.Ext, y)
	fc.Add(2 * int64(o.LZ.M.NNZ()))
}

// InteriorNNZ returns the stored entries in interior rows — the work
// available to hide communication behind.
func (o *OverlapOp) InteriorNNZ() int {
	n := 0
	for _, li := range o.Interior {
		n += o.LZ.M.RowNNZ(li)
	}
	return n
}

package distmat

// Half-width halo exchange. Mixed-precision solves keep every iteration
// vector in float64 but let the inner operators carry float32 values: the
// gather narrows each halo value once, the wire (and the meter) pays 4 bytes
// per value instead of 8, and the scatter widens back. The schedule —
// peers, index lists, node-aware relay segments, message counts — is exactly
// the full-width plan's; only the payload type and the reusable buffers
// change, so every structural claim (message counts, NAP collapse, batch
// coalescing) carries over by construction. The narrowed values are
// identical on the flat and node-aware routes (one rounding at the gather,
// untouched through the relay), preserving the bitwise-equal-routing
// invariant in float32.

import (
	"fmt"

	"fsaicomm/internal/simmpi"
)

// napBuf32 resizes *store to n float32s, reusing capacity across exchanges.
func napBuf32(store *[]float32, n int) []float32 {
	if cap(*store) < n {
		*store = make([]float32, n)
	}
	*store = (*store)[:n]
	return *store
}

// postSends32 is the float32 PostSends: narrow-gather into the f32 send
// buffers and post half-width sends.
func (p *HaloPlan) postSends32(c *simmpi.Comm, xExt []float64) {
	if p.napActive() {
		p.napPostSends32(c, xExt, 1, false)
		return
	}
	if p.sendBuf32 == nil {
		p.sendBuf32 = make([][]float32, len(p.SendPeers))
	}
	for _, peer := range p.sendPeerIDs {
		list := p.SendPeers[peer]
		buf := napBuf32(&p.sendBuf32[peer], len(list))
		for k, li := range list {
			buf[k] = float32(xExt[li])
		}
		c.SendFloats32(peer, tagHaloData, buf)
	}
}

// completeRecvs32 drains half-width receives and widens them into the halo
// slots of xExt.
func (p *HaloPlan) completeRecvs32(c *simmpi.Comm, xExt []float64, nLocal int) {
	if p.napActive() {
		p.napCompleteRecvs32(c, xExt, nLocal, 1)
		return
	}
	for _, peer := range p.recvPeerIDs {
		slots := p.RecvPeers[peer]
		vals := c.RecvFloats32(peer, tagHaloData)
		if len(vals) != len(slots) {
			panic(fmt.Sprintf("distmat: rank %d halo update from %d: got %d values, want %d",
				c.Rank(), peer, len(vals), len(slots)))
		}
		for k, s := range slots {
			xExt[nLocal+s] = float64(vals[k])
		}
	}
}

// startExchange32 is the float32 StartExchange: receives posted first, then
// nonblocking half-width sends, completion via Wait32 in Complete.
func (p *HaloPlan) startExchange32(c *simmpi.Comm, xExt []float64) *ExchangeHandle {
	if p.napActive() {
		p.async.plan = p
		p.async.nap = true
		p.async.f32 = true
		p.napPostSends32(c, xExt, 1, true)
		return &p.async
	}
	p.async.nap = false
	p.async.f32 = true
	if p.async.recvs == nil {
		p.async.recvs = make([]*simmpi.Request, 0, len(p.recvPeerIDs))
	}
	p.async.plan = p
	p.async.recvs = p.async.recvs[:0]
	for _, peer := range p.recvPeerIDs {
		p.async.recvs = append(p.async.recvs, c.IrecvFloats32(peer, tagHaloData))
	}
	if p.sendBuf32 == nil {
		p.sendBuf32 = make([][]float32, len(p.SendPeers))
	}
	for _, peer := range p.sendPeerIDs {
		list := p.SendPeers[peer]
		buf := napBuf32(&p.sendBuf32[peer], len(list))
		for k, li := range list {
			buf[k] = float32(xExt[li])
		}
		// Isend copies the payload at post time, so buf is immediately
		// reusable; the send handle needs no explicit wait.
		c.IsendFloats32(peer, tagHaloData, buf)
	}
	return &p.async
}

// complete32 finishes a flat half-width exchange started with
// startExchange32.
func (h *ExchangeHandle) complete32(c *simmpi.Comm, xExt []float64, nLocal int) {
	p := h.plan
	for i, peer := range p.recvPeerIDs {
		slots := p.RecvPeers[peer]
		vals, err := h.recvs[i].Wait32()
		if err != nil {
			panic(fmt.Sprintf("distmat: rank %d halo update from %d: %v", c.Rank(), peer, err))
		}
		if len(vals) != len(slots) {
			panic(fmt.Sprintf("distmat: rank %d halo update from %d: got %d values, want %d",
				c.Rank(), peer, len(vals), len(slots)))
		}
		for k, s := range slots {
			xExt[nLocal+s] = float64(vals[k])
		}
	}
}

// exchangeBatch32 is the k-wide half-width exchange: same one-message-per-
// neighbour coalescing as ExchangeBatch at half the bytes.
func (p *HaloPlan) exchangeBatch32(c *simmpi.Comm, xExt []float64, nLocal, k int) {
	if p.napActive() {
		p.napPostSends32(c, xExt, k, false)
		p.napCompleteRecvs32(c, xExt, nLocal, k)
		return
	}
	if p.sendBuf32 == nil {
		p.sendBuf32 = make([][]float32, len(p.SendPeers))
	}
	for _, peer := range p.sendPeerIDs {
		list := p.SendPeers[peer]
		buf := napBuf32(&p.sendBuf32[peer], len(list)*k)
		o := 0
		for _, li := range list {
			for j := 0; j < k; j++ {
				buf[o+j] = float32(xExt[li*k+j])
			}
			o += k
		}
		c.SendFloats32(peer, tagHaloData, buf)
	}
	for _, peer := range p.recvPeerIDs {
		slots := p.RecvPeers[peer]
		vals := c.RecvFloats32(peer, tagHaloData)
		if len(vals) != len(slots)*k {
			panic(fmt.Sprintf("distmat: rank %d batched halo update from %d: got %d values, want %d",
				c.Rank(), peer, len(vals), len(slots)*k))
		}
		for m, s := range slots {
			for j := 0; j < k; j++ {
				xExt[(nLocal+s)*k+j] = float64(vals[m*k+j])
			}
		}
	}
}

// napPostSends32 is the half-width send half of a k-wide node-aware
// exchange. The leader's self-up rides the unmetered no-copy loopback, which
// is why the f32 buffers are dedicated: the payload the relay later reads IS
// this buffer.
func (p *HaloPlan) napPostSends32(c *simmpi.Comm, xExt []float64, k int, async bool) {
	s := p.napInit()
	send := c.SendFloats32
	if async {
		send = func(dst, tag int, data []float32) { c.IsendFloats32(dst, tag, data) }
	}
	if s.upCount > 0 {
		buf := napBuf32(&p.napUpBuf32, s.upCount*k)
		o := 0
		for _, d := range s.crossSendIDs {
			for _, li := range p.SendPeers[d] {
				for j := 0; j < k; j++ {
					buf[o+j] = float32(xExt[li*k+j])
				}
				o += k
			}
		}
		send(s.leaderRank, tagNAPUp, buf)
	}
	if p.sendBuf32 == nil {
		p.sendBuf32 = make([][]float32, len(p.SendPeers))
	}
	for _, d := range s.intraSendIDs {
		list := p.SendPeers[d]
		buf := napBuf32(&p.sendBuf32[d], len(list)*k)
		o := 0
		for _, li := range list {
			for j := 0; j < k; j++ {
				buf[o+j] = float32(xExt[li*k+j])
			}
			o += k
		}
		send(d, tagHaloData, buf)
	}
}

// napCompleteRecvs32 is the half-width receive half: relay duty first
// (leaders), then direct intra receives, then the down message — widening
// every value exactly once at the final scatter.
func (p *HaloPlan) napCompleteRecvs32(c *simmpi.Comm, xExt []float64, nLocal, k int) {
	s := p.napInit()
	if s.isLeader && s.relay != nil {
		p.napRelay32(c, k)
	}
	for _, peer := range s.intraRecvIDs {
		slots := p.RecvPeers[peer]
		vals := c.RecvFloats32(peer, tagHaloData)
		if len(vals) != len(slots)*k {
			panic(fmt.Sprintf("distmat: rank %d node-aware direct update from %d: got %d values, want %d",
				c.Rank(), peer, len(vals), len(slots)*k))
		}
		for m, slot := range slots {
			for j := 0; j < k; j++ {
				xExt[(nLocal+slot)*k+j] = float64(vals[m*k+j])
			}
		}
	}
	if s.downCount > 0 {
		vals := c.RecvFloats32(s.leaderRank, tagNAPDown)
		if len(vals) != s.downCount*k {
			panic(fmt.Sprintf("distmat: rank %d node-aware down update: got %d values, want %d",
				c.Rank(), len(vals), s.downCount*k))
		}
		o := 0
		for _, src := range s.crossRecvIDs {
			for _, slot := range p.RecvPeers[src] {
				for j := 0; j < k; j++ {
					xExt[(nLocal+slot)*k+j] = float64(vals[o+j])
				}
				o += k
			}
		}
	}
}

// napRelay32 runs the leader's middle phase of one k-wide half-width
// exchange. Values pass through untouched (float32 in, float32 out), so the
// relay introduces no additional rounding.
func (p *HaloPlan) napRelay32(c *simmpi.Comm, k int) {
	s := p.nap
	r := s.relay
	if p.napUpVals32 == nil {
		p.napUpVals32 = make([][]float32, len(r.upMembers))
		p.napInVals32 = make([][]float32, len(r.inNodes))
		p.napOutBufs32 = make([][]float32, len(r.outNodes))
		p.napDownBufs32 = make([][]float32, len(r.downMembers))
	}
	for i, m := range r.upMembers {
		vals := c.RecvFloats32(m, tagNAPUp)
		if len(vals) != r.upCounts[i]*k {
			panic(fmt.Sprintf("distmat: leader %d up from %d: got %d values, want %d",
				c.Rank(), m, len(vals), r.upCounts[i]*k))
		}
		p.napUpVals32[i] = vals
	}
	for bi, b := range r.outNodes {
		buf := napBuf32(&p.napOutBufs32[bi], r.outCounts[bi]*k)
		o := 0
		for _, sg := range r.outSegs[bi] {
			copy(buf[o:o+sg.n*k], p.napUpVals32[sg.buf][sg.off*k:(sg.off+sg.n)*k])
			o += sg.n * k
		}
		c.SendFloats32(p.topo.Leader(b), tagNAPInter, buf)
	}
	for bi, b := range r.inNodes {
		vals := c.RecvFloats32(p.topo.Leader(b), tagNAPInter)
		if len(vals) != r.inCounts[bi]*k {
			panic(fmt.Sprintf("distmat: leader %d inter from node %d: got %d values, want %d",
				c.Rank(), b, len(vals), r.inCounts[bi]*k))
		}
		p.napInVals32[bi] = vals
	}
	for di, m := range r.downMembers {
		buf := napBuf32(&p.napDownBufs32[di], r.downCounts[di]*k)
		o := 0
		for _, sg := range r.downSegs[di] {
			copy(buf[o:o+sg.n*k], p.napInVals32[sg.buf][sg.off*k:(sg.off+sg.n)*k])
			o += sg.n * k
		}
		c.SendFloats32(m, tagNAPDown, buf)
	}
}

package distmat

// Batched (multi-RHS) variants of the distributed vector and SpMV kernels.
// A batch of k distributed vectors stores each rank's slice row-major
// interleaved (x[i*k+c] = component i of column c), matching
// sparse.CSR.MulMat. The communication win is structural: one halo update
// for the whole block sends ONE message per neighbour carrying all k
// columns' values — per-RHS message count drops exactly k× versus k scalar
// exchanges, while the byte volume stays the same (k× the scalar payload,
// coalesced). The metered batch tests pin both facts on the sim and tcp
// backends.

import (
	"fmt"

	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/vecops"
)

// BatchDistVec is the k-wide counterpart of DistVec: a rank's interleaved
// local block plus halo workspace. Local values live in Ext[:NLocal*K];
// ExchangeBatch fills Ext[NLocal*K:].
type BatchDistVec struct {
	NLocal int
	K      int
	Ext    []float64
}

// NewBatchDistVec allocates a batched distributed vector view compatible
// with lz for batches of size k.
func NewBatchDistVec(lz *Localized, k int) *BatchDistVec {
	if k < 1 {
		panic(fmt.Sprintf("distmat: NewBatchDistVec batch size %d < 1", k))
	}
	return &BatchDistVec{
		NLocal: lz.NLocal(),
		K:      k,
		Ext:    make([]float64, (lz.NLocal()+len(lz.Halo))*k),
	}
}

// Local returns the locally-owned interleaved block.
func (v *BatchDistVec) Local() []float64 { return v.Ext[:v.NLocal*v.K] }

// ExchangeBatch performs one k-wide halo update: xExt is the interleaved
// extended block (length (nLocal+halo)·k) with the local part already
// filled; the halo slots are filled from peers. Each peer receives exactly
// one message per update — the same message count as the scalar Exchange —
// carrying len(list)·k values, so batching k right-hand sides costs zero
// extra messages. Frozen (converged) columns still travel: the payload
// width is fixed at k, which keeps the schedule independent of the
// convergence mask and the per-neighbour message count exactly 1.
func (p *HaloPlan) ExchangeBatch(c *simmpi.Comm, xExt []float64, nLocal, k int) {
	if p.f32 {
		p.exchangeBatch32(c, xExt, nLocal, k)
		return
	}
	if p.napActive() {
		// Node-aware and k-wide batching compose: the aggregated envelope is
		// width-agnostic, so a batch still costs one message per neighbour
		// (now per node pair for the inter-node leg) carrying k columns.
		p.napPostSends(c, xExt, k, false)
		p.napCompleteRecvs(c, xExt, nLocal, k)
		return
	}
	if p.sendBuf == nil {
		p.sendBuf = make([][]float64, len(p.SendPeers))
	}
	for _, peer := range p.sendPeerIDs {
		list := p.SendPeers[peer]
		need := len(list) * k
		buf := p.sendBuf[peer]
		if cap(buf) < need {
			buf = make([]float64, need)
		}
		buf = buf[:need]
		p.sendBuf[peer] = buf
		for m, li := range list {
			copy(buf[m*k:(m+1)*k], xExt[li*k:li*k+k])
		}
		c.SendFloats(peer, tagHaloData, buf)
	}
	for _, peer := range p.recvPeerIDs {
		slots := p.RecvPeers[peer]
		vals := c.RecvFloats(peer, tagHaloData)
		if len(vals) != len(slots)*k {
			panic(fmt.Sprintf("distmat: rank %d batched halo update from %d: got %d values, want %d",
				c.Rank(), peer, len(vals), len(slots)*k))
		}
		for m, s := range slots {
			copy(xExt[(nLocal+s)*k:(nLocal+s)*k+k], vals[m*k:(m+1)*k])
		}
	}
}

// MulMat computes the local block of Y = A·X for k interleaved columns,
// performing one k-wide halo update (one message per neighbour regardless
// of k). x and y hold the rank's interleaved local blocks (length
// NLocal·k); scratch must come from NewBatchDistVec(op.LZ, k). Only the
// active columns of y are computed (nil cols = all); the halo exchange
// always carries all k columns so the message schedule never depends on the
// mask. Column c of the result is bit-identical to the scalar Op.MulVec on
// column c.
func (op *Op) MulMat(c *simmpi.Comm, x, y []float64, k int, cols []int, scratch *BatchDistVec, fc *vecops.FlopCounter) {
	nl := op.LZ.NLocal()
	if len(x) != nl*k || len(y) != nl*k {
		panic(fmt.Sprintf("distmat: MulMat local length %d/%d, want %d (k=%d)", len(x), len(y), nl*k, k))
	}
	if scratch.NLocal != nl || scratch.K != k {
		panic(fmt.Sprintf("distmat: MulMat scratch %d×%d, want %d×%d", scratch.NLocal, scratch.K, nl, k))
	}
	copy(scratch.Ext[:nl*k], x)
	op.Plan.ExchangeBatch(c, scratch.Ext, nl, k)
	if op.f32 {
		op.LZ.M32().MulMatCols(scratch.Ext, y, k, cols)
	} else {
		op.LZ.M.MulMatCols(scratch.Ext, y, k, cols)
	}
	nc := int64(k)
	if cols != nil {
		nc = int64(len(cols))
	}
	fc.Add(2 * int64(op.LZ.M.NNZ()) * nc)
}

// DotBatchDist reduces the per-column local dot products globally in ONE
// k-wide collective: out[c] = Σ_ranks x_cᵀy_c. Masked columns contribute
// exact zeros, so the collective is always k wide and the call count per
// iteration is 1 regardless of batch size or convergence state — the
// batched counterpart of k separate distmat.Dot calls (and exactly one
// collective where those cost k).
func DotBatchDist(c *simmpi.Comm, x, y []float64, k int, cols []int, out []float64, fc *vecops.FlopCounter) {
	for i := 0; i < k; i++ {
		out[i] = 0
	}
	vecops.DotBatch(x, y, k, cols, out, fc)
	g := c.AllreduceSum(out[:k]...)
	copy(out[:k], g)
}

package distmat

import (
	"fmt"
	"sort"
	"sync"

	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

// Message tags used by the distributed kernels. Distinct tags per protocol
// phase turn cross-phase bugs into immediate tag-mismatch panics.
const (
	tagPlanIdx  = 101 // halo plan construction: index lists
	tagHaloData = 102 // halo update values
	tagRowMeta  = 103 // remote row gather: row lengths
	tagRowCols  = 104 // remote row gather: column indices
	tagRowVals  = 105 // remote row gather: values
	tagTransp   = 106 // distributed transpose payloads
	tagNAPUp    = 107 // node-aware exchange: member → node leader gather
	tagNAPInter = 108 // node-aware exchange: leader → leader combined message
	tagNAPDown  = 109 // node-aware exchange: node leader → member scatter
)

// Localized is the kernel-ready view of a rank's rows: column indices are
// remapped so that locals occupy [0, NLocal) (global g → g-lo) and halo
// columns occupy [NLocal, NLocal+len(Halo)), with Halo[k] recording the
// global index of halo slot k. Halo is sorted ascending.
type Localized struct {
	Lo, Hi int   // global row range
	Halo   []int // global indices of halo columns, sorted
	M      *sparse.CSR
	// m32 is the lazily-narrowed float32 view of M used by mixed-precision
	// solves. Unexported (gob ships only the schedule above) and built at
	// most once even when concurrent solves share the Localized view.
	m32     *sparse.CSR32
	m32Once sync.Once
}

// NLocal returns the number of locally owned rows/columns.
func (lz *Localized) NLocal() int { return lz.Hi - lz.Lo }

// M32 returns the float32 view of M, narrowing it on first use. The view
// shares M's structure arrays and is read-only, so concurrent solves may
// share it like M itself.
func (lz *Localized) M32() *sparse.CSR32 {
	lz.m32Once.Do(func() { lz.m32 = sparse.NewCSR32(lz.M) })
	return lz.m32
}

// HaloSet returns the halo global indices (shared slice; do not mutate).
func (lz *Localized) HaloSet() []int { return lz.Halo }

// Localize remaps a local-rows matrix (global column indices) into the
// local+halo column numbering.
func Localize(lo, hi int, rows *sparse.CSR) *Localized {
	// Collect halo columns.
	haloSet := map[int]bool{}
	for _, g := range rows.ColIdx {
		if g < lo || g >= hi {
			haloSet[g] = true
		}
	}
	halo := make([]int, 0, len(haloSet))
	for g := range haloSet {
		halo = append(halo, g)
	}
	sort.Ints(halo)
	slot := make(map[int]int, len(halo))
	for k, g := range halo {
		slot[g] = k
	}
	nl := hi - lo
	m := &sparse.CSR{
		Rows:   rows.Rows,
		Cols:   nl + len(halo),
		RowPtr: append([]int(nil), rows.RowPtr...),
		ColIdx: make([]int, rows.NNZ()),
		Val:    append([]float64(nil), rows.Val...),
	}
	for k, g := range rows.ColIdx {
		if g >= lo && g < hi {
			m.ColIdx[k] = g - lo
		} else {
			m.ColIdx[k] = nl + slot[g]
		}
	}
	// Re-sort each row by the new column numbering (locals stay ordered;
	// halo slots are ordered among themselves, but locals and halos
	// interleave differently than global order).
	for i := 0; i < m.Rows; i++ {
		loK, hiK := m.RowPtr[i], m.RowPtr[i+1]
		idx := m.ColIdx[loK:hiK]
		val := m.Val[loK:hiK]
		sort.Sort(&colValSorter{idx, val})
	}
	return &Localized{Lo: lo, Hi: hi, Halo: halo, M: m}
}

type colValSorter struct {
	idx []int
	val []float64
}

func (s *colValSorter) Len() int           { return len(s.idx) }
func (s *colValSorter) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s *colValSorter) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

// HaloPlan is a rank's halo-update schedule: which locally-owned unknowns it
// sends to which peers, and which remote unknowns it receives into which
// halo slots. Peers appear in ascending rank order.
type HaloPlan struct {
	SendPeers                [][]int // [peer] -> local row indices (0-based within rank) to send
	RecvPeers                [][]int // [peer] -> halo slot indices to fill
	sendPeerIDs, recvPeerIDs []int
	// Node-aware routing state (see nodeaware.go). rank is the owning rank,
	// topo the two-level topology the plan was built under, and needCounts
	// the full size×size need matrix (needCounts[d*size+s] = values rank d
	// receives from rank s per exchange) captured for free from
	// BuildHaloPlan's allgather — everything the NAP relay schedule is
	// derived from, with zero extra communication. nodeAware selects the
	// aggregated protocol; it defaults to on whenever the topology has
	// multi-rank nodes and can be toggled with SetNodeAware for flat-plan
	// baselines under the same topology.
	rank       int
	topo       simmpi.Topology
	needCounts []int64
	nodeAware  bool
	nap        *napSched
	// sendBuf holds per-peer gather buffers, lazily sized and reused across
	// updates so the per-iteration halo exchange allocates nothing on the
	// send side (simmpi copies payloads on Send). A plan is confined to its
	// rank's goroutine, like the Comm it is used with.
	sendBuf [][]float64
	// Node-aware exchange workspaces, reused across updates like sendBuf:
	// the up-gather buffer, the leader's combined outbound and per-member
	// down buffers, and the received up/inter payload lists.
	napUpBuf                []float64
	napOutBufs, napDownBufs [][]float64
	napUpVals, napInVals    [][]float64
	// f32 selects the half-width wire format: halo values are narrowed to
	// float32 at the gather, travel (and are metered) at 4 bytes each, and
	// are widened back on scatter. The schedule is precision-independent;
	// only the buffers below differ. See halo32.go.
	f32 bool
	// Float32 twins of the exchange workspaces, used only when f32 is set.
	// The NAP leader needs its own set because self-ups and self-downs ride
	// the no-copy loopback queue: the payload the leader scatters IS the
	// buffer it gathered into, so the two precisions cannot share storage.
	sendBuf32                   [][]float32
	napUpBuf32                  []float32
	napOutBufs32, napDownBufs32 [][]float32
	napUpVals32, napInVals32    [][]float32
	// async is the reusable handle for StartExchange (one outstanding
	// nonblocking exchange per plan at a time).
	async ExchangeHandle
}

// SetF32 selects (or clears) the half-width float32 halo wire format for
// this plan. Mixed-precision solves set it on the plans of their inner
// operators; the FP64 outer-loop operators keep the full-width default.
func (p *HaloPlan) SetF32(on bool) { p.f32 = on }

// F32 reports whether the plan exchanges halo values in float32.
func (p *HaloPlan) F32() bool { return p.f32 }

// SendPeerIDs returns the sorted ranks this plan sends to.
func (p *HaloPlan) SendPeerIDs() []int { return p.sendPeerIDs }

// RecvPeerIDs returns the sorted ranks this plan receives from.
func (p *HaloPlan) RecvPeerIDs() []int { return p.recvPeerIDs }

// SendList returns the local row indices sent to the given peer rank, or nil.
func (p *HaloPlan) SendList(peer int) []int { return p.SendPeers[peer] }

// RecvCount returns the total number of halo values received per update.
func (p *HaloPlan) RecvCount() int {
	n := 0
	for _, l := range p.RecvPeers {
		n += len(l)
	}
	return n
}

// SendCount returns the total number of values sent per update.
func (p *HaloPlan) SendCount() int {
	n := 0
	for _, l := range p.SendPeers {
		n += len(l)
	}
	return n
}

// BuildHaloPlan constructs the halo-update schedule for the given halo set.
// All ranks must call it collectively. The exchange of index lists is the
// setup-phase communication METIS-based codes also perform once.
func BuildHaloPlan(c *simmpi.Comm, l *Layout, lz *Localized) *HaloPlan {
	size := c.Size()
	rank := c.Rank()
	plan := &HaloPlan{
		SendPeers: make([][]int, size),
		RecvPeers: make([][]int, size),
		rank:      rank,
		topo:      c.Topology(),
	}
	plan.nodeAware = !plan.topo.Flat()
	// Group my needed globals by owner.
	needByOwner := make([][]int, size)
	for slotIdx, g := range lz.Halo {
		owner := l.Owner(g)
		if owner == rank {
			panic(fmt.Sprintf("distmat: rank %d has local global %d in halo", rank, g))
		}
		needByOwner[owner] = append(needByOwner[owner], g)
		plan.RecvPeers[owner] = append(plan.RecvPeers[owner], slotIdx)
	}
	// Everyone learns the full need-count matrix.
	counts := make([]int64, size)
	for p := 0; p < size; p++ {
		counts[p] = int64(len(needByOwner[p]))
	}
	all := c.AllgatherInt64(counts) // all[r*size+p] = count rank r needs from p
	plan.needCounts = all
	// Send my request lists to owners.
	for p := 0; p < size; p++ {
		if p != rank && len(needByOwner[p]) > 0 {
			c.SendInts(p, tagPlanIdx, needByOwner[p])
		}
	}
	// Receive request lists from ranks that need my rows.
	for r := 0; r < size; r++ {
		if r == rank || all[r*size+rank] == 0 {
			continue
		}
		wanted := c.RecvInts(r, tagPlanIdx)
		local := make([]int, len(wanted))
		for k, g := range wanted {
			if g < lz.Lo || g >= lz.Hi {
				panic(fmt.Sprintf("distmat: rank %d asked rank %d for non-local row %d", r, rank, g))
			}
			local[k] = g - lz.Lo
		}
		plan.SendPeers[r] = local
	}
	for p := 0; p < size; p++ {
		if len(plan.SendPeers[p]) > 0 {
			plan.sendPeerIDs = append(plan.sendPeerIDs, p)
		}
		if len(plan.RecvPeers[p]) > 0 {
			plan.recvPeerIDs = append(plan.recvPeerIDs, p)
		}
	}
	return plan
}

// NewHaloPlanFromSchedule rebuilds a plan from its immutable schedule — the
// per-peer send/receive index lists — recomputing the derived peer-ID sets.
// This is the deserialization constructor: a schedule shipped to a worker
// process (plain exported slices, gob-friendly) comes back as a plan
// equivalent to BuildHaloPlan's output without redoing the collective index
// exchange. The lists are referenced, not copied, like Clone.
func NewHaloPlanFromSchedule(sendPeers, recvPeers [][]int) *HaloPlan {
	p := &HaloPlan{SendPeers: sendPeers, RecvPeers: recvPeers}
	for peer := range sendPeers {
		if len(sendPeers[peer]) > 0 {
			p.sendPeerIDs = append(p.sendPeerIDs, peer)
		}
	}
	for peer := range recvPeers {
		if len(recvPeers[peer]) > 0 {
			p.recvPeerIDs = append(p.recvPeerIDs, peer)
		}
	}
	return p
}

// NewHaloPlanFromScheduleTopo is NewHaloPlanFromSchedule with a two-level
// topology re-attached: needCounts is the need matrix BuildHaloPlan captured
// (see NeedCounts) and rank the owning rank. Node-aware routing is enabled
// whenever topo has multi-rank nodes, exactly as BuildHaloPlan under a
// topology-carrying Comm would — so a prepared system serialized once can be
// solved under any per-request topology without redoing the setup exchange.
func NewHaloPlanFromScheduleTopo(sendPeers, recvPeers [][]int, needCounts []int64, rank int, topo simmpi.Topology) *HaloPlan {
	p := NewHaloPlanFromSchedule(sendPeers, recvPeers)
	p.rank = rank
	p.topo = topo
	p.needCounts = needCounts
	p.nodeAware = !topo.Flat()
	return p
}

// NeedCounts returns the plan's need matrix (needCounts[d*size+s] = values
// rank d receives from rank s per exchange), or nil for schedule-built plans
// that never captured one. Shared slice; callers must not mutate.
func (p *HaloPlan) NeedCounts() []int64 { return p.needCounts }

// Topology returns the topology the plan was built under.
func (p *HaloPlan) Topology() simmpi.Topology { return p.topo }

// NodeAware reports whether exchanges currently route through the
// node-aware aggregated protocol.
func (p *HaloPlan) NodeAware() bool { return p.napActive() }

// SetNodeAware toggles node-aware routing. Enabling it on a plan without a
// multi-rank topology or a need matrix panics: silently falling back to the
// flat schedule would fake the metered structural claims built on the
// toggle. Disabling keeps the topology attached (the meter still classifies
// intra vs inter), which is exactly the flat-plan baseline the node-aware
// benchmarks compare against.
func (p *HaloPlan) SetNodeAware(on bool) {
	if on && (p.topo.Flat() || p.needCounts == nil) {
		panic("distmat: SetNodeAware(true) needs a multi-rank topology and a need matrix (build with BuildHaloPlan under a topology Comm or NewHaloPlanFromScheduleTopo)")
	}
	p.nodeAware = on
}

// Clone returns a plan that shares this plan's immutable schedule (peer
// sets and index lists, which no exchange mutates) but owns fresh send
// buffers and async state. The per-rank schedule of a matrix is computed
// collectively once (BuildHaloPlan) and is then pure data; cloning lets a
// preconditioner cache hand each concurrent solve its own plan instance
// without redoing the setup-phase index exchange — the buffers are the only
// mutable state, and each clone grows its own lazily.
func (p *HaloPlan) Clone() *HaloPlan {
	return &HaloPlan{
		SendPeers:   p.SendPeers,
		RecvPeers:   p.RecvPeers,
		sendPeerIDs: p.sendPeerIDs,
		recvPeerIDs: p.recvPeerIDs,
		rank:        p.rank,
		topo:        p.topo,
		needCounts:  p.needCounts,
		nodeAware:   p.nodeAware,
		f32:         p.f32,
		nap:         p.nap, // immutable once derived; buffers are NOT shared
	}
}

// CloneTopo clones the plan with a different topology attached (node-aware
// routing on iff topo has multi-rank nodes) — how a cached prepared system
// serves solves under per-request topologies. The derived node schedule is
// rebuilt lazily for the new topology.
func (p *HaloPlan) CloneTopo(topo simmpi.Topology) *HaloPlan {
	c := p.Clone()
	c.topo = topo
	c.nodeAware = !topo.Flat()
	c.nap = nil
	return c
}

// Exchange performs one halo update: xExt must have length
// NLocal+len(Halo); its first NLocal entries are the local values (already
// filled by the caller), and Exchange fills the halo slots from peers.
func (p *HaloPlan) Exchange(c *simmpi.Comm, xExt []float64, nLocal int) {
	// Post all sends, then drain receives; per-pair FIFO channels make this
	// deadlock-free with buffered channels.
	p.PostSends(c, xExt)
	p.CompleteRecvs(c, xExt, nLocal)
}

// PostSends posts this rank's halo sends from xExt (local values already
// filled by the caller). The overlap schedule calls it before computing
// interior rows so the values travel while local work proceeds.
func (p *HaloPlan) PostSends(c *simmpi.Comm, xExt []float64) {
	if p.f32 {
		p.postSends32(c, xExt)
		return
	}
	if p.napActive() {
		p.napPostSends(c, xExt, 1, false)
		return
	}
	if p.sendBuf == nil {
		p.sendBuf = make([][]float64, len(p.SendPeers))
	}
	for _, peer := range p.sendPeerIDs {
		list := p.SendPeers[peer]
		buf := p.sendBuf[peer]
		if buf == nil {
			buf = make([]float64, len(list))
			p.sendBuf[peer] = buf
		}
		for k, li := range list {
			buf[k] = xExt[li]
		}
		c.SendFloats(peer, tagHaloData, buf)
	}
}

// CompleteRecvs drains this rank's halo receives into the halo slots of
// xExt, completing an update started with PostSends.
func (p *HaloPlan) CompleteRecvs(c *simmpi.Comm, xExt []float64, nLocal int) {
	if p.f32 {
		p.completeRecvs32(c, xExt, nLocal)
		return
	}
	if p.napActive() {
		p.napCompleteRecvs(c, xExt, nLocal, 1)
		return
	}
	for _, peer := range p.recvPeerIDs {
		slots := p.RecvPeers[peer]
		vals := c.RecvFloats(peer, tagHaloData)
		if len(vals) != len(slots) {
			panic(fmt.Sprintf("distmat: rank %d halo update from %d: got %d values, want %d",
				c.Rank(), peer, len(vals), len(slots)))
		}
		for k, s := range slots {
			xExt[nLocal+s] = vals[k]
		}
	}
}

// StartExchange posts one halo update entirely through the nonblocking
// primitives: receives first (so a matching send can never block on an
// unposted receive), then sends, in the MPI_Irecv/MPI_Isend idiom. The
// returned handle completes the update; metering is identical to
// PostSends/CompleteRecvs byte for byte, so structural communication
// claims are independent of which schedule a solver uses. The handle's
// request slices are reused across calls (one outstanding exchange per
// plan at a time, like the send buffers).
func (p *HaloPlan) StartExchange(c *simmpi.Comm, xExt []float64) *ExchangeHandle {
	if p.f32 {
		return p.startExchange32(c, xExt)
	}
	if p.napActive() {
		// The aggregated protocol keeps its receives ordered per sender
		// (ups before directs before downs), so the handle defers all of
		// them to Complete; the sends still go out nonblocking here, which
		// is what overlaps them with the caller's interior compute. Metering
		// is charged at post time either way.
		p.async.plan = p
		p.async.nap = true
		p.async.f32 = false
		p.napPostSends(c, xExt, 1, true)
		return &p.async
	}
	p.async.nap = false
	p.async.f32 = false
	if p.async.recvs == nil {
		p.async.recvs = make([]*simmpi.Request, 0, len(p.recvPeerIDs))
	}
	p.async.plan = p
	p.async.recvs = p.async.recvs[:0]
	for _, peer := range p.recvPeerIDs {
		p.async.recvs = append(p.async.recvs, c.IrecvFloats(peer, tagHaloData))
	}
	if p.sendBuf == nil {
		p.sendBuf = make([][]float64, len(p.SendPeers))
	}
	for _, peer := range p.sendPeerIDs {
		list := p.SendPeers[peer]
		buf := p.sendBuf[peer]
		if buf == nil {
			buf = make([]float64, len(list))
			p.sendBuf[peer] = buf
		}
		for k, li := range list {
			buf[k] = xExt[li]
		}
		// Isend copies the payload at post time, so buf is immediately
		// reusable; the send handle needs no explicit wait.
		c.IsendFloats(peer, tagHaloData, buf)
	}
	return &p.async
}

// ExchangeHandle is an in-flight halo update started with StartExchange.
type ExchangeHandle struct {
	plan  *HaloPlan
	recvs []*simmpi.Request
	nap   bool // node-aware exchange: receives deferred to Complete
	f32   bool // half-width exchange: complete with the float32 wait path
}

// Complete waits the posted receives and scatters their values into the
// halo slots of xExt, finishing the update.
func (h *ExchangeHandle) Complete(c *simmpi.Comm, xExt []float64, nLocal int) {
	if h.nap {
		if h.f32 {
			h.plan.napCompleteRecvs32(c, xExt, nLocal, 1)
			return
		}
		h.plan.napCompleteRecvs(c, xExt, nLocal, 1)
		return
	}
	if h.f32 {
		h.complete32(c, xExt, nLocal)
		return
	}
	p := h.plan
	for i, peer := range p.recvPeerIDs {
		slots := p.RecvPeers[peer]
		vals, err := h.recvs[i].Wait()
		if err != nil {
			panic(fmt.Sprintf("distmat: rank %d halo update from %d: %v", c.Rank(), peer, err))
		}
		if len(vals) != len(slots) {
			panic(fmt.Sprintf("distmat: rank %d halo update from %d: got %d values, want %d",
				c.Rank(), peer, len(vals), len(slots)))
		}
		for k, s := range slots {
			xExt[nLocal+s] = vals[k]
		}
	}
}

// RecvGlobals returns, per peer rank, the global indices of the unknowns
// this rank receives in each halo update.
func (p *HaloPlan) RecvGlobals(lz *Localized) [][]int {
	out := make([][]int, len(p.RecvPeers))
	for peer, slots := range p.RecvPeers {
		for _, s := range slots {
			out[peer] = append(out[peer], lz.Halo[s])
		}
	}
	return out
}

// SendGlobals returns, per peer rank, the global indices of the unknowns
// this rank sends in each halo update.
func (p *HaloPlan) SendGlobals(lz *Localized) [][]int {
	out := make([][]int, len(p.SendPeers))
	for peer, locals := range p.SendPeers {
		for _, li := range locals {
			out[peer] = append(out[peer], lz.Lo+li)
		}
	}
	return out
}

// GlobalsEqual reports whether two per-peer global index lists describe the
// same exchanged unknown sets (order-insensitive within a peer).
func GlobalsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if len(a[p]) != len(b[p]) {
			return false
		}
		x := append([]int(nil), a[p]...)
		y := append([]int(nil), b[p]...)
		sort.Ints(x)
		sort.Ints(y)
		for k := range x {
			if x[k] != y[k] {
				return false
			}
		}
	}
	return true
}

// PlanEqual reports whether two plans describe exactly the same
// communication scheme (same peers, same unknown lists in the same order).
// The FSAIE-Comm invariance tests compare plans with this.
func PlanEqual(a, b *HaloPlan) bool {
	eq := func(x, y [][]int) bool {
		if len(x) != len(y) {
			return false
		}
		for p := range x {
			if len(x[p]) != len(y[p]) {
				return false
			}
			for k := range x[p] {
				if x[p][k] != y[p][k] {
					return false
				}
			}
		}
		return true
	}
	return eq(a.SendPeers, b.SendPeers) && eq(a.RecvPeers, b.RecvPeers)
}

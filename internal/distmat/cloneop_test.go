package distmat

import (
	"sync"
	"testing"

	"fsaicomm/internal/simmpi"
)

// A cached setup hands every solve NewOpFromParts(lz, plan.Clone()): the
// derived operators must produce bit-identical SpMVs to the originals, and
// clones of one prototype must be usable from concurrent worlds.
func TestNewOpFromPartsBitIdentical(t *testing.T) {
	a := grid2d(13, 9)
	const ranks = 3
	l := NewUniformLayout(a.Rows, ranks)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = 0.25*float64(i%17) - 1
	}

	// Setup world: build the prototype operators once.
	lzs := make([]*Localized, ranks)
	plans := make([]*HaloPlan, ranks)
	yRef := make([]float64, a.Rows)
	if _, err := simmpi.Run(ranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi))
		lzs[c.Rank()] = op.LZ
		plans[c.Rank()] = op.Plan
		scratch := NewDistVec(op.LZ)
		op.MulVec(c, x[lo:hi], yRef[lo:hi], scratch, nil)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Several concurrent solve worlds, each running blocking, overlapped and
	// async SpMVs on its own clones of the cached parts.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	results := make([][]float64, 4)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			y := make([]float64, a.Rows)
			_, err := simmpi.Run(ranks, testTimeout, func(c *simmpi.Comm) error {
				lo, hi := l.Range(c.Rank())
				op := NewOpFromParts(lzs[c.Rank()], plans[c.Rank()].Clone(), WithOverlap())
				scratch := NewDistVec(op.LZ)
				y2 := make([]float64, hi-lo)
				op.MulVec(c, x[lo:hi], y[lo:hi], scratch, nil)
				op.Overlap().MulVecOverlap(c, x[lo:hi], y2, scratch, nil)
				for i := range y2 {
					if y2[i] != y[lo+i] {
						t.Errorf("world %d rank %d: overlap SpMV differs at %d", w, c.Rank(), i)
						break
					}
				}
				op.Overlap().MulVecOverlapAsync(c, x[lo:hi], y2, scratch, nil)
				for i := range y2 {
					if y2[i] != y[lo+i] {
						t.Errorf("world %d rank %d: async SpMV differs at %d", w, c.Rank(), i)
						break
					}
				}
				return nil
			})
			errs[w] = err
			results[w] = y
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("world %d: %v", w, err)
		}
		for i := range yRef {
			if results[w][i] != yRef[i] {
				t.Fatalf("world %d: cloned-op SpMV differs from prototype at %d: %g != %g",
					w, i, results[w][i], yRef[i])
			}
		}
	}
}

package distmat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fsaicomm/internal/partition"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

const testTimeout = 10 * time.Second

// grid2d builds the 5-point Laplacian on an nx-by-ny grid.
func grid2d(nx, ny int) *sparse.CSR {
	n := nx * ny
	c := sparse.NewCOO(n, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			c.Add(i, i, 4)
			if x > 0 {
				c.Add(i, id(x-1, y), -1)
			}
			if x < nx-1 {
				c.Add(i, id(x+1, y), -1)
			}
			if y > 0 {
				c.Add(i, id(x, y-1), -1)
			}
			if y < ny-1 {
				c.Add(i, id(x, y+1), -1)
			}
		}
	}
	return c.ToCSR()
}

func TestLayoutBasics(t *testing.T) {
	l := NewUniformLayout(10, 3)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.NRanks() != 3 {
		t.Fatalf("NRanks = %d", l.NRanks())
	}
	total := 0
	for r := 0; r < 3; r++ {
		lo, hi := l.Range(r)
		total += hi - lo
		for g := lo; g < hi; g++ {
			if l.Owner(g) != r {
				t.Fatalf("Owner(%d) = %d, want %d", g, l.Owner(g), r)
			}
		}
	}
	if total != 10 {
		t.Fatalf("ranges cover %d rows, want 10", total)
	}
}

func TestLayoutOwnerOutOfRangePanics(t *testing.T) {
	l := NewUniformLayout(5, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Owner(5)
}

func TestApplyPartitionPreservesSpectrumAndStructure(t *testing.T) {
	a := grid2d(6, 6)
	g := partition.GraphFromMatrix(a)
	part, err := partition.Multilevel(g, 3, partition.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	pa, l, oldToNew := ApplyPartition(a, part, 3)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if pa.NNZ() != a.NNZ() {
		t.Fatalf("nnz changed: %d vs %d", pa.NNZ(), a.NNZ())
	}
	// P A Pᵀ entry check: pa[oldToNew[i]][oldToNew[j]] == a[i][j].
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if got := pa.At(oldToNew[i], oldToNew[j]); got != vals[k] {
				t.Fatalf("permuted entry (%d,%d) = %v, want %v", i, j, got, vals[k])
			}
		}
	}
	// Ownership is contiguous and matches the partition.
	for i := 0; i < a.Rows; i++ {
		if l.Owner(oldToNew[i]) != part[i] {
			t.Fatalf("row %d assigned to %d, want %d", i, l.Owner(oldToNew[i]), part[i])
		}
	}
	// Permuted matrix stays symmetric.
	if !pa.IsSymmetric(1e-14) {
		t.Fatal("permuted matrix not symmetric")
	}
}

func TestPermuteVecRoundTrip(t *testing.T) {
	x := []float64{10, 20, 30, 40}
	oldToNew := []int{2, 0, 3, 1}
	y := PermuteVec(x, oldToNew)
	for i, v := range x {
		if y[oldToNew[i]] != v {
			t.Fatalf("PermuteVec wrong at %d", i)
		}
	}
}

func TestLocalizeMapping(t *testing.T) {
	a := grid2d(4, 4)
	lo, hi := 4, 8 // second row of the grid
	rows := ExtractLocalRows(a, lo, hi)
	lz := Localize(lo, hi, rows)
	if lz.NLocal() != 4 {
		t.Fatalf("NLocal = %d", lz.NLocal())
	}
	// Halo of the strip are the grid rows above and below: 8 columns.
	if len(lz.Halo) != 8 {
		t.Fatalf("halo size = %d, want 8: %v", len(lz.Halo), lz.Halo)
	}
	for k := 1; k < len(lz.Halo); k++ {
		if lz.Halo[k-1] >= lz.Halo[k] {
			t.Fatal("halo not sorted")
		}
	}
	if err := lz.M.Validate(); err != nil {
		t.Fatalf("localized matrix invalid: %v", err)
	}
	if lz.M.Cols != lz.NLocal()+len(lz.Halo) {
		t.Fatalf("localized cols = %d", lz.M.Cols)
	}
}

// distSpMV computes y = A x with nranks simulated processes and compares to
// the serial product.
func distSpMVCheck(t *testing.T, a *sparse.CSR, nranks int, seed int64) {
	t.Helper()
	n := a.Rows
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	a.MulVec(x, want)

	l := NewUniformLayout(n, nranks)
	got := make([]float64, n)
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		rows := ExtractLocalRows(a, lo, hi)
		op := NewOp(c, l, lo, hi, rows)
		scratch := NewDistVec(op.LZ)
		y := make([]float64, hi-lo)
		op.MulVec(c, x[lo:hi], y, scratch, nil)
		copy(got[lo:hi], y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("nranks=%d: y[%d] = %v, want %v", nranks, i, got[i], want[i])
		}
	}
}

func TestDistributedSpMVMatchesSerial(t *testing.T) {
	a := grid2d(8, 9)
	for _, nr := range []int{1, 2, 3, 5, 8} {
		distSpMVCheck(t, a, nr, int64(nr))
	}
}

func TestDistributedSpMVPartitioned(t *testing.T) {
	a := grid2d(10, 10)
	g := partition.GraphFromMatrix(a)
	part, err := partition.Multilevel(g, 4, partition.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pa, _, _ := ApplyPartition(a, part, 4)
	distSpMVCheck(t, pa, 4, 77)
}

func TestHaloPlanSymmetry(t *testing.T) {
	// send(p→q) must mirror recv(q←p) as global unknown sets.
	a := grid2d(7, 7)
	n := a.Rows
	nranks := 3
	l := NewUniformLayout(n, nranks)
	sends := make([][][]int, nranks)
	recvs := make([][][]int, nranks)
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		rows := ExtractLocalRows(a, lo, hi)
		lz := Localize(lo, hi, rows)
		plan := BuildHaloPlan(c, l, lz)
		sends[c.Rank()] = plan.SendGlobals(lz)
		recvs[c.Rank()] = plan.RecvGlobals(lz)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < nranks; p++ {
		for q := 0; q < nranks; q++ {
			if p == q {
				continue
			}
			if !GlobalsEqual([][]int{sends[p][q]}, [][]int{recvs[q][p]}) {
				t.Fatalf("send %d→%d = %v, recv %d←%d = %v",
					p, q, sends[p][q], q, p, recvs[q][p])
			}
		}
	}
}

func TestHaloTrafficMatchesPlan(t *testing.T) {
	a := grid2d(6, 6)
	n := a.Rows
	nranks := 4
	l := NewUniformLayout(n, nranks)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	var sendCounts [4]int
	w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi))
		c.Barrier()
		sendCounts[c.Rank()] = op.Plan.SendCount()
		scratch := NewDistVec(op.LZ)
		y := make([]float64, hi-lo)
		// Meter only the solve-phase exchange: reset after setup.
		if c.Rank() == 0 {
			c.Meter().Reset()
		}
		c.Barrier()
		op.MulVec(c, x[lo:hi], y, scratch, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(0)
	for _, s := range sendCounts {
		wantBytes += int64(8 * s)
	}
	if got := w.Meter().TotalP2PBytes(); got != wantBytes {
		t.Fatalf("metered %d bytes, want %d", got, wantBytes)
	}
}

func TestGatherRemoteRows(t *testing.T) {
	a := grid2d(5, 5)
	n := a.Rows
	nranks := 3
	l := NewUniformLayout(n, nranks)
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		rows := ExtractLocalRows(a, lo, hi)
		// Every rank asks for a mix of local and remote rows (same set).
		wanted := []int{0, n / 2, n - 1, lo}
		got := GatherRemoteRows(c, l, lo, hi, rows, wanted)
		for _, g := range wanted {
			rd, ok := got[g]
			if !ok {
				return fmt.Errorf("rank %d missing row %d", c.Rank(), g)
			}
			wc, wv := a.Row(g)
			if len(rd.Cols) != len(wc) {
				return fmt.Errorf("rank %d row %d: %d cols, want %d", c.Rank(), g, len(rd.Cols), len(wc))
			}
			for k := range wc {
				if rd.Cols[k] != wc[k] || rd.Vals[k] != wv[k] {
					return fmt.Errorf("rank %d row %d entry %d mismatch", c.Rank(), g, k)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransposeDistMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 30
	c0 := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c0.Add(i, i, 1)
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			c0.Add(i, j, rng.NormFloat64())
		}
	}
	a := c0.ToCSR()
	want := a.Transpose()
	nranks := 4
	l := NewUniformLayout(n, nranks)
	got := make([]*sparse.CSR, nranks)
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		rows := ExtractLocalRows(a, lo, hi)
		got[c.Rank()] = TransposeDist(c, l, lo, hi, rows)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nranks; r++ {
		lo, hi := l.Range(r)
		for li := 0; li < hi-lo; li++ {
			gc, gv := got[r].Row(li)
			wc, wv := want.Row(lo + li)
			if len(gc) != len(wc) {
				t.Fatalf("rank %d row %d: %d entries, want %d", r, lo+li, len(gc), len(wc))
			}
			for k := range wc {
				if gc[k] != wc[k] || gv[k] != wv[k] {
					t.Fatalf("rank %d row %d entry %d mismatch", r, lo+li, k)
				}
			}
		}
	}
}

func TestDistributedDotAndNorm(t *testing.T) {
	n := 40
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%5) - 2
		y[i] = float64(i%3) - 1
	}
	var wantDot float64
	for i := range x {
		wantDot += x[i] * y[i]
	}
	l := NewUniformLayout(n, 4)
	_, err := simmpi.Run(4, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		d := Dot(c, x[lo:hi], y[lo:hi], nil)
		if math.Abs(d-wantDot) > 1e-10 {
			return fmt.Errorf("dot = %v, want %v", d, wantDot)
		}
		nm := Norm2(c, x[lo:hi], nil)
		var wantN float64
		for _, v := range x {
			wantN += v * v
		}
		if math.Abs(nm-math.Sqrt(wantN)) > 1e-10 {
			return fmt.Errorf("norm = %v, want %v", nm, math.Sqrt(wantN))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNNZImbalanceIndex(t *testing.T) {
	_, err := simmpi.Run(4, testTimeout, func(c *simmpi.Comm) error {
		// Ranks hold 10, 10, 10, 30 entries: avg 15, max 30, index 0.5.
		local := int64(10)
		if c.Rank() == 3 {
			local = 30
		}
		idx := NNZImbalanceIndex(c, local)
		if math.Abs(idx-0.5) > 1e-12 {
			return fmt.Errorf("imbalance = %v, want 0.5", idx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: distributed SpMV equals serial SpMV for random symmetric
// matrices and random rank counts.
func TestQuickDistributedSpMV(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		c := sparse.NewCOO(n, n)
		for i := 0; i < n; i++ {
			c.Add(i, i, 4)
		}
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				c.AddSym(i, j, rng.NormFloat64())
			}
		}
		a := c.ToCSR()
		nranks := 1 + rng.Intn(6)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		a.MulVec(x, want)
		l := NewUniformLayout(n, nranks)
		got := make([]float64, n)
		_, err := simmpi.Run(nranks, testTimeout, func(cm *simmpi.Comm) error {
			lo, hi := l.Range(cm.Rank())
			op := NewOp(cm, l, lo, hi, ExtractLocalRows(a, lo, hi))
			y := make([]float64, hi-lo)
			op.MulVec(cm, x[lo:hi], y, NewDistVec(op.LZ), nil)
			copy(got[lo:hi], y)
			return nil
		})
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankNoHalo(t *testing.T) {
	a := grid2d(5, 5)
	l := NewUniformLayout(a.Rows, 1)
	_, err := simmpi.Run(1, testTimeout, func(c *simmpi.Comm) error {
		op := NewOp(c, l, 0, a.Rows, ExtractLocalRows(a, 0, a.Rows))
		if len(op.LZ.Halo) != 0 {
			return fmt.Errorf("single rank has halo %v", op.LZ.Halo)
		}
		if op.Plan.RecvCount() != 0 || op.Plan.SendCount() != 0 {
			return fmt.Errorf("single rank plan not empty")
		}
		x := make([]float64, a.Rows)
		y := make([]float64, a.Rows)
		for i := range x {
			x[i] = 1
		}
		op.MulVec(c, x, y, NewDistVec(op.LZ), nil)
		// Row sums of the grid Laplacian are 0 in the interior, positive on
		// the boundary.
		if y[a.Rows/2+3] < 0 {
			return fmt.Errorf("unexpected SpMV result")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlanEqualAndGlobalsEqual(t *testing.T) {
	p1 := &HaloPlan{SendPeers: [][]int{{1, 2}, nil}, RecvPeers: [][]int{nil, {0}}}
	p2 := &HaloPlan{SendPeers: [][]int{{1, 2}, nil}, RecvPeers: [][]int{nil, {0}}}
	if !PlanEqual(p1, p2) {
		t.Fatal("identical plans not equal")
	}
	p2.SendPeers[0] = []int{1, 3}
	if PlanEqual(p1, p2) {
		t.Fatal("different plans reported equal")
	}
	if !GlobalsEqual([][]int{{3, 1}}, [][]int{{1, 3}}) {
		t.Fatal("order-insensitive comparison failed")
	}
	if GlobalsEqual([][]int{{1}}, [][]int{{1}, {2}}) {
		t.Fatal("length mismatch accepted")
	}
	if GlobalsEqual([][]int{{1, 2}}, [][]int{{1, 3}}) {
		t.Fatal("different sets accepted")
	}
}

func TestExchangePayloadSizeMismatchPanics(t *testing.T) {
	// A plan whose recv slots disagree with the sender's list must panic.
	_, err := simmpi.Run(2, testTimeout, func(c *simmpi.Comm) error {
		plan := &HaloPlan{
			SendPeers: make([][]int, 2),
			RecvPeers: make([][]int, 2),
		}
		if c.Rank() == 0 {
			plan.SendPeers[1] = []int{0, 1} // sends two values
			plan.sendPeerIDs = []int{1}
			xExt := []float64{1, 2}
			plan.Exchange(c, xExt, 2)
		} else {
			plan.RecvPeers[0] = []int{0} // expects one
			plan.recvPeerIDs = []int{0}
			xExt := make([]float64, 2)
			plan.Exchange(c, xExt, 1)
		}
		return nil
	})
	if err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func TestOverlapMatchesBlocking(t *testing.T) {
	a := grid2d(9, 9)
	n := a.Rows
	rng := rand.New(rand.NewSource(33))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	a.MulVec(x, want)
	nranks := 4
	l := NewUniformLayout(n, nranks)
	got := make([]float64, n)
	interiorNNZ := make([]int, nranks) // per-rank slot: ranks run concurrently
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi))
		ov := NewOverlapOp(op)
		// Every local row is in exactly one class.
		if len(ov.Interior)+len(ov.Boundary) != hi-lo {
			return fmt.Errorf("rank %d: class split covers %d of %d rows",
				c.Rank(), len(ov.Interior)+len(ov.Boundary), hi-lo)
		}
		y := make([]float64, hi-lo)
		ov.MulVecOverlap(c, x[lo:hi], y, NewDistVec(op.LZ), nil)
		copy(got[lo:hi], y)
		interiorNNZ[c.Rank()] = ov.InteriorNNZ()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	interiorTotal := 0
	for _, nnz := range interiorNNZ {
		interiorTotal += nnz
	}
	if interiorTotal == 0 {
		t.Fatal("no interior work found on a grid partition")
	}
}

func TestOverlapFlopCount(t *testing.T) {
	a := grid2d(6, 6)
	l := NewUniformLayout(a.Rows, 2)
	_, err := simmpi.Run(2, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi))
		ov := NewOverlapOp(op)
		var fc vecops.FlopCounter
		y := make([]float64, hi-lo)
		x := make([]float64, hi-lo)
		ov.MulVecOverlap(c, x, y, NewDistVec(op.LZ), &fc)
		if fc.Count() != 2*int64(op.LZ.M.NNZ()) {
			return fmt.Errorf("flops %d, want %d", fc.Count(), 2*op.LZ.M.NNZ())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewOpWithOverlap(t *testing.T) {
	a := grid2d(6, 6)
	l := NewUniformLayout(a.Rows, 2)
	_, err := simmpi.Run(2, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		plain := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi))
		if plain.Overlap() != nil {
			return fmt.Errorf("plain NewOp built an overlap view")
		}
		// EnsureOverlap is lazy, idempotent, and purely local.
		ov := plain.EnsureOverlap()
		if ov == nil || plain.Overlap() != ov || plain.EnsureOverlap() != ov {
			return fmt.Errorf("EnsureOverlap not idempotent")
		}
		with := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi), WithOverlap())
		if with.Overlap() == nil {
			return fmt.Errorf("WithOverlap did not build the overlap view")
		}
		if len(with.Overlap().Interior)+len(with.Overlap().Boundary) != hi-lo {
			return fmt.Errorf("overlap split incomplete")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// PostSends reuses its gather buffers: repeated halo updates through the
// split schedule allocate nothing on the send side and keep producing the
// same values.
func TestPostSendsBufferReuse(t *testing.T) {
	a := grid2d(8, 8)
	n := a.Rows
	l := NewUniformLayout(n, 2)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	want := make([]float64, n)
	a.MulVec(x, want)
	got := make([]float64, n)
	_, err := simmpi.Run(2, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi), WithOverlap())
		scratch := NewDistVec(op.LZ)
		y := make([]float64, hi-lo)
		for round := 0; round < 3; round++ {
			op.Overlap().MulVecOverlap(c, x[lo:hi], y, scratch, nil)
		}
		copy(got[lo:hi], y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// The nonblocking-primitive halo schedule must be bit-identical to the
// blocking one and metered byte-for-byte the same.
func TestOverlapAsyncMatchesBlockingAndMeter(t *testing.T) {
	a := grid2d(9, 9)
	n := a.Rows
	rng := rand.New(rand.NewSource(41))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	const nranks = 4
	l := NewUniformLayout(n, nranks)
	run := func(async bool) ([]float64, *simmpi.Meter) {
		t.Helper()
		got := make([]float64, n)
		w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			op := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi), WithOverlap())
			scratch := NewDistVec(op.LZ)
			y := make([]float64, hi-lo)
			for k := 0; k < 3; k++ { // repeat: handle/buffer reuse must hold
				if async {
					op.Overlap().MulVecOverlapAsync(c, x[lo:hi], y, scratch, nil)
				} else {
					op.Overlap().MulVecOverlap(c, x[lo:hi], y, scratch, nil)
				}
			}
			copy(got[lo:hi], y)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got, w.Meter()
	}
	blocking, mb := run(false)
	asyncY, ma := run(true)
	for i := range blocking {
		if blocking[i] != asyncY[i] {
			t.Fatalf("y[%d]: async %v != blocking %v (must be bit-identical)", i, asyncY[i], blocking[i])
		}
	}
	for s := 0; s < nranks; s++ {
		for d := 0; d < nranks; d++ {
			if mb.PairBytes(s, d) != ma.PairBytes(s, d) {
				t.Fatalf("pair %d->%d: async %d bytes != blocking %d", s, d, ma.PairBytes(s, d), mb.PairBytes(s, d))
			}
		}
	}
	nb, na := mb.NeighborSets(), ma.NeighborSets()
	for r := range nb {
		if len(nb[r]) != len(na[r]) {
			t.Fatalf("rank %d neighbour sets differ: %v vs %v", r, na[r], nb[r])
		}
		for k := range nb[r] {
			if nb[r][k] != na[r][k] {
				t.Fatalf("rank %d neighbour sets differ: %v vs %v", r, na[r], nb[r])
			}
		}
	}
}

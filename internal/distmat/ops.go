package distmat

import (
	"fmt"
	"math"
	"sort"

	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

// DistVec holds a rank's slice of a distributed vector plus halo workspace
// for one matrix. Local values live in Ext[:NLocal]; Exchange fills
// Ext[NLocal:].
type DistVec struct {
	NLocal int
	Ext    []float64
}

// NewDistVec allocates a distributed vector view compatible with lz.
func NewDistVec(lz *Localized) *DistVec {
	return &DistVec{NLocal: lz.NLocal(), Ext: make([]float64, lz.NLocal()+len(lz.Halo))}
}

// Local returns the locally-owned portion of the vector.
func (v *DistVec) Local() []float64 { return v.Ext[:v.NLocal] }

// Op bundles a localized matrix with its halo plan so the distributed SpMV
// reads as a single operation, as it does in the paper's solver.
type Op struct {
	LZ   *Localized
	Plan *HaloPlan
	// overlap is the interior/boundary row split, built on request (WithOverlap
	// or EnsureOverlap); nil means the blocking schedule only.
	overlap *OverlapOp
	// f32 selects the mixed-precision kernel: products read the float32 view
	// of the matrix (float64 accumulation) and the halo travels half-width.
	f32 bool
}

// OpOption configures NewOp.
type OpOption func(*Op)

// WithOverlap makes NewOp also build the interior/boundary overlap view, so
// the operator supports the send-then-compute SpMV schedule
// (OverlapOp.MulVecOverlap) the communication-hiding solver variants use.
func WithOverlap() OpOption {
	return func(op *Op) { op.EnsureOverlap() }
}

// WithF32 makes NewOp a mixed-precision operator (see SetF32).
func WithF32() OpOption {
	return func(op *Op) { op.SetF32(true) }
}

// SetF32 switches the operator between full and mixed precision. Under f32
// the products use the float32 value array (accumulating in float64) and the
// plan exchanges halo values at 4 bytes each; iteration vectors stay float64
// throughout, so callers are unaffected beyond the rounded values.
func (op *Op) SetF32(on bool) {
	op.f32 = on
	op.Plan.SetF32(on)
}

// F32 reports whether the operator runs the mixed-precision kernel.
func (op *Op) F32() bool { return op.f32 }

// NewOp localizes the local rows (global columns) of a distributed matrix
// and builds its halo plan. Collective: all ranks must call it together.
func NewOp(c *simmpi.Comm, l *Layout, lo, hi int, rows *sparse.CSR, opts ...OpOption) *Op {
	lz := Localize(lo, hi, rows)
	op := &Op{LZ: lz, Plan: BuildHaloPlan(c, l, lz)}
	for _, o := range opts {
		o(op)
	}
	return op
}

// NewOpFromParts assembles an operator from a previously built localized
// matrix and halo plan without any communication — the cached-setup path: a
// preconditioner cache stores the Localized views and plan schedules from
// one collective setup and then derives per-solve operators with
// NewOpFromParts(lz, plan.Clone()). The Localized view is read-only during
// SpMVs and may be shared between concurrent solves; the plan must be a
// private clone per solve (its send buffers are mutable).
func NewOpFromParts(lz *Localized, plan *HaloPlan, opts ...OpOption) *Op {
	op := &Op{LZ: lz, Plan: plan}
	for _, o := range opts {
		o(op)
	}
	return op
}

// Overlap returns the overlap view if it has been built, nil otherwise.
func (op *Op) Overlap() *OverlapOp { return op.overlap }

// EnsureOverlap returns the overlap view, building it on first use. The
// split is purely local (no communication), so lazy construction is safe in
// collective contexts.
func (op *Op) EnsureOverlap() *OverlapOp {
	if op.overlap == nil {
		op.overlap = NewOverlapOp(op)
	}
	return op.overlap
}

// MulVec computes the local part of y = A x, performing one halo update.
// x holds the rank's local values (length NLocal); y receives the local
// result. scratch must be a DistVec from NewDistVec(op.LZ). The flop counter
// records 2·nnz operations.
func (op *Op) MulVec(c *simmpi.Comm, x, y []float64, scratch *DistVec, fc *vecops.FlopCounter) {
	nl := op.LZ.NLocal()
	if len(x) != nl || len(y) != nl {
		panic(fmt.Sprintf("distmat: MulVec local length %d/%d, want %d", len(x), len(y), nl))
	}
	copy(scratch.Ext[:nl], x)
	op.Plan.Exchange(c, scratch.Ext, nl)
	if op.f32 {
		op.LZ.M32().MulVec(scratch.Ext, y)
	} else {
		op.LZ.M.MulVec(scratch.Ext, y)
	}
	fc.Add(2 * int64(op.LZ.M.NNZ()))
}

// Dot returns the global dot product of two distributed vectors.
func Dot(c *simmpi.Comm, x, y []float64, fc *vecops.FlopCounter) float64 {
	local := vecops.Dot(x, y, fc)
	return c.AllreduceSum(local)[0]
}

// Norm2 returns the global Euclidean norm of a distributed vector.
func Norm2(c *simmpi.Comm, x []float64, fc *vecops.FlopCounter) float64 {
	local := vecops.Dot(x, x, fc)
	s := c.AllreduceSum(local)[0]
	if s < 0 {
		s = 0
	}
	return math.Sqrt(s)
}

// GatherRemoteRows fetches full rows of the distributed matrix for the given
// global indices from their owners. rows is this rank's local block with
// global column indices; wanted lists global row indices (duplicates
// allowed, remote or local). The result maps each wanted global row to its
// (cols, vals). Collective: all ranks must call together. This is the FSAI
// setup-phase exchange (each process needs A's rows for its halo unknowns);
// it happens once per preconditioner build, not per iteration.
func GatherRemoteRows(c *simmpi.Comm, l *Layout, lo, hi int, rows *sparse.CSR, wanted []int) map[int]RowData {
	size := c.Size()
	rank := c.Rank()
	out := make(map[int]RowData, len(wanted))
	needByOwner := make([][]int, size)
	seen := map[int]bool{}
	for _, g := range wanted {
		if seen[g] {
			continue
		}
		seen[g] = true
		if g >= lo && g < hi {
			cols, vals := rows.Row(g - lo)
			out[g] = RowData{Cols: append([]int(nil), cols...), Vals: append([]float64(nil), vals...)}
			continue
		}
		needByOwner[l.Owner(g)] = append(needByOwner[l.Owner(g)], g)
	}
	for p := range needByOwner {
		sort.Ints(needByOwner[p])
	}
	counts := make([]int64, size)
	for p := 0; p < size; p++ {
		counts[p] = int64(len(needByOwner[p]))
	}
	all := c.AllgatherInt64(counts)
	// Send requests.
	for p := 0; p < size; p++ {
		if p != rank && len(needByOwner[p]) > 0 {
			c.SendInts(p, tagRowMeta, needByOwner[p])
		}
	}
	// Serve requests.
	for r := 0; r < size; r++ {
		if r == rank || all[r*size+rank] == 0 {
			continue
		}
		req := c.RecvInts(r, tagRowMeta)
		var lens []int
		var flatCols []int
		var flatVals []float64
		for _, g := range req {
			if g < lo || g >= hi {
				panic(fmt.Sprintf("distmat: rank %d asked rank %d for non-local row %d", r, rank, g))
			}
			cols, vals := rows.Row(g - lo)
			lens = append(lens, len(cols))
			flatCols = append(flatCols, cols...)
			flatVals = append(flatVals, vals...)
		}
		c.SendInts(r, tagRowCols, append(lens, flatCols...))
		c.SendFloats(r, tagRowVals, flatVals)
	}
	// Collect responses.
	for p := 0; p < size; p++ {
		req := needByOwner[p]
		if p == rank || len(req) == 0 {
			continue
		}
		meta := c.RecvInts(p, tagRowCols)
		vals := c.RecvFloats(p, tagRowVals)
		lens := meta[:len(req)]
		flatCols := meta[len(req):]
		pos := 0
		for k, g := range req {
			n := lens[k]
			out[g] = RowData{
				Cols: append([]int(nil), flatCols[pos:pos+n]...),
				Vals: append([]float64(nil), vals[pos:pos+n]...),
			}
			pos += n
		}
	}
	return out
}

// RowData is one gathered matrix row: global column indices and values.
type RowData struct {
	Cols []int
	Vals []float64
}

// TransposeDist computes the distributed transpose: given this rank's local
// rows of G (global columns), it returns this rank's local rows of Gᵀ
// (global columns). Entry (i,j) owned here is shipped to the owner of row j
// of Gᵀ (= owner of global column j). Collective.
func TransposeDist(c *simmpi.Comm, l *Layout, lo, hi int, rows *sparse.CSR) *sparse.CSR {
	size := c.Size()
	rank := c.Rank()
	// Bucket entries by destination owner; local ones short-circuit.
	type triple struct {
		i, j int // global
		v    float64
	}
	buckets := make([][]triple, size)
	for li := 0; li < rows.Rows; li++ {
		gi := lo + li
		cols, vals := rows.Row(li)
		for k, gj := range cols {
			dst := l.Owner(gj)
			buckets[dst] = append(buckets[dst], triple{i: gi, j: gj, v: vals[k]})
		}
	}
	counts := make([]int64, size)
	for p := 0; p < size; p++ {
		counts[p] = int64(len(buckets[p]))
	}
	all := c.AllgatherInt64(counts)
	for p := 0; p < size; p++ {
		if p == rank || len(buckets[p]) == 0 {
			continue
		}
		flat := make([]int, 0, 2*len(buckets[p]))
		vals := make([]float64, 0, len(buckets[p]))
		for _, t := range buckets[p] {
			flat = append(flat, t.i, t.j)
			vals = append(vals, t.v)
		}
		c.SendInts(p, tagTransp, flat)
		c.SendFloats(p, tagTransp, vals)
	}
	nl := hi - lo
	coo := sparse.NewCOO(nl, l.N)
	for _, t := range buckets[rank] {
		coo.Add(t.j-lo, t.i, t.v) // transposed: row j, column i
	}
	for r := 0; r < size; r++ {
		if r == rank || all[r*size+rank] == 0 {
			continue
		}
		flat := c.RecvInts(r, tagTransp)
		vals := c.RecvFloats(r, tagTransp)
		for k := range vals {
			gi, gj := flat[2*k], flat[2*k+1]
			coo.Add(gj-lo, gi, vals[k])
		}
	}
	return coo.ToCSR()
}

// NNZImbalanceIndex computes the paper's imbalance index for per-rank entry
// counts: average entries / maximum entries (≤ 1; 1 means balanced).
// Collective.
func NNZImbalanceIndex(c *simmpi.Comm, localNNZ int64) float64 {
	sums := c.AllreduceSumInt64(localNNZ)
	maxs := c.AllreduceMaxInt64(localNNZ)
	if maxs[0] == 0 {
		return 1
	}
	avg := float64(sums[0]) / float64(c.Size())
	return avg / float64(maxs[0])
}

// Package distmat implements the distributed-memory sparse-matrix substrate
// of the reproduction: row-wise distribution of a square sparse matrix over
// simmpi ranks, halo-exchange plans, distributed matrix-vector products, and
// the remote-row gathering the parallel FSAI setup needs.
//
// Conventions. A square global matrix is distributed by contiguous row
// blocks described by a Layout; the helper ApplyPartition turns an arbitrary
// partition assignment (e.g. from the multilevel partitioner) into a
// symmetric permutation that makes ownership contiguous, exactly as the
// paper renumbers unknowns after METIS. Vectors x and b follow the row
// distribution. Per-rank matrices keep *global* column indices for pattern
// work; a Localized view remaps columns to local-then-halo positions for the
// SpMV kernels, mirroring how distributed CSR codes store local and halo
// entries separately.
package distmat

import (
	"fmt"
	"sort"

	"fsaicomm/internal/sparse"
)

// Layout describes a contiguous row distribution: rank r owns global rows
// [Offsets[r], Offsets[r+1]).
type Layout struct {
	N       int
	Offsets []int
}

// NewUniformLayout splits n rows into nranks near-equal contiguous blocks.
func NewUniformLayout(n, nranks int) *Layout {
	if nranks < 1 || n < 0 {
		panic(fmt.Sprintf("distmat: bad layout n=%d nranks=%d", n, nranks))
	}
	off := make([]int, nranks+1)
	for r := 0; r <= nranks; r++ {
		off[r] = r * n / nranks
	}
	return &Layout{N: n, Offsets: off}
}

// NRanks returns the number of ranks in the layout.
func (l *Layout) NRanks() int { return len(l.Offsets) - 1 }

// Owner returns the rank owning global row g.
func (l *Layout) Owner(g int) int {
	if g < 0 || g >= l.N {
		panic(fmt.Sprintf("distmat: Owner(%d) outside [0,%d)", g, l.N))
	}
	// Binary search for the block containing g.
	r := sort.Search(l.NRanks(), func(r int) bool { return l.Offsets[r+1] > g })
	return r
}

// Range returns the half-open global row range owned by rank.
func (l *Layout) Range(rank int) (lo, hi int) {
	return l.Offsets[rank], l.Offsets[rank+1]
}

// LocalSize returns the number of rows owned by rank.
func (l *Layout) LocalSize(rank int) int {
	return l.Offsets[rank+1] - l.Offsets[rank]
}

// Validate checks layout invariants.
func (l *Layout) Validate() error {
	if len(l.Offsets) < 2 {
		return fmt.Errorf("distmat: layout needs at least one rank")
	}
	if l.Offsets[0] != 0 || l.Offsets[len(l.Offsets)-1] != l.N {
		return fmt.Errorf("distmat: layout offsets must span [0,%d], got %v", l.N, l.Offsets)
	}
	for r := 1; r < len(l.Offsets); r++ {
		if l.Offsets[r] < l.Offsets[r-1] {
			return fmt.Errorf("distmat: layout offsets decrease at %d", r)
		}
	}
	return nil
}

// ApplyPartition symmetrically permutes a so that the rows assigned to each
// part become contiguous, preserving the original relative order within each
// part. It returns the permuted matrix, the resulting layout, and the
// permutation oldToNew (new index of old row i is oldToNew[i]).
func ApplyPartition(a *sparse.CSR, part []int, nparts int) (*sparse.CSR, *Layout, []int) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("distmat: ApplyPartition on non-square %dx%d matrix", a.Rows, a.Cols))
	}
	if len(part) != a.Rows {
		panic(fmt.Sprintf("distmat: partition length %d, want %d", len(part), a.Rows))
	}
	n := a.Rows
	counts := make([]int, nparts)
	for _, p := range part {
		if p < 0 || p >= nparts {
			panic(fmt.Sprintf("distmat: part id %d outside [0,%d)", p, nparts))
		}
		counts[p]++
	}
	offsets := make([]int, nparts+1)
	for r := 0; r < nparts; r++ {
		offsets[r+1] = offsets[r] + counts[r]
	}
	oldToNew := make([]int, n)
	next := append([]int(nil), offsets[:nparts]...)
	for i := 0; i < n; i++ {
		oldToNew[i] = next[part[i]]
		next[part[i]]++
	}
	return Permute(a, oldToNew), &Layout{N: n, Offsets: offsets}, oldToNew
}

// Permute applies the symmetric permutation P A Pᵀ where new index of old
// row/column i is oldToNew[i].
func Permute(a *sparse.CSR, oldToNew []int) *sparse.CSR {
	c := sparse.NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			c.Add(oldToNew[i], oldToNew[j], vals[k])
		}
	}
	return c.ToCSR()
}

// PermuteVec returns the vector with components moved to their new indices.
func PermuteVec(x []float64, oldToNew []int) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[oldToNew[i]] = v
	}
	return out
}

// ExtractLocalRows returns the block of global rows [lo,hi) of a as a new
// CSR with hi-lo rows and untouched (global) column indices. In this
// simulated runtime every rank shares the process address space, so
// "scattering" the matrix is a slice extraction.
func ExtractLocalRows(a *sparse.CSR, lo, hi int) *sparse.CSR {
	nl := hi - lo
	out := sparse.NewCSR(nl, a.Cols, a.RowPtr[hi]-a.RowPtr[lo])
	for i := 0; i < nl; i++ {
		cols, vals := a.Row(lo + i)
		out.ColIdx = append(out.ColIdx, cols...)
		out.Val = append(out.Val, vals...)
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

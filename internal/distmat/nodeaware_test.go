package distmat

import (
	"fmt"
	"math"
	"testing"

	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/tcpmpi"
)

// handPlan builds the hand-designed 4-rank halo used to pin exact meter
// attribution: every rank owns 2 values and sends its local 0 to every other
// rank, receiving one value from each peer into halo slots ordered by source
// rank. Under the flat schedule that is 3 messages of 8 bytes per rank; under
// a 2-node × 2-rank topology the node-aware protocol must collapse the 8
// node-crossing messages into 2 combined leader messages carrying the same
// 64 bytes.
func handPlan(rank int, topo simmpi.Topology) *HaloPlan {
	const size = 4
	send := make([][]int, size)
	recv := make([][]int, size)
	slot := 0
	for p := 0; p < size; p++ {
		if p == rank {
			continue
		}
		send[p] = []int{0}
		recv[p] = []int{slot}
		slot++
	}
	need := make([]int64, size*size)
	for d := 0; d < size; d++ {
		for s := 0; s < size; s++ {
			if d != s {
				need[d*size+s] = 1
			}
		}
	}
	return NewHaloPlanFromScheduleTopo(send, recv, need, rank, topo)
}

// checkHandHalo verifies one completed hand-plan exchange: halo slot i of
// rank r (sources ascending, skipping r) must hold the sender's local 0.
func checkHandHalo(rank int, xExt []float64) error {
	slot := 0
	for src := 0; src < 4; src++ {
		if src == rank {
			continue
		}
		if got, want := xExt[2+slot], float64(100*src); got != want {
			return fmt.Errorf("rank %d halo slot %d: got %v, want %v", rank, slot, got, want)
		}
		slot++
	}
	return nil
}

// exchangeModes runs the hand-built exchange once per mode (flat schedule,
// then node-aware) inside one world, metering each mode in isolation, and
// returns the two world snapshots. Every rank also cross-checks its
// ExchangeCounts prediction against nothing less than the real meter: the
// sum over ranks of the predicted per-level counts must equal the metered
// world totals exactly.
func exchangeModes(topo simmpi.Topology, snaps *[2]simmpi.Snapshot, counts *[2][4][4]int64) func(c *simmpi.Comm) error {
	return func(c *simmpi.Comm) error {
		for mode, aware := range []bool{false, true} {
			p := handPlan(c.Rank(), topo)
			p.SetNodeAware(aware)
			if p.NodeAware() != aware {
				return fmt.Errorf("rank %d: NodeAware() = %v after SetNodeAware(%v)", c.Rank(), p.NodeAware(), aware)
			}
			xExt := []float64{float64(100 * c.Rank()), float64(100*c.Rank() + 1), 0, 0, 0}
			c.Barrier()
			if c.Rank() == 0 {
				c.Meter().Reset()
			}
			c.Barrier()
			p.Exchange(c, xExt, 2)
			if err := checkHandHalo(c.Rank(), xExt); err != nil {
				return err
			}
			im, ib, em, eb := p.ExchangeCounts(1)
			counts[mode][c.Rank()] = [4]int64{im, ib, em, eb}
			c.Barrier()
			if c.Rank() == 0 {
				snaps[mode] = c.Meter().Snapshot()
			}
		}
		return nil
	}
}

// checkHandAttribution pins the exact hand-computed split for both modes and
// the structural node-aware win: inter-node messages collapse from one per
// cross-node rank pair (8) to one per node pair and direction (2), inter
// bytes unchanged, and ExchangeCounts agrees with the meter rank by rank.
func checkHandAttribution(t *testing.T, snaps [2]simmpi.Snapshot, counts [2][4][4]int64) {
	t.Helper()
	flat, nap := snaps[0], snaps[1]
	if flat.IntraP2PMessages != 4 || flat.IntraP2PBytes != 32 ||
		flat.InterP2PMessages != 8 || flat.InterP2PBytes != 64 {
		t.Fatalf("flat split: %+v, want intra 4/32 inter 8/64", flat)
	}
	if nap.IntraP2PMessages != 8 || nap.IntraP2PBytes != 96 ||
		nap.InterP2PMessages != 2 || nap.InterP2PBytes != 64 {
		t.Fatalf("node-aware split: %+v, want intra 8/96 inter 2/64", nap)
	}
	if nap.InterP2PBytes != flat.InterP2PBytes {
		t.Fatalf("aggregation changed inter-node bytes: flat %d, node-aware %d",
			flat.InterP2PBytes, nap.InterP2PBytes)
	}
	if nap.InterP2PMessages >= flat.InterP2PMessages {
		t.Fatalf("aggregation did not reduce inter-node messages: flat %d, node-aware %d",
			flat.InterP2PMessages, nap.InterP2PMessages)
	}
	for mode, snap := range snaps {
		var im, ib, em, eb int64
		for r := 0; r < 4; r++ {
			im += counts[mode][r][0]
			ib += counts[mode][r][1]
			em += counts[mode][r][2]
			eb += counts[mode][r][3]
		}
		if im != snap.IntraP2PMessages || ib != snap.IntraP2PBytes ||
			em != snap.InterP2PMessages || eb != snap.InterP2PBytes {
			t.Fatalf("mode %d: ExchangeCounts sum (%d/%d intra, %d/%d inter) disagrees with meter %+v",
				mode, im, ib, em, eb, snap)
		}
	}
}

func TestNodeAwareHandBuiltExchangeSim(t *testing.T) {
	topo := simmpi.Topology{Nodes: 2, RanksPerNode: 2}
	var snaps [2]simmpi.Snapshot
	var counts [2][4][4]int64
	if _, err := simmpi.RunTopo(4, testTimeout, topo, exchangeModes(topo, &snaps, &counts)); err != nil {
		t.Fatal(err)
	}
	checkHandAttribution(t, snaps, counts)
}

func TestNodeAwareHandBuiltExchangeTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket transport in -short mode")
	}
	topo := simmpi.Topology{Nodes: 2, RanksPerNode: 2}
	var snaps [2]simmpi.Snapshot
	var counts [2][4][4]int64
	// RunLocalTopo snapshots would only see the merged meter after the run;
	// rank 0's live Meter() inside the fn is its own rank-row only. The sim
	// world's shared meter is what the in-run snapshots rely on, so on the
	// socket backend mode isolation comes from summing rank snapshots instead.
	var rankSnaps [2][4]simmpi.Snapshot
	fn := func(c *simmpi.Comm) error {
		for mode, aware := range []bool{false, true} {
			p := handPlan(c.Rank(), topo)
			p.SetNodeAware(aware)
			xExt := []float64{float64(100 * c.Rank()), float64(100*c.Rank() + 1), 0, 0, 0}
			c.Barrier()
			before := c.Meter().RankSnapshot(c.Rank())
			p.Exchange(c, xExt, 2)
			if err := checkHandHalo(c.Rank(), xExt); err != nil {
				return err
			}
			im, ib, em, eb := p.ExchangeCounts(1)
			counts[mode][c.Rank()] = [4]int64{im, ib, em, eb}
			rankSnaps[mode][c.Rank()] = c.Meter().RankSnapshot(c.Rank()).Sub(before)
			c.Barrier()
		}
		return nil
	}
	if _, err := tcpmpi.RunLocalTopo(4, tcpmpi.Config{Timeout: testTimeout}, topo, fn); err != nil {
		t.Fatal(err)
	}
	for mode := range snaps {
		var s simmpi.Snapshot
		for r := 0; r < 4; r++ {
			rs := rankSnaps[mode][r]
			s.IntraP2PMessages += rs.IntraP2PMessages
			s.IntraP2PBytes += rs.IntraP2PBytes
			s.InterP2PMessages += rs.InterP2PMessages
			s.InterP2PBytes += rs.InterP2PBytes
		}
		snaps[mode] = s
	}
	checkHandAttribution(t, snaps, counts)
}

// The async (StartExchange/Complete) and k-wide batched paths must deliver
// the same values through the same aggregated envelopes: the handle defers
// the node-aware receives to Complete, and a k-wide batch still costs one
// message per envelope, carrying k columns.
func TestNodeAwareAsyncAndBatchedExchange(t *testing.T) {
	topo := simmpi.Topology{Nodes: 2, RanksPerNode: 2}
	const k = 3
	var asyncSnap, batchSnap simmpi.Snapshot
	var batchCounts [4][4]int64
	_, err := simmpi.RunTopo(4, testTimeout, topo, func(c *simmpi.Comm) error {
		p := handPlan(c.Rank(), topo)
		if !p.NodeAware() {
			return fmt.Errorf("rank %d: schedule-topo plan not node-aware by default", c.Rank())
		}

		// Async single-column exchange.
		xExt := []float64{float64(100 * c.Rank()), float64(100*c.Rank() + 1), 0, 0, 0}
		c.Barrier()
		if c.Rank() == 0 {
			c.Meter().Reset()
		}
		c.Barrier()
		h := p.StartExchange(c, xExt)
		h.Complete(c, xExt, 2)
		if err := checkHandHalo(c.Rank(), xExt); err != nil {
			return fmt.Errorf("async: %w", err)
		}
		c.Barrier()
		if c.Rank() == 0 {
			asyncSnap = c.Meter().Snapshot()
		}

		// k-wide batched exchange: column j of local value i holds
		// 100*rank + i + 1000*j, so halo slot for source s, column j must
		// come back as 100*s + 1000*j.
		ext := make([]float64, 5*k)
		for i := 0; i < 2; i++ {
			for j := 0; j < k; j++ {
				ext[i*k+j] = float64(100*c.Rank() + i + 1000*j)
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			c.Meter().Reset()
		}
		c.Barrier()
		p.ExchangeBatch(c, ext, 2, k)
		slot := 0
		for src := 0; src < 4; src++ {
			if src == c.Rank() {
				continue
			}
			for j := 0; j < k; j++ {
				if got, want := ext[(2+slot)*k+j], float64(100*src+1000*j); got != want {
					return fmt.Errorf("rank %d batch halo slot %d col %d: got %v, want %v",
						c.Rank(), slot, j, got, want)
				}
			}
			slot++
		}
		im, ib, em, eb := p.ExchangeCounts(k)
		batchCounts[c.Rank()] = [4]int64{im, ib, em, eb}
		c.Barrier()
		if c.Rank() == 0 {
			batchSnap = c.Meter().Snapshot()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Async metering is identical to the blocking exchange (charged at post
	// time): the hand-computed node-aware split.
	if asyncSnap.IntraP2PMessages != 8 || asyncSnap.IntraP2PBytes != 96 ||
		asyncSnap.InterP2PMessages != 2 || asyncSnap.InterP2PBytes != 64 {
		t.Fatalf("async split: %+v, want intra 8/96 inter 2/64", asyncSnap)
	}
	// The batch moves k times the bytes through exactly the same number of
	// messages.
	if batchSnap.IntraP2PMessages != 8 || batchSnap.IntraP2PBytes != 96*k ||
		batchSnap.InterP2PMessages != 2 || batchSnap.InterP2PBytes != 64*k {
		t.Fatalf("batch split: %+v, want intra 8/%d inter 2/%d", batchSnap, 96*k, 64*k)
	}
	var im, ib, em, eb int64
	for r := 0; r < 4; r++ {
		im += batchCounts[r][0]
		ib += batchCounts[r][1]
		em += batchCounts[r][2]
		eb += batchCounts[r][3]
	}
	if im != batchSnap.IntraP2PMessages || ib != batchSnap.IntraP2PBytes ||
		em != batchSnap.InterP2PMessages || eb != batchSnap.InterP2PBytes {
		t.Fatalf("ExchangeCounts(%d) sum (%d/%d intra, %d/%d inter) disagrees with meter %+v",
			k, im, ib, em, eb, batchSnap)
	}
}

// A distributed SpMV whose halo flows through the node-aware protocol must
// produce values bit-identical to the flat schedule (same float64 payloads in
// the same slots, only the envelope differs) and match the serial product to
// rounding.
func TestNodeAwareSpMVBitIdenticalToFlat(t *testing.T) {
	a := grid2d(8, 8)
	n := a.Rows
	const nranks = 4
	topo := simmpi.Topology{Nodes: 2, RanksPerNode: 2}
	l := NewUniformLayout(n, nranks)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(3*i + 1))
	}
	want := make([]float64, n)
	a.MulVec(x, want)

	gotNap := make([]float64, n)
	gotFlat := make([]float64, n)
	_, err := simmpi.RunTopo(nranks, testTimeout, topo, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		op := NewOp(c, l, lo, hi, ExtractLocalRows(a, lo, hi))
		if !op.Plan.NodeAware() {
			return fmt.Errorf("rank %d: plan built under a topology Comm not node-aware", c.Rank())
		}
		scratch := NewDistVec(op.LZ)
		y := make([]float64, hi-lo)
		op.MulVec(c, x[lo:hi], y, scratch, nil)
		copy(gotNap[lo:hi], y)

		op.Plan.SetNodeAware(false)
		c.Barrier()
		op.MulVec(c, x[lo:hi], y, scratch, nil)
		copy(gotFlat[lo:hi], y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if gotNap[i] != gotFlat[i] {
			t.Fatalf("y[%d]: node-aware %v differs from flat %v", i, gotNap[i], gotFlat[i])
		}
		if math.Abs(gotNap[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("y[%d] = %v, want %v", i, gotNap[i], want[i])
		}
	}
}

// Enabling node awareness without the data to derive the relay schedule must
// fail loudly — a silent flat fallback would fake the metered claims.
func TestSetNodeAwareWithoutTopologyPanics(t *testing.T) {
	p := NewHaloPlanFromSchedule(make([][]int, 2), make([][]int, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("SetNodeAware(true) without a topology did not panic")
		}
	}()
	p.SetNodeAware(true)
}

package sparse

import (
	"bytes"
	"testing"
)

// FuzzReadMatrixMarket asserts the parser's safety contract: any input
// either fails with an error or yields a structurally valid CSR matrix
// whose round trip re-parses to the same shape. Seeds run under plain
// `go test`; `go test -fuzz=FuzzReadMatrixMarket ./internal/sparse` explores
// further.
func FuzzReadMatrixMarket(f *testing.F) {
	seeds := []string{
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 4\n3 1 -1\n",
		"%%MatrixMarket matrix coordinate real general\n% comment\n\n1 1 1\n1 1 -2.5e-3\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",   // count mismatch
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n", // out of range
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",     // unsupported kind
		"",
		"garbage",
		"%%MatrixMarket matrix coordinate real general\n0 0 0\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parser accepted input but produced invalid CSR: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("cannot re-serialize parsed matrix: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				back.Rows, back.Cols, back.NNZ(), m.Rows, m.Cols, m.NNZ())
		}
	})
}

package sparse

import (
	"bytes"
	"testing"
)

// FuzzCSRValidate asserts Validate's safety contract on arbitrary (mostly
// corrupt) RowPtr/ColIdx encodings: it must never panic, and whenever it
// accepts a matrix, walking every row must be safe and the invariants must
// genuinely hold. Bytes decode one signed entry each, so negative offsets
// and out-of-range columns are well represented in the corpus.
func FuzzCSRValidate(f *testing.F) {
	valid := tri4()
	enc := func(xs []int) []byte {
		b := make([]byte, len(xs))
		for i, x := range xs {
			b[i] = byte(int8(x))
		}
		return b
	}
	f.Add(uint8(4), uint8(4), enc(valid.RowPtr), enc(valid.ColIdx))
	f.Add(uint8(4), uint8(4), enc([]int{1, 2, 5, 8, 10}), enc(valid.ColIdx))  // RowPtr[0] != 0
	f.Add(uint8(4), uint8(4), enc([]int{0, 5, 2, 8, 10}), enc(valid.ColIdx))  // decreasing, offset > nnz
	f.Add(uint8(4), uint8(4), enc([]int{0, -3, 5, 8, 10}), enc(valid.ColIdx)) // negative offset
	f.Add(uint8(4), uint8(4), enc(valid.RowPtr), enc([]int{0, 99, 0, 1, 2, 1, 2, 3, 2, 3}))
	f.Add(uint8(4), uint8(4), enc(valid.RowPtr), enc([]int{1, 0, 0, 1, 2, 1, 2, 3, 2, 3})) // unsorted
	f.Add(uint8(2), uint8(3), enc([]int{0, 0, 0}), []byte{})
	f.Add(uint8(0), uint8(0), enc([]int{0}), []byte{})
	f.Fuzz(func(t *testing.T, rows, cols uint8, rowPtrB, colIdxB []byte) {
		r, c := int(rows%16), int(cols%16)
		rp := make([]int, len(rowPtrB))
		for i, b := range rowPtrB {
			rp[i] = int(int8(b))
		}
		ci := make([]int, len(colIdxB))
		for i, b := range colIdxB {
			ci[i] = int(int8(b))
		}
		m := &CSR{Rows: r, Cols: c, RowPtr: rp, ColIdx: ci, Val: make([]float64, len(ci))}
		if err := m.Validate(); err != nil {
			return // rejections are fine; panics are not
		}
		nnz := 0
		for i := 0; i < r; i++ {
			row, _ := m.Row(i)
			prev := -1
			for _, col := range row {
				if col <= prev || col >= c {
					t.Fatalf("Validate accepted row %d with bad columns %v", i, row)
				}
				prev = col
			}
			nnz += len(row)
		}
		if nnz != m.NNZ() {
			t.Fatalf("rows sum to %d entries, NNZ says %d", nnz, m.NNZ())
		}
	})
}

// FuzzCOOToCSR asserts the COO→CSR conversion round trip: for arbitrary
// in-range triples (with duplicates), the result always validates and every
// position holds exactly the sum of its duplicate additions.
func FuzzCOOToCSR(f *testing.F) {
	f.Add(uint8(3), []byte{0, 0, 4, 1, 1, 4, 0, 1, 255})
	f.Add(uint8(1), []byte{0, 0, 1, 0, 0, 2, 0, 0, 3}) // all duplicates
	f.Add(uint8(5), []byte{})
	f.Add(uint8(4), []byte{3, 0, 7, 0, 3, 7, 2, 2, 0}) // explicit zero value
	f.Fuzz(func(t *testing.T, n uint8, data []byte) {
		size := 1 + int(n%12)
		c := NewCOO(size, size)
		type pos struct{ i, j int }
		want := map[pos]float64{}
		for k := 0; k+2 < len(data); k += 3 {
			i, j := int(data[k])%size, int(data[k+1])%size
			v := float64(int8(data[k+2]))
			c.Add(i, j, v)
			want[pos{i, j}] += v
		}
		m := c.ToCSR()
		if err := m.Validate(); err != nil {
			t.Fatalf("ToCSR produced invalid CSR: %v", err)
		}
		if m.NNZ() != len(want) {
			t.Fatalf("NNZ = %d, want %d distinct positions", m.NNZ(), len(want))
		}
		for p, v := range want {
			if got := m.At(p.i, p.j); got != v {
				t.Fatalf("At(%d,%d) = %v, want %v", p.i, p.j, got, v)
			}
		}
	})
}

// FuzzReadMatrixMarket asserts the parser's safety contract: any input
// either fails with an error or yields a structurally valid CSR matrix
// whose round trip re-parses to the same shape. Seeds run under plain
// `go test`; `go test -fuzz=FuzzReadMatrixMarket ./internal/sparse` explores
// further.
func FuzzReadMatrixMarket(f *testing.F) {
	seeds := []string{
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 4\n3 1 -1\n",
		"%%MatrixMarket matrix coordinate real general\n% comment\n\n1 1 1\n1 1 -2.5e-3\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",   // count mismatch
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n", // out of range
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",     // unsupported kind
		"",
		"garbage",
		"%%MatrixMarket matrix coordinate real general\n0 0 0\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parser accepted input but produced invalid CSR: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("cannot re-serialize parsed matrix: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				back.Rows, back.Cols, back.NNZ(), m.Rows, m.Cols, m.NNZ())
		}
	})
}

package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format builder for sparse matrices. Entries may be
// added in any order; duplicates are summed when converting to CSR.
type COO struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// NewCOO returns an empty COO builder with the given shape.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Add appends entry (i, j) = v. It panics on out-of-range indices so that
// generator bugs fail loudly.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: COO.Add (%d,%d) out of range for %dx%d", i, j, c.Rows, c.Cols))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// AddSym appends (i, j) = v and, when i != j, also (j, i) = v.
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// NNZ returns the number of accumulated (possibly duplicate) entries.
func (c *COO) NNZ() int { return len(c.I) }

// ToCSR converts the accumulated entries into CSR form, summing duplicates
// and dropping entries that sum to exactly zero is NOT done (structural
// zeros are preserved, as FSAI patterns distinguish structure from value).
func (c *COO) ToCSR() *CSR {
	type ent struct {
		i, j int
		v    float64
	}
	ents := make([]ent, len(c.I))
	for k := range c.I {
		ents[k] = ent{c.I[k], c.J[k], c.V[k]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].i != ents[b].i {
			return ents[a].i < ents[b].i
		}
		return ents[a].j < ents[b].j
	})
	m := NewCSR(c.Rows, c.Cols, len(ents))
	for k := 0; k < len(ents); {
		e := ents[k]
		sum := 0.0
		for k < len(ents) && ents[k].i == e.i && ents[k].j == e.j {
			sum += ents[k].v
			k++
		}
		m.ColIdx = append(m.ColIdx, e.j)
		m.Val = append(m.Val, sum)
		m.RowPtr[e.i+1] = len(m.ColIdx)
	}
	// Fill row pointers for empty rows.
	for i := 1; i <= c.Rows; i++ {
		if m.RowPtr[i] < m.RowPtr[i-1] {
			m.RowPtr[i] = m.RowPtr[i-1]
		}
	}
	return m
}

// Package sparse implements the sparse-matrix substrate used throughout the
// FSAIE-Comm reproduction: CSR and COO storage, sparse matrix-vector products,
// transposition, pattern algebra (symbolic powers, thresholding, triangular
// extraction), and a Matrix Market style text codec.
//
// All matrices use 0-based indexing. Row indices within a CSR row are kept
// sorted by column, which the pattern-extension algorithms rely on.
package sparse

import (
	"fmt"
	"math"
	"sort"

	"fsaicomm/internal/parallel"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// RowPtr has length Rows+1; the column indices of row i are
// ColIdx[RowPtr[i]:RowPtr[i+1]], sorted ascending, with matching values in
// Val. Duplicate column indices within a row are not allowed.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// NewCSR allocates an empty CSR matrix with the given shape and capacity.
func NewCSR(rows, cols, nnzCap int) *CSR {
	return &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int, rows+1),
		ColIdx: make([]int, 0, nnzCap),
		Val:    make([]float64, 0, nnzCap),
	}
}

// Row returns the column indices and values of row i as shared slices.
func (m *CSR) Row(i int) ([]int, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// At returns the entry (i, j), or zero when it is not stored.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Has reports whether entry (i, j) is stored (even if its value is zero).
func (m *CSR) Has(i, j int) bool {
	cols, _ := m.Row(i)
	k := sort.SearchInts(cols, j)
	return k < len(cols) && cols[k] == j
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// Validate checks the structural invariants of the CSR storage and returns a
// descriptive error for the first violation found.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("sparse: negative shape %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: ColIdx length %d != Val length %d", len(m.ColIdx), len(m.Val))
	}
	if m.RowPtr[m.Rows] != len(m.ColIdx) {
		return fmt.Errorf("sparse: RowPtr[last] = %d, want nnz %d", m.RowPtr[m.Rows], len(m.ColIdx))
	}
	// Check all of RowPtr before slicing ColIdx with it: non-decreasing with
	// RowPtr[0] = 0 and RowPtr[Rows] = nnz bounds every offset into [0, nnz],
	// so the Row calls below cannot go out of range even on corrupt input.
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr decreases at row %d", i)
		}
	}
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for k, c := range cols {
			if c < 0 || c >= m.Cols {
				return fmt.Errorf("sparse: row %d has column %d out of range [0,%d)", i, c, m.Cols)
			}
			if k > 0 && cols[k-1] >= c {
				return fmt.Errorf("sparse: row %d columns not strictly ascending at position %d", i, k)
			}
		}
	}
	return nil
}

// MulVec computes y = A x. It panics when dimensions mismatch.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
}

// MulVecParallel computes y = A x with rows partitioned across workers
// (<= 0 selects GOMAXPROCS). Each worker writes a disjoint slice of y and
// every row dot product is the same left-to-right sum as MulVec, so the
// result is bit-identical to the serial product for any worker count.
func (m *CSR) MulVecParallel(x, y []float64, workers int) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecParallel shape mismatch: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	_ = parallel.For(workers, m.Rows, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			sum := 0.0
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				sum += m.Val[k] * x[m.ColIdx[k]]
			}
			y[i] = sum
		}
		return nil
	})
}

// MulVecTrans computes y = Aᵀ x without forming the transpose.
func (m *CSR) MulVecTrans(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("sparse: MulVecTrans shape mismatch: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			y[m.ColIdx[k]] += m.Val[k] * xi
		}
	}
}

// Transpose returns Aᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	// Count entries per column.
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr[:m.Cols]...)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			p := next[c]
			next[c]++
			t.ColIdx[p] = i
			t.Val[p] = m.Val[k]
		}
	}
	return t
}

// Diagonal returns a copy of the main diagonal (missing entries are zero).
func (m *CSR) Diagonal() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// IsSymmetric reports whether the matrix is numerically symmetric within tol
// (relative to the larger of the two compared magnitudes).
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	if len(t.ColIdx) != len(m.ColIdx) {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		ca, va := m.Row(i)
		cb, vb := t.Row(i)
		if len(ca) != len(cb) {
			return false
		}
		for k := range ca {
			if ca[k] != cb[k] {
				return false
			}
			diff := math.Abs(va[k] - vb[k])
			scale := math.Max(math.Abs(va[k]), math.Abs(vb[k]))
			if diff > tol*math.Max(scale, 1) {
				return false
			}
		}
	}
	return true
}

// LowerTriangle returns the lower-triangular part of A (including the
// diagonal) as a new CSR matrix.
func (m *CSR) LowerTriangle() *CSR {
	l := NewCSR(m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if c <= i {
				l.ColIdx = append(l.ColIdx, c)
				l.Val = append(l.Val, vals[k])
			}
		}
		l.RowPtr[i+1] = len(l.ColIdx)
	}
	return l
}

// UpperTriangle returns the upper-triangular part of A (including the
// diagonal) as a new CSR matrix.
func (m *CSR) UpperTriangle() *CSR {
	u := NewCSR(m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if c >= i {
				u.ColIdx = append(u.ColIdx, c)
				u.Val = append(u.Val, vals[k])
			}
		}
		u.RowPtr[i+1] = len(u.ColIdx)
	}
	return u
}

// Scale multiplies every stored value by s in place.
func (m *CSR) Scale(s float64) {
	for k := range m.Val {
		m.Val[k] *= s
	}
}

// IsFinite reports whether every stored value is finite (no NaN or ±Inf).
// A non-finite entry poisons every solve that touches the matrix — and any
// cache the matrix lands in — so input boundaries check this before
// accepting a matrix.
func (m *CSR) IsFinite() bool {
	for _, v := range m.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// MaxNorm returns the largest absolute stored value.
func (m *CSR) MaxNorm() float64 {
	max := 0.0
	for _, v := range m.Val {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of the stored entries.
func (m *CSR) FrobeniusNorm() float64 {
	sum := 0.0
	for _, v := range m.Val {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Dense expands the matrix into a row-major dense [][]float64. Intended for
// tests on small matrices only.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
		cols, vals := m.Row(i)
		for k, c := range cols {
			d[i][c] = vals[k]
		}
	}
	return d
}

// SubMatrix extracts the dense restriction A(rows, cols) into dst, a
// row-major buffer of size len(rows)*len(cols). Both index sets must be
// sorted ascending; dst is fully overwritten. This is the gather used to
// build the small FSAI systems A(S_i, S_i).
func (m *CSR) SubMatrix(rows, cols []int, dst []float64) {
	nc := len(cols)
	if len(dst) != len(rows)*nc {
		panic(fmt.Sprintf("sparse: SubMatrix dst size %d, want %d", len(dst), len(rows)*nc))
	}
	for k := range dst {
		dst[k] = 0
	}
	for ri, i := range rows {
		rcols, rvals := m.Row(i)
		// Merge walk over the row and the requested column set.
		a, b := 0, 0
		for a < len(rcols) && b < nc {
			switch {
			case rcols[a] < cols[b]:
				a++
			case rcols[a] > cols[b]:
				b++
			default:
				dst[ri*nc+b] = rvals[a]
				a++
				b++
			}
		}
	}
}

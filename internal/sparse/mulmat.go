package sparse

// Sparse matrix times a block of vectors (SpMM). The k right-hand vectors
// are stored row-major interleaved — X[i*k+c] is component i of vector c —
// so every stored matrix entry touches k contiguous values of X. That
// layout is the whole point: one pass over the matrix serves all k vectors,
// turning the memory-bound SpMV into a kernel with k-fold reuse of every
// fetched (ColIdx, Val) pair (the bandwidth-locality argument behind the
// batched multi-RHS solve path). Each column's row sum accumulates in the
// same left-to-right entry order as MulVec, so column c of MulMat is
// bit-identical to MulVec on column c alone — the property the batched
// solver's differential tests pin.

import (
	"fmt"

	"fsaicomm/internal/parallel"
)

// MulMat computes Y = A·X for k interleaved vectors: len(x) = Cols·k,
// len(y) = Rows·k, both row-major (x[i*k+c]). Column c of the result is
// bit-identical to MulVec on the de-interleaved column c. k = 1 degenerates
// to MulVec on the same storage.
func (m *CSR) MulMat(x, y []float64, k int) {
	checkMulMat(m, x, y, k, "MulMat")
	for i := 0; i < m.Rows; i++ {
		acc := y[i*k : (i+1)*k]
		for c := range acc {
			acc[c] = 0
		}
		for e := m.RowPtr[i]; e < m.RowPtr[i+1]; e++ {
			v := m.Val[e]
			xs := x[m.ColIdx[e]*k : m.ColIdx[e]*k+k]
			for c, xv := range xs {
				acc[c] += v * xv
			}
		}
	}
}

// MulMatCols computes the listed columns of Y = A·X, leaving the other
// columns of y untouched. cols holds strictly ascending column indices in
// [0, k). This is the convergence-masking kernel of the batched CG loop:
// columns that have converged stop costing flops while the survivors keep
// their exact scalar-solve arithmetic. A nil cols computes every column
// (same as MulMat).
func (m *CSR) MulMatCols(x, y []float64, k int, cols []int) {
	if cols == nil {
		m.MulMat(x, y, k)
		return
	}
	checkMulMat(m, x, y, k, "MulMatCols")
	for i := 0; i < m.Rows; i++ {
		acc := y[i*k : (i+1)*k]
		for _, c := range cols {
			acc[c] = 0
		}
		for e := m.RowPtr[i]; e < m.RowPtr[i+1]; e++ {
			v := m.Val[e]
			xs := x[m.ColIdx[e]*k : m.ColIdx[e]*k+k]
			for _, c := range cols {
				acc[c] += v * xs[c]
			}
		}
	}
}

// MulMatParallel computes Y = A·X with rows partitioned across workers
// (<= 0 selects GOMAXPROCS). Workers write disjoint row blocks of y and
// every per-column row sum keeps MulVec's left-to-right order, so the
// result is bit-identical to MulMat for any worker count.
func (m *CSR) MulMatParallel(x, y []float64, k, workers int) {
	checkMulMat(m, x, y, k, "MulMatParallel")
	_ = parallel.For(workers, m.Rows, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			acc := y[i*k : (i+1)*k]
			for c := range acc {
				acc[c] = 0
			}
			for e := m.RowPtr[i]; e < m.RowPtr[i+1]; e++ {
				v := m.Val[e]
				xs := x[m.ColIdx[e]*k : m.ColIdx[e]*k+k]
				for c, xv := range xs {
					acc[c] += v * xv
				}
			}
		}
		return nil
	})
}

func checkMulMat(m *CSR, x, y []float64, k int, name string) {
	if k < 1 {
		panic(fmt.Sprintf("sparse: %s batch size %d < 1", name, k))
	}
	if len(x) != m.Cols*k || len(y) != m.Rows*k {
		panic(fmt.Sprintf("sparse: %s shape mismatch: A is %dx%d, k=%d, len(x)=%d, len(y)=%d",
			name, m.Rows, m.Cols, k, len(x), len(y)))
	}
}

package sparse_test

import (
	"math"
	"math/rand"
	"testing"

	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

func fpTestMatrix(n int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	return testsets.RandomSPD(rng, n, testsets.SPDOptions{
		Diag: 8, Chain: -1, Couplings: 3 * n,
		Off: func(r *rand.Rand) float64 { return 0.5 * r.Float64() },
	})
}

func TestFingerprintStableAcrossClones(t *testing.T) {
	a := fpTestMatrix(200, 42)
	fp := a.Fingerprint()
	if len(fp) != 32 {
		t.Fatalf("fingerprint length %d, want 32 hex chars", len(fp))
	}
	if got := a.Clone().Fingerprint(); got != fp {
		t.Fatalf("clone fingerprint %s != original %s", got, fp)
	}
	// Extra slice capacity must not matter.
	b := a.Clone()
	b.ColIdx = append(make([]int, 0, 4*b.NNZ()), b.ColIdx...)
	b.Val = append(make([]float64, 0, 4*b.NNZ()), b.Val...)
	if got := b.Fingerprint(); got != fp {
		t.Fatalf("capacity-padded fingerprint %s != original %s", got, fp)
	}
}

func TestFingerprintDistinguishesContent(t *testing.T) {
	a := fpTestMatrix(120, 1)
	fp := a.Fingerprint()
	// A changed value moves the fingerprint.
	v := a.Clone()
	v.Val[len(v.Val)/2] *= 1.5
	if v.Fingerprint() == fp {
		t.Fatal("value change did not change the fingerprint")
	}
	// A changed structure (different matrix entirely) moves it too.
	s := fpTestMatrix(120, 2)
	if s.Fingerprint() == fp {
		t.Fatal("different matrix collides with original fingerprint")
	}
	// Shape is part of the identity even for an empty pattern.
	e1 := sparse.NewCSR(3, 3, 0)
	e2 := sparse.NewCSR(4, 4, 0)
	e2.RowPtr = make([]int, 5)
	if e1.Fingerprint() == e2.Fingerprint() {
		t.Fatal("empty 3x3 and 4x4 share a fingerprint")
	}
}

func TestFingerprintQuantizesNoise(t *testing.T) {
	a := fpTestMatrix(150, 7)
	fp := a.Fingerprint()
	// Sub-quantum noise: flipping mantissa bits below the quantization mask
	// must not change the fingerprint (assembly-order rounding noise).
	n := a.Clone()
	for i, v := range n.Val {
		n.Val[i] = math.Float64frombits(math.Float64bits(v) ^ 0x3)
	}
	if got := n.Fingerprint(); got != fp {
		t.Fatalf("sub-quantum noise changed fingerprint: %s != %s", got, fp)
	}
}

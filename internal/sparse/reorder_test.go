package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// shuffledGrid returns a 2D grid Laplacian with randomly permuted labels
// (destroying index locality) plus the permutation used.
func shuffledGrid(nx, ny int, seed int64) *CSR {
	n := nx * ny
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	c := NewCOO(n, n)
	id := func(x, y int) int { return perm[y*nx+x] }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			c.Add(i, i, 4)
			if x > 0 {
				c.Add(i, id(x-1, y), -1)
			}
			if x < nx-1 {
				c.Add(i, id(x+1, y), -1)
			}
			if y > 0 {
				c.Add(i, id(x, y-1), -1)
			}
			if y < ny-1 {
				c.Add(i, id(x, y+1), -1)
			}
		}
	}
	return c.ToCSR()
}

func TestRCMReducesBandwidth(t *testing.T) {
	a := shuffledGrid(12, 12, 3)
	before := Bandwidth(a)
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	b := PermuteSym(a, perm)
	after := Bandwidth(b)
	if after >= before/2 {
		t.Fatalf("RCM bandwidth %d not well below original %d", after, before)
	}
	// The permuted matrix must stay symmetric with the same nnz.
	if b.NNZ() != a.NNZ() || !b.IsSymmetric(1e-14) {
		t.Fatal("RCM permutation damaged the matrix")
	}
}

func TestRCMIsPermutation(t *testing.T) {
	a := shuffledGrid(7, 9, 5)
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[p] = true
	}
}

func TestRCMDisconnected(t *testing.T) {
	// Two disjoint paths.
	c := NewCOO(8, 8)
	for i := 0; i < 8; i++ {
		c.Add(i, i, 2)
	}
	for i := 0; i < 3; i++ {
		c.AddSym(i, i+1, -1)
	}
	for i := 4; i < 7; i++ {
		c.AddSym(i, i+1, -1)
	}
	a := c.ToCSR()
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	b := PermuteSym(a, perm)
	if Bandwidth(b) > 1 {
		t.Fatalf("path graphs should reach bandwidth 1, got %d", Bandwidth(b))
	}
}

func TestRCMRejectsRectangular(t *testing.T) {
	if _, err := RCM(NewCSR(2, 3, 0)); err == nil {
		t.Fatal("rectangular accepted")
	}
}

func TestBandwidthDiagonal(t *testing.T) {
	c := NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 1)
	}
	if bw := Bandwidth(c.ToCSR()); bw != 0 {
		t.Fatalf("diagonal bandwidth = %d", bw)
	}
}

func TestPermuteSymValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad permutation length")
		}
	}()
	PermuteSym(tri4(), []int{0, 1})
}

// Property: RCM never increases bandwidth on shuffled grids, and permuted
// spectra match (checked via x'Ax for random x under the permutation).
func TestQuickRCMConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 3+rng.Intn(8), 3+rng.Intn(8)
		a := shuffledGrid(nx, ny, seed)
		perm, err := RCM(a)
		if err != nil {
			return false
		}
		b := PermuteSym(a, perm)
		if Bandwidth(b) > Bandwidth(a) {
			return false
		}
		n := a.Rows
		x := make([]float64, n)
		px := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			px[perm[i]] = x[i]
		}
		ax := make([]float64, n)
		bpx := make([]float64, n)
		a.MulVec(x, ax)
		b.MulVec(px, bpx)
		var qa, qb float64
		for i := 0; i < n; i++ {
			qa += x[i] * ax[i]
			qb += px[i] * bpx[i]
		}
		return abs64(qa-qb) < 1e-9*(1+abs64(qa))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

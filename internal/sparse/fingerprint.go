package sparse

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// fingerprintMantissaMask drops the low 12 bits of the IEEE-754 mantissa
// before hashing, quantizing values to ~5e-13 relative resolution. Matrices
// that differ only by sub-quantum floating-point noise (e.g. the same
// operator assembled with a different summation order) map to the same
// fingerprint, so a serving cache keyed on it reuses one preconditioner for
// all of them.
const fingerprintMantissaMask = ^uint64(0xFFF)

// Fingerprint returns a stable content hash of the matrix: SHA-256 over the
// shape, the CSR structure (RowPtr, ColIdx) and the quantized values,
// rendered as a 32-character hex string. Two matrices share a fingerprint
// iff they have identical shape and sparsity structure and entrywise values
// equal after mantissa quantization. The hash is independent of slice
// capacities and stable across processes and platforms (little-endian
// serialization is forced).
func (m *CSR) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	h.Write([]byte("csr/v1\n"))
	writeInt(m.Rows)
	writeInt(m.Cols)
	writeInt(m.NNZ())
	for _, p := range m.RowPtr {
		writeInt(p)
	}
	for _, c := range m.ColIdx {
		writeInt(c)
	}
	for _, v := range m.Val {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v)&fingerprintMantissaMask)
		h.Write(buf[:])
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// randCSR32Source builds a small random matrix whose values span several
// orders of magnitude, so narrowing actually rounds.
func randCSR32Source(n int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4+rng.Float64())
		for _, j := range rng.Perm(n)[:2] {
			if j != i {
				c.Add(i, j, (rng.Float64()-0.5)*math.Pow(10, float64(rng.Intn(7)-3)))
			}
		}
	}
	return c.ToCSR()
}

func TestCSR32NarrowWidenRoundTrip(t *testing.T) {
	src := randCSR32Source(12, 1)
	m := NewCSR32(src)
	back := m.Widen()
	if back.Rows != src.Rows || back.Cols != src.Cols || back.NNZ() != src.NNZ() {
		t.Fatalf("shape changed: %dx%d/%d vs %dx%d/%d",
			back.Rows, back.Cols, back.NNZ(), src.Rows, src.Cols, src.NNZ())
	}
	for i, v := range src.Val {
		if want := float64(float32(v)); back.Val[i] != want {
			t.Fatalf("Val[%d]: widened %v, want the one-rounding value %v (src %v)", i, back.Val[i], want, v)
		}
	}
	// The narrow shares structure with its source; the widened copy must not.
	if &m.RowPtr[0] != &src.RowPtr[0] || &m.ColIdx[0] != &src.ColIdx[0] {
		t.Error("NewCSR32 copied RowPtr/ColIdx instead of sharing")
	}
	if &back.RowPtr[0] == &src.RowPtr[0] || &back.ColIdx[0] == &src.ColIdx[0] {
		t.Error("Widen shares structure arrays with the source")
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("widened matrix invalid: %v", err)
	}
}

func TestCSR32MaxRelErrorBound(t *testing.T) {
	src := randCSR32Source(16, 2)
	m := NewCSR32(src)
	if e := m.MaxRelError(src.Val); e > 1.0/(1<<24) {
		t.Fatalf("narrowing error %g exceeds one float32 rounding (2^-24)", e)
	}
	// A genuinely different value array must register.
	off := append([]float64(nil), src.Val...)
	off[3] *= 1.25
	if e := m.MaxRelError(off); e < 0.1 {
		t.Fatalf("MaxRelError %g misses a 25%% perturbation", e)
	}
}

// TestCSR32ProductsMatchWiden pins the mixed-precision kernel contract: the
// float64-accumulating CSR32 products must be bitwise identical to running
// the full-precision kernels over the widened matrix — narrowing rounds the
// stored values once, and nothing else.
func TestCSR32ProductsMatchWiden(t *testing.T) {
	src := randCSR32Source(10, 3)
	m := NewCSR32(src)
	wide := m.Widen()
	n := src.Rows
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	y32, y64 := make([]float64, n), make([]float64, n)
	m.MulVec(x, y32)
	wide.MulVec(x, y64)
	for i := range y32 {
		if y32[i] != y64[i] {
			t.Fatalf("MulVec y[%d]: %v vs widened %v", i, y32[i], y64[i])
		}
	}

	m.MulVecTrans(x, y32)
	wide.MulVecTrans(x, y64)
	for i := range y32 {
		if y32[i] != y64[i] {
			t.Fatalf("MulVecTrans y[%d]: %v vs widened %v", i, y32[i], y64[i])
		}
	}

	const k = 3
	xb := make([]float64, n*k)
	for i := range xb {
		xb[i] = rng.NormFloat64()
	}
	yb32, yb64 := make([]float64, n*k), make([]float64, n*k)
	for _, cols := range [][]int{nil, {0, 2}} {
		m.MulMatCols(xb, yb32, k, cols)
		wide.MulMatCols(xb, yb64, k, cols)
		active := cols
		if active == nil {
			active = []int{0, 1, 2}
		}
		for i := 0; i < n; i++ {
			for _, c := range active {
				if yb32[i*k+c] != yb64[i*k+c] {
					t.Fatalf("MulMatCols cols=%v y[%d,%d]: %v vs widened %v",
						cols, i, c, yb32[i*k+c], yb64[i*k+c])
				}
			}
		}
	}
}

func TestCSR32ShapePanics(t *testing.T) {
	m := NewCSR32(tri4())
	for name, fn := range map[string]func(){
		"MulVec":      func() { m.MulVec(make([]float64, 3), make([]float64, 4)) },
		"MulVecTrans": func() { m.MulVecTrans(make([]float64, 3), make([]float64, 4)) },
		"MulMatCols":  func() { m.MulMatCols(make([]float64, 4), make([]float64, 8), 2, nil) },
		"MaxRelError": func() { m.MaxRelError(make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted mismatched shapes", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzCSR32RoundTrip feeds arbitrary float64 bit patterns through the
// f64 → f32 → f64 narrowing round trip: the widened value must be exactly
// the one-rounding float32 image of the source (NaN stays NaN, overflow
// goes to ±Inf), in-range values must stay within one float32 ulp
// relatively, and the mixed-precision SpMV must match the widened
// full-precision one bitwise.
func FuzzCSR32RoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	seed := func(vals ...float64) []byte {
		var b []byte
		for _, v := range vals {
			bits := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(bits>>s))
			}
		}
		return b
	}
	f.Add(seed(1.0, -2.5, 1e-40, 3.5e38, math.Pi))
	f.Add(seed(math.NaN(), math.Inf(1), math.Inf(-1), -0.0))
	f.Add(seed(math.MaxFloat64, math.SmallestNonzeroFloat64))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n == 0 {
			return
		}
		if n > 64 {
			n = 64
		}
		vals := make([]float64, n)
		for i := range vals {
			var bits uint64
			for s := 0; s < 8; s++ {
				bits |= uint64(data[i*8+s]) << (8 * s)
			}
			vals[i] = math.Float64frombits(bits)
		}
		// One dense row holds the values; structure is trivially valid.
		src := &CSR{Rows: 1, Cols: n, RowPtr: []int{0, n}, ColIdx: make([]int, n), Val: vals}
		for i := range src.ColIdx {
			src.ColIdx[i] = i
		}
		m := NewCSR32(src)
		back := m.Widen()
		for i, v := range vals {
			got := back.Val[i]
			if math.IsNaN(v) {
				if !math.IsNaN(got) {
					t.Fatalf("Val[%d]: NaN widened to %v", i, got)
				}
				continue
			}
			if want := float64(float32(v)); got != want || math.Signbit(got) != math.Signbit(want) {
				t.Fatalf("Val[%d]: round trip %v, want %v (src %v)", i, got, want, v)
			}
			// In the normal float32 range the round trip is a single rounding.
			if a := math.Abs(v); a >= math.SmallestNonzeroFloat32*float64(1<<23) && a <= math.MaxFloat32 {
				if rel := math.Abs(got-v) / a; rel > 1.0/(1<<24) {
					t.Fatalf("Val[%d]: relative error %g exceeds 2^-24 (src %v)", i, rel, v)
				}
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		y32, y64 := make([]float64, 1), make([]float64, 1)
		m.MulVec(x, y32)
		back.MulVec(x, y64)
		if y32[0] != y64[0] && !(math.IsNaN(y32[0]) && math.IsNaN(y64[0])) {
			t.Fatalf("MulVec: mixed %v vs widened %v", y32[0], y64[0])
		}
	})
}

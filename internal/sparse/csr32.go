package sparse

import (
	"fmt"
	"math"
)

// CSR32 is a CSR matrix whose values are stored in float32 — the
// mixed-precision representation of the FSAI factors (and optionally the
// operator). The structure (RowPtr, ColIdx) is shared with the float64
// matrix it was narrowed from: only the value array is duplicated, at half
// the bytes. Products accumulate in float64, so the only precision lost is
// the one rounding of each stored value; iterative refinement recovers the
// rest.
type CSR32 struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float32
}

// NewCSR32 narrows a float64 CSR matrix to float32 storage. RowPtr and
// ColIdx are shared with m (read-only by convention); Val is the rounded
// copy. Values outside the float32 range overflow to ±Inf — callers feeding
// matrices with entries beyond ~3.4e38 must rescale first, as any f32
// pipeline would.
func NewCSR32(m *CSR) *CSR32 {
	v := make([]float32, len(m.Val))
	for i, x := range m.Val {
		v[i] = float32(x)
	}
	return &CSR32{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Val: v}
}

// NNZ returns the number of stored entries.
func (m *CSR32) NNZ() int { return len(m.ColIdx) }

// Row returns the column indices and values of row i as shared slices.
func (m *CSR32) Row(i int) ([]int, []float32) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// Widen expands the matrix back to float64 storage (fresh arrays; nothing is
// shared). Round-tripping f64 → f32 → f64 through NewCSR32 and Widen keeps
// every in-range value within one float32 rounding (relative error ≤ 2⁻²⁴).
func (m *CSR32) Widen() *CSR {
	v := make([]float64, len(m.Val))
	for i, x := range m.Val {
		v[i] = float64(x)
	}
	return &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    v,
	}
}

// MaxRelError returns the largest relative narrowing error |f64−f32|/|f64|
// over the stored entries of m versus its float64 source values src (zero
// entries compare absolutely). It is the quantity the round-trip fuzz target
// bounds.
func (m *CSR32) MaxRelError(src []float64) float64 {
	if len(src) != len(m.Val) {
		panic(fmt.Sprintf("sparse: MaxRelError value length %d, want %d", len(src), len(m.Val)))
	}
	worst := 0.0
	for i, v := range src {
		diff := math.Abs(v - float64(m.Val[i]))
		if v != 0 {
			diff /= math.Abs(v)
		}
		if diff > worst {
			worst = diff
		}
	}
	return worst
}

// MulVec computes y = A x with float64 accumulation. It panics when
// dimensions mismatch.
func (m *CSR32) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: CSR32 MulVec shape mismatch: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += float64(m.Val[k]) * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
}

// MulVecTrans computes y = Aᵀ x without forming the transpose, with float64
// accumulation.
func (m *CSR32) MulVecTrans(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("sparse: CSR32 MulVecTrans shape mismatch: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			y[m.ColIdx[k]] += float64(m.Val[k]) * xi
		}
	}
}

// MulMatCols computes the selected interleaved columns of Y = A·X for k
// columns stored row-major (x[i*k+c] = component i of column c), with
// float64 accumulation. cols selects the active columns (nil = all),
// matching CSR.MulMatCols.
func (m *CSR32) MulMatCols(x, y []float64, k int, cols []int) {
	if len(x) != m.Cols*k || len(y) != m.Rows*k {
		panic(fmt.Sprintf("sparse: CSR32 MulMatCols shape mismatch: A is %dx%d, k=%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, k, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		if cols == nil {
			for c := 0; c < k; c++ {
				y[i*k+c] = 0
			}
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				v := float64(m.Val[p])
				xo := m.ColIdx[p] * k
				for c := 0; c < k; c++ {
					y[i*k+c] += v * x[xo+c]
				}
			}
			continue
		}
		for _, c := range cols {
			y[i*k+c] = 0
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			v := float64(m.Val[p])
			xo := m.ColIdx[p] * k
			for _, c := range cols {
				y[i*k+c] += v * x[xo+c]
			}
		}
	}
}

package sparse_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

func TestMatrixMarketRoundTripGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := testsets.RandomCSR(rng, 13, 9, 0.3)
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := sparse.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != m.Rows || got.Cols != m.Cols || got.NNZ() != m.NNZ() {
		t.Fatalf("shape/nnz changed: %dx%d/%d vs %dx%d/%d",
			got.Rows, got.Cols, got.NNZ(), m.Rows, m.Cols, m.NNZ())
	}
	for i := 0; i < m.Rows; i++ {
		ca, va := m.Row(i)
		cb, vb := got.Row(i)
		for k := range ca {
			if ca[k] != cb[k] || math.Abs(va[k]-vb[k]) > 1e-15*math.Abs(va[k]) {
				t.Fatalf("row %d entry %d mismatch", i, k)
			}
		}
	}
}

func TestMatrixMarketRoundTripSymmetric(t *testing.T) {
	m := tri4()
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarketSymmetric(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "symmetric") {
		t.Fatalf("missing symmetric header: %q", buf.String())
	}
	got, err := sparse.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != m.NNZ() {
		t.Fatalf("NNZ = %d, want %d", got.NNZ(), m.NNZ())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestMatrixMarketComments(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment

2 2 2
1 1 3.5
2 2 -1
`
	m, err := sparse.ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 3.5 || m.At(1, 1) != -1 {
		t.Fatalf("values wrong")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad-header":  "hello\n1 1 1\n1 1 1\n",
		"bad-kind":    "%%MatrixMarket matrix array real general\n1 1\n1\n",
		"bad-sym":     "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"short-size":  "%%MatrixMarket matrix coordinate real general\n2 2\n",
		"bad-index":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"bad-value":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zzz\n",
		"wrong-count": "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"no-size":     "%%MatrixMarket matrix coordinate real general\n% only comments\n",
	}
	for name, in := range cases {
		if _, err := sparse.ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: error not detected", name)
		}
	}
}

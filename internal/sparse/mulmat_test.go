package sparse

import (
	"math/rand"
	"testing"
)

// randomRectCSR builds a dense-ish random rectangular CSR with entries drawn
// from rng, keeping roughly density of the slots occupied but guaranteeing at
// least one entry per row so every row sum is non-trivial.
func randomRectCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	c := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		placed := false
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				c.Add(i, j, rng.NormFloat64())
				placed = true
			}
		}
		if !placed {
			c.Add(i, rng.Intn(cols), rng.NormFloat64())
		}
	}
	return c.ToCSR()
}

func packCols(cols [][]float64, k int) []float64 {
	n := len(cols[0])
	x := make([]float64, n*k)
	for c, v := range cols {
		for i := range v {
			x[i*k+c] = v[i]
		}
	}
	return x
}

// MulMat against k independent MulVec calls: bit-identical per column, for
// several shapes and batch sizes including k = 1.
func TestMulMatMatchesMulVecBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ rows, cols, k int }{
		{1, 1, 1}, {5, 3, 1}, {17, 17, 4}, {40, 23, 7}, {23, 40, 16},
	} {
		m := randomRectCSR(rng, tc.rows, tc.cols, 0.3)
		xcols := make([][]float64, tc.k)
		want := make([][]float64, tc.k)
		for c := range xcols {
			xcols[c] = make([]float64, tc.cols)
			for i := range xcols[c] {
				xcols[c][i] = rng.NormFloat64()
			}
			want[c] = make([]float64, tc.rows)
			m.MulVec(xcols[c], want[c])
		}
		x := packCols(xcols, tc.k)
		y := make([]float64, tc.rows*tc.k)
		m.MulMat(x, y, tc.k)
		for c := 0; c < tc.k; c++ {
			for i := 0; i < tc.rows; i++ {
				if y[i*tc.k+c] != want[c][i] {
					t.Fatalf("%dx%d k=%d: col %d row %d: MulMat %v != MulVec %v",
						tc.rows, tc.cols, tc.k, c, i, y[i*tc.k+c], want[c][i])
				}
			}
		}
	}
}

// MulMatCols computes exactly the listed columns and leaves the rest alone.
func TestMulMatColsMasking(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const k = 5
	m := randomRectCSR(rng, 30, 30, 0.2)
	x := make([]float64, 30*k)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	full := make([]float64, 30*k)
	m.MulMat(x, full, k)

	const sentinel = -123.5
	y := make([]float64, 30*k)
	for i := range y {
		y[i] = sentinel
	}
	cols := []int{0, 2, 4}
	m.MulMatCols(x, y, k, cols)
	active := map[int]bool{0: true, 2: true, 4: true}
	for i := 0; i < 30; i++ {
		for c := 0; c < k; c++ {
			got := y[i*k+c]
			if active[c] {
				if got != full[i*k+c] {
					t.Fatalf("active col %d row %d: %v != %v", c, i, got, full[i*k+c])
				}
			} else if got != sentinel {
				t.Fatalf("masked col %d row %d overwritten: %v", c, i, got)
			}
		}
	}

	// nil mask is the full product.
	y2 := make([]float64, 30*k)
	m.MulMatCols(x, y2, k, nil)
	for i := range y2 {
		if y2[i] != full[i] {
			t.Fatalf("nil mask differs at %d", i)
		}
	}
}

// The worker-pool SpMM is bit-identical to the serial one for any worker
// count (disjoint row blocks, same per-row order).
func TestMulMatParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, k = 101, 8
	m := randomRectCSR(rng, n, n, 0.1)
	x := make([]float64, n*k)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n*k)
	m.MulMat(x, want, k)
	for _, workers := range []int{1, 2, 3, 7, 0} {
		got := make([]float64, n*k)
		m.MulMatParallel(x, got, k, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: differs at %d: %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMulMatShapePanics(t *testing.T) {
	m := tri4()
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"k0", func() { m.MulMat(make([]float64, 4), make([]float64, 4), 0) }},
		{"shortX", func() { m.MulMat(make([]float64, 7), make([]float64, 8), 2) }},
		{"shortY", func() { m.MulMat(make([]float64, 8), make([]float64, 7), 2) }},
		{"parallel", func() { m.MulMatParallel(make([]float64, 3), make([]float64, 8), 2, 2) }},
		{"cols", func() { m.MulMatCols(make([]float64, 3), make([]float64, 8), 2, []int{0}) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}

package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market text codec. Supports the subset of the format the tooling
// needs: "matrix coordinate real {general|symmetric}" with 1-based indices
// and '%' comments. Symmetric files store only the lower triangle; reading
// mirrors the entries.

// WriteMatrixMarket writes m in coordinate/general form.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, c+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteMatrixMarketSymmetric writes the lower triangle of a symmetric m in
// coordinate/symmetric form.
func WriteMatrixMarketSymmetric(w io.Writer, m *CSR) error {
	l := m.LowerTriangle()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real symmetric\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, l.NNZ()); err != nil {
		return err
	}
	for i := 0; i < l.Rows; i++ {
		cols, vals := l.Row(i)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, c+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a Matrix Market stream into a CSR matrix.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty Matrix Market stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad Matrix Market header %q", sc.Text())
	}
	if header[2] != "coordinate" || header[3] != "real" {
		return nil, fmt.Errorf("sparse: unsupported Matrix Market kind %q (only coordinate real)", sc.Text())
	}
	symmetric := false
	switch header[4] {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("sparse: unsupported Matrix Market symmetry %q", header[4])
	}

	var rows, cols, nnz int
	sized := false
	var coo *COO
	seen := 0
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if !sized {
			if len(fields) != 3 {
				return nil, fmt.Errorf("sparse: line %d: bad size line %q", line, text)
			}
			var err error
			if rows, err = strconv.Atoi(fields[0]); err != nil {
				return nil, fmt.Errorf("sparse: line %d: %v", line, err)
			}
			if cols, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("sparse: line %d: %v", line, err)
			}
			if nnz, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("sparse: line %d: %v", line, err)
			}
			coo = NewCOO(rows, cols)
			sized = true
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("sparse: line %d: bad entry line %q", line, text)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: line %d: %v", line, err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: line %d: %v", line, err)
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("sparse: line %d: %v", line, err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: line %d: index (%d,%d) out of range for %dx%d", line, i, j, rows, cols)
		}
		if symmetric {
			coo.AddSym(i-1, j-1, v)
		} else {
			coo.Add(i-1, j-1, v)
		}
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sized {
		return nil, fmt.Errorf("sparse: missing Matrix Market size line")
	}
	if seen != nnz {
		return nil, fmt.Errorf("sparse: Matrix Market declared %d entries, found %d", nnz, seen)
	}
	return coo.ToCSR(), nil
}

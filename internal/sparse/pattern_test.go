package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPatternOfAndHas(t *testing.T) {
	p := PatternOf(tri4())
	if p.NNZ() != 10 {
		t.Fatalf("NNZ = %d, want 10", p.NNZ())
	}
	if !p.Has(1, 2) || p.Has(0, 3) {
		t.Fatalf("pattern membership wrong")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("pattern invalid: %v", err)
	}
}

func TestPatternFromRowsSortsAndDedups(t *testing.T) {
	p := PatternFromRows(2, 5, [][]int{{3, 1, 3, 0}, {}})
	if got := p.Row(0); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("row 0 = %v, want [0 1 3]", got)
	}
	if len(p.Row(1)) != 0 {
		t.Fatalf("row 1 should be empty")
	}
}

func TestPatternLowerTriangle(t *testing.T) {
	p := PatternOf(tri4()).LowerTriangle()
	for i := 0; i < 4; i++ {
		for _, c := range p.Row(i) {
			if c > i {
				t.Fatalf("lower pattern has (%d,%d)", i, c)
			}
		}
	}
	if p.NNZ() != 7 {
		t.Fatalf("NNZ = %d, want 7", p.NNZ())
	}
}

func TestPatternWithDiagonal(t *testing.T) {
	p := PatternFromRows(3, 3, [][]int{{1}, {0, 1}, {}})
	d := p.WithDiagonal()
	for i := 0; i < 3; i++ {
		if !d.Has(i, i) {
			t.Fatalf("diagonal (%d,%d) missing", i, i)
		}
	}
	if d.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5", d.NNZ())
	}
	// Idempotent.
	if !d.WithDiagonal().Equal(d) {
		t.Fatalf("WithDiagonal not idempotent")
	}
}

func TestPatternUnionContains(t *testing.T) {
	a := PatternFromRows(3, 3, [][]int{{0, 2}, {1}, {}})
	b := PatternFromRows(3, 3, [][]int{{1}, {1, 2}, {0}})
	u := a.Union(b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Fatalf("union does not contain operands")
	}
	if u.NNZ() != 6 {
		t.Fatalf("union NNZ = %d, want 6", u.NNZ())
	}
	if a.Contains(b) {
		t.Fatalf("Contains false positive")
	}
}

func TestThresholdKeepsDiagonalAndLargeEntries(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 0, 4)
	c.Add(1, 1, 4)
	c.Add(2, 2, 4)
	c.AddSym(0, 1, -2)   // |.|=2 vs tau*4
	c.AddSym(1, 2, -0.1) // small
	a := c.ToCSR()
	th := Threshold(a, 0.25) // keep |a_ij| >= 1
	if !th.Has(0, 1) || !th.Has(1, 0) {
		t.Fatalf("large off-diagonal dropped")
	}
	if th.Has(1, 2) || th.Has(2, 1) {
		t.Fatalf("small off-diagonal kept")
	}
	for i := 0; i < 3; i++ {
		if !th.Has(i, i) {
			t.Fatalf("diagonal dropped at %d", i)
		}
	}
	// tau = 0 keeps everything.
	if Threshold(a, 0).NNZ() != a.NNZ() {
		t.Fatalf("tau=0 dropped entries")
	}
}

func TestPatternPowerLevelOne(t *testing.T) {
	a := tri4()
	p := PatternPower(a, 1)
	if !p.Equal(PatternOf(a)) {
		t.Fatalf("level-1 power should equal the matrix pattern (diag already present)")
	}
}

func TestPatternPowerLevelTwoTridiagonal(t *testing.T) {
	// The square of a tridiagonal pattern is pentadiagonal.
	a := tri4()
	p := PatternPower(a, 2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := abs(i-j) <= 2
			if p.Has(i, j) != want {
				t.Fatalf("(%d,%d): has=%v want=%v", i, j, p.Has(i, j), want)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPatternPowerBadLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for level 0")
		}
	}()
	PatternPower(tri4(), 0)
}

func TestRestrictToPattern(t *testing.T) {
	a := tri4()
	p := PatternFromRows(4, 4, [][]int{{0, 3}, {1}, {2}, {3, 0}})
	r := RestrictToPattern(a, p)
	if r.At(0, 0) != 4 || r.At(0, 3) != 0 || r.At(3, 0) != 0 || r.At(3, 3) != 4 {
		t.Fatalf("restriction values wrong: %v", r.Dense())
	}
	if !PatternOf(r).Equal(p) {
		t.Fatalf("restriction pattern differs from requested pattern")
	}
}

// Property: pattern power is monotone in level (each level contains the
// previous one) for patterns with full diagonal.
func TestQuickPatternPowerMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		c := NewCOO(n, n)
		for i := 0; i < n; i++ {
			c.Add(i, i, 1)
		}
		for k := 0; k < n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				c.AddSym(i, j, 1)
			}
		}
		a := c.ToCSR()
		p1 := PatternPower(a, 1)
		p2 := PatternPower(a, 2)
		p3 := PatternPower(a, 3)
		return p2.Contains(p1) && p3.Contains(p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and idempotent.
func TestQuickUnionLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		mk := func() *Pattern {
			rowSets := make([][]int, n)
			for i := range rowSets {
				for j := 0; j < n; j++ {
					if rng.Float64() < 0.4 {
						rowSets[i] = append(rowSets[i], j)
					}
				}
			}
			return PatternFromRows(n, n, rowSets)
		}
		a, b := mk(), mk()
		ab, ba := a.Union(b), b.Union(a)
		return ab.Equal(ba) && a.Union(a).Equal(a) && ab.Contains(a) && ab.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package sparse

import (
	"fmt"
	"sort"
)

// Reordering utilities. Bandwidth-reducing permutations increase the index
// locality the cache-friendly pattern extension feeds on: after RCM,
// graph-adjacent unknowns sit on nearby indices, so cache-line candidates
// are numerically meaningful neighbours. cmd and tests use these to study
// ordering sensitivity (an ablation the paper leaves implicit by using
// mesh-ordered SuiteSparse matrices).

// RCM computes the reverse Cuthill–McKee ordering of a structurally
// symmetric matrix and returns oldToNew: the new index of old row i.
// Disconnected components are processed in order of their lowest-degree
// seed vertex.
func RCM(a *CSR) ([]int, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: RCM on non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		deg[i] = a.RowNNZ(i)
	}
	visited := make([]bool, n)
	order := make([]int, 0, n) // Cuthill–McKee order (reversed at the end)
	var queue []int

	// Seeds: vertices in increasing degree order.
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	sort.Slice(seeds, func(x, y int) bool { return deg[seeds[x]] < deg[seeds[y]] })

	var nbuf []int
	for _, seed := range seeds {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			cols, _ := a.Row(v)
			nbuf = nbuf[:0]
			for _, u := range cols {
				if u != v && !visited[u] {
					visited[u] = true
					nbuf = append(nbuf, u)
				}
			}
			sort.Slice(nbuf, func(x, y int) bool { return deg[nbuf[x]] < deg[nbuf[y]] })
			queue = append(queue, nbuf...)
		}
	}
	oldToNew := make([]int, n)
	for pos, v := range order {
		oldToNew[v] = n - 1 - pos // reverse
	}
	return oldToNew, nil
}

// Bandwidth returns the maximum |i-j| over stored entries (0 for diagonal
// matrices).
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// PermuteSym applies the symmetric permutation P·A·Pᵀ (new index of old
// row/column i is oldToNew[i]).
func PermuteSym(a *CSR, oldToNew []int) *CSR {
	if len(oldToNew) != a.Rows || a.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: PermuteSym permutation length %d for %dx%d matrix",
			len(oldToNew), a.Rows, a.Cols))
	}
	c := NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			c.Add(oldToNew[i], oldToNew[j], vals[k])
		}
	}
	return c.ToCSR()
}

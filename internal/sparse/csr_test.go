package sparse_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

// small deterministic test matrix:
//
//	[ 4 -1  0  0 ]
//	[-1  4 -1  0 ]
//	[ 0 -1  4 -1 ]
//	[ 0  0 -1  4 ]
func tri4() *sparse.CSR {
	c := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 4)
		if i > 0 {
			c.Add(i, i-1, -1)
			c.Add(i-1, i, -1)
		}
	}
	return c.ToCSR()
}

func TestCSRValidate(t *testing.T) {
	m := tri4()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	if got := m.NNZ(); got != 10 {
		t.Fatalf("NNZ = %d, want 10", got)
	}
}

func TestCSRValidateDetectsCorruption(t *testing.T) {
	cases := map[string]func(*sparse.CSR){
		"rowptr-start":    func(m *sparse.CSR) { m.RowPtr[0] = 1 },
		"rowptr-decrease": func(m *sparse.CSR) { m.RowPtr[2] = 0 },
		"rowptr-end":      func(m *sparse.CSR) { m.RowPtr[len(m.RowPtr)-1]-- },
		"col-range":       func(m *sparse.CSR) { m.ColIdx[0] = 99 },
		"col-order":       func(m *sparse.CSR) { m.ColIdx[1], m.ColIdx[2] = m.ColIdx[2], m.ColIdx[1] },
		"val-length":      func(m *sparse.CSR) { m.Val = m.Val[:len(m.Val)-1] },
	}
	for name, corrupt := range cases {
		m := tri4()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestAtAndHas(t *testing.T) {
	m := tri4()
	if got := m.At(1, 0); got != -1 {
		t.Errorf("At(1,0) = %v, want -1", got)
	}
	if got := m.At(0, 3); got != 0 {
		t.Errorf("At(0,3) = %v, want 0", got)
	}
	if !m.Has(2, 3) || m.Has(0, 2) {
		t.Errorf("Has gave wrong structure answers")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := testsets.RandomCSR(rng, rows, cols, 0.3)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, rows)
		m.MulVec(x, y)
		d := m.Dense()
		for i := 0; i < rows; i++ {
			want := 0.0
			for j := 0; j < cols; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("trial %d: y[%d] = %v, want %v", trial, i, y[i], want)
			}
		}
	}
}

func TestMulVecTransMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(15), 1+rng.Intn(15)
		m := testsets.RandomCSR(rng, rows, cols, 0.4)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, cols)
		y2 := make([]float64, cols)
		m.MulVecTrans(x, y1)
		m.Transpose().MulVec(x, y2)
		for j := range y1 {
			if math.Abs(y1[j]-y2[j]) > 1e-12*(1+math.Abs(y2[j])) {
				t.Fatalf("trial %d: column %d: %v vs %v", trial, j, y1[j], y2[j])
			}
		}
	}
}

func TestMulVecParallelMatchesSerial(t *testing.T) {
	// Bit-identity, not approximate equality: the row partition must not
	// change a single rounding.
	rng := rand.New(rand.NewSource(9))
	for _, rows := range []int{1, 17, 400, 3000} {
		m := testsets.RandomCSR(rng, rows, rows, 0.05)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		m.MulVec(x, want)
		for _, w := range []int{1, 2, 8} {
			got := make([]float64, rows)
			m.MulVecParallel(x, got, w)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("rows=%d workers=%d: y[%d] = %v, serial %v", rows, w, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMulVecParallelShapePanics(t *testing.T) {
	m := tri4()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short x")
		}
	}()
	m.MulVecParallel(make([]float64, 3), make([]float64, 4), 2)
}

func TestMulVecShapePanics(t *testing.T) {
	m := tri4()
	for name, fn := range map[string]func(){
		"short-x": func() { m.MulVec(make([]float64, 3), make([]float64, 4)) },
		"short-y": func() { m.MulVec(make([]float64, 4), make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := testsets.RandomCSR(rng, 17, 11, 0.3)
	tt := m.Transpose().Transpose()
	if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
		t.Fatalf("shape changed under double transpose")
	}
	for i := 0; i < m.Rows; i++ {
		ca, va := m.Row(i)
		cb, vb := tt.Row(i)
		if len(ca) != len(cb) {
			t.Fatalf("row %d length changed", i)
		}
		for k := range ca {
			if ca[k] != cb[k] || va[k] != vb[k] {
				t.Fatalf("row %d entry %d changed", i, k)
			}
		}
	}
	if err := tt.Validate(); err != nil {
		t.Fatalf("double transpose invalid: %v", err)
	}
}

func TestTriangles(t *testing.T) {
	m := tri4()
	l, u := m.LowerTriangle(), m.UpperTriangle()
	if l.NNZ() != 7 || u.NNZ() != 7 {
		t.Fatalf("triangle nnz = %d/%d, want 7/7", l.NNZ(), u.NNZ())
	}
	for i := 0; i < 4; i++ {
		cols, _ := l.Row(i)
		for _, c := range cols {
			if c > i {
				t.Fatalf("lower triangle has (%d,%d)", i, c)
			}
		}
	}
	// L + U - diag == A
	d := m.Diagonal()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			sum := l.At(i, j) + u.At(i, j)
			if i == j {
				sum -= d[i]
			}
			if sum != m.At(i, j) {
				t.Fatalf("(%d,%d): L+U-D = %v, want %v", i, j, sum, m.At(i, j))
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	if !tri4().IsSymmetric(1e-14) {
		t.Errorf("tridiagonal SPD matrix reported asymmetric")
	}
	c := sparse.NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(0, 1, 2)
	c.Add(1, 0, 3)
	c.Add(1, 1, 1)
	c.Add(2, 2, 1)
	if c.ToCSR().IsSymmetric(1e-14) {
		t.Errorf("asymmetric matrix reported symmetric")
	}
	// Structurally asymmetric.
	c2 := sparse.NewCOO(3, 3)
	c2.Add(0, 1, 2)
	c2.Add(0, 0, 1)
	c2.Add(1, 1, 1)
	c2.Add(2, 2, 1)
	if c2.ToCSR().IsSymmetric(1e-14) {
		t.Errorf("structurally asymmetric matrix reported symmetric")
	}
}

func TestSubMatrix(t *testing.T) {
	m := tri4()
	rows := []int{1, 2}
	cols := []int{0, 1, 3}
	dst := make([]float64, 6)
	m.SubMatrix(rows, cols, dst)
	want := []float64{-1, 4, 0, 0, -1, -1}
	for k := range want {
		if dst[k] != want[k] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestCOOSumsDuplicates(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2.5)
	c.Add(1, 1, -1)
	m := c.ToCSR()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if got := m.At(0, 0); got != 3.5 {
		t.Fatalf("At(0,0) = %v, want 3.5", got)
	}
}

func TestCOOEmptyRows(t *testing.T) {
	c := sparse.NewCOO(5, 5)
	c.Add(0, 0, 1)
	c.Add(4, 4, 1)
	m := c.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatalf("empty-row matrix invalid: %v", err)
	}
	if m.RowNNZ(2) != 0 {
		t.Fatalf("row 2 should be empty")
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range Add")
		}
	}()
	sparse.NewCOO(2, 2).Add(2, 0, 1)
}

func TestScaleAndNorms(t *testing.T) {
	m := tri4()
	m.Scale(2)
	if got := m.At(0, 0); got != 8 {
		t.Fatalf("scaled At(0,0) = %v, want 8", got)
	}
	if got := m.MaxNorm(); got != 8 {
		t.Fatalf("MaxNorm = %v, want 8", got)
	}
	want := math.Sqrt(4*64 + 6*4)
	if math.Abs(m.FrobeniusNorm()-want) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want %v", m.FrobeniusNorm(), want)
	}
}

// Property: for any matrix built from random entries, (Aᵀ)x via MulVecTrans
// equals dense-transpose multiplication.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := testsets.RandomCSR(rng, rows, cols, 0.35)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, cols)
		m.MulVecTrans(x, y)
		d := m.Dense()
		for j := 0; j < cols; j++ {
			want := 0.0
			for i := 0; i < rows; i++ {
				want += d[i][j] * x[i]
			}
			if math.Abs(y[j]-want) > 1e-10*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is deep — mutating the clone leaves the original intact.
func TestQuickCloneIsDeep(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := testsets.RandomCSR(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.5)
		if m.NNZ() == 0 {
			return true
		}
		c := m.Clone()
		c.Val[0] += 42
		c.ColIdx[0] = 0
		return m.Validate() == nil && (m.NNZ() == 0 || m.Val[0] != c.Val[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSymCSRMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		c := sparse.NewCOO(n, n)
		for i := 0; i < n; i++ {
			c.Add(i, i, 4+rng.Float64())
		}
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				c.AddSym(i, j, rng.NormFloat64())
			}
		}
		a := c.ToCSR()
		s, err := sparse.NewSymCSR(a)
		if err != nil {
			t.Fatal(err)
		}
		if s.NNZStored() >= a.NNZ() && a.NNZ() > n {
			t.Fatalf("symmetric storage %d not below full %d", s.NNZStored(), a.NNZ())
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		a.MulVec(x, y1)
		s.MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12*(1+math.Abs(y1[i])) {
				t.Fatalf("trial %d: y[%d] = %v vs %v", trial, i, y2[i], y1[i])
			}
		}
		// Round trip.
		back := s.ToCSR()
		if back.NNZ() != a.NNZ() {
			t.Fatalf("ToCSR changed nnz: %d vs %d", back.NNZ(), a.NNZ())
		}
	}
}

func TestSymCSRRejectsAsymmetric(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, 1)
	c.Add(0, 1, 2)
	if _, err := sparse.NewSymCSR(c.ToCSR()); err == nil {
		t.Fatal("asymmetric accepted")
	}
	if _, err := sparse.NewSymCSR(sparse.NewCSR(2, 3, 0)); err == nil {
		t.Fatal("rectangular accepted")
	}
}

package sparse

// small deterministic test matrix shared by the in-package tests:
//
//	[ 4 -1  0  0 ]
//	[-1  4 -1  0 ]
//	[ 0 -1  4 -1 ]
//	[ 0  0 -1  4 ]
func tri4() *CSR {
	c := NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 4)
		if i > 0 {
			c.Add(i, i-1, -1)
			c.Add(i-1, i, -1)
		}
	}
	return c.ToCSR()
}

package sparse

import (
	"fmt"
	"math"
	"sort"

	"fsaicomm/internal/parallel"
)

// Pattern is a structure-only sparse matrix: the set of (row, column)
// positions where a matrix is allowed to be nonzero. FSAI-family
// preconditioners are defined on a pattern first and valued second.
type Pattern struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
}

// NNZ returns the number of positions in the pattern.
func (p *Pattern) NNZ() int { return len(p.ColIdx) }

// Row returns the (sorted) column indices of row i as a shared slice.
func (p *Pattern) Row(i int) []int {
	return p.ColIdx[p.RowPtr[i]:p.RowPtr[i+1]]
}

// Has reports whether (i, j) is in the pattern.
func (p *Pattern) Has(i, j int) bool {
	cols := p.Row(i)
	k := sort.SearchInts(cols, j)
	return k < len(cols) && cols[k] == j
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	return &Pattern{
		Rows:   p.Rows,
		Cols:   p.Cols,
		RowPtr: append([]int(nil), p.RowPtr...),
		ColIdx: append([]int(nil), p.ColIdx...),
	}
}

// Validate checks structural invariants of the pattern.
func (p *Pattern) Validate() error {
	m := &CSR{Rows: p.Rows, Cols: p.Cols, RowPtr: p.RowPtr, ColIdx: p.ColIdx,
		Val: make([]float64, len(p.ColIdx))}
	return m.Validate()
}

// PatternOf extracts the sparsity pattern of a CSR matrix.
func PatternOf(m *CSR) *Pattern {
	return &Pattern{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
	}
}

// PatternFromRows builds a pattern from per-row column sets. Each row slice
// is sorted and deduplicated; the input slices are not retained.
func PatternFromRows(rows, cols int, rowSets [][]int) *Pattern {
	if len(rowSets) != rows {
		panic(fmt.Sprintf("sparse: PatternFromRows got %d row sets for %d rows", len(rowSets), rows))
	}
	p := &Pattern{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i, rs := range rowSets {
		set := append([]int(nil), rs...)
		sort.Ints(set)
		prev := -1
		for _, c := range set {
			if c < 0 || c >= cols {
				panic(fmt.Sprintf("sparse: PatternFromRows column %d out of range [0,%d)", c, cols))
			}
			if c != prev {
				p.ColIdx = append(p.ColIdx, c)
				prev = c
			}
		}
		p.RowPtr[i+1] = len(p.ColIdx)
	}
	return p
}

// LowerTriangle restricts the pattern to positions with column ≤ row.
func (p *Pattern) LowerTriangle() *Pattern {
	l := &Pattern{Rows: p.Rows, Cols: p.Cols, RowPtr: make([]int, p.Rows+1)}
	for i := 0; i < p.Rows; i++ {
		for _, c := range p.Row(i) {
			if c <= i {
				l.ColIdx = append(l.ColIdx, c)
			}
		}
		l.RowPtr[i+1] = len(l.ColIdx)
	}
	return l
}

// WithDiagonal returns the pattern with all diagonal positions present.
// FSAI requires g_ii to be in the pattern of every row.
func (p *Pattern) WithDiagonal() *Pattern {
	out := &Pattern{Rows: p.Rows, Cols: p.Cols, RowPtr: make([]int, p.Rows+1)}
	for i := 0; i < p.Rows; i++ {
		row := p.Row(i)
		k := sort.SearchInts(row, i)
		hasDiag := k < len(row) && row[k] == i
		out.ColIdx = append(out.ColIdx, row[:k]...)
		out.ColIdx = append(out.ColIdx, i)
		if hasDiag {
			out.ColIdx = append(out.ColIdx, row[k+1:]...)
		} else {
			out.ColIdx = append(out.ColIdx, row[k:]...)
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// Union returns the position-wise union of two patterns of equal shape.
func (p *Pattern) Union(q *Pattern) *Pattern {
	if p.Rows != q.Rows || p.Cols != q.Cols {
		panic("sparse: Pattern.Union shape mismatch")
	}
	out := &Pattern{Rows: p.Rows, Cols: p.Cols, RowPtr: make([]int, p.Rows+1)}
	for i := 0; i < p.Rows; i++ {
		a, b := p.Row(i), q.Row(i)
		x, y := 0, 0
		for x < len(a) || y < len(b) {
			switch {
			case y == len(b) || (x < len(a) && a[x] < b[y]):
				out.ColIdx = append(out.ColIdx, a[x])
				x++
			case x == len(a) || b[y] < a[x]:
				out.ColIdx = append(out.ColIdx, b[y])
				y++
			default:
				out.ColIdx = append(out.ColIdx, a[x])
				x++
				y++
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// Contains reports whether every position of q is also in p.
func (p *Pattern) Contains(q *Pattern) bool {
	if p.Rows != q.Rows || p.Cols != q.Cols {
		return false
	}
	for i := 0; i < p.Rows; i++ {
		a, b := p.Row(i), q.Row(i)
		x := 0
		for _, c := range b {
			for x < len(a) && a[x] < c {
				x++
			}
			if x == len(a) || a[x] != c {
				return false
			}
		}
	}
	return true
}

// Equal reports whether two patterns contain exactly the same positions.
func (p *Pattern) Equal(q *Pattern) bool {
	return p.NNZ() == q.NNZ() && p.Contains(q)
}

// Threshold returns the matrix Ã obtained from A by dropping off-diagonal
// entries with |a_ij| < tau * sqrt(|a_ii| * |a_jj|) (a scale-independent
// comparison, Chow 2001). Diagonal entries are always kept. tau = 0 keeps
// every stored entry.
func Threshold(a *CSR, tau float64) *CSR {
	d := a.Diagonal()
	out := NewCSR(a.Rows, a.Cols, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			keep := c == i
			if !keep {
				scale := math.Sqrt(math.Abs(d[i]) * math.Abs(d[c]))
				keep = math.Abs(vals[k]) >= tau*scale
			}
			if keep {
				out.ColIdx = append(out.ColIdx, c)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// PatternPower computes the sparsity pattern of Ãᴺ symbolically, using all
// available cores. level must be ≥ 1; level 1 is the pattern of Ã itself.
// The result always includes the diagonal. Symbolic row-by-row expansion
// with a visited scratch keeps the cost proportional to the output size
// times the average row degree.
func PatternPower(a *CSR, level int) *Pattern {
	return PatternPowerWorkers(a, level, 0)
}

// PatternPowerWorkers is PatternPower with an explicit worker count (<= 0
// selects GOMAXPROCS). Each output row depends only on input rows, so row
// blocks expand independently with private scratch and are concatenated in
// order: the result is bit-identical for every worker count.
func PatternPowerWorkers(a *CSR, level, workers int) *Pattern {
	if level < 1 {
		panic(fmt.Sprintf("sparse: PatternPower level %d < 1", level))
	}
	base := PatternOf(a).WithDiagonal()
	cur := base
	for l := 1; l < level; l++ {
		cur = symbolicProductWorkers(cur, base, workers)
	}
	return cur
}

// expandRow appends the sorted column set of row i of P*Q to scratch[:0],
// using mark (len q.Cols, stamped with i) to deduplicate.
func expandRow(p, q *Pattern, i int, mark []int, scratch []int) []int {
	scratch = scratch[:0]
	for _, k := range p.Row(i) {
		for _, j := range q.Row(k) {
			if mark[j] != i {
				mark[j] = i
				scratch = append(scratch, j)
			}
		}
	}
	sort.Ints(scratch)
	return scratch
}

// symbolicProduct returns the pattern of P*Q for square patterns (serial).
func symbolicProduct(p, q *Pattern) *Pattern {
	out := &Pattern{Rows: p.Rows, Cols: q.Cols, RowPtr: make([]int, p.Rows+1)}
	mark := make([]int, q.Cols)
	for i := range mark {
		mark[i] = -1
	}
	var scratch []int
	for i := 0; i < p.Rows; i++ {
		scratch = expandRow(p, q, i, mark, scratch)
		out.ColIdx = append(out.ColIdx, scratch...)
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// symbolicProductWorkers computes the pattern of P*Q over contiguous row
// blocks in parallel. Each block gets private mark/scratch buffers and
// produces an independent fragment; fragments are stitched in block order,
// so the output is identical to the serial product.
func symbolicProductWorkers(p, q *Pattern, workers int) *Pattern {
	w := parallel.Workers(workers)
	if w == 1 || p.Rows < 256 {
		return symbolicProduct(p, q)
	}
	nblocks := 4 * w
	if nblocks > p.Rows {
		nblocks = p.Rows
	}
	type fragment struct {
		colIdx []int
		rowLen []int
	}
	frags := make([]fragment, nblocks)
	bounds := func(b int) (int, int) {
		lo := b * p.Rows / nblocks
		hi := (b + 1) * p.Rows / nblocks
		return lo, hi
	}
	tasks := make([]func() error, nblocks)
	for b := 0; b < nblocks; b++ {
		b := b
		tasks[b] = func() error {
			lo, hi := bounds(b)
			mark := make([]int, q.Cols)
			for i := range mark {
				mark[i] = -1
			}
			f := &frags[b]
			f.rowLen = make([]int, 0, hi-lo)
			var scratch []int
			for i := lo; i < hi; i++ {
				scratch = expandRow(p, q, i, mark, scratch)
				f.colIdx = append(f.colIdx, scratch...)
				f.rowLen = append(f.rowLen, len(scratch))
			}
			return nil
		}
	}
	// Tasks only write their own fragment and cannot fail.
	_ = parallel.Run(w, tasks...)

	out := &Pattern{Rows: p.Rows, Cols: q.Cols, RowPtr: make([]int, p.Rows+1)}
	total := 0
	for b := range frags {
		total += len(frags[b].colIdx)
	}
	out.ColIdx = make([]int, 0, total)
	row := 0
	for b := range frags {
		out.ColIdx = append(out.ColIdx, frags[b].colIdx...)
		for _, l := range frags[b].rowLen {
			out.RowPtr[row+1] = out.RowPtr[row] + l
			row++
		}
	}
	return out
}

// RestrictToPattern returns a CSR matrix with exactly the positions of p,
// valued from a where a has an entry and zero elsewhere.
func RestrictToPattern(a *CSR, p *Pattern) *CSR {
	if a.Rows != p.Rows || a.Cols != p.Cols {
		panic("sparse: RestrictToPattern shape mismatch")
	}
	out := &CSR{
		Rows:   p.Rows,
		Cols:   p.Cols,
		RowPtr: append([]int(nil), p.RowPtr...),
		ColIdx: append([]int(nil), p.ColIdx...),
		Val:    make([]float64, p.NNZ()),
	}
	for i := 0; i < p.Rows; i++ {
		acols, avals := a.Row(i)
		pcols := p.Row(i)
		x := 0
		for k, c := range pcols {
			for x < len(acols) && acols[x] < c {
				x++
			}
			if x < len(acols) && acols[x] == c {
				out.Val[out.RowPtr[i]+k] = avals[x]
			}
		}
	}
	return out
}

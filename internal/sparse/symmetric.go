package sparse

import "fmt"

// SymCSR stores a symmetric matrix by its lower triangle only (diagonal
// separated), halving the matrix memory stream of SpMV — the storage
// optimization serial FSAI codes use for A. The distributed solver keeps
// full CSR (halo contributions of the implicit upper triangle would cross
// ranks); SymCSR serves the serial paths and the kernel benchmarks.
type SymCSR struct {
	N      int
	Diag   []float64
	RowPtr []int // strictly-lower entries per row
	ColIdx []int
	Val    []float64
}

// NewSymCSR builds symmetric storage from a (numerically symmetric) CSR
// matrix. Returns an error when the matrix is not square or an asymmetric
// entry pair is detected.
func NewSymCSR(a *CSR) (*SymCSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: SymCSR from %dx%d matrix", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-12) {
		return nil, fmt.Errorf("sparse: SymCSR requires a symmetric matrix")
	}
	s := &SymCSR{
		N:      a.Rows,
		Diag:   a.Diagonal(),
		RowPtr: make([]int, a.Rows+1),
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if c < i {
				s.ColIdx = append(s.ColIdx, c)
				s.Val = append(s.Val, vals[k])
			}
		}
		s.RowPtr[i+1] = len(s.ColIdx)
	}
	return s, nil
}

// NNZStored returns the stored entry count (diagonal + strict lower).
func (s *SymCSR) NNZStored() int { return s.N + len(s.ColIdx) }

// MulVec computes y = A·x using the symmetric storage: each stored
// off-diagonal entry contributes to two output components.
func (s *SymCSR) MulVec(x, y []float64) {
	if len(x) != s.N || len(y) != s.N {
		panic(fmt.Sprintf("sparse: SymCSR.MulVec shape mismatch: n=%d, len(x)=%d, len(y)=%d",
			s.N, len(x), len(y)))
	}
	for i := 0; i < s.N; i++ {
		y[i] = s.Diag[i] * x[i]
	}
	for i := 0; i < s.N; i++ {
		xi := x[i]
		sum := 0.0
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			j := s.ColIdx[k]
			v := s.Val[k]
			sum += v * x[j]
			y[j] += v * xi
		}
		y[i] += sum
	}
}

// ToCSR expands back to full CSR storage.
func (s *SymCSR) ToCSR() *CSR {
	c := NewCOO(s.N, s.N)
	for i := 0; i < s.N; i++ {
		if s.Diag[i] != 0 {
			c.Add(i, i, s.Diag[i])
		}
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			c.AddSym(i, s.ColIdx[k], s.Val[k])
		}
	}
	return c.ToCSR()
}

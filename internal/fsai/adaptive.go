package fsai

import (
	"fmt"
	"math"
	"sort"

	"fsaicomm/internal/dense"
	"fsaicomm/internal/sparse"
)

// Adaptive (dynamic-pattern) FSAI in the spirit of Huckle's FSPAI: instead
// of fixing the sparsity pattern a priori, each row grows its own pattern
// greedily by the largest entries of the row residual A·g − e. The paper's
// related-work section positions such dynamic methods as more powerful but
// costlier and harder to parallelize than static patterns with cache-aware
// extensions; BuildAdaptive exists as that comparison point (see the
// BenchmarkAdaptiveSetup ablation).

// AdaptiveOptions configures BuildAdaptive.
type AdaptiveOptions struct {
	// Steps is the number of pattern-growth rounds per row. 0 reduces to a
	// diagonal (Jacobi-like) factor.
	Steps int
	// AddPerStep is how many candidate indices join the pattern each round.
	AddPerStep int
	// MaxRow caps the final per-row pattern size.
	MaxRow int
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.Steps <= 0 {
		o.Steps = 3
	}
	if o.AddPerStep <= 0 {
		o.AddPerStep = 4
	}
	if o.MaxRow <= 0 {
		o.MaxRow = 64
	}
	return o
}

// BuildAdaptive computes an FSAI factor with a per-row adaptively grown
// pattern. a must be SPD with a symmetric pattern (candidates are found
// through A's rows).
func BuildAdaptive(a *sparse.CSR, opt AdaptiveOptions) (*sparse.CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("fsai: adaptive build on non-square matrix")
	}
	opt = opt.withDefaults()
	n := a.Rows
	rowSets := make([][]int, n)
	rowVals := make([][]float64, n)

	var buf, rhs []float64
	for i := 0; i < n; i++ {
		// Start from the diagonal alone.
		set := []int{i}
		var g []float64
		for step := 0; ; step++ {
			m := len(set)
			if cap(buf) < m*m {
				buf = make([]float64, 2*m*m)
				rhs = make([]float64, 2*m)
			}
			sub := buf[:m*m]
			a.SubMatrix(set, set, sub)
			y := rhs[:m]
			for k := range y {
				y[k] = 0
			}
			y[m-1] = 1 // diagonal position: set is sorted and ends at i
			if err := dense.SolveSPD(sub, m, y); err != nil {
				return nil, fmt.Errorf("fsai: adaptive row %d: %w", i, err)
			}
			yd := y[m-1]
			if yd <= 0 || math.IsNaN(yd) {
				return nil, fmt.Errorf("fsai: adaptive row %d produced non-positive diagonal", i)
			}
			scale := 1 / math.Sqrt(yd)
			g = append(g[:0], y...)
			for k := range g {
				g[k] *= scale
			}
			if step == opt.Steps || len(set) >= opt.MaxRow {
				break
			}
			// Residual-driven candidates: score j < i, j ∉ set by
			// |(A·g)_j| = |Σ_k∈set A[j][k]·g[k]|; A symmetric, so walk the
			// rows of the current set.
			score := map[int]float64{}
			inSet := map[int]bool{}
			for _, k := range set {
				inSet[k] = true
			}
			for ki, k := range set {
				cols, vals := a.Row(k)
				for t, j := range cols {
					if j >= i || inSet[j] {
						continue
					}
					score[j] += vals[t] * g[ki]
				}
			}
			type cand struct {
				j int
				s float64
			}
			cands := make([]cand, 0, len(score))
			for j, s := range score {
				cands = append(cands, cand{j, math.Abs(s)})
			}
			if len(cands) == 0 {
				break
			}
			sort.Slice(cands, func(x, y int) bool {
				if cands[x].s != cands[y].s {
					return cands[x].s > cands[y].s
				}
				return cands[x].j < cands[y].j
			})
			add := opt.AddPerStep
			if add > len(cands) {
				add = len(cands)
			}
			grew := false
			for _, cd := range cands[:add] {
				if cd.s == 0 {
					break
				}
				set = append(set, cd.j)
				grew = true
			}
			if !grew {
				break
			}
			sort.Ints(set)
		}
		rowSets[i] = set
		rowVals[i] = append([]float64(nil), g...)
	}

	out := sparse.NewCSR(n, n, 0)
	for i := 0; i < n; i++ {
		out.ColIdx = append(out.ColIdx, rowSets[i]...)
		out.Val = append(out.Val, rowVals[i]...)
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out, nil
}

package fsai

import (
	"testing"

	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/vecops"
)

// The batched FSAI apply drives the serial batched CG to bit-identical
// per-column results against the scalar Split path — the real
// preconditioner exercising SplitBatch end to end.
func TestSplitBatchCGMatchesScalar(t *testing.T) {
	a := matgen.Poisson2D(11, 10)
	n := a.Rows
	g, err := Build(a, LowerPattern(a))
	if err != nil {
		t.Fatal(err)
	}
	gt := g.Transpose()

	const k = 3
	rhs := make([][]float64, k)
	for c := range rhs {
		rhs[c] = matgen.RandomRHS(n, int64(20+c), a.MaxNorm())
	}
	opt := krylov.Options{Tol: 1e-9}

	want := make([][]float64, k)
	wantSt := make([]krylov.Stats, k)
	for c := range rhs {
		want[c] = make([]float64, n)
		st, err := krylov.CG(a, rhs[c], want[c], krylov.NewSplit(g, gt), opt, nil)
		if err != nil {
			t.Fatalf("scalar col %d: %v", c, err)
		}
		wantSt[c] = st
	}

	b := make([]float64, n*k)
	for c := range rhs {
		vecops.PackColumn(b, rhs[c], k, c)
	}
	x := make([]float64, n*k)
	bs, err := krylov.CGBatch(a, b, x, NewSplitBatch(g, gt, k), k, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < k; c++ {
		got := make([]float64, n)
		vecops.UnpackColumn(got, x, k, c)
		for i := range got {
			if got[i] != want[c][i] {
				t.Fatalf("col %d row %d: batch %v != scalar %v", c, i, got[i], want[c][i])
			}
		}
		if bs.Cols[c].Iterations != wantSt[c].Iterations {
			t.Fatalf("col %d iterations: %d != %d", c, bs.Cols[c].Iterations, wantSt[c].Iterations)
		}
	}
}

// ApplyBatch on a mask computes only the listed columns, with the scalar
// flop bill per active column.
func TestSplitBatchMaskAndFlops(t *testing.T) {
	a := matgen.Poisson2D(5, 5)
	n := a.Rows
	g, err := Build(a, LowerPattern(a))
	if err != nil {
		t.Fatal(err)
	}
	gt := g.Transpose()
	const k = 3
	sb := NewSplitBatch(g, gt, k)
	r := make([]float64, n*k)
	for i := range r {
		r[i] = float64(i%9) - 4
	}
	z := make([]float64, n*k)
	const sentinel = 99.5
	for i := range z {
		z[i] = sentinel
	}
	var fc vecops.FlopCounter
	sb.ApplyBatch(r, z, k, []int{1}, &fc)
	wantFlops := 2 * int64(g.NNZ()+gt.NNZ())
	if fc.Count() != wantFlops {
		t.Fatalf("flops = %d, want %d", fc.Count(), wantFlops)
	}
	scalar := krylov.NewSplit(g, gt)
	rc := make([]float64, n)
	zc := make([]float64, n)
	vecops.UnpackColumn(rc, r, k, 1)
	scalar.Apply(rc, zc, nil)
	for i := 0; i < n; i++ {
		if z[i*k+1] != zc[i] {
			t.Fatalf("active col row %d: %v != %v", i, z[i*k+1], zc[i])
		}
		if z[i*k] != sentinel || z[i*k+2] != sentinel {
			t.Fatalf("masked column overwritten at row %d", i)
		}
	}
}

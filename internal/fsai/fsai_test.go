package fsai

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

const testTimeout = 20 * time.Second

func TestLowerPatternProperties(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	s := LowerPattern(a)
	for i := 0; i < s.Rows; i++ {
		cols := s.Row(i)
		if len(cols) == 0 || cols[len(cols)-1] != i {
			t.Fatalf("row %d does not end at diagonal: %v", i, cols)
		}
		for _, c := range cols {
			if c > i {
				t.Fatalf("row %d has upper entry %d", i, c)
			}
		}
	}
}

func TestPowerPatternLevels(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	p1 := PowerPattern(a, 1, 0)
	p2 := PowerPattern(a, 2, 0)
	if !p1.Equal(LowerPattern(a)) {
		t.Fatal("level 1 differs from LowerPattern")
	}
	if !p2.Contains(p1) || p2.NNZ() <= p1.NNZ() {
		t.Fatalf("level 2 pattern (%d) should strictly contain level 1 (%d)", p2.NNZ(), p1.NNZ())
	}
	// Thresholding shrinks the pattern.
	pt := PowerPattern(matgen.CFDDiffusion(8, 8, 1000, 1), 2, 0.3)
	pf := PowerPattern(matgen.CFDDiffusion(8, 8, 1000, 1), 2, 0)
	if pt.NNZ() >= pf.NNZ() {
		t.Fatalf("thresholded pattern %d not smaller than full %d", pt.NNZ(), pf.NNZ())
	}
}

// gagt computes diag(G·A·Gᵀ) densely for verification.
func diagGAGT(a, g *sparse.CSR) []float64 {
	n := a.Rows
	out := make([]float64, n)
	w := make([]float64, n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := range row {
			row[k] = 0
		}
		cols, vals := g.Row(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
		a.MulVec(row, w)
		s := 0.0
		for k, c := range cols {
			s += vals[k] * w[c]
		}
		_ = cols
		out[i] = s
	}
	return out
}

func TestBuildNormalization(t *testing.T) {
	// diag(G·A·Gᵀ) must be 1 for the exact minimizer normalization.
	a := matgen.Poisson2D(5, 5)
	g, err := Build(a, LowerPattern(a))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range diagGAGT(a, g) {
		if math.Abs(d-1) > 1e-10 {
			t.Fatalf("diag(GAGᵀ)[%d] = %v, want 1", i, d)
		}
	}
}

func TestBuildFullPatternGivesExactInverse(t *testing.T) {
	// With the full lower-triangular pattern of a dense matrix, G is the
	// exact inverse Cholesky factor: GᵀG = A⁻¹.
	rng := rand.New(rand.NewSource(8))
	n := 12
	// Dense SPD matrix.
	b := make([]float64, n*n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b[i*n+k] * b[j*n+k]
			}
			if i == j {
				s += float64(n)
			}
			coo.Add(i, j, s)
		}
	}
	a := coo.ToCSR()
	g, err := Build(a, LowerPattern(a))
	if err != nil {
		t.Fatal(err)
	}
	// Check GᵀG·A ≈ I by applying to basis vectors.
	gt := g.Transpose()
	e := make([]float64, n)
	w1 := make([]float64, n)
	w2 := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := range e {
			e[k] = 0
		}
		e[j] = 1
		a.MulVec(e, w1)
		g.MulVec(w1, w2)
		gt.MulVec(w2, w1)
		for i := 0; i < n; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(w1[i]-want) > 1e-8 {
				t.Fatalf("(GᵀGA)[%d][%d] = %v, want %v", i, j, w1[i], want)
			}
		}
	}
}

func TestBuildRejectsBadPattern(t *testing.T) {
	a := matgen.Poisson2D(3, 3)
	// Missing diagonal in row 0.
	p := sparse.PatternFromRows(9, 9, [][]int{
		{}, {0, 1}, {2}, {3}, {4}, {5}, {6}, {7}, {8},
	})
	if _, err := Build(a, p); err == nil {
		t.Fatal("empty row accepted")
	}
	// Upper-triangular junk: row ends beyond the diagonal.
	p2 := sparse.PatternFromRows(9, 9, [][]int{
		{0, 5}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8},
	})
	if _, err := Build(a, p2); err == nil {
		t.Fatal("row not ending at diagonal accepted")
	}
}

func TestBuildShapeMismatch(t *testing.T) {
	a := matgen.Poisson2D(3, 3)
	p := LowerPattern(matgen.Poisson2D(2, 2))
	if _, err := Build(a, p); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := Build(sparse.NewCSR(2, 3, 0), p); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestFSAIReducesCGIterations(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    *sparse.CSR
	}{
		{"poisson", matgen.Poisson2D(20, 20)},
		{"thermal", matgen.ThermalAniso(16, 16, 1, 50)},
		{"cfd", matgen.CFDDiffusion(14, 14, 500, 2)},
		{"elasticity", matgen.Elasticity2D(8, 8, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.a
			b := matgen.RandomRHS(a.Rows, 3, a.MaxNorm())
			x1 := make([]float64, a.Rows)
			st1, err := krylov.CG(a, b, x1, nil, krylov.Options{MaxIter: 100000}, nil)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Build(a, LowerPattern(a))
			if err != nil {
				t.Fatal(err)
			}
			x2 := make([]float64, a.Rows)
			st2, err := krylov.CG(a, b, x2, krylov.NewSplit(g, g.Transpose()), krylov.Options{MaxIter: 100000}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if st2.Iterations >= st1.Iterations {
				t.Fatalf("FSAI %d iters not below plain CG %d", st2.Iterations, st1.Iterations)
			}
		})
	}
}

func TestFilterPatternAndCount(t *testing.T) {
	a := matgen.CFDDiffusion(8, 8, 100, 4)
	g, err := Build(a, PowerPattern(a, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0, 0.01, 0.1, 0.5} {
		p := FilterPattern(g, f)
		if int64(p.NNZ()) != CountFiltered(g, f) {
			t.Fatalf("filter %v: pattern %d != count %d", f, p.NNZ(), CountFiltered(g, f))
		}
		// Diagonal always survives.
		for i := 0; i < p.Rows; i++ {
			if !p.Has(i, i) {
				t.Fatalf("filter %v dropped diagonal %d", f, i)
			}
		}
	}
	// Monotonicity: larger filter, fewer entries.
	if CountFiltered(g, 0.01) < CountFiltered(g, 0.1) {
		t.Fatal("filter not monotone")
	}
	if FilterPattern(g, 0).NNZ() != g.NNZ() {
		t.Fatal("filter 0 dropped entries")
	}
}

func TestBuildFilteredStillPreconditioners(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	s := PowerPattern(a, 2, 0)
	g, err := BuildFiltered(a, s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b := matgen.RandomRHS(a.Rows, 5, a.MaxNorm())
	x := make([]float64, a.Rows)
	st, err := krylov.CG(a, b, x, krylov.NewSplit(g, g.Transpose()), krylov.Options{}, nil)
	if err != nil || !st.Converged {
		t.Fatalf("filtered FSAI failed: %+v %v", st, err)
	}
}

func TestBuildDistMatchesSerial(t *testing.T) {
	a := matgen.Poisson2D(9, 8)
	n := a.Rows
	gSerial, err := Build(a, LowerPattern(a))
	if err != nil {
		t.Fatal(err)
	}
	for _, nranks := range []int{1, 2, 4} {
		l := distmat.NewUniformLayout(n, nranks)
		got := make([]*sparse.CSR, nranks)
		_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(a, lo, hi)
			s := localLowerPattern(aRows, lo)
			g, err := BuildDist(c, l, aRows, s)
			if err != nil {
				return err
			}
			got[c.Rank()] = g
			return nil
		})
		if err != nil {
			t.Fatalf("nranks=%d: %v", nranks, err)
		}
		for r := 0; r < nranks; r++ {
			lo, hi := l.Range(r)
			for li := 0; li < hi-lo; li++ {
				gc, gv := got[r].Row(li)
				wc, wv := gSerial.Row(lo + li)
				if len(gc) != len(wc) {
					t.Fatalf("nranks=%d row %d: %d entries, want %d", nranks, lo+li, len(gc), len(wc))
				}
				for k := range wc {
					if gc[k] != wc[k] || math.Abs(gv[k]-wv[k]) > 1e-12*(1+math.Abs(wv[k])) {
						t.Fatalf("nranks=%d row %d entry %d: (%d,%g) vs (%d,%g)",
							nranks, lo+li, k, gc[k], gv[k], wc[k], wv[k])
					}
				}
			}
		}
	}
}

// localLowerPattern builds the DistRows lower pattern from a rank's rows.
func localLowerPattern(aRows *sparse.CSR, lo int) *DistRows {
	rowSets := make([][]int, aRows.Rows)
	for li := 0; li < aRows.Rows; li++ {
		gi := lo + li
		cols, _ := aRows.Row(li)
		var set []int
		hasDiag := false
		for _, c := range cols {
			if c <= gi {
				set = append(set, c)
				if c == gi {
					hasDiag = true
				}
			}
		}
		if !hasDiag {
			set = append(set, gi)
		}
		rowSets[li] = set
	}
	return &DistRows{
		Lo: lo, Hi: lo + aRows.Rows,
		Pattern: sparse.PatternFromRows(aRows.Rows, aRows.Cols, rowSets),
	}
}

func TestFilterDistMatchesSerial(t *testing.T) {
	a := matgen.CFDDiffusion(7, 7, 50, 6)
	n := a.Rows
	g, err := Build(a, LowerPattern(a))
	if err != nil {
		t.Fatal(err)
	}
	wantP := FilterPattern(g, 0.05)
	// Slice g's rows as two "ranks" and filter distributedly.
	l := distmat.NewUniformLayout(n, 2)
	for r := 0; r < 2; r++ {
		lo, hi := l.Range(r)
		gRows := distmat.ExtractLocalRows(g, lo, hi)
		fd := FilterDist(gRows, lo, hi, 0.05, nil)
		if cf := CountFilteredDist(gRows, lo, 0.05, nil); cf != int64(fd.Pattern.NNZ()) {
			t.Fatalf("count %d != pattern %d", cf, fd.Pattern.NNZ())
		}
		for li := 0; li < hi-lo; li++ {
			want := wantP.Row(lo + li)
			got := fd.Pattern.Row(li)
			if len(want) != len(got) {
				t.Fatalf("row %d: %v vs %v", lo+li, got, want)
			}
			for k := range want {
				if want[k] != got[k] {
					t.Fatalf("row %d: %v vs %v", lo+li, got, want)
				}
			}
		}
	}
}

// Property: FSAI on random SPD diagonally-dominant matrices always yields
// diag(GAGᵀ)=1 and a convergent preconditioned CG.
func TestQuickFSAINormalized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		a := testsets.RandomSPD(rng, n, testsets.SPDOptions{
			Diag:      4,
			Couplings: 2 * n,
			Off:       func(r *rand.Rand) float64 { return 0.3 * r.NormFloat64() },
		})
		g, err := Build(a, LowerPattern(a))
		if err != nil {
			return false
		}
		for _, d := range diagGAGT(a, g) {
			if math.Abs(d-1) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerPatternDistMatchesSerial(t *testing.T) {
	a := matgen.CFDDiffusion(9, 9, 50, 3)
	n := a.Rows
	for _, tc := range []struct {
		level int
		tau   float64
	}{
		{1, 0}, {2, 0}, {3, 0}, {2, 0.2},
	} {
		want := PowerPattern(a, tc.level, tc.tau)
		for _, nranks := range []int{1, 3} {
			l := distmat.NewUniformLayout(n, nranks)
			got := make([]*DistRows, nranks)
			_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
				lo, hi := l.Range(c.Rank())
				aRows := distmat.ExtractLocalRows(a, lo, hi)
				d, err := PowerPatternDist(c, l, aRows, lo, hi, tc.level, tc.tau)
				if err != nil {
					return err
				}
				got[c.Rank()] = d
				return nil
			})
			if err != nil {
				t.Fatalf("level=%d tau=%g nranks=%d: %v", tc.level, tc.tau, nranks, err)
			}
			for r := 0; r < nranks; r++ {
				lo, hi := l.Range(r)
				for li := 0; li < hi-lo; li++ {
					wr := want.Row(lo + li)
					gr := got[r].Pattern.Row(li)
					if len(wr) != len(gr) {
						t.Fatalf("level=%d tau=%g nranks=%d row %d: got %v want %v",
							tc.level, tc.tau, nranks, lo+li, gr, wr)
					}
					for k := range wr {
						if wr[k] != gr[k] {
							t.Fatalf("level=%d tau=%g nranks=%d row %d: got %v want %v",
								tc.level, tc.tau, nranks, lo+li, gr, wr)
						}
					}
				}
			}
		}
	}
}

func TestPowerPatternDistLevelValidation(t *testing.T) {
	a := matgen.Poisson2D(4, 4)
	l := distmat.NewUniformLayout(a.Rows, 1)
	_, err := simmpi.Run(1, testTimeout, func(c *simmpi.Comm) error {
		_, err := PowerPatternDist(c, l, a, 0, a.Rows, 0, 0)
		return err
	})
	if err == nil {
		t.Fatal("level 0 accepted")
	}
}

func TestLevel2PatternImprovesPreconditioner(t *testing.T) {
	a := matgen.Poisson2D(16, 16)
	g1, err := Build(a, PowerPattern(a, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Build(a, PowerPattern(a, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	b := matgen.RandomRHS(a.Rows, 9, a.MaxNorm())
	it := func(g *sparse.CSR) int {
		x := make([]float64, a.Rows)
		st, err := krylov.CG(a, b, x, krylov.NewSplit(g, g.Transpose()), krylov.Options{MaxIter: 100000}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st.Iterations
	}
	if i1, i2 := it(g1), it(g2); i2 >= i1 {
		t.Fatalf("level-2 pattern (%d iters) not better than level-1 (%d)", i2, i1)
	}
}

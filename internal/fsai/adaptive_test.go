package fsai

import (
	"testing"

	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/sparse"
)

func itersWith(t *testing.T, a *sparse.CSR, g *sparse.CSR) int {
	t.Helper()
	b := matgen.RandomRHS(a.Rows, 7, a.MaxNorm())
	x := make([]float64, a.Rows)
	st, err := krylov.CG(a, b, x, krylov.NewSplit(g, g.Transpose()), krylov.Options{MaxIter: 100000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st.Iterations
}

func TestAdaptiveBeatsDiagonalAndImprovesWithSteps(t *testing.T) {
	a := matgen.Poisson2D(16, 16)
	g0, err := BuildAdaptive(a, AdaptiveOptions{Steps: 1, AddPerStep: 2})
	if err != nil {
		t.Fatal(err)
	}
	g3, err := BuildAdaptive(a, AdaptiveOptions{Steps: 4, AddPerStep: 4})
	if err != nil {
		t.Fatal(err)
	}
	i0, i3 := itersWith(t, a, g0), itersWith(t, a, g3)
	if i3 >= i0 {
		t.Fatalf("more adaptive steps did not help: %d vs %d", i3, i0)
	}
	if g3.NNZ() <= g0.NNZ() {
		t.Fatalf("pattern did not grow: %d vs %d", g3.NNZ(), g0.NNZ())
	}
}

func TestAdaptiveCompetitiveWithStaticFSAI(t *testing.T) {
	// With a decent budget, the dynamic pattern should at least match the
	// static lower-triangle FSAI in iterations (the power of dynamic
	// patterns the related work claims), at a much higher setup cost.
	a := matgen.CFDDiffusion(14, 14, 200, 5)
	gs, err := Build(a, LowerPattern(a))
	if err != nil {
		t.Fatal(err)
	}
	ga, err := BuildAdaptive(a, AdaptiveOptions{Steps: 5, AddPerStep: 4})
	if err != nil {
		t.Fatal(err)
	}
	is, ia := itersWith(t, a, gs), itersWith(t, a, ga)
	if ia > is+is/10 {
		t.Fatalf("adaptive (%d iters) much worse than static FSAI (%d)", ia, is)
	}
}

func TestAdaptiveRowPatternsLowerTriangular(t *testing.T) {
	a := matgen.Elasticity2D(6, 6, 2)
	g, err := BuildAdaptive(a, AdaptiveOptions{Steps: 3, AddPerStep: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Rows; i++ {
		cols, _ := g.Row(i)
		if len(cols) == 0 || cols[len(cols)-1] != i {
			t.Fatalf("row %d does not end at diagonal", i)
		}
	}
}

func TestAdaptiveMaxRowCap(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	g, err := BuildAdaptive(a, AdaptiveOptions{Steps: 10, AddPerStep: 8, MaxRow: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Rows; i++ {
		if g.RowNNZ(i) > 6+8 { // one growth round may overshoot the cap
			t.Fatalf("row %d has %d entries, cap 6", i, g.RowNNZ(i))
		}
	}
}

func TestAdaptiveRejectsRectangular(t *testing.T) {
	if _, err := BuildAdaptive(sparse.NewCSR(2, 3, 0), AdaptiveOptions{}); err == nil {
		t.Fatal("rectangular accepted")
	}
}

package fsai

import (
	"fmt"
	"math"
	"sort"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

// PowerPatternDist computes this rank's rows of the level-N FSAI pattern —
// the lower triangle of pattern(Ã^N) with guaranteed diagonal, where Ã
// drops entries below tau in the scale-independent comparison
// |a_ij| < tau·sqrt(|a_ii|·|a_jj|) — on a distributed matrix. aRows holds
// the rank's rows of A with global columns over [lo, hi).
//
// The symbolic expansion needs remote pattern rows: level k+1 unions, for
// every column of the current pattern, that column's row of Ã. Those rows
// are fetched from their owners once per level (setup-phase communication,
// like the paper's construction of higher sparse levels). Collective.
func PowerPatternDist(c *simmpi.Comm, l *distmat.Layout, aRows *sparse.CSR, lo, hi, level int, tau float64) (*DistRows, error) {
	if level < 1 {
		return nil, fmt.Errorf("fsai: pattern level %d < 1", level)
	}
	// Thresholding needs the global diagonal for the scale-independent
	// comparison; gather it once.
	nl := hi - lo
	localDiag := make([]float64, nl)
	for li := 0; li < nl; li++ {
		cols, vals := aRows.Row(li)
		for k, col := range cols {
			if col == lo+li {
				localDiag[li] = vals[k]
			}
		}
	}
	diag := c.AllgatherFloats(localDiag)

	// Thresholded local rows of Ã (pattern only), diagonal guaranteed.
	at := thresholdRows(aRows, lo, diag, tau)

	// cur[li] = sorted global columns of pattern row li.
	cur := make([][]int, nl)
	for li := 0; li < nl; li++ {
		cur[li] = append([]int(nil), at.Row(li)...)
	}

	for lvl := 1; lvl < level; lvl++ {
		// Gather the Ã-rows of every column currently referenced.
		needSet := map[int]bool{}
		var need []int
		for _, row := range cur {
			for _, g := range row {
				if !needSet[g] {
					needSet[g] = true
					need = append(need, g)
				}
			}
		}
		// GatherRemoteRows works on valued matrices; wrap the thresholded
		// pattern as a zero-valued CSR.
		rows := distmat.GatherRemoteRows(c, l, lo, hi, patternAsCSR(at), need)
		next := make([][]int, nl)
		for li := 0; li < nl; li++ {
			merged := map[int]bool{}
			for _, k := range cur[li] {
				rd := rows[k]
				for _, j := range rd.Cols {
					merged[j] = true
				}
			}
			row := make([]int, 0, len(merged))
			for j := range merged {
				row = append(row, j)
			}
			sort.Ints(row)
			next[li] = row
		}
		cur = next
	}

	// Lower triangle + diagonal.
	rowSets := make([][]int, nl)
	for li := 0; li < nl; li++ {
		gi := lo + li
		var set []int
		hasDiag := false
		for _, g := range cur[li] {
			if g <= gi {
				set = append(set, g)
				if g == gi {
					hasDiag = true
				}
			}
		}
		if !hasDiag {
			set = append(set, gi)
		}
		rowSets[li] = set
	}
	return &DistRows{
		Lo: lo, Hi: hi,
		Pattern: sparse.PatternFromRows(nl, l.N, rowSets),
	}, nil
}

// thresholdRows returns the pattern of the rank's rows of Ã: entries kept
// when |a_ij| ≥ tau·sqrt(|a_ii|·|a_jj|), diagonal always present.
func thresholdRows(aRows *sparse.CSR, lo int, diag []float64, tau float64) *sparse.Pattern {
	nl := aRows.Rows
	rowSets := make([][]int, nl)
	for li := 0; li < nl; li++ {
		gi := lo + li
		cols, vals := aRows.Row(li)
		var set []int
		hasDiag := false
		for k, g := range cols {
			keep := g == gi
			if !keep {
				scale := sqrtAbs(diag[gi]) * sqrtAbs(diag[g])
				keep = abs(vals[k]) >= tau*scale
			}
			if keep {
				set = append(set, g)
				if g == gi {
					hasDiag = true
				}
			}
		}
		if !hasDiag {
			set = append(set, gi)
		}
		rowSets[li] = set
	}
	return sparse.PatternFromRows(nl, aRows.Cols, rowSets)
}

func patternAsCSR(p *sparse.Pattern) *sparse.CSR {
	return &sparse.CSR{
		Rows:   p.Rows,
		Cols:   p.Cols,
		RowPtr: append([]int(nil), p.RowPtr...),
		ColIdx: append([]int(nil), p.ColIdx...),
		Val:    make([]float64, p.NNZ()),
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sqrtAbs(x float64) float64 {
	return math.Sqrt(abs(x))
}

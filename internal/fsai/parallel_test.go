package fsai

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

// identicalCSR reports bit-identity (==, not approximate) of two factors.
// The worker pool promises that parallel scheduling never changes a single
// rounding, so these tests must not use a tolerance.
func identicalCSR(t *testing.T, label string, got, want *sparse.CSR) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols || got.NNZ() != want.NNZ() {
		t.Fatalf("%s: shape/nnz %dx%d/%d, want %dx%d/%d", label,
			got.Rows, got.Cols, got.NNZ(), want.Rows, want.Cols, want.NNZ())
	}
	for k := range want.RowPtr {
		if got.RowPtr[k] != want.RowPtr[k] {
			t.Fatalf("%s: RowPtr[%d] = %d, want %d", label, k, got.RowPtr[k], want.RowPtr[k])
		}
	}
	for k := range want.ColIdx {
		if got.ColIdx[k] != want.ColIdx[k] {
			t.Fatalf("%s: ColIdx[%d] = %d, want %d", label, k, got.ColIdx[k], want.ColIdx[k])
		}
		if got.Val[k] != want.Val[k] {
			t.Fatalf("%s: Val[%d] = %v, want %v (not bit-identical)", label, k, got.Val[k], want.Val[k])
		}
	}
}

// randomSPD draws a test matrix large enough (n > one pool chunk) that the
// parallel path actually engages.
func randomSPD(rng *rand.Rand, n int) *sparse.CSR {
	return testsets.RandomSPD(rng, n, testsets.SPDOptions{
		Diag:      6,
		Chain:     -1,
		Couplings: 3 * n,
		Off:       func(r *rand.Rand) float64 { return -0.4 * r.Float64() },
	})
}

// Property: Build with one worker and with eight produces bit-identical
// factors on random SPD matrices.
func TestQuickBuildWorkersBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(400)
		a := randomSPD(rng, n)
		s := LowerPattern(a)
		want, err := BuildWorkers(a, s, 1)
		if err != nil {
			return false
		}
		got, err := BuildWorkers(a, s, 8)
		if err != nil {
			return false
		}
		identicalCSR(t, "Build", got, want)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildFilteredWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomSPD(rng, 500)
	s := LowerPattern(a)
	want, err := BuildFilteredWorkers(a, s, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got, err := BuildFilteredWorkers(a, s, 0.05, w)
		if err != nil {
			t.Fatal(err)
		}
		identicalCSR(t, "BuildFiltered", got, want)
	}
}

func TestPowerPatternWorkersIdentical(t *testing.T) {
	a := matgen.Poisson3D(9, 9, 9)
	want := PowerPatternWorkers(a, 3, 0.001, 1)
	for _, w := range []int{2, 8} {
		got := PowerPatternWorkers(a, 3, 0.001, w)
		if !got.Equal(want) {
			t.Fatalf("workers=%d: pattern differs from serial (nnz %d vs %d)", w, got.NNZ(), want.NNZ())
		}
		for k := range want.RowPtr {
			if got.RowPtr[k] != want.RowPtr[k] {
				t.Fatalf("workers=%d: RowPtr[%d] = %d, want %d", w, k, got.RowPtr[k], want.RowPtr[k])
			}
		}
	}
}

// BuildDist with per-rank worker pools must match the 1-worker-per-rank
// build bit-for-bit, across rank counts.
func TestBuildDistWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomSPD(rng, 300)
	n := a.Rows
	for _, nranks := range []int{1, 2, 4} {
		l := distmat.NewUniformLayout(n, nranks)
		build := func(workers int) []*sparse.CSR {
			got := make([]*sparse.CSR, nranks)
			_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
				lo, hi := l.Range(c.Rank())
				aRows := distmat.ExtractLocalRows(a, lo, hi)
				g, err := BuildDistWorkers(c, l, aRows, localLowerPattern(aRows, lo), workers)
				if err != nil {
					return err
				}
				got[c.Rank()] = g
				return nil
			})
			if err != nil {
				t.Fatalf("nranks=%d workers=%d: %v", nranks, workers, err)
			}
			return got
		}
		want := build(1)
		for _, w := range []int{2, 8} {
			got := build(w)
			for r := 0; r < nranks; r++ {
				identicalCSR(t, "BuildDist", got[r], want[r])
			}
		}
	}
}

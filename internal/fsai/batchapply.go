package fsai

// Batched application of the factorized approximate inverse: the
// preconditioning operation z = Gᵀ(G·r) applied to a block of k right-hand
// sides at once. The two triangular-factor products run as SpMM kernels
// over row-major interleaved blocks (sparse.CSR.MulMat), so each factor is
// streamed once per iteration instead of once per RHS — the same
// bandwidth-locality win as the batched operator SpMM. Column c of the
// result is bit-identical to the scalar split apply on column c.

import (
	"fmt"

	"fsaicomm/internal/sparse"
	"fsaicomm/internal/vecops"
)

// SplitBatch applies z = Gᵀ(G·R) to interleaved n×k blocks. It implements
// the batched-preconditioner interface of the serial batched CG loop
// (krylov.BatchPreconditioner) without importing the solver package.
type SplitBatch struct {
	G, GT *sparse.CSR
	k     int
	w     []float64 // G·R intermediate, n×k interleaved
}

// NewSplitBatch builds the batched split preconditioner from the FSAI
// factor G (lower triangular) and its transpose, for batches of size k.
func NewSplitBatch(g, gt *sparse.CSR, k int) *SplitBatch {
	if k < 1 {
		panic(fmt.Sprintf("fsai: NewSplitBatch batch size %d < 1", k))
	}
	return &SplitBatch{G: g, GT: gt, k: k, w: make([]float64, g.Rows*k)}
}

// ApplyBatch computes z = Gᵀ(G·r) for the active columns (nil = all),
// leaving masked columns of z untouched. Counts 2·nnz flops per active
// column and factor, like k scalar applies would.
func (s *SplitBatch) ApplyBatch(r, z []float64, k int, cols []int, fc *vecops.FlopCounter) {
	if k != s.k {
		panic(fmt.Sprintf("fsai: ApplyBatch batch size %d, prepared for %d", k, s.k))
	}
	s.G.MulMatCols(r, s.w, k, cols)
	s.GT.MulMatCols(s.w, z, k, cols)
	nc := int64(k)
	if cols != nil {
		nc = int64(len(cols))
	}
	fc.Add(2 * int64(s.G.NNZ()+s.GT.NNZ()) * nc)
}

// Package fsai implements the Factorized Sparse Approximate Inverse
// preconditioner (Kolotilina–Yeremin 1993; Chow 2001), the baseline of the
// paper. Given an SPD matrix A and a lower-triangular sparse pattern S with
// full diagonal, it computes the factor G with pattern S minimizing
// ‖I − G·L‖_F (L the Cholesky factor of A), normalized so that
// diag(G·A·Gᵀ) = 1, so that Gᵀ·G ≈ A⁻¹.
//
// Each row is independent: solve A(S_i,S_i)·y = e_pos(i) and set
// g_i = y/√y_pos — the textbook recipe that never forms L. Rows are tiny
// dense SPD systems solved with internal/dense (the paper used MKL/OpenBLAS
// here).
//
// The distributed build mirrors the paper's MPI implementation: each process
// owns a block of rows of A and of S; the rows of A needed for halo columns
// of S are fetched once from their owners during setup.
package fsai

import (
	"fmt"
	"math"

	"fsaicomm/internal/dense"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/parallel"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

// LowerPattern returns the paper's baseline FSAI pattern: the lower
// triangular part of A's sparsity pattern with the diagonal guaranteed.
func LowerPattern(a *sparse.CSR) *sparse.Pattern {
	return sparse.PatternOf(a).LowerTriangle().WithDiagonal()
}

// PowerPattern returns the level-N pattern: lower triangle of pattern(Ã^N)
// where Ã drops entries below tau (scale-independent). Level 1 with tau 0
// reduces to LowerPattern.
func PowerPattern(a *sparse.CSR, level int, tau float64) *sparse.Pattern {
	return PowerPatternWorkers(a, level, tau, 0)
}

// PowerPatternWorkers is PowerPattern with an explicit worker count for the
// symbolic powering (<= 0 selects GOMAXPROCS).
func PowerPatternWorkers(a *sparse.CSR, level int, tau float64, workers int) *sparse.Pattern {
	at := a
	if tau > 0 {
		at = sparse.Threshold(a, tau)
	}
	return sparse.PatternPowerWorkers(at, level, workers).LowerTriangle().WithDiagonal()
}

// Build computes the FSAI factor G of A on the lower-triangular pattern s,
// using all available cores. The returned matrix has exactly the pattern s.
func Build(a *sparse.CSR, s *sparse.Pattern) (*sparse.CSR, error) {
	return BuildWorkers(a, s, 0)
}

// BuildWorkers is Build with an explicit worker count (<= 0 selects
// GOMAXPROCS). Every row of G is an independent small dense SPD solve
// writing a disjoint slice of g.Val, so the result is bit-identical for
// every worker count — parallelism only changes wall-clock time.
func BuildWorkers(a *sparse.CSR, s *sparse.Pattern, workers int) (*sparse.CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("fsai: matrix %dx%d not square", a.Rows, a.Cols)
	}
	if s.Rows != a.Rows || s.Cols != a.Cols {
		return nil, fmt.Errorf("fsai: pattern shape %dx%d does not match matrix", s.Rows, s.Cols)
	}
	g := &sparse.CSR{
		Rows:   s.Rows,
		Cols:   s.Cols,
		RowPtr: append([]int(nil), s.RowPtr...),
		ColIdx: append([]int(nil), s.ColIdx...),
		Val:    make([]float64, s.NNZ()),
	}
	err := parallel.For(workers, s.Rows, func(lo, hi int) error {
		// Scratch is per chunk: workers never share mutable state.
		var buf, rhs []float64
		for i := lo; i < hi; i++ {
			cols := s.Row(i)
			if err := checkRowPattern(i, cols); err != nil {
				return err
			}
			m := len(cols)
			if cap(buf) < m*m {
				buf = make([]float64, m*m)
				rhs = make([]float64, m)
			}
			sub := buf[:m*m]
			a.SubMatrix(cols, cols, sub)
			if err := solveRow(i, sub, m, rhs[:m]); err != nil {
				return err
			}
			copy(g.Val[g.RowPtr[i]:g.RowPtr[i+1]], rhs[:m])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

func checkRowPattern(i int, cols []int) error {
	if len(cols) == 0 {
		return fmt.Errorf("fsai: row %d has empty pattern", i)
	}
	last := cols[len(cols)-1]
	if last != i {
		return fmt.Errorf("fsai: row %d pattern must end at the diagonal, ends at %d", i, last)
	}
	return nil
}

// solveRow solves sub·y = e_{m-1} (sub is the SPD restriction, m×m,
// row-major; the diagonal position of row i is last because the pattern is
// lower triangular and sorted) and writes the normalized g-row into out.
func solveRow(i int, sub []float64, m int, out []float64) error {
	for k := range out {
		out[k] = 0
	}
	out[m-1] = 1
	if err := dense.SolveSPD(sub, m, out); err != nil {
		return fmt.Errorf("fsai: row %d local system: %w", i, err)
	}
	yd := out[m-1]
	if yd <= 0 || math.IsNaN(yd) {
		return fmt.Errorf("fsai: row %d produced non-positive diagonal %g", i, yd)
	}
	scale := 1 / math.Sqrt(yd)
	for k := range out {
		out[k] *= scale
	}
	return nil
}

// FilterPattern drops entries of g with |g_ij| < filter·|g_ii| (the paper's
// scale-independent comparison with the diagonal) and returns the surviving
// pattern. Diagonal entries always survive. filter ≤ 0 keeps every stored
// position.
func FilterPattern(g *sparse.CSR, filter float64) *sparse.Pattern {
	p := &sparse.Pattern{Rows: g.Rows, Cols: g.Cols, RowPtr: make([]int, g.Rows+1)}
	for i := 0; i < g.Rows; i++ {
		cols, vals := g.Row(i)
		diag := 0.0
		for k, c := range cols {
			if c == i {
				diag = math.Abs(vals[k])
			}
		}
		for k, c := range cols {
			if c == i || math.Abs(vals[k]) >= filter*diag {
				p.ColIdx = append(p.ColIdx, c)
			}
		}
		p.RowPtr[i+1] = len(p.ColIdx)
	}
	return p
}

// CountFiltered returns how many entries of g survive FilterPattern with the
// given filter value, without materializing the pattern. Used by the dynamic
// filtering bisection (Algorithm 4), which probes many filter values.
func CountFiltered(g *sparse.CSR, filter float64) int64 {
	var n int64
	for i := 0; i < g.Rows; i++ {
		cols, vals := g.Row(i)
		diag := 0.0
		for k, c := range cols {
			if c == i {
				diag = math.Abs(vals[k])
			}
		}
		for k, c := range cols {
			if c == i || math.Abs(vals[k]) >= filter*diag {
				n++
			}
		}
	}
	return n
}

// BuildFiltered runs the two-pass pipeline: compute G on s, filter its
// small entries, and recompute G on the surviving pattern (Algorithm 2
// steps 4–5 of the paper, also the "drop and rescale" of Algorithm 1).
func BuildFiltered(a *sparse.CSR, s *sparse.Pattern, filter float64) (*sparse.CSR, error) {
	return BuildFilteredWorkers(a, s, filter, 0)
}

// BuildFilteredWorkers is BuildFiltered with an explicit worker count for
// both build passes (<= 0 selects GOMAXPROCS).
func BuildFilteredWorkers(a *sparse.CSR, s *sparse.Pattern, filter float64, workers int) (*sparse.CSR, error) {
	g1, err := BuildWorkers(a, s, workers)
	if err != nil {
		return nil, err
	}
	if filter <= 0 {
		return g1, nil
	}
	return BuildWorkers(a, FilterPattern(g1, filter), workers)
}

// DistRows is a rank's block of a distributed lower-triangular pattern:
// local rows [Lo,Hi) with global column indices.
type DistRows struct {
	Lo, Hi  int
	Pattern *sparse.Pattern // Rows = Hi-Lo, Cols = global n
}

// Validate checks the lower-triangular + diagonal invariants.
func (d *DistRows) Validate() error {
	if d.Pattern.Rows != d.Hi-d.Lo {
		return fmt.Errorf("fsai: DistRows has %d rows, want %d", d.Pattern.Rows, d.Hi-d.Lo)
	}
	for li := 0; li < d.Pattern.Rows; li++ {
		cols := d.Pattern.Row(li)
		gi := d.Lo + li
		if len(cols) == 0 || cols[len(cols)-1] != gi {
			return fmt.Errorf("fsai: global row %d pattern must end at its diagonal", gi)
		}
	}
	return nil
}

// BuildDist computes this rank's rows of the FSAI factor G on the
// distributed pattern s with one row-solve worker (the historical serial
// per-rank behavior; the simulated ranks themselves already run
// concurrently). aRows holds the rank's rows of A (global columns). Rows of
// A required for halo columns of s are gathered from their owners
// (setup-phase communication). Collective.
func BuildDist(c *simmpi.Comm, l *distmat.Layout, aRows *sparse.CSR, s *DistRows) (*sparse.CSR, error) {
	return BuildDistWorkers(c, l, aRows, s, 1)
}

// BuildDistWorkers is BuildDist with an explicit per-rank worker count for
// the local row solves (<= 0 selects GOMAXPROCS). This is the hybrid
// MPI+threads layer of the paper's setup: communication (the halo row
// gather) stays on the rank goroutine; only the embarrassingly parallel row
// loop fans out. Results are bit-identical for every worker count.
func BuildDistWorkers(c *simmpi.Comm, l *distmat.Layout, aRows *sparse.CSR, s *DistRows, workers int) (*sparse.CSR, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	lo, hi := s.Lo, s.Hi
	// Collect the global rows of A needed: every column index in the
	// pattern (the restriction A(S_i,S_i) reads row k for each k ∈ S_i).
	needSet := map[int]bool{}
	var need []int
	for _, g := range s.Pattern.ColIdx {
		if !needSet[g] {
			needSet[g] = true
			need = append(need, g)
		}
	}
	rows := distmat.GatherRemoteRows(c, l, lo, hi, aRows, need)

	g := &sparse.CSR{
		Rows:   s.Pattern.Rows,
		Cols:   s.Pattern.Cols,
		RowPtr: append([]int(nil), s.Pattern.RowPtr...),
		ColIdx: append([]int(nil), s.Pattern.ColIdx...),
		Val:    make([]float64, s.Pattern.NNZ()),
	}
	err := parallel.For(workers, s.Pattern.Rows, func(clo, chi int) error {
		var buf, rhs []float64
		for li := clo; li < chi; li++ {
			cols := s.Pattern.Row(li)
			m := len(cols)
			if cap(buf) < m*m {
				buf = make([]float64, m*m)
				rhs = make([]float64, m)
			}
			sub := buf[:m*m]
			gatherSub(rows, cols, sub)
			if err := solveRow(lo+li, sub, m, rhs[:m]); err != nil {
				return err
			}
			copy(g.Val[g.RowPtr[li]:g.RowPtr[li+1]], rhs[:m])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// gatherSub fills the dense m×m restriction A(cols, cols) from gathered row
// data. cols is sorted; each row's stored columns are sorted, so a merge
// walk fills each row in O(row nnz + m).
func gatherSub(rows map[int]distmat.RowData, cols []int, sub []float64) {
	m := len(cols)
	for k := range sub {
		sub[k] = 0
	}
	for ri, gk := range cols {
		rd, ok := rows[gk]
		if !ok {
			panic(fmt.Sprintf("fsai: missing gathered row %d", gk))
		}
		a, b := 0, 0
		for a < len(rd.Cols) && b < m {
			switch {
			case rd.Cols[a] < cols[b]:
				a++
			case rd.Cols[a] > cols[b]:
				b++
			default:
				sub[ri*m+b] = rd.Vals[a]
				a++
				b++
			}
		}
	}
}

// FilterDist applies the paper's value filtering to a rank's local rows of
// G (global columns), returning the filtered DistRows pattern. Entries of
// the protected base pattern (the original S being extended; Algorithm 2
// filters "entries of S_ext", i.e. extension candidates only) and the
// diagonal always survive; other entries survive when
// |g_ij| ≥ filter·|g_ii|. base may be nil to filter every off-diagonal.
func FilterDist(g *sparse.CSR, lo, hi int, filter float64, base *sparse.Pattern) *DistRows {
	p := &sparse.Pattern{Rows: g.Rows, Cols: g.Cols, RowPtr: make([]int, g.Rows+1)}
	for li := 0; li < g.Rows; li++ {
		gi := lo + li
		cols, vals := g.Row(li)
		diag := 0.0
		for k, c := range cols {
			if c == gi {
				diag = math.Abs(vals[k])
			}
		}
		var prot []int
		if base != nil {
			prot = base.Row(li)
		}
		pi := 0
		for k, c := range cols {
			for pi < len(prot) && prot[pi] < c {
				pi++
			}
			protected := pi < len(prot) && prot[pi] == c
			if c == gi || protected || math.Abs(vals[k]) >= filter*diag {
				p.ColIdx = append(p.ColIdx, c)
			}
		}
		p.RowPtr[li+1] = len(p.ColIdx)
	}
	return &DistRows{Lo: lo, Hi: hi, Pattern: p}
}

// CountFilteredDist counts the entries FilterDist would keep, without
// materializing the pattern. Used by the dynamic-filter bisection.
func CountFilteredDist(g *sparse.CSR, lo int, filter float64, base *sparse.Pattern) int64 {
	var n int64
	for li := 0; li < g.Rows; li++ {
		gi := lo + li
		cols, vals := g.Row(li)
		diag := 0.0
		for k, c := range cols {
			if c == gi {
				diag = math.Abs(vals[k])
			}
		}
		var prot []int
		if base != nil {
			prot = base.Row(li)
		}
		pi := 0
		for k, c := range cols {
			for pi < len(prot) && prot[pi] < c {
				pi++
			}
			protected := pi < len(prot) && prot[pi] == c
			if c == gi || protected || math.Abs(vals[k]) >= filter*diag {
				n++
			}
		}
	}
	return n
}

// NarrowFactor returns the float32-valued view of a built factor for
// mixed-precision solves. The factor is always computed in float64 (the tiny
// dense row systems are ill-conditioned enough that building in float32
// would cost accuracy the refinement loop cannot recover); only the finished
// values are narrowed, bounding the error at one rounding per entry.
func NarrowFactor(g *sparse.CSR) *sparse.CSR32 { return sparse.NewCSR32(g) }

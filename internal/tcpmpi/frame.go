// Package tcpmpi is the socket backend of the simmpi Transport interface:
// ranks are OS processes (or goroutines in tests) exchanging length-prefixed
// frames over TCP loopback or Unix-domain sockets. Semantics are pinned to
// the in-process channel backend by the conformance suite in
// internal/commtest; the differential tests in the root package additionally
// assert bit-identical solver results across backends.
package tcpmpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fsaicomm/internal/simmpi"
)

// Frame kinds. Every frame on a mesh connection is
//
//	u32 length (of everything after this field) | u8 kind | body
//
// with all integers little-endian and floats as IEEE-754 bit patterns.
const (
	kindHello byte = 1 // body: u32 rank — sent by the dialing (higher) rank
	kindP2P   byte = 2 // body: p2p payload (see encodeP2P)
	kindColl  byte = 3 // body: collective payload (see encodeColl)
)

// maxFrameBytes bounds a decoded frame; anything larger means a corrupt or
// hostile stream, not solver traffic.
const maxFrameBytes = 1 << 30

func writeFrame(w io.Writer, kind byte, body []byte) error {
	// One buffer, one Write: frames must not interleave when several
	// goroutines share a connection under the per-conn write mutex.
	buf := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(buf, uint32(1+len(body)))
	buf[4] = kind
	copy(buf[5:], body)
	_, err := w.Write(buf)
	return err
}

// readFrame works on any reader (the mesh handshake reads the raw
// connection: buffering there would read ahead into the next frame, whose
// bytes would be lost when the per-peer reader loop takes over with its own
// buffer).
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("tcpmpi: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// Payload type tags inside p2p frames. Empty payloads are typeless on the
// wire, mirroring the channel backend where copying an empty slice yields
// nil and the receiver-side type check accepts either accessor.
const (
	typNone byte = 0
	typF64  byte = 1
	typInts byte = 2
	typF32  byte = 3
)

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func encodeP2P(p simmpi.Payload) []byte {
	typ, n := typNone, 0
	switch {
	case len(p.F64) > 0:
		typ, n = typF64, len(p.F64)
	case len(p.F32) > 0:
		typ, n = typF32, len(p.F32)
	case len(p.Ints) > 0:
		typ, n = typInts, len(p.Ints)
	}
	b := make([]byte, 0, 9+1+4+8*n)
	b = appendU32(b, uint32(p.Src))
	b = appendU32(b, uint32(p.Tag))
	b = append(b, typ)
	b = appendU32(b, uint32(n))
	switch typ {
	case typF64:
		for _, v := range p.F64 {
			b = appendU64(b, math.Float64bits(v))
		}
	case typF32:
		// 4 bytes per value: the wire pays exactly what the meter charges.
		for _, v := range p.F32 {
			b = appendU32(b, math.Float32bits(v))
		}
	case typInts:
		for _, v := range p.Ints {
			b = appendU64(b, uint64(v))
		}
	}
	return b
}

func decodeP2P(body []byte) (simmpi.Payload, error) {
	if len(body) < 13 {
		return simmpi.Payload{}, fmt.Errorf("tcpmpi: p2p frame %d bytes, want >= 13", len(body))
	}
	p := simmpi.Payload{
		Src: int(int32(binary.LittleEndian.Uint32(body))),
		Tag: int(int32(binary.LittleEndian.Uint32(body[4:]))),
	}
	typ := body[8]
	n := int(binary.LittleEndian.Uint32(body[9:]))
	data := body[13:]
	want := 8 * n
	if typ == typF32 {
		want = 4 * n
	}
	if len(data) != want {
		return simmpi.Payload{}, fmt.Errorf("tcpmpi: p2p frame payload %d bytes, want %d", len(data), want)
	}
	switch typ {
	case typNone:
		// n==0: all slices stay nil, matching the channel backend's copy of
		// an empty payload.
	case typF64:
		p.F64 = make([]float64, n)
		for i := range p.F64 {
			p.F64[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
	case typF32:
		p.F32 = make([]float32, n)
		for i := range p.F32 {
			p.F32[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
		}
	case typInts:
		p.Ints = make([]int, n)
		for i := range p.Ints {
			p.Ints[i] = int(int64(binary.LittleEndian.Uint64(data[8*i:])))
		}
	default:
		return simmpi.Payload{}, fmt.Errorf("tcpmpi: p2p frame type %d", typ)
	}
	return p, nil
}

func encodeColl(p simmpi.CollPayload) []byte {
	if len(p.Op) > 255 {
		panic(fmt.Sprintf("tcpmpi: collective op %q too long", p.Op))
	}
	b := make([]byte, 0, 1+len(p.Op)+12+8*(len(p.F64)+len(p.I64)+len(p.Ints)))
	b = append(b, byte(len(p.Op)))
	b = append(b, p.Op...)
	b = appendU32(b, uint32(len(p.F64)))
	for _, v := range p.F64 {
		b = appendU64(b, math.Float64bits(v))
	}
	b = appendU32(b, uint32(len(p.I64)))
	for _, v := range p.I64 {
		b = appendU64(b, uint64(v))
	}
	b = appendU32(b, uint32(len(p.Ints)))
	for _, v := range p.Ints {
		b = appendU64(b, uint64(v))
	}
	return b
}

func decodeColl(body []byte) (simmpi.CollPayload, error) {
	bad := func() (simmpi.CollPayload, error) {
		return simmpi.CollPayload{}, fmt.Errorf("tcpmpi: truncated collective frame (%d bytes)", len(body))
	}
	if len(body) < 1 {
		return bad()
	}
	opLen := int(body[0])
	body = body[1:]
	if len(body) < opLen {
		return bad()
	}
	p := simmpi.CollPayload{Op: string(body[:opLen])}
	body = body[opLen:]
	vec := func() ([]uint64, bool) {
		if len(body) < 4 {
			return nil, false
		}
		n := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if n > maxFrameBytes/8 || len(body) < 8*n {
			return nil, false
		}
		out := make([]uint64, n)
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
		body = body[8*n:]
		return out, true
	}
	f64, ok := vec()
	if !ok {
		return bad()
	}
	i64, ok := vec()
	if !ok {
		return bad()
	}
	ints, ok := vec()
	if !ok {
		return bad()
	}
	// Mirror the channel backend's nil-for-empty contributions so reduced
	// results round-trip identically.
	if len(f64) > 0 {
		p.F64 = make([]float64, len(f64))
		for i, v := range f64 {
			p.F64[i] = math.Float64frombits(v)
		}
	}
	if len(i64) > 0 {
		p.I64 = make([]int64, len(i64))
		for i, v := range i64 {
			p.I64[i] = int64(v)
		}
	}
	if len(ints) > 0 {
		p.Ints = make([]int, len(ints))
		for i, v := range ints {
			p.Ints[i] = int(int64(v))
		}
	}
	return p, nil
}

package tcpmpi

import (
	"time"

	"fsaicomm/internal/simmpi"
)

// Faults are test hooks injected between a Comm and the wire. Each hook sees
// outgoing point-to-point payloads before framing; nil hooks are no-ops.
// Hooks run on whichever goroutine performs the send (the rank goroutine for
// blocking sends, a chain goroutine for posted ones), so they must be
// safe for concurrent use if the test posts concurrent sends.
type Faults struct {
	// Drop suppresses the send entirely when it returns true: the frame
	// never reaches the wire and the receiver's bounded wait times out.
	Drop func(dst int, p simmpi.Payload) bool
	// Delay stalls the send by the returned duration (zero: no delay).
	Delay func(dst int, p simmpi.Payload) time.Duration
	// Duplicate sends the frame twice when it returns true, modeling a
	// retransmit bug; the receiver sees the payload two times.
	Duplicate func(dst int, p simmpi.Payload) bool
	// FailSend replaces the send outcome with err when non-nil, modeling a
	// broken connection detected at write time.
	FailSend func(dst int, p simmpi.Payload) error
}

// faultTransport decorates a Transport with Faults. Only the send path is
// intercepted: receive-side effects (loss, delay, duplication) are what the
// peer's send-side hooks produce.
type faultTransport struct {
	simmpi.Transport
	f Faults
}

// WithFaults wraps t so that outgoing point-to-point sends pass through the
// given fault hooks. Collectives and the rank/size/close surface pass
// through untouched.
func WithFaults(t simmpi.Transport, f Faults) simmpi.Transport {
	return &faultTransport{Transport: t, f: f}
}

func (ft *faultTransport) Send(dst int, p simmpi.Payload) error {
	if ft.f.FailSend != nil {
		if err := ft.f.FailSend(dst, p); err != nil {
			return err
		}
	}
	if ft.f.Drop != nil && ft.f.Drop(dst, p) {
		return nil
	}
	if ft.f.Delay != nil {
		if d := ft.f.Delay(dst, p); d > 0 {
			time.Sleep(d)
		}
	}
	if err := ft.Transport.Send(dst, p); err != nil {
		return err
	}
	if ft.f.Duplicate != nil && ft.f.Duplicate(dst, p) {
		return ft.Transport.Send(dst, p)
	}
	return nil
}

package tcpmpi_test

import (
	"testing"
	"time"

	"fsaicomm/internal/commtest"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/tcpmpi"
)

// The socket backend must pass the oracle's conformance corpus verbatim,
// over both socket families.
func TestConformanceTCP(t *testing.T) {
	runConformance(t, "tcp")
}

func TestConformanceUnix(t *testing.T) {
	runConformance(t, "unix")
}

func runConformance(t *testing.T, network string) {
	commtest.RunConformance(t, commtest.Harness{
		Name: network,
		Run: func(size int, timeout time.Duration, fn func(c *simmpi.Comm) error) (*simmpi.Meter, error) {
			return tcpmpi.RunLocal(size, tcpmpi.Config{Network: network, Timeout: timeout}, fn)
		},
	})
}

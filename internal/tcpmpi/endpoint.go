package tcpmpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"fsaicomm/internal/simmpi"
)

// Config shapes a socket mesh.
type Config struct {
	// Network selects the socket family: "tcp" (loopback, the default) or
	// "unix" (domain sockets in a temporary directory).
	Network string
	// Timeout bounds every blocking operation — dials, handshakes, receives,
	// collective waits and writes. A dead or silent peer therefore surfaces
	// as an error within roughly one Timeout, never as a hang. Zero means
	// the 30s default; there is deliberately no "block forever" setting.
	Timeout time.Duration
	// Wrap, if set, decorates each rank's transport before the Comm is built
	// on top — the hook the fault-injection tests use.
	Wrap func(rank int, t simmpi.Transport) simmpi.Transport
}

func (c Config) withDefaults() Config {
	if c.Network == "" {
		c.Network = "tcp"
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// ListenTCP opens a loopback listener on an ephemeral port. Workers call it
// before registering with the launcher so the coordinator can distribute
// real addresses.
func ListenTCP() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// peerConn is one mesh connection plus this endpoint's receive queues for
// that peer. A dedicated reader goroutine demultiplexes incoming frames into
// the point-to-point and collective queues, so a posted nonblocking receive
// and a blocking collective can be outstanding toward the same peer at once.
type peerConn struct {
	conn net.Conn
	// wmu serializes frame writes: a nonblocking send chain's goroutine and
	// the rank goroutine's collective contribution may target the same
	// connection concurrently.
	wmu  sync.Mutex
	p2p  chan simmpi.Payload
	coll chan simmpi.CollPayload
	// dead is closed (once) when the reader loop exits; err holds the cause.
	dead     chan struct{}
	deadOnce sync.Once
	err      error
}

func newPeerConn(conn net.Conn) *peerConn {
	return &peerConn{
		conn: conn,
		p2p:  make(chan simmpi.Payload, 256),
		coll: make(chan simmpi.CollPayload, 16),
		dead: make(chan struct{}),
	}
}

func (pc *peerConn) fail(err error) {
	pc.deadOnce.Do(func() {
		pc.err = err
		close(pc.dead)
	})
}

// Endpoint is one rank's socket transport: size-1 mesh connections plus the
// reader goroutines feeding their queues. It implements simmpi.Transport.
type Endpoint struct {
	rank, size int
	timeout    time.Duration
	ln         net.Listener
	peers      []*peerConn // nil at the endpoint's own index
	closeOnce  sync.Once
}

// Connect wires rank into a full mesh over the given per-rank addresses,
// performing the handshake/rank exchange: rank r accepts one connection from
// every higher rank (each announced by a hello frame carrying the dialer's
// rank) and dials every lower rank. addrs[rank] must be the address ln
// listens on. The endpoint owns ln afterwards and closes it in Close.
func Connect(rank int, ln net.Listener, addrs []string, cfg Config) (*Endpoint, error) {
	cfg = cfg.withDefaults()
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("tcpmpi: rank %d outside [0,%d)", rank, size)
	}
	e := &Endpoint{
		rank:    rank,
		size:    size,
		timeout: cfg.Timeout,
		ln:      ln,
		peers:   make([]*peerConn, size),
	}
	deadline := time.Now().Add(cfg.Timeout)

	// Accept from higher ranks while dialing lower ones: both directions
	// must progress concurrently or two ranks dialing each other's
	// not-yet-accepting side would deadlock the mesh formation.
	acceptDone := make(chan error, 1)
	go func() {
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(deadline)
		}
		for i := 0; i < size-1-rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptDone <- fmt.Errorf("tcpmpi: rank %d accepting mesh peer: %w", rank, err)
				return
			}
			conn.SetReadDeadline(deadline)
			kind, body, err := readFrame(conn)
			if err != nil || kind != kindHello || len(body) != 4 {
				conn.Close()
				acceptDone <- fmt.Errorf("tcpmpi: rank %d bad hello from mesh peer: %v", rank, err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(body))
			if peer <= rank || peer >= size || e.peers[peer] != nil {
				conn.Close()
				acceptDone <- fmt.Errorf("tcpmpi: rank %d got hello from unexpected rank %d", rank, peer)
				return
			}
			conn.SetReadDeadline(time.Time{})
			e.peers[peer] = newPeerConn(conn)
		}
		acceptDone <- nil
	}()

	var dialErr error
	for q := 0; q < rank && dialErr == nil; q++ {
		conn, err := dialRetry(cfg.Network, addrs[q], deadline)
		if err != nil {
			dialErr = fmt.Errorf("tcpmpi: rank %d dialing rank %d at %s: %w", rank, q, addrs[q], err)
			break
		}
		var hello [4]byte
		binary.LittleEndian.PutUint32(hello[:], uint32(rank))
		conn.SetWriteDeadline(deadline)
		if err := writeFrame(conn, kindHello, hello[:]); err != nil {
			conn.Close()
			dialErr = fmt.Errorf("tcpmpi: rank %d hello to rank %d: %w", rank, q, err)
			break
		}
		conn.SetWriteDeadline(time.Time{})
		e.peers[q] = newPeerConn(conn)
	}
	acceptErr := <-acceptDone
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Time{})
	}
	if dialErr != nil || acceptErr != nil {
		e.Close()
		if dialErr != nil {
			return nil, dialErr
		}
		return nil, acceptErr
	}
	for src, pc := range e.peers {
		if pc != nil {
			go e.readLoop(src, pc)
		}
	}
	return e, nil
}

func dialRetry(network, addr string, deadline time.Time) (net.Conn, error) {
	// The peer's listener exists before its address is published, so a
	// failed dial is transient (accept backlog, unix-socket creation race);
	// retry with a short pause until the mesh deadline.
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("deadline exceeded")
			}
			return nil, lastErr
		}
		conn, err := net.DialTimeout(network, addr, remain)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(5 * time.Millisecond)
	}
}

func (e *Endpoint) readLoop(src int, pc *peerConn) {
	br := bufio.NewReaderSize(pc.conn, 1<<16)
	for {
		kind, body, err := readFrame(br)
		if err != nil {
			pc.fail(fmt.Errorf("%w: rank %d lost rank %d: %v", simmpi.ErrRankLost, e.rank, src, err))
			return
		}
		switch kind {
		case kindP2P:
			p, err := decodeP2P(body)
			if err != nil {
				pc.fail(fmt.Errorf("%w: rank %d lost rank %d: %v", simmpi.ErrRankLost, e.rank, src, err))
				return
			}
			pc.p2p <- p
		case kindColl:
			p, err := decodeColl(body)
			if err != nil {
				pc.fail(fmt.Errorf("%w: rank %d lost rank %d: %v", simmpi.ErrRankLost, e.rank, src, err))
				return
			}
			pc.coll <- p
		default:
			pc.fail(fmt.Errorf("%w: rank %d got frame kind %d from rank %d", simmpi.ErrRankLost, e.rank, kind, src))
			return
		}
	}
}

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the world size.
func (e *Endpoint) Size() int { return e.size }

// Send frames a payload to dst. The write is bounded by the configured
// timeout; a closed or wedged peer surfaces as an ErrRankLost-wrapped error.
func (e *Endpoint) Send(dst int, p simmpi.Payload) error {
	pc := e.peers[dst]
	select {
	case <-pc.dead:
		return pc.err
	default:
	}
	body := encodeP2P(p)
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	pc.conn.SetWriteDeadline(time.Now().Add(e.timeout))
	if err := writeFrame(pc.conn, kindP2P, body); err != nil {
		err = fmt.Errorf("%w: rank %d writing to rank %d: %v", simmpi.ErrRankLost, e.rank, dst, err)
		pc.fail(err)
		return err
	}
	return nil
}

// Recv returns the next point-to-point payload from src, preferring queued
// payloads over a concurrently detected peer death so messages sent before a
// rank exited are still delivered.
func (e *Endpoint) Recv(src int) (simmpi.Payload, error) {
	pc := e.peers[src]
	timer := time.NewTimer(e.timeout)
	defer timer.Stop()
	select {
	case p := <-pc.p2p:
		return p, nil
	default:
	}
	select {
	case p := <-pc.p2p:
		return p, nil
	case <-pc.dead:
		select {
		case p := <-pc.p2p:
			return p, nil
		default:
		}
		return simmpi.Payload{}, pc.err
	case <-timer.C:
		return simmpi.Payload{}, fmt.Errorf("timed out receiving from %d (deadlock?)", src)
	}
}

func (e *Endpoint) collRecv(pc *peerConn, op string, from int) (simmpi.CollPayload, error) {
	timer := time.NewTimer(e.timeout)
	defer timer.Stop()
	var m simmpi.CollPayload
	select {
	case m = <-pc.coll:
	default:
		select {
		case m = <-pc.coll:
		case <-pc.dead:
			select {
			case m = <-pc.coll:
			default:
				return simmpi.CollPayload{}, pc.err
			}
		case <-timer.C:
			return simmpi.CollPayload{}, fmt.Errorf("timed out in collective %q waiting for rank %d", op, from)
		}
	}
	if m.Op != op {
		return simmpi.CollPayload{}, fmt.Errorf("collective mismatch: in %q, rank %d sent %q", op, from, m.Op)
	}
	return m, nil
}

func (e *Endpoint) sendColl(dst int, p simmpi.CollPayload) error {
	pc := e.peers[dst]
	select {
	case <-pc.dead:
		return pc.err
	default:
	}
	body := encodeColl(p)
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	pc.conn.SetWriteDeadline(time.Now().Add(e.timeout))
	if err := writeFrame(pc.conn, kindColl, body); err != nil {
		err = fmt.Errorf("%w: rank %d writing collective to rank %d: %v", simmpi.ErrRankLost, e.rank, dst, err)
		pc.fail(err)
		return err
	}
	return nil
}

// Collective performs the whole-world rendezvous: rank 0 gathers every
// contribution, reduces in rank order with the shared simmpi.Reduce (so
// floating-point results are bitwise identical to the channel backend), and
// frames the result back to every rank.
func (e *Endpoint) Collective(contrib simmpi.CollPayload) (simmpi.CollPayload, error) {
	op := contrib.Op
	if e.size == 1 {
		return simmpi.Reduce(op, []simmpi.CollPayload{contrib})
	}
	if e.rank == 0 {
		parts := make([]simmpi.CollPayload, e.size)
		parts[0] = contrib
		for r := 1; r < e.size; r++ {
			m, err := e.collRecv(e.peers[r], op, r)
			if err != nil {
				return simmpi.CollPayload{}, err
			}
			parts[r] = m
		}
		result, err := simmpi.Reduce(op, parts)
		if err != nil {
			return simmpi.CollPayload{}, err
		}
		for r := 1; r < e.size; r++ {
			if err := e.sendColl(r, result); err != nil {
				return simmpi.CollPayload{}, err
			}
		}
		return result, nil
	}
	if err := e.sendColl(0, contrib); err != nil {
		return simmpi.CollPayload{}, err
	}
	return e.collRecv(e.peers[0], op, 0)
}

// Close tears the mesh down: the listener and every connection are closed,
// which unblocks this endpoint's reader loops and makes the peers' pending
// operations fail with ErrRankLost.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		if e.ln != nil {
			e.ln.Close()
		}
		for _, pc := range e.peers {
			if pc != nil {
				pc.conn.Close()
				pc.fail(fmt.Errorf("%w: endpoint closed", simmpi.ErrRankLost))
			}
		}
	})
	return nil
}

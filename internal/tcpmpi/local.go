package tcpmpi

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"

	"fsaicomm/internal/simmpi"
)

// listenAll opens one listener per rank and returns their addresses plus a
// cleanup for any on-disk socket directory. Listeners all exist before any
// address is returned, so mesh dials cannot race listener creation.
func listenAll(cfg Config, size int) ([]net.Listener, []string, func(), error) {
	cleanup := func() {}
	var dir string
	if cfg.Network == "unix" {
		var err error
		dir, err = os.MkdirTemp("", "tcpmpi-")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("tcpmpi: socket dir: %w", err)
		}
		cleanup = func() { os.RemoveAll(dir) }
	}
	lns := make([]net.Listener, size)
	addrs := make([]string, size)
	for r := 0; r < size; r++ {
		var (
			ln  net.Listener
			err error
		)
		switch cfg.Network {
		case "unix":
			ln, err = net.Listen("unix", filepath.Join(dir, fmt.Sprintf("rank%d.sock", r)))
		case "tcp":
			ln, err = ListenTCP()
		default:
			err = fmt.Errorf("unknown network %q", cfg.Network)
		}
		if err != nil {
			for _, l := range lns[:r] {
				l.Close()
			}
			cleanup()
			return nil, nil, nil, fmt.Errorf("tcpmpi: rank %d listen: %w", r, err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	return lns, addrs, cleanup, nil
}

// RunLocal spawns fn on every rank of a fresh socket mesh, one goroutine per
// rank, each over its own Endpoint — the full wire path (framing, mesh
// handshake, reader demultiplexing) without the process-spawn cost. Panics
// inside a rank are recovered into errors; the first non-nil error in rank
// order wins. Each rank meters its own traffic (as the multi-process workers
// do); the returned meter is the per-rank meters merged, comparable to an
// in-process World's.
func RunLocal(size int, cfg Config, fn func(c *simmpi.Comm) error) (*simmpi.Meter, error) {
	return RunLocalTopo(size, cfg, simmpi.Topology{}, fn)
}

// RunLocalTopo is RunLocal with a two-level topology attached to every
// rank's meter (and hence Comm), mirroring simmpi.RunTopo for the socket
// backend.
func RunLocalTopo(size int, cfg Config, topo simmpi.Topology, fn func(c *simmpi.Comm) error) (*simmpi.Meter, error) {
	cfg = cfg.withDefaults()
	if size < 1 {
		return nil, fmt.Errorf("tcpmpi: world size %d < 1", size)
	}
	if err := topo.Validate(size); err != nil {
		return nil, err
	}
	lns, addrs, cleanup, err := listenAll(cfg, size)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	meters := make([]*simmpi.Meter, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("simmpi: rank %d panicked: %v", rank, p)
				}
			}()
			ep, err := Connect(rank, lns[rank], addrs, cfg)
			if err != nil {
				errs[rank] = err
				return
			}
			defer ep.Close()
			var t simmpi.Transport = ep
			if cfg.Wrap != nil {
				t = cfg.Wrap(rank, t)
			}
			meters[rank] = simmpi.NewMeterTopo(size, topo)
			c := simmpi.NewComm(t, meters[rank], cfg.Timeout)
			errs[rank] = fn(c)
			if errs[rank] == nil {
				// Flush outstanding nonblocking chains before the deferred
				// endpoint Close: a peer may still be waiting on an async
				// send fn posted on its way out.
				c.Quiesce()
			}
		}(r)
	}
	wg.Wait()
	merged := simmpi.NewMeterTopo(size, topo)
	for _, m := range meters {
		if m != nil {
			merged.Merge(m)
		}
	}
	for _, err := range errs {
		if err != nil {
			return merged, err
		}
	}
	return merged, nil
}

package tcpmpi

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fsaicomm/internal/simmpi"
)

func TestRunLocalBasicTCPAndUnix(t *testing.T) {
	for _, network := range []string{"tcp", "unix"} {
		t.Run(network, func(t *testing.T) {
			m, err := RunLocal(3, Config{Network: network, Timeout: 10 * time.Second}, func(c *simmpi.Comm) error {
				if c.Rank() == 0 {
					c.SendFloats(1, 5, []float64{1, 2})
					c.SendInts(2, 6, []int{7})
				}
				if c.Rank() == 1 {
					got := c.RecvFloats(0, 5)
					if len(got) != 2 || got[1] != 2 {
						t.Errorf("rank 1 got %v", got)
					}
				}
				if c.Rank() == 2 {
					got := c.RecvInts(0, 6)
					if len(got) != 1 || got[0] != 7 {
						t.Errorf("rank 2 got %v", got)
					}
				}
				sum := c.AllreduceSum(float64(c.Rank() + 1))
				if sum[0] != 6 {
					t.Errorf("rank %d sum = %v", c.Rank(), sum)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if b := m.TotalP2PBytes(); b != 24 {
				t.Fatalf("p2p bytes = %d, want 24", b)
			}
			if n := m.TotalCollectiveCalls(); n != 3 {
				t.Fatalf("collective calls = %d, want 3", n)
			}
		})
	}
}

// A rank that exits early closes its side of the mesh; peers blocked on it
// must get a clean ErrRankLost-style error, not a hang.
func TestDeadRankSurfacesRankLost(t *testing.T) {
	start := time.Now()
	_, err := RunLocal(2, Config{Timeout: 5 * time.Second}, func(c *simmpi.Comm) error {
		if c.Rank() == 1 {
			return nil // dies without sending
		}
		c.RecvFloats(1, 0)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank lost") {
		t.Fatalf("dead rank not surfaced as rank lost: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("rank-lost detection took %v, want well under the timeout", elapsed)
	}
}

// A dropped frame never arrives; the receiver's bounded wait must expire
// with a timeout error rather than blocking forever.
func TestDroppedFrameTimesOut(t *testing.T) {
	cfg := Config{
		Timeout: 500 * time.Millisecond,
		Wrap: func(rank int, tr simmpi.Transport) simmpi.Transport {
			if rank != 0 {
				return tr
			}
			return WithFaults(tr, Faults{
				Drop: func(dst int, p simmpi.Payload) bool { return true },
			})
		},
	}
	_, err := RunLocal(2, cfg, func(c *simmpi.Comm) error {
		if c.Rank() == 0 {
			c.SendFloats(1, 0, []float64{1})
			// Stay alive past the receiver's timeout so the failure is the
			// bounded wait expiring, not this endpoint closing.
			time.Sleep(800 * time.Millisecond)
			return nil
		}
		c.RecvFloats(0, 0)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("dropped frame not detected: %v", err)
	}
}

func TestDuplicatedFrameArrivesTwice(t *testing.T) {
	cfg := Config{
		Timeout: 5 * time.Second,
		Wrap: func(rank int, tr simmpi.Transport) simmpi.Transport {
			if rank != 0 {
				return tr
			}
			return WithFaults(tr, Faults{
				Duplicate: func(dst int, p simmpi.Payload) bool { return true },
			})
		},
	}
	_, err := RunLocal(2, cfg, func(c *simmpi.Comm) error {
		if c.Rank() == 0 {
			c.SendFloats(1, 3, []float64{9})
			return nil
		}
		first := c.RecvFloats(0, 3)
		second := c.RecvFloats(0, 3)
		if len(first) != 1 || len(second) != 1 || first[0] != 9 || second[0] != 9 {
			t.Errorf("duplicate delivery = %v, %v", first, second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDelayedFrameStillArrives(t *testing.T) {
	var delayed atomic.Int32
	cfg := Config{
		Timeout: 5 * time.Second,
		Wrap: func(rank int, tr simmpi.Transport) simmpi.Transport {
			return WithFaults(tr, Faults{
				Delay: func(dst int, p simmpi.Payload) time.Duration {
					delayed.Add(1)
					return 30 * time.Millisecond
				},
			})
		},
	}
	_, err := RunLocal(2, cfg, func(c *simmpi.Comm) error {
		if c.Rank() == 0 {
			c.SendFloats(1, 0, []float64{4})
			return nil
		}
		if got := c.RecvFloats(0, 0); len(got) != 1 || got[0] != 4 {
			t.Errorf("delayed delivery = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if delayed.Load() == 0 {
		t.Fatal("delay hook never ran")
	}
}

// A write-time connection failure is reported on the sender as ErrRankLost.
func TestFailSendSurfacesOnSender(t *testing.T) {
	cfg := Config{
		Timeout: 2 * time.Second,
		Wrap: func(rank int, tr simmpi.Transport) simmpi.Transport {
			if rank != 0 {
				return tr
			}
			return WithFaults(tr, Faults{
				FailSend: func(dst int, p simmpi.Payload) error {
					return simmpi.ErrRankLost
				},
			})
		},
	}
	_, err := RunLocal(2, cfg, func(c *simmpi.Comm) error {
		if c.Rank() == 0 {
			c.SendFloats(1, 0, []float64{1})
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank lost") {
		t.Fatalf("failed send not surfaced: %v", err)
	}
}

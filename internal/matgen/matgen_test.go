package matgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fsaicomm/internal/sparse"
)

// checkSPD verifies symmetry and positive definiteness (via dense Cholesky
// logic: leading principal minors through Gaxpy-Cholesky) for small n.
func checkSPD(t *testing.T, name string, a *sparse.CSR) {
	t.Helper()
	if a.Rows != a.Cols {
		t.Fatalf("%s: not square", name)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("%s: invalid CSR: %v", name, err)
	}
	if !a.IsSymmetric(1e-12) {
		t.Fatalf("%s: not symmetric", name)
	}
	n := a.Rows
	if n > 600 {
		t.Fatalf("%s: checkSPD matrix too large (%d)", name, n)
	}
	d := a.Dense()
	// In-place dense Cholesky; fails on non-PD.
	for j := 0; j < n; j++ {
		diag := d[j][j]
		for k := 0; k < j; k++ {
			diag -= d[j][k] * d[j][k]
		}
		if diag <= 0 {
			t.Fatalf("%s: not positive definite (pivot %d = %g)", name, j, diag)
		}
		diag = math.Sqrt(diag)
		d[j][j] = diag
		for i := j + 1; i < n; i++ {
			s := d[i][j]
			for k := 0; k < j; k++ {
				s -= d[i][k] * d[j][k]
			}
			d[i][j] = s / diag
		}
	}
}

func TestPoisson2DSPD(t *testing.T) {
	a := Poisson2D(7, 9)
	if a.Rows != 63 {
		t.Fatalf("rows = %d", a.Rows)
	}
	checkSPD(t, "poisson2d", a)
	// Interior row has 5 entries.
	if a.RowNNZ(7+3) == 5 {
		// fine
	}
}

func TestPoisson3DSPD(t *testing.T) {
	a := Poisson3D(4, 5, 3)
	if a.Rows != 60 {
		t.Fatalf("rows = %d", a.Rows)
	}
	checkSPD(t, "poisson3d", a)
	// Fully interior node (if any) has 7 entries; check the center node of
	// a 5x5x5 grid instead.
	b := Poisson3D(5, 5, 5)
	center := (2*5+2)*5 + 2
	if b.RowNNZ(center) != 7 {
		t.Fatalf("center row nnz = %d, want 7", b.RowNNZ(center))
	}
}

func TestThermalAnisoSPD(t *testing.T) {
	a := ThermalAniso(10, 10, 1, 100)
	checkSPD(t, "thermal", a)
	if a.At(0, 1) != -1 || a.At(0, 10) != -100 {
		t.Fatalf("anisotropy not applied: %v %v", a.At(0, 1), a.At(0, 10))
	}
}

func TestThermalAnisoRejectsBadConductivity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ThermalAniso(3, 3, 0, 1)
}

func TestElasticity2DSPD(t *testing.T) {
	a := Elasticity2D(8, 8, 3)
	// Q4 FEM: (nx+1)*(ny+1) nodes minus the clamped x=0 column, 2 dof each.
	if want := 2 * 8 * 9; a.Rows != want {
		t.Fatalf("rows = %d, want %d", a.Rows, want)
	}
	checkSPD(t, "elasticity", a)
}

func TestShell2DSPDAndWideStencil(t *testing.T) {
	a := Shell2D(9, 9)
	checkSPD(t, "shell", a)
	// Interior node (4,4) must have the full 13-point stencil.
	i := 4*9 + 4
	if a.RowNNZ(i) != 13 {
		t.Fatalf("interior stencil nnz = %d, want 13", a.RowNNZ(i))
	}
}

func TestCircuitLaplacianSPDAndIrregular(t *testing.T) {
	a := CircuitLaplacian(200, 6, 42)
	checkSPD(t, "circuit", a)
	// Degree distribution must be irregular: max degree well above average.
	maxDeg, sumDeg := 0, 0
	for i := 0; i < a.Rows; i++ {
		d := a.RowNNZ(i) - 1
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sumDeg) / float64(a.Rows)
	if float64(maxDeg) < 2.5*avg {
		t.Fatalf("degree distribution too regular: max %d vs avg %.1f", maxDeg, avg)
	}
}

func TestCFDDiffusionSPD(t *testing.T) {
	a := CFDDiffusion(12, 12, 1000, 7)
	checkSPD(t, "cfd", a)
	// Coefficient contrast should show up in the entry range.
	min, max := math.Inf(1), 0.0
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j != i {
				v := math.Abs(vals[k])
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
		}
	}
	if max/min < 10 {
		t.Fatalf("coefficient contrast too low: %g", max/min)
	}
}

func TestElectromagneticsSPD(t *testing.T) {
	a := Electromagnetics(150, 3, 5)
	checkSPD(t, "emag", a)
}

func TestModelReductionSPDAndBanded(t *testing.T) {
	a := ModelReduction(100, 10, 2, 9)
	checkSPD(t, "modelred", a)
	// Band must be present.
	if !a.Has(50, 55) || !a.Has(50, 45) {
		t.Fatal("band missing")
	}
}

func TestAcousticsSPDWellConditioned(t *testing.T) {
	a := Acoustics(10, 10, 50)
	checkSPD(t, "acoustics", a)
	// Strong diagonal shift: diag dominates row sums by far.
	if a.At(0, 0) < 50 {
		t.Fatalf("shift not applied: %v", a.At(0, 0))
	}
}

// TestAllGeneratorsSameSeedIdenticalCSR asserts full CSR equality (RowPtr,
// ColIdx and bit-identical Val) for two draws of every generator with the
// same arguments. The parallel-equality property tests lean on this: their
// reference and parallel builds regenerate the input independently.
func TestAllGeneratorsSameSeedIdenticalCSR(t *testing.T) {
	gens := map[string]func() *sparse.CSR{
		"Poisson2D":        func() *sparse.CSR { return Poisson2D(13, 9) },
		"Poisson3D":        func() *sparse.CSR { return Poisson3D(6, 5, 4) },
		"ThermalAniso":     func() *sparse.CSR { return ThermalAniso(10, 8, 1, 25) },
		"Elasticity2D":     func() *sparse.CSR { return Elasticity2D(7, 6, 11) },
		"Shell2D":          func() *sparse.CSR { return Shell2D(9, 7) },
		"CircuitLaplacian": func() *sparse.CSR { return CircuitLaplacian(150, 5, 7) },
		"CFDDiffusion":     func() *sparse.CSR { return CFDDiffusion(11, 9, 1e4, 3) },
		"Electromagnetics": func() *sparse.CSR { return Electromagnetics(120, 6, 5) },
		"ModelReduction":   func() *sparse.CSR { return ModelReduction(140, 4, 9, 13) },
		"Acoustics":        func() *sparse.CSR { return Acoustics(8, 8, 0.02) },
		"ImbalancedMesh":   func() *sparse.CSR { return ImbalancedMesh(10, 10, 0.3, 4, 21) },
	}
	for name, gen := range gens {
		a, b := gen(), gen()
		if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
			t.Fatalf("%s: shape/nnz differ between same-seed draws", name)
		}
		for k := range a.RowPtr {
			if a.RowPtr[k] != b.RowPtr[k] {
				t.Fatalf("%s: RowPtr[%d] differs", name, k)
			}
		}
		for k := range a.ColIdx {
			if a.ColIdx[k] != b.ColIdx[k] {
				t.Fatalf("%s: ColIdx[%d] differs", name, k)
			}
			if a.Val[k] != b.Val[k] {
				t.Fatalf("%s: Val[%d] = %v vs %v, not bit-identical", name, k, a.Val[k], b.Val[k])
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Elasticity2D(6, 6, 11)
	b := Elasticity2D(6, 6, 11)
	if a.NNZ() != b.NNZ() {
		t.Fatal("nondeterministic structure")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatal("nondeterministic values")
		}
	}
	c := CircuitLaplacian(100, 5, 1)
	d := CircuitLaplacian(100, 5, 2)
	if c.NNZ() == d.NNZ() {
		sameVals := true
		for k := range c.Val {
			if k < len(d.Val) && c.Val[k] != d.Val[k] {
				sameVals = false
				break
			}
		}
		if sameVals {
			t.Fatal("different seeds gave identical matrices")
		}
	}
}

func TestRandomRHSNormalization(t *testing.T) {
	b := RandomRHS(1000, 3, 42.5)
	maxAbs := 0.0
	for _, v := range b {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if math.Abs(maxAbs-42.5) > 1e-9 {
		t.Fatalf("max |b| = %v, want 42.5", maxAbs)
	}
	// Deterministic.
	b2 := RandomRHS(1000, 3, 42.5)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("RHS not deterministic")
		}
	}
	// Zero norm edge case.
	z := RandomRHS(5, 1, 0)
	if len(z) != 5 {
		t.Fatal("zero-norm RHS wrong length")
	}
}

// Property: every generator family yields symmetric diagonally-nonnegative
// matrices across random parameters.
func TestQuickGeneratorsSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 3+rng.Intn(8), 3+rng.Intn(8)
		mats := []*sparse.CSR{
			Poisson2D(nx, ny),
			ThermalAniso(nx, ny, 1+rng.Float64()*10, 1+rng.Float64()*10),
			Elasticity2D(nx, ny, seed),
			Shell2D(nx+2, ny+2),
			CircuitLaplacian(20+rng.Intn(50), 4, seed),
			CFDDiffusion(nx, ny, 10+rng.Float64()*100, seed),
			Electromagnetics(20+rng.Intn(40), 3, seed),
			ModelReduction(20+rng.Intn(50), 3+rng.Intn(5), 1, seed),
			Acoustics(nx, ny, rng.Float64()*10),
		}
		for _, m := range mats {
			if !m.IsSymmetric(1e-12) {
				return false
			}
			for i := 0; i < m.Rows; i++ {
				if m.At(i, i) <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDiagShift(t *testing.T) {
	a := Poisson2D(4, 4)
	s := DiagShift(a, 3)
	if s.At(0, 0) != a.At(0, 0)+3 {
		t.Fatalf("shift not applied")
	}
	if s.At(0, 1) != a.At(0, 1) {
		t.Fatalf("off-diagonal changed")
	}
	if a.At(0, 0) != 4 {
		t.Fatalf("original mutated")
	}
}

func TestImbalancedMeshSPDAndImbalanced(t *testing.T) {
	a := ImbalancedMesh(15, 15, 0.25, 8, 3)
	checkSPD(t, "imbalanced", a)
	n := a.Rows
	// The first quarter of the rows must be much denser than the rest.
	denseN := n / 4
	var denseNNZ, restNNZ int
	for i := 0; i < n; i++ {
		if i < denseN {
			denseNNZ += a.RowNNZ(i)
		} else {
			restNNZ += a.RowNNZ(i)
		}
	}
	denseAvg := float64(denseNNZ) / float64(denseN)
	restAvg := float64(restNNZ) / float64(n-denseN)
	if denseAvg < 2*restAvg {
		t.Fatalf("dense region avg %.1f not ≫ rest avg %.1f", denseAvg, restAvg)
	}
}

func TestQ4ElementRigidBodyModes(t *testing.T) {
	// The unit plane-stress element stiffness must be symmetric, PSD, and
	// annihilate the three rigid-body modes (two translations + rotation).
	ke := q4PlaneStress(0.3)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(ke[i][j]-ke[j][i]) > 1e-12 {
				t.Fatalf("ke not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Node coordinates of the unit element in assembly order.
	xs := []float64{0, 1, 1, 0}
	ys := []float64{0, 0, 1, 1}
	modes := [][]float64{
		{1, 0, 1, 0, 1, 0, 1, 0}, // x translation
		{0, 1, 0, 1, 0, 1, 0, 1}, // y translation
		nil,                      // rotation filled below
	}
	rot := make([]float64, 8)
	for n := 0; n < 4; n++ {
		rot[2*n] = -ys[n]
		rot[2*n+1] = xs[n]
	}
	modes[2] = rot
	for mi, mode := range modes {
		for i := 0; i < 8; i++ {
			s := 0.0
			for j := 0; j < 8; j++ {
				s += ke[i][j] * mode[j]
			}
			if math.Abs(s) > 1e-10 {
				t.Fatalf("rigid mode %d not in null space: (ke·m)[%d] = %g", mi, i, s)
			}
		}
	}
	// PSD: xᵀ ke x ≥ 0 for random x.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		var x [8]float64
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		q := 0.0
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				q += x[i] * ke[i][j] * x[j]
			}
		}
		if q < -1e-10 {
			t.Fatalf("element energy negative: %g", q)
		}
	}
}

package matgen

import (
	"math"
	"testing"
)

func TestConvectionDiffusion2D(t *testing.T) {
	a := ConvectionDiffusion2D(8, 7, 10)
	if a.Rows != 56 || a.Cols != 56 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.IsSymmetric(1e-12) {
		t.Fatal("Péclet-skewed instance should be nonsymmetric")
	}
	// p = 0 reduces to the Poisson stencil.
	p0 := ConvectionDiffusion2D(8, 7, 0)
	if !p0.IsSymmetric(0) {
		t.Fatal("zero-Péclet instance should be symmetric")
	}
	// Weak diagonal dominance at every Péclet number.
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		diag, sum := 0.0, 0.0
		for k, j := range cols {
			if j == i {
				diag = vals[k]
			} else {
				sum += math.Abs(vals[k])
			}
		}
		if diag < sum-1e-12 {
			t.Fatalf("row %d not weakly diagonally dominant: %g < %g", i, diag, sum)
		}
	}
}

func TestNonsymCircuit(t *testing.T) {
	a := NonsymCircuit(300, 4, 7)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.IsSymmetric(1e-12) {
		t.Fatal("NonsymCircuit should be nonsymmetric")
	}
	b := NonsymCircuit(300, 4, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed must reproduce the same matrix")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatal("same seed must reproduce the same values")
		}
	}
	// Strict diagonal dominance.
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		diag, sum := 0.0, 0.0
		for k, j := range cols {
			if j == i {
				diag = vals[k]
			} else {
				sum += math.Abs(vals[k])
			}
		}
		if diag <= sum {
			t.Fatalf("row %d not strictly dominant: %g <= %g", i, diag, sum)
		}
	}
}

func TestUnitRHS(t *testing.T) {
	b := UnitRHS(1000, 3)
	ssq := 0.0
	for _, v := range b {
		ssq += v * v
	}
	if math.Abs(math.Sqrt(ssq)-1) > 1e-12 {
		t.Fatalf("‖b‖ = %g, want 1", math.Sqrt(ssq))
	}
	c := UnitRHS(1000, 3)
	for i := range b {
		if b[i] != c[i] {
			t.Fatal("same seed must reproduce the same RHS")
		}
	}
}

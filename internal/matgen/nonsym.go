package matgen

// Nonsymmetric generators — the workload family of the SPAI + GMRES axis.
// Unlike the SPD generators in matgen.go these matrices are deliberately
// structurally or numerically nonsymmetric; CG-family solvers must reject
// them (the facade does) and GMRES must handle them.

import (
	"fmt"
	"math"
	"math/rand"

	"fsaicomm/internal/sparse"
)

// ConvectionDiffusion2D returns the upwind finite-difference discretization
// of −∆u + p·(u_x + u_y) on an nx×ny grid (Dirichlet boundary), where
// peclet >= 0 is the grid Péclet number p — the ratio of convection to
// diffusion at the grid scale. Backward (upwind) differences on the
// convective term keep the matrix weakly diagonally dominant at every
// Péclet number but skew it: the west/south couplings carry the extra
// −p while east/north stay at −1, so symmetry degrades with p. p = 0
// reduces to Poisson2D; large p produces the highly nonsymmetric instances
// where CG breaks down and SPAI-preconditioned GMRES is the right tool.
func ConvectionDiffusion2D(nx, ny int, peclet float64) *sparse.CSR {
	if peclet < 0 || math.IsNaN(peclet) || math.IsInf(peclet, 0) {
		panic(fmt.Sprintf("matgen: invalid Péclet number %g", peclet))
	}
	n := nx * ny
	c := sparse.NewCOO(n, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			c.Add(i, i, 4+2*peclet)
			if x > 0 {
				c.Add(i, id(x-1, y), -(1 + peclet))
			}
			if x < nx-1 {
				c.Add(i, id(x+1, y), -1)
			}
			if y > 0 {
				c.Add(i, id(x, y-1), -(1 + peclet))
			}
			if y < ny-1 {
				c.Add(i, id(x, y+1), -1)
			}
		}
	}
	return c.ToCSR()
}

// NonsymCircuit returns a strictly diagonally dominant but structurally
// asymmetric random matrix modeled on circuit/transport Jacobians: directed
// couplings on a ring (for irreducibility) plus preferential-attachment
// extra arcs with one-sided weights, each row's diagonal set just above its
// off-diagonal absolute sum. Deterministic in (n, avgDeg, seed).
func NonsymCircuit(n, avgDeg int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	c := sparse.NewCOO(n, n)
	type arc struct{ u, v int }
	seen := map[arc]bool{}
	addArc := func(u, v int, w float64) {
		if u == v || seen[arc{u, v}] {
			return
		}
		seen[arc{u, v}] = true
		c.Add(u, v, w)
	}
	// Directed ring: i → i+1 only, the structural asymmetry floor.
	for i := 0; i < n; i++ {
		addArc(i, (i+1)%n, -(0.5 + rng.Float64()))
	}
	extra := n * (avgDeg - 1)
	for k := 0; k < extra; k++ {
		u := rng.Intn(n)
		v := int(math.Floor(float64(n) * math.Pow(rng.Float64(), 2.5)))
		if v >= n {
			v = n - 1
		}
		// Signed one-sided weight: no matching (v, u) arc is added.
		w := rng.NormFloat64()
		if math.Abs(w) < 0.1 {
			w = math.Copysign(0.1, w)
		}
		addArc(u, v, w)
	}
	m := c.ToCSR()
	out := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		cols, vals := m.Row(i)
		sum := 0.0
		for k, j := range cols {
			if j != i {
				sum += math.Abs(vals[k])
				out.Add(i, j, vals[k])
			}
		}
		out.Add(i, i, 1.05*sum+0.1)
	}
	return out.ToCSR()
}

// UnitRHS returns a deterministic pseudo-random right-hand side of length n
// scaled to unit 2-norm — the conventional setup for nonsymmetric test
// problems, where the matrix max norm of RandomRHS has no SPD-energy
// meaning. Deterministic in (n, seed).
func UnitRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	ssq := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		ssq += b[i] * b[i]
	}
	if ssq == 0 {
		return b
	}
	inv := 1 / math.Sqrt(ssq)
	for i := range b {
		b[i] *= inv
	}
	return b
}

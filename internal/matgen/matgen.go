// Package matgen generates deterministic synthetic symmetric positive
// definite matrices covering the problem classes of the paper's test set
// (SuiteSparse matrices are not redistributable offline, so the evaluation
// uses scaled synthetic instances of the same classes — see DESIGN.md).
//
// Every generator is seeded and pure: the same arguments always produce the
// same matrix. The generators in this file are symmetric, with positive
// definiteness guaranteed either by assembly of SPD stencils or by strict
// diagonal dominance with positive diagonal; nonsym.go adds the deliberately
// nonsymmetric generators of the SPAI + GMRES axis.
package matgen

import (
	"fmt"
	"math"
	"math/rand"

	"fsaicomm/internal/sparse"
)

// Poisson2D returns the 5-point finite-difference Laplacian on an nx×ny
// grid (Dirichlet boundary): the canonical "2D/3D Problem" class.
func Poisson2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	c := sparse.NewCOO(n, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			c.Add(i, i, 4)
			if x > 0 {
				c.Add(i, id(x-1, y), -1)
			}
			if x < nx-1 {
				c.Add(i, id(x+1, y), -1)
			}
			if y > 0 {
				c.Add(i, id(x, y-1), -1)
			}
			if y < ny-1 {
				c.Add(i, id(x, y+1), -1)
			}
		}
	}
	return c.ToCSR()
}

// Poisson3D returns the 7-point Laplacian on an nx×ny×nz grid.
func Poisson3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	c := sparse.NewCOO(n, n)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := id(x, y, z)
				c.Add(i, i, 6)
				if x > 0 {
					c.Add(i, id(x-1, y, z), -1)
				}
				if x < nx-1 {
					c.Add(i, id(x+1, y, z), -1)
				}
				if y > 0 {
					c.Add(i, id(x, y-1, z), -1)
				}
				if y < ny-1 {
					c.Add(i, id(x, y+1, z), -1)
				}
				if z > 0 {
					c.Add(i, id(x, y, z-1), -1)
				}
				if z < nz-1 {
					c.Add(i, id(x, y, z+1), -1)
				}
			}
		}
	}
	return c.ToCSR()
}

// ThermalAniso returns an anisotropic diffusion operator on an nx×ny grid
// with conductivities kx, ky > 0 ("Thermal Problem" class). Strong
// anisotropy produces the slow CG convergence typical of thermal matrices.
func ThermalAniso(nx, ny int, kx, ky float64) *sparse.CSR {
	if kx <= 0 || ky <= 0 {
		panic(fmt.Sprintf("matgen: non-positive conductivity %g/%g", kx, ky))
	}
	n := nx * ny
	c := sparse.NewCOO(n, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			c.Add(i, i, 2*kx+2*ky)
			if x > 0 {
				c.Add(i, id(x-1, y), -kx)
			}
			if x < nx-1 {
				c.Add(i, id(x+1, y), -kx)
			}
			if y > 0 {
				c.Add(i, id(x, y-1), -ky)
			}
			if y < ny-1 {
				c.Add(i, id(x, y+1), -ky)
			}
		}
	}
	return c.ToCSR()
}

// Elasticity2D returns a genuine finite-element plane-stress elasticity
// operator ("Structural Problem" class): Q4 elements on an nx-by-ny element
// grid, 2 dofs per node, left edge clamped (removing rigid-body modes), with
// a lognormal per-element Young's modulus field providing the material
// contrast that makes real structural systems ill-conditioned. The result
// has 2*nx*(ny+1) unknowns and is SPD by assembly.
func Elasticity2D(nx, ny int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	ke := q4PlaneStress(0.3) // unit-modulus element stiffness, scaled per element

	nodesX, nodesY := nx+1, ny+1
	nodeID := func(x, y int) int { return y*nodesX + x }
	// Dof numbering: skip clamped nodes (x == 0).
	dof := make([]int, nodesX*nodesY)
	nd := 0
	for y := 0; y < nodesY; y++ {
		for x := 0; x < nodesX; x++ {
			if x == 0 {
				dof[nodeID(x, y)] = -1
				continue
			}
			dof[nodeID(x, y)] = nd
			nd++
		}
	}
	n := 2 * nd
	c := sparse.NewCOO(n, n)
	for ey := 0; ey < ny; ey++ {
		for ex := 0; ex < nx; ex++ {
			e := math.Exp(1.5 * rng.NormFloat64()) // element modulus
			nodes := [4]int{
				nodeID(ex, ey), nodeID(ex+1, ey),
				nodeID(ex+1, ey+1), nodeID(ex, ey+1),
			}
			for a := 0; a < 4; a++ {
				for b := 0; b < 4; b++ {
					da, db := dof[nodes[a]], dof[nodes[b]]
					if da < 0 || db < 0 {
						continue
					}
					for ca := 0; ca < 2; ca++ {
						for cb := 0; cb < 2; cb++ {
							v := e * ke[2*a+ca][2*b+cb]
							if v != 0 {
								c.Add(2*da+ca, 2*db+cb, v)
							}
						}
					}
				}
			}
		}
	}
	return c.ToCSR()
}

// q4PlaneStress computes the 8x8 stiffness matrix of a unit-square Q4
// plane-stress element with unit Young's modulus and the given Poisson
// ratio, by 2x2 Gauss quadrature.
func q4PlaneStress(nu float64) [8][8]float64 {
	d00 := 1 / (1 - nu*nu)
	d01 := nu * d00
	d22 := (1 - nu) / 2 * d00
	gp := []float64{-1 / math.Sqrt(3), 1 / math.Sqrt(3)}
	// Natural-coordinate node positions of the Q4 element.
	xi := [4]float64{-1, 1, 1, -1}
	eta := [4]float64{-1, -1, 1, 1}
	var ke [8][8]float64
	for _, gx := range gp {
		for _, gy := range gp {
			// Shape-function derivatives in physical coordinates; for a
			// unit-square element dx/dxi = 1/2, so dN/dx = 2*dN/dxi and
			// detJ = 1/4.
			var dNdx, dNdy [4]float64
			for i := 0; i < 4; i++ {
				dNdx[i] = 2 * 0.25 * xi[i] * (1 + eta[i]*gy)
				dNdy[i] = 2 * 0.25 * eta[i] * (1 + xi[i]*gx)
			}
			const detJ = 0.25
			// ke += Bᵀ D B detJ with B the 3x8 strain-displacement matrix.
			var b [3][8]float64
			for i := 0; i < 4; i++ {
				b[0][2*i] = dNdx[i]
				b[1][2*i+1] = dNdy[i]
				b[2][2*i] = dNdy[i]
				b[2][2*i+1] = dNdx[i]
			}
			var db [3][8]float64
			for j := 0; j < 8; j++ {
				db[0][j] = d00*b[0][j] + d01*b[1][j]
				db[1][j] = d01*b[0][j] + d00*b[1][j]
				db[2][j] = d22 * b[2][j]
			}
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					sum := 0.0
					for k := 0; k < 3; k++ {
						sum += b[k][i] * db[k][j]
					}
					ke[i][j] += sum * detJ
				}
			}
		}
	}
	return ke
}

// Shell2D returns a 13-point biharmonic-like plate/shell stencil on an
// nx×ny grid ("Subsequent Structural Problem" / shell class: wider stencils,
// higher condition numbers).
func Shell2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	c := sparse.NewCOO(n, n)
	id := func(x, y int) int { return y*nx + x }
	type off struct {
		dx, dy int
		v      float64
	}
	// Discrete biharmonic (∆²) 13-point stencil.
	stencil := []off{
		{0, 0, 20},
		{1, 0, -8}, {-1, 0, -8}, {0, 1, -8}, {0, -1, -8},
		{1, 1, 2}, {1, -1, 2}, {-1, 1, 2}, {-1, -1, 2},
		{2, 0, 1}, {-2, 0, 1}, {0, 2, 1}, {0, -2, 1},
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			for _, s := range stencil {
				xx, yy := x+s.dx, y+s.dy
				if xx < 0 || xx >= nx || yy < 0 || yy >= ny {
					continue
				}
				c.Add(i, id(xx, yy), s.v)
			}
		}
	}
	// The clipped stencil stays SPD (it is a Gram matrix of the discrete
	// Laplacian with Dirichlet boundary) but add a small mass shift for
	// robustness on tiny grids.
	m := c.ToCSR()
	for i := 0; i < n; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if j == i {
				vals[k] += 0.01
			}
		}
	}
	return m
}

// CircuitLaplacian returns a weighted graph Laplacian plus diagonal shift on
// a random power-law-ish graph ("Circuit Simulation Problem" class: very
// irregular degree distribution).
func CircuitLaplacian(n, avgDeg int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	c := sparse.NewCOO(n, n)
	type edge struct{ u, v int }
	seen := map[edge]bool{}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		e := edge{u, v}
		if seen[e] {
			return
		}
		seen[e] = true
		w := 0.5 + rng.Float64()
		c.AddSym(u, v, -w)
		c.Add(u, u, w)
		c.Add(v, v, w)
	}
	// Ring for connectivity, then preferential-attachment-style extra edges
	// (biased toward low indices → a few high-degree "rail" nodes).
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n)
	}
	extra := n * (avgDeg - 2) / 2
	for k := 0; k < extra; k++ {
		u := rng.Intn(n)
		v := int(math.Floor(float64(n) * math.Pow(rng.Float64(), 2.5)))
		if v >= n {
			v = n - 1
		}
		addEdge(u, v)
	}
	// Grounding shift keeps it positive definite (Laplacian alone is PSD).
	for i := 0; i < n; i++ {
		c.Add(i, i, 0.002)
	}
	return c.ToCSR()
}

// CFDDiffusion returns a variable-coefficient diffusion operator on an
// nx×ny grid with a smooth lognormal coefficient field ("Computational
// Fluid Dynamics Problem" class: strong coefficient jumps slow CG down).
func CFDDiffusion(nx, ny int, contrast float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny
	id := func(x, y int) int { return y*nx + x }
	// Smooth random field via a few random Fourier modes.
	type mode struct{ kx, ky, ph, amp float64 }
	modes := make([]mode, 6)
	for i := range modes {
		modes[i] = mode{
			kx:  float64(1 + rng.Intn(4)),
			ky:  float64(1 + rng.Intn(4)),
			ph:  2 * math.Pi * rng.Float64(),
			amp: rng.Float64(),
		}
	}
	coeff := func(x, y int) float64 {
		s := 0.0
		for _, m := range modes {
			s += m.amp * math.Sin(m.kx*float64(x)/float64(nx)*2*math.Pi+
				m.ky*float64(y)/float64(ny)*2*math.Pi+m.ph)
		}
		return math.Exp(s / 3 * math.Log(contrast))
	}
	c := sparse.NewCOO(n, n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			diag := 0.0
			add := func(xx, yy int) {
				if xx < 0 || xx >= nx || yy < 0 || yy >= ny {
					diag += coeff(x, y) // boundary face: Dirichlet
					return
				}
				k := 0.5 * (coeff(x, y) + coeff(xx, yy))
				c.Add(i, id(xx, yy), -k)
				diag += k
			}
			add(x-1, y)
			add(x+1, y)
			add(x, y-1)
			add(x, y+1)
			c.Add(i, i, diag)
		}
	}
	return c.ToCSR()
}

// Electromagnetics returns an edge-weighted Laplacian on a random geometric
// graph ("Electromagnetics Problem" class surrogate: mesh-like but with
// irregular connectivity and wide weight range).
func Electromagnetics(n, degree int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	// Points on a unit square, connected to nearest-in-sample candidates.
	px := make([]float64, n)
	py := make([]float64, n)
	for i := 0; i < n; i++ {
		px[i], py[i] = rng.Float64(), rng.Float64()
	}
	c := sparse.NewCOO(n, n)
	type edge struct{ u, v int }
	seen := map[edge]bool{}
	addEdge := func(u, v int, w float64) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		e := edge{u, v}
		if seen[e] {
			return
		}
		seen[e] = true
		c.AddSym(u, v, -w)
		c.Add(u, u, w)
		c.Add(v, v, w)
	}
	for i := 0; i < n; i++ {
		// Chain edge for connectivity.
		addEdge(i, (i+1)%n, 1)
		for k := 0; k < degree; k++ {
			// Sample candidates; keep the nearest (locally clustered edges).
			best, bestD := -1, math.Inf(1)
			for s := 0; s < 6; s++ {
				j := rng.Intn(n)
				if j == i {
					continue
				}
				d := (px[i]-px[j])*(px[i]-px[j]) + (py[i]-py[j])*(py[i]-py[j])
				if d < bestD {
					best, bestD = j, d
				}
			}
			if best >= 0 {
				w := 1 / (bestD + 1e-3) // wide dynamic range of weights
				addEdge(i, best, w)
			}
		}
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, 0.005)
	}
	return c.ToCSR()
}

// ModelReduction returns a banded SPD matrix with sparse long-range
// couplings ("Model Reduction Problem" class: dense bands from projected
// dynamics plus scattered couplings).
func ModelReduction(n, band, longRange int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j <= i+band && j < n; j++ {
			v := -1.0 / float64(j-i)
			c.AddSym(i, j, v)
		}
	}
	for k := 0; k < longRange*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			c.AddSym(i, j, -0.05*rng.Float64())
		}
	}
	m := c.ToCSR()
	out := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		cols, vals := m.Row(i)
		sum := 0.0
		for k, j := range cols {
			if j != i {
				sum += math.Abs(vals[k])
				out.Add(i, j, vals[k])
			}
		}
		out.Add(i, i, 1.0005*sum+0.001)
	}
	return out.ToCSR()
}

// Acoustics returns a shifted Laplacian A = K + sigma*M on an nx×ny grid
// ("Acoustics Problem" class; sigma > 0 keeps it SPD and very well
// conditioned, like qa8fm in the paper's set which converges in 13
// iterations).
func Acoustics(nx, ny int, sigma float64) *sparse.CSR {
	base := Poisson2D(nx, ny)
	out := base.Clone()
	for i := 0; i < out.Rows; i++ {
		cols, vals := out.Row(i)
		for k, j := range cols {
			if j == i {
				vals[k] += sigma
			}
		}
	}
	return out
}

// RandomRHS returns a deterministic pseudo-random right-hand side of length
// n whose largest absolute entry equals matrixMaxNorm — the paper's setup
// ("a random right-hand side ... normalized to the matrix max norm"). It is
// a max-norm (not 2-norm) normalization: entries are standard normal draws
// rescaled so max|b_i| = matrixMaxNorm. When either the draw's max or
// matrixMaxNorm is zero the unscaled draws are returned. Deterministic in
// (n, seed). For nonsymmetric problems see UnitRHS, which scales to unit
// 2-norm instead.
func RandomRHS(n int, seed int64, matrixMaxNorm float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	maxAbs := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		if a := math.Abs(b[i]); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 || matrixMaxNorm == 0 {
		return b
	}
	scale := matrixMaxNorm / maxAbs
	for i := range b {
		b[i] *= scale
	}
	return b
}

// DiagShift returns a copy of a with sigma added to every diagonal entry
// (improves conditioning; used for the well-conditioned catalog entries that
// converge in a handful of iterations, like thermomech_dM).
func DiagShift(a *sparse.CSR, sigma float64) *sparse.CSR {
	out := a.Clone()
	for i := 0; i < out.Rows; i++ {
		cols, vals := out.Row(i)
		for k, j := range cols {
			if j == i {
				vals[k] += sigma
			}
		}
	}
	return out
}

// ImbalancedMesh returns a Poisson grid with one densely coupled region: the
// first denseFrac of the nodes receive extra random couplings. Partitioned
// by rows, some processes end up with far more entries than others — the
// workload class that motivates the dynamic filtering of §5.3.3 (matrix
// consph in the paper's set).
func ImbalancedMesh(nx, ny int, denseFrac float64, extraPerNode int, seed int64) *sparse.CSR {
	base := Poisson2D(nx, ny)
	n := base.Rows
	rng := rand.New(rand.NewSource(seed))
	dense := int(float64(n) * denseFrac)
	c := NewCOOFromCSR(base)
	for k := 0; k < dense*extraPerNode; k++ {
		i, j := rng.Intn(dense), rng.Intn(dense)
		if i != j {
			c.AddSym(i, j, -0.01)
		}
	}
	m := c.ToCSR()
	// Restore strict diagonal dominance. The dense region gets a generous
	// margin (locally well conditioned: its many extra entries inflate the
	// extension workload without gating convergence), while the grid region
	// stays near-singular and dominates the iteration count — the §5.3.3
	// situation where dropping the overloaded process's extension entries
	// costs little accuracy.
	out := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		cols, vals := m.Row(i)
		sum := 0.0
		for k, j := range cols {
			if j != i {
				sum += math.Abs(vals[k])
				out.Add(i, j, vals[k])
			}
		}
		if i < dense {
			out.Add(i, i, 1.3*sum+0.1)
		} else {
			out.Add(i, i, 1.0005*sum+0.001)
		}
	}
	return out.ToCSR()
}

// NewCOOFromCSR copies a CSR matrix into a COO builder so callers can append
// additional entries.
func NewCOOFromCSR(a *sparse.CSR) *sparse.COO {
	c := sparse.NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			c.Add(i, j, vals[k])
		}
	}
	return c
}

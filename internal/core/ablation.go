package core

import (
	"fmt"
	"sort"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/sparse"
)

// ExtendPatternNaive is the ablation of the communication-aware rule: it
// extends the pattern with every cache-line candidate in *global* index
// space — including halo candidates whose unknowns were never exchanged —
// exactly what a cache-aware-but-communication-oblivious extension would
// do. The result is a superset of the FSAIE-Comm extension whose halo
// update needs MORE unknowns and possibly more neighbour processes,
// demonstrating why Algorithm 3's admissibility test exists (the paper
// argues this qualitatively; cmd/fsaibench -exp ablation measures it).
func ExtendPatternNaive(l *distmat.Layout, s *fsai.DistRows, opt ExtendOptions) (*fsai.DistRows, error) {
	if opt.LineBytes < 8 || opt.LineBytes%8 != 0 {
		return nil, fmt.Errorf("core: line size %d not a positive multiple of 8 bytes", opt.LineBytes)
	}
	w := opt.LineBytes / 8
	lo, hi := s.Lo, s.Hi
	nLocal := hi - lo
	n := s.Pattern.Cols

	rowSets := make([][]int, nLocal)
	for li := 0; li < nLocal; li++ {
		gi := lo + li
		orig := s.Pattern.Row(li)
		set := append([]int(nil), orig...)
		seenLine := map[int]bool{}
		for _, g := range orig {
			line := g / w
			if seenLine[line] {
				continue
			}
			seenLine[line] = true
			start := line * w
			end := start + w
			if end > n {
				end = n
			}
			for k := start; k < end; k++ {
				if k <= gi {
					set = append(set, k)
				}
			}
		}
		sort.Ints(set)
		rowSets[li] = set
	}
	return &fsai.DistRows{
		Lo: lo, Hi: hi,
		Pattern: sparse.PatternFromRows(nLocal, n, rowSets),
	}, nil
}

package core

import (
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
)

// FilterStrategy selects how the Filter value is applied across processes.
type FilterStrategy int

const (
	// StaticFilter uses the same Filter value on every process (the
	// previously published approach).
	StaticFilter FilterStrategy = iota
	// DynamicFilter adjusts the Filter per process by bisection until the
	// per-process entry counts are balanced (Algorithm 4).
	DynamicFilter
)

// String names the strategy as the paper's tables do.
func (s FilterStrategy) String() string {
	if s == DynamicFilter {
		return "dynamic"
	}
	return "static"
}

// imbHigh is the imbalance tolerance of Algorithm 4: a process is
// overloaded when its entry count exceeds 1.05 times the average.
const imbHigh = 1.05

// Rounds of the global balance loop and steps of each local bisection.
const (
	maxBalanceRounds    = 6
	maxBisectionSteps   = 40
	filterDoublingLimit = 1e6
)

// DynamicFilterValue implements Algorithm 4 collectively: every rank passes
// its precomputed extended factor gExt (local rows, global columns) and the
// initial Filter value, and receives its per-rank New_Filter.
//
// Eligibility is decided once with the initial Filter (Algorithm 4 line 5):
// only processes overloaded at entry (relative load > 1.05) adjust. Each
// adjusting process bisects — doubling to bracket, then midpoint steps, the
// Prev_filter/New_filter scheme of Algorithm 4 — for the SMALLEST filter
// whose surviving entry count meets its balance target, i.e. it filters out
// as little of the extension as the load constraint allows, keeping the
// numerically largest entries. A few global rounds re-evaluate the average
// as the overloaded processes shed entries. Entries of the protected base
// pattern never count against the filter (they cannot be dropped), so a
// process whose base alone exceeds the target simply drops its whole
// extension. All ranks must call together.
func DynamicFilterValue(c *simmpi.Comm, gExt *sparse.CSR, lo int, filter float64, base *sparse.Pattern) float64 {
	if filter <= 0 {
		// A non-positive filter keeps every entry; counts could never
		// change, so seed the bisection from a tiny positive value instead.
		filter = 1e-8
	}
	myF := filter
	count := fsai.CountFilteredDist(gExt, lo, myF, base)
	size := float64(c.Size())

	total := c.AllreduceSumInt64(count)[0]
	if total == 0 {
		return myF
	}
	adjusting := float64(count)*size/float64(total) > imbHigh

	for round := 0; round < maxBalanceRounds; round++ {
		avg := float64(total) / size
		target := int64(imbHigh * avg)
		needWork := 0.0
		if adjusting && count > target {
			needWork = 1
		}
		if c.AllreduceMax(needWork)[0] == 0 {
			break
		}
		if needWork == 1 {
			myF = bisectFilter(gExt, lo, base, filter, target)
			count = fsai.CountFilteredDist(gExt, lo, myF, base)
		}
		total = c.AllreduceSumInt64(count)[0]
		if total == 0 {
			break
		}
	}
	return myF
}

// bisectFilter finds (approximately) the smallest filter ≥ start whose
// surviving count is ≤ target: double to bracket, then midpoint steps.
func bisectFilter(gExt *sparse.CSR, lo int, base *sparse.Pattern, start float64, target int64) float64 {
	loF := start
	hiF := start
	for fsai.CountFilteredDist(gExt, lo, hiF, base) > target {
		loF = hiF
		hiF *= 2
		if hiF > filterDoublingLimit {
			// Even dropping every filterable entry cannot reach the target
			// (the protected base alone exceeds it); give up at the limit.
			return hiF
		}
	}
	if hiF == start {
		return start // already within target
	}
	for step := 0; step < maxBisectionSteps; step++ {
		mid := (loF + hiF) / 2
		if fsai.CountFilteredDist(gExt, lo, mid, base) > target {
			loF = mid
		} else {
			hiF = mid
		}
	}
	return hiF
}

package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/partition"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

const testTimeout = 30 * time.Second

// distSetup partitions a with the multilevel partitioner and returns the
// permuted matrix plus layout.
func distSetup(t testing.TB, a *sparse.CSR, nranks int) (*sparse.CSR, *distmat.Layout) {
	t.Helper()
	g := partition.GraphFromMatrix(a)
	part, err := partition.Multilevel(g, nranks, partition.Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	pa, l, _ := distmat.ApplyPartition(a, part, nranks)
	return pa, l
}

func TestExtendPatternSerialSupersetAndCacheBounded(t *testing.T) {
	a := matgen.Poisson2D(16, 16)
	s := fsai.LowerPattern(a)
	for _, lineBytes := range []int{64, 256} {
		ext, err := ExtendPatternSerial(s, lineBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !ext.Contains(s) {
			t.Fatalf("line %d: extension lost entries", lineBytes)
		}
		if ext.NNZ() <= s.NNZ() {
			t.Fatalf("line %d: nothing added", lineBytes)
		}
		w := lineBytes / 8
		// Every added entry must share a cache line with an original entry
		// and stay lower triangular.
		for i := 0; i < ext.Rows; i++ {
			orig := s.Row(i)
			lineHas := map[int]bool{}
			for _, c := range orig {
				lineHas[c/w] = true
			}
			for _, c := range ext.Row(i) {
				if c > i {
					t.Fatalf("line %d: upper entry (%d,%d)", lineBytes, i, c)
				}
				if !lineHas[c/w] {
					t.Fatalf("line %d: entry (%d,%d) outside fetched lines", lineBytes, i, c)
				}
			}
		}
	}
}

func TestWiderLinesExtendMore(t *testing.T) {
	a := matgen.Elasticity2D(10, 10, 3)
	s := fsai.LowerPattern(a)
	e64, err := ExtendPatternSerial(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	e256, err := ExtendPatternSerial(s, 256)
	if err != nil {
		t.Fatal(err)
	}
	if e256.NNZ() <= e64.NNZ() {
		t.Fatalf("256B extension (%d) not larger than 64B (%d)", e256.NNZ(), e64.NNZ())
	}
	if !e256.Contains(e64) {
		t.Fatal("wider line does not contain narrower extension")
	}
}

func TestExtendPatternBadLineSize(t *testing.T) {
	s := fsai.LowerPattern(matgen.Poisson2D(3, 3))
	if _, err := ExtendPatternSerial(s, 0); err == nil {
		t.Fatal("line size 0 accepted")
	}
	if _, err := ExtendPatternSerial(s, 12); err == nil {
		t.Fatal("line size 12 accepted")
	}
}

// runBuild builds a preconditioner variant on nranks ranks and returns
// per-rank builds plus the world for meter inspection.
func runBuild(t testing.TB, pa *sparse.CSR, l *distmat.Layout, cfg Config) ([]*Build, *simmpi.World) {
	t.Helper()
	nranks := l.NRanks()
	builds := make([]*Build, nranks)
	w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		b, err := BuildPrecond(c, l, distmat.ExtractLocalRows(pa, lo, hi), cfg)
		if err != nil {
			return err
		}
		builds[c.Rank()] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return builds, w
}

func TestCommunicationInvariance(t *testing.T) {
	// THE paper invariant: the halo-exchange plans of the FSAIE-Comm
	// extended factor (G and Gᵀ) exchange exactly the same unknown sets
	// between the same peers as the unextended FSAI factor.
	for _, tc := range []struct {
		name string
		a    *sparse.CSR
	}{
		{"poisson", matgen.Poisson2D(14, 14)},
		{"elasticity", matgen.Elasticity2D(8, 8, 5)},
		{"circuit", matgen.CircuitLaplacian(300, 6, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nranks := 4
			pa, l := distSetup(t, tc.a, nranks)
			base, _ := runBuild(t, pa, l, Config{Method: FSAI, LineBytes: 64})
			ext, _ := runBuild(t, pa, l, Config{Method: FSAIEComm, Filter: 0, Strategy: StaticFilter, LineBytes: 64})
			for r := 0; r < nranks; r++ {
				// Unfiltered FSAIE-Comm: exchanged unknown sets of G must
				// match FSAI exactly (extension admits only already-exchanged
				// unknowns, and supersets of the pattern keep all columns).
				bG := base[r].GOp
				eG := ext[r].GOp
				if !distmat.GlobalsEqual(bG.Plan.RecvGlobals(bG.LZ), eG.Plan.RecvGlobals(eG.LZ)) {
					t.Fatalf("rank %d: G recv sets changed", r)
				}
				if !distmat.GlobalsEqual(bG.Plan.SendGlobals(bG.LZ), eG.Plan.SendGlobals(eG.LZ)) {
					t.Fatalf("rank %d: G send sets changed", r)
				}
				// Gᵀ exchanges must not grow either: every unknown Gᵀ_ext
				// receives was already received by Gᵀ_base.
				bT := base[r].GTOp
				eT := ext[r].GTOp
				bRecv := bT.Plan.RecvGlobals(bT.LZ)
				eRecv := eT.Plan.RecvGlobals(eT.LZ)
				for peer := range eRecv {
					have := map[int]bool{}
					for _, g := range bRecv[peer] {
						have[g] = true
					}
					for _, g := range eRecv[peer] {
						if !have[g] {
							t.Fatalf("rank %d: Gᵀ now receives unknown %d from %d", r, g, peer)
						}
					}
				}
			}
		})
	}
}

func TestSolveTrafficIdenticalAcrossMethods(t *testing.T) {
	// Byte-metered proof: one PCG iteration loop exchanges exactly the same
	// volume under FSAI and unfiltered FSAIE-Comm.
	a := matgen.Poisson2D(12, 12)
	nranks := 4
	pa, l := distSetup(t, a, nranks)
	b := matgen.RandomRHS(pa.Rows, 5, pa.MaxNorm())

	solveBytes := func(method Method) (int64, int) {
		var bytes int64
		iters := 0
		_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(pa, lo, hi)
			bd, err := BuildPrecond(c, l, aRows, Config{Method: method, Filter: 0, Strategy: StaticFilter, LineBytes: 64})
			if err != nil {
				return err
			}
			aOp := distmat.NewOp(c, l, lo, hi, aRows)
			c.Barrier()
			if c.Rank() == 0 {
				c.Meter().Reset() // meter the solve only
			}
			c.Barrier()
			x := make([]float64, hi-lo)
			st, err := krylov.DistCG(c, aOp, b[lo:hi], x, krylov.NewDistSplit(bd.GOp, bd.GTOp), krylov.Options{MaxIter: 2000}, nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				iters = st.Iterations
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return bytes, iters
	}
	_ = solveBytes
	// Per-iteration byte volume: run both methods, dividing total metered
	// bytes by iterations.
	perIter := map[Method]float64{}
	for _, m := range []Method{FSAI, FSAIEComm} {
		var total int64
		var iters int
		w, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(pa, lo, hi)
			bd, err := BuildPrecond(c, l, aRows, Config{Method: m, Filter: 0, Strategy: StaticFilter, LineBytes: 64})
			if err != nil {
				return err
			}
			aOp := distmat.NewOp(c, l, lo, hi, aRows)
			c.Barrier()
			if c.Rank() == 0 {
				c.Meter().Reset()
			}
			c.Barrier()
			x := make([]float64, hi-lo)
			st, err := krylov.DistCG(c, aOp, b[lo:hi], x, krylov.NewDistSplit(bd.GOp, bd.GTOp), krylov.Options{MaxIter: 4000}, nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				iters = st.Iterations
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		total = w.Meter().TotalP2PBytes()
		perIter[m] = float64(total) / float64(iters)
	}
	if perIter[FSAI] != perIter[FSAIEComm] {
		t.Fatalf("per-iteration traffic differs: FSAI %.1f vs FSAIE-Comm %.1f bytes", perIter[FSAI], perIter[FSAIEComm])
	}
}

func TestMethodHierarchyIterations(t *testing.T) {
	// FSAIE-Comm pattern ⊇ FSAIE pattern ⊇ FSAI pattern (unfiltered), and
	// iterations should not increase along the chain.
	for _, tc := range []struct {
		name string
		a    *sparse.CSR
	}{
		{"poisson", matgen.Poisson2D(16, 16)},
		{"thermal", matgen.ThermalAniso(14, 14, 1, 40)},
		{"elasticity", matgen.Elasticity2D(9, 9, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nranks := 4
			pa, l := distSetup(t, tc.a, nranks)
			b := matgen.RandomRHS(pa.Rows, 7, pa.MaxNorm())
			iters := map[Method]int{}
			nnz := map[Method]int64{}
			for _, m := range []Method{FSAI, FSAIE, FSAIEComm} {
				builds, _ := runBuild(t, pa, l, Config{Method: m, Filter: 0, Strategy: StaticFilter, LineBytes: 64})
				nnz[m] = builds[0].FinalNNZGlobal
				var itersM int
				_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
					lo, hi := l.Range(c.Rank())
					aRows := distmat.ExtractLocalRows(pa, lo, hi)
					bd, err := BuildPrecond(c, l, aRows, Config{Method: m, Filter: 0, Strategy: StaticFilter, LineBytes: 64})
					if err != nil {
						return err
					}
					aOp := distmat.NewOp(c, l, lo, hi, aRows)
					x := make([]float64, hi-lo)
					st, err := krylov.DistCG(c, aOp, b[lo:hi], x, krylov.NewDistSplit(bd.GOp, bd.GTOp), krylov.Options{MaxIter: 5000}, nil)
					if err != nil {
						return err
					}
					if c.Rank() == 0 {
						itersM = st.Iterations
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				iters[m] = itersM
			}
			if !(nnz[FSAI] <= nnz[FSAIE] && nnz[FSAIE] <= nnz[FSAIEComm]) {
				t.Fatalf("nnz hierarchy violated: %v", nnz)
			}
			if nnz[FSAIEComm] <= nnz[FSAIE] {
				t.Fatalf("FSAIE-Comm added no halo entries over FSAIE: %v", nnz)
			}
			// Allow small noise but require the trend: extensions don't hurt.
			if iters[FSAIE] > iters[FSAI]+2 || iters[FSAIEComm] > iters[FSAIE]+2 {
				t.Fatalf("iteration hierarchy violated: %v", iters)
			}
			if iters[FSAIEComm] >= iters[FSAI] {
				t.Fatalf("FSAIE-Comm (%d) did not reduce iterations vs FSAI (%d)", iters[FSAIEComm], iters[FSAI])
			}
		})
	}
}

func TestBuildPrecondSolvesCorrectly(t *testing.T) {
	a := matgen.CFDDiffusion(10, 10, 200, 9)
	nranks := 3
	pa, l := distSetup(t, a, nranks)
	b := matgen.RandomRHS(pa.Rows, 11, pa.MaxNorm())
	x := make([]float64, pa.Rows)
	_, err := simmpi.Run(nranks, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		aRows := distmat.ExtractLocalRows(pa, lo, hi)
		bd, err := BuildPrecond(c, l, aRows, Config{Method: FSAIEComm, Filter: 0.01, Strategy: DynamicFilter, LineBytes: 64})
		if err != nil {
			return err
		}
		aOp := distmat.NewOp(c, l, lo, hi, aRows)
		xl := make([]float64, hi-lo)
		st, err := krylov.DistCG(c, aOp, b[lo:hi], xl, krylov.NewDistSplit(bd.GOp, bd.GTOp), krylov.Options{}, nil)
		if err != nil {
			return err
		}
		if !st.Converged {
			return fmt.Errorf("not converged: %+v", st)
		}
		copy(x[lo:hi], xl)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Residual check.
	r := make([]float64, pa.Rows)
	pa.MulVec(x, r)
	maxRes := 0.0
	for i := range r {
		d := b[i] - r[i]
		if d < 0 {
			d = -d
		}
		if d > maxRes {
			maxRes = d
		}
	}
	if maxRes > 1e-4*pa.MaxNorm() {
		t.Fatalf("residual %g too large", maxRes)
	}
}

func TestFilterReducesNNZMonotonically(t *testing.T) {
	a := matgen.Elasticity2D(8, 8, 13)
	nranks := 2
	pa, l := distSetup(t, a, nranks)
	var prev int64 = 1 << 62
	for _, f := range []float64{0.01, 0.05, 0.1, 0.2} {
		builds, _ := runBuild(t, pa, l, Config{Method: FSAIEComm, Filter: f, Strategy: StaticFilter, LineBytes: 64})
		if builds[0].FinalNNZGlobal > prev {
			t.Fatalf("filter %v: nnz %d grew above %d", f, builds[0].FinalNNZGlobal, prev)
		}
		prev = builds[0].FinalNNZGlobal
	}
}

func TestDynamicFilterImprovesImbalance(t *testing.T) {
	// A matrix whose extension is deliberately imbalanced: one dense-ish
	// region and one sparse region, split by a block layout.
	n := 400
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 8)
		if i > 0 {
			coo.AddSym(i, i-1, -1)
		}
	}
	// First half: many extra couplings → much larger extended rows.
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 6*n; k++ {
		i := rng.Intn(n / 2)
		j := rng.Intn(n / 2)
		if i != j {
			coo.AddSym(i, j, -0.02)
		}
	}
	a := coo.ToCSR()
	l := distmat.NewUniformLayout(n, 4)

	run := func(strategy FilterStrategy) *Build {
		builds := make([]*Build, 4)
		_, err := simmpi.Run(4, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			bd, err := BuildPrecond(c, l, distmat.ExtractLocalRows(a, lo, hi),
				Config{Method: FSAIEComm, Filter: 0.001, Strategy: strategy, LineBytes: 256})
			if err != nil {
				return err
			}
			builds[c.Rank()] = bd
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return builds[0]
	}
	st := run(StaticFilter)
	dy := run(DynamicFilter)
	if st.ImbalanceIndex >= 0.95 {
		t.Skipf("static build unexpectedly balanced (%.3f); workload too tame", st.ImbalanceIndex)
	}
	if dy.ImbalanceIndex <= st.ImbalanceIndex {
		t.Fatalf("dynamic filter did not improve imbalance: static %.3f dynamic %.3f",
			st.ImbalanceIndex, dy.ImbalanceIndex)
	}
}

func TestBuildSerialMethods(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	b := matgen.RandomRHS(a.Rows, 13, a.MaxNorm())
	itersOf := func(m Method) (int, float64) {
		g, pct, err := BuildSerial(a, m, 0.01, 64)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		st, err := krylov.CG(a, b, x, krylov.NewSplit(g, g.Transpose()), krylov.Options{MaxIter: 10000}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st.Iterations, pct
	}
	iFSAI, pct0 := itersOf(FSAI)
	iFSAIE, pct1 := itersOf(FSAIE)
	if pct0 != 0 {
		t.Fatalf("FSAI pct = %v", pct0)
	}
	if pct1 <= 0 {
		t.Fatalf("FSAIE pct = %v", pct1)
	}
	if iFSAIE >= iFSAI {
		t.Fatalf("serial FSAIE %d iters not below FSAI %d", iFSAIE, iFSAI)
	}
}

func TestBuildPrecondUnknownMethod(t *testing.T) {
	a := matgen.Poisson2D(4, 4)
	l := distmat.NewUniformLayout(a.Rows, 1)
	_, err := simmpi.Run(1, testTimeout, func(c *simmpi.Comm) error {
		_, err := BuildPrecond(c, l, distmat.ExtractLocalRows(a, 0, a.Rows), Config{Method: Method(99), LineBytes: 64})
		return err
	})
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, _, err := BuildSerial(a, Method(99), 0, 64); err == nil {
		t.Fatal("unknown serial method accepted")
	}
}

func TestMethodStrings(t *testing.T) {
	if FSAI.String() != "FSAI" || FSAIE.String() != "FSAIE" || FSAIEComm.String() != "FSAIE-Comm" {
		t.Fatal("method names wrong")
	}
	if StaticFilter.String() != "static" || DynamicFilter.String() != "dynamic" {
		t.Fatal("strategy names wrong")
	}
}

// Property: extension is idempotent-ish (extending an extended pattern adds
// only entries already admissible) and always keeps the diagonal tail.
func TestQuickExtendKeepsDiagonalTail(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 4+rng.Intn(8), 4+rng.Intn(8)
		a := matgen.Poisson2D(nx, ny)
		s := fsai.LowerPattern(a)
		ext, err := ExtendPatternSerial(s, 64)
		if err != nil {
			return false
		}
		for i := 0; i < ext.Rows; i++ {
			row := ext.Row(i)
			if len(row) == 0 || row[len(row)-1] != i {
				return false
			}
		}
		return ext.Contains(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPrecondPatternLevel2(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	pa, l := distSetup(t, a, 3)
	b := matgen.RandomRHS(pa.Rows, 21, pa.MaxNorm())
	itersAt := func(level int) int {
		var iters int
		_, err := simmpi.Run(3, testTimeout, func(c *simmpi.Comm) error {
			lo, hi := l.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(pa, lo, hi)
			bd, err := BuildPrecond(c, l, aRows, Config{
				Method: FSAI, LineBytes: 64, PatternLevel: level,
			})
			if err != nil {
				return err
			}
			aOp := distmat.NewOp(c, l, lo, hi, aRows)
			x := make([]float64, hi-lo)
			st, err := krylov.DistCG(c, aOp, b[lo:hi], x,
				krylov.NewDistSplit(bd.GOp, bd.GTOp), krylov.Options{MaxIter: 20000}, nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				iters = st.Iterations
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return iters
	}
	if i1, i2 := itersAt(1), itersAt(2); i2 >= i1 {
		t.Fatalf("level-2 base pattern (%d iters) not better than level-1 (%d)", i2, i1)
	}
}

func TestExtendPatternNaiveIncreasesHalo(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	pa, l := distSetup(t, a, 4)
	_, err := simmpi.Run(4, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		aRows := distmat.ExtractLocalRows(pa, lo, hi)
		s := LowerPatternDist(aRows, lo)
		lz := distmat.Localize(lo, hi, PatternCSR(s))
		comm, _, err := ExtendPattern(l, s, lz, ExtendOptions{LineBytes: 64, CommAware: true})
		if err != nil {
			return err
		}
		naive, err := ExtendPatternNaive(l, s, ExtendOptions{LineBytes: 64})
		if err != nil {
			return err
		}
		// The naive pattern is at least as large, and its halo column set
		// must be a superset (strictly larger on some rank).
		haloOf := func(d *fsai.DistRows) map[int]bool {
			out := map[int]bool{}
			for _, g := range d.Pattern.ColIdx {
				if g < lo || g >= hi {
					out[g] = true
				}
			}
			return out
		}
		hc, hn := haloOf(comm), haloOf(naive)
		for g := range hc {
			if !hn[g] {
				return fmt.Errorf("rank %d: naive halo missing comm-aware column %d", c.Rank(), g)
			}
		}
		grew := 0
		if len(hn) > len(hc) {
			grew = 1
		}
		total := c.AllreduceSumInt64(int64(grew))[0]
		if c.Rank() == 0 && total == 0 {
			return fmt.Errorf("naive extension never grew any rank's halo")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCommInvariance(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	pa, l := distSetup(t, a, 4)
	_, err := simmpi.Run(4, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		aRows := distmat.ExtractLocalRows(pa, lo, hi)
		base, err := BuildPrecond(c, l, aRows, Config{Method: FSAI, LineBytes: 64})
		if err != nil {
			return err
		}
		for _, cfg := range []Config{
			{Method: FSAIEComm, Filter: 0, Strategy: StaticFilter, LineBytes: 64},
			{Method: FSAIEComm, Filter: 0.05, Strategy: DynamicFilter, LineBytes: 64},
			{Method: FSAIE, Filter: 0.01, Strategy: StaticFilter, LineBytes: 256},
		} {
			ext, err := BuildPrecond(c, l, aRows, cfg)
			if err != nil {
				return err
			}
			if err := VerifyCommInvariance(c, base, ext); err != nil {
				return err
			}
			if err := VerifyTrafficInvariance(base.GOp, ext.GOp); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCommInvarianceDetectsNaive(t *testing.T) {
	// The naive extension grows the halo, so verification must fail.
	a := matgen.Poisson2D(12, 12)
	pa, l := distSetup(t, a, 4)
	_, err := simmpi.Run(4, testTimeout, func(c *simmpi.Comm) error {
		lo, hi := l.Range(c.Rank())
		aRows := distmat.ExtractLocalRows(pa, lo, hi)
		base, err := BuildPrecond(c, l, aRows, Config{Method: FSAI, LineBytes: 64})
		if err != nil {
			return err
		}
		s := LowerPatternDist(aRows, lo)
		naive, err := ExtendPatternNaive(l, s, ExtendOptions{LineBytes: 64})
		if err != nil {
			return err
		}
		g, err := fsai.BuildDist(c, l, aRows, naive)
		if err != nil {
			return err
		}
		gt := distmat.TransposeDist(c, l, lo, hi, g)
		ext := &Build{
			GOp:  distmat.NewOp(c, l, lo, hi, g),
			GTOp: distmat.NewOp(c, l, lo, hi, gt),
		}
		if err := VerifyCommInvariance(c, base, ext); err == nil {
			return fmt.Errorf("naive extension passed invariance verification")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: for random SPD matrices, random rank counts and random line
// sizes, the unfiltered FSAIE-Comm build never changes the exchanged
// unknown sets of the baseline — the paper's claim as a quick property.
func TestQuickCommInvarianceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(120)
		a := testsets.RandomSPD(rng, n, testsets.SPDOptions{
			Diag:      6,
			Chain:     -1,
			Couplings: 3 * n,
			Off:       func(r *rand.Rand) float64 { return -0.4 * r.Float64() },
		})
		nranks := 2 + rng.Intn(4)
		lineBytes := []int{64, 128, 256}[rng.Intn(3)]
		l := distmat.NewUniformLayout(n, nranks)
		ok := true
		_, err := simmpi.Run(nranks, testTimeout, func(cm *simmpi.Comm) error {
			lo, hi := l.Range(cm.Rank())
			aRows := distmat.ExtractLocalRows(a, lo, hi)
			base, err := BuildPrecond(cm, l, aRows, Config{Method: FSAI, LineBytes: lineBytes})
			if err != nil {
				return err
			}
			ext, err := BuildPrecond(cm, l, aRows, Config{Method: FSAIEComm, LineBytes: lineBytes})
			if err != nil {
				return err
			}
			return VerifyCommInvariance(cm, base, ext)
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"fmt"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/simmpi"
)

// VerifyCommInvariance checks the paper's central claim for two builds over
// the same layout: the extended build ext must exchange exactly the same
// unknown sets between the same peers as the baseline base for the G
// product, and must not receive any unknown for the Gᵀ product the baseline
// did not already receive. Collective: every rank calls with its own builds;
// all ranks return the same verdict (an error naming the first offending
// rank, or nil).
//
// This is the machine-checkable form of §3's "the same communication scheme
// is used for all extension methods". It holds exactly for unfiltered
// FSAIE-Comm; with filtering the exchanged sets may shrink but never grow,
// which is what this verifies.
func VerifyCommInvariance(c *simmpi.Comm, base, ext *Build) error {
	bad := ""
	if !subsetGlobals(ext.GOp.Plan.RecvGlobals(ext.GOp.LZ), base.GOp.Plan.RecvGlobals(base.GOp.LZ)) {
		bad = "G product receives new unknowns"
	} else if !subsetGlobals(ext.GOp.Plan.SendGlobals(ext.GOp.LZ), base.GOp.Plan.SendGlobals(base.GOp.LZ)) {
		bad = "G product sends new unknowns"
	} else if !subsetGlobals(ext.GTOp.Plan.RecvGlobals(ext.GTOp.LZ), base.GTOp.Plan.RecvGlobals(base.GTOp.LZ)) {
		bad = "Gᵀ product receives new unknowns"
	} else if !subsetGlobals(ext.GTOp.Plan.SendGlobals(ext.GTOp.LZ), base.GTOp.Plan.SendGlobals(base.GTOp.LZ)) {
		bad = "Gᵀ product sends new unknowns"
	}
	mine := 0.0
	if bad != "" {
		mine = float64(c.Rank() + 1)
	}
	worst := c.AllreduceMax(mine)[0]
	if worst > 0 {
		if bad != "" && float64(c.Rank()+1) == worst {
			return fmt.Errorf("core: communication invariance violated on rank %d: %s", c.Rank(), bad)
		}
		return fmt.Errorf("core: communication invariance violated on rank %d", int(worst)-1)
	}
	return nil
}

// subsetGlobals reports whether every per-peer unknown of a is present in
// the corresponding peer list of b.
func subsetGlobals(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		have := make(map[int]bool, len(b[p]))
		for _, g := range b[p] {
			have[g] = true
		}
		for _, g := range a[p] {
			if !have[g] {
				return false
			}
		}
	}
	return true
}

// VerifyTrafficInvariance compares metered halo traffic of two distributed
// operators over one exchange: ext must move no more bytes than base. It is
// a pure plan computation (no messages are sent).
func VerifyTrafficInvariance(base, ext *distmat.Op) error {
	if ext.Plan.SendCount() > base.Plan.SendCount() {
		return fmt.Errorf("core: extended plan sends %d unknowns, baseline %d",
			ext.Plan.SendCount(), base.Plan.SendCount())
	}
	if ext.Plan.RecvCount() > base.Plan.RecvCount() {
		return fmt.Errorf("core: extended plan receives %d unknowns, baseline %d",
			ext.Plan.RecvCount(), base.Plan.RecvCount())
	}
	if len(ext.Plan.SendPeerIDs()) > len(base.Plan.SendPeerIDs()) {
		return fmt.Errorf("core: extended plan has %d send peers, baseline %d",
			len(ext.Plan.SendPeerIDs()), len(base.Plan.SendPeerIDs()))
	}
	return nil
}

package core

import (
	"fmt"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/spai"
	"fsaicomm/internal/sparse"
)

// Config selects preconditioner variant, filtering, and architecture
// parameters for a distributed build.
type Config struct {
	Method    Method
	Filter    float64 // initial Filter value (paper uses 0.01/0.05/0.1/0.2)
	Strategy  FilterStrategy
	LineBytes int // cache line size of the target architecture
	// PatternLevel selects the base sparse pattern: level 1 (default) is
	// the lower triangle of A, the paper's baseline; level N uses the lower
	// triangle of pattern(Ã^N) ("sparse level" in §2.2). Threshold is the
	// tau used to build Ã by dropping small entries; 0 keeps all.
	PatternLevel int
	Threshold    float64
	// Workers bounds the shared-memory worker pool used for the per-row
	// solves inside each rank (n > 0 → exactly n; ≤ 0 → 1 worker per rank,
	// since ranks already run concurrently). This is orthogonal to the rank
	// count: ranks simulate distributed processes, workers are threads
	// inside one process.
	Workers int
	// CGVariant selects the distributed solver loop the build is destined
	// for. Non-classic variants make BuildPrecond construct the G/Gᵀ
	// operators with the interior/boundary overlap view so the
	// preconditioner SpMVs also run in the send-then-compute schedule.
	CGVariant krylov.CGVariant
	// Precision selects the value width of the solve the build feeds. The
	// factors are always computed in float64 — narrowing a finished factor
	// loses far less than building in float32 would — but under FP32 the
	// G/Gᵀ operators come back switched to the mixed-precision kernel
	// (float32 values, half-width halos) ready for the iterative-refinement
	// inner solves.
	Precision krylov.Precision
	// SPAISteps, SPAIAdd and SPAIEpsilon configure the adaptive enrichment
	// of the SPAI method (ignored by the FSAI family): Steps rounds of
	// pattern growth, at most Add entries per column per round, stopping a
	// column once its least-squares residual drops below Epsilon. The base
	// pattern level is PatternLevel, shared with the FSAI family.
	SPAISteps   int
	SPAIAdd     int
	SPAIEpsilon float64
}

// rankWorkers resolves Config.Workers for per-rank pools: the zero value
// means one worker per rank rather than GOMAXPROCS, because R ranks already
// occupy the machine and R×GOMAXPROCS goroutines would oversubscribe it.
func (c Config) rankWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 1
}

// Build is the result of constructing a preconditioner on one rank. All
// global statistics are identical on every rank.
type Build struct {
	Method Method
	// GRows and GTRows are this rank's rows of G and Gᵀ with global columns.
	GRows, GTRows *sparse.CSR
	// GOp and GTOp are the halo-ready distributed operators used by the
	// preconditioned solve.
	GOp, GTOp *distmat.Op
	// FilterUsed is this rank's final Filter value (ranks differ under the
	// dynamic strategy).
	FilterUsed float64
	// BaseNNZGlobal is the global entry count of the unextended FSAI
	// pattern; FinalNNZGlobal of the pattern actually used.
	BaseNNZGlobal, FinalNNZGlobal int64
	// PctNNZIncrease is the paper's "% NNZ": percentage increase of the
	// lower-triangular pattern entries versus the FSAI pattern.
	PctNNZIncrease float64
	// ImbalanceIndex is avg/max per-rank entries of the final factor
	// (§5.3.3: 1 = balanced, lower = worse).
	ImbalanceIndex float64
	// Extension statistics from Algorithm 3 (zero-valued for FSAI).
	Extend ExtendStats
	// MRows and MOp are this rank's rows of the explicit approximate
	// inverse M and its halo-ready operator — set only for Method SPAI,
	// where the solve is right-preconditioned GMRES rather than the
	// two-triangular-solve CG of the FSAI family (GRows/GTRows are nil).
	MRows *sparse.CSR
	MOp   *distmat.Op
}

// BuildPrecond constructs the selected preconditioner variant on a
// distributed matrix. aRows holds this rank's rows of the SPD matrix A with
// global column indices over layout l. Collective: every rank calls with
// the same Config.
func BuildPrecond(c *simmpi.Comm, l *distmat.Layout, aRows *sparse.CSR, cfg Config) (*Build, error) {
	lo, hi := l.Range(c.Rank())
	if aRows.Rows != hi-lo {
		return nil, fmt.Errorf("core: rank %d has %d rows, layout says %d", c.Rank(), aRows.Rows, hi-lo)
	}
	if cfg.Method == SPAI {
		return buildSPAIDist(c, l, lo, hi, aRows, cfg)
	}
	var s *fsai.DistRows
	if cfg.PatternLevel > 1 || cfg.Threshold > 0 {
		level := cfg.PatternLevel
		if level < 1 {
			level = 1
		}
		var err error
		s, err = fsai.PowerPatternDist(c, l, aRows, lo, hi, level, cfg.Threshold)
		if err != nil {
			return nil, err
		}
	} else {
		s = LowerPatternDist(aRows, lo)
	}
	baseNNZ := c.AllreduceSumInt64(int64(s.Pattern.NNZ()))[0]

	var final *fsai.DistRows
	var st ExtendStats
	filterUsed := 0.0
	switch cfg.Method {
	case FSAI:
		// Baseline: the pattern of the lower triangle of A, "without
		// thresholding and filtering only null entries" — structural zeros
		// cannot occur in LowerPatternDist, so the pattern is used as is.
		final = s
	case FSAIE, FSAIEComm:
		lz := distmat.Localize(lo, hi, PatternCSR(s))
		ext, est, err := ExtendPattern(l, s, lz, ExtendOptions{
			LineBytes: cfg.LineBytes,
			CommAware: cfg.Method == FSAIEComm,
		})
		if err != nil {
			return nil, err
		}
		st = est
		gExt, err := fsai.BuildDistWorkers(c, l, aRows, ext, cfg.rankWorkers())
		if err != nil {
			return nil, fmt.Errorf("core: precompute on extended pattern: %w", err)
		}
		f := cfg.Filter
		if cfg.Strategy == DynamicFilter {
			f = DynamicFilterValue(c, gExt, lo, cfg.Filter, s.Pattern)
		}
		filterUsed = f
		final = fsai.FilterDist(gExt, lo, hi, f, s.Pattern)
	default:
		return nil, fmt.Errorf("core: unknown method %v", cfg.Method)
	}

	g, err := fsai.BuildDistWorkers(c, l, aRows, final, cfg.rankWorkers())
	if err != nil {
		return nil, fmt.Errorf("core: final build: %w", err)
	}
	gt := distmat.TransposeDist(c, l, lo, hi, g)

	finalNNZ := c.AllreduceSumInt64(int64(g.NNZ()))[0]
	var opOpts []distmat.OpOption
	if cfg.CGVariant != krylov.CGClassic {
		opOpts = append(opOpts, distmat.WithOverlap())
	}
	if cfg.Precision == krylov.FP32 {
		opOpts = append(opOpts, distmat.WithF32())
	}
	b := &Build{
		Method:         cfg.Method,
		GRows:          g,
		GTRows:         gt,
		GOp:            distmat.NewOp(c, l, lo, hi, g, opOpts...),
		GTOp:           distmat.NewOp(c, l, lo, hi, gt, opOpts...),
		FilterUsed:     filterUsed,
		BaseNNZGlobal:  baseNNZ,
		FinalNNZGlobal: finalNNZ,
		ImbalanceIndex: distmat.NNZImbalanceIndex(c, int64(g.NNZ())),
		Extend:         st,
	}
	if baseNNZ > 0 {
		b.PctNNZIncrease = 100 * float64(finalNNZ-baseNNZ) / float64(baseNNZ)
	}
	return b, nil
}

// buildSPAIDist constructs the adaptive SPAI right inverse on a distributed
// matrix. Unlike the FSAI family there is no factor pair: the result carries
// MRows/MOp and leaves GRows/GTRows nil. BaseNNZGlobal reports the global
// entry count of A so PctNNZIncrease compares the inverse against the
// operator it approximates.
func buildSPAIDist(c *simmpi.Comm, l *distmat.Layout, lo, hi int, aRows *sparse.CSR, cfg Config) (*Build, error) {
	if cfg.Precision == krylov.FP32 {
		return nil, fmt.Errorf("core: SPAI supports float64 solves only (FP32 iterative refinement is a CG-family feature)")
	}
	if cfg.CGVariant != krylov.CGClassic {
		return nil, fmt.Errorf("core: SPAI pairs with GMRES, which has no %v schedule", cfg.CGVariant)
	}
	m, err := spai.BuildDist(c, l, lo, hi, aRows, cfg.spaiOptions())
	if err != nil {
		return nil, fmt.Errorf("core: SPAI build: %w", err)
	}
	baseNNZ := c.AllreduceSumInt64(int64(aRows.NNZ()))[0]
	finalNNZ := c.AllreduceSumInt64(int64(m.NNZ()))[0]
	b := &Build{
		Method:         SPAI,
		MRows:          m,
		MOp:            distmat.NewOp(c, l, lo, hi, m),
		BaseNNZGlobal:  baseNNZ,
		FinalNNZGlobal: finalNNZ,
		ImbalanceIndex: distmat.NNZImbalanceIndex(c, int64(m.NNZ())),
	}
	if baseNNZ > 0 {
		b.PctNNZIncrease = 100 * float64(finalNNZ-baseNNZ) / float64(baseNNZ)
	}
	return b, nil
}

// spaiOptions maps the Config knobs onto the spai package's options.
func (c Config) spaiOptions() spai.Options {
	level := c.PatternLevel
	if level < 1 {
		level = 1
	}
	return spai.Options{
		Level:   level,
		Steps:   c.SPAISteps,
		Add:     c.SPAIAdd,
		Epsilon: c.SPAIEpsilon,
		Workers: c.rankWorkers(),
	}
}

// BuildSerialSPAI constructs the SPAI approximate inverse on an
// undistributed matrix — the one-process counterpart of the SPAI branch of
// BuildPrecond. Returns M and the percentage NNZ increase over A.
func BuildSerialSPAI(a *sparse.CSR, cfg Config) (*sparse.CSR, float64, error) {
	o := cfg.spaiOptions()
	// Serial builds follow the other BuildSerial* entry points: Workers ≤ 0
	// means all cores, not the one-per-rank default of distributed builds.
	o.Workers = cfg.Workers
	m, err := spai.Build(a, o)
	if err != nil {
		return nil, 0, err
	}
	pct := 0.0
	if a.NNZ() > 0 {
		pct = 100 * float64(m.NNZ()-a.NNZ()) / float64(a.NNZ())
	}
	return m, pct, nil
}

// BuildSerial constructs the preconditioner on an undistributed matrix (the
// one-process case; FSAIE and FSAIE-Comm coincide because there is no halo).
// Returns G and the percentage NNZ increase over the FSAI pattern.
func BuildSerial(a *sparse.CSR, method Method, filter float64, lineBytes int) (*sparse.CSR, float64, error) {
	return BuildSerialLevel(a, method, filter, lineBytes, 1, 0)
}

// BuildSerialLevel is BuildSerial with an explicit base-pattern sparse level
// and thresholding tau (level ≤ 1 and tau 0 reproduce BuildSerial). The
// row solves use all available cores; BuildSerialLevelWorkers exposes the
// worker count.
func BuildSerialLevel(a *sparse.CSR, method Method, filter float64, lineBytes, level int, tau float64) (*sparse.CSR, float64, error) {
	return BuildSerialLevelWorkers(a, method, filter, lineBytes, level, tau, 0)
}

// BuildSerialLevelWorkers is BuildSerialLevel with an explicit worker count
// for the per-row solves and pattern powering (<= 0 selects GOMAXPROCS).
func BuildSerialLevelWorkers(a *sparse.CSR, method Method, filter float64, lineBytes, level int, tau float64, workers int) (*sparse.CSR, float64, error) {
	if level < 1 {
		level = 1
	}
	s := fsai.PowerPatternWorkers(a, level, tau, workers)
	base := s.NNZ()
	var pattern *sparse.Pattern
	switch method {
	case FSAI:
		pattern = s
	case FSAIE, FSAIEComm:
		ext, err := ExtendPatternSerial(s, lineBytes)
		if err != nil {
			return nil, 0, err
		}
		gExt, err := fsai.BuildWorkers(a, ext, workers)
		if err != nil {
			return nil, 0, err
		}
		// Filter extension candidates only; the base pattern is protected.
		pattern = fsai.FilterDist(gExt, 0, a.Rows, filter, s).Pattern
	default:
		return nil, 0, fmt.Errorf("core: unknown method %v", method)
	}
	g, err := fsai.BuildWorkers(a, pattern, workers)
	if err != nil {
		return nil, 0, err
	}
	pct := 0.0
	if base > 0 {
		pct = 100 * float64(g.NNZ()-base) / float64(base)
	}
	return g, pct, nil
}

// Package core implements the paper's contribution: communication-aware,
// cache-friendly sparse pattern extensions for the FSAI preconditioner
// (FSAIE and FSAIE-Comm, Algorithm 3) and the dynamic filtering-out strategy
// that restores inter-process load balance (Algorithm 4), plus the
// orchestration that builds the full preconditioner on a distributed matrix.
package core

import (
	"fmt"
	"sort"

	"fsaicomm/internal/distmat"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/sparse"
)

// Method selects the preconditioner variant, in the order the paper
// evaluates them.
type Method int

const (
	// FSAI is the baseline: lower-triangular pattern of A, no extension.
	FSAI Method = iota
	// FSAIE extends the pattern cache-friendly using local entries only
	// (the shared-memory method of Laut et al. HPDC'21 applied per process).
	FSAIE
	// FSAIEComm additionally extends into the halo wherever doing so adds
	// no new communication — the contribution of the paper.
	FSAIEComm
	// SPAI is the Grote–Huckle adaptive sparse approximate inverse for
	// general nonsymmetric matrices — an explicit right inverse M ≈ A⁻¹
	// applied inside GMRES rather than a factorized pair inside CG.
	SPAI
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case FSAI:
		return "FSAI"
	case FSAIE:
		return "FSAIE"
	case FSAIEComm:
		return "FSAIE-Comm"
	case SPAI:
		return "SPAI"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ExtendOptions configures the pattern extension of Algorithm 3.
type ExtendOptions struct {
	// LineBytes is the cache-line size of the target architecture (64 on
	// Skylake/Zen 2, 256 on A64FX). Candidates are the entries of the
	// multiplying vector sharing a cache line with an entry the original
	// pattern already touches.
	LineBytes int
	// CommAware enables the halo extension (FSAIE-Comm). When false only
	// local candidates are admitted (FSAIE).
	CommAware bool
}

// ExtendStats reports what the extension did on this rank.
type ExtendStats struct {
	BaseNNZ       int64 // entries before extension
	AddedLocal    int64 // local entries added
	AddedHalo     int64 // halo entries added (zero unless CommAware)
	RejectedHalo  int64 // cache-friendly halo candidates rejected to protect the communication scheme
	LinesPerRow   float64
	CandidateHits int64
}

// ExtendPattern implements Algorithm 3 on one rank's rows. s holds the local
// rows of the lower-triangular pattern S with global columns; lz is the
// localized view of S, defining the memory layout of the multiplying vector
// (locals first, then the halo buffer) whose cache lines supply the
// candidate entries. The result is a superset of s with the same shape.
//
// Admissibility of a candidate column k for row i (global gi), following §3
// of the paper:
//   - k local: always admissible (local entries of G stay on this process
//     in Gᵀ too, so they cost no communication);
//   - k halo, CommAware: admissible iff (a) x_k is already received in the
//     halo update of S — automatic here because candidates come from cache
//     lines of the halo buffer, which holds exactly the received unknowns —
//     and (b) x_i is already sent to the process owning k (Alg. 3 step 13).
//     For the Gᵀ product, x_i flows from this rank to owner(k) exactly when
//     row i of S already holds some halo entry owned by owner(k) ("halo
//     coefficients belonging to rows where there is already a non-zero halo
//     entry"), so that is the test: the candidate's owner must already
//     appear among the owners of row i's existing halo entries;
//   - k halo, !CommAware: rejected (FSAIE extends only local entries).
func ExtendPattern(l *distmat.Layout, s *fsai.DistRows, lz *distmat.Localized, opt ExtendOptions) (*fsai.DistRows, ExtendStats, error) {
	if opt.LineBytes < 8 || opt.LineBytes%8 != 0 {
		return nil, ExtendStats{}, fmt.Errorf("core: line size %d not a positive multiple of 8 bytes", opt.LineBytes)
	}
	w := opt.LineBytes / 8 // float64s per cache line
	lo, hi := s.Lo, s.Hi
	nLocal := hi - lo
	totalCols := nLocal + len(lz.Halo)

	st := ExtendStats{BaseNNZ: int64(s.Pattern.NNZ())}
	rowSets := make([][]int, nLocal)
	var lineCount int64
	var rowOwners []int // scratch: owners of this row's existing halo entries
	for li := 0; li < nLocal; li++ {
		gi := lo + li
		origGlobal := s.Pattern.Row(li)
		locRow, _ := lz.M.Row(li) // localized indices, sorted
		// Owners this row already exchanges with (for the Gᵀ product: x_i is
		// already sent to each of these).
		rowOwners = rowOwners[:0]
		for _, g := range origGlobal {
			if g < lo || g >= hi {
				rowOwners = append(rowOwners, l.Owner(g))
			}
		}
		sort.Ints(rowOwners)
		rowSendsTo := func(peer int) bool {
			k := sort.SearchInts(rowOwners, peer)
			return k < len(rowOwners) && rowOwners[k] == peer
		}

		set := append([]int(nil), origGlobal...)
		seenLine := map[int]bool{}
		for _, j := range locRow {
			line := j / w
			if seenLine[line] {
				continue
			}
			seenLine[line] = true
			lineCount++
			start := line * w
			end := start + w
			if end > totalCols {
				end = totalCols
			}
			for k := start; k < end; k++ {
				st.CandidateHits++
				var gk int
				local := k < nLocal
				if local {
					gk = lo + k
				} else {
					gk = lz.Halo[k-nLocal]
				}
				if gk > gi {
					continue // keep G lower triangular
				}
				if local {
					set = append(set, gk)
					continue
				}
				if !opt.CommAware {
					continue
				}
				if rowSendsTo(l.Owner(gk)) {
					set = append(set, gk)
				} else {
					st.RejectedHalo++
				}
			}
		}
		rowSets[li] = set
	}
	ext := &fsai.DistRows{
		Lo: lo, Hi: hi,
		Pattern: sparse.PatternFromRows(nLocal, s.Pattern.Cols, rowSets),
	}
	// Added-entry accounting, split local/halo.
	for li := 0; li < nLocal; li++ {
		orig := s.Pattern.Row(li)
		now := ext.Pattern.Row(li)
		oi := 0
		for _, g := range now {
			for oi < len(orig) && orig[oi] < g {
				oi++
			}
			if oi < len(orig) && orig[oi] == g {
				continue
			}
			if g >= lo && g < hi {
				st.AddedLocal++
			} else {
				st.AddedHalo++
			}
		}
	}
	if nLocal > 0 {
		st.LinesPerRow = float64(lineCount) / float64(nLocal)
	}
	if !ext.Pattern.Contains(s.Pattern) {
		return nil, st, fmt.Errorf("core: internal error: extension lost base entries")
	}
	return ext, st, nil
}

// LowerPatternDist extracts a rank's rows of the baseline FSAI pattern (the
// lower triangle of A with guaranteed diagonal) in DistRows form.
func LowerPatternDist(aRows *sparse.CSR, lo int) *fsai.DistRows {
	rowSets := make([][]int, aRows.Rows)
	for li := 0; li < aRows.Rows; li++ {
		gi := lo + li
		cols, _ := aRows.Row(li)
		set := make([]int, 0, len(cols)+1)
		hasDiag := false
		for _, c := range cols {
			if c <= gi {
				set = append(set, c)
				if c == gi {
					hasDiag = true
				}
			}
		}
		if !hasDiag {
			set = append(set, gi)
		}
		rowSets[li] = set
	}
	return &fsai.DistRows{
		Lo: lo, Hi: lo + aRows.Rows,
		Pattern: sparse.PatternFromRows(aRows.Rows, aRows.Cols, rowSets),
	}
}

// PatternCSR converts a DistRows pattern into a zero-valued CSR so it can be
// localized (the extension cares about structure only).
func PatternCSR(d *fsai.DistRows) *sparse.CSR {
	return &sparse.CSR{
		Rows:   d.Pattern.Rows,
		Cols:   d.Pattern.Cols,
		RowPtr: append([]int(nil), d.Pattern.RowPtr...),
		ColIdx: append([]int(nil), d.Pattern.ColIdx...),
		Val:    make([]float64, d.Pattern.NNZ()),
	}
}

// ExtendPatternSerial runs the extension on a whole (undistributed) matrix:
// the single-process case where every candidate is local, i.e. the
// shared-memory FSAIE of the prior paper. Returns the extended pattern.
func ExtendPatternSerial(s *sparse.Pattern, lineBytes int) (*sparse.Pattern, error) {
	d := &fsai.DistRows{Lo: 0, Hi: s.Rows, Pattern: s}
	lz := distmat.Localize(0, s.Rows, PatternCSR(d))
	l := &distmat.Layout{N: s.Rows, Offsets: []int{0, s.Rows}}
	ext, _, err := ExtendPattern(l, d, lz, ExtendOptions{LineBytes: lineBytes})
	if err != nil {
		return nil, err
	}
	return ext.Pattern, nil
}

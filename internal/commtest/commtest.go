// Package commtest is the transport conformance suite: one table-driven
// corpus of message-passing semantics, run identically against every
// simmpi.Transport backend. The in-process channel backend is the oracle
// (its semantics predate the Transport split); the socket backend must pass
// the same table verbatim, under both `go test` and `go test -race`. A new
// backend earns its place by adding a three-line harness, not new tests.
//
// The cases only assert behavior observable through the Comm API plus
// process-shared memory (atomics), because every harness runs its ranks as
// goroutines of the test process — the channel world directly, the socket
// world via tcpmpi.RunLocal. True multi-process behavior is covered by the
// differential solve tests in the root package.
package commtest

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fsaicomm/internal/simmpi"
)

// Harness adapts one backend to the suite: Run executes fn on every rank of
// a fresh size-rank world with the given blocking-operation bound, returning
// the world's merged traffic meter and the first per-rank error (panics
// recovered, in rank order).
type Harness struct {
	Name string
	Run  func(size int, timeout time.Duration, fn func(c *simmpi.Comm) error) (*simmpi.Meter, error)
}

// Case is one conformance table entry. fn runs on every rank; check judges
// the merged meter and the run error.
type conformanceCase struct {
	name    string
	size    int
	timeout time.Duration // 0 = the suite default
	fn      func(c *simmpi.Comm) error
	check   func(t *testing.T, m *simmpi.Meter, err error)
}

const defaultTimeout = 10 * time.Second

func wantOK(t *testing.T, m *simmpi.Meter, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func wantErrContaining(substr string) func(t *testing.T, m *simmpi.Meter, err error) {
	return func(t *testing.T, m *simmpi.Meter, err error) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), substr) {
			t.Fatalf("want error containing %q, got %v", substr, err)
		}
	}
}

func eqF64(got []float64, want ...float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("got %v, want %v", got, want)
		}
	}
	return nil
}

func eqI64(got []int64, want ...int64) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("got %v, want %v", got, want)
		}
	}
	return nil
}

// RunConformance runs the whole corpus against one backend.
func RunConformance(t *testing.T, h Harness) {
	for _, tc := range cases() {
		t.Run(tc.name, func(t *testing.T) {
			timeout := tc.timeout
			if timeout == 0 {
				timeout = defaultTimeout
			}
			m, err := h.Run(tc.size, timeout, tc.fn)
			tc.check(t, m, err)
		})
	}
}

func cases() []conformanceCase {
	return []conformanceCase{
		{
			// Messages from one sender arrive in send order even when
			// several senders interleave; tags distinguish phases.
			name: "pair-ordering",
			size: 4,
			fn: func(c *simmpi.Comm) error {
				const msgs = 10
				if c.Rank() != 0 {
					for i := 0; i < msgs; i++ {
						c.SendFloats(0, i, []float64{float64(100*c.Rank() + i)})
					}
					return nil
				}
				for src := 1; src < c.Size(); src++ {
					for i := 0; i < msgs; i++ {
						got := c.RecvFloats(src, i)
						if err := eqF64(got, float64(100*src+i)); err != nil {
							return fmt.Errorf("src %d msg %d: %w", src, i, err)
						}
					}
				}
				return nil
			},
			check: wantOK,
		},
		{
			// A receive whose next-arriving message carries a different tag
			// is a protocol bug and must fail loudly.
			name: "tag-mismatch",
			size: 2,
			fn: func(c *simmpi.Comm) error {
				if c.Rank() == 0 {
					c.SendFloats(1, 7, []float64{1})
					return nil
				}
				c.RecvFloats(0, 8)
				return nil
			},
			check: wantErrContaining("expected tag 8 from 0, got 7"),
		},
		{
			// The transport owns a copy: mutating the caller's buffer after
			// Send must not affect what the receiver sees.
			name: "payload-copy-on-send",
			size: 2,
			fn: func(c *simmpi.Comm) error {
				if c.Rank() == 0 {
					buf := []float64{1, 2, 3}
					c.SendFloats(1, 0, buf)
					buf[0], buf[1], buf[2] = -1, -2, -3
					c.SendFloats(1, 1, buf)
					return nil
				}
				if err := eqF64(c.RecvFloats(0, 0), 1, 2, 3); err != nil {
					return err
				}
				return eqF64(c.RecvFloats(0, 1), -1, -2, -3)
			},
			check: wantOK,
		},
		{
			// Self-sends are a defined no-copy loopback on every backend:
			// the receiver shares the sender's backing array, nothing is
			// metered, and transports never see the message.
			name: "self-send-loopback",
			size: 2,
			fn: func(c *simmpi.Comm) error {
				sent := []float64{float64(c.Rank()), 42}
				c.SendFloats(c.Rank(), 3, sent)
				got := c.RecvFloats(c.Rank(), 3)
				if err := eqF64(got, float64(c.Rank()), 42); err != nil {
					return err
				}
				if &got[0] != &sent[0] {
					return fmt.Errorf("rank %d: self-send copied the payload", c.Rank())
				}
				c.SendInts(c.Rank(), 4, []int{c.Rank()})
				if ints := c.RecvInts(c.Rank(), 4); len(ints) != 1 || ints[0] != c.Rank() {
					return fmt.Errorf("rank %d: self ints = %v", c.Rank(), ints)
				}
				return nil
			},
			check: func(t *testing.T, m *simmpi.Meter, err error) {
				wantOK(t, m, err)
				if n := m.TotalP2PMessages(); n != 0 {
					t.Fatalf("self-sends metered: %d messages", n)
				}
			},
		},
		{
			// Float collectives reduce in rank order on every backend, so
			// the results are bitwise identical, not merely close.
			name: "collectives-float",
			size: 4,
			fn: func(c *simmpi.Comm) error {
				r := float64(c.Rank())
				// 0.1 is inexact in binary; summing it in different orders
				// gives different bit patterns, which is exactly what the
				// rank-ordered reduction contract forbids.
				want := 0.1 + 1.1 + 2.1 + 3.1
				if err := eqF64(c.AllreduceSum(r+0.1, -r), want, -6); err != nil {
					return fmt.Errorf("sum: %w", err)
				}
				if err := eqF64(c.AllreduceMax(r, -r), 3, 0); err != nil {
					return fmt.Errorf("max: %w", err)
				}
				if err := eqF64(c.AllreduceMin(r, -r), 0, -3); err != nil {
					return fmt.Errorf("min: %w", err)
				}
				if err := eqF64(c.AllgatherFloats([]float64{r * 10}), 0, 10, 20, 30); err != nil {
					return fmt.Errorf("allgather: %w", err)
				}
				return nil
			},
			check: wantOK,
		},
		{
			name: "collectives-int64",
			size: 3,
			fn: func(c *simmpi.Comm) error {
				r := int64(c.Rank())
				if err := eqI64(c.AllreduceSumInt64(r, 1), 3, 3); err != nil {
					return fmt.Errorf("sum: %w", err)
				}
				if err := eqI64(c.AllreduceMaxInt64(-r), 0); err != nil {
					return fmt.Errorf("max: %w", err)
				}
				if err := eqI64(c.AllgatherInt64([]int64{r, r}), 0, 0, 1, 1, 2, 2); err != nil {
					return fmt.Errorf("allgather: %w", err)
				}
				got := c.AllgatherInt([]int{c.Rank() + 5})
				if len(got) != 3 || got[0] != 5 || got[1] != 6 || got[2] != 7 {
					return fmt.Errorf("allgather int: %v", got)
				}
				return nil
			},
			check: wantOK,
		},
		{
			name: "bcast-root0",
			size: 3,
			fn: func(c *simmpi.Comm) error {
				var in []float64
				if c.Rank() == 0 {
					in = []float64{3.5, -1}
				}
				return eqF64(c.BcastFloats(0, in), 3.5, -1)
			},
			check: wantOK,
		},
		{
			name: "bcast-nonzero-root-rejected",
			size: 2,
			fn: func(c *simmpi.Comm) error {
				c.BcastFloats(1, []float64{1})
				return nil
			},
			check: wantErrContaining("root 0 only"),
		},
		{
			// No rank may observe the world past a barrier before every
			// rank has reached it.
			name: "barrier-ordering",
			size: 4,
			fn: func() func(c *simmpi.Comm) error {
				var entered atomic.Int32
				return func(c *simmpi.Comm) error {
					if c.Rank() == 0 {
						time.Sleep(20 * time.Millisecond) // straggler
					}
					entered.Add(1)
					c.Barrier()
					if n := entered.Load(); n != 4 {
						return fmt.Errorf("rank %d passed barrier with %d/4 ranks entered", c.Rank(), n)
					}
					return nil
				}
			}(),
			check: wantOK,
		},
		{
			name: "empty-payloads",
			size: 2,
			fn: func(c *simmpi.Comm) error {
				if c.Rank() == 0 {
					c.SendFloats(1, 0, nil)
					c.SendFloats(1, 1, []float64{})
					return nil
				}
				if got := c.RecvFloats(0, 0); len(got) != 0 {
					return fmt.Errorf("nil send arrived as %v", got)
				}
				if got := c.RecvFloats(0, 1); len(got) != 0 {
					return fmt.Errorf("empty send arrived as %v", got)
				}
				// Ranks may contribute unevenly to an allgather, including
				// nothing at all.
				return nil
			},
			check: wantOK,
		},
		{
			name: "allgather-uneven",
			size: 3,
			fn: func(c *simmpi.Comm) error {
				var mine []float64
				for i := 0; i < c.Rank(); i++ {
					mine = append(mine, float64(10*c.Rank()+i))
				}
				return eqF64(c.AllgatherFloats(mine), 10, 20, 21)
			},
			check: wantOK,
		},
		{
			name: "double-wait-errors",
			size: 2,
			fn: func(c *simmpi.Comm) error {
				peer := 1 - c.Rank()
				r := c.IsendFloats(peer, 0, []float64{1})
				c.RecvFloats(peer, 0)
				if _, err := r.Wait(); err != nil {
					return err
				}
				if _, err := r.Wait(); !errors.Is(err, simmpi.ErrWaited) {
					return fmt.Errorf("second Wait = %v, want ErrWaited", err)
				}
				ar := c.IallreduceSum(1)
				if v, err := ar.Wait(); err != nil || v[0] != 2 {
					return fmt.Errorf("iallreduce = %v, %v", v, err)
				}
				if _, err := ar.Wait(); !errors.Is(err, simmpi.ErrWaited) {
					return fmt.Errorf("second collective Wait = %v, want ErrWaited", err)
				}
				return nil
			},
			check: wantOK,
		},
		{
			// A ring of posted sends/receives plus overlapping nonblocking
			// reductions: chains of each kind complete in post order while
			// the three kinds progress independently. Exercised under -race
			// this validates the chain goroutine handoffs on both backends.
			name: "concurrent-async-chains",
			size: 4,
			fn: func(c *simmpi.Comm) error {
				const rounds = 5
				next := (c.Rank() + 1) % c.Size()
				prev := (c.Rank() + c.Size() - 1) % c.Size()
				recvs := make([]*simmpi.Request, rounds)
				sends := make([]*simmpi.Request, rounds)
				colls := make([]*simmpi.Request, rounds)
				for i := 0; i < rounds; i++ {
					recvs[i] = c.IrecvFloats(prev, i)
					sends[i] = c.IsendFloats(next, i, []float64{float64(10*c.Rank() + i)})
					colls[i] = c.IallreduceSum(float64(i))
				}
				for i := rounds - 1; i >= 0; i-- {
					got, err := recvs[i].Wait()
					if err != nil {
						return err
					}
					if err := eqF64(got, float64(10*prev+i)); err != nil {
						return fmt.Errorf("round %d from %d: %w", i, prev, err)
					}
				}
				for i := 0; i < rounds; i++ {
					if _, err := sends[i].Wait(); err != nil {
						return err
					}
					v, err := colls[i].Wait()
					if err != nil {
						return err
					}
					if err := eqF64(v, float64(4*i)); err != nil {
						return fmt.Errorf("coll round %d: %w", i, err)
					}
				}
				return nil
			},
			check: wantOK,
		},
		{
			// Mismatched collective ops across ranks must be detected, not
			// silently reduced.
			name: "collective-op-mismatch",
			size: 2,
			fn: func(c *simmpi.Comm) error {
				if c.Rank() == 0 {
					c.Barrier()
				} else {
					c.AllreduceSum(1)
				}
				return nil
			},
			check: wantErrContaining("collective mismatch"),
		},
		{
			name:    "payload-type-mismatch",
			size:    2,
			timeout: 2 * time.Second,
			fn: func(c *simmpi.Comm) error {
				if c.Rank() == 0 {
					c.SendInts(1, 0, []int{1})
					return nil
				}
				c.RecvFloats(0, 0)
				return nil
			},
			check: wantErrContaining("expected floats from 0 tag 0, got ints"),
		},
		{
			name: "invalid-peer",
			size: 2,
			fn: func(c *simmpi.Comm) error {
				if c.Rank() == 0 {
					c.SendFloats(5, 0, []float64{1})
				}
				return nil
			},
			check: wantErrContaining("invalid peer"),
		},
		{
			// A receive nothing will ever satisfy must fail within the
			// bound, not hang — on any backend.
			name:    "recv-deadlock-bounded",
			size:    2,
			timeout: 300 * time.Millisecond,
			fn: func(c *simmpi.Comm) error {
				if c.Rank() == 0 {
					c.RecvFloats(1, 0)
					return nil
				}
				time.Sleep(600 * time.Millisecond) // alive but silent
				return nil
			},
			check: wantErrContaining("timed out"),
		},
		{
			// A fixed traffic pattern must produce identical meter counters
			// on every backend: metering is part of the contract, since the
			// paper's structural claims are asserted against it.
			name: "meter-parity",
			size: 3,
			fn: func(c *simmpi.Comm) error {
				switch c.Rank() {
				case 0:
					c.SendFloats(1, 0, []float64{1, 2, 3}) // 24 B
					c.SendInts(2, 1, []int{1})             // 8 B
					c.SendFloats(0, 2, []float64{9})       // loopback: unmetered
					c.RecvFloats(0, 2)
				case 1:
					c.RecvFloats(0, 0)
					c.SendFloats(2, 2, []float64{4, 5}) // 16 B
				case 2:
					c.RecvInts(0, 1)
					c.RecvFloats(1, 2)
				}
				c.Barrier()                  // 0 B, 1 call per rank
				c.AllreduceSum(1, 2)         // 16 B per rank
				c.AllgatherInt64([]int64{1}) // 8 B per rank
				return nil
			},
			check: func(t *testing.T, m *simmpi.Meter, err error) {
				wantOK(t, m, err)
				if got := m.TotalP2PBytes(); got != 48 {
					t.Errorf("TotalP2PBytes = %d, want 48", got)
				}
				if got := m.TotalP2PMessages(); got != 3 {
					t.Errorf("TotalP2PMessages = %d, want 3", got)
				}
				if got := m.PairBytes(0, 1); got != 24 {
					t.Errorf("PairBytes(0,1) = %d, want 24", got)
				}
				if got := m.PairBytes(1, 2); got != 16 {
					t.Errorf("PairBytes(1,2) = %d, want 16", got)
				}
				if got := m.TotalCollectiveCalls(); got != 9 {
					t.Errorf("TotalCollectiveCalls = %d, want 9", got)
				}
				if got := m.TotalCollectiveBytes(); got != 72 {
					t.Errorf("TotalCollectiveBytes = %d, want 72", got)
				}
				ns := m.NeighborSets()
				if len(ns[0]) != 2 || ns[0][0] != 1 || ns[0][1] != 2 ||
					len(ns[1]) != 1 || ns[1][0] != 2 || len(ns[2]) != 0 {
					t.Errorf("NeighborSets = %v", ns)
				}
				if got := m.MaxRankP2PBytes(); got != 32 {
					t.Errorf("MaxRankP2PBytes = %d, want 32", got)
				}
			},
		},
		{
			// A rank that dies mid-protocol must surface as an error on the
			// survivors (rank-lost on sockets, bounded timeout in-process) —
			// never as a hang.
			name:    "dead-peer-errors",
			size:    2,
			timeout: 500 * time.Millisecond,
			fn: func(c *simmpi.Comm) error {
				if c.Rank() == 1 {
					return nil // exits without ever sending
				}
				c.RecvFloats(1, 0)
				return nil
			},
			check: func(t *testing.T, m *simmpi.Meter, err error) {
				t.Helper()
				if err == nil {
					t.Fatal("surviving rank returned no error")
				}
				if !strings.Contains(err.Error(), "timed out") && !strings.Contains(err.Error(), "rank lost") {
					t.Fatalf("unexpected failure mode: %v", err)
				}
			},
		},
	}
}

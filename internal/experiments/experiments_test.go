package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

// tinySet is a fast catalog for tests.
func tinySet() []testsets.Spec {
	return []testsets.Spec{
		{ID: 1, Name: "tiny-poisson", Class: "2D/3D Problem",
			Gen: func() *sparse.CSR { return matgen.Poisson2D(16, 16) }},
		{ID: 2, Name: "tiny-thermal", Class: "Thermal Problem",
			Gen: func() *sparse.CSR { return matgen.ThermalAniso(14, 14, 1, 30) }},
		{ID: 3, Name: "tiny-elastic", Class: "Structural Problem",
			Gen: func() *sparse.CSR { return matgen.Elasticity2D(9, 9, 5) }},
	}
}

func tinyRunner(arch archmodel.Profile) *Runner {
	r := NewRunner(arch)
	r.RanksOf = func(nnz int) int { return 3 }
	return r
}

func TestRunBasicResult(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	spec := tinySet()[0]
	base, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Converged || base.Iterations <= 0 || base.SolveTime <= 0 {
		t.Fatalf("bad base result: %+v", base)
	}
	ext, err := r.Run(spec, core.FSAIEComm, 0.01, core.DynamicFilter)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Iterations >= base.Iterations {
		t.Fatalf("FSAIE-Comm %d iters not below FSAI %d", ext.Iterations, base.Iterations)
	}
	if ext.PctNNZ <= 0 {
		t.Fatalf("PctNNZ = %v, want > 0", ext.PctNNZ)
	}
	if ext.SolveTime >= base.SolveTime {
		t.Fatalf("modeled time did not improve: %v vs %v", ext.SolveTime, base.SolveTime)
	}
}

func TestRunMemoization(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	spec := tinySet()[0]
	a, err := r.Run(spec, core.FSAIEComm, 0.05, core.StaticFilter)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(spec, core.FSAIEComm, 0.05, core.StaticFilter)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations || a.SolveTime != b.SolveTime || a.PctNNZ != b.PctNNZ {
		t.Fatal("memoized result differs")
	}
}

func TestCommBytesIdenticalAcrossMethods(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	spec := tinySet()[0]
	base, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := r.Run(spec, core.FSAIEComm, 0, core.StaticFilter)
	if err != nil {
		t.Fatal(err)
	}
	if base.CommBytesPerIter != ext.CommBytesPerIter {
		t.Fatalf("per-iteration traffic differs: %v vs %v", base.CommBytesPerIter, ext.CommBytesPerIter)
	}
}

func TestTable1Output(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	var buf bytes.Buffer
	if err := Table1(&buf, r, tinySet(), 0.01); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tiny-poisson", "FSAIE-Comm", "%NNZ", "Iter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFilterGridShapes(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	rows, err := FilterGrid(r, tinySet(), core.FSAIEComm, core.DynamicFilter, []float64{0.01, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // two filters + Best Filter
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[2].Label != "Best Filter" {
		t.Fatalf("last row label %q", rows[2].Label)
	}
	// Best Filter cannot be worse than any single filter on average time.
	if rows[2].AvgTimeImp < rows[0].AvgTimeImp-1e-9 || rows[2].AvgTimeImp < rows[1].AvgTimeImp-1e-9 {
		t.Fatalf("best filter average below individual filters: %+v", rows)
	}
	// Larger filters keep fewer entries → no larger iteration improvement.
	if rows[1].AvgIterImp > rows[0].AvgIterImp+1e-9 {
		t.Fatalf("filter 0.2 iter improvement %v above filter 0.01 %v", rows[1].AvgIterImp, rows[0].AvgIterImp)
	}
}

func TestPerMatrixSeries(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	best, fixed, err := PerMatrixTimeDecrease(r, tinySet(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 3 || len(fixed) != 3 {
		t.Fatalf("series lengths %d/%d", len(best), len(fixed))
	}
	for i := range best {
		if best[i].Value < fixed[i].Value-1e-9 {
			t.Fatalf("best (%v) below fixed (%v) for %s", best[i].Value, fixed[i].Value, best[i].Spec.Name)
		}
	}
}

func TestHistogramSeriesMisses(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	base, ext, err := HistogramSeries(r, tinySet(), "misses")
	if err != nil {
		t.Fatal(err)
	}
	var bAvg, eAvg float64
	for i := range base {
		bAvg += base[i].Value
		eAvg += ext[i].Value
	}
	// The extension reduces misses per nonzero (Figure 3a's claim).
	if eAvg >= bAvg {
		t.Fatalf("extension did not reduce misses/nnz: %v vs %v", eAvg, bAvg)
	}
	if _, _, err := HistogramSeries(r, tinySet(), "bogus"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestWriteFigureAndHistogramOutputs(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	var buf bytes.Buffer
	if err := WritePerMatrixFigure(&buf, r, tinySet(), 0.01); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AVERAGE") {
		t.Fatal("figure output missing average row")
	}
	buf.Reset()
	if err := WriteHistogram(&buf, r, tinySet(), "gflops", "GFLOP/s per process"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FSAIE-Comm") {
		t.Fatal("histogram output missing series")
	}
}

func TestA64FXGainsExceedSkylake(t *testing.T) {
	// The paper's headline architecture effect: 256-byte lines admit larger
	// extensions and larger iteration reductions.
	set := tinySet()
	sk := tinyRunner(archmodel.Skylake)
	ax := tinyRunner(archmodel.A64FX)
	var skIter, axIter float64
	for _, spec := range set {
		b1, err := sk.Run(spec, core.FSAI, 0, core.StaticFilter)
		if err != nil {
			t.Fatal(err)
		}
		e1, err := sk.Run(spec, core.FSAIEComm, 0.01, core.DynamicFilter)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := ax.Run(spec, core.FSAI, 0, core.StaticFilter)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := ax.Run(spec, core.FSAIEComm, 0.01, core.DynamicFilter)
		if err != nil {
			t.Fatal(err)
		}
		skIter += improvementPct(float64(b1.Iterations), float64(e1.Iterations))
		axIter += improvementPct(float64(b2.Iterations), float64(e2.Iterations))
	}
	if axIter <= skIter {
		t.Fatalf("A64FX iteration gains (%.2f) not above Skylake (%.2f)", axIter, skIter)
	}
}

func TestImbalanceStudyOutput(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	spec := testsets.Spec{ID: 9, Name: "tiny-imbalanced", Class: "2D/3D Problem",
		Gen: func() *sparse.CSR { return matgen.ImbalancedMesh(20, 20, 0.25, 8, 3) }}
	s, err := RunImbalanceStudy(r, spec, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if s.DynamicIndex < s.StaticIndex {
		t.Fatalf("dynamic filtering worsened imbalance: %.3f vs %.3f", s.DynamicIndex, s.StaticIndex)
	}
	var buf bytes.Buffer
	if err := WriteImbalanceStudy(&buf, r, spec, 0.01); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dynamic filter") {
		t.Fatal("study output incomplete")
	}
}

func TestHybridTable(t *testing.T) {
	set := tinySet()[:2]
	mk := func(cores int) *Runner {
		r := tinyRunner(archmodel.Skylake.WithCoresPerProcess(cores))
		return r
	}
	rows, err := Hybrid(mk, set, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, h := range rows {
		if h.IterDecC <= 0 {
			t.Fatalf("cores=%d: FSAIE-Comm iteration decrease %.2f not positive", h.CoresPerProcess, h.IterDecC)
		}
	}
	var buf bytes.Buffer
	if err := WriteHybrid(&buf, mk, set, []int{1, 8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CPU/Process") {
		t.Fatal("hybrid output incomplete")
	}
}

func TestScalingSweep(t *testing.T) {
	spec := tinySet()[0]
	mk := func() *Runner { return tinyRunner(archmodel.Skylake) }
	rows, err := RunScaling(mk, spec, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ItersComm > r.ItersFSAI {
			t.Fatalf("ranks=%d: Comm iterations %d above FSAI %d", r.Ranks, r.ItersComm, r.ItersFSAI)
		}
	}
	var buf bytes.Buffer
	if err := WriteScaling(&buf, mk, spec, []int{2, 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Strong scaling") {
		t.Fatal("scaling output incomplete")
	}
}

func TestAblationRow(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	row, err := RunAblation(r, tinySet()[0])
	if err != nil {
		t.Fatal(err)
	}
	// FSAI and FSAIE-Comm exchange identical halo sets; naive must exceed.
	if row.HaloRecv[0] != row.HaloRecv[1] {
		t.Fatalf("comm-aware halo %d differs from FSAI %d", row.HaloRecv[1], row.HaloRecv[0])
	}
	if row.HaloRecv[2] <= row.HaloRecv[1] {
		t.Fatalf("naive halo %d not above comm-aware %d", row.HaloRecv[2], row.HaloRecv[1])
	}
	if row.BytesIter[2] <= row.BytesIter[1] {
		t.Fatalf("naive bytes/iter %v not above comm-aware %v", row.BytesIter[2], row.BytesIter[1])
	}
	var buf bytes.Buffer
	if err := WriteAblation(&buf, r, tinySet()[:1]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "naive-ext") {
		t.Fatal("ablation output incomplete")
	}
}

func TestWriteResultsCSV(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, r, tinySet()[:1], []float64{0.01}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + FSAI + (2 methods × 2 strategies × 1 filter).
	if len(lines) != 1+1+4 {
		t.Fatalf("got %d CSV lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "matrix,class,rows") {
		t.Fatalf("bad header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "tiny-poisson") {
			t.Fatalf("row missing matrix name: %q", l)
		}
	}
}

func TestWriteConvergence(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	var buf bytes.Buffer
	if err := WriteConvergence(&buf, r, tinySet()[1], 0.01); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Convergence histories") || !strings.Contains(out, "iterations") {
		t.Fatalf("incomplete output:\n%s", out)
	}
}

func TestSetupCost(t *testing.T) {
	row, err := RunSetupCost(tinySet()[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range setupVariants {
		if row.Iterations[v] <= 0 {
			t.Fatalf("%s: no iterations recorded", v)
		}
	}
	// Quality ordering on a Poisson grid: extended FSAI beats plain FSAI
	// beats Jacobi.
	if !(row.Iterations["fsaie-comm"] <= row.Iterations["fsai"] &&
		row.Iterations["fsai"] < row.Iterations["jacobi"]) {
		t.Fatalf("quality ordering violated: %+v", row.Iterations)
	}
	var buf bytes.Buffer
	if err := WriteSetupCost(&buf, tinySet()[:1], 64); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Adaptive") {
		t.Fatal("setup-cost output incomplete")
	}
}

func TestBaselines(t *testing.T) {
	r := tinyRunner(archmodel.Skylake)
	row, err := RunBaselines(r, tinySet()[0])
	if err != nil {
		t.Fatal(err)
	}
	// Quality ordering on a Poisson grid.
	it := row.Iterations
	if !(it["fsaie-comm"] <= it["fsai"] && it["fsai"] < it["none"]) {
		t.Fatalf("ordering violated: %+v", it)
	}
	if it["block-jacobi-ic"] >= it["none"] {
		t.Fatalf("block-Jacobi no better than plain CG: %+v", it)
	}
	var buf bytes.Buffer
	if err := WriteBaselines(&buf, r, tinySet()[:1]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BJ-IC(0)") {
		t.Fatal("baselines output incomplete")
	}
}

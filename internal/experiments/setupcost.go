package experiments

import (
	"fmt"
	"io"
	"time"

	"fsaicomm/internal/core"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/testsets"
)

// SetupCostRow compares preconditioner construction cost (serial wall
// clock) and quality (serial PCG iterations) across the whole baseline
// spectrum for one matrix: Jacobi, IC(0), FSAI, the extended FSAIE-Comm
// pipeline, and the FSPAI-style adaptive build. The paper reports only the
// solve phase; this table documents the setup trade-off its related-work
// section argues qualitatively.
type SetupCostRow struct {
	Spec       testsets.Spec
	SetupTimes map[string]time.Duration
	Iterations map[string]int
}

// setupVariants orders the compared preconditioners.
var setupVariants = []string{"jacobi", "ic0", "fsai", "fsaie-comm", "adaptive"}

// RunSetupCost builds every variant serially on one matrix and measures
// construction wall clock plus PCG iterations.
func RunSetupCost(spec testsets.Spec, lineBytes int) (SetupCostRow, error) {
	row := SetupCostRow{
		Spec:       spec,
		SetupTimes: map[string]time.Duration{},
		Iterations: map[string]int{},
	}
	a := spec.Generate()
	b := matgen.RandomRHS(a.Rows, int64(1000+spec.ID), a.MaxNorm())
	solveWith := func(pre krylov.Preconditioner) (int, error) {
		x := make([]float64, a.Rows)
		st, err := krylov.CG(a, b, x, pre, krylov.Options{MaxIter: 200000}, nil)
		if err != nil {
			return 0, err
		}
		return st.Iterations, nil
	}
	for _, v := range setupVariants {
		t0 := time.Now()
		var pre krylov.Preconditioner
		var err error
		switch v {
		case "jacobi":
			pre, err = krylov.NewJacobi(a)
		case "ic0":
			pre, err = krylov.NewIC0(a)
		case "fsai":
			gm, e := fsai.Build(a, fsai.LowerPattern(a))
			if e != nil {
				err = e
			} else {
				pre = krylov.NewSplit(gm, gm.Transpose())
			}
		case "fsaie-comm":
			gm, _, e := core.BuildSerial(a, core.FSAIEComm, 0.01, lineBytes)
			if e != nil {
				err = e
			} else {
				pre = krylov.NewSplit(gm, gm.Transpose())
			}
		case "adaptive":
			gm, e := fsai.BuildAdaptive(a, fsai.AdaptiveOptions{Steps: 4, AddPerStep: 4})
			if e != nil {
				err = e
			} else {
				pre = krylov.NewSplit(gm, gm.Transpose())
			}
		}
		if err != nil {
			return row, fmt.Errorf("experiments: setup %s/%s: %w", spec.Name, v, err)
		}
		row.SetupTimes[v] = time.Since(t0)
		iters, err := solveWith(pre)
		if err != nil {
			return row, fmt.Errorf("experiments: solve %s/%s: %w", spec.Name, v, err)
		}
		row.Iterations[v] = iters
	}
	return row, nil
}

// WriteSetupCost renders the setup-cost comparison for a set of matrices.
func WriteSetupCost(w io.Writer, set []testsets.Spec, lineBytes int) error {
	fmt.Fprintf(w, "Preconditioner setup cost vs quality (serial, %dB lines, Filter 0.01)\n", lineBytes)
	var rows [][]string
	for _, spec := range set {
		row, err := RunSetupCost(spec, lineBytes)
		if err != nil {
			return err
		}
		cells := []string{row.Spec.Name}
		for _, v := range setupVariants {
			cells = append(cells, fmt.Sprintf("%v/%d",
				row.SetupTimes[v].Round(10*time.Microsecond), row.Iterations[v]))
		}
		rows = append(rows, cells)
	}
	writeTable(w, []string{"Matrix", "Jacobi t/it", "IC(0) t/it", "FSAI t/it", "FSAIE-Comm t/it", "Adaptive t/it"}, rows)
	fmt.Fprintln(w)
	return nil
}

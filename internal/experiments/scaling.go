package experiments

import (
	"fmt"
	"io"

	"fsaicomm/internal/core"
	"fsaicomm/internal/testsets"
)

// ScalingRow is one rank count of the strong-scaling sweep.
type ScalingRow struct {
	Ranks        int
	ItersFSAI    int
	ItersComm    int
	TimeImpE     float64 // FSAIE vs FSAI, model time
	TimeImpC     float64 // FSAIE-Comm vs FSAI, model time
	HaloPct      float64 // FSAI halo unknowns / rows, %
	BytesPerIter float64 // FSAIE-Comm metered solve traffic per iteration
}

// RunScaling sweeps the simulated process count for one matrix (an
// extension of the paper's large-scale §5.5.1 story): as ranks grow, the
// halo fraction grows, and the gap between FSAIE (local-only extension) and
// FSAIE-Comm (halo too) widens. Uses the best paper Filter per run with the
// dynamic strategy.
func RunScaling(arch func() *Runner, spec testsets.Spec, rankCounts []int) ([]ScalingRow, error) {
	var out []ScalingRow
	for _, ranks := range rankCounts {
		r := arch()
		rk := ranks
		r.RanksOf = func(int) int { return rk }
		base, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
		if err != nil {
			return nil, err
		}
		bestE, bestC := 1e18, 1e18
		var bestCommRes Result
		for _, f := range PaperFilters {
			re, err := r.Run(spec, core.FSAIE, f, core.DynamicFilter)
			if err != nil {
				return nil, err
			}
			rc, err := r.Run(spec, core.FSAIEComm, f, core.DynamicFilter)
			if err != nil {
				return nil, err
			}
			if re.SolveTime < bestE {
				bestE = re.SolveTime
			}
			if rc.SolveTime < bestC {
				bestC = rc.SolveTime
				bestCommRes = rc
			}
		}
		out = append(out, ScalingRow{
			Ranks:        ranks,
			ItersFSAI:    base.Iterations,
			ItersComm:    bestCommRes.Iterations,
			TimeImpE:     improvementPct(base.SolveTime, bestE),
			TimeImpC:     improvementPct(base.SolveTime, bestC),
			HaloPct:      100 * base.CommBytesPerIter / (8 * float64(base.Rows)),
			BytesPerIter: bestCommRes.CommBytesPerIter,
		})
	}
	return out, nil
}

// WriteScaling renders the strong-scaling sweep.
func WriteScaling(w io.Writer, arch func() *Runner, spec testsets.Spec, rankCounts []int) error {
	rows, err := RunScaling(arch, spec, rankCounts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Strong scaling on %s: FSAIE/FSAIE-Comm vs FSAI (best dynamic Filter)\n", spec.Name)
	var cells [][]string
	for _, s := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", s.Ranks),
			fmt.Sprintf("%d", s.ItersFSAI),
			fmt.Sprintf("%d", s.ItersComm),
			fmt.Sprintf("%.2f", s.TimeImpE),
			fmt.Sprintf("%.2f", s.TimeImpC),
			fmt.Sprintf("%.2f", s.TimeImpC-s.TimeImpE),
			fmt.Sprintf("%.0f", s.BytesPerIter),
		})
	}
	writeTable(w, []string{"Ranks", "FSAI iters", "Comm iters",
		"FSAIE time imp %", "Comm time imp %", "Comm advantage pp", "Bytes/iter"}, cells)
	fmt.Fprintln(w)
	return nil
}

package experiments

import (
	"fmt"
	"io"

	"fsaicomm/internal/core"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/testsets"
)

// InteractionVariants orders the CG-loop column of the interaction study.
var InteractionVariants = []krylov.CGVariant{
	krylov.CGClassic, krylov.CGClassicOverlap, krylov.CGFused, krylov.CGPipelined,
}

// InteractionCell is one (rank count, CG variant) cell of the interaction
// study: the FSAI baseline and the best filtered FSAIE-Comm configuration,
// both solved with that variant.
type InteractionCell struct {
	Ranks   int
	Variant krylov.CGVariant

	BaseIters int
	BaseTime  float64 // modeled seconds, FSAI

	BestFilter float64
	CommIters  int
	CommTime   float64 // modeled seconds, best FSAIE-Comm over the filter sweep
}

// RunInteraction crosses the paper's sparsity-side saving (FSAIE-Comm with
// the dynamic filter sweep) with the solver-side saving (the CG loop
// variant) over a set of rank counts. arch builds a fresh Runner per rank
// count (the memo caches are per-ranks, and RanksOf is pinned per sweep);
// within one rank count the variants share the matrix, partition and
// extended-pattern caches and differ only in the solve.
func RunInteraction(arch func() *Runner, spec testsets.Spec, rankCounts []int, filters []float64) ([]InteractionCell, error) {
	var out []InteractionCell
	for _, ranks := range rankCounts {
		r := arch()
		rk := ranks
		r.RanksOf = func(int) int { return rk }
		for _, v := range InteractionVariants {
			r.Variant = v
			base, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
			if err != nil {
				return nil, err
			}
			cell := InteractionCell{
				Ranks: ranks, Variant: v,
				BaseIters: base.Iterations, BaseTime: base.SolveTime,
			}
			best := Result{SolveTime: 1e300}
			for _, f := range filters {
				res, err := r.Run(spec, core.FSAIEComm, f, core.DynamicFilter)
				if err != nil {
					return nil, err
				}
				if res.SolveTime < best.SolveTime {
					best = res
					cell.BestFilter = f
				}
			}
			cell.CommIters = best.Iterations
			cell.CommTime = best.SolveTime
			out = append(out, cell)
		}
	}
	return out, nil
}

// WriteInteraction renders the interaction study and, per rank count, the
// composition check: does combining the pattern saving (FSAIE-Comm) with
// the solver saving (pipelined CG) keep both, i.e. is the combined modeled
// saving close to the product of the individual ones?
func WriteInteraction(w io.Writer, arch func() *Runner, spec testsets.Spec, rankCounts []int, filters []float64) error {
	cells, err := RunInteraction(arch, spec, rankCounts, filters)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Interaction study on %s: filtered pattern x CG variant (dynamic Filter sweep %v)\n",
		spec.Name, filters)
	var rows [][]string
	byKey := map[[2]string]InteractionCell{}
	for _, c := range cells {
		byKey[[2]string{fmt.Sprint(c.Ranks), c.Variant.String()}] = c
		classicBase := byKey[[2]string{fmt.Sprint(c.Ranks), krylov.CGClassic.String()}]
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Ranks), c.Variant.String(),
			fmt.Sprintf("%d", c.BaseIters), fmt.Sprintf("%.2e", c.BaseTime),
			fmt.Sprintf("%.2f", c.BestFilter),
			fmt.Sprintf("%d", c.CommIters), fmt.Sprintf("%.2e", c.CommTime),
			fmt.Sprintf("%.2f", improvementPct(classicBase.BaseTime, c.CommTime)),
		})
	}
	writeTable(w, []string{"Ranks", "CG loop", "FSAI iters", "FSAI time",
		"Filter", "Comm iters", "Comm time", "imp % vs classic/FSAI"}, rows)
	for _, ranks := range rankCounts {
		k := fmt.Sprint(ranks)
		t00 := byKey[[2]string{k, "classic"}].BaseTime   // neither saving
		t01 := byKey[[2]string{k, "classic"}].CommTime   // pattern only
		t10 := byKey[[2]string{k, "pipelined"}].BaseTime // solver only
		t11 := byKey[[2]string{k, "pipelined"}].CommTime // both
		if t00 == 0 {
			continue
		}
		sPat := 1 - t01/t00
		sPipe := 1 - t10/t00
		sBoth := 1 - t11/t00
		sPred := 1 - (1-sPat)*(1-sPipe)
		fmt.Fprintf(w, "ranks=%d: pattern saves %.1f%%, pipelining saves %.1f%%, together %.1f%% (independent-savings prediction %.1f%%)\n",
			ranks, 100*sPat, 100*sPipe, 100*sBoth, 100*sPred)
	}
	fmt.Fprintln(w)
	return nil
}

package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/testsets"
)

func TestInteractionStudy(t *testing.T) {
	spec := tinySet()[0]
	mk := func() *Runner { return NewRunner(archmodel.Skylake) }
	cells, err := RunInteraction(mk, spec, []int{2, 4}, []float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*len(InteractionVariants) {
		t.Fatalf("got %d cells, want %d", len(cells), 2*len(InteractionVariants))
	}
	byKey := map[[2]interface{}]InteractionCell{}
	for _, c := range cells {
		if c.BaseIters <= 0 || c.BaseTime <= 0 || c.CommIters <= 0 || c.CommTime <= 0 {
			t.Fatalf("incomplete cell: %+v", c)
		}
		// The pattern saving must survive every CG variant.
		if c.CommIters > c.BaseIters {
			t.Fatalf("ranks=%d %s: FSAIE-Comm iterations %d above FSAI %d",
				c.Ranks, c.Variant, c.CommIters, c.BaseIters)
		}
		byKey[[2]interface{}{c.Ranks, c.Variant}] = c
	}
	for _, ranks := range []int{2, 4} {
		classic := byKey[[2]interface{}{ranks, krylov.CGClassic}]
		for _, v := range InteractionVariants[1:] {
			c := byKey[[2]interface{}{ranks, v}]
			// Overlap credit and fewer reductions never make the model slower.
			if c.BaseTime > classic.BaseTime {
				t.Fatalf("ranks=%d: %s modeled FSAI time %v above classic %v",
					ranks, v, c.BaseTime, classic.BaseTime)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteInteraction(&buf, mk, spec, []int{2, 4}, []float64{0.05}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Interaction study", "pipelined", "independent-savings"} {
		if !strings.Contains(out, want) {
			t.Fatalf("interaction output missing %q:\n%s", want, out)
		}
	}
}

// TestPipelinedModeledBeatsFused pins the acceptance criterion for the
// overlap-credit model: on a ranks>=4 benchmark configuration
// (Queen_4147-sim, the Table 2 3-D Poisson instance), the modeled solve
// time of the pipelined loop is strictly below the fused loop's, because
// the single reduction hides behind boundary-row compute instead of being
// exposed, while iteration counts stay within the +-2 band.
func TestPipelinedModeledBeatsFused(t *testing.T) {
	spec, err := testsets.ByName("Queen_4147-sim")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(archmodel.Skylake)
	r.RanksOf = func(int) int { return 4 }
	r.Variant = krylov.CGFused
	fused, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
	if err != nil {
		t.Fatal(err)
	}
	r.Variant = krylov.CGPipelined
	pipe, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
	if err != nil {
		t.Fatal(err)
	}
	if d := pipe.Iterations - fused.Iterations; d < -2 || d > 2 {
		t.Fatalf("pipelined iterations %d vs fused %d", pipe.Iterations, fused.Iterations)
	}
	if pipe.SolveTime >= fused.SolveTime {
		t.Fatalf("pipelined modeled time %v not below fused %v", pipe.SolveTime, fused.SolveTime)
	}
	// Both hiding variants stay at one collective per iteration.
	if pipe.CollectiveCalls > fused.CollectiveCalls+8 {
		t.Fatalf("pipelined collectives %d far above fused %d", pipe.CollectiveCalls, fused.CollectiveCalls)
	}
}

func TestBenchRecordsSmoke(t *testing.T) {
	recs, err := benchRecords(archmodel.Skylake, tinySet()[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(InteractionVariants) {
		t.Fatalf("got %d records, want %d", len(recs), len(InteractionVariants))
	}
	byVariant := map[string]BenchRecord{}
	for i, rec := range recs {
		if rec.Variant != InteractionVariants[i].String() {
			t.Fatalf("record %d variant %q, want %q", i, rec.Variant, InteractionVariants[i])
		}
		if !rec.Converged || rec.Iterations <= 0 || rec.NsPerOp <= 0 ||
			rec.ModeledSolveSec <= 0 || rec.ModeledIterSec <= 0 {
			t.Fatalf("incomplete record: %+v", rec)
		}
		if rec.P2PBytes <= 0 || rec.CollectiveCalls <= 0 {
			t.Fatalf("meter totals missing: %+v", rec)
		}
		if len(rec.Phases.Windows) == 0 || rec.Phases.TotalSec != rec.ModeledSolveSec {
			t.Fatalf("phases section missing or not reconciling with modeled_solve_s: %+v", rec.Phases)
		}
		byVariant[rec.Variant] = rec
	}
	// Fused and pipelined post one reduction per iteration, classic three.
	cl, pi := byVariant["classic"], byVariant["pipelined"]
	if pi.CollectiveCalls >= cl.CollectiveCalls {
		t.Fatalf("pipelined collectives %d not below classic %d", pi.CollectiveCalls, cl.CollectiveCalls)
	}
	var buf bytes.Buffer
	if err := writeBenchRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var back []BenchRecord
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(back) != len(recs) || back[len(back)-1].Variant != "pipelined" {
		t.Fatalf("round-tripped artifact wrong: %+v", back)
	}
}

package experiments

import (
	"fmt"
	"io"

	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/testsets"
)

// AblationRow compares one matrix across FSAI, FSAIE-Comm and the
// communication-oblivious "naive" extension (cache-line candidates in
// global index space with no admissibility test). It quantifies what the
// paper's Algorithm 3 rule buys: the naive variant gains similar iteration
// reductions but inflates the halo exchange, which the α–β model converts
// into lost time at scale.
type AblationRow struct {
	Spec       testsets.Spec
	Ranks      int
	Iterations [3]int     // FSAI, FSAIE-Comm, naive
	HaloRecv   [3]int     // total unknowns received per halo update of G
	Neighbours [3]int     // total neighbour pairs in G's halo update
	BytesIter  [3]float64 // metered solve traffic per iteration
	ModelTime  [3]float64 // cost-model solve time (overlap-credit model)
	// ExposedComm is the modeled communication time left exposed after
	// overlap credit, per solve (worst rank): the part of ModelTime the
	// interconnect actually costs under the variant's schedule.
	ExposedComm [3]float64
}

// variantNames orders the ablation columns.
var variantNames = [3]string{"FSAI", "FSAIE-Comm", "naive-ext"}

// RunAblation executes the ablation for one matrix.
func RunAblation(r *Runner, spec testsets.Spec) (AblationRow, error) {
	var row AblationRow
	row.Spec = spec
	_, nnz := r.size(spec)
	ranks := r.RanksOf(nnz)
	row.Ranks = ranks
	me, err := r.matrix(spec, ranks)
	if err != nil {
		return row, err
	}

	works := r.workspaces(ranks)
	for vi := 0; vi < 3; vi++ {
		costs := make([]IterCostInputs, ranks)
		var iters int
		var haloRecv, neigh int
		world, err := simmpi.Run(ranks, runTimeout, func(c *simmpi.Comm) error {
			lo, hi := me.layout.Range(c.Rank())
			nl := hi - lo
			aRows := distmat.ExtractLocalRows(me.a, lo, hi)
			s := core.LowerPatternDist(aRows, lo)
			pat := s
			switch vi {
			case 1: // FSAIE-Comm
				lz := distmat.Localize(lo, hi, core.PatternCSR(s))
				ext, _, err := core.ExtendPattern(me.layout, s, lz, core.ExtendOptions{
					LineBytes: r.Arch.LineBytes, CommAware: true,
				})
				if err != nil {
					return err
				}
				pat = ext
			case 2: // naive
				ext, err := core.ExtendPatternNaive(me.layout, s, core.ExtendOptions{
					LineBytes: r.Arch.LineBytes,
				})
				if err != nil {
					return err
				}
				pat = ext
			}
			g, err := fsai.BuildDistWorkers(c, me.layout, aRows, pat, r.Workers)
			if err != nil {
				return err
			}
			gt := distmat.TransposeDist(c, me.layout, lo, hi, g)
			aOp := distmat.NewOp(c, me.layout, lo, hi, aRows, r.opOptions()...)
			gOp := distmat.NewOp(c, me.layout, lo, hi, g, r.opOptions()...)
			gtOp := distmat.NewOp(c, me.layout, lo, hi, gt, r.opOptions()...)

			recv := c.AllreduceSumInt64(int64(gOp.Plan.RecvCount()))[0]
			nb := c.AllreduceSumInt64(int64(len(gOp.Plan.RecvPeerIDs())))[0]

			costs[c.Rank()] = AssembleIterCost(r.Arch, aOp, gOp, gtOp, nl, ranks, r.Variant)

			c.Barrier()
			if c.Rank() == 0 {
				c.Meter().Reset()
			}
			c.Barrier()
			x := make([]float64, nl)
			st, err := krylov.DistCG(c, aOp, me.b[lo:hi], x,
				krylov.NewDistSplit(gOp, gtOp), r.cgOptions(works, c.Rank(), false), nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				iters = st.Iterations
				haloRecv = int(recv)
				neigh = int(nb)
			}
			return nil
		})
		if err != nil {
			return row, fmt.Errorf("experiments: ablation %s/%s: %w", spec.Name, variantNames[vi], err)
		}
		row.Iterations[vi] = iters
		row.HaloRecv[vi] = haloRecv
		row.Neighbours[vi] = neigh
		row.BytesIter[vi] = float64(world.Meter().TotalP2PBytes()) / float64(iters)
		row.ModelTime[vi] = ModeledSolveTime(r.Arch, r.Variant, iters, costs)
		rep := ModeledPhases(r.Arch, r.Variant, iters, costs)
		row.ExposedComm[vi] = rep.ExposedSec
		for _, w := range rep.Windows {
			row.ExposedComm[vi] += w.ExposedSec
		}
	}
	return row, nil
}

// WriteAblation renders the ablation table for a set of matrices.
func WriteAblation(w io.Writer, r *Runner, set []testsets.Spec) error {
	fmt.Fprintf(w, "Ablation: communication-aware admissibility rule (arch %s, unfiltered)\n", r.Arch.Name)
	fmt.Fprintln(w, "naive-ext extends over global cache lines with no admissibility test.")
	var rows [][]string
	for _, spec := range set {
		row, err := RunAblation(r, spec)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			row.Spec.Name, fmt.Sprintf("%d", row.Ranks),
			fmt.Sprintf("%d/%d/%d", row.Iterations[0], row.Iterations[1], row.Iterations[2]),
			fmt.Sprintf("%d/%d/%d", row.HaloRecv[0], row.HaloRecv[1], row.HaloRecv[2]),
			fmt.Sprintf("%d/%d/%d", row.Neighbours[0], row.Neighbours[1], row.Neighbours[2]),
			fmt.Sprintf("%.0f/%.0f/%.0f", row.BytesIter[0], row.BytesIter[1], row.BytesIter[2]),
			fmt.Sprintf("%.2e/%.2e/%.2e", row.ModelTime[0], row.ModelTime[1], row.ModelTime[2]),
			fmt.Sprintf("%.2e/%.2e/%.2e", row.ExposedComm[0], row.ExposedComm[1], row.ExposedComm[2]),
		})
	}
	writeTable(w, []string{
		"Matrix", "Ranks", "Iters F/C/N", "Halo recv F/C/N", "Neigh F/C/N",
		"Bytes/iter F/C/N", "Model time F/C/N", "Exposed comm F/C/N",
	}, rows)
	fmt.Fprintln(w)
	return nil
}

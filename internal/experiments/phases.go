package experiments

import (
	"fmt"
	"io"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/testsets"
)

// PhaseRow is one (rank count, CG variant) row of the phases study: the
// per-window exposed/hidden breakdown of the modeled solve time. Report is
// the worst rank's whole-solve breakdown; Report.TotalSec == ModeledSolve
// exactly, so the table's columns reconcile with the scalar time the other
// experiments print.
type PhaseRow struct {
	Ranks      int
	Variant    krylov.CGVariant
	Iterations int
	Filter     float64
	// ModeledSolve is the Result.SolveTime of the same configuration.
	ModeledSolve float64
	Report       archmodel.OverlapReport
}

// RunPhases solves spec with FSAIE-Comm (dynamic filter) for every CG
// variant at every rank count and collects the per-window modeled-time
// breakdowns. mk builds a fresh Runner per rank count, like RunInteraction.
func RunPhases(mk func() *Runner, spec testsets.Spec, rankCounts []int, filter float64) ([]PhaseRow, error) {
	var out []PhaseRow
	for _, ranks := range rankCounts {
		r := mk()
		rk := ranks
		r.RanksOf = func(int) int { return rk }
		for _, v := range InteractionVariants {
			r.Variant = v
			res, err := r.Run(spec, core.FSAIEComm, filter, core.DynamicFilter)
			if err != nil {
				return nil, err
			}
			out = append(out, PhaseRow{
				Ranks: ranks, Variant: v,
				Iterations:   res.Iterations,
				Filter:       filter,
				ModeledSolve: res.SolveTime,
				Report:       res.Phases,
			})
		}
	}
	return out, nil
}

// window returns the named window's report, or a zero report when absent.
func window(rep archmodel.OverlapReport, name string) archmodel.WindowReport {
	for _, w := range rep.Windows {
		if w.Name == name {
			return w
		}
	}
	return archmodel.WindowReport{Name: name}
}

// WritePhases renders the per-window exposed/hidden phases table: for each
// CG variant and rank count, the raw, hidden and exposed modeled time of
// the halo and reduction windows (milliseconds, whole solve, worst rank).
// The Total column is compute + unwindowed comm + exposed window time and
// equals the modeled solve time of the interaction study's cells.
func WritePhases(w io.Writer, mk func() *Runner, spec testsets.Spec, rankCounts []int, filter float64) error {
	rows, err := RunPhases(mk, spec, rankCounts, filter)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Phase breakdown on %s (FSAIE-Comm, dynamic Filter %g): modeled ms per solve, worst rank\n",
		spec.Name, filter)
	fmt.Fprintln(w, "hidden = comm time covered by the window's overlapped compute; exposed = remainder charged to the solve.")
	ms := func(s float64) string { return fmt.Sprintf("%.3f", 1e3*s) }
	var table [][]string
	for _, row := range rows {
		halo := window(row.Report, "halo")
		red := window(row.Report, "reduction")
		table = append(table, []string{
			fmt.Sprintf("%d", row.Ranks), row.Variant.String(),
			fmt.Sprintf("%d", row.Iterations),
			ms(row.Report.ComputeSec),
			ms(halo.RawSec), ms(halo.HiddenSec), ms(halo.ExposedSec),
			ms(red.RawSec), ms(red.HiddenSec), ms(red.ExposedSec),
			ms(row.ModeledSolve),
		})
	}
	writeTable(w, []string{"Ranks", "CG loop", "Iters", "Compute",
		"Halo raw", "hidden", "exposed",
		"Red raw", "hidden", "exposed", "Total"}, table)
	fmt.Fprintln(w)
	return nil
}

package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/krylov"
)

// The acceptance identity of the phases study: for every CG variant the
// per-window breakdown reconciles exactly — not approximately — with the
// scalar modeled solve time the other experiments print, and the windows
// land where the schedules put them: classic hides nothing, the overlapped
// SpMV variants hide halo time, and only the pipelined loop hides
// reduction time.
func TestPhasesReconcileWithModeledSolveTime(t *testing.T) {
	spec := tinySet()[0]
	for _, v := range InteractionVariants {
		r := tinyRunner(archmodel.Zen2)
		r.Variant = v
		res, err := r.Run(spec, core.FSAIEComm, 0.05, core.DynamicFilter)
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Phases
		if rep.TotalSec != res.SolveTime {
			t.Fatalf("%v: Phases.TotalSec %g != SolveTime %g", v, rep.TotalSec, res.SolveTime)
		}
		halo, red := window(rep, "halo"), window(rep, "reduction")
		if halo.RawSec <= 0 || red.RawSec <= 0 {
			t.Fatalf("%v: empty windows: halo %+v reduction %+v", v, halo, red)
		}
		// The whole-solve report is the per-iteration one scaled by the
		// iteration count; scaling each component separately costs an ulp,
		// so the window split reconciles to relative rounding error while
		// TotalSec (the same multiplication SolveTime performs) stays exact.
		for _, w := range []archmodel.WindowReport{halo, red} {
			if d := w.HiddenSec - (w.RawSec - w.ExposedSec); d > 1e-12*w.RawSec || d < -1e-12*w.RawSec {
				t.Fatalf("%v: window %q does not split raw time: %+v", v, w.Name, w)
			}
			if w.HiddenSec < 0 || w.ExposedSec < 0 {
				t.Fatalf("%v: window %q negative component: %+v", v, w.Name, w)
			}
		}
		switch v {
		case krylov.CGClassic:
			if halo.HiddenSec != 0 || red.HiddenSec != 0 {
				t.Fatalf("classic hides nothing, got halo %+v reduction %+v", halo, red)
			}
		case krylov.CGClassicOverlap, krylov.CGFused:
			if halo.HiddenSec <= 0 {
				t.Fatalf("%v: overlapped SpMV hides no halo time: %+v", v, halo)
			}
			if red.HiddenSec != 0 {
				t.Fatalf("%v: blocking reduction reported hidden time: %+v", v, red)
			}
		case krylov.CGPipelined:
			if red.HiddenSec <= 0 {
				t.Fatalf("pipelined hides no reduction time: %+v", red)
			}
			if halo.HiddenSec <= 0 {
				t.Fatalf("pipelined hides no halo time: %+v", halo)
			}
		}
	}
}

func TestRunPhasesAndWrite(t *testing.T) {
	spec := tinySet()[0]
	mk := func() *Runner { return NewRunner(archmodel.Zen2) }
	rows, err := RunPhases(mk, spec, []int{2, 3}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(InteractionVariants); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, row := range rows {
		if row.Report.TotalSec != row.ModeledSolve {
			t.Fatalf("row %+v: breakdown does not reconcile with modeled solve", row)
		}
		if row.Iterations <= 0 {
			t.Fatalf("row without iterations: %+v", row)
		}
	}
	var buf bytes.Buffer
	if err := WritePhases(&buf, mk, spec, []int{2}, 0.05); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Phase breakdown", "Halo raw", "Red raw", "pipelined", "classic-overlap", "Total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("phases table missing %q:\n%s", want, out)
		}
	}
}

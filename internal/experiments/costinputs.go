package experiments

import (
	"math"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/cache"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/krylov"
)

// IterCostInputs holds one rank's per-iteration cost-model inputs for a
// distributed CG solve with the split FSAI preconditioner: the flat
// (fully-exposed) rank cost, the overlap-credit split matching the CG
// variant's schedule, and the preconditioner-product miss count reused by
// the GFLOP/s histograms.
type IterCostInputs struct {
	Rank          archmodel.RankCost
	Overlap       archmodel.OverlapCost
	PrecondMisses int64
}

// reductionsFor is the global-collective count per CG iteration of a
// variant, an input to the message cost model.
func reductionsFor(variant krylov.CGVariant) int64 {
	switch variant {
	case krylov.CGFused, krylov.CGPipelined:
		return 1
	default:
		return 3
	}
}

// overlapCostFor splits one rank's per-iteration cost the way a variant's
// schedule executes it, for archmodel's overlap-credit model. Every variant
// carries the same two named windows — "halo" and "reduction" — so the
// per-phase reports are comparable across variants; what changes is the
// hiding compute. The classic loop hides nothing (both windows fully
// exposed). The overlapped schedules hide the halo exchange behind the
// interior rows of the three operators; the pipelined variant additionally
// hides its single reduction behind the boundary rows — a disjoint compute
// window, so no flop is credited twice (conservative: the real schedule
// overlaps the reduction with the whole SpMV phase).
func overlapCostFor(variant krylov.CGVariant, rc archmodel.RankCost, intNNZ, totNNZ, logP int64) archmodel.OverlapCost {
	// Reductions are log₂-tree traffic between processes picked across the
	// whole machine, so they are priced at the inter-node level; the halo
	// window carries both levels of the exchange (all of the rank's
	// intra-node traffic is halo traffic), so a node-aware plan's cheap
	// up/down legs are credited against the same interior-compute window the
	// expensive inter-node leg hides behind.
	red := archmodel.RankCost{CommMsgs: reductionsFor(variant) * logP, CommBytes: 24 * logP}
	halo := archmodel.RankCost{
		CommMsgs: rc.CommMsgs - red.CommMsgs, CommBytes: rc.CommBytes,
		IntraCommMsgs: rc.IntraCommMsgs, IntraCommBytes: rc.IntraCommBytes,
	}
	var haloHide, redHide archmodel.RankCost
	switch variant {
	case krylov.CGClassic:
		// Blocking schedule: nothing hides.
	case krylov.CGPipelined:
		bnd := totNNZ - intNNZ
		haloHide = archmodel.RankCost{Flops: 2 * intNNZ, StreamBytes: 12 * intNNZ}
		redHide = archmodel.RankCost{Flops: 2 * bnd, StreamBytes: 12 * bnd}
	default: // CGClassicOverlap, CGFused: overlapped SpMV, blocking reduction
		haloHide = archmodel.RankCost{Flops: 2 * intNNZ, StreamBytes: 12 * intNNZ}
	}
	return archmodel.OverlapCost{
		Compute: archmodel.RankCost{Flops: rc.Flops, StreamBytes: rc.StreamBytes, CacheMisses: rc.CacheMisses},
		Windows: []archmodel.CommWindow{
			{Name: "halo", Comm: halo, Hide: haloHide},
			{Name: "reduction", Comm: red, Hide: redHide},
		},
	}
}

// AssembleIterCost builds one rank's per-iteration cost-model inputs from
// the three distributed operators of a solve (A, G, Gᵀ). nl is the rank's
// local row count, ranks the world size. The same assembly backs
// Runner.Run, the ablation and the facade's modeled solve time, so every
// reported modeled number uses one set of constants: matrix entries stream
// 12 B each (8 B value + 4 B index), the CG vector kernels stream roughly
// 10 vector reads/writes, and reductions cost log₂-tree messages.
func AssembleIterCost(arch archmodel.Profile, aOp, gOp, gtOp *distmat.Op, nl, ranks int, variant krylov.CGVariant) IterCostInputs {
	sim := arch.NewProcessCache()
	missA := cache.TraceSpMVOnX(aOp.LZ.M, sim)
	missPre := cache.TracePrecondProduct(gOp.LZ.M, gtOp.LZ.M, sim)
	logP := int64(math.Ceil(math.Log2(float64(ranks + 1))))
	totNNZ := int64(aOp.LZ.M.NNZ() + gOp.LZ.M.NNZ() + gtOp.LZ.M.NNZ())
	// Each operator's halo traffic is whatever ONE exchange under the plan's
	// current routing charges this rank's meter, split by topology level:
	// under a flat plan all of it is inter-node with the historical per-peer
	// counts; under node-aware routing the inter level collapses to one
	// message per peer node while the up/down legs land on the cheap intra
	// level. Reductions are log₂-tree inter-node messages as before.
	var intraMsgs, intraBytes, interMsgs, interBytes int64
	for _, plan := range []*distmat.HaloPlan{aOp.Plan, gOp.Plan, gtOp.Plan} {
		im, ib, xm, xb := plan.ExchangeCounts(1)
		intraMsgs += im
		intraBytes += ib
		interMsgs += xm
		interBytes += xb
	}
	out := IterCostInputs{
		Rank: archmodel.RankCost{
			Flops:          2*totNNZ + 12*int64(nl),
			StreamBytes:    12*totNNZ + 80*int64(nl),
			CacheMisses:    missA + missPre,
			CommBytes:      interBytes,
			CommMsgs:       interMsgs + reductionsFor(variant)*logP,
			IntraCommBytes: intraBytes,
			IntraCommMsgs:  intraMsgs,
		},
		PrecondMisses: missPre,
	}
	// The classic loop's windows carry zero hiding compute, so it never
	// needs the overlap view of the operators (interior nnz only feeds the
	// hide windows).
	var intNNZ int64
	if variant != krylov.CGClassic {
		intNNZ = int64(aOp.EnsureOverlap().InteriorNNZ() +
			gOp.EnsureOverlap().InteriorNNZ() + gtOp.EnsureOverlap().InteriorNNZ())
	}
	out.Overlap = overlapCostFor(variant, out.Rank, intNNZ, totNNZ, logP)
	return out
}

// AssembleSPAIGMRESIterCost builds one rank's per-iteration cost-model
// inputs for the SPAI-preconditioned restarted GMRES(m) solve. Each inner
// iteration streams two operators (A and the explicit inverse M, both in the
// blocking schedule — GMRES has no overlapped variant) and runs the modified
// Gram–Schmidt dot ladder: iteration j of a cycle costs j+1 dots plus one
// norm, so averaged over a full cycle the reduction count per iteration is
// (restart+3)/2, rounded up. The windows carry no hiding compute, matching
// the classic CG pricing.
func AssembleSPAIGMRESIterCost(arch archmodel.Profile, aOp, mOp *distmat.Op, nl, ranks, restart int) IterCostInputs {
	if restart < 1 {
		restart = 30 // krylov's GMRES default cycle length
	}
	sim := arch.NewProcessCache()
	missA := cache.TraceSpMVOnX(aOp.LZ.M, sim)
	missM := cache.TraceSpMVOnX(mOp.LZ.M, sim)
	logP := int64(math.Ceil(math.Log2(float64(ranks + 1))))
	totNNZ := int64(aOp.LZ.M.NNZ() + mOp.LZ.M.NNZ())
	reductions := int64((restart + 3 + 1) / 2)
	var intraMsgs, intraBytes, interMsgs, interBytes int64
	for _, plan := range []*distmat.HaloPlan{aOp.Plan, mOp.Plan} {
		im, ib, xm, xb := plan.ExchangeCounts(1)
		intraMsgs += im
		intraBytes += ib
		interMsgs += xm
		interBytes += xb
	}
	// MGS touches ≈(restart+1)/2 basis vectors per iteration on average, on
	// top of the SpMV vector traffic — folded into the stream-byte term the
	// same way CG's ~10 vector sweeps are.
	vecSweeps := int64(10 + (restart+1)/2)
	rc := archmodel.RankCost{
		Flops:          2*totNNZ + 4*int64(nl)*int64(restart+1)/2,
		StreamBytes:    12*totNNZ + 8*vecSweeps*int64(nl),
		CacheMisses:    missA + missM,
		CommBytes:      interBytes,
		CommMsgs:       interMsgs + reductions*logP,
		IntraCommBytes: intraBytes,
		IntraCommMsgs:  intraMsgs,
	}
	red := archmodel.RankCost{CommMsgs: reductions * logP, CommBytes: 24 * logP * reductions / 2}
	halo := archmodel.RankCost{
		CommMsgs: rc.CommMsgs - red.CommMsgs, CommBytes: rc.CommBytes,
		IntraCommMsgs: rc.IntraCommMsgs, IntraCommBytes: rc.IntraCommBytes,
	}
	return IterCostInputs{
		Rank: rc,
		Overlap: archmodel.OverlapCost{
			Compute: archmodel.RankCost{Flops: rc.Flops, StreamBytes: rc.StreamBytes, CacheMisses: rc.CacheMisses},
			Windows: []archmodel.CommWindow{
				{Name: "halo", Comm: halo},
				{Name: "reduction", Comm: red},
			},
		},
		PrecondMisses: missM,
	}
}

// ModeledSolveTime converts per-rank cost inputs into the variant-aware
// modeled solve time under the overlap-credit model. Every variant flows
// through the same windowed model; the classic loop's windows simply carry
// no hiding compute, so its time equals the fully-exposed α–β model.
func ModeledSolveTime(arch archmodel.Profile, variant krylov.CGVariant, iters int, costs []IterCostInputs) float64 {
	perRank := make([]archmodel.OverlapCost, len(costs))
	for i, ci := range costs {
		perRank[i] = ci.Overlap
	}
	return arch.SolveTimeOverlapped(iters, perRank)
}

// ModeledPhases returns the per-window breakdown of ModeledSolveTime for
// the same inputs: the worst rank's per-iteration OverlapReport scaled by
// the iteration count. The report's per-iteration terms sum exactly (same
// accumulation order) and TotalSec equals ModeledSolveTime bit-for-bit, so
// the printed phases tables reconcile with the scalar modeled time.
func ModeledPhases(arch archmodel.Profile, variant krylov.CGVariant, iters int, costs []IterCostInputs) archmodel.OverlapReport {
	var worst archmodel.OverlapCost
	worstT := 0.0
	for _, ci := range costs {
		if t := arch.OverlapTime(ci.Overlap); t > worstT {
			worstT = t
			worst = ci.Overlap
		}
	}
	if worstT == 0 {
		return archmodel.OverlapReport{}
	}
	return arch.OverlapReport(worst).Scale(float64(iters))
}

package experiments

import (
	"math"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/cache"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/krylov"
)

// IterCostInputs holds one rank's per-iteration cost-model inputs for a
// distributed CG solve with the split FSAI preconditioner: the flat
// (fully-exposed) rank cost, the overlap-credit split matching the CG
// variant's schedule, and the preconditioner-product miss count reused by
// the GFLOP/s histograms.
type IterCostInputs struct {
	Rank          archmodel.RankCost
	Overlap       archmodel.OverlapCost // zero value when variant is CGClassic
	PrecondMisses int64
}

// reductionsFor is the global-collective count per CG iteration of a
// variant, an input to the message cost model.
func reductionsFor(variant krylov.CGVariant) int64 {
	switch variant {
	case krylov.CGFused, krylov.CGPipelined:
		return 1
	default:
		return 3
	}
}

// overlapCostFor splits one rank's per-iteration cost the way a variant's
// schedule executes it, for archmodel's overlap-credit model. The halo
// exchange hides behind the interior rows of the three operators; the
// pipelined variant additionally hides its single reduction behind the
// boundary rows — a disjoint compute window, so no flop is credited twice
// (conservative: the real schedule overlaps the reduction with the whole
// SpMV phase).
func overlapCostFor(variant krylov.CGVariant, rc archmodel.RankCost, intNNZ, totNNZ, logP int64) archmodel.OverlapCost {
	red := archmodel.RankCost{CommMsgs: reductionsFor(variant) * logP, CommBytes: 24 * logP}
	halo := archmodel.RankCost{CommMsgs: rc.CommMsgs - red.CommMsgs, CommBytes: rc.CommBytes}
	oc := archmodel.OverlapCost{
		Compute: archmodel.RankCost{Flops: rc.Flops, StreamBytes: rc.StreamBytes, CacheMisses: rc.CacheMisses},
		Windows: []archmodel.CommWindow{{
			Name: "halo",
			Comm: halo,
			Hide: archmodel.RankCost{Flops: 2 * intNNZ, StreamBytes: 12 * intNNZ},
		}},
	}
	if variant == krylov.CGPipelined {
		bnd := totNNZ - intNNZ
		oc.Windows = append(oc.Windows, archmodel.CommWindow{
			Name: "reduction",
			Comm: red,
			Hide: archmodel.RankCost{Flops: 2 * bnd, StreamBytes: 12 * bnd},
		})
	} else {
		oc.Exposed = red
	}
	return oc
}

// AssembleIterCost builds one rank's per-iteration cost-model inputs from
// the three distributed operators of a solve (A, G, Gᵀ). nl is the rank's
// local row count, ranks the world size. The same assembly backs
// Runner.Run, the ablation and the facade's modeled solve time, so every
// reported modeled number uses one set of constants: matrix entries stream
// 12 B each (8 B value + 4 B index), the CG vector kernels stream roughly
// 10 vector reads/writes, and reductions cost log₂-tree messages.
func AssembleIterCost(arch archmodel.Profile, aOp, gOp, gtOp *distmat.Op, nl, ranks int, variant krylov.CGVariant) IterCostInputs {
	sim := arch.NewProcessCache()
	missA := cache.TraceSpMVOnX(aOp.LZ.M, sim)
	missPre := cache.TracePrecondProduct(gOp.LZ.M, gtOp.LZ.M, sim)
	logP := int64(math.Ceil(math.Log2(float64(ranks + 1))))
	totNNZ := int64(aOp.LZ.M.NNZ() + gOp.LZ.M.NNZ() + gtOp.LZ.M.NNZ())
	out := IterCostInputs{
		Rank: archmodel.RankCost{
			Flops:       2*totNNZ + 12*int64(nl),
			StreamBytes: 12*totNNZ + 80*int64(nl),
			CacheMisses: missA + missPre,
			CommBytes:   int64(8 * (aOp.Plan.SendCount() + gOp.Plan.SendCount() + gtOp.Plan.SendCount())),
			CommMsgs: int64(len(aOp.Plan.SendPeerIDs())+len(gOp.Plan.SendPeerIDs())+
				len(gtOp.Plan.SendPeerIDs())) + reductionsFor(variant)*logP,
		},
		PrecondMisses: missPre,
	}
	if variant != krylov.CGClassic {
		intNNZ := int64(aOp.EnsureOverlap().InteriorNNZ() +
			gOp.EnsureOverlap().InteriorNNZ() + gtOp.EnsureOverlap().InteriorNNZ())
		out.Overlap = overlapCostFor(variant, out.Rank, intNNZ, totNNZ, logP)
	}
	return out
}

// ModeledSolveTime converts per-rank cost inputs into the variant-aware
// modeled solve time: the fully-exposed model for the classic loop, the
// overlap-credit model for the communication-hiding loops.
func ModeledSolveTime(arch archmodel.Profile, variant krylov.CGVariant, iters int, costs []IterCostInputs) float64 {
	if variant == krylov.CGClassic {
		perRank := make([]archmodel.RankCost, len(costs))
		for i, ci := range costs {
			perRank[i] = ci.Rank
		}
		return arch.SolveTime(iters, perRank)
	}
	perRank := make([]archmodel.OverlapCost, len(costs))
	for i, ci := range costs {
		perRank[i] = ci.Overlap
	}
	return arch.SolveTimeOverlapped(iters, perRank)
}

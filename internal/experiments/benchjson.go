package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

// BenchRecord is one row of the BENCH_pipelined.json artifact emitted by
// `make bench`: the four CG variants on the 50k-row bench instance, with
// the measured wall time of the serialized simulated runtime next to the
// modeled time the overlap-credit α–β model assigns (the number a real
// network would see — DESIGN.md §4d explains why the two diverge).
type BenchRecord struct {
	Matrix  string `json:"matrix"`
	Rows    int    `json:"rows"`
	NNZ     int    `json:"nnz"`
	Variant string `json:"variant"`
	Ranks   int    `json:"ranks"`

	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`

	NsPerOp         int64   `json:"ns_per_op"`        // wall time of one timed solve run
	ModeledSolveSec float64 `json:"modeled_solve_s"`  // variant-aware cost-model time
	ModeledIterSec  float64 `json:"modeled_iter_s"`   // modeled_solve_s / iterations
	CollectiveCalls int64   `json:"collective_calls"` // metered solve totals, all ranks
	CollectiveBytes int64   `json:"collective_bytes"`
	P2PBytes        int64   `json:"p2p_bytes"`
	P2PMessages     int64   `json:"p2p_messages"`

	// Phases is the per-window breakdown of modeled_solve_s (worst rank,
	// whole solve): compute, always-exposed comm, and per-window raw /
	// hidden / exposed seconds. Its total_s equals modeled_solve_s exactly.
	Phases archmodel.OverlapReport `json:"phases"`
}

// BenchSpec is the ~50k-row 3-D Poisson instance the `make bench` suite
// keys on (the same scale as the 50k benchmarks in bench_test.go).
func BenchSpec() testsets.Spec {
	return testsets.Spec{
		ID: 900, Name: "bench-poisson-50k", Class: "2D/3D Problem",
		Gen: func() *sparse.CSR { return matgen.Poisson3D(37, 37, 37) },
	}
}

// BenchRecords runs the FSAI-preconditioned bench solve once per CG variant
// at the given rank count and collects the artifact rows. The matrix,
// partition and factor precompute are warmed through the Runner's memo
// caches first, so NsPerOp times the per-variant work (final build,
// operator setup, cost assembly and the solve itself).
func BenchRecords(arch archmodel.Profile, ranks int) ([]BenchRecord, error) {
	return benchRecords(arch, BenchSpec(), ranks)
}

func benchRecords(arch archmodel.Profile, spec testsets.Spec, ranks int) ([]BenchRecord, error) {
	r := NewRunner(arch)
	r.RanksOf = func(int) int { return ranks }
	me, err := r.matrix(spec, ranks)
	if err != nil {
		return nil, err
	}
	if _, err := r.extended(spec, me, core.FSAI, ranks); err != nil {
		return nil, err
	}
	var out []BenchRecord
	for _, v := range InteractionVariants {
		r.Variant = v
		start := time.Now()
		res, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench %s: %w", v, err)
		}
		elapsed := time.Since(start)
		rec := BenchRecord{
			Matrix: spec.Name, Rows: res.Rows, NNZ: res.NNZ,
			Variant: v.String(), Ranks: ranks,
			Iterations: res.Iterations, Converged: res.Converged,
			NsPerOp:         elapsed.Nanoseconds(),
			ModeledSolveSec: res.SolveTime,
			CollectiveCalls: res.CollectiveCalls,
			CollectiveBytes: res.CollectiveBytes,
			P2PBytes:        res.P2PBytes,
			P2PMessages:     res.P2PMessages,
			Phases:          res.Phases,
		}
		if res.Iterations > 0 {
			rec.ModeledIterSec = res.SolveTime / float64(res.Iterations)
		}
		out = append(out, rec)
	}
	return out, nil
}

// WriteBenchJSON emits the bench artifact as an indented JSON array.
func WriteBenchJSON(w io.Writer, arch archmodel.Profile, ranks int) error {
	recs, err := BenchRecords(arch, ranks)
	if err != nil {
		return err
	}
	return writeBenchRecords(w, recs)
}

func writeBenchRecords(w io.Writer, recs []BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

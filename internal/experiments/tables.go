package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"fsaicomm/internal/core"
	"fsaicomm/internal/testsets"
)

// PaperFilters are the Filter values the paper sweeps in every table.
var PaperFilters = []float64{0.01, 0.05, 0.1, 0.2}

// writeTable renders rows with aligned columns.
func writeTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// improvementPct returns the percentage decrease from base to v
// (positive = improvement), the paper's comparison metric.
func improvementPct(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - v) / base
}

// Table1 reproduces the paper's Table 1 (and, with the Table 2 catalog and
// ranks rule, its Table 2): per-matrix solver time, iterations and %NNZ for
// FSAI, FSAIE and FSAIE-Comm with a dynamic Filter.
func Table1(w io.Writer, r *Runner, set []testsets.Spec, filter float64) error {
	fmt.Fprintf(w, "Per-matrix results: FSAI vs FSAIE vs FSAIE-Comm (dynamic Filter %g, arch %s)\n", filter, r.Arch.Name)
	fmt.Fprintf(w, "Solver times are modeled seconds from the %s cost profile; iterations are real CG counts.\n\n", r.Arch.Name)
	var rows [][]string
	for _, spec := range set {
		base, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
		if err != nil {
			return err
		}
		fe, err := r.Run(spec, core.FSAIE, filter, core.DynamicFilter)
		if err != nil {
			return err
		}
		fc, err := r.Run(spec, core.FSAIEComm, filter, core.DynamicFilter)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", spec.ID), spec.Name, spec.Class,
			fmt.Sprintf("%d", base.Rows), fmt.Sprintf("%d", base.NNZ), fmt.Sprintf("%d", base.Ranks),
			fmt.Sprintf("%.3e", base.SolveTime), fmt.Sprintf("%d", base.Iterations),
			fmt.Sprintf("%.3e", fe.SolveTime), fmt.Sprintf("%d", fe.Iterations), fmt.Sprintf("%.2f", fe.PctNNZ),
			fmt.Sprintf("%.3e", fc.SolveTime), fmt.Sprintf("%d", fc.Iterations), fmt.Sprintf("%.2f", fc.PctNNZ),
		})
	}
	writeTable(w, []string{
		"ID", "Matrix", "Type", "#rows", "NNZ", "Ranks",
		"FSAI", "Iter",
		"FSAIE", "Iter", "%NNZ",
		"FSAIE-Comm", "Iter", "%NNZ",
	}, rows)
	return nil
}

// GridRow is one line of the filter-sweep averages (Tables 3, 5, 6, 7).
type GridRow struct {
	Label      string
	AvgIterImp float64
	AvgTimeImp float64
	HighestImp float64
	HighestDeg float64 // lowest improvement (negative = degradation)
}

// FilterGrid computes the paper's average tables for one method/strategy:
// per Filter value the average iteration and time improvements over FSAI,
// the best per-matrix improvement, the worst (degradation), plus the "Best
// Filter" row where each matrix picks its best Filter by time.
func FilterGrid(r *Runner, set []testsets.Spec, method core.Method, strategy core.FilterStrategy, filters []float64) ([]GridRow, error) {
	type perMatrix struct {
		iterImp, timeImp []float64 // per filter
	}
	base := make([]Result, len(set))
	for i, spec := range set {
		b, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
		if err != nil {
			return nil, err
		}
		base[i] = b
	}
	pm := make([]perMatrix, len(set))
	for i, spec := range set {
		for _, f := range filters {
			res, err := r.Run(spec, method, f, strategy)
			if err != nil {
				return nil, err
			}
			pm[i].iterImp = append(pm[i].iterImp, improvementPct(float64(base[i].Iterations), float64(res.Iterations)))
			pm[i].timeImp = append(pm[i].timeImp, improvementPct(base[i].SolveTime, res.SolveTime))
		}
	}
	var out []GridRow
	for fi, f := range filters {
		row := GridRow{Label: fmt.Sprintf("%g", f), HighestImp: -1e18, HighestDeg: 1e18}
		for i := range set {
			row.AvgIterImp += pm[i].iterImp[fi]
			row.AvgTimeImp += pm[i].timeImp[fi]
			if pm[i].timeImp[fi] > row.HighestImp {
				row.HighestImp = pm[i].timeImp[fi]
			}
			if pm[i].timeImp[fi] < row.HighestDeg {
				row.HighestDeg = pm[i].timeImp[fi]
			}
		}
		row.AvgIterImp /= float64(len(set))
		row.AvgTimeImp /= float64(len(set))
		out = append(out, row)
	}
	// Best Filter: per matrix, the filter with the highest time improvement.
	best := GridRow{Label: "Best Filter", HighestImp: -1e18, HighestDeg: 1e18}
	for i := range set {
		bi := 0
		for fi := range filters {
			if pm[i].timeImp[fi] > pm[i].timeImp[bi] {
				bi = fi
			}
		}
		best.AvgIterImp += pm[i].iterImp[bi]
		best.AvgTimeImp += pm[i].timeImp[bi]
		if pm[i].timeImp[bi] > best.HighestImp {
			best.HighestImp = pm[i].timeImp[bi]
		}
		if pm[i].timeImp[bi] < best.HighestDeg {
			best.HighestDeg = pm[i].timeImp[bi]
		}
	}
	best.AvgIterImp /= float64(len(set))
	best.AvgTimeImp /= float64(len(set))
	out = append(out, best)
	return out, nil
}

// WriteFilterGrid renders one method/strategy block of Tables 3/5/6/7.
func WriteFilterGrid(w io.Writer, r *Runner, set []testsets.Spec, method core.Method, strategy core.FilterStrategy, filters []float64) error {
	rows, err := FilterGrid(r, set, method, strategy, filters)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s - %s Filter (arch %s, %d matrices)\n", method, strategy, r.Arch.Name, len(set))
	var cells [][]string
	for _, g := range rows {
		cells = append(cells, []string{
			g.Label,
			fmt.Sprintf("%.2f", g.AvgIterImp),
			fmt.Sprintf("%.2f", g.AvgTimeImp),
			fmt.Sprintf("%.2f", g.HighestImp),
			fmt.Sprintf("%.2f", g.HighestDeg),
		})
	}
	writeTable(w, []string{"Filter", "Avg iter imp %", "Avg time imp %", "Highest imp %", "Lowest imp %"}, cells)
	fmt.Fprintln(w)
	return nil
}

// Table3 renders the full Table 3: FSAIE and FSAIE-Comm under static and
// dynamic filtering.
func Table3(w io.Writer, r *Runner, set []testsets.Spec) error {
	for _, method := range []core.Method{core.FSAIE, core.FSAIEComm} {
		for _, strategy := range []core.FilterStrategy{core.StaticFilter, core.DynamicFilter} {
			if err := WriteFilterGrid(w, r, set, method, strategy, PaperFilters); err != nil {
				return err
			}
		}
	}
	return nil
}

// SeriesPoint is one matrix's value in a figure series.
type SeriesPoint struct {
	Spec  testsets.Spec
	Value float64
}

// PerMatrixTimeDecrease reproduces Figures 2/4/6/8: per matrix, the
// time-to-solution decrease of FSAIE-Comm vs FSAI for the best Filter and
// for one fixed Filter (both dynamic strategy, as the paper plots).
func PerMatrixTimeDecrease(r *Runner, set []testsets.Spec, fixedFilter float64) (best, fixed []SeriesPoint, err error) {
	for _, spec := range set {
		base, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
		if err != nil {
			return nil, nil, err
		}
		bestImp := -1e18
		var fixedImp float64
		for _, f := range PaperFilters {
			res, err := r.Run(spec, core.FSAIEComm, f, core.DynamicFilter)
			if err != nil {
				return nil, nil, err
			}
			imp := improvementPct(base.SolveTime, res.SolveTime)
			if imp > bestImp {
				bestImp = imp
			}
			if f == fixedFilter {
				fixedImp = imp
			}
		}
		best = append(best, SeriesPoint{spec, bestImp})
		fixed = append(fixed, SeriesPoint{spec, fixedImp})
	}
	return best, fixed, nil
}

// WritePerMatrixFigure renders a Figure 2/4/6/8 series as text columns.
func WritePerMatrixFigure(w io.Writer, r *Runner, set []testsets.Spec, fixedFilter float64) error {
	best, fixed, err := PerMatrixTimeDecrease(r, set, fixedFilter)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Time decrease of FSAIE-Comm vs FSAI (arch %s): best Filter and Filter=%g\n", r.Arch.Name, fixedFilter)
	var rows [][]string
	var sumBest, sumFixed float64
	for i := range best {
		rows = append(rows, []string{
			fmt.Sprintf("%d", best[i].Spec.ID),
			best[i].Spec.Name,
			fmt.Sprintf("%.2f", best[i].Value),
			fmt.Sprintf("%.2f", fixed[i].Value),
		})
		sumBest += best[i].Value
		sumFixed += fixed[i].Value
	}
	rows = append(rows, []string{"", "AVERAGE",
		fmt.Sprintf("%.2f", sumBest/float64(len(best))),
		fmt.Sprintf("%.2f", sumFixed/float64(len(fixed)))})
	writeTable(w, []string{"ID", "Matrix", "Best Filter %", fmt.Sprintf("Filter=%g %%", fixedFilter)}, rows)
	fmt.Fprintln(w)
	return nil
}

// HybridRow is one line of Table 4.
type HybridRow struct {
	CoresPerProcess      int
	IterDecE, IterDecC   float64 // FSAIE / FSAIE-Comm average iteration decrease %
	TimeDecE, TimeDecC   float64
	FlopsIncE, FlopsIncC float64 // preconditioning SpMV GFLOP/s increase %, unfiltered
}

// Hybrid reproduces Table 4: the influence of the cores-per-process hybrid
// configuration. Rank counts scale inversely with cores per process at a
// fixed per-core workload; process cache capacity scales with it.
func Hybrid(arch func(cores int) *Runner, set []testsets.Spec, coresList []int) ([]HybridRow, error) {
	var out []HybridRow
	for _, cores := range coresList {
		r := arch(cores)
		row := HybridRow{CoresPerProcess: cores}
		for _, spec := range set {
			base, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
			if err != nil {
				return nil, err
			}
			// Best dynamic filter per matrix, as Table 4 specifies.
			bestE, bestC := Result{}, Result{}
			bestETime, bestCTime := 1e18, 1e18
			for _, f := range PaperFilters {
				re, err := r.Run(spec, core.FSAIE, f, core.DynamicFilter)
				if err != nil {
					return nil, err
				}
				rc, err := r.Run(spec, core.FSAIEComm, f, core.DynamicFilter)
				if err != nil {
					return nil, err
				}
				if re.SolveTime < bestETime {
					bestETime, bestE = re.SolveTime, re
				}
				if rc.SolveTime < bestCTime {
					bestCTime, bestC = rc.SolveTime, rc
				}
			}
			row.IterDecE += improvementPct(float64(base.Iterations), float64(bestE.Iterations))
			row.IterDecC += improvementPct(float64(base.Iterations), float64(bestC.Iterations))
			row.TimeDecE += improvementPct(base.SolveTime, bestE.SolveTime)
			row.TimeDecC += improvementPct(base.SolveTime, bestC.SolveTime)
			// FLOPs measured without filtering, as §5.3.2 states.
			fe, err := r.Run(spec, core.FSAIE, 0, core.StaticFilter)
			if err != nil {
				return nil, err
			}
			fc, err := r.Run(spec, core.FSAIEComm, 0, core.StaticFilter)
			if err != nil {
				return nil, err
			}
			row.FlopsIncE += 100 * (fe.GFlopsPrecond - base.GFlopsPrecond) / base.GFlopsPrecond
			row.FlopsIncC += 100 * (fc.GFlopsPrecond - base.GFlopsPrecond) / base.GFlopsPrecond
		}
		n := float64(len(set))
		row.IterDecE /= n
		row.IterDecC /= n
		row.TimeDecE /= n
		row.TimeDecC /= n
		row.FlopsIncE /= n
		row.FlopsIncC /= n
		out = append(out, row)
	}
	return out, nil
}

// WriteHybrid renders Table 4.
func WriteHybrid(w io.Writer, arch func(cores int) *Runner, set []testsets.Spec, coresList []int) error {
	rows, err := Hybrid(arch, set, coresList)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Hybrid configuration sweep (FSAIE/FSAIE-Comm vs FSAI, best dynamic Filter)")
	var cells [][]string
	for _, h := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", h.CoresPerProcess),
			fmt.Sprintf("%.2f/%.2f", h.IterDecE, h.IterDecC),
			fmt.Sprintf("%.2f/%.2f", h.TimeDecE, h.TimeDecC),
			fmt.Sprintf("%.2f/%.2f", h.FlopsIncE, h.FlopsIncC),
		})
	}
	writeTable(w, []string{"CPU/Process", "Iter. dec. %", "Time dec. %", "FLOPs inc. %"}, cells)
	fmt.Fprintln(w)
	return nil
}

// HistogramSeries reproduces Figures 3a/5a (metric "misses") and 3b/5b/7
// (metric "gflops"): the per-matrix values for FSAI versus unfiltered
// FSAIE-Comm, which the paper displays as histograms.
func HistogramSeries(r *Runner, set []testsets.Spec, metric string) (base, ext []SeriesPoint, err error) {
	for _, spec := range set {
		b, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
		if err != nil {
			return nil, nil, err
		}
		e, err := r.Run(spec, core.FSAIEComm, 0, core.StaticFilter) // without filtering, per the figures
		if err != nil {
			return nil, nil, err
		}
		switch metric {
		case "misses":
			base = append(base, SeriesPoint{spec, b.MissesPerNNZ})
			ext = append(ext, SeriesPoint{spec, e.MissesPerNNZ})
		case "gflops":
			base = append(base, SeriesPoint{spec, b.GFlopsPrecond})
			ext = append(ext, SeriesPoint{spec, e.GFlopsPrecond})
		default:
			return nil, nil, fmt.Errorf("experiments: unknown histogram metric %q", metric)
		}
	}
	return base, ext, nil
}

// WriteHistogram renders a figure histogram: per-matrix values plus a
// binned text histogram comparing FSAI (baseline) and FSAIE-Comm.
func WriteHistogram(w io.Writer, r *Runner, set []testsets.Spec, metric, title string) error {
	base, ext, err := HistogramSeries(r, set, metric)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s (arch %s, unfiltered extension)\n", title, r.Arch.Name)
	var rows [][]string
	var bs, es float64
	for i := range base {
		rows = append(rows, []string{
			fmt.Sprintf("%d", base[i].Spec.ID), base[i].Spec.Name,
			fmt.Sprintf("%.4f", base[i].Value), fmt.Sprintf("%.4f", ext[i].Value),
		})
		bs += base[i].Value
		es += ext[i].Value
	}
	rows = append(rows, []string{"", "AVERAGE",
		fmt.Sprintf("%.4f", bs/float64(len(base))), fmt.Sprintf("%.4f", es/float64(len(ext)))})
	writeTable(w, []string{"ID", "Matrix", "FSAI", "FSAIE-Comm"}, rows)
	fmt.Fprintln(w)
	writeBins(w, "FSAI", pointValues(base))
	writeBins(w, "FSAIE-Comm", pointValues(ext))
	fmt.Fprintln(w)
	return nil
}

func pointValues(ps []SeriesPoint) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = p.Value
	}
	return out
}

// writeBins prints a 10-bin text histogram of vals.
func writeBins(w io.Writer, label string, vals []float64) {
	if len(vals) == 0 {
		return
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if hi == lo {
		hi = lo + 1
	}
	const bins = 10
	counts := make([]int, bins)
	for _, v := range vals {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	fmt.Fprintf(w, "%-12s", label)
	for b := 0; b < bins; b++ {
		fmt.Fprintf(w, " [%5.2f:%2d]", lo+(hi-lo)*float64(b)/bins, counts[b])
	}
	fmt.Fprintln(w)
}

// ImbalanceStudy reproduces the §5.3.3 case study on the imbalanced catalog
// matrix (consph-sim): imbalance index of the FSAI partition, of the
// FSAIE-Comm extension under a static filter, and after dynamic filtering,
// with the corresponding iteration and time improvements.
type ImbalanceStudy struct {
	BaseIndex, StaticIndex, DynamicIndex float64
	StaticTimeImp, DynamicTimeImp        float64
	StaticIterImp, DynamicIterImp        float64
}

// RunImbalanceStudy executes the case study with the given Filter.
func RunImbalanceStudy(r *Runner, spec testsets.Spec, filter float64) (ImbalanceStudy, error) {
	var out ImbalanceStudy
	base, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
	if err != nil {
		return out, err
	}
	st, err := r.Run(spec, core.FSAIEComm, filter, core.StaticFilter)
	if err != nil {
		return out, err
	}
	dy, err := r.Run(spec, core.FSAIEComm, filter, core.DynamicFilter)
	if err != nil {
		return out, err
	}
	out.BaseIndex = base.ImbalanceIndex
	out.StaticIndex = st.ImbalanceIndex
	out.DynamicIndex = dy.ImbalanceIndex
	out.StaticTimeImp = improvementPct(base.SolveTime, st.SolveTime)
	out.DynamicTimeImp = improvementPct(base.SolveTime, dy.SolveTime)
	out.StaticIterImp = improvementPct(float64(base.Iterations), float64(st.Iterations))
	out.DynamicIterImp = improvementPct(float64(base.Iterations), float64(dy.Iterations))
	return out, nil
}

// WriteImbalanceStudy renders the case study.
func WriteImbalanceStudy(w io.Writer, r *Runner, spec testsets.Spec, filter float64) error {
	s, err := RunImbalanceStudy(r, spec, filter)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Imbalance case study on %s (Filter %g, arch %s)\n", spec.Name, filter, r.Arch.Name)
	writeTable(w, []string{"Configuration", "Imbalance index", "Iter imp %", "Time imp %"}, [][]string{
		{"FSAI (baseline partition)", fmt.Sprintf("%.3f", s.BaseIndex), "0.00", "0.00"},
		{"FSAIE-Comm static filter", fmt.Sprintf("%.3f", s.StaticIndex), fmt.Sprintf("%.2f", s.StaticIterImp), fmt.Sprintf("%.2f", s.StaticTimeImp)},
		{"FSAIE-Comm dynamic filter", fmt.Sprintf("%.3f", s.DynamicIndex), fmt.Sprintf("%.2f", s.DynamicIterImp), fmt.Sprintf("%.2f", s.DynamicTimeImp)},
	})
	fmt.Fprintln(w)
	return nil
}

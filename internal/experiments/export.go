package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/testsets"
)

// WriteResultsCSV runs the complete (matrix × method × filter × strategy)
// grid and writes one machine-readable CSV row per configuration — the raw
// data behind every table, for external plotting.
func WriteResultsCSV(w io.Writer, r *Runner, set []testsets.Spec, filters []float64) error {
	cw := csv.NewWriter(w)
	header := []string{
		"matrix", "class", "rows", "nnz", "ranks", "arch", "method",
		"filter", "strategy", "iterations", "converged", "solve_time_model_s",
		"pct_nnz", "imbalance_index", "misses_per_nnz", "gflops_precond",
		"comm_bytes_per_iter",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	emit := func(res Result) error {
		return cw.Write([]string{
			res.Spec.Name, res.Spec.Class,
			strconv.Itoa(res.Rows), strconv.Itoa(res.NNZ), strconv.Itoa(res.Ranks),
			r.Arch.Name, res.Method.String(),
			strconv.FormatFloat(res.Filter, 'g', -1, 64), res.Strategy.String(),
			strconv.Itoa(res.Iterations), strconv.FormatBool(res.Converged),
			strconv.FormatFloat(res.SolveTime, 'e', 6, 64),
			strconv.FormatFloat(res.PctNNZ, 'f', 4, 64),
			strconv.FormatFloat(res.ImbalanceIndex, 'f', 4, 64),
			strconv.FormatFloat(res.MissesPerNNZ, 'f', 6, 64),
			strconv.FormatFloat(res.GFlopsPrecond, 'f', 4, 64),
			strconv.FormatFloat(res.CommBytesPerIter, 'f', 1, 64),
		})
	}
	for _, spec := range set {
		base, err := r.Run(spec, core.FSAI, 0, core.StaticFilter)
		if err != nil {
			return err
		}
		if err := emit(base); err != nil {
			return err
		}
		for _, method := range []core.Method{core.FSAIE, core.FSAIEComm} {
			for _, strategy := range []core.FilterStrategy{core.StaticFilter, core.DynamicFilter} {
				for _, f := range filters {
					res, err := r.Run(spec, method, f, strategy)
					if err != nil {
						return err
					}
					if err := emit(res); err != nil {
						return err
					}
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteConvergence prints the per-iteration relative residual histories of
// FSAI and FSAIE-Comm side by side for one matrix — the convergence-curve
// view of the iteration-count tables.
func WriteConvergence(w io.Writer, r *Runner, spec testsets.Spec, filter float64) error {
	_, nnz := r.size(spec)
	ranks := r.RanksOf(nnz)
	me, err := r.matrix(spec, ranks)
	if err != nil {
		return err
	}
	histories := map[core.Method][]float64{}
	works := r.workspaces(ranks)
	for _, method := range []core.Method{core.FSAI, core.FSAIEComm} {
		ee, err := r.extended(spec, me, method, ranks)
		if err != nil {
			return err
		}
		var hist []float64
		_, err = simmpi.Run(ranks, runTimeout, func(c *simmpi.Comm) error {
			lo, hi := me.layout.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(me.a, lo, hi)
			g := ee.gExt[c.Rank()]
			if method != core.FSAI {
				base := core.LowerPatternDist(aRows, lo).Pattern
				final := fsai.FilterDist(g, lo, hi, filter, base)
				var err error
				g, err = fsai.BuildDistWorkers(c, me.layout, aRows, final, r.Workers)
				if err != nil {
					return err
				}
			}
			gt := distmat.TransposeDist(c, me.layout, lo, hi, g)
			aOp := distmat.NewOp(c, me.layout, lo, hi, aRows, r.opOptions()...)
			gOp := distmat.NewOp(c, me.layout, lo, hi, g, r.opOptions()...)
			gtOp := distmat.NewOp(c, me.layout, lo, hi, gt, r.opOptions()...)
			x := make([]float64, hi-lo)
			st, err := krylov.DistCG(c, aOp, me.b[lo:hi], x,
				krylov.NewDistSplit(gOp, gtOp),
				r.cgOptions(works, c.Rank(), true), nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				hist = st.Residuals
			}
			return nil
		})
		if err != nil {
			return err
		}
		histories[method] = hist
	}
	fmt.Fprintf(w, "Convergence histories on %s (Filter %g, arch %s)\n", spec.Name, filter, r.Arch.Name)
	fmt.Fprintln(w, "iter  FSAI-relres      FSAIE-Comm-relres")
	hf, hc := histories[core.FSAI], histories[core.FSAIEComm]
	max := len(hf)
	if len(hc) > max {
		max = len(hc)
	}
	step := 1
	if max > 40 {
		step = max / 40
	}
	for i := 0; i < max; i += step {
		line := fmt.Sprintf("%4d  ", i+1)
		if i < len(hf) {
			line += fmt.Sprintf("%-15.6e  ", hf[i])
		} else {
			line += fmt.Sprintf("%-15s  ", "converged")
		}
		if i < len(hc) {
			line += fmt.Sprintf("%.6e", hc[i])
		} else {
			line += "converged"
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "FSAI: %d iterations, FSAIE-Comm: %d iterations\n\n", len(hf), len(hc))
	return nil
}

// Package experiments drives the reproduction of every table and figure in
// the paper's evaluation (§5): it runs (matrix × method × filter × strategy
// × architecture) grids over the synthetic catalogs, collects real CG
// iteration counts, metered communication, simulated cache misses and
// modeled solve times, and renders the paper's tables and figure series as
// text.
package experiments

import (
	"fmt"
	"time"

	"fsaicomm/internal/archmodel"
	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/fsai"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/matgen"
	"fsaicomm/internal/partition"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
)

// runTimeout bounds each simulated-MPI run; a hit means a deadlock bug, not
// a slow solve, so it is generous.
const runTimeout = 10 * time.Minute

// Result is the outcome of solving one matrix with one configuration.
type Result struct {
	Spec     testsets.Spec
	Method   core.Method
	Filter   float64
	Strategy core.FilterStrategy
	Ranks    int

	Rows, NNZ int

	Iterations int
	Converged  bool
	SolveTime  float64 // modeled seconds (arch cost model)
	// Phases is the per-window breakdown of SolveTime (worst rank, whole
	// solve): for each communication window, raw α–β time, hidden credit and
	// exposed remainder. Phases.TotalSec == SolveTime exactly.
	Phases archmodel.OverlapReport

	PctNNZ         float64 // % pattern entries added vs FSAI
	ImbalanceIndex float64 // avg/max per-rank entries of G

	// Per-process averages for the preconditioning product GᵀGx.
	MissesPerNNZ  float64 // simulated L1 misses on x per G/Gᵀ entry
	GFlopsPrecond float64 // modeled GFLOP/s per process
	// Communication per iteration (bytes sent, all ranks).
	CommBytesPerIter float64
	// Metered solve-phase totals over all ranks, straight from the simmpi
	// meter: the numbers the α–β model is fed.
	P2PBytes        int64
	P2PMessages     int64
	CollectiveCalls int64
	CollectiveBytes int64
}

// Runner executes configurations against a catalog with memoization of the
// expensive stages: matrix generation + partitioning (per spec and rank
// count) and the extended-pattern FSAI precompute (per spec, method, line
// size and rank count), which the filter sweeps of Tables 3/5/6/7 reuse
// exactly as the paper's two-pass algorithm does.
type Runner struct {
	Arch archmodel.Profile
	// RanksOf chooses the simulated process count for a matrix; defaults to
	// testsets.DefaultRanks.
	RanksOf func(nnz int) int
	// Tol and MaxIter configure the CG solves (paper: residual reduction by
	// 1e8).
	Tol     float64
	MaxIter int
	// Workers bounds the shared-memory pool for per-rank row solves
	// (<= 0 → 1 worker per rank; ranks already run concurrently).
	Workers int
	// Variant selects the distributed CG loop for every solve: classic,
	// classic-overlap, fused or pipelined (see krylov.CGVariant).
	Variant krylov.CGVariant

	mats    map[matKey]*matEntry
	exts    map[extKey]*extEntry
	sizes   map[string][2]int // spec name -> rows, nnz
	results map[resKey]Result
	// works holds per-rank solver workspaces keyed by rank count, so the
	// many solves of a sweep reuse iteration vectors instead of
	// reallocating. Populated from the driver goroutine before each
	// simulated run; rank closures only index their own slot.
	works map[int][]*krylov.Workspace
}

type resKey struct {
	name     string
	method   core.Method
	filter   float64
	strategy core.FilterStrategy
	line     int
	cores    int
	variant  krylov.CGVariant
}

// NewRunner returns a Runner for the given architecture profile.
func NewRunner(arch archmodel.Profile) *Runner {
	return &Runner{
		Arch:    arch,
		RanksOf: testsets.DefaultRanks,
		Tol:     1e-8,
		MaxIter: 30000,
		mats:    map[matKey]*matEntry{},
		exts:    map[extKey]*extEntry{},
		sizes:   map[string][2]int{},
		results: map[resKey]Result{},
		works:   map[int][]*krylov.Workspace{},
	}
}

// workspaces returns the per-rank workspace pool for a rank count, creating
// it on first use. Must be called from the driver goroutine (not inside a
// rank closure); each rank then reuses only its own entry.
func (r *Runner) workspaces(ranks int) []*krylov.Workspace {
	ws, ok := r.works[ranks]
	if !ok {
		ws = make([]*krylov.Workspace, ranks)
		for i := range ws {
			ws[i] = &krylov.Workspace{}
		}
		r.works[ranks] = ws
	}
	return ws
}

// opOptions returns the distmat operator options matching the configured
// solver variant (the overlap view for the communication-hiding loops).
func (r *Runner) opOptions() []distmat.OpOption {
	if r.Variant != krylov.CGClassic {
		return []distmat.OpOption{distmat.WithOverlap()}
	}
	return nil
}

// cgOptions builds one rank's solver options: the Runner's tolerance and
// variant plus that rank's reusable workspace.
func (r *Runner) cgOptions(ws []*krylov.Workspace, rank int, record bool) krylov.Options {
	return krylov.Options{
		Tol: r.Tol, MaxIter: r.MaxIter, RecordResiduals: record,
		Variant: r.Variant, Work: ws[rank],
	}
}

type matKey struct {
	id    int
	name  string
	ranks int
}

type matEntry struct {
	a      *sparse.CSR // permuted
	layout *distmat.Layout
	b      []float64
}

type extKey struct {
	matKey
	method    core.Method
	lineBytes int
}

type extEntry struct {
	gExt    []*sparse.CSR // per-rank precomputed factor on the extended pattern
	baseNNZ int64
}

// size returns (rows, nnz) for a spec, generating the matrix at most once.
func (r *Runner) size(spec testsets.Spec) (int, int) {
	if sz, ok := r.sizes[spec.Name]; ok {
		return sz[0], sz[1]
	}
	a := spec.Generate()
	r.sizes[spec.Name] = [2]int{a.Rows, a.NNZ()}
	return a.Rows, a.NNZ()
}

func (r *Runner) matrix(spec testsets.Spec, ranks int) (*matEntry, error) {
	key := matKey{spec.ID, spec.Name, ranks}
	if e, ok := r.mats[key]; ok {
		return e, nil
	}
	a := spec.Generate()
	g := partition.GraphFromMatrix(a)
	part, err := partition.Multilevel(g, ranks, partition.Options{Seed: int64(spec.ID)})
	if err != nil {
		return nil, fmt.Errorf("experiments: partition %s: %w", spec.Name, err)
	}
	pa, layout, _ := distmat.ApplyPartition(a, part, ranks)
	e := &matEntry{
		a:      pa,
		layout: layout,
		b:      matgen.RandomRHS(pa.Rows, int64(1000+spec.ID), pa.MaxNorm()),
	}
	r.mats[key] = e
	return e, nil
}

// extended returns the per-rank FSAI factor precomputed on the (possibly
// extended) pattern, before filtering: the "Step 4" precompute of
// Algorithm 2. For FSAI the pattern is the unextended lower triangle.
func (r *Runner) extended(spec testsets.Spec, me *matEntry, method core.Method, ranks int) (*extEntry, error) {
	key := extKey{matKey{spec.ID, spec.Name, ranks}, method, r.Arch.LineBytes}
	if method == core.FSAI {
		key.lineBytes = 0 // line size does not matter for the baseline
	}
	if e, ok := r.exts[key]; ok {
		return e, nil
	}
	entry := &extEntry{gExt: make([]*sparse.CSR, ranks)}
	_, err := simmpi.Run(ranks, runTimeout, func(c *simmpi.Comm) error {
		lo, hi := me.layout.Range(c.Rank())
		aRows := distmat.ExtractLocalRows(me.a, lo, hi)
		s := core.LowerPatternDist(aRows, lo)
		base := c.AllreduceSumInt64(int64(s.Pattern.NNZ()))[0]
		pat := s
		if method != core.FSAI {
			lz := distmat.Localize(lo, hi, core.PatternCSR(s))
			ext, _, err := core.ExtendPattern(me.layout, s, lz, core.ExtendOptions{
				LineBytes: r.Arch.LineBytes,
				CommAware: method == core.FSAIEComm,
			})
			if err != nil {
				return err
			}
			pat = ext
		}
		g, err := fsai.BuildDistWorkers(c, me.layout, aRows, pat, r.Workers)
		if err != nil {
			return err
		}
		entry.gExt[c.Rank()] = g
		if c.Rank() == 0 {
			entry.baseNNZ = base
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: extended build %s/%s: %w", spec.Name, method, err)
	}
	r.exts[key] = entry
	return entry, nil
}

// Run solves one configuration and returns its Result. Results are
// memoized, so drivers sharing configurations (e.g. the per-matrix figures
// reusing the filter-grid runs) pay for each solve once.
func (r *Runner) Run(spec testsets.Spec, method core.Method, filter float64, strategy core.FilterStrategy) (Result, error) {
	rk := resKey{spec.Name, method, filter, strategy, r.Arch.LineBytes, r.Arch.CoresPerProcess, r.Variant}
	if method == core.FSAI {
		rk.filter, rk.strategy, rk.line = 0, core.StaticFilter, 0
	}
	if res, ok := r.results[rk]; ok {
		return res, nil
	}
	res := Result{Spec: spec, Method: method, Filter: filter, Strategy: strategy}

	// Rank count depends only on the matrix (paper §5.2 rule).
	rows, nnz := r.size(spec)
	ranks := r.RanksOf(nnz)
	res.Ranks = ranks
	res.Rows, res.NNZ = rows, nnz

	me, err := r.matrix(spec, ranks)
	if err != nil {
		return res, err
	}
	ee, err := r.extended(spec, me, method, ranks)
	if err != nil {
		return res, err
	}

	costs := make([]IterCostInputs, ranks)
	precondRank := make([]archmodel.RankCost, ranks)
	nnzPrecond := make([]int64, ranks)
	var finalNNZ int64
	works := r.workspaces(ranks)
	world, err := simmpi.Run(ranks, runTimeout, func(c *simmpi.Comm) error {
		lo, hi := me.layout.Range(c.Rank())
		nl := hi - lo
		aRows := distmat.ExtractLocalRows(me.a, lo, hi)
		gExt := ee.gExt[c.Rank()]

		// Filtering (Algorithm 2 step 4 / Algorithm 4) and final build.
		var g *sparse.CSR
		if method == core.FSAI {
			g = gExt
		} else {
			base := core.LowerPatternDist(aRows, lo).Pattern
			f := filter
			if strategy == core.DynamicFilter {
				f = core.DynamicFilterValue(c, gExt, lo, filter, base)
			}
			final := fsai.FilterDist(gExt, lo, hi, f, base)
			var err error
			g, err = fsai.BuildDistWorkers(c, me.layout, aRows, final, r.Workers)
			if err != nil {
				return err
			}
		}
		gt := distmat.TransposeDist(c, me.layout, lo, hi, g)

		aOp := distmat.NewOp(c, me.layout, lo, hi, aRows, r.opOptions()...)
		gOp := distmat.NewOp(c, me.layout, lo, hi, g, r.opOptions()...)
		gtOp := distmat.NewOp(c, me.layout, lo, hi, gt, r.opOptions()...)

		imb := distmat.NNZImbalanceIndex(c, int64(g.NNZ()))
		gNNZ := c.AllreduceSumInt64(int64(g.NNZ()))[0]

		// Cost model inputs (independent of the solve).
		ci := AssembleIterCost(r.Arch, aOp, gOp, gtOp, nl, ranks, r.Variant)
		costs[c.Rank()] = ci
		precondRank[c.Rank()] = archmodel.RankCost{
			Flops:       2 * int64(gOp.LZ.M.NNZ()+gtOp.LZ.M.NNZ()),
			StreamBytes: 12*int64(gOp.LZ.M.NNZ()+gtOp.LZ.M.NNZ()) + 24*int64(nl),
			CacheMisses: ci.PrecondMisses,
			CommBytes:   int64(8 * (gOp.Plan.SendCount() + gtOp.Plan.SendCount())),
			CommMsgs:    int64(len(gOp.Plan.SendPeerIDs()) + len(gtOp.Plan.SendPeerIDs())),
		}
		nnzPrecond[c.Rank()] = int64(gOp.LZ.M.NNZ() + gtOp.LZ.M.NNZ())

		// Meter only the solve.
		c.Barrier()
		if c.Rank() == 0 {
			c.Meter().Reset()
		}
		c.Barrier()
		x := make([]float64, nl)
		st, err := krylov.DistCG(c, aOp, me.b[lo:hi], x,
			krylov.NewDistSplit(gOp, gtOp),
			r.cgOptions(works, c.Rank(), false), nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res.Iterations = st.Iterations
			res.Converged = st.Converged
			res.ImbalanceIndex = imb
			finalNNZ = gNNZ
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("experiments: solve %s/%s: %w", spec.Name, method, err)
	}

	// Every variant is modeled with the windowed overlap-credit model (the
	// classic loop's windows carry no hiding compute, so its time equals the
	// fully-exposed α–β model); Phases is the matching per-window breakdown.
	res.SolveTime = ModeledSolveTime(r.Arch, r.Variant, res.Iterations, costs)
	res.Phases = ModeledPhases(r.Arch, r.Variant, res.Iterations, costs)
	if ee.baseNNZ > 0 {
		res.PctNNZ = 100 * float64(finalNNZ-ee.baseNNZ) / float64(ee.baseNNZ)
	}
	var missSum, gflopSum float64
	for rk := 0; rk < ranks; rk++ {
		if nnzPrecond[rk] > 0 {
			missSum += float64(precondRank[rk].CacheMisses) / float64(nnzPrecond[rk])
		}
		gflopSum += r.Arch.GFlopsPerProcess(precondRank[rk])
	}
	res.MissesPerNNZ = missSum / float64(ranks)
	res.GFlopsPrecond = gflopSum / float64(ranks)
	res.P2PBytes = world.Meter().TotalP2PBytes()
	res.P2PMessages = world.Meter().TotalP2PMessages()
	res.CollectiveCalls = world.Meter().TotalCollectiveCalls()
	res.CollectiveBytes = world.Meter().TotalCollectiveBytes()
	if res.Iterations > 0 {
		res.CommBytesPerIter = float64(res.P2PBytes) / float64(res.Iterations)
	}
	r.results[rk] = res
	return res, nil
}

package experiments

import (
	"fmt"
	"io"

	"fsaicomm/internal/core"
	"fsaicomm/internal/distmat"
	"fsaicomm/internal/krylov"
	"fsaicomm/internal/simmpi"
	"fsaicomm/internal/sparse"
	"fsaicomm/internal/testsets"
	"fsaicomm/internal/vecops"
)

// BaselineRow compares the distributed preconditioner landscape on one
// matrix: unpreconditioned CG, Jacobi, block-Jacobi-IC(0) (each rank
// factors its diagonal block; quality decays with rank count), FSAI, and
// FSAIE-Comm — the context the paper's introduction sets up when it calls
// FSAI "a highly parallel option".
type BaselineRow struct {
	Spec       testsets.Spec
	Ranks      int
	Iterations map[string]int
}

var baselineVariants = []string{"none", "jacobi", "block-jacobi-ic", "fsai", "fsaie-comm"}

// RunBaselines solves one matrix with every baseline.
func RunBaselines(r *Runner, spec testsets.Spec) (BaselineRow, error) {
	row := BaselineRow{Spec: spec, Iterations: map[string]int{}}
	_, nnz := r.size(spec)
	ranks := r.RanksOf(nnz)
	row.Ranks = ranks
	me, err := r.matrix(spec, ranks)
	if err != nil {
		return row, err
	}
	works := r.workspaces(ranks)
	for _, v := range baselineVariants {
		variant := v
		var iters int
		_, err := simmpi.Run(ranks, runTimeout, func(c *simmpi.Comm) error {
			lo, hi := me.layout.Range(c.Rank())
			aRows := distmat.ExtractLocalRows(me.a, lo, hi)
			aOp := distmat.NewOp(c, me.layout, lo, hi, aRows, r.opOptions()...)

			var pre krylov.DistPreconditioner
			switch variant {
			case "none":
				pre = krylov.DistIdentity{}
			case "jacobi":
				local, err := localJacobi(aRows, lo)
				if err != nil {
					return err
				}
				pre = local
			case "block-jacobi-ic":
				bj, err := krylov.NewBlockJacobiIC(aRows, lo, hi)
				if err != nil {
					return err
				}
				pre = bj
			case "fsai", "fsaie-comm":
				method := core.FSAI
				filter := 0.0
				if variant == "fsaie-comm" {
					method = core.FSAIEComm
					filter = 0.01
				}
				bd, err := core.BuildPrecond(c, me.layout, aRows, core.Config{
					Method: method, Filter: filter, Strategy: core.DynamicFilter,
					LineBytes: r.Arch.LineBytes, CGVariant: r.Variant,
				})
				if err != nil {
					return err
				}
				pre = krylov.NewDistSplit(bd.GOp, bd.GTOp)
			}
			x := make([]float64, hi-lo)
			st, err := krylov.DistCG(c, aOp, me.b[lo:hi], x, pre,
				r.cgOptions(works, c.Rank(), false), nil)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				iters = st.Iterations
			}
			return nil
		})
		if err != nil {
			return row, fmt.Errorf("experiments: baseline %s/%s: %w", spec.Name, variant, err)
		}
		row.Iterations[variant] = iters
	}
	return row, nil
}

// localJacobi builds a purely-local diagonal scaling from a rank's rows
// (global columns).
func localJacobi(aRows *sparse.CSR, lo int) (krylov.DistPreconditioner, error) {
	inv := make([]float64, aRows.Rows)
	for li := 0; li < aRows.Rows; li++ {
		cols, vals := aRows.Row(li)
		d := 0.0
		for k, c := range cols {
			if c == lo+li {
				d = vals[k]
			}
		}
		if d == 0 {
			return nil, fmt.Errorf("experiments: zero diagonal at global row %d", lo+li)
		}
		inv[li] = 1 / d
	}
	return &distJacobi{inv: inv}, nil
}

// WriteBaselines renders the comparison for a set of matrices.
func WriteBaselines(w io.Writer, r *Runner, set []testsets.Spec) error {
	fmt.Fprintf(w, "Distributed preconditioner landscape (arch %s, CG iterations)\n", r.Arch.Name)
	var rows [][]string
	for _, spec := range set {
		row, err := RunBaselines(r, spec)
		if err != nil {
			return err
		}
		cells := []string{row.Spec.Name, fmt.Sprintf("%d", row.Ranks)}
		for _, v := range baselineVariants {
			cells = append(cells, fmt.Sprintf("%d", row.Iterations[v]))
		}
		rows = append(rows, cells)
	}
	writeTable(w, []string{"Matrix", "Ranks", "None", "Jacobi", "BJ-IC(0)", "FSAI", "FSAIE-Comm"}, rows)
	fmt.Fprintln(w)
	return nil
}

// distJacobi is the rank-local diagonal scaling used by the baseline sweep.
type distJacobi struct{ inv []float64 }

// Apply scales by the inverse local diagonal (no communication).
func (d *distJacobi) Apply(c *simmpi.Comm, rvec, z []float64, fc *vecops.FlopCounter) {
	for i := range rvec {
		z[i] = rvec[i] * d.inv[i]
	}
	fc.Add(int64(len(rvec)))
}

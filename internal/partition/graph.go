// Package partition implements graph partitioning for distributing sparse
// matrix rows across processes. It substitutes METIS in the paper's pipeline
// with a multilevel recursive-bisection partitioner (heavy-edge-matching
// coarsening, greedy graph-growing initial bisection, boundary
// Kernighan–Lin/Fiduccia–Mattheyses refinement), plus trivial block and strip
// partitioners used for tests and debugging.
package partition

import (
	"fmt"

	"fsaicomm/internal/sparse"
)

// Graph is an undirected weighted graph in adjacency (CSR-like) form.
// Self-loops are not stored. For each edge {u,v} both directions appear.
type Graph struct {
	N       int
	Ptr     []int
	Adj     []int
	EWeight []int64 // per stored direction; symmetric
	VWeight []int64 // per vertex
}

// GraphFromMatrix builds the adjacency graph of a square sparse matrix: an
// edge {i,j} for every off-diagonal stored position (i,j) or (j,i). Edge
// weight is 1 per coupling direction present; vertex weight is the number of
// stored entries in the row (so balancing vertex weight balances nnz, which
// is what the paper's workload rule operates on).
func GraphFromMatrix(a *sparse.CSR) *Graph {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("partition: matrix %dx%d not square", a.Rows, a.Cols))
	}
	n := a.Rows
	// Symmetrize the pattern.
	deg := make([]int, n)
	type edge struct{ u, v int }
	seen := make(map[edge]bool, a.NNZ())
	var edges []edge
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if i == j {
				continue
			}
			u, v := i, j
			if u > v {
				u, v = v, u
			}
			e := edge{u, v}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
				deg[u]++
				deg[v]++
			}
		}
	}
	g := &Graph{
		N:       n,
		Ptr:     make([]int, n+1),
		Adj:     make([]int, 2*len(edges)),
		EWeight: make([]int64, 2*len(edges)),
		VWeight: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		g.Ptr[i+1] = g.Ptr[i] + deg[i]
		g.VWeight[i] = int64(a.RowNNZ(i))
		if g.VWeight[i] == 0 {
			g.VWeight[i] = 1
		}
	}
	next := append([]int(nil), g.Ptr[:n]...)
	for _, e := range edges {
		g.Adj[next[e.u]] = e.v
		g.EWeight[next[e.u]] = 1
		next[e.u]++
		g.Adj[next[e.v]] = e.u
		g.EWeight[next[e.v]] = 1
		next[e.v]++
	}
	return g
}

// Neighbors returns the adjacency list of vertex v as shared slices.
func (g *Graph) Neighbors(v int) ([]int, []int64) {
	return g.Adj[g.Ptr[v]:g.Ptr[v+1]], g.EWeight[g.Ptr[v]:g.Ptr[v+1]]
}

// TotalVWeight returns the sum of all vertex weights.
func (g *Graph) TotalVWeight() int64 {
	var s int64
	for _, w := range g.VWeight {
		s += w
	}
	return s
}

// EdgeCut returns the total weight of edges crossing parts under the given
// assignment (each undirected edge counted once).
func EdgeCut(g *Graph, part []int) int64 {
	var cut int64
	for u := 0; u < g.N; u++ {
		adj, ew := g.Neighbors(u)
		for k, v := range adj {
			if u < v && part[u] != part[v] {
				cut += ew[k]
			}
		}
	}
	return cut
}

// PartWeights returns the summed vertex weight per part.
func PartWeights(g *Graph, part []int, nparts int) []int64 {
	w := make([]int64, nparts)
	for v := 0; v < g.N; v++ {
		w[part[v]] += g.VWeight[v]
	}
	return w
}

// ImbalanceRatio returns max part weight / average part weight (≥ 1;
// 1 = perfectly balanced). Empty parts count as weight 0.
func ImbalanceRatio(g *Graph, part []int, nparts int) float64 {
	w := PartWeights(g, part, nparts)
	var max, sum int64
	for _, x := range w {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1
	}
	avg := float64(sum) / float64(nparts)
	return float64(max) / avg
}

// Validate checks that part is a valid assignment into [0, nparts).
func Validate(g *Graph, part []int, nparts int) error {
	if len(part) != g.N {
		return fmt.Errorf("partition: assignment length %d, want %d", len(part), g.N)
	}
	for v, p := range part {
		if p < 0 || p >= nparts {
			return fmt.Errorf("partition: vertex %d assigned to part %d outside [0,%d)", v, p, nparts)
		}
	}
	return nil
}

// CommVolume returns the total number of halo unknowns a row distribution
// induces: for each vertex, the number of *other* parts among its
// neighbours (each such part must receive that vertex's value every halo
// update). This is the quantity a halo exchange actually moves, which edge
// cut only approximates.
func CommVolume(g *Graph, part []int, nparts int) int64 {
	var vol int64
	seen := make([]int, nparts)
	for i := range seen {
		seen[i] = -1
	}
	for v := 0; v < g.N; v++ {
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if part[u] != part[v] && seen[part[u]] != v {
				seen[part[u]] = v
				vol++
			}
		}
	}
	return vol
}

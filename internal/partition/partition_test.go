package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsaicomm/internal/sparse"
)

// grid2d builds the 5-point Laplacian pattern on an nx-by-ny grid.
func grid2d(nx, ny int) *sparse.CSR {
	n := nx * ny
	c := sparse.NewCOO(n, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			c.Add(i, i, 4)
			if x > 0 {
				c.Add(i, id(x-1, y), -1)
			}
			if x < nx-1 {
				c.Add(i, id(x+1, y), -1)
			}
			if y > 0 {
				c.Add(i, id(x, y-1), -1)
			}
			if y < ny-1 {
				c.Add(i, id(x, y+1), -1)
			}
		}
	}
	return c.ToCSR()
}

func TestGraphFromMatrix(t *testing.T) {
	a := grid2d(4, 4)
	g := GraphFromMatrix(a)
	if g.N != 16 {
		t.Fatalf("N = %d, want 16", g.N)
	}
	// 2*nx*ny - nx - ny undirected edges for a grid; each stored twice.
	wantEdges := 2*16 - 4 - 4
	if len(g.Adj) != 2*wantEdges {
		t.Fatalf("adj size = %d, want %d", len(g.Adj), 2*wantEdges)
	}
	// Corner vertex has degree 2, interior 4.
	adj, _ := g.Neighbors(0)
	if len(adj) != 2 {
		t.Fatalf("corner degree = %d, want 2", len(adj))
	}
	adj, _ = g.Neighbors(5)
	if len(adj) != 4 {
		t.Fatalf("interior degree = %d, want 4", len(adj))
	}
}

func TestGraphFromMatrixRejectsRectangular(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rectangular matrix")
		}
	}()
	GraphFromMatrix(sparse.NewCSR(3, 4, 0))
}

func TestBlockPartition(t *testing.T) {
	part := Block(10, 3)
	if err := Validate(&Graph{N: 10}, part, 3); err != nil {
		t.Fatal(err)
	}
	// Contiguous and non-decreasing.
	for i := 1; i < 10; i++ {
		if part[i] < part[i-1] {
			t.Fatalf("block partition not monotone: %v", part)
		}
	}
	// All parts used.
	seen := map[int]bool{}
	for _, p := range part {
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Fatalf("parts used = %d, want 3", len(seen))
	}
}

func TestBlockByWeight(t *testing.T) {
	w := []int64{10, 1, 1, 1, 1, 1, 1, 1, 1, 10}
	part := BlockByWeight(w, 2)
	g := &Graph{N: len(w), VWeight: w}
	imb := ImbalanceRatio(g, part, 2)
	if imb > 1.45 {
		t.Fatalf("imbalance = %v too high: %v", imb, part)
	}
	for i := 1; i < len(part); i++ {
		if part[i] < part[i-1] {
			t.Fatalf("not monotone: %v", part)
		}
	}
}

func TestStripPartition(t *testing.T) {
	part := Strip(7, 3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if part[i] != want[i] {
			t.Fatalf("part = %v, want %v", part, want)
		}
	}
}

func TestMultilevelBalancedAndBetterThanStrip(t *testing.T) {
	a := grid2d(24, 24)
	g := GraphFromMatrix(a)
	for _, nparts := range []int{2, 4, 8} {
		part, err := Multilevel(g, nparts, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(g, part, nparts); err != nil {
			t.Fatal(err)
		}
		imb := ImbalanceRatio(g, part, nparts)
		if imb > 1.25 {
			t.Errorf("nparts=%d: imbalance %.3f > 1.25", nparts, imb)
		}
		cutML := EdgeCut(g, part)
		cutStrip := EdgeCut(g, Strip(g.N, nparts))
		if cutML >= cutStrip {
			t.Errorf("nparts=%d: multilevel cut %d not better than strip cut %d", nparts, cutML, cutStrip)
		}
		// A 24x24 grid bisection has an ideal cut of ~24 per boundary; allow
		// generous slack but require locality.
		if nparts == 2 && cutML > 4*24 {
			t.Errorf("bisection cut %d too large", cutML)
		}
	}
}

func TestMultilevelSinglePart(t *testing.T) {
	g := GraphFromMatrix(grid2d(5, 5))
	part, err := Multilevel(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatalf("nparts=1 assigned part %d", p)
		}
	}
}

func TestMultilevelBadNParts(t *testing.T) {
	g := GraphFromMatrix(grid2d(3, 3))
	if _, err := Multilevel(g, 0, Options{}); err == nil {
		t.Fatal("nparts=0 accepted")
	}
}

func TestMultilevelDisconnectedGraph(t *testing.T) {
	// Two disjoint grids in one matrix.
	n := 32
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
	}
	for i := 0; i < 15; i++ {
		c.AddSym(i, i+1, -1)
	}
	for i := 16; i < 31; i++ {
		c.AddSym(i, i+1, -1)
	}
	g := GraphFromMatrix(c.ToCSR())
	part, err := Multilevel(g, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, part, 2); err != nil {
		t.Fatal(err)
	}
	if imb := ImbalanceRatio(g, part, 2); imb > 1.3 {
		t.Fatalf("imbalance %.3f on disconnected graph", imb)
	}
}

func TestEdgeCutManual(t *testing.T) {
	// Path 0-1-2-3 split {0,1},{2,3}: cut = 1.
	c := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 2)
	}
	for i := 0; i < 3; i++ {
		c.AddSym(i, i+1, -1)
	}
	g := GraphFromMatrix(c.ToCSR())
	if cut := EdgeCut(g, []int{0, 0, 1, 1}); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
	if cut := EdgeCut(g, []int{0, 1, 0, 1}); cut != 3 {
		t.Fatalf("alternating cut = %d, want 3", cut)
	}
}

func TestImbalanceRatio(t *testing.T) {
	g := &Graph{N: 4, VWeight: []int64{1, 1, 1, 3}}
	if imb := ImbalanceRatio(g, []int{0, 0, 1, 1}, 2); imb != (4.0 / 3.0) {
		t.Fatalf("imb = %v, want 4/3", imb)
	}
	if imb := ImbalanceRatio(g, []int{0, 0, 0, 1}, 2); imb != 1 {
		t.Fatalf("balanced imb = %v, want 1", imb)
	}
}

// Property: multilevel always produces a valid, reasonably balanced
// partition that uses every part on connected grid graphs.
func TestQuickMultilevelValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 4+rng.Intn(12), 4+rng.Intn(12)
		nparts := 2 + rng.Intn(4)
		g := GraphFromMatrix(grid2d(nx, ny))
		part, err := Multilevel(g, nparts, Options{Seed: seed})
		if err != nil || Validate(g, part, nparts) != nil {
			return false
		}
		w := PartWeights(g, part, nparts)
		for _, x := range w {
			if x == 0 {
				return false
			}
		}
		return ImbalanceRatio(g, part, nparts) < 1.6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := GraphFromMatrix(grid2d(10, 10))
	p1, _ := Multilevel(g, 4, Options{Seed: 42})
	p2, _ := Multilevel(g, 4, Options{Seed: 42})
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("partition not deterministic at vertex %d", i)
		}
	}
}

func TestCommVolume(t *testing.T) {
	// Path 0-1-2-3 split {0,1},{2,3}: vertices 1 and 2 each cross once.
	c := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 2)
	}
	for i := 0; i < 3; i++ {
		c.AddSym(i, i+1, -1)
	}
	g := GraphFromMatrix(c.ToCSR())
	if vol := CommVolume(g, []int{0, 0, 1, 1}, 2); vol != 2 {
		t.Fatalf("volume = %d, want 2", vol)
	}
	// One part: no communication.
	if vol := CommVolume(g, []int{0, 0, 0, 0}, 1); vol != 0 {
		t.Fatalf("single-part volume = %d", vol)
	}
}

func TestCommVolumeMultilevelBeatsStrip(t *testing.T) {
	g := GraphFromMatrix(grid2d(20, 20))
	part, err := Multilevel(g, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if CommVolume(g, part, 4) >= CommVolume(g, Strip(g.N, 4), 4) {
		t.Fatal("multilevel volume not below strip")
	}
}

package partition

import (
	"fmt"
	"math/rand"
	"sort"
)

// Options configures the multilevel partitioner.
type Options struct {
	// Seed makes the partitioner deterministic. The default (0) is a valid
	// seed.
	Seed int64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices. Default 64.
	CoarsenTo int
	// RefinePasses bounds the number of FM refinement passes per level.
	// Default 8.
	RefinePasses int
	// ImbalanceTol is the allowed part-weight imbalance during bisection
	// (e.g. 0.05 allows 52.5/47.5 splits). Default 0.05.
	ImbalanceTol float64
}

func (o Options) withDefaults() Options {
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 64
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	if o.ImbalanceTol <= 0 {
		o.ImbalanceTol = 0.05
	}
	return o
}

// Multilevel partitions g into nparts parts by recursive bisection and
// returns the per-vertex part assignment.
func Multilevel(g *Graph, nparts int, opt Options) ([]int, error) {
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts %d < 1", nparts)
	}
	opt = opt.withDefaults()
	part := make([]int, g.N)
	if nparts == 1 {
		return part, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	verts := make([]int, g.N)
	for i := range verts {
		verts[i] = i
	}
	recursiveBisect(g, verts, 0, nparts, part, rng, opt)
	return part, nil
}

// recursiveBisect splits the sub-graph induced by verts into parts
// [base, base+k) and writes assignments into part.
func recursiveBisect(g *Graph, verts []int, base, k int, part []int, rng *rand.Rand, opt Options) {
	if k == 1 {
		for _, v := range verts {
			part[v] = base
		}
		return
	}
	kl := k / 2
	kr := k - kl
	// Target fraction of weight on the left side.
	frac := float64(kl) / float64(k)
	sub := induce(g, verts)
	side := bisect(sub, frac, rng, opt)
	var left, right []int
	for i, v := range verts {
		if side[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	recursiveBisect(g, left, base, kl, part, rng, opt)
	recursiveBisect(g, right, base+kl, kr, part, rng, opt)
}

// induce builds the sub-graph of g induced by verts (edges to outside
// vertices are dropped).
func induce(g *Graph, verts []int) *Graph {
	local := make(map[int]int, len(verts))
	for i, v := range verts {
		local[v] = i
	}
	sub := &Graph{N: len(verts), Ptr: make([]int, len(verts)+1), VWeight: make([]int64, len(verts))}
	for i, v := range verts {
		sub.VWeight[i] = g.VWeight[v]
		adj, ew := g.Neighbors(v)
		for k, u := range adj {
			if j, ok := local[u]; ok {
				sub.Adj = append(sub.Adj, j)
				sub.EWeight = append(sub.EWeight, ew[k])
			}
		}
		sub.Ptr[i+1] = len(sub.Adj)
	}
	return sub
}

// bisect splits g into sides 0/1 with roughly frac of the vertex weight on
// side 0, using multilevel coarsening + greedy growing + FM refinement.
func bisect(g *Graph, frac float64, rng *rand.Rand, opt Options) []int {
	if g.N <= opt.CoarsenTo {
		side := growBisection(g, frac, rng)
		fmRefine(g, side, frac, rng, opt)
		return side
	}
	coarse, cmap := coarsen(g, rng)
	if coarse.N >= g.N { // matching made no progress; fall back
		side := growBisection(g, frac, rng)
		fmRefine(g, side, frac, rng, opt)
		return side
	}
	cside := bisect(coarse, frac, rng, opt)
	side := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		side[v] = cside[cmap[v]]
	}
	fmRefine(g, side, frac, rng, opt)
	return side
}

// coarsen contracts a heavy-edge matching and returns the coarse graph plus
// the fine→coarse vertex map.
func coarsen(g *Graph, rng *rand.Rand) (*Graph, []int) {
	match := make([]int, g.N)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(g.N)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		adj, ew := g.Neighbors(v)
		best, bestW := -1, int64(-1)
		for k, u := range adj {
			if match[u] == -1 && u != v && ew[k] > bestW {
				best, bestW = u, ew[k]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	cmap := make([]int, g.N)
	nc := 0
	for v := 0; v < g.N; v++ {
		u := match[v]
		if v <= u {
			cmap[v] = nc
			if u != v {
				cmap[u] = nc
			}
			nc++
		}
	}
	coarse := &Graph{N: nc, Ptr: make([]int, nc+1), VWeight: make([]int64, nc)}
	for v := 0; v < g.N; v++ {
		coarse.VWeight[cmap[v]] += g.VWeight[v]
	}
	// Reverse map: coarse vertex -> fine members.
	members := make([][2]int, nc)
	count := make([]int, nc)
	for v := 0; v < g.N; v++ {
		c := cmap[v]
		members[c][count[c]] = v
		count[c]++
	}
	for c := 0; c < nc; c++ {
		agg := make(map[int]int64)
		for m := 0; m < count[c]; m++ {
			v := members[c][m]
			adj, ew := g.Neighbors(v)
			for k, u := range adj {
				cu := cmap[u]
				if cu != c {
					agg[cu] += ew[k]
				}
			}
		}
		keys := make([]int, 0, len(agg))
		for u := range agg {
			keys = append(keys, u)
		}
		sort.Ints(keys)
		for _, u := range keys {
			coarse.Adj = append(coarse.Adj, u)
			coarse.EWeight = append(coarse.EWeight, agg[u])
		}
		coarse.Ptr[c+1] = len(coarse.Adj)
	}
	return coarse, cmap
}

// growBisection seeds side 0 from a random vertex and grows it by BFS until
// it holds ~frac of the total weight; everything else is side 1.
func growBisection(g *Graph, frac float64, rng *rand.Rand) []int {
	side := make([]int, g.N)
	for i := range side {
		side[i] = 1
	}
	if g.N == 0 {
		return side
	}
	target := int64(float64(g.TotalVWeight()) * frac)
	var w int64
	visited := make([]bool, g.N)
	var queue []int
	for w < target {
		// Pick an unvisited seed (handles disconnected graphs).
		seed := -1
		for tries := 0; tries < 8; tries++ {
			s := rng.Intn(g.N)
			if !visited[s] {
				seed = s
				break
			}
		}
		if seed == -1 {
			for v := 0; v < g.N; v++ {
				if !visited[v] {
					seed = v
					break
				}
			}
		}
		if seed == -1 {
			break
		}
		queue = append(queue[:0], seed)
		visited[seed] = true
		for len(queue) > 0 && w < target {
			v := queue[0]
			queue = queue[1:]
			side[v] = 0
			w += g.VWeight[v]
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return side
}

// fmRefine improves a bisection with Fiduccia–Mattheyses style passes:
// repeatedly move the boundary vertex with the best gain subject to the
// balance constraint, keeping the best prefix of moves.
func fmRefine(g *Graph, side []int, frac float64, rng *rand.Rand, opt Options) {
	total := g.TotalVWeight()
	target0 := float64(total) * frac
	lo0 := int64(target0 * (1 - opt.ImbalanceTol))
	hi0 := int64(target0 * (1 + opt.ImbalanceTol))
	if hi0 >= total {
		hi0 = total - 1
	}
	if lo0 < 1 {
		lo0 = 1
	}

	var w0 int64
	for v := 0; v < g.N; v++ {
		if side[v] == 0 {
			w0 += g.VWeight[v]
		}
	}

	gain := func(v int) int64 {
		adj, ew := g.Neighbors(v)
		var ext, int_ int64
		for k, u := range adj {
			if side[u] == side[v] {
				int_ += ew[k]
			} else {
				ext += ew[k]
			}
		}
		return ext - int_
	}

	apply := func(v int) {
		if side[v] == 0 {
			w0 -= g.VWeight[v]
			side[v] = 1
		} else {
			w0 += g.VWeight[v]
			side[v] = 0
		}
	}
	balancedAfter := func(v int) bool {
		nw0 := w0
		if side[v] == 0 {
			nw0 -= g.VWeight[v]
		} else {
			nw0 += g.VWeight[v]
		}
		return nw0 >= lo0 && nw0 <= hi0
	}

	for pass := 0; pass < opt.RefinePasses; pass++ {
		// Collect current boundary vertices (those with a cross edge). Only
		// boundary vertices can have positive gain, so restricting the scan
		// keeps each pass O(boundary * degree).
		var boundary []int
		for v := 0; v < g.N; v++ {
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if side[u] != side[v] {
					boundary = append(boundary, v)
					break
				}
			}
		}
		if len(boundary) == 0 {
			return
		}
		// Greedy sweep: highest-gain first, allowing each vertex one move.
		sort.Slice(boundary, func(a, b int) bool {
			return gain(boundary[a]) > gain(boundary[b])
		})
		var improved int64
		for _, v := range boundary {
			gv := gain(v) // recompute: earlier moves change it
			if gv <= 0 {
				continue
			}
			if !balancedAfter(v) {
				continue
			}
			apply(v)
			improved += gv
		}
		if improved == 0 {
			return
		}
	}
}

// Block partitions n rows into nparts contiguous blocks of nearly equal row
// counts (the trivial 1-D distribution).
func Block(n, nparts int) []int {
	part := make([]int, n)
	for i := 0; i < n; i++ {
		part[i] = i * nparts / n
		if part[i] >= nparts {
			part[i] = nparts - 1
		}
	}
	return part
}

// BlockByWeight partitions n rows into nparts contiguous blocks balancing
// the given per-row weights (e.g. nnz per row).
func BlockByWeight(weights []int64, nparts int) []int {
	n := len(weights)
	part := make([]int, n)
	var total int64
	for _, w := range weights {
		total += w
	}
	target := float64(total) / float64(nparts)
	p := 0
	var acc int64
	for i := 0; i < n; i++ {
		if float64(acc) >= target*float64(p+1) && p < nparts-1 {
			p++
		}
		part[i] = p
		acc += weights[i]
	}
	return part
}

// Strip partitions by round-robin assignment (worst-case locality; used in
// tests to stress halo machinery).
func Strip(n, nparts int) []int {
	part := make([]int, n)
	for i := 0; i < n; i++ {
		part[i] = i % nparts
	}
	return part
}

// Package cache implements a set-associative LRU cache simulator used to
// reproduce the paper's hardware-counter figures (L1 data-cache misses on
// accesses to the multiplying vector x during the preconditioning product
// GᵀGx — Figures 3a and 5a). The simulator is deterministic, so the
// histograms it produces are exactly reproducible, unlike PAPI counters.
//
// The model is deliberately minimal: one cache level, LRU replacement,
// physically-indexed by the byte address of each access. The experiments
// only trace accesses to the x vector, matching the paper's metric ("L1 DCM
// of accesses to multiplying vector x ... normalized to the number of G
// matrix non-zero entries").
package cache

import "fmt"

// Cache is a set-associative cache with LRU replacement. Not safe for
// concurrent use; the experiments run one instance per simulated process.
type Cache struct {
	lineBytes int
	sets      int
	ways      int
	// tags[s] holds the line tags resident in set s, most recently used
	// last. Length ≤ ways.
	tags   [][]uint64
	hits   int64
	misses int64
}

// New creates a cache of the given total capacity. capacityBytes must be a
// multiple of lineBytes*ways, and the resulting set count must be a power of
// two (hardware-like; the architecture profiles all satisfy this).
func New(capacityBytes, lineBytes, ways int) (*Cache, error) {
	if lineBytes <= 0 || ways <= 0 || capacityBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %d/%d/%d", capacityBytes, lineBytes, ways)
	}
	if capacityBytes%(lineBytes*ways) != 0 {
		return nil, fmt.Errorf("cache: capacity %d not a multiple of line*ways = %d", capacityBytes, lineBytes*ways)
	}
	sets := capacityBytes / (lineBytes * ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	c := &Cache{lineBytes: lineBytes, sets: sets, ways: ways, tags: make([][]uint64, sets)}
	for s := range c.tags {
		c.tags[s] = make([]uint64, 0, ways)
	}
	return c, nil
}

// MustNew is New that panics on error; for profile-derived geometries that
// are known valid.
func MustNew(capacityBytes, lineBytes, ways int) *Cache {
	c, err := New(capacityBytes, lineBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// LineBytes returns the cache line size in bytes.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Access touches the byte at addr and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.sets))
	ways := c.tags[set]
	for i, t := range ways {
		if t == line {
			// Move to MRU position.
			copy(ways[i:], ways[i+1:])
			ways[len(ways)-1] = line
			c.hits++
			return true
		}
	}
	c.misses++
	if len(ways) == c.ways {
		copy(ways, ways[1:])
		ways[len(ways)-1] = line
	} else {
		c.tags[set] = append(ways, line)
	}
	return false
}

// Hits returns the accumulated hit count.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the accumulated miss count.
func (c *Cache) Misses() int64 { return c.misses }

// ResetStats zeroes the counters without flushing cache contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Flush empties the cache and zeroes the counters.
func (c *Cache) Flush() {
	for s := range c.tags {
		c.tags[s] = c.tags[s][:0]
	}
	c.ResetStats()
}

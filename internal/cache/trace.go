package cache

import "fsaicomm/internal/sparse"

// xBase is the simulated base address of the multiplying vector. Cache-line
// aligned so that localized index k lives at line k/W with W = lineBytes/8,
// matching the alignment assumption of the pattern-extension algorithm.
const xBase = 1 << 30

// AddrOfX returns the simulated byte address of x[k].
func AddrOfX(k int) uint64 { return xBase + 8*uint64(k) }

// TraceSpMVOnX replays the x-vector accesses of one product y = M·x against
// the cache and returns the miss count for this product alone. Rows are
// walked in order and entries within a row in column order, the access
// pattern of a CSR SpMV. Only x accesses are traced (the paper's metric); y
// and the matrix stream have unit stride and would add a constant,
// method-independent term.
func TraceSpMVOnX(m *sparse.CSR, c *Cache) int64 {
	before := c.Misses()
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			c.Access(AddrOfX(m.ColIdx[k]))
		}
	}
	return c.Misses() - before
}

// TracePrecondProduct replays the x-accesses of the preconditioning
// operation z = Gᵀ(G·x): first the product with G reading x, then the
// product with Gᵀ reading the intermediate vector (placed right after x in
// the simulated address space). It returns total misses across both
// products. The cache is flushed first so results are reproducible.
func TracePrecondProduct(g, gt *sparse.CSR, c *Cache) int64 {
	c.Flush()
	m1 := TraceSpMVOnX(g, c)
	// The intermediate vector w = Gx occupies its own range; offset by the
	// width of x rounded up to a line.
	off := g.Cols
	before := c.Misses()
	for i := 0; i < gt.Rows; i++ {
		lo, hi := gt.RowPtr[i], gt.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			c.Access(AddrOfX(off + gt.ColIdx[k]))
		}
	}
	return m1 + (c.Misses() - before)
}

// MissesPerNNZ returns the paper's Figure 3a metric for one simulated
// process: misses on x during GᵀGx divided by the number of stored entries
// of G (and Gᵀ, which have equal counts globally).
func MissesPerNNZ(g, gt *sparse.CSR, c *Cache) float64 {
	nnz := g.NNZ() + gt.NNZ()
	if nnz == 0 {
		return 0
	}
	return float64(TracePrecondProduct(g, gt, c)) / float64(nnz)
}

package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsaicomm/internal/sparse"
)

func TestNewGeometryValidation(t *testing.T) {
	if _, err := New(0, 64, 8); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(100, 64, 8); err == nil {
		t.Error("non-multiple capacity accepted")
	}
	if _, err := New(3*64*8, 64, 8); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(32*1024, 64, 8); err != nil {
		t.Errorf("Skylake-like geometry rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNew(100, 64, 8)
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(1024, 64, 2)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(8) {
		t.Fatal("same-line access missed")
	}
	if !c.Access(63) {
		t.Fatal("line-end access missed")
	}
	if c.Access(64) {
		t.Fatal("next-line access hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, 1 set => capacity 2 lines.
	c := MustNew(2*64, 64, 2)
	c.Access(0 * 64)
	c.Access(1 * 64)
	c.Access(2 * 64) // evicts line 0 (LRU)
	if c.Access(0 * 64) {
		t.Fatal("evicted line still resident")
	}
	// Now lines 2 and 0 resident (1 was LRU when 0 re-entered).
	if c.Access(1 * 64) {
		t.Fatal("line 1 should have been evicted")
	}
}

func TestLRUTouchRefreshes(t *testing.T) {
	c := MustNew(2*64, 64, 2)
	c.Access(0 * 64)
	c.Access(1 * 64)
	c.Access(0 * 64) // refresh 0; LRU is now 1
	c.Access(2 * 64) // evicts 1
	if !c.Access(0 * 64) {
		t.Fatal("refreshed line was evicted")
	}
}

func TestSetIndexing(t *testing.T) {
	// 2 sets, 1 way: addresses in different sets don't evict each other.
	c := MustNew(2*64, 64, 1)
	c.Access(0 * 64) // set 0
	c.Access(1 * 64) // set 1
	if !c.Access(0 * 64) {
		t.Fatal("cross-set eviction happened")
	}
}

func TestFlushAndResetStats(t *testing.T) {
	c := MustNew(1024, 64, 2)
	c.Access(0)
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("ResetStats did not zero")
	}
	if !c.Access(0) {
		t.Fatal("ResetStats flushed contents")
	}
	c.Flush()
	if c.Access(0) {
		t.Fatal("Flush kept contents")
	}
}

func TestTraceSpMVSequentialRowsReuseLines(t *testing.T) {
	// Dense band matrix: consecutive rows touch overlapping x entries, so
	// misses should approach nnz / (line width) rather than nnz.
	n := 512
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := i - 2; j <= i+2; j++ {
			if j >= 0 && j < n {
				coo.Add(i, j, 1)
			}
		}
	}
	m := coo.ToCSR()
	c := MustNew(32*1024, 64, 8)
	misses := TraceSpMVOnX(m, c)
	lines := int64(n * 8 / 64)
	if misses != lines {
		t.Fatalf("banded SpMV misses = %d, want %d (one per x line)", misses, lines)
	}
}

func TestTraceSpMVRandomWorseThanBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 4096
	nnzPerRow := 8
	band := sparse.NewCOO(n, n)
	random := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			j := i - nnzPerRow/2 + k
			if j < 0 {
				j += n
			}
			if j >= n {
				j -= n
			}
			band.Add(i, j, 1)
			random.Add(i, rng.Intn(n), 1)
		}
	}
	cb := MustNew(8*1024, 64, 8)
	cr := MustNew(8*1024, 64, 8)
	mb := TraceSpMVOnX(band.ToCSR(), cb)
	mr := TraceSpMVOnX(random.ToCSR(), cr)
	if mb >= mr {
		t.Fatalf("banded misses %d not below random misses %d", mb, mr)
	}
}

func TestWiderLinesReduceMissesOnContiguousAccess(t *testing.T) {
	// The A64FX effect: 256-byte lines cover 32 doubles, so a contiguous
	// sweep misses 4x less than with 64-byte lines.
	n := 2048
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	m := coo.ToCSR()
	c64 := MustNew(16*1024, 64, 4)
	c256 := MustNew(64*1024, 256, 4)
	m64 := TraceSpMVOnX(m, c64)
	m256 := TraceSpMVOnX(m, c256)
	if m64 != 4*m256 {
		t.Fatalf("64B misses %d, 256B misses %d; want 4x ratio", m64, m256)
	}
}

func TestTracePrecondProductFlushes(t *testing.T) {
	m := func() *sparse.CSR {
		coo := sparse.NewCOO(8, 8)
		for i := 0; i < 8; i++ {
			coo.Add(i, i, 1)
		}
		return coo.ToCSR()
	}()
	c := MustNew(1024, 64, 2)
	a := TracePrecondProduct(m, m, c)
	b := TracePrecondProduct(m, m, c)
	if a != b {
		t.Fatalf("trace not reproducible: %d vs %d", a, b)
	}
	if a <= 0 {
		t.Fatalf("no misses recorded")
	}
}

func TestMissesPerNNZEmptyMatrix(t *testing.T) {
	m := sparse.NewCSR(4, 4, 0)
	c := MustNew(1024, 64, 2)
	if got := MissesPerNNZ(m, m, c); got != 0 {
		t.Fatalf("empty matrix metric = %v", got)
	}
}

// Property: hits + misses equals the number of accesses, and re-walking the
// same trace immediately is all hits when it fits in cache.
func TestQuickConservationAndResidency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(4096, 64, 4) // 64 lines
		n := 1 + rng.Intn(40)     // working set ≤ 40 lines < capacity
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(40)) * 64
		}
		for _, a := range addrs {
			c.Access(a)
		}
		if c.Hits()+c.Misses() != int64(len(addrs)) {
			return false
		}
		c.ResetStats()
		for _, a := range addrs {
			if !c.Access(a) {
				return false // resident set must hit
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

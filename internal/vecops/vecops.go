// Package vecops implements the dense vector kernels of the Conjugate
// Gradient method — dot products, AXPY-style linear combinations, scaling
// and norms — with optional floating-point-operation accounting used by the
// GFLOP/s reproductions (Figures 3b, 5b, 7).
package vecops

import (
	"fmt"
	"math"
	"sync/atomic"
)

// FlopCounter accumulates floating-point operation counts. The zero value is
// ready to use; a nil *FlopCounter disables accounting. Counters are safe
// for concurrent use (the distributed solver runs one goroutine per rank
// against per-rank counters, but collectives may fold counts together).
type FlopCounter struct {
	flops atomic.Int64
}

// Add records n floating-point operations. Safe on a nil receiver.
func (c *FlopCounter) Add(n int64) {
	if c != nil {
		c.flops.Add(n)
	}
}

// Count returns the accumulated operation count. A nil counter reports 0.
func (c *FlopCounter) Count() int64 {
	if c == nil {
		return 0
	}
	return c.flops.Load()
}

// Reset zeroes the counter. Safe on a nil receiver.
func (c *FlopCounter) Reset() {
	if c != nil {
		c.flops.Store(0)
	}
}

// Dot returns xᵀy, counting 2·len(x) flops.
func Dot(x, y []float64, fc *FlopCounter) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecops: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	fc.Add(2 * int64(len(x)))
	return s
}

// Axpy computes y ← a·x + y, counting 2·len(x) flops.
func Axpy(a float64, x, y []float64, fc *FlopCounter) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecops: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += a * x[i]
	}
	fc.Add(2 * int64(len(x)))
}

// Xpay computes y ← x + a·y (the update used for CG search directions),
// counting 2·len(x) flops.
func Xpay(x []float64, a float64, y []float64, fc *FlopCounter) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecops: Xpay length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range y {
		y[i] = x[i] + a*y[i]
	}
	fc.Add(2 * int64(len(x)))
}

// Scale computes x ← a·x, counting len(x) flops.
func Scale(a float64, x []float64, fc *FlopCounter) {
	for i := range x {
		x[i] *= a
	}
	fc.Add(int64(len(x)))
}

// Copy copies src into dst (no flops).
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecops: Copy length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Dot2 returns (xᵀy, zᵀy) in one pass over the three vectors, counting 4·n
// flops. The fused CG recurrence needs both rᵀu and wᵀu after every
// preconditioner+SpMV application; merging them halves the sweeps over u.
func Dot2(x, y, z []float64, fc *FlopCounter) (xy, zy float64) {
	if len(x) != len(y) || len(z) != len(y) {
		panic(fmt.Sprintf("vecops: Dot2 length mismatch %d/%d/%d", len(x), len(y), len(z)))
	}
	for i := range y {
		xy += x[i] * y[i]
		zy += z[i] * y[i]
	}
	fc.Add(4 * int64(len(y)))
	return xy, zy
}

// Dot3 returns (xᵀy, zᵀy, xᵀx) in one pass over the three vectors,
// counting 6·n flops. The pipelined CG recurrence reduces all three scalars
// of an iteration — rᵀu, wᵀu and ‖r‖² — in one nonblocking collective, and
// this kernel produces the local contributions in a single sweep.
func Dot3(x, y, z []float64, fc *FlopCounter) (xy, zy, xx float64) {
	if len(x) != len(y) || len(z) != len(y) {
		panic(fmt.Sprintf("vecops: Dot3 length mismatch %d/%d/%d", len(x), len(y), len(z)))
	}
	for i := range y {
		xy += x[i] * y[i]
		zy += z[i] * y[i]
		xx += x[i] * x[i]
	}
	fc.Add(6 * int64(len(y)))
	return xy, zy, xx
}

// FusedCGUpdate performs the four vector updates of one fused-CG iteration
// in a single sweep and folds the residual-norm reduction into the same
// loop (the AxpyDot/XpayNorm2 merged update+reduce style):
//
//	p ← u + β·p
//	s ← w + β·s
//	x ← x + α·p
//	r ← r − α·s
//
// and returns Σ rᵢ² of the updated residual. The classic loop needs four
// separate sweeps plus a fifth for the norm; this kernel streams each
// vector exactly once. Counts 10·n flops (8 update + 2 reduce).
func FusedCGUpdate(alpha, beta float64, u, w, p, s, x, r []float64, fc *FlopCounter) float64 {
	n := len(u)
	if len(w) != n || len(p) != n || len(s) != n || len(x) != n || len(r) != n {
		panic(fmt.Sprintf("vecops: FusedCGUpdate length mismatch %d/%d/%d/%d/%d/%d",
			len(u), len(w), len(p), len(s), len(x), len(r)))
	}
	rr := 0.0
	for i := 0; i < n; i++ {
		pi := u[i] + beta*p[i]
		si := w[i] + beta*s[i]
		p[i] = pi
		s[i] = si
		x[i] += alpha * pi
		ri := r[i] - alpha*si
		r[i] = ri
		rr += ri * ri
	}
	fc.Add(10 * int64(n))
	return rr
}

// PipelinedCGUpdate performs the eight vector updates of one pipelined-CG
// (Ghysels–Vanroose) iteration in a single sweep:
//
//	z ← n + β·z    q ← m + β·q    s ← w + β·s    p ← u + β·p
//	x ← x + α·p    r ← r − α·s    u ← u − α·q    w ← w − α·z
//
// The auxiliary recurrences keep q = M·s and z = A·M·s current without extra
// operator applications, which is what lets the next iteration's reduction
// operands exist before the previous reduction has completed. Counts 16·n
// flops.
func PipelinedCGUpdate(alpha, beta float64, n, m, w, u, z, q, s, p, x, r []float64, fc *FlopCounter) {
	ln := len(n)
	if len(m) != ln || len(w) != ln || len(u) != ln || len(z) != ln ||
		len(q) != ln || len(s) != ln || len(p) != ln || len(x) != ln || len(r) != ln {
		panic(fmt.Sprintf("vecops: PipelinedCGUpdate length mismatch %d/%d/%d/%d/%d/%d/%d/%d/%d/%d",
			len(n), len(m), len(w), len(u), len(z), len(q), len(s), len(p), len(x), len(r)))
	}
	for i := 0; i < ln; i++ {
		zi := n[i] + beta*z[i]
		qi := m[i] + beta*q[i]
		si := w[i] + beta*s[i]
		pi := u[i] + beta*p[i]
		z[i] = zi
		q[i] = qi
		s[i] = si
		p[i] = pi
		x[i] += alpha * pi
		r[i] -= alpha * si
		u[i] -= alpha * qi
		w[i] -= alpha * zi
	}
	fc.Add(16 * int64(ln))
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64, fc *FlopCounter) float64 {
	return math.Sqrt(Dot(x, x, fc))
}

// NormInf returns the maximum absolute component of x (no flops counted).
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Fill sets every component of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Narrow rounds src into the float32 buffer dst — the gather-side kernel of
// the mixed-precision halo exchange (no flops counted; conversions are
// charged to the bandwidth they save, not the ALU).
func Narrow(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecops: Narrow length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// Widen expands the float32 buffer src into dst — the scatter-side kernel of
// the mixed-precision halo exchange.
func Widen(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecops: Widen length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

package vecops

import (
	"math/rand"
	"testing"
)

func randBlock(rng *rand.Rand, n, k int) []float64 {
	x := make([]float64, n*k)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func col(block []float64, k, c, n int) []float64 {
	v := make([]float64, n)
	UnpackColumn(v, block, k, c)
	return v
}

// Every batched kernel must reproduce its scalar counterpart bit for bit on
// each active column and leave masked columns untouched.
func TestBatchKernelsMatchScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, k = 57, 5
	cols := []int{1, 3, 4}
	active := map[int]bool{1: true, 3: true, 4: true}

	x := randBlock(rng, n, k)
	y := randBlock(rng, n, k)
	z := randBlock(rng, n, k)
	a := []float64{0.5, -1.25, 2, 0.75, -3}

	// DotBatch vs Dot.
	out := []float64{9, 9, 9, 9, 9}
	DotBatch(x, y, k, cols, out, nil)
	for c := 0; c < k; c++ {
		if !active[c] {
			if out[c] != 9 {
				t.Fatalf("DotBatch wrote masked col %d", c)
			}
			continue
		}
		want := Dot(col(x, k, c, n), col(y, k, c, n), nil)
		if out[c] != want {
			t.Fatalf("DotBatch col %d: %v != %v", c, out[c], want)
		}
	}
	outAll := make([]float64, k)
	DotBatch(x, y, k, nil, outAll, nil)
	for c := 0; c < k; c++ {
		if want := Dot(col(x, k, c, n), col(y, k, c, n), nil); outAll[c] != want {
			t.Fatalf("DotBatch nil-mask col %d: %v != %v", c, outAll[c], want)
		}
	}

	// Dot2Batch vs Dot2.
	oXY := make([]float64, k)
	oZY := make([]float64, k)
	Dot2Batch(x, y, z, k, cols, oXY, oZY, nil)
	for _, c := range cols {
		wXY, wZY := Dot2(col(x, k, c, n), col(y, k, c, n), col(z, k, c, n), nil)
		if oXY[c] != wXY || oZY[c] != wZY {
			t.Fatalf("Dot2Batch col %d: (%v,%v) != (%v,%v)", c, oXY[c], oZY[c], wXY, wZY)
		}
	}

	// AxpyBatch vs Axpy.
	yb := append([]float64(nil), y...)
	AxpyBatch(a, x, yb, k, cols, nil)
	for c := 0; c < k; c++ {
		want := col(y, k, c, n)
		if active[c] {
			Axpy(a[c], col(x, k, c, n), want, nil)
		}
		got := col(yb, k, c, n)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("AxpyBatch col %d row %d: %v != %v", c, i, got[i], want[i])
			}
		}
	}

	// XpayBatch vs Xpay.
	yb = append([]float64(nil), y...)
	XpayBatch(x, a, yb, k, cols, nil)
	for c := 0; c < k; c++ {
		want := col(y, k, c, n)
		if active[c] {
			Xpay(col(x, k, c, n), a[c], want, nil)
		}
		got := col(yb, k, c, n)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("XpayBatch col %d row %d: %v != %v", c, i, got[i], want[i])
			}
		}
	}
}

func TestFusedCGUpdateBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, k = 41, 4
	alpha := []float64{0.9, -0.3, 1.1, 0.2}
	beta := []float64{0.1, 0.7, -0.5, 1.3}
	u := randBlock(rng, n, k)
	w := randBlock(rng, n, k)
	p0 := randBlock(rng, n, k)
	s0 := randBlock(rng, n, k)
	x0 := randBlock(rng, n, k)
	r0 := randBlock(rng, n, k)

	for _, cols := range [][]int{nil, {0, 2}} {
		p := append([]float64(nil), p0...)
		s := append([]float64(nil), s0...)
		x := append([]float64(nil), x0...)
		r := append([]float64(nil), r0...)
		rr := []float64{-1, -1, -1, -1}
		FusedCGUpdateBatch(alpha, beta, u, w, p, s, x, r, k, cols, rr, nil)

		activeSet := map[int]bool{}
		if cols == nil {
			for c := 0; c < k; c++ {
				activeSet[c] = true
			}
		} else {
			for _, c := range cols {
				activeSet[c] = true
			}
		}
		for c := 0; c < k; c++ {
			pc := col(p0, k, c, n)
			sc := col(s0, k, c, n)
			xc := col(x0, k, c, n)
			rc := col(r0, k, c, n)
			wantRR := -1.0
			if activeSet[c] {
				wantRR = FusedCGUpdate(alpha[c], beta[c],
					col(u, k, c, n), col(w, k, c, n), pc, sc, xc, rc, nil)
			}
			for i, want := range [][]float64{pc, sc, xc, rc} {
				got := [][]float64{col(p, k, c, n), col(s, k, c, n), col(x, k, c, n), col(r, k, c, n)}[i]
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("fused col %d vec %d row %d: %v != %v", c, i, j, got[j], want[j])
					}
				}
			}
			if rr[c] != wantRR {
				t.Fatalf("fused col %d rr: %v != %v", c, rr[c], wantRR)
			}
		}
	}
}

func TestBatchFlopAccounting(t *testing.T) {
	const n, k = 10, 4
	x := make([]float64, n*k)
	y := make([]float64, n*k)
	a := make([]float64, k)
	out := make([]float64, k)

	var fc FlopCounter
	DotBatch(x, y, k, nil, out, &fc)
	if fc.Count() != 2*n*k {
		t.Fatalf("DotBatch flops = %d, want %d", fc.Count(), 2*n*k)
	}
	fc.Reset()
	DotBatch(x, y, k, []int{1}, out, &fc)
	if fc.Count() != 2*n {
		t.Fatalf("masked DotBatch flops = %d, want %d", fc.Count(), 2*n)
	}
	fc.Reset()
	AxpyBatch(a, x, y, k, []int{0, 3}, &fc)
	if fc.Count() != 2*n*2 {
		t.Fatalf("AxpyBatch flops = %d, want %d", fc.Count(), 2*n*2)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, k = 13, 3
	block := make([]float64, n*k)
	want := make([][]float64, k)
	for c := 0; c < k; c++ {
		want[c] = make([]float64, n)
		for i := range want[c] {
			want[c][i] = rng.NormFloat64()
		}
		PackColumn(block, want[c], k, c)
	}
	for c := 0; c < k; c++ {
		got := make([]float64, n)
		UnpackColumn(got, block, k, c)
		for i := range got {
			if got[i] != want[c][i] {
				t.Fatalf("round trip col %d row %d: %v != %v", c, i, got[i], want[c][i])
			}
		}
	}
}

func TestBatchShapePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"k0", func() { DotBatch(nil, nil, 0, nil, nil, nil) }},
		{"mismatch", func() { DotBatch(make([]float64, 4), make([]float64, 6), 2, nil, make([]float64, 2), nil) }},
		{"shortOut", func() { DotBatch(make([]float64, 4), make([]float64, 4), 2, nil, make([]float64, 1), nil) }},
		{"pack", func() { PackColumn(make([]float64, 5), make([]float64, 3), 2, 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}

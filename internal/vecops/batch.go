package vecops

// Block (multi-RHS) variants of the CG vector kernels. A batch of k vectors
// is stored row-major interleaved — x[i*k+c] is component i of column c —
// matching sparse.CSR.MulMat, so one sweep over a block serves all k
// columns with contiguous loads. Every kernel accumulates each column in
// the same index order as its scalar counterpart; column c of a batched
// solve is therefore bit-identical to a scalar solve of that column.
//
// The cols parameter is the convergence mask of the batched CG loop: a
// strictly ascending list of still-active column indices in [0, k). Masked
// (frozen) columns are neither read nor written, so they stop contributing
// flops the iteration they converge. nil means all columns.

import "fmt"

// DotBatch writes out[c] = x_cᵀy_c for every active column, leaving masked
// columns of out untouched. Counts 2·n flops per active column.
func DotBatch(x, y []float64, k int, cols []int, out []float64, fc *FlopCounter) {
	n := checkBatch2(x, y, k, out, "DotBatch")
	if cols == nil {
		for c := 0; c < k; c++ {
			out[c] = 0
		}
		for i := 0; i < n; i++ {
			xs, ys := x[i*k:i*k+k], y[i*k:i*k+k]
			for c := range out[:k] {
				out[c] += xs[c] * ys[c]
			}
		}
		fc.Add(2 * int64(n) * int64(k))
		return
	}
	for _, c := range cols {
		out[c] = 0
	}
	for i := 0; i < n; i++ {
		xs, ys := x[i*k:i*k+k], y[i*k:i*k+k]
		for _, c := range cols {
			out[c] += xs[c] * ys[c]
		}
	}
	fc.Add(2 * int64(n) * int64(len(cols)))
}

// Dot2Batch writes outXY[c] = x_cᵀy_c and outZY[c] = z_cᵀy_c for every
// active column in one pass (the batched Dot2 of the fused recurrence).
// Counts 4·n flops per active column.
func Dot2Batch(x, y, z []float64, k int, cols []int, outXY, outZY []float64, fc *FlopCounter) {
	n := checkBatch2(x, y, k, outXY, "Dot2Batch")
	if len(z) != len(y) || len(outZY) < k {
		panic(fmt.Sprintf("vecops: Dot2Batch length mismatch z=%d y=%d outZY=%d k=%d", len(z), len(y), len(outZY), k))
	}
	idx := cols
	if idx == nil {
		idx = allCols(k)
	}
	for _, c := range idx {
		outXY[c] = 0
		outZY[c] = 0
	}
	for i := 0; i < n; i++ {
		xs, ys, zs := x[i*k:i*k+k], y[i*k:i*k+k], z[i*k:i*k+k]
		for _, c := range idx {
			outXY[c] += xs[c] * ys[c]
			outZY[c] += zs[c] * ys[c]
		}
	}
	fc.Add(4 * int64(n) * int64(len(idx)))
}

// AxpyBatch computes y_c ← a[c]·x_c + y_c for every active column.
// Counts 2·n flops per active column.
func AxpyBatch(a []float64, x, y []float64, k int, cols []int, fc *FlopCounter) {
	n := checkBatch2(x, y, k, a, "AxpyBatch")
	idx := cols
	if idx == nil {
		idx = allCols(k)
	}
	for i := 0; i < n; i++ {
		xs, ys := x[i*k:i*k+k], y[i*k:i*k+k]
		for _, c := range idx {
			ys[c] += a[c] * xs[c]
		}
	}
	fc.Add(2 * int64(n) * int64(len(idx)))
}

// XpayBatch computes y_c ← x_c + a[c]·y_c for every active column (the
// search-direction update). Counts 2·n flops per active column.
func XpayBatch(x []float64, a []float64, y []float64, k int, cols []int, fc *FlopCounter) {
	n := checkBatch2(x, y, k, a, "XpayBatch")
	idx := cols
	if idx == nil {
		idx = allCols(k)
	}
	for i := 0; i < n; i++ {
		xs, ys := x[i*k:i*k+k], y[i*k:i*k+k]
		for _, c := range idx {
			ys[c] = xs[c] + a[c]*ys[c]
		}
	}
	fc.Add(2 * int64(n) * int64(len(idx)))
}

// FusedCGUpdateBatch performs the fused-CG iteration update per active
// column with per-column scalars —
//
//	p_c ← u_c + β[c]·p_c,  s_c ← w_c + β[c]·s_c,
//	x_c ← x_c + α[c]·p_c,  r_c ← r_c − α[c]·s_c
//
// — and writes Σᵢ r²[i,c] of the updated residual into rr[c], streaming
// every vector once like the scalar FusedCGUpdate. Counts 10·n flops per
// active column.
func FusedCGUpdateBatch(alpha, beta []float64, u, w, p, s, x, r []float64, k int, cols []int, rr []float64, fc *FlopCounter) {
	n := checkBatch2(u, r, k, rr, "FusedCGUpdateBatch")
	if len(w) != len(u) || len(p) != len(u) || len(s) != len(u) || len(x) != len(u) {
		panic(fmt.Sprintf("vecops: FusedCGUpdateBatch length mismatch %d/%d/%d/%d/%d/%d",
			len(u), len(w), len(p), len(s), len(x), len(r)))
	}
	idx := cols
	if idx == nil {
		idx = allCols(k)
	}
	for _, c := range idx {
		rr[c] = 0
	}
	for i := 0; i < n; i++ {
		us, ws := u[i*k:i*k+k], w[i*k:i*k+k]
		ps, ss := p[i*k:i*k+k], s[i*k:i*k+k]
		xs, rs := x[i*k:i*k+k], r[i*k:i*k+k]
		for _, c := range idx {
			pi := us[c] + beta[c]*ps[c]
			si := ws[c] + beta[c]*ss[c]
			ps[c] = pi
			ss[c] = si
			xs[c] += alpha[c] * pi
			ri := rs[c] - alpha[c]*si
			rs[c] = ri
			rr[c] += ri * ri
		}
	}
	fc.Add(10 * int64(n) * int64(len(idx)))
}

// PackColumn scatters a length-n vector into column c of an interleaved
// n×k block.
func PackColumn(block []float64, col []float64, k, c int) {
	if len(block) != len(col)*k {
		panic(fmt.Sprintf("vecops: PackColumn block %d, want %d·%d", len(block), len(col), k))
	}
	for i, v := range col {
		block[i*k+c] = v
	}
}

// UnpackColumn gathers column c of an interleaved n×k block into a
// length-n vector.
func UnpackColumn(col []float64, block []float64, k, c int) {
	if len(block) != len(col)*k {
		panic(fmt.Sprintf("vecops: UnpackColumn block %d, want %d·%d", len(block), len(col), k))
	}
	for i := range col {
		col[i] = block[i*k+c]
	}
}

func allCols(k int) []int {
	idx := make([]int, k)
	for c := range idx {
		idx[c] = c
	}
	return idx
}

// checkBatch2 validates a pair of equal-length interleaved blocks plus a
// k-sized scalar slice and returns the per-column length n.
func checkBatch2(x, y []float64, k int, scalars []float64, name string) int {
	if k < 1 {
		panic(fmt.Sprintf("vecops: %s batch size %d < 1", name, k))
	}
	if len(x) != len(y) || len(x)%k != 0 {
		panic(fmt.Sprintf("vecops: %s length mismatch %d vs %d (k=%d)", name, len(x), len(y), k))
	}
	if len(scalars) < k {
		panic(fmt.Sprintf("vecops: %s scalar slice %d < k=%d", name, len(scalars), k))
	}
	return len(x) / k
}
